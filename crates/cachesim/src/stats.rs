//! Word/message counters.

use std::fmt;
use std::ops::{Add, AddAssign};

/// Accumulated communication between two adjacent memory levels.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub struct TransferStats {
    /// Total words moved — the paper's **bandwidth** cost.
    pub words: u64,
    /// Total messages (maximal contiguous bundles, each at most `M`
    /// words) — the paper's **latency** cost.
    pub messages: u64,
}

impl TransferStats {
    /// Zero counters.
    pub fn new() -> Self {
        Self::default()
    }

    /// Modelled transfer time `alpha * messages + beta * words`.
    pub fn time(&self, alpha: f64, beta: f64) -> f64 {
        alpha * self.messages as f64 + beta * self.words as f64
    }

    /// Average words per message (0 when no messages were sent).
    pub fn words_per_message(&self) -> f64 {
        if self.messages == 0 {
            0.0
        } else {
            self.words as f64 / self.messages as f64
        }
    }
}

impl Add for TransferStats {
    type Output = TransferStats;
    fn add(self, rhs: Self) -> Self {
        TransferStats {
            words: self.words + rhs.words,
            messages: self.messages + rhs.messages,
        }
    }
}

impl AddAssign for TransferStats {
    fn add_assign(&mut self, rhs: Self) {
        self.words += rhs.words;
        self.messages += rhs.messages;
    }
}

impl fmt::Display for TransferStats {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{} words / {} messages", self.words, self.messages)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn add_and_time() {
        let a = TransferStats { words: 10, messages: 2 };
        let b = TransferStats { words: 5, messages: 1 };
        let c = a + b;
        assert_eq!(c.words, 15);
        assert_eq!(c.messages, 3);
        assert!((c.time(2.0, 0.5) - (6.0 + 7.5)).abs() < 1e-12);
    }

    #[test]
    fn words_per_message() {
        let s = TransferStats { words: 12, messages: 3 };
        assert_eq!(s.words_per_message(), 4.0);
        assert_eq!(TransferStats::new().words_per_message(), 0.0);
    }
}
