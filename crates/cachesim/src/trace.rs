//! The compact run-encoded access trace: record once, re-price many.
//!
//! The algorithms' touch schedules are *data-oblivious* — a pure
//! function of `(algorithm, layout, n)`, never of the matrix values.
//! That makes the access trace a reusable artifact: record it once while
//! the arithmetic runs, then [`replay`](CompactTrace::replay) it under
//! any tracer (LRU at every `M` of a sweep, set-associative,
//! stack-distance, explicit counting) without re-executing a single
//! flop or re-deriving a single address from the layout bijection.
//!
//! The encoding is deliberately flat: two parallel vectors, one `u64`
//! start address and one `u32` length-plus-mode word per run event —
//! 12 bytes per event, no per-event `Vec<Run>` allocations (the old
//! [`crate::RecordingTracer`] paid a heap allocation *per touch*).
//! [`pack`](CompactTrace::pack) additionally delta/varint-encodes the
//! events for storage or byte-level comparison (the determinism guard
//! compares packed bytes across runs on different matrices).
//!
//! Replay fidelity contract: replaying a trace into a tracer produces
//! **byte-identical** [`crate::TransferStats`] to feeding the original
//! touches directly.  This holds because every tracer in this crate
//! prices runs independently — per run (counting) or per word
//! (LRU / set-associative / stack-distance) — so re-presenting the
//! recorded runs one [`Tracer::touch_runs`] call each is
//! indistinguishable from the original call grouping.

use crate::stats::TransferStats;
use crate::tracer::{Access, Tracer};
use cholcomm_layout::Run;

/// Mode flag stored in the high bit of the length word.
const WRITE_BIT: u32 = 1 << 31;
/// Maximum run length a single event can carry.
const MAX_LEN: usize = (WRITE_BIT - 1) as usize;

/// A compact, flat, run-encoded access trace.
///
/// ```
/// use cholcomm_cachesim::{Access, CompactTrace, CountingTracer, LruTracer, Tracer};
///
/// let mut trace = CompactTrace::new();
/// trace.touch_runs(&[0..8, 16..20], Access::Read);
/// trace.touch_runs(&[0..8], Access::Write);
///
/// // Price the same schedule under two different models.
/// let mut counting = CountingTracer::uncapped();
/// trace.replay(&mut counting);
/// assert_eq!(counting.stats().words, 20);
///
/// let mut lru = LruTracer::with_writebacks(64, false);
/// trace.replay(&mut lru);
/// assert_eq!(lru.fetch_stats().words, 12, "write pass hits in cache");
/// ```
#[derive(Debug, Default, Clone, PartialEq, Eq)]
pub struct CompactTrace {
    /// Run start addresses.
    starts: Vec<u64>,
    /// Run lengths; bit 31 marks a write.
    len_mode: Vec<u32>,
    /// Total words across all runs.
    words: u64,
    /// One past the largest address touched.
    footprint: u64,
}

impl CompactTrace {
    /// Empty trace.
    pub fn new() -> Self {
        Self::default()
    }

    /// Empty trace with room for `events` runs.
    pub fn with_capacity(events: usize) -> Self {
        CompactTrace {
            starts: Vec::with_capacity(events),
            len_mode: Vec::with_capacity(events),
            words: 0,
            footprint: 0,
        }
    }

    /// Number of recorded run events.
    pub fn len(&self) -> usize {
        self.starts.len()
    }

    /// `true` when nothing was recorded.
    pub fn is_empty(&self) -> bool {
        self.starts.is_empty()
    }

    /// Total words touched (with multiplicity) — also the number of
    /// word-granularity accesses a replay will present to the tracer.
    pub fn words(&self) -> u64 {
        self.words
    }

    /// One past the largest address touched: the address-space bound a
    /// replay tracer can pre-size its dense structures from.
    pub fn footprint(&self) -> usize {
        self.footprint as usize
    }

    /// Append one run event.
    #[inline]
    pub fn push(&mut self, run: &Run, mode: Access) {
        let len = run.end.saturating_sub(run.start);
        assert!(len <= MAX_LEN, "run of {len} words overflows the event length field");
        let mode_bit = match mode {
            Access::Read => 0,
            Access::Write => WRITE_BIT,
        };
        self.starts.push(run.start as u64);
        self.len_mode.push(len as u32 | mode_bit);
        self.words += len as u64;
        self.footprint = self.footprint.max(run.end as u64);
    }

    /// The `i`-th event as `(run, mode)`.
    #[inline]
    pub fn event(&self, i: usize) -> (Run, Access) {
        let start = self.starts[i] as usize;
        let lm = self.len_mode[i];
        let len = (lm & !WRITE_BIT) as usize;
        let mode = if lm & WRITE_BIT != 0 { Access::Write } else { Access::Read };
        (start..start + len, mode)
    }

    /// Iterate events in order.
    pub fn iter(&self) -> impl Iterator<Item = (Run, Access)> + '_ {
        (0..self.len()).map(|i| self.event(i))
    }

    /// Re-present the recorded schedule to `into`, one run per
    /// [`Tracer::touch_runs`] call.  Allocation-free.
    pub fn replay(&self, into: &mut impl Tracer) {
        for i in 0..self.starts.len() {
            let (run, mode) = self.event(i);
            into.touch_runs(std::slice::from_ref(&run), mode);
        }
    }

    /// `true` when both traces record exactly the same schedule — same
    /// runs, same order, same read/write modes.
    pub fn same_schedule(&self, other: &CompactTrace) -> bool {
        self.starts == other.starts && self.len_mode == other.len_mode
    }

    /// Serialize to delta/varint-packed bytes (`choltrace1` header).
    ///
    /// Starts are zig-zag delta-encoded against the previous start —
    /// consecutive touches are near each other, so most deltas fit one
    /// or two bytes; lengths ride as `len << 1 | write`.
    pub fn pack(&self) -> Vec<u8> {
        let mut out = Vec::with_capacity(16 + self.len() * 3);
        out.extend_from_slice(b"choltrace1");
        write_varint(&mut out, self.len() as u64);
        let mut prev = 0i128;
        for i in 0..self.len() {
            let start = self.starts[i] as i128;
            let delta = start - prev;
            prev = start;
            write_varint(&mut out, zigzag(delta));
            let lm = self.len_mode[i];
            let len = u64::from(lm & !WRITE_BIT);
            let wr = u64::from(lm >> 31);
            write_varint(&mut out, len << 1 | wr);
        }
        out
    }

    /// Deserialize a [`pack`](Self::pack)ed trace.
    pub fn unpack(bytes: &[u8]) -> Result<Self, String> {
        let rest = bytes
            .strip_prefix(b"choltrace1".as_slice())
            .ok_or_else(|| "bad trace header".to_string())?;
        let mut pos = 0usize;
        let n = read_varint(rest, &mut pos)? as usize;
        let mut trace = CompactTrace::with_capacity(n);
        let mut prev = 0i128;
        for _ in 0..n {
            let delta = unzigzag(read_varint(rest, &mut pos)?);
            prev += delta;
            let start = u64::try_from(prev).map_err(|_| "negative start".to_string())? as usize;
            let lw = read_varint(rest, &mut pos)?;
            let len = (lw >> 1) as usize;
            let mode = if lw & 1 == 1 { Access::Write } else { Access::Read };
            trace.push(&(start..start + len), mode);
        }
        if pos != rest.len() {
            return Err(format!("{} trailing bytes after trace", rest.len() - pos));
        }
        Ok(trace)
    }

    /// FNV-1a digest over the packed encoding — a cheap fingerprint for
    /// the determinism guard and for cache keys.
    pub fn digest(&self) -> u64 {
        let mut h = 0xcbf2_9ce4_8422_2325u64;
        let mut eat = |w: u64| {
            for b in w.to_le_bytes() {
                h ^= u64::from(b);
                h = h.wrapping_mul(0x0000_0100_0000_01b3);
            }
        };
        eat(self.starts.len() as u64);
        for i in 0..self.starts.len() {
            eat(self.starts[i]);
            eat(u64::from(self.len_mode[i]));
        }
        h
    }
}

/// Recording is just a [`Tracer`] that appends events; plain counters
/// come along for free so a recording pass can double as an uncapped
/// counting run.
impl Tracer for CompactTrace {
    fn touch_runs(&mut self, runs: &[Run], mode: Access) {
        for r in runs {
            self.push(r, mode);
        }
    }

    /// Touched words and declared runs (like an uncapped
    /// [`crate::CountingTracer`]).
    fn stats(&self) -> TransferStats {
        TransferStats {
            words: self.words,
            messages: self.len() as u64,
        }
    }

    fn reset(&mut self) {
        self.starts.clear();
        self.len_mode.clear();
        self.words = 0;
        self.footprint = 0;
    }
}

#[inline]
fn zigzag(v: i128) -> u64 {
    ((v << 1) ^ (v >> 127)) as u64
}

fn unzigzag(v: u64) -> i128 {
    let v = v as i128;
    (v >> 1) ^ -(v & 1)
}

fn write_varint(out: &mut Vec<u8>, mut v: u64) {
    loop {
        let byte = (v & 0x7f) as u8;
        v >>= 7;
        if v == 0 {
            out.push(byte);
            return;
        }
        out.push(byte | 0x80);
    }
}

fn read_varint(bytes: &[u8], pos: &mut usize) -> Result<u64, String> {
    let mut v = 0u64;
    let mut shift = 0u32;
    loop {
        let &b = bytes.get(*pos).ok_or_else(|| "truncated varint".to_string())?;
        *pos += 1;
        if shift >= 64 {
            return Err("varint overflow".to_string());
        }
        v |= u64::from(b & 0x7f) << shift;
        if b & 0x80 == 0 {
            return Ok(v);
        }
        shift += 7;
    }
}

#[cfg(test)]
#[allow(clippy::single_range_in_vec_init)] // touch_runs takes &[Range]; one-run slices are the point
mod tests {
    use super::*;
    use crate::counting::CountingTracer;
    use crate::lru::LruTracer;
    use crate::recording::RecordingTracer;
    use crate::stackdist::StackDistanceTracer;

    fn sample_trace() -> CompactTrace {
        let mut t = CompactTrace::new();
        t.touch_runs(&[0..8, 16..20], Access::Read);
        t.touch_runs(&[4..6], Access::Write);
        t.touch_runs(&[100..164], Access::Read);
        t
    }

    #[test]
    fn counters_and_footprint() {
        let t = sample_trace();
        assert_eq!(t.len(), 4);
        assert_eq!(t.words(), 8 + 4 + 2 + 64);
        assert_eq!(t.footprint(), 164);
        assert_eq!(t.stats().messages, 4);
    }

    #[test]
    fn replay_matches_direct_feeding_for_every_tracer() {
        let t = sample_trace();

        let mut direct = CountingTracer::new(16);
        t.iter().for_each(|(r, m)| direct.touch_runs(&[r], m));
        let mut replayed = CountingTracer::new(16);
        t.replay(&mut replayed);
        assert_eq!(direct.stats(), replayed.stats());

        let mut lru_a = LruTracer::new(32);
        let mut lru_b = LruTracer::new(32);
        t.iter().for_each(|(r, m)| lru_a.touch_runs(&[r], m));
        t.replay(&mut lru_b);
        lru_a.flush();
        lru_b.flush();
        assert_eq!(lru_a.total_stats(), lru_b.total_stats());

        let mut sd = StackDistanceTracer::new(&[4, 64]);
        t.replay(&mut sd);
        assert_eq!(sd.accesses(), t.words());
    }

    #[test]
    fn replay_equals_recording_tracer_replay() {
        // The compact trace must price identically to the legacy
        // event-list recorder fed with the same touches.
        let runs: Vec<(Vec<Run>, Access)> = vec![
            (vec![0..5, 7..9], Access::Read),
            (vec![2..3], Access::Write),
            (vec![40..44, 44..48], Access::Read),
        ];
        let mut compact = CompactTrace::new();
        let mut legacy = RecordingTracer::new();
        for (rs, m) in &runs {
            compact.touch_runs(rs, *m);
            legacy.touch_runs(rs, *m);
        }
        let mut a = LruTracer::new(8);
        let mut b = LruTracer::new(8);
        compact.replay(&mut a);
        legacy.replay(&mut b);
        a.flush();
        b.flush();
        assert_eq!(a.total_stats(), b.total_stats());
    }

    #[test]
    fn pack_roundtrip_is_identity() {
        let t = sample_trace();
        let bytes = t.pack();
        let back = CompactTrace::unpack(&bytes).unwrap();
        assert_eq!(t, back);
        assert_eq!(t.digest(), back.digest());
    }

    #[test]
    fn unpack_rejects_garbage() {
        assert!(CompactTrace::unpack(b"not a trace").is_err());
        let mut bytes = sample_trace().pack();
        bytes.truncate(bytes.len() - 1);
        assert!(CompactTrace::unpack(&bytes).is_err());
        let mut extra = sample_trace().pack();
        extra.push(0);
        assert!(CompactTrace::unpack(&extra).is_err());
    }

    #[test]
    fn packing_is_compact_for_local_traces() {
        // A streaming scan should cost ~2 bytes per event packed.
        let mut t = CompactTrace::new();
        for i in 0..1000usize {
            t.touch_runs(&[i * 8..i * 8 + 8], Access::Read);
        }
        let packed = t.pack();
        assert!(packed.len() < 1000 * 4, "packed {} bytes", packed.len());
    }

    #[test]
    fn digest_distinguishes_traces() {
        let a = sample_trace();
        let mut b = sample_trace();
        b.touch_runs(&[0..1], Access::Read);
        assert_ne!(a.digest(), b.digest());
        let mut c = sample_trace();
        // Same runs, different mode on the last event.
        c.reset();
        c.touch_runs(&[0..8, 16..20], Access::Read);
        c.touch_runs(&[4..6], Access::Read);
        c.touch_runs(&[100..164], Access::Read);
        assert_ne!(a.digest(), c.digest());
    }

    #[test]
    fn empty_runs_are_preserved() {
        // Zero-length runs still count as declared messages under the
        // uncapped counting model; the trace must not drop them.
        let mut t = CompactTrace::new();
        t.touch_runs(&[3..3], Access::Read);
        assert_eq!(t.len(), 1);
        let mut c = CountingTracer::uncapped();
        t.replay(&mut c);
        assert_eq!(c.stats().messages, 1);
        assert_eq!(c.stats().words, 0);
        let back = CompactTrace::unpack(&t.pack()).unwrap();
        assert_eq!(back, t);
    }
}
