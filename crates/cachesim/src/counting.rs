//! Explicit-transfer accounting: every declared transfer is charged in
//! full, exactly as in the paper's closed-form analyses of the naïve and
//! LAPACK algorithms (Sections 3.1.4–3.1.6), which assume the algorithm
//! explicitly reads and writes between fast and slow memory.

use crate::stats::TransferStats;
use crate::tracer::{Access, Tracer};
use cholcomm_layout::Run;

/// Charges `sum(len)` words and `sum(ceil(len / max_message))` messages
/// for every touch.  `max_message` models the fast-memory bound on message
/// size (`M` in the paper); `None` leaves runs uncapped.
#[derive(Debug, Clone)]
pub struct CountingTracer {
    max_message: Option<usize>,
    stats: TransferStats,
}

impl CountingTracer {
    /// Tracer with messages capped at `max_message` words.
    pub fn new(max_message: usize) -> Self {
        assert!(max_message > 0);
        CountingTracer {
            max_message: Some(max_message),
            stats: TransferStats::default(),
        }
    }

    /// Tracer with uncapped messages (a contiguous region of any size is
    /// one message) — used when the schedule already bounds its transfers
    /// by `M`.
    pub fn uncapped() -> Self {
        CountingTracer {
            max_message: None,
            stats: TransferStats::default(),
        }
    }
}

impl Tracer for CountingTracer {
    fn touch_runs(&mut self, runs: &[Run], _mode: Access) {
        for r in runs {
            let len = r.len() as u64;
            self.stats.words += len;
            self.stats.messages += match self.max_message {
                Some(m) => (r.len().div_ceil(m)) as u64,
                None => 1,
            };
        }
    }

    fn stats(&self) -> TransferStats {
        self.stats
    }

    fn reset(&mut self) {
        self.stats = TransferStats::default();
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::tracer::touch;
    use cholcomm_layout::{cells_block, cells_col_segment, ColMajor};

    #[test]
    fn charges_every_touch() {
        let mut t = CountingTracer::uncapped();
        let l = ColMajor::square(8);
        touch(&mut t, &l, cells_col_segment(0, 0, 8), Access::Read);
        touch(&mut t, &l, cells_col_segment(0, 0, 8), Access::Read);
        let s = t.stats();
        assert_eq!(s.words, 16, "no caching: repeat touches recharge");
        assert_eq!(s.messages, 2);
    }

    #[test]
    fn message_cap_divides_runs() {
        let mut t = CountingTracer::new(4);
        let l = ColMajor::square(16);
        touch(&mut t, &l, cells_col_segment(0, 0, 16), Access::Read);
        let s = t.stats();
        assert_eq!(s.words, 16);
        assert_eq!(s.messages, 4);
    }

    #[test]
    fn block_in_colmajor_is_one_message_per_column() {
        let mut t = CountingTracer::uncapped();
        let l = ColMajor::square(16);
        touch(&mut t, &l, cells_block(4, 4, 4, 4), Access::Read);
        let s = t.stats();
        assert_eq!(s.words, 16);
        assert_eq!(s.messages, 4);
    }

    #[test]
    fn reset_clears() {
        let mut t = CountingTracer::uncapped();
        let l = ColMajor::square(4);
        touch(&mut t, &l, cells_col_segment(0, 0, 4), Access::Write);
        t.reset();
        assert_eq!(t.stats(), TransferStats::default());
    }
}
