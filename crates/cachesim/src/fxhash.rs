//! Hashing and address-indexing primitives for the simulator hot loops.
//!
//! `std::collections::HashMap` defaults to SipHash-1-3, a keyed hash
//! built to resist hash-flooding from untrusted input.  The simulators
//! hash *memory addresses of a matrix we generated ourselves* — there is
//! no adversary, and SipHash dominates the per-access profile of the LRU
//! and stack-distance tracers.  Two replacements, both vendored here
//! (the workspace builds offline):
//!
//! * [`FxHasher`] — the rustc multiply-xor hash: one rotate, one xor,
//!   one multiply per word.  [`FxHashMap`] is a drop-in `HashMap` alias.
//! * [`AddrMap`] — a direct dense array keyed by address.  Trace
//!   addresses are matrix storage offsets, so the key space is the
//!   matrix footprint: a `Vec` indexed by address beats any hash map.
//!   Addresses past [`AddrMap::DENSE_LIMIT`] spill into an [`FxHashMap`]
//!   so a stray huge address degrades gracefully instead of allocating
//!   the moon.

use std::collections::HashMap;
use std::hash::{BuildHasherDefault, Hasher};

/// The rustc-hash ("FxHash") multiply-xor hasher: fast, deterministic,
/// not flood-resistant — exactly right for simulator-internal keys.
#[derive(Debug, Default, Clone)]
pub struct FxHasher {
    hash: u64,
}

/// Knuth's 2^64 / golden-ratio multiplier, as used by rustc-hash.
const SEED: u64 = 0x51_7c_c1_b7_27_22_0a_95;

impl FxHasher {
    #[inline]
    fn add_to_hash(&mut self, w: u64) {
        self.hash = (self.hash.rotate_left(5) ^ w).wrapping_mul(SEED);
    }
}

impl Hasher for FxHasher {
    #[inline]
    fn write(&mut self, bytes: &[u8]) {
        for chunk in bytes.chunks(8) {
            let mut buf = [0u8; 8];
            buf[..chunk.len()].copy_from_slice(chunk);
            self.add_to_hash(u64::from_le_bytes(buf));
        }
    }

    #[inline]
    fn write_u64(&mut self, n: u64) {
        self.add_to_hash(n);
    }

    #[inline]
    fn write_usize(&mut self, n: usize) {
        self.add_to_hash(n as u64);
    }

    #[inline]
    fn write_u32(&mut self, n: u32) {
        self.add_to_hash(u64::from(n));
    }

    #[inline]
    fn finish(&self) -> u64 {
        self.hash
    }
}

/// `HashMap` keyed by the multiply-xor hash instead of SipHash.
pub type FxHashMap<K, V> = HashMap<K, V, BuildHasherDefault<FxHasher>>;

/// A map from memory address to a `u64` value, stored as a direct dense
/// array over the matrix footprint with an [`FxHashMap`] spill for
/// outliers.
///
/// The dense side is a `Vec<u64>` with `u64::MAX` as the "absent"
/// sentinel, grown geometrically as larger addresses appear (and
/// pre-sizable via [`AddrMap::with_footprint`] when the trace's
/// footprint is known up front).  Values of `u64::MAX` itself cannot be
/// stored — the simulators store access times and slot indices, both far
/// below that.
#[derive(Debug, Default, Clone)]
pub struct AddrMap {
    dense: Vec<u64>,
    spill: FxHashMap<usize, u64>,
    len: usize,
}

const ABSENT: u64 = u64::MAX;

impl AddrMap {
    /// Largest address served by the dense array (64 Mi entries, 512 MB
    /// worst case); anything beyond spills to the hash map.
    pub const DENSE_LIMIT: usize = 1 << 26;

    /// Empty map; the dense array grows on demand.
    pub fn new() -> Self {
        Self::default()
    }

    /// Empty map pre-sized for addresses in `[0, footprint)` — one
    /// allocation up front instead of geometric regrowth mid-trace.
    pub fn with_footprint(footprint: usize) -> Self {
        AddrMap {
            dense: vec![ABSENT; footprint.min(Self::DENSE_LIMIT)],
            spill: FxHashMap::default(),
            len: 0,
        }
    }

    /// Number of stored entries.
    pub fn len(&self) -> usize {
        self.len
    }

    /// `true` when nothing is stored.
    pub fn is_empty(&self) -> bool {
        self.len == 0
    }

    /// Value stored at `addr`, if any.
    #[inline]
    pub fn get(&self, addr: usize) -> Option<u64> {
        if addr < self.dense.len() {
            let v = self.dense[addr];
            if v == ABSENT {
                None
            } else {
                Some(v)
            }
        } else if addr < Self::DENSE_LIMIT {
            None
        } else {
            self.spill.get(&addr).copied()
        }
    }

    /// Store `value` at `addr`, returning the previous value if any.
    #[inline]
    pub fn insert(&mut self, addr: usize, value: u64) -> Option<u64> {
        debug_assert_ne!(value, ABSENT, "AddrMap cannot store u64::MAX");
        if addr >= Self::DENSE_LIMIT {
            let old = self.spill.insert(addr, value);
            if old.is_none() {
                self.len += 1;
            }
            return old;
        }
        if addr >= self.dense.len() {
            let newcap = (addr + 1).next_power_of_two().max(1024);
            self.dense.resize(newcap.min(Self::DENSE_LIMIT), ABSENT);
        }
        let old = std::mem::replace(&mut self.dense[addr], value);
        if old == ABSENT {
            self.len += 1;
            None
        } else {
            Some(old)
        }
    }

    /// Remove the value at `addr`, returning it if it was present.
    #[inline]
    pub fn remove(&mut self, addr: usize) -> Option<u64> {
        if addr < self.dense.len() {
            let old = std::mem::replace(&mut self.dense[addr], ABSENT);
            if old == ABSENT {
                None
            } else {
                self.len -= 1;
                Some(old)
            }
        } else if addr < Self::DENSE_LIMIT {
            None
        } else {
            let old = self.spill.remove(&addr);
            if old.is_some() {
                self.len -= 1;
            }
            old
        }
    }

    /// Iterate over `(addr, value)` pairs in ascending address order
    /// (dense entries first, then spilled ones, sorted).
    pub fn iter_sorted(&self) -> impl Iterator<Item = (usize, u64)> + '_ {
        let mut spilled: Vec<(usize, u64)> =
            self.spill.iter().map(|(&a, &v)| (a, v)).collect();
        spilled.sort_unstable();
        self.dense
            .iter()
            .enumerate()
            .filter(|(_, &v)| v != ABSENT)
            .map(|(a, &v)| (a, v))
            .chain(spilled)
    }

    /// Drop every entry, keeping the dense allocation for reuse.
    pub fn clear(&mut self) {
        self.dense.fill(ABSENT);
        self.spill.clear();
        self.len = 0;
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn insert_get_remove_roundtrip() {
        let mut m = AddrMap::new();
        assert_eq!(m.get(3), None);
        assert_eq!(m.insert(3, 7), None);
        assert_eq!(m.insert(3, 8), Some(7));
        assert_eq!(m.len(), 1);
        assert_eq!(m.get(3), Some(8));
        assert_eq!(m.remove(3), Some(8));
        assert_eq!(m.remove(3), None);
        assert!(m.is_empty());
    }

    #[test]
    fn spill_addresses_work() {
        let mut m = AddrMap::new();
        let big = AddrMap::DENSE_LIMIT + 12345;
        assert_eq!(m.insert(big, 9), None);
        assert_eq!(m.get(big), Some(9));
        assert_eq!(m.len(), 1);
        assert_eq!(m.remove(big), Some(9));
        assert!(m.is_empty());
    }

    #[test]
    fn iter_sorted_merges_dense_and_spill() {
        let mut m = AddrMap::with_footprint(16);
        let big = AddrMap::DENSE_LIMIT + 5;
        m.insert(big, 30);
        m.insert(2, 20);
        m.insert(9, 10);
        let got: Vec<(usize, u64)> = m.iter_sorted().collect();
        assert_eq!(got, vec![(2, 20), (9, 10), (big, 30)]);
    }

    #[test]
    fn agrees_with_hashmap_on_random_ops() {
        let mut fast = AddrMap::new();
        let mut slow: HashMap<usize, u64> = HashMap::new();
        let mut x = 12345usize;
        for i in 0..4000u64 {
            x = x.wrapping_mul(6364136223846793005).wrapping_add(1442695040888963407);
            let addr = (x >> 33) % 3000;
            match x % 3 {
                0 => assert_eq!(fast.insert(addr, i), slow.insert(addr, i)),
                1 => assert_eq!(fast.get(addr), slow.get(&addr).copied()),
                _ => assert_eq!(fast.remove(addr), slow.remove(&addr)),
            }
            assert_eq!(fast.len(), slow.len());
        }
    }

    #[test]
    fn fxhashmap_basic() {
        let mut m: FxHashMap<usize, usize> = FxHashMap::default();
        for i in 0..100 {
            m.insert(i * 97, i);
        }
        assert_eq!(m.len(), 100);
        assert_eq!(m.get(&(42 * 97)), Some(&42));
    }
}
