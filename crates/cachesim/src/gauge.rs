//! Fast-memory occupancy gauge.
//!
//! The explicit algorithms (naïve, LAPACK blocked, ScaLAPACK's local
//! steps) are only valid if their declared working set actually fits in
//! the fast memory — e.g. Algorithm 4 requires `3 b^2 <= M`.  The gauge
//! lets an algorithm account for what it holds and asserts the capacity
//! invariant, so a mis-parameterized schedule fails loudly instead of
//! silently reporting impossible communication counts.

/// Tracks claimed fast-memory words against a capacity.
#[derive(Debug, Clone)]
pub struct FastMemGauge {
    capacity: usize,
    current: usize,
    peak: usize,
}

impl FastMemGauge {
    /// A gauge over `m` words of fast memory.
    pub fn new(m: usize) -> Self {
        FastMemGauge {
            capacity: m,
            current: 0,
            peak: 0,
        }
    }

    /// Claim `words` of fast memory.  Panics if the capacity would be
    /// exceeded — the schedule is invalid for this `M`.
    pub fn claim(&mut self, words: usize) {
        self.current += words;
        assert!(
            self.current <= self.capacity,
            "fast memory overflow: {} words claimed, capacity {}",
            self.current,
            self.capacity
        );
        self.peak = self.peak.max(self.current);
    }

    /// Release `words` previously claimed.
    pub fn release(&mut self, words: usize) {
        assert!(words <= self.current, "releasing more than claimed");
        self.current -= words;
    }

    /// Currently claimed words.
    pub fn current(&self) -> usize {
        self.current
    }

    /// High-water mark.
    pub fn peak(&self) -> usize {
        self.peak
    }

    /// Configured capacity.
    pub fn capacity(&self) -> usize {
        self.capacity
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn tracks_peak() {
        let mut g = FastMemGauge::new(10);
        g.claim(4);
        g.claim(5);
        g.release(3);
        g.claim(2);
        assert_eq!(g.current(), 8);
        assert_eq!(g.peak(), 9);
    }

    #[test]
    #[should_panic(expected = "fast memory overflow")]
    fn overflow_panics() {
        let mut g = FastMemGauge::new(4);
        g.claim(5);
    }

    #[test]
    #[should_panic(expected = "releasing more than claimed")]
    fn over_release_panics() {
        let mut g = FastMemGauge::new(4);
        g.claim(2);
        g.release(3);
    }
}
