//! Message formation: coalescing miss streams into the paper's messages.
//!
//! The paper's latency measure counts a *maximal bundle of contiguously
//! stored words, at most `M` long,* as one message — independent of the
//! order in which the algorithm demands the words.  A recursive GEMM, for
//! instance, interleaves demands on its three operand blocks, yet each
//! block still arrives as one long contiguous transfer on real hardware
//! (stream prefetchers / DMA channels track several open streams).
//!
//! [`Coalescer`] models exactly that: up to `max_streams` concurrent
//! transfer streams; a miss extends a stream whose next address it is
//! (until the stream reaches `M` words), otherwise it opens a new stream
//! (one new message), evicting the least-recently-extended stream.  With
//! `max_streams = 1` this degrades to strict in-order coalescing; with
//! `max_streams = 0` every miss is its own message (the ablation
//! baseline).

use crate::stats::TransferStats;

/// Multi-stream run coalescer.
#[derive(Debug, Clone)]
pub struct Coalescer {
    /// `(next_addr, words_so_far)` per stream, most recently extended
    /// first.
    streams: Vec<(usize, usize)>,
    max_words: usize,
    max_streams: usize,
}

/// Default number of concurrent transfer streams — enough for the three
/// operands of a GEMM plus a few column strides, small enough that
/// column-major block reads (which need `b` streams) still thrash.
pub const DEFAULT_STREAMS: usize = 8;

impl Coalescer {
    /// Coalescer forming messages of at most `max_words` words across
    /// `max_streams` concurrent streams.
    pub fn new(max_words: usize, max_streams: usize) -> Self {
        Coalescer {
            streams: Vec::with_capacity(max_streams.min(64)),
            max_words: max_words.max(1),
            max_streams,
        }
    }

    /// Record a missed word; returns `true` when it opens a new message.
    pub fn on_miss(&mut self, addr: usize) -> bool {
        if let Some(pos) = self
            .streams
            .iter()
            .position(|&(end, len)| end == addr && len < self.max_words)
        {
            let (end, len) = self.streams.remove(pos);
            self.streams.insert(0, (end + 1, len + 1));
            return false;
        }
        if self.max_streams == 0 {
            return true;
        }
        self.streams.insert(0, (addr + 1, 1));
        self.streams.truncate(self.max_streams);
        true
    }
}

/// Miss-traffic accounting: the `words += 1; maybe messages += 1`
/// pattern shared by every cache simulator in this crate, in one place.
///
/// Before this helper, [`crate::LruTracer`], [`crate::SetAssocTracer`],
/// and each [`crate::StackDistanceTracer`] level carried their own
/// `(TransferStats, Coalescer)` pair and repeated the same three lines
/// at every miss site; divergence between those copies is exactly how
/// double-counting bugs slip in.
#[derive(Debug, Clone)]
pub struct MissAccounter {
    coalescer: Coalescer,
    stats: TransferStats,
}

impl MissAccounter {
    /// Accounter forming messages of at most `max_words` words across
    /// `streams` concurrent coalescing streams.
    pub fn new(max_words: usize, streams: usize) -> Self {
        MissAccounter {
            coalescer: Coalescer::new(max_words, streams),
            stats: TransferStats::default(),
        }
    }

    /// Charge one missed word at `addr`: always one word, one message
    /// exactly when the miss cannot extend an open stream.
    #[inline]
    pub fn charge(&mut self, addr: usize) {
        self.stats.words += 1;
        if self.coalescer.on_miss(addr) {
            self.stats.messages += 1;
        }
    }

    /// Accumulated traffic.
    pub fn stats(&self) -> TransferStats {
        self.stats
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn miss_accounter_charges_words_and_coalesced_messages() {
        let mut acc = MissAccounter::new(100, 1);
        for a in 0..10 {
            acc.charge(a);
        }
        acc.charge(50);
        assert_eq!(acc.stats().words, 11);
        assert_eq!(acc.stats().messages, 2, "one scan + one jump");
    }

    #[test]
    fn single_stream_coalesces_a_scan() {
        let mut c = Coalescer::new(100, 1);
        let msgs: usize = (0..10).map(|a| c.on_miss(a) as usize).sum();
        assert_eq!(msgs, 1);
    }

    #[test]
    fn message_size_capped() {
        let mut c = Coalescer::new(4, 1);
        let msgs: usize = (0..10).map(|a| c.on_miss(a) as usize).sum();
        assert_eq!(msgs, 3, "10 contiguous words at cap 4");
    }

    #[test]
    fn two_interleaved_streams_with_two_slots() {
        let mut c = Coalescer::new(100, 2);
        let mut msgs = 0;
        for i in 0..8 {
            msgs += c.on_miss(i) as usize; // stream A
            msgs += c.on_miss(1000 + i) as usize; // stream B
        }
        assert_eq!(msgs, 2, "each operand is one message");
    }

    #[test]
    fn interleaved_streams_thrash_with_one_slot() {
        let mut c = Coalescer::new(100, 1);
        let mut msgs = 0;
        for i in 0..8 {
            msgs += c.on_miss(i) as usize;
            msgs += c.on_miss(1000 + i) as usize;
        }
        assert_eq!(msgs, 16, "one slot cannot hold two streams");
    }

    #[test]
    fn zero_streams_means_no_coalescing() {
        let mut c = Coalescer::new(100, 0);
        let msgs: usize = (0..5).map(|a| c.on_miss(a) as usize).sum();
        assert_eq!(msgs, 5);
    }

    #[test]
    fn gaps_break_streams() {
        let mut c = Coalescer::new(100, 4);
        assert!(c.on_miss(0));
        assert!(!c.on_miss(1));
        assert!(c.on_miss(5), "gap opens a new message");
    }
}
