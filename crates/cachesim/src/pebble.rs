//! The Hong–Kung red–blue pebble game [HK81] — the model from which the
//! paper's bandwidth lower bound descends (Theorem 2 cites it for the
//! sequential case).
//!
//! Rules, on a computation DAG with a fast memory of `M` red pebbles:
//!
//! * **read**  — place a red pebble on a node holding a blue pebble
//!   (1 I/O);
//! * **write** — place a blue pebble on a node holding a red pebble
//!   (1 I/O);
//! * **compute** — place a red pebble on a node whose predecessors all
//!   hold red pebbles (free);
//! * **delete** — remove any red pebble (free);
//! * at most `M` red pebbles at any time; inputs start blue; the goal is
//!   a blue pebble on every output.
//!
//! [`min_io`] computes the *exact* minimum I/O by Dijkstra over the
//! (red-set, blue-set) state space — exponential, so for small DAGs only,
//! which is precisely what a lower-bound witness needs: the measured
//! word counts of every real algorithm must dominate the game optimum on
//! the same DAG.  Vertices here are matrix *entries* (the granularity of
//! the paper's Equations (5)–(8)), with one input vertex per referenced
//! `A` entry and one vertex per computed `L` entry.

use std::cmp::Reverse;
use std::collections::{BinaryHeap, HashMap};

/// A small computation DAG for the pebble game (at most 24 nodes).
#[derive(Debug, Clone)]
pub struct PebbleDag {
    /// `preds[v]` = predecessor node ids of `v` (empty for inputs).
    pub preds: Vec<Vec<usize>>,
    /// Bitmask of input nodes (start blue).
    pub inputs: u32,
    /// Bitmask of output nodes (must end blue).
    pub outputs: u32,
}

impl PebbleDag {
    /// Number of nodes.
    pub fn len(&self) -> usize {
        self.preds.len()
    }

    /// `true` when the DAG has no nodes.
    pub fn is_empty(&self) -> bool {
        self.preds.is_empty()
    }

    /// The smallest `M` for which the game is winnable: every compute
    /// needs its predecessors red plus a slot for the result.
    pub fn min_feasible_m(&self) -> usize {
        self.preds
            .iter()
            .map(|p| p.len() + 1)
            .max()
            .unwrap_or(1)
    }
}

/// The entry-granular Cholesky DAG of an `n x n` factorization: input
/// vertices for the lower-triangular `A` entries, compute vertices for
/// the `L` entries (each depending on its `S_ij` of Equations (7)–(8)
/// plus its own `A` input); every `L` entry is an output.
pub fn cholesky_dag(n: usize) -> PebbleDag {
    let entries: Vec<(usize, usize)> = (0..n).flat_map(|i| (0..=i).map(move |j| (i, j))).collect();
    let t = entries.len();
    assert!(2 * t <= 24, "pebble game is exponential; keep n tiny");
    let id = |i: usize, j: usize| i * (i + 1) / 2 + j; // L node ids 0..t
    // Input A(i,j) node ids t..2t.
    let mut preds = vec![Vec::new(); 2 * t];
    for &(i, j) in &entries {
        let v = id(i, j);
        let mut p = vec![t + v]; // its A input
        if i == j {
            for k in 0..i {
                p.push(id(i, k));
            }
        } else {
            for k in 0..j {
                p.push(id(i, k));
            }
            for k in 0..=j {
                p.push(id(j, k));
            }
        }
        preds[v] = p;
    }
    let inputs = ((1u32 << t) - 1) << t;
    let outputs = (1u32 << t) - 1;
    PebbleDag {
        preds,
        inputs,
        outputs,
    }
}

/// Exact minimum I/O (reads + writes) to win the red–blue game with `m`
/// red pebbles.  Returns `None` if `m` is infeasible for the DAG.
pub fn min_io(dag: &PebbleDag, m: usize) -> Option<u64> {
    if m < dag.min_feasible_m() {
        return None;
    }
    let n = dag.len();
    assert!(n <= 24);
    // State: (red_mask, blue_mask). Blue only ever grows, red bounded.
    let start = (0u32, dag.inputs);
    let mut dist: HashMap<(u32, u32), u64> = HashMap::new();
    let mut heap: BinaryHeap<Reverse<(u64, u32, u32)>> = BinaryHeap::new();
    dist.insert(start, 0);
    heap.push(Reverse((0, start.0, start.1)));

    let full_outputs = dag.outputs;
    while let Some(Reverse((d, red, blue))) = heap.pop() {
        if blue & full_outputs == full_outputs {
            return Some(d);
        }
        if dist.get(&(red, blue)).is_some_and(|&best| best < d) {
            continue;
        }
        let red_count = red.count_ones() as usize;
        let push = |nd: u64, nr: u32, nb: u32, dist: &mut HashMap<(u32, u32), u64>, heap: &mut BinaryHeap<Reverse<(u64, u32, u32)>>| {
            let e = dist.entry((nr, nb)).or_insert(u64::MAX);
            if nd < *e {
                *e = nd;
                heap.push(Reverse((nd, nr, nb)));
            }
        };
        for v in 0..n {
            let bit = 1u32 << v;
            // read
            if blue & bit != 0 && red & bit == 0 && red_count < m {
                push(d + 1, red | bit, blue, &mut dist, &mut heap);
            }
            // write
            if red & bit != 0 && blue & bit == 0 {
                push(d + 1, red, blue | bit, &mut dist, &mut heap);
            }
            // compute (free)
            if red & bit == 0 && red_count < m {
                let ready = dag.preds[v].iter().all(|&p| red & (1 << p) != 0);
                if ready && !dag.preds[v].is_empty() {
                    push(d, red | bit, blue, &mut dist, &mut heap);
                }
            }
            // delete (free)
            if red & bit != 0 {
                push(d, red & !bit, blue, &mut dist, &mut heap);
            }
        }
    }
    None
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn n2_with_ample_memory_is_compulsory_io_only() {
        // 3 input reads + 3 output writes = 6.
        let dag = cholesky_dag(2);
        assert_eq!(min_io(&dag, 8), Some(6));
    }

    #[test]
    fn n1_is_two_ios() {
        let dag = cholesky_dag(1);
        assert_eq!(min_io(&dag, 2), Some(2), "read A(0,0), write L(0,0)");
    }

    #[test]
    fn min_io_is_monotone_in_m() {
        let dag = cholesky_dag(3);
        let m0 = dag.min_feasible_m();
        let mut last = u64::MAX;
        for m in m0..m0 + 3 {
            let io = min_io(&dag, m).expect("feasible");
            assert!(io <= last, "more memory cannot cost more I/O");
            last = io;
        }
    }

    #[test]
    fn compulsory_io_is_a_floor() {
        // Any schedule must read every input and write every output once.
        let dag = cholesky_dag(3);
        let compulsory = (dag.inputs.count_ones() + dag.outputs.count_ones()) as u64;
        let io = min_io(&dag, dag.min_feasible_m()).unwrap();
        assert!(io >= compulsory, "{io} >= {compulsory}");
        // And with ample memory the floor is achieved.
        assert_eq!(min_io(&dag, 24), Some(compulsory));
    }

    #[test]
    fn infeasible_m_is_reported() {
        let dag = cholesky_dag(3);
        assert!(min_io(&dag, dag.min_feasible_m() - 1).is_none());
    }

    #[test]
    fn entry_granular_n3_achieves_the_floor_even_at_tight_memory() {
        // Instructive negative result: at entry granularity the n = 3
        // Cholesky DAG can be scheduled with NO spills even at the
        // minimum feasible M — free deletes plus a good order suffice.
        // (The Omega(n^3/sqrt(M)) lower bound is asymptotic; tiny DAGs
        // sit on the compulsory floor.)
        let dag = cholesky_dag(3);
        let compulsory = (dag.inputs.count_ones() + dag.outputs.count_ones()) as u64;
        let tight = min_io(&dag, dag.min_feasible_m()).unwrap();
        assert_eq!(tight, compulsory);
    }

    #[test]
    fn shared_values_evicted_between_phases_force_spills() {
        // A DAG engineered so tight memory MUST re-read: o1 and o2 each
        // need three inputs (overlapping in i2, i3); o3 needs i1 plus
        // both earlier outputs.  At M = 4 the live set around o2 evicts
        // i1 and o1, which o3 then has to restore: 2 extra I/Os over the
        // compulsory 4 reads + 3 writes.
        let mut preds = vec![Vec::new(); 7]; // i1..i4 = 0..4, o1=4, o2=5, o3=6
        preds[4] = vec![0, 1, 2];
        preds[5] = vec![1, 2, 3];
        preds[6] = vec![0, 4, 5];
        let dag = PebbleDag {
            preds,
            inputs: 0b0001111,
            outputs: 0b1110000,
        };
        let compulsory = 4 + 3;
        let m = dag.min_feasible_m();
        assert_eq!(m, 4);
        let tight = min_io(&dag, m).unwrap();
        assert!(
            tight > compulsory,
            "expected forced spills: {tight} vs compulsory {compulsory}"
        );
        // With ample memory the floor returns.
        assert_eq!(min_io(&dag, 7), Some(compulsory));
    }

    #[test]
    fn real_algorithms_dominate_the_game_optimum() {
        // The measured words of the naive schedule at the same entry
        // granularity must be >= the exact game optimum (it is a lower
        // bound over ALL schedules).
        use crate::counting::CountingTracer;
        use crate::tracer::Tracer;
        use cholcomm_layout::{ColMajor, Layout};

        let n = 3;
        let dag = cholesky_dag(n);
        let opt = min_io(&dag, dag.min_feasible_m()).unwrap();

        // Replay the naive left-looking transfer schedule at entry level.
        let layout = ColMajor::square(n);
        let mut tr = CountingTracer::uncapped();
        for j in 0..n {
            let col: Vec<_> = (j..n).map(|i| (i, j)).collect();
            tr.touch_runs(&layout.runs_for(col.clone()), crate::Access::Read);
            for k in 0..j {
                let colk: Vec<_> = (j..n).map(|i| (i, k)).collect();
                tr.touch_runs(&layout.runs_for(colk), crate::Access::Read);
            }
            tr.touch_runs(&layout.runs_for(col), crate::Access::Write);
        }
        assert!(
            tr.stats().words >= opt,
            "naive {} >= pebble optimum {opt}",
            tr.stats().words
        );
    }
}
