//! A tracer that records the raw transfer schedule, for replay and
//! golden-trace testing.
//!
//! Two uses in this workspace:
//!
//! * **determinism** — an algorithm's touch schedule must be a pure
//!   function of `(n, parameters)`, never of the data: run twice on
//!   different matrices, compare traces;
//! * **replay** — a recorded schedule can be re-priced under any other
//!   tracer (e.g. record once, then evaluate several cache sizes without
//!   re-running the algorithm's arithmetic).

use crate::stats::TransferStats;
use crate::tracer::{Access, Tracer};
use cholcomm_layout::Run;

/// Records every touch; also keeps plain counters for convenience.
#[derive(Debug, Default, Clone)]
pub struct RecordingTracer {
    events: Vec<(Access, Vec<Run>)>,
    stats: TransferStats,
}

impl RecordingTracer {
    /// Empty recording.
    pub fn new() -> Self {
        Self::default()
    }

    /// The recorded events in order.
    pub fn events(&self) -> &[(Access, Vec<Run>)] {
        &self.events
    }

    /// Total touched words (every touch charged, like a
    /// [`crate::CountingTracer`] with no cap).
    pub fn touched_words(&self) -> u64 {
        self.stats.words
    }

    /// Replay the recorded schedule into another tracer.
    pub fn replay(&self, into: &mut impl Tracer) {
        for (mode, runs) in &self.events {
            into.touch_runs(runs, *mode);
        }
    }

    /// `true` when two recordings describe the identical schedule.
    pub fn same_schedule(&self, other: &Self) -> bool {
        self.events.len() == other.events.len()
            && self
                .events
                .iter()
                .zip(&other.events)
                .all(|((m1, r1), (m2, r2))| m1 == m2 && r1 == r2)
    }
}

impl Tracer for RecordingTracer {
    fn touch_runs(&mut self, runs: &[Run], mode: Access) {
        for r in runs {
            self.stats.words += r.len() as u64;
        }
        self.stats.messages += runs.len() as u64;
        self.events.push((mode, runs.to_vec()));
    }

    fn stats(&self) -> TransferStats {
        self.stats
    }

    fn reset(&mut self) {
        *self = Self::default();
    }
}

#[cfg(test)]
#[allow(clippy::single_range_in_vec_init)] // touch_runs takes &[Range]; one-run slices are the point
mod tests {
    use super::*;
    use crate::counting::CountingTracer;
    use crate::lru::LruTracer;

    #[test]
    fn records_and_replays_identically() {
        let mut rec = RecordingTracer::new();
        rec.touch_runs(&[0..8], Access::Read);
        rec.touch_runs(&[8..12, 20..24], Access::Write);

        let mut counting = CountingTracer::uncapped();
        rec.replay(&mut counting);
        assert_eq!(counting.stats().words, 16);
        assert_eq!(counting.stats().messages, 3);

        // Replaying into an LRU prices the same schedule differently.
        let mut lru = LruTracer::with_writebacks(64, false);
        rec.replay(&mut lru);
        assert_eq!(lru.fetch_stats().words, 16, "all cold");
        rec.replay(&mut lru);
        assert_eq!(lru.fetch_stats().words, 16, "second pass all hits");
    }

    #[test]
    fn schedule_equality() {
        let mut a = RecordingTracer::new();
        a.touch_runs(&[0..4], Access::Read);
        let mut b = RecordingTracer::new();
        b.touch_runs(&[0..4], Access::Read);
        assert!(a.same_schedule(&b));
        b.touch_runs(&[4..5], Access::Write);
        assert!(!a.same_schedule(&b));
    }
}
