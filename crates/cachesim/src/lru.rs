//! The ideal-cache (LRU) model for cache-oblivious algorithms.
//!
//! A word-granularity fully-associative LRU of capacity `M` (the paper's
//! `B = 1` convention).  Words moved = cache misses (+ dirty write-backs);
//! messages are formed by coalescing misses to consecutive addresses, up
//! to `M` words per message — a maximal contiguous bundle, exactly the
//! paper's message notion.

use crate::coalesce::{MissAccounter, DEFAULT_STREAMS};
use crate::fxhash::AddrMap;
use crate::stats::TransferStats;
use crate::tracer::{Access, Tracer};
use cholcomm_layout::Run;

const NIL: usize = usize::MAX;

#[derive(Debug, Clone, Copy)]
struct Slot {
    addr: usize,
    prev: usize,
    next: usize,
    dirty: bool,
}

/// Word-granularity LRU cache simulator with miss-run message coalescing.
///
/// ```
/// use cholcomm_cachesim::{Access, LruTracer, Tracer};
///
/// let mut t = LruTracer::new(8);
/// t.touch_runs(&[0..4], Access::Read);
/// t.touch_runs(&[0..4], Access::Read); // hits
/// assert_eq!(t.fetch_stats().words, 4);
/// assert_eq!(t.fetch_stats().messages, 1);
/// ```
#[derive(Debug)]
pub struct LruTracer {
    capacity: usize,
    /// Address -> slot index.  A dense array over the matrix footprint
    /// (with hash spill), not SipHash — this lookup is the hot loop.
    map: AddrMap,
    slots: Vec<Slot>,
    head: usize, // most recently used
    tail: usize, // least recently used
    free: Vec<usize>,
    fetch: MissAccounter,
    writeback: MissAccounter,
    count_writebacks: bool,
    streams: usize,
}

impl LruTracer {
    /// LRU tracer with fast-memory capacity `m` words; dirty evictions are
    /// charged as write traffic.
    pub fn new(m: usize) -> Self {
        Self::with_writebacks(m, true)
    }

    /// LRU tracer counting only fetch misses when `count_writebacks` is
    /// false.
    pub fn with_writebacks(m: usize, count_writebacks: bool) -> Self {
        Self::with_streams(m, count_writebacks, DEFAULT_STREAMS)
    }

    /// Full-control constructor: `streams` concurrent message-coalescing
    /// streams (see [`crate::Coalescer`]); `0` disables coalescing
    /// entirely.
    pub fn with_streams(m: usize, count_writebacks: bool, streams: usize) -> Self {
        assert!(m > 0, "cache capacity must be positive");
        LruTracer {
            capacity: m,
            map: AddrMap::new(),
            slots: Vec::new(),
            head: NIL,
            tail: NIL,
            free: Vec::new(),
            fetch: MissAccounter::new(m, streams),
            writeback: MissAccounter::new(m, streams),
            count_writebacks,
            streams,
        }
    }

    /// Pre-size the address index for a trace touching `[0, footprint)`
    /// and reserve the slot arena — one allocation up front instead of
    /// geometric regrowth mid-replay.
    pub fn reserve_footprint(&mut self, footprint: usize) {
        if self.map.is_empty() {
            self.map = AddrMap::with_footprint(footprint);
        }
        self.slots.reserve(self.capacity.min(footprint).saturating_sub(self.slots.len()));
    }

    /// Fast-memory capacity in words.
    pub fn capacity(&self) -> usize {
        self.capacity
    }

    /// Fetch-only traffic (slow → fast).
    pub fn fetch_stats(&self) -> TransferStats {
        self.fetch.stats()
    }

    /// Write-back traffic (fast → slow), populated when write-back
    /// counting is enabled and after [`flush`](Self::flush).
    pub fn writeback_stats(&self) -> TransferStats {
        self.writeback.stats()
    }

    fn detach(&mut self, s: usize) {
        let Slot { prev, next, .. } = self.slots[s];
        if prev != NIL {
            self.slots[prev].next = next;
        } else {
            self.head = next;
        }
        if next != NIL {
            self.slots[next].prev = prev;
        } else {
            self.tail = prev;
        }
    }

    fn push_front(&mut self, s: usize) {
        self.slots[s].prev = NIL;
        self.slots[s].next = self.head;
        if self.head != NIL {
            self.slots[self.head].prev = s;
        }
        self.head = s;
        if self.tail == NIL {
            self.tail = s;
        }
    }

    fn evict_lru(&mut self) {
        let s = self.tail;
        debug_assert_ne!(s, NIL);
        let Slot { addr, dirty, .. } = self.slots[s];
        self.detach(s);
        self.map.remove(addr);
        self.free.push(s);
        if dirty && self.count_writebacks {
            self.writeback.charge(addr);
        }
    }

    fn access(&mut self, addr: usize, mode: Access) {
        if let Some(s) = self.map.get(addr) {
            let s = s as usize;
            // Hit: refresh recency, maybe dirty.
            if s != self.head {
                self.detach(s);
                self.push_front(s);
            }
            if matches!(mode, Access::Write) {
                self.slots[s].dirty = true;
            }
            return;
        }
        // Miss: one word of fetch traffic, coalesced into a message.
        self.fetch.charge(addr);

        if self.map.len() >= self.capacity {
            self.evict_lru();
        }
        let s = match self.free.pop() {
            Some(s) => {
                self.slots[s] = Slot {
                    addr,
                    prev: NIL,
                    next: NIL,
                    dirty: matches!(mode, Access::Write),
                };
                s
            }
            None => {
                self.slots.push(Slot {
                    addr,
                    prev: NIL,
                    next: NIL,
                    dirty: matches!(mode, Access::Write),
                });
                self.slots.len() - 1
            }
        };
        self.map.insert(addr, s as u64);
        self.push_front(s);
    }

    /// Evict everything, charging write-backs for dirty words — call at
    /// the end of an algorithm so the written output is fully accounted.
    pub fn flush(&mut self) {
        // Evict in address order so the flush coalesces like a real
        // streaming write-out of the result; the dense address index
        // iterates in ascending address order already.
        let dirty_addrs: Vec<usize> = self
            .map
            .iter_sorted()
            .filter(|&(_, s)| self.slots[s as usize].dirty)
            .map(|(a, _)| a)
            .collect();
        if self.count_writebacks {
            for a in dirty_addrs {
                self.writeback.charge(a);
            }
        }
        self.map.clear();
        self.slots.clear();
        self.free.clear();
        self.head = NIL;
        self.tail = NIL;
    }

    /// Total traffic including write-backs.
    pub fn total_stats(&self) -> TransferStats {
        self.fetch.stats() + self.writeback.stats()
    }
}

impl Tracer for LruTracer {
    fn touch_runs(&mut self, runs: &[Run], mode: Access) {
        for r in runs {
            for addr in r.clone() {
                self.access(addr, mode);
            }
        }
    }

    fn stats(&self) -> TransferStats {
        self.total_stats()
    }

    fn reset(&mut self) {
        // Preserve the full configuration — the old reset silently
        // dropped a custom `streams` setting back to the default.
        *self = LruTracer::with_streams(self.capacity, self.count_writebacks, self.streams);
    }
}

#[cfg(test)]
#[allow(clippy::single_range_in_vec_init)] // touch_runs takes &[Range]; one-run slices are the point
mod tests {
    use super::*;
    use crate::tracer::touch;
    use cholcomm_layout::{cells_col_segment, ColMajor, Layout};

    fn read_addrs(t: &mut LruTracer, addrs: &[usize]) {
        for &a in addrs {
            t.touch_runs(&[a..a + 1], Access::Read);
        }
    }

    #[test]
    fn hits_are_free() {
        let mut t = LruTracer::new(4);
        read_addrs(&mut t, &[0, 1, 0, 1, 0, 1]);
        assert_eq!(t.fetch_stats().words, 2);
    }

    #[test]
    fn capacity_evicts_lru_order() {
        let mut t = LruTracer::new(2);
        read_addrs(&mut t, &[0, 1, 2]); // evicts 0
        read_addrs(&mut t, &[1]); // hit
        assert_eq!(t.fetch_stats().words, 3);
        read_addrs(&mut t, &[0]); // miss again
        assert_eq!(t.fetch_stats().words, 4);
    }

    #[test]
    fn contiguous_misses_coalesce_into_one_message() {
        let mut t = LruTracer::new(64);
        t.touch_runs(&[0..32], Access::Read);
        let s = t.fetch_stats();
        assert_eq!(s.words, 32);
        assert_eq!(s.messages, 1);
    }

    #[test]
    fn messages_capped_at_capacity() {
        let mut t = LruTracer::new(8);
        t.touch_runs(&[0..8], Access::Read);
        // Working set == capacity: second chunk evicts as it goes, but the
        // stream of misses is contiguous so it extends in capped chunks.
        t.touch_runs(&[8..16], Access::Read);
        let s = t.fetch_stats();
        assert_eq!(s.words, 16);
        assert_eq!(s.messages, 2, "16 contiguous miss-words at cap 8");
    }

    #[test]
    fn gap_breaks_message() {
        let mut t = LruTracer::new(64);
        t.touch_runs(&[0..4], Access::Read);
        t.touch_runs(&[10..14], Access::Read);
        assert_eq!(t.fetch_stats().messages, 2);
    }

    #[test]
    fn writebacks_counted_on_dirty_eviction_and_flush() {
        let mut t = LruTracer::new(2);
        t.touch_runs(&[0..1], Access::Write);
        t.touch_runs(&[1..2], Access::Write);
        t.touch_runs(&[2..3], Access::Read); // evicts dirty 0
        assert_eq!(t.writeback_stats().words, 1);
        t.flush();
        assert_eq!(t.writeback_stats().words, 2, "dirty 1 flushed; clean 2 not");
    }

    #[test]
    fn repeated_scan_larger_than_cache_always_misses() {
        // Classic LRU pathology: scanning N > M words repeatedly never
        // hits.  This is what makes the naive algorithms Θ(n^3).
        let mut t = LruTracer::new(8);
        for _ in 0..3 {
            t.touch_runs(&[0..16], Access::Read);
        }
        assert_eq!(t.fetch_stats().words, 48);
    }

    #[test]
    fn working_set_within_cache_is_read_once() {
        let l = ColMajor::square(8);
        let mut t = LruTracer::new(128);
        for _ in 0..5 {
            for j in 0..8 {
                touch(&mut t, &l, cells_col_segment(j, 0, 8), Access::Read);
            }
        }
        assert_eq!(t.fetch_stats().words, 64, "whole matrix fits: one load");
        assert_eq!(t.fetch_stats().messages, 1, "one contiguous scan");
        assert_eq!(l.len(), 64);
    }

    #[test]
    fn reset_restores_cold_cache() {
        let mut t = LruTracer::new(4);
        t.touch_runs(&[0..4], Access::Read);
        t.reset();
        assert_eq!(t.stats(), TransferStats::default());
        t.touch_runs(&[0..1], Access::Read);
        assert_eq!(t.fetch_stats().words, 1, "cold again after reset");
    }
}

#[cfg(test)]
#[allow(clippy::single_range_in_vec_init)] // touch_runs takes &[Range]; one-run slices are the point
mod model_tests {
    //! Model-based testing: the arena-linked-list LRU must agree, access
    //! for access, with a brutally simple reference implementation.

    use super::*;
    use proptest::prelude::*;

    /// Reference LRU: O(capacity) per access, obviously correct.
    struct RefLru {
        cap: usize,
        order: Vec<usize>, // most recent first
        misses: u64,
    }

    impl RefLru {
        fn new(cap: usize) -> Self {
            RefLru { cap, order: Vec::new(), misses: 0 }
        }
        fn access(&mut self, addr: usize) {
            if let Some(pos) = self.order.iter().position(|&a| a == addr) {
                self.order.remove(pos);
            } else {
                self.misses += 1;
                if self.order.len() >= self.cap {
                    self.order.pop();
                }
            }
            self.order.insert(0, addr);
        }
    }

    proptest! {
        #[test]
        fn fast_lru_agrees_with_reference(
            trace in proptest::collection::vec(0usize..48, 1..600),
            cap in 1usize..24,
        ) {
            let mut fast = LruTracer::with_writebacks(cap, false);
            let mut slow = RefLru::new(cap);
            for &a in &trace {
                fast.touch_runs(&[a..a + 1], Access::Read);
                slow.access(a);
            }
            prop_assert_eq!(fast.fetch_stats().words, slow.misses);
        }

        #[test]
        fn write_then_read_marks_exactly_dirty_words(
            writes in proptest::collection::vec(0usize..32, 1..50),
        ) {
            // Every written word must come back out at flush exactly once.
            let mut t = LruTracer::new(1024); // nothing evicted early
            let mut distinct: std::collections::HashSet<usize> = Default::default();
            for &a in &writes {
                t.touch_runs(&[a..a + 1], Access::Write);
                distinct.insert(a);
            }
            t.flush();
            prop_assert_eq!(t.writeback_stats().words, distinct.len() as u64);
        }
    }
}
