//! LRU stack-distance simulation (Bentley–Olken): one pass over the access
//! trace yields the miss traffic of *every* cache capacity simultaneously.
//!
//! This is the engine behind the multi-level hierarchy experiments
//! (Section 3.2 / Corollary 3.2): for an inclusive LRU hierarchy with
//! capacities `M_1 <= M_2 <= ... <= M_{d-1}`, the words moved between
//! levels `i` and `i+1` are exactly the accesses whose LRU stack distance
//! exceeds `M_i` (plus cold misses) — the classic inclusion ("stack")
//! property of LRU.

use crate::coalesce::{MissAccounter, DEFAULT_STREAMS};
use crate::fxhash::AddrMap;
use crate::stats::TransferStats;
use crate::tracer::{Access, Tracer};
use cholcomm_layout::Run;

/// Fenwick tree over access times; a 1 marks the *most recent* access time
/// of some address.
#[derive(Debug, Default)]
struct Fenwick {
    tree: Vec<u32>,
    active: Vec<bool>,
    /// Number of active positions — the value of the whole-range node.
    total: u32,
}

impl Fenwick {
    /// Pre-sized tree covering positions `[0, n)` — replay drivers know
    /// the trace length (one time slot per touched word) up front, so
    /// the hot loop never grows at all.
    fn with_capacity(n: usize) -> Self {
        let cap = n.next_power_of_two().max(1024);
        Fenwick {
            tree: vec![0u32; cap],
            active: vec![false; cap],
            total: 0,
        }
    }

    /// Double the index space.  The new positions are all inactive, and
    /// for `len` a power of two every new node `k` in `(len, 2*len)`
    /// covers a range `(k - lowbit(k), k]` that lies entirely beyond
    /// `len` (so its value is 0); only the new whole-range root at
    /// `2*len` covers old positions, and its value is the running
    /// `total`.  O(len) zero-fill, no prefix-sum rebuild — the old code
    /// re-inserted every active bit at O(len log len) per growth.
    fn double(&mut self) {
        let old = self.tree.len();
        debug_assert!(old.is_power_of_two());
        self.tree.resize(old * 2, 0);
        self.tree[old * 2 - 1] = self.total;
        self.active.resize(old * 2, false);
    }

    fn ensure(&mut self, n: usize) {
        if self.tree.is_empty() {
            *self = Fenwick::with_capacity(n);
            return;
        }
        while n > self.tree.len() {
            self.double();
        }
    }

    fn set(&mut self, i: usize, on: bool) {
        self.ensure(i + 1);
        if self.active[i] == on {
            return;
        }
        self.active[i] = on;
        let delta: i64 = if on { 1 } else { -1 };
        self.total = (i64::from(self.total) + delta) as u32;
        let mut k = i + 1;
        while k <= self.tree.len() {
            self.tree[k - 1] = (self.tree[k - 1] as i64 + delta) as u32;
            k += k & k.wrapping_neg();
        }
    }

    /// Count of active positions in `[0, i]`.
    fn prefix(&self, i: usize) -> u64 {
        let mut k = (i + 1).min(self.tree.len());
        let mut s = 0u64;
        while k > 0 {
            s += u64::from(self.tree[k - 1]);
            k -= k & k.wrapping_neg();
        }
        s
    }
}

#[derive(Debug, Clone)]
struct Level {
    capacity: usize,
    traffic: MissAccounter,
}

/// One-pass multi-capacity LRU simulator.
///
/// Construct with the hierarchy's capacities (ascending); after feeding
/// the trace, [`level_stats`](Self::level_stats) reports the traffic
/// between each level `i` and the next.
#[derive(Debug)]
pub struct StackDistanceTracer {
    time: usize,
    /// Address -> most recent access time.  Dense over the matrix
    /// footprint (hash spill past the dense limit) — this insert is the
    /// hot loop.
    last_access: AddrMap,
    fen: Fenwick,
    levels: Vec<Level>,
    cold_misses: u64,
    accesses: u64,
}

impl StackDistanceTracer {
    /// Simulator for the given ascending cache capacities.
    pub fn new(capacities: &[usize]) -> Self {
        assert!(!capacities.is_empty(), "need at least one capacity");
        assert!(
            capacities.windows(2).all(|w| w[0] <= w[1]),
            "capacities must be ascending"
        );
        assert!(capacities[0] > 0);
        StackDistanceTracer {
            time: 0,
            last_access: AddrMap::new(),
            fen: Fenwick::default(),
            levels: capacities
                .iter()
                .map(|&c| Level {
                    capacity: c,
                    traffic: MissAccounter::new(c, DEFAULT_STREAMS),
                })
                .collect(),
            cold_misses: 0,
            accesses: 0,
        }
    }

    /// Simulator pre-sized for a known trace: `accesses` word touches
    /// (sizes the time-indexed Fenwick tree once, up front) over
    /// addresses in `[0, footprint)` (sizes the dense last-access
    /// index).  Replay drivers get both numbers for free from a
    /// [`crate::CompactTrace`].
    pub fn with_trace_hint(capacities: &[usize], accesses: u64, footprint: usize) -> Self {
        let mut t = Self::new(capacities);
        t.fen = Fenwick::with_capacity(usize::try_from(accesses).unwrap_or(usize::MAX));
        t.last_access = AddrMap::with_footprint(footprint);
        t
    }

    fn record(&mut self, addr: usize) {
        self.accesses += 1;
        let t = self.time;
        self.time += 1;
        let dist: Option<u64> = match self.last_access.insert(addr, t as u64) {
            Some(tprev) => {
                let tprev = tprev as usize;
                // Distinct other addresses touched since tprev: active
                // times in (tprev, t).
                let others = self.fen.prefix(t.saturating_sub(1))
                    - self.fen.prefix(tprev);
                self.fen.set(tprev, false);
                Some(others + 1) // stack distance counts the address itself
            }
            None => {
                self.cold_misses += 1;
                None
            }
        };
        self.fen.set(t, true);
        // Capacities ascend, so the levels that miss are exactly a
        // prefix of the ladder: every level with capacity < dist (all
        // of them on a cold miss).  One partition_point instead of a
        // per-level comparison.
        let missing = match dist {
            None => self.levels.len(),
            Some(d) => self.levels.partition_point(|lv| (lv.capacity as u64) < d),
        };
        for lv in &mut self.levels[..missing] {
            lv.traffic.charge(addr);
        }
    }

    /// Traffic between level `i` (capacity `capacities[i]`) and level
    /// `i+1`.
    pub fn level_stats(&self, i: usize) -> TransferStats {
        self.levels[i].traffic.stats()
    }

    /// The whole capacity ladder's miss traffic from the single pass:
    /// `(capacity, stats)` per level, ascending.
    pub fn ladder_stats(&self) -> Vec<(usize, TransferStats)> {
        self.levels
            .iter()
            .map(|l| (l.capacity, l.traffic.stats()))
            .collect()
    }

    /// Number of distinct addresses ever touched (= cold misses).
    pub fn cold_misses(&self) -> u64 {
        self.cold_misses
    }

    /// Total accesses observed.
    pub fn accesses(&self) -> u64 {
        self.accesses
    }

    /// The simulated capacities.
    pub fn capacities(&self) -> Vec<usize> {
        self.levels.iter().map(|l| l.capacity).collect()
    }

    /// The miss-ratio curve: `(capacity, misses / accesses)` per level —
    /// the standard working-set characterization of a trace, here
    /// obtained from a single pass.
    pub fn miss_ratio_curve(&self) -> Vec<(usize, f64)> {
        let acc = self.accesses.max(1) as f64;
        self.levels
            .iter()
            .map(|l| (l.capacity, l.traffic.stats().words as f64 / acc))
            .collect()
    }
}

impl Tracer for StackDistanceTracer {
    fn touch_runs(&mut self, runs: &[Run], _mode: Access) {
        for r in runs {
            for addr in r.clone() {
                self.record(addr);
            }
        }
    }

    /// Reports the innermost level's traffic.
    fn stats(&self) -> TransferStats {
        self.levels[0].traffic.stats()
    }

    fn reset(&mut self) {
        let caps = self.capacities();
        *self = StackDistanceTracer::new(&caps);
    }
}

#[cfg(test)]
#[allow(clippy::single_range_in_vec_init)] // touch_runs takes &[Range]; one-run slices are the point
mod tests {
    use super::*;
    use crate::lru::LruTracer;
    use proptest::prelude::*;

    fn feed(t: &mut impl Tracer, trace: &[usize]) {
        for &a in trace {
            t.touch_runs(&[a..a + 1], Access::Read);
        }
    }

    #[test]
    fn simple_distances() {
        let mut t = StackDistanceTracer::new(&[1, 2]);
        feed(&mut t, &[10, 11, 10, 11, 12, 10]);
        // Capacity 1: every access misses except none (alternating).
        assert_eq!(t.level_stats(0).words, 6);
        // Capacity 2: 10,11 cold; 10,11 hits (d=2); 12 cold; 10 d=3 miss.
        assert_eq!(t.level_stats(1).words, 4);
        assert_eq!(t.cold_misses(), 3);
    }

    #[test]
    fn monotone_in_capacity() {
        let mut t = StackDistanceTracer::new(&[2, 4, 8, 16]);
        let trace: Vec<usize> = (0..200).map(|i| (i * 7) % 23).collect();
        feed(&mut t, &trace);
        for i in 0..3 {
            assert!(
                t.level_stats(i).words >= t.level_stats(i + 1).words,
                "inclusion property"
            );
        }
    }

    proptest! {
        /// The stack-distance simulator must agree *exactly* with a direct
        /// LRU simulation at every capacity, for both words and messages.
        #[test]
        fn agrees_with_direct_lru(
            trace in proptest::collection::vec(0usize..64, 1..400),
            cap in 1usize..32,
        ) {
            let mut sd = StackDistanceTracer::new(&[cap]);
            feed(&mut sd, &trace);
            let mut lru = LruTracer::with_writebacks(cap, false);
            feed(&mut lru, &trace);
            prop_assert_eq!(sd.level_stats(0).words, lru.fetch_stats().words);
            prop_assert_eq!(sd.level_stats(0).messages, lru.fetch_stats().messages);
        }
    }

    #[test]
    fn miss_ratio_curve_is_monotone_and_bounded() {
        let mut t = StackDistanceTracer::new(&[2, 8, 32, 128]);
        let trace: Vec<usize> = (0..3000).map(|i| (i * 13) % 97).collect();
        feed(&mut t, &trace);
        let curve = t.miss_ratio_curve();
        assert_eq!(curve.len(), 4);
        for w in curve.windows(2) {
            assert!(w[0].1 >= w[1].1, "monotone: {curve:?}");
        }
        assert!(curve[0].1 <= 1.0 && curve[3].1 > 0.0);
        // At capacity >= working set (97 distinct), only cold misses.
        assert!((curve[3].1 - 97.0 / 3000.0).abs() < 1e-9);
    }

    #[test]
    fn fenwick_growth_is_transparent() {
        let mut t = StackDistanceTracer::new(&[4]);
        // Enough accesses to force several Fenwick rebuilds.
        let trace: Vec<usize> = (0..5000).map(|i| i % 10).collect();
        feed(&mut t, &trace);
        // Working set of 10 > 4: plenty of misses but fewer than accesses.
        let w = t.level_stats(0).words;
        assert!(w > 10 && w <= 5000);
        let mut big = StackDistanceTracer::new(&[16]);
        feed(&mut big, &trace);
        assert_eq!(big.level_stats(0).words, 10, "whole set fits at cap 16");
    }
}
