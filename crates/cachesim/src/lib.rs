#![warn(missing_docs)]
//! # cholcomm-cachesim
//!
//! Sequential communication-cost models for the two-level I/O (DAM) model
//! and the multi-level hierarchy model of the paper.
//!
//! The paper measures two costs between fast and slow memory:
//!
//! * **bandwidth** — total words moved;
//! * **latency** — total messages, where a message is a maximal bundle of
//!   *contiguously stored* words, at most `M` (the fast-memory size) long.
//!
//! Three tracers implement that accounting:
//!
//! * [`CountingTracer`] — explicit-transfer accounting: every transfer an
//!   algorithm declares is charged in full.  This reproduces the paper's
//!   closed-form counts for the naïve and LAPACK algorithms, whose
//!   analyses assume an explicitly managed fast memory.
//! * [`LruTracer`] — the ideal-cache model of Frigo–Leiserson–Prokop–
//!   Ramachandran: a word-granularity LRU of capacity `M`; misses are
//!   words moved, and misses to consecutive addresses coalesce into
//!   messages capped at `M` words.  Cache-oblivious algorithms (the
//!   recursive ones) are measured here — they never mention `M`.
//! * [`StackDistanceTracer`] — one pass, *every* capacity at once, via LRU
//!   stack distances (Bentley–Olken with a binary indexed tree).  This is
//!   the multi-level hierarchy model of Section 3.2: traffic between
//!   levels `i` and `i+1` is exactly the accesses whose stack distance
//!   exceeds `M_i`.

pub mod coalesce;
pub mod counting;
pub mod fxhash;
pub mod gauge;
pub mod lru;
pub mod pebble;
pub mod recording;
pub mod setassoc;
pub mod stackdist;
pub mod stats;
pub mod trace;
pub mod tracer;

pub use coalesce::{Coalescer, MissAccounter, DEFAULT_STREAMS};
pub use counting::CountingTracer;
pub use fxhash::{AddrMap, FxHashMap, FxHasher};
pub use gauge::FastMemGauge;
pub use lru::LruTracer;
pub use pebble::{cholesky_dag, min_io, PebbleDag};
pub use recording::RecordingTracer;
pub use setassoc::SetAssocTracer;
pub use stackdist::StackDistanceTracer;
pub use stats::TransferStats;
pub use trace::CompactTrace;
pub use tracer::{touch, touch_at, Access, NullTracer, Tracer};
