//! Set-associative cache simulator — the "real hardware" ablation of the
//! fully-associative ideal-cache model.
//!
//! The paper's bounds (and the FLPR ideal-cache analysis behind the
//! recursive algorithms) assume a fully-associative LRU.  Real caches are
//! set-associative, and power-of-two matrix strides are the classic way
//! to generate conflict misses that the ideal model does not predict.
//! This tracer measures that gap: the recursive (Morton) layout, whose
//! neighbouring elements share address *locality* rather than a common
//! stride, suffers far fewer conflicts than column-major — an effect the
//! paper's model abstracts away but that argues even more strongly for
//! the block-contiguous formats.

use crate::coalesce::{MissAccounter, DEFAULT_STREAMS};
use crate::stats::TransferStats;
use crate::tracer::{Access, Tracer};
use cholcomm_layout::Run;

/// A `ways`-way set-associative cache of `capacity` words total with
/// word-granularity lines and LRU replacement within each set.
#[derive(Debug)]
pub struct SetAssocTracer {
    sets: Vec<Vec<(usize, u64)>>, // per set: (addr, last-use tick)
    n_sets: usize,
    ways: usize,
    tick: u64,
    traffic: MissAccounter,
}

impl SetAssocTracer {
    /// A cache of `capacity` words with the given associativity.
    /// `capacity` must be a multiple of `ways`; the number of sets is
    /// rounded up to a power of two (as in hardware index functions).
    pub fn new(capacity: usize, ways: usize) -> Self {
        assert!(ways > 0 && capacity >= ways);
        let n_sets = (capacity / ways).next_power_of_two();
        SetAssocTracer {
            sets: (0..n_sets).map(|_| Vec::with_capacity(ways)).collect(),
            n_sets,
            ways,
            tick: 0,
            traffic: MissAccounter::new(capacity, DEFAULT_STREAMS),
        }
    }

    /// Effective capacity in words (`sets * ways`).
    pub fn capacity(&self) -> usize {
        self.n_sets * self.ways
    }

    fn access(&mut self, addr: usize) {
        self.tick += 1;
        let set = addr & (self.n_sets - 1);
        let lines = &mut self.sets[set];
        if let Some(line) = lines.iter_mut().find(|(a, _)| *a == addr) {
            line.1 = self.tick;
            return;
        }
        self.traffic.charge(addr);
        if lines.len() >= self.ways {
            // Evict the LRU way of this set.
            let lru = lines
                .iter()
                .enumerate()
                .min_by_key(|(_, (_, t))| *t)
                .map(|(i, _)| i)
                .expect("non-empty set");
            lines.swap_remove(lru);
        }
        lines.push((addr, self.tick));
    }
}

impl Tracer for SetAssocTracer {
    fn touch_runs(&mut self, runs: &[Run], _mode: Access) {
        for r in runs {
            for addr in r.clone() {
                self.access(addr);
            }
        }
    }

    fn stats(&self) -> TransferStats {
        self.traffic.stats()
    }

    fn reset(&mut self) {
        *self = SetAssocTracer::new(self.capacity(), self.ways);
    }
}

#[cfg(test)]
#[allow(clippy::single_range_in_vec_init)] // touch_runs takes &[Range]; one-run slices are the point
mod tests {
    use super::*;
    use crate::lru::LruTracer;

    fn feed(t: &mut impl Tracer, trace: &[usize]) {
        for &a in trace {
            t.touch_runs(&[a..a + 1], Access::Read);
        }
    }

    #[test]
    fn fully_resident_working_set_hits() {
        let mut t = SetAssocTracer::new(16, 4);
        let trace: Vec<usize> = (0..8).chain(0..8).chain(0..8).collect();
        feed(&mut t, &trace);
        assert_eq!(t.stats().words, 8, "dense small set fits");
    }

    #[test]
    fn conflicting_strides_thrash_a_direct_mapped_cache() {
        // Two addresses mapping to the same set in a direct-mapped cache
        // of 16 sets: alternating accesses always miss, while a
        // fully-associative LRU of the same capacity always hits.
        let mut dm = SetAssocTracer::new(16, 1);
        let mut fa = LruTracer::with_writebacks(16, false);
        let trace: Vec<usize> = (0..20).flat_map(|_| [0usize, 16]).collect();
        feed(&mut dm, &trace);
        feed(&mut fa, &trace);
        assert_eq!(fa.fetch_stats().words, 2, "ideal cache: 2 cold misses");
        assert_eq!(dm.stats().words, 40, "direct-mapped: every access conflicts");
    }

    #[test]
    fn associativity_absorbs_small_conflict_groups() {
        // Same trace, 2-way: both conflicting lines coexist.
        let mut w2 = SetAssocTracer::new(32, 2);
        let trace: Vec<usize> = (0..20).flat_map(|_| [0usize, 16]).collect();
        feed(&mut w2, &trace);
        assert_eq!(w2.stats().words, 2);
    }

    #[test]
    fn high_associativity_approaches_full_lru() {
        // With ways == capacity there is one set: exactly LRU.
        let cap = 32;
        let mut sa = SetAssocTracer::new(cap, cap);
        let mut fa = LruTracer::with_writebacks(cap, false);
        let trace: Vec<usize> = (0..500).map(|i| (i * 17) % 97).collect();
        feed(&mut sa, &trace);
        feed(&mut fa, &trace);
        assert_eq!(sa.stats().words, fa.fetch_stats().words);
    }
}
