//! The tracer abstraction: algorithms declare which stored words they
//! touch; a tracer turns those touches into word/message counts under a
//! particular memory model.

use crate::stats::TransferStats;
use cholcomm_layout::{Layout, Run};

/// Direction of a memory touch.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Access {
    /// Data flows slow → fast.
    Read,
    /// Data flows fast → slow.
    Write,
}

/// A communication-cost model fed by address runs.
///
/// Implementations differ in *when* a touched word costs a transfer:
/// always ([`crate::CountingTracer`]), on an LRU miss
/// ([`crate::LruTracer`]), or per stack distance
/// ([`crate::StackDistanceTracer`]).
pub trait Tracer {
    /// Record a touch of the given (sorted, disjoint) address runs.
    fn touch_runs(&mut self, runs: &[Run], mode: Access);

    /// Counters between fast and slow memory.  Multi-level tracers report
    /// their innermost (level-0 / level-1) interface here.
    fn stats(&self) -> TransferStats;

    /// Reset all counters (and any cache state).
    fn reset(&mut self);
}

/// Convenience: touch the cells of `layout` covering `cells`.
pub fn touch<L: Layout>(
    tracer: &mut impl Tracer,
    layout: &L,
    cells: impl IntoIterator<Item = (usize, usize)>,
    mode: Access,
) {
    let runs = layout.runs_for(cells);
    tracer.touch_runs(&runs, mode);
}

/// Touch cells of a layout whose storage lives at a base address offset.
///
/// Distinct operand matrices (e.g. the `A`, `B`, `C` of the recursive
/// matrix multiplication) occupy *disjoint* regions of slow memory; giving
/// each a distinct base keeps their addresses from aliasing inside a
/// single cache simulation.
pub fn touch_at<L: Layout>(
    tracer: &mut impl Tracer,
    layout: &L,
    base: usize,
    cells: impl IntoIterator<Item = (usize, usize)>,
    mode: Access,
) {
    let runs: Vec<Run> = layout
        .runs_for(cells)
        .into_iter()
        .map(|r| (r.start + base)..(r.end + base))
        .collect();
    tracer.touch_runs(&runs, mode);
}

/// A tracer that ignores everything — used to run the instrumented
/// algorithms at full speed for wall-clock benchmarking.
#[derive(Debug, Default, Clone, Copy)]
pub struct NullTracer;

impl Tracer for NullTracer {
    #[inline]
    fn touch_runs(&mut self, _runs: &[Run], _mode: Access) {}
    fn stats(&self) -> TransferStats {
        TransferStats::default()
    }
    fn reset(&mut self) {}
}

#[cfg(test)]
mod tests {
    use super::*;
    use cholcomm_layout::{cells_block, ColMajor};

    #[test]
    fn null_tracer_counts_nothing() {
        let mut t = NullTracer;
        let l = ColMajor::square(8);
        touch(&mut t, &l, cells_block(0, 0, 8, 8), Access::Read);
        assert_eq!(t.stats(), TransferStats::default());
    }
}
