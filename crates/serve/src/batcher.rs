//! The batch former: size-buckets compatible jobs between admission and
//! the shards.
//!
//! The serve traffic mix is Zipf-dominated by small systems, where a
//! single factorization never reaches BLAS-3 intensity and per-request
//! dispatch constants dominate.  The batcher holds admitted `Factor`/
//! `Solve` jobs briefly in **power-of-two size buckets**, per home
//! shard, and releases a whole bucket to its shard as one unit — which
//! the shard factors in a single run of the batched kernels
//! ([`crate::engine::factor_batch`]).
//!
//! Everything here is driven synchronously from [`Service::submit`]
//! (single-threaded by construction), so batch membership — like every
//! admission decision — is a pure function of `(config, request
//! stream)`: deterministic and replayable.
//!
//! **Flush discipline.**  A bucket is released when any of:
//! - it reaches [`BatchConfig::max_batch`] members;
//! - a later submission's virtual arrival time shows the bucket's
//!   *oldest* member has waited [`BatchConfig::formation_delay_us`]
//!   (virtual time only advances at submissions, so this check runs at
//!   every submit);
//! - the caller flushes explicitly ([`Service::flush_batches`]) or the
//!   service shuts down.
//!
//! The formation wait is *charged against each member's deadline
//! budget*: the shard computes every member's queue wait from its
//! arrival vtime when the batch executes, and a member whose budget has
//! already expired is shed with a typed `DeadlineExceeded` — never
//! silently factored late.
//!
//! [`Service::submit`]: crate::Service::submit
//! [`Service::flush_batches`]: crate::Service::flush_batches

use crate::jobs::JobKind;
use crate::shard::ShardJob;
use std::collections::BTreeMap;

/// Batching knobs, part of [`crate::ServiceConfig`].
#[derive(Debug, Clone, Copy)]
pub struct BatchConfig {
    /// Master switch.  Off by default: unbatched services behave exactly
    /// as before, request for request.
    pub enabled: bool,
    /// Release a bucket as soon as it holds this many members.
    pub max_batch: usize,
    /// Maximum virtual time (µs) a bucket's oldest member may wait
    /// before the bucket is released regardless of fill.
    pub formation_delay_us: u64,
    /// Orders above this are never batched (big systems reach BLAS-3
    /// intensity on their own, and pow2 padding waste grows with n).
    pub max_bucket_n: usize,
}

impl Default for BatchConfig {
    fn default() -> Self {
        BatchConfig {
            enabled: false,
            max_batch: 32,
            formation_delay_us: 200,
            max_bucket_n: 128,
        }
    }
}

/// The power-of-two size bucket an order-`n` system is padded to.
pub fn bucket_of(n: usize) -> usize {
    n.next_power_of_two().max(1)
}

/// A bucket released by the batcher, ready for its home shard.
pub(crate) struct ReadyBatch {
    pub shard: usize,
    pub bucket_n: usize,
    /// Virtual instant the bucket was released: the submission vtime
    /// that made it due, or (on an explicit flush, where no newer
    /// submission exists) the newest member's arrival.  The shard
    /// counts each member's formation wait from its arrival to this
    /// instant — the wait the deadline check charges.
    pub released_us: u64,
    pub jobs: Vec<ShardJob>,
}

/// Pending buckets, keyed `(home shard, bucket order)`.  BTreeMap so
/// flush order is deterministic.
pub(crate) struct Batcher {
    config: BatchConfig,
    buckets: BTreeMap<(usize, usize), Vec<ShardJob>>,
}

impl Batcher {
    pub(crate) fn new(config: BatchConfig) -> Batcher {
        Batcher {
            config,
            buckets: BTreeMap::new(),
        }
    }

    /// Is this request one the batcher takes?  Only admitted
    /// `Factor`/`Solve` jobs of batchable size; shed requests bypass the
    /// batcher so the degraded-cache rescue stays immediate, and the
    /// GP/Kalman kinds carry per-job state that the batched kernels
    /// don't model.
    pub(crate) fn takes(&self, kind: JobKind, n: usize) -> bool {
        self.config.enabled
            && matches!(kind, JobKind::Factor | JobKind::Solve)
            && n >= 1
            && bucket_of(n) <= self.config.max_bucket_n
    }

    /// Enqueue an admitted job into its `(shard, bucket)` slot.  Release
    /// decisions happen in [`Batcher::due`], which the submitter calls
    /// after *every* submission — batched or not — because each
    /// submission advances virtual time.
    pub(crate) fn push(&mut self, shard: usize, job: ShardJob) {
        let bucket_n = bucket_of(job.request.n);
        self.buckets.entry((shard, bucket_n)).or_default().push(job);
    }

    /// Release every bucket that is due as of virtual time `now_us`:
    /// full to `max_batch`, or oldest member has waited
    /// `formation_delay_us`.  Buckets release in `(shard, bucket)` key
    /// order — deterministic, like everything on the submitter thread.
    pub(crate) fn due(&mut self, now_us: u64) -> Vec<ReadyBatch> {
        let max_batch = self.config.max_batch.max(1);
        let delay = self.config.formation_delay_us;
        let due: Vec<(usize, usize)> = self
            .buckets
            .iter()
            .filter(|(_, jobs)| {
                jobs.len() >= max_batch
                    || jobs
                        .first()
                        .is_some_and(|j| j.request.vtime_us + delay <= now_us)
            })
            .map(|(&key, _)| key)
            .collect();
        due.into_iter()
            .filter_map(|key| self.release(key, Some(now_us)))
            .collect()
    }

    /// Release every pending bucket, in key order.
    pub(crate) fn flush_all(&mut self) -> Vec<ReadyBatch> {
        let keys: Vec<(usize, usize)> = self.buckets.keys().copied().collect();
        keys.into_iter()
            .filter_map(|key| self.release(key, None))
            .collect()
    }

    fn release(&mut self, key: (usize, usize), now_us: Option<u64>) -> Option<ReadyBatch> {
        let jobs = self.buckets.remove(&key)?;
        if jobs.is_empty() {
            return None;
        }
        // On flush there is no current submission; virtual time stands
        // at the newest arrival the batcher has seen in this bucket.
        let newest = jobs.iter().map(|j| j.request.vtime_us).max().unwrap_or(0);
        Some(ReadyBatch {
            shard: key.0,
            bucket_n: key.1,
            released_us: now_us.map_or(newest, |now| now.max(newest)),
            jobs,
        })
    }
}

#[cfg(test)]
#[allow(clippy::unwrap_used)]
mod tests {
    use super::*;

    #[test]
    fn buckets_are_powers_of_two() {
        assert_eq!(bucket_of(1), 1);
        assert_eq!(bucket_of(2), 2);
        assert_eq!(bucket_of(3), 4);
        assert_eq!(bucket_of(64), 64);
        assert_eq!(bucket_of(65), 128);
    }

    #[test]
    fn eligibility_filters_kind_size_and_switch() {
        let on = Batcher::new(BatchConfig {
            enabled: true,
            ..BatchConfig::default()
        });
        assert!(on.takes(JobKind::Factor, 64));
        assert!(on.takes(JobKind::Solve, 1));
        assert!(on.takes(JobKind::Factor, 128));
        assert!(!on.takes(JobKind::Factor, 129)); // bucket 256 > 128
        assert!(!on.takes(JobKind::GpPosterior, 16));
        assert!(!on.takes(JobKind::KalmanStep, 16));
        let off = Batcher::new(BatchConfig::default());
        assert!(!off.takes(JobKind::Factor, 16));
    }
}
