//! Per-shard circuit breaker: `Healthy -> Degraded -> Shedding`.
//!
//! The breaker watches the shard's fault history (transient faults,
//! worker crashes) and widens the shard's refusal surface as faults
//! accumulate: a `Degraded` shard sheds background work pre-emptively;
//! a `Shedding` shard refuses all fresh factorization and serves only
//! ABFT-verified cached factors.  Consecutive clean completions walk the
//! state back down.  State transitions depend only on the shard's
//! (deterministic) job sequence, so they replay exactly.

use crate::admission::Priority;

/// Breaker state, in increasing order of refusal.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord)]
pub enum BreakerState {
    /// Normal operation.
    Healthy,
    /// Recent faults: background work is shed pre-emptively.
    Degraded,
    /// Persistent faults: only cached factors are served.
    Shedding,
}

impl BreakerState {
    /// Stable tag for logs and JSON artifacts.
    pub fn tag(self) -> &'static str {
        match self {
            BreakerState::Healthy => "healthy",
            BreakerState::Degraded => "degraded",
            BreakerState::Shedding => "shedding",
        }
    }
}

/// Thresholds for the two upward transitions and the cool-down.
#[derive(Debug, Clone, Copy)]
pub struct BreakerConfig {
    /// Consecutive faulted jobs that trip `Healthy -> Degraded`.
    pub degrade_after: u32,
    /// Consecutive faulted jobs that trip `-> Shedding`.
    pub shed_after: u32,
    /// Consecutive clean jobs that step the state back down one level.
    pub recover_after: u32,
}

impl Default for BreakerConfig {
    fn default() -> Self {
        BreakerConfig {
            degrade_after: 2,
            shed_after: 4,
            recover_after: 3,
        }
    }
}

/// One shard's breaker.
#[derive(Debug, Clone)]
pub struct CircuitBreaker {
    config: BreakerConfig,
    state: BreakerState,
    consecutive_faults: u32,
    consecutive_clean: u32,
}

impl CircuitBreaker {
    /// A healthy breaker.
    pub fn new(config: BreakerConfig) -> CircuitBreaker {
        CircuitBreaker {
            config,
            state: BreakerState::Healthy,
            consecutive_faults: 0,
            consecutive_clean: 0,
        }
    }

    /// Current state.
    pub fn state(&self) -> BreakerState {
        self.state
    }

    /// Consecutive faulted jobs observed.
    pub fn consecutive_faults(&self) -> u32 {
        self.consecutive_faults
    }

    /// Whether a fresh factorization for `class` may run right now.
    /// (`Shedding` refuses everything fresh; `Degraded` refuses
    /// background work.)
    pub fn admits_fresh(&self, class: Priority) -> bool {
        match self.state {
            BreakerState::Healthy => true,
            BreakerState::Degraded => class != Priority::Background,
            BreakerState::Shedding => false,
        }
    }

    /// Record that a job ran into at least one fault (transient or
    /// crash) during processing.  Returns the new state if it changed.
    pub fn on_fault(&mut self) -> Option<BreakerState> {
        self.consecutive_clean = 0;
        self.consecutive_faults += 1;
        let next = if self.consecutive_faults >= self.config.shed_after {
            BreakerState::Shedding
        } else if self.consecutive_faults >= self.config.degrade_after {
            BreakerState::Degraded
        } else {
            self.state
        };
        self.transition(next)
    }

    /// Record a fault-free completion.  Returns the new state if the
    /// cool-down stepped it back down.
    pub fn on_clean(&mut self) -> Option<BreakerState> {
        self.consecutive_faults = 0;
        self.consecutive_clean += 1;
        if self.consecutive_clean >= self.config.recover_after {
            self.consecutive_clean = 0;
            let next = match self.state {
                BreakerState::Shedding => BreakerState::Degraded,
                BreakerState::Degraded => BreakerState::Healthy,
                BreakerState::Healthy => BreakerState::Healthy,
            };
            return self.transition(next);
        }
        None
    }

    fn transition(&mut self, next: BreakerState) -> Option<BreakerState> {
        if next != self.state {
            self.state = next;
            Some(next)
        } else {
            None
        }
    }
}

#[cfg(test)]
#[allow(clippy::unwrap_used)]
mod tests {
    use super::*;

    #[test]
    fn walks_up_under_faults_and_back_down_when_clean() {
        let mut b = CircuitBreaker::new(BreakerConfig::default());
        assert_eq!(b.state(), BreakerState::Healthy);
        assert!(b.on_fault().is_none()); // 1 fault: still healthy
        assert_eq!(b.on_fault(), Some(BreakerState::Degraded)); // 2
        assert!(b.on_fault().is_none()); // 3
        assert_eq!(b.on_fault(), Some(BreakerState::Shedding)); // 4
        assert!(!b.admits_fresh(Priority::Interactive));

        // Three clean jobs step down to Degraded, three more to Healthy.
        assert!(b.on_clean().is_none());
        assert!(b.on_clean().is_none());
        assert_eq!(b.on_clean(), Some(BreakerState::Degraded));
        assert!(b.admits_fresh(Priority::Interactive));
        assert!(!b.admits_fresh(Priority::Background));
        assert!(b.on_clean().is_none());
        assert!(b.on_clean().is_none());
        assert_eq!(b.on_clean(), Some(BreakerState::Healthy));
        assert!(b.admits_fresh(Priority::Background));
    }

    #[test]
    fn a_clean_job_resets_the_fault_streak() {
        let mut b = CircuitBreaker::new(BreakerConfig::default());
        b.on_fault();
        b.on_clean();
        assert!(b.on_fault().is_none(), "streak restarted");
        assert_eq!(b.consecutive_faults(), 1);
    }
}
