//! Service metrics: deterministic counters and virtual latencies (part
//! of the replay contract) plus wall-clock latencies (measurement only,
//! excluded from every digest).

use crate::cache::CacheStats;

/// Deterministic counters across a service run.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct Counters {
    /// Requests submitted.
    pub submitted: u64,
    /// Requests completed with a factor.
    pub completed: u64,
    /// Requests shed by admission backpressure.
    pub shed_overload: u64,
    /// Requests refused by an open circuit breaker.
    pub breaker_refused: u64,
    /// Requests cancelled at a panel boundary by their deadline budget.
    pub deadline_canceled: u64,
    /// Requests that failed for any other reason.
    pub failed: u64,
    /// Completions served from cache under degradation (shed/refused
    /// fresh work rescued by a verified cached factor).
    pub degraded_served: u64,
    /// Fresh factorizations run to completion.
    pub fresh_factorizations: u64,
    /// Transient faults absorbed by retry.
    pub transient_faults: u64,
    /// Worker crashes caught by the supervisor.
    pub worker_crashes: u64,
    /// Worker restarts (one per caught crash).
    pub worker_restarts: u64,
    /// Breaker state changes.
    pub breaker_transitions: u64,
    /// Cache entries adopted from the durable journal at shard start.
    pub cache_recovered: u64,
    /// Size-bucketed batches dispatched onto the batched kernels.
    pub batches_dispatched: u64,
    /// Requests factored as lanes of a batch (each also counts in
    /// `completed`; the ratio to `batches_dispatched` is the realized
    /// mean batch size).
    pub batched_factorizations: u64,
}

impl Counters {
    /// Fold another shard's counters into this one.
    pub fn merge(&mut self, other: &Counters) {
        self.submitted += other.submitted;
        self.completed += other.completed;
        self.shed_overload += other.shed_overload;
        self.breaker_refused += other.breaker_refused;
        self.deadline_canceled += other.deadline_canceled;
        self.failed += other.failed;
        self.degraded_served += other.degraded_served;
        self.fresh_factorizations += other.fresh_factorizations;
        self.transient_faults += other.transient_faults;
        self.worker_crashes += other.worker_crashes;
        self.worker_restarts += other.worker_restarts;
        self.breaker_transitions += other.breaker_transitions;
        self.cache_recovered += other.cache_recovered;
        self.batches_dispatched += other.batches_dispatched;
        self.batched_factorizations += other.batched_factorizations;
    }

    /// Fraction of submitted requests that completed.  Refusals are loud
    /// and typed, but they still count against availability.
    pub fn availability(&self) -> f64 {
        if self.submitted == 0 {
            1.0
        } else {
            self.completed as f64 / self.submitted as f64
        }
    }
}

/// The full metrics of a run: counters, cache stats, and latency
/// samples in both clocks.
#[derive(Debug, Clone, Default)]
pub struct Metrics {
    /// Deterministic counters.
    pub counters: Counters,
    /// Cache counters (summed over shards).
    pub cache: CacheStats,
    /// Virtual end-to-end latency (µs) of each completed request —
    /// deterministic, part of the replay contract.
    pub virt_latency_us: Vec<u64>,
    /// Wall-clock end-to-end latency (µs) of each completed request —
    /// machine-dependent, excluded from digests.
    pub wall_latency_us: Vec<f64>,
}

/// Percentile (0.0..=1.0) of a sample set by nearest-rank; 0 when empty.
pub fn percentile_u64(samples: &[u64], p: f64) -> u64 {
    if samples.is_empty() {
        return 0;
    }
    let mut sorted = samples.to_vec();
    sorted.sort_unstable();
    let rank = ((sorted.len() as f64 * p).ceil() as usize).clamp(1, sorted.len());
    sorted[rank - 1]
}

/// Percentile of wall-clock samples; 0 when empty.
pub fn percentile_f64(samples: &[f64], p: f64) -> f64 {
    if samples.is_empty() {
        return 0.0;
    }
    let mut sorted = samples.to_vec();
    sorted.sort_by(f64::total_cmp);
    let rank = ((sorted.len() as f64 * p).ceil() as usize).clamp(1, sorted.len());
    sorted[rank - 1]
}

impl Metrics {
    /// Fold another shard's metrics into this one.
    pub fn merge(&mut self, other: &Metrics) {
        self.counters.merge(&other.counters);
        self.cache.hits += other.cache.hits;
        self.cache.misses += other.cache.misses;
        self.cache.healed += other.cache.healed;
        self.cache.corrupt_evictions += other.cache.corrupt_evictions;
        self.cache.capacity_evictions += other.cache.capacity_evictions;
        self.virt_latency_us.extend_from_slice(&other.virt_latency_us);
        self.wall_latency_us.extend_from_slice(&other.wall_latency_us);
    }

    /// Virtual latency percentile (deterministic).
    pub fn virt_percentile_us(&self, p: f64) -> u64 {
        percentile_u64(&self.virt_latency_us, p)
    }

    /// Wall-clock latency percentile.
    pub fn wall_percentile_us(&self, p: f64) -> f64 {
        percentile_f64(&self.wall_latency_us, p)
    }

    /// Canonicalize the sample vectors (sorted) so two runs that
    /// completed the same requests compare equal regardless of shard
    /// merge order.
    pub fn canonicalize(&mut self) {
        self.virt_latency_us.sort_unstable();
        self.wall_latency_us.sort_by(f64::total_cmp);
    }
}

#[cfg(test)]
#[allow(clippy::unwrap_used)]
mod tests {
    use super::*;

    #[test]
    fn percentiles_by_nearest_rank() {
        let xs: Vec<u64> = (1..=100).collect();
        assert_eq!(percentile_u64(&xs, 0.50), 50);
        assert_eq!(percentile_u64(&xs, 0.99), 99);
        assert_eq!(percentile_u64(&xs, 1.00), 100);
        assert_eq!(percentile_u64(&[], 0.5), 0);
        assert_eq!(percentile_u64(&[7], 0.5), 7);
    }

    #[test]
    fn availability_counts_all_submissions() {
        let mut c = Counters::default();
        assert_eq!(c.availability(), 1.0);
        c.submitted = 10;
        c.completed = 9;
        assert!((c.availability() - 0.9).abs() < 1e-12);
    }

    #[test]
    fn merge_adds_everything() {
        let mut a = Metrics::default();
        a.counters.completed = 1;
        a.virt_latency_us.push(10);
        let mut b = Metrics::default();
        b.counters.completed = 2;
        b.virt_latency_us.push(5);
        a.merge(&b);
        a.canonicalize();
        assert_eq!(a.counters.completed, 3);
        assert_eq!(a.virt_latency_us, vec![5, 10]);
    }
}
