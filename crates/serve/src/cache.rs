//! Shard-local factor cache with ABFT-verified reads.
//!
//! Entries are keyed by the problem digest ([`crate::jobs::problem_digest`])
//! and carry a Huang–Abraham GF(2) checksum taken at insert time.  Every
//! read re-verifies the entry against that checksum: a single flipped
//! element (cosmic-ray at rest, or a chaos-plan injection) is healed
//! bit-exactly; multi-element corruption is detected, the entry evicted,
//! and the read reported as a miss — a corrupted cache can cost a
//! refactorization but can never serve wrong bits.
//!
//! The cache is owned by its shard's worker thread (requests for a key
//! always land on the same shard), so it needs no locking and its state
//! evolves deterministically with the shard's request sequence.

use cholcomm_matrix::{lower_digest, verify_and_heal, Matrix, TileChecksum, TileHealth};
use std::collections::HashMap;
use std::collections::VecDeque;

/// One cached factor.
struct Entry {
    factor: Matrix<f64>,
    checksum: TileChecksum,
}

/// What a verified cache read found.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum CacheRead {
    /// No entry for this key.
    Miss,
    /// Entry present and checksum-clean.
    Hit,
    /// Entry had a single corrupted element; healed bit-exactly, served.
    Healed,
    /// Entry was corrupted beyond repair; evicted, treated as a miss.
    Corrupt,
}

/// Counters the shard folds into the service metrics.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct CacheStats {
    /// Clean hits served.
    pub hits: u64,
    /// Misses (no entry).
    pub misses: u64,
    /// Hits that needed (and got) single-element healing.
    pub healed: u64,
    /// Entries dropped as unrecoverably corrupt.
    pub corrupt_evictions: u64,
    /// Entries dropped by capacity (LRU).
    pub capacity_evictions: u64,
}

/// A bounded LRU map from problem digest to ABFT-guarded factor.
pub struct FactorCache {
    entries: HashMap<u64, Entry>,
    order: VecDeque<u64>,
    capacity: usize,
    stats: CacheStats,
}

impl FactorCache {
    /// Cache holding at most `capacity` factors (0 disables caching).
    pub fn new(capacity: usize) -> FactorCache {
        FactorCache {
            entries: HashMap::new(),
            order: VecDeque::new(),
            capacity,
            stats: CacheStats::default(),
        }
    }

    /// Insert (or refresh) the factor for `key`, snapshotting its
    /// checksum.  Evicts the least-recently-used entry when full.
    pub fn insert(&mut self, key: u64, factor: Matrix<f64>) {
        if self.capacity == 0 {
            return;
        }
        if self.entries.contains_key(&key) {
            self.order.retain(|&k| k != key);
        } else if self.entries.len() >= self.capacity {
            if let Some(old) = self.order.pop_front() {
                self.entries.remove(&old);
                self.stats.capacity_evictions += 1;
            }
        }
        let checksum = TileChecksum::of(&factor);
        self.entries.insert(key, Entry { factor, checksum });
        self.order.push_back(key);
    }

    /// Look up `key`, after applying `flips` (the chaos plan's at-rest
    /// corruptions for this read) to the stored bits, and verify against
    /// the insert-time checksum.  Returns the outcome and, when servable,
    /// a clone of the (possibly healed) factor.
    pub fn read(
        &mut self,
        key: u64,
        flips: &[((usize, usize), u64)],
    ) -> (CacheRead, Option<Matrix<f64>>) {
        let Some(entry) = self.entries.get_mut(&key) else {
            self.stats.misses += 1;
            return (CacheRead::Miss, None);
        };
        let mut struck = false;
        for &((i, j), mask) in flips {
            if i < entry.factor.rows() && j < entry.factor.cols() && mask != 0 {
                let bits = entry.factor[(i, j)].to_bits() ^ mask;
                entry.factor[(i, j)] = f64::from_bits(bits);
                struck = true;
            }
        }
        let health = if struck {
            verify_and_heal(&mut entry.factor, &entry.checksum)
        } else {
            TileHealth::Clean
        };
        match health {
            TileHealth::Clean => {
                self.touch(key);
                self.stats.hits += 1;
                let factor = self.entries[&key].factor.clone();
                (CacheRead::Hit, Some(factor))
            }
            TileHealth::Corrected { .. } => {
                self.touch(key);
                self.stats.healed += 1;
                let factor = self.entries[&key].factor.clone();
                (CacheRead::Healed, Some(factor))
            }
            TileHealth::Unrecoverable { .. } => {
                self.entries.remove(&key);
                self.order.retain(|&k| k != key);
                self.stats.corrupt_evictions += 1;
                (CacheRead::Corrupt, None)
            }
        }
    }

    /// Digest of the factor stored under `key`, if any (test hook).
    pub fn stored_digest(&self, key: u64) -> Option<u64> {
        self.entries.get(&key).map(|e| lower_digest(&e.factor))
    }

    /// Entries currently held.
    pub fn len(&self) -> usize {
        self.entries.len()
    }

    /// True when no entry is cached.
    pub fn is_empty(&self) -> bool {
        self.entries.is_empty()
    }

    /// Counters so far.
    pub fn stats(&self) -> CacheStats {
        self.stats
    }

    fn touch(&mut self, key: u64) {
        self.order.retain(|&k| k != key);
        self.order.push_back(key);
    }
}

#[cfg(test)]
#[allow(clippy::unwrap_used)]
mod tests {
    use super::*;
    use cholcomm_matrix::spd;

    fn sample_factor(seed: u64) -> Matrix<f64> {
        let mut a = spd::random_spd(8, &mut spd::test_rng(seed));
        cholcomm_matrix::kernels::potf2(&mut a).unwrap();
        a
    }

    #[test]
    fn hit_after_insert_and_lru_eviction() {
        let mut c = FactorCache::new(2);
        c.insert(1, sample_factor(1));
        c.insert(2, sample_factor(2));
        assert_eq!(c.read(1, &[]).0, CacheRead::Hit);
        c.insert(3, sample_factor(3)); // evicts 2 (1 was touched)
        assert_eq!(c.read(2, &[]).0, CacheRead::Miss);
        assert_eq!(c.read(1, &[]).0, CacheRead::Hit);
        assert_eq!(c.read(3, &[]).0, CacheRead::Hit);
        assert_eq!(c.stats().capacity_evictions, 1);
    }

    #[test]
    fn single_flip_is_healed_bit_exactly() {
        let mut c = FactorCache::new(4);
        let f = sample_factor(7);
        let want = lower_digest(&f);
        c.insert(9, f);
        let (read, got) = c.read(9, &[((3, 1), 1 << 52)]);
        assert_eq!(read, CacheRead::Healed);
        assert_eq!(lower_digest(&got.unwrap()), want);
        // The stored entry is healed too: the next read is clean.
        assert_eq!(c.read(9, &[]).0, CacheRead::Hit);
        assert_eq!(c.stored_digest(9), Some(want));
    }

    #[test]
    fn multi_flip_is_detected_and_evicted_never_served() {
        let mut c = FactorCache::new(4);
        c.insert(5, sample_factor(3));
        let (read, got) = c.read(5, &[((0, 0), 1 << 51), ((4, 2), 1 << 50)]);
        assert_eq!(read, CacheRead::Corrupt);
        assert!(got.is_none());
        assert_eq!(c.read(5, &[]).0, CacheRead::Miss);
        assert_eq!(c.stats().corrupt_evictions, 1);
    }

    #[test]
    fn zero_capacity_disables_caching() {
        let mut c = FactorCache::new(0);
        c.insert(1, sample_factor(1));
        assert!(c.is_empty());
        assert_eq!(c.read(1, &[]).0, CacheRead::Miss);
    }
}
