//! The service event log: a canonical, digestable record of everything
//! that happened to every request.
//!
//! Events are appended shard-locally (no cross-shard ordering is ever
//! claimed), each tagged with its request id and a per-request sequence
//! number.  The *canonical* log sorts by `(request, seq)` — an order
//! that is a pure function of the request stream and the fault plan, not
//! of thread scheduling — and the FNV digest over the canonical encoding
//! is the replay certificate: two runs with the same seed, plan, and
//! stream produce byte-identical canonical logs, which the determinism
//! test asserts by comparing digests.
//!
//! Wall-clock durations are deliberately excluded from events; they live
//! in the metrics, outside the digest.

use crate::admission::Priority;
use crate::breaker::BreakerState;
use crate::cache::CacheRead;
use crate::jobs::JobKind;

/// Where a completed response came from.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Source {
    /// Freshly factored on this request.
    Fresh,
    /// Served from the shard's ABFT-verified cache in normal operation.
    Cache,
    /// Served from cache *because* fresh factorization was shed — the
    /// graceful-degradation path.
    DegradedCache,
    /// Freshly factored as one lane of a size-bucketed batch on the
    /// batched kernels.
    Batched,
}

impl Source {
    /// Stable tag for logs and JSON artifacts.
    pub fn tag(self) -> &'static str {
        match self {
            Source::Fresh => "fresh",
            Source::Cache => "cache",
            Source::DegradedCache => "degraded_cache",
            Source::Batched => "batched",
        }
    }
}

/// One thing that happened to a request (or to its shard while it was
/// being handled).
#[derive(Debug, Clone, PartialEq)]
pub enum Event {
    /// The request entered admission.
    Submitted {
        /// Home shard (by problem digest).
        shard: usize,
        /// Virtual arrival time (µs).
        vtime_us: u64,
        /// Job kind.
        kind: JobKind,
        /// Problem key.
        key: u64,
        /// Matrix order.
        n: usize,
        /// Priority class.
        class: Priority,
        /// Modelled cost (µs).
        cost_us: u64,
        /// Deadline budget (µs).
        deadline_us: u64,
    },
    /// Admission shed the request (backlog above the class watermark).
    Shed {
        /// Backlog at arrival (µs).
        backlog_us: u64,
        /// The exceeded watermark (µs).
        watermark_us: u64,
    },
    /// The shard's breaker refused fresh factorization.
    BreakerRefused {
        /// Shard whose breaker refused.
        shard: usize,
        /// Breaker state at refusal.
        state: BreakerState,
    },
    /// A cache read served (or failed to serve) the request.
    CacheRead {
        /// What the verified read found.
        read: CacheRead,
        /// True when the cache stood in for shed/refused fresh work.
        degraded: bool,
    },
    /// A factorization attempt began.
    AttemptStarted {
        /// Attempt number (1-based).
        attempt: u32,
        /// Panel the attempt starts from (0 unless resuming).
        from_panel: usize,
    },
    /// The attempt hit a transient fault; the service will back off.
    TransientFault {
        /// Attempt that faulted.
        attempt: u32,
        /// Seeded backoff before the next attempt (virtual µs).
        backoff_us: u64,
    },
    /// The worker crashed (panicked) mid-factorization.
    WorkerCrashed {
        /// Attempt that crashed.
        attempt: u32,
        /// Panel at which it died.
        panel: usize,
    },
    /// The supervisor restarted the shard worker and re-drove the job.
    WorkerRestarted {
        /// The shard whose worker was restarted.
        shard: usize,
        /// Checkpoint panel the re-drive resumed from.
        from_panel: usize,
    },
    /// The deadline budget expired; cancelled at a panel boundary.
    DeadlineCanceled {
        /// Panel at which cancellation landed.
        panel: usize,
        /// Virtual time consumed (µs).
        elapsed_us: u64,
        /// The budget (µs).
        budget_us: u64,
    },
    /// The shard's breaker changed state.
    BreakerChanged {
        /// Shard whose breaker moved.
        shard: usize,
        /// New state.
        state: BreakerState,
    },
    /// The request completed with a factor.
    Completed {
        /// Where the factor came from.
        source: Source,
        /// `lower_digest` of the served factor.
        factor_digest: u64,
        /// Virtual completion time (µs).
        vend_us: u64,
    },
    /// The request failed; `tag` is the [`crate::ServeError::tag`].
    Failed {
        /// Stable error tag.
        tag: &'static str,
    },
    /// The request was executed as one lane of a size-bucketed batch.
    Batched {
        /// Power-of-two bucket the request's order was padded to.
        bucket_n: usize,
        /// Number of real systems dispatched together in the bucket.
        batch: usize,
    },
    /// The service started — logged once per run (under the sentinel
    /// request id `u64::MAX`, so it sorts last in the canonical log and
    /// collides with no real request) as the replay certificate's record
    /// of the effective execution configuration.
    ServiceStarted {
        /// Number of shards.
        shards: usize,
        /// Kernel engine name (stable, [`cholcomm_matrix::KernelImpl::name`]).
        kernel: &'static str,
        /// Whether shards fan kernel work onto the rayon pool.
        parallel: bool,
        /// Whether size-bucketed batching is enabled.
        batching: bool,
        /// Worker threads the pool would use on this host.  Recorded for
        /// operators but **excluded from the canonical encoding**: the
        /// replay certificate must match across machines and across the
        /// `CHOLCOMM_THREADS` CI matrix, and thread count never changes
        /// any served bit.
        pool_threads: usize,
    },
}

/// An event bound to its request and per-request sequence number.
#[derive(Debug, Clone, PartialEq)]
pub struct EventRecord {
    /// Request id (dense, assigned at submission).
    pub req: u64,
    /// Position within the request's own event stream.
    pub seq: u32,
    /// The event.
    pub event: Event,
}

impl Event {
    /// Stable canonical encoding (independent of `Debug` formatting).
    pub fn encode(&self, out: &mut String) {
        use std::fmt::Write;
        match self {
            Event::Submitted {
                shard,
                vtime_us,
                kind,
                key,
                n,
                class,
                cost_us,
                deadline_us,
            } => {
                let _ = write!(
                    out,
                    "submitted:{shard}:{vtime_us}:{}:{key}:{n}:{}:{cost_us}:{deadline_us}",
                    kind.tag(),
                    class.tag()
                );
            }
            Event::Shed {
                backlog_us,
                watermark_us,
            } => {
                let _ = write!(out, "shed:{backlog_us}:{watermark_us}");
            }
            Event::BreakerRefused { shard, state } => {
                let _ = write!(out, "breaker_refused:{shard}:{}", state.tag());
            }
            Event::CacheRead { read, degraded } => {
                let tag = match read {
                    CacheRead::Miss => "miss",
                    CacheRead::Hit => "hit",
                    CacheRead::Healed => "healed",
                    CacheRead::Corrupt => "corrupt",
                };
                let _ = write!(out, "cache:{tag}:{degraded}");
            }
            Event::AttemptStarted {
                attempt,
                from_panel,
            } => {
                let _ = write!(out, "attempt:{attempt}:{from_panel}");
            }
            Event::TransientFault {
                attempt,
                backoff_us,
            } => {
                let _ = write!(out, "transient:{attempt}:{backoff_us}");
            }
            Event::WorkerCrashed { attempt, panel } => {
                let _ = write!(out, "crashed:{attempt}:{panel}");
            }
            Event::WorkerRestarted { shard, from_panel } => {
                let _ = write!(out, "restarted:{shard}:{from_panel}");
            }
            Event::DeadlineCanceled {
                panel,
                elapsed_us,
                budget_us,
            } => {
                let _ = write!(out, "deadline:{panel}:{elapsed_us}:{budget_us}");
            }
            Event::BreakerChanged { shard, state } => {
                let _ = write!(out, "breaker:{shard}:{}", state.tag());
            }
            Event::Completed {
                source,
                factor_digest,
                vend_us,
            } => {
                let _ = write!(out, "completed:{}:{factor_digest:016x}:{vend_us}", source.tag());
            }
            Event::Failed { tag } => {
                let _ = write!(out, "failed:{tag}");
            }
            Event::Batched { bucket_n, batch } => {
                let _ = write!(out, "batched:{bucket_n}:{batch}");
            }
            Event::ServiceStarted {
                shards,
                kernel,
                parallel,
                batching,
                pool_threads: _, // machine-dependent: never in the digest
            } => {
                let _ = write!(out, "started:{shards}:{kernel}:{parallel}:{batching}");
            }
        }
    }
}

/// Sort records into canonical `(req, seq)` order.
pub fn canonicalize(mut records: Vec<EventRecord>) -> Vec<EventRecord> {
    records.sort_by_key(|r| (r.req, r.seq));
    records
}

/// FNV-1a digest over the canonical encoding of `records` (which must
/// already be canonical — see [`canonicalize`]).
pub fn log_digest(records: &[EventRecord]) -> u64 {
    let mut h: u64 = 0xcbf2_9ce4_8422_2325;
    let mut line = String::new();
    for r in records {
        line.clear();
        line.push_str(&format!("{}:{}:", r.req, r.seq));
        r.event.encode(&mut line);
        line.push('\n');
        for &byte in line.as_bytes() {
            h ^= byte as u64;
            h = h.wrapping_mul(0x0000_0100_0000_01b3);
        }
    }
    h
}

#[cfg(test)]
#[allow(clippy::unwrap_used)]
mod tests {
    use super::*;

    #[test]
    fn canonical_order_is_scheduling_independent() {
        let a = EventRecord {
            req: 0,
            seq: 0,
            event: Event::Failed { tag: "shed_overload" },
        };
        let b = EventRecord {
            req: 0,
            seq: 1,
            event: Event::Failed { tag: "deadline" },
        };
        let c = EventRecord {
            req: 1,
            seq: 0,
            event: Event::Failed { tag: "stopped" },
        };
        let one = canonicalize(vec![c.clone(), b.clone(), a.clone()]);
        let two = canonicalize(vec![b.clone(), a.clone(), c.clone()]);
        assert_eq!(one, two);
        assert_eq!(log_digest(&one), log_digest(&two));
    }

    #[test]
    fn digest_is_sensitive_to_every_field() {
        let base = vec![EventRecord {
            req: 3,
            seq: 2,
            event: Event::Completed {
                source: Source::Fresh,
                factor_digest: 0xabcd,
                vend_us: 100,
            },
        }];
        let mut other = base.clone();
        other[0].event = Event::Completed {
            source: Source::Cache,
            factor_digest: 0xabcd,
            vend_us: 100,
        };
        assert_ne!(log_digest(&base), log_digest(&other));
    }
}
