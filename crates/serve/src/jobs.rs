//! The service's job kinds and the deterministic SPD problem builders
//! behind them.
//!
//! Every request names a `(kind, key, n)` triple; the actual matrix and
//! right-hand side are *derived* from that triple by the pure builders
//! here.  That is the linchpin of the chaos harness: the checker can
//! rebuild the exact problem a completed response claims to have solved
//! and factor it directly, so "bit-identical to an unfaulted run" is a
//! digest comparison, not a judgement call.
//!
//! The GP and Kalman builders are the ones the `gp_regression` and
//! `kalman_filter` examples previously duplicated inline; both examples
//! now import them from here.

use cholcomm_matrix::{spd, Matrix};
use rand::rngs::StdRng;
use rand::{RngExt, SeedableRng};

/// What a request asks the service to compute.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum JobKind {
    /// Factor a synthetic SPD matrix (the raw POTRF benchmark job).
    Factor,
    /// Factor and solve one right-hand side through the factor.
    Solve,
    /// Gaussian-process posterior: factor the RBF kernel matrix over a
    /// synthetic training set and solve for the posterior weights.
    GpPosterior,
    /// Kalman step: factor the innovation covariance `H P H^T + R` of a
    /// constant-velocity tracking model and solve for the gain rows.
    KalmanStep,
}

impl JobKind {
    /// Stable tag for digests, logs, and JSON artifacts.
    pub fn tag(self) -> &'static str {
        match self {
            JobKind::Factor => "factor",
            JobKind::Solve => "solve",
            JobKind::GpPosterior => "gp",
            JobKind::KalmanStep => "kalman",
        }
    }

    /// All four kinds, for sweeps.
    pub const ALL: [JobKind; 4] = [
        JobKind::Factor,
        JobKind::Solve,
        JobKind::GpPosterior,
        JobKind::KalmanStep,
    ];
}

/// A fully materialized SPD problem: the matrix to factor and, for the
/// solve-flavoured kinds, a right-hand side.
#[derive(Debug, Clone)]
pub struct Problem {
    /// The SPD matrix.
    pub a: Matrix<f64>,
    /// Right-hand side (absent for pure [`JobKind::Factor`] jobs).
    pub rhs: Option<Vec<f64>>,
}

/// Mix `(kind, key, n)` into the seed for the problem generators — also
/// the cache key and the shard-routing key, so equal triples always mean
/// bit-equal problems, one cache slot, and one home shard.
pub fn problem_digest(kind: JobKind, key: u64, n: usize) -> u64 {
    let mut h: u64 = 0xcbf2_9ce4_8422_2325;
    for w in [kind as u64 + 1, key, n as u64] {
        for byte in w.to_le_bytes() {
            h ^= byte as u64;
            h = h.wrapping_mul(0x0000_0100_0000_01b3);
        }
    }
    h
}

/// Build the problem a `(kind, key, n)` request denotes.  Pure: equal
/// triples produce bit-equal matrices and right-hand sides.
pub fn build(kind: JobKind, key: u64, n: usize) -> Problem {
    let seed = problem_digest(kind, key, n);
    match kind {
        JobKind::Factor => Problem {
            a: spd::random_spd(n, &mut spd::test_rng(seed)),
            rhs: None,
        },
        JobKind::Solve => {
            let mut rng = spd::test_rng(seed);
            let a = spd::random_spd(n, &mut rng);
            let rhs = (0..n).map(|_| rng.random_range(-1.0..1.0)).collect();
            Problem { a, rhs: Some(rhs) }
        }
        JobKind::GpPosterior => {
            let gp = GpProblem::synthetic(n, seed);
            Problem {
                a: gp.kernel_matrix(),
                rhs: Some(gp.ys),
            }
        }
        JobKind::KalmanStep => {
            let (s, innov) = innovation_covariance(n, seed);
            Problem {
                a: s,
                rhs: Some(innov),
            }
        }
    }
}

// --------------------------------------------------------------------
// Gaussian-process regression pieces (shared with examples/gp_regression)
// --------------------------------------------------------------------

/// The smooth target function the GP example learns.
pub fn gp_target(x: f64) -> f64 {
    (2.0 * x).sin() + 0.5 * x
}

/// A synthetic GP regression problem: noisy samples of [`gp_target`] on
/// a jittered grid, plus the RBF hyperparameters.
#[derive(Debug, Clone)]
pub struct GpProblem {
    /// Training inputs.
    pub xs: Vec<f64>,
    /// Noisy training targets.
    pub ys: Vec<f64>,
    /// RBF lengthscale.
    pub lengthscale: f64,
    /// Observation noise standard deviation (also the diagonal jitter).
    pub noise: f64,
}

impl GpProblem {
    /// `n` noisy samples of [`gp_target`] on a jittered grid over
    /// `[0, 4)`, seeded.  The jitter keeps points well separated (at
    /// least 40% of the grid spacing) while making the kernel matrix —
    /// not just the targets — a function of the seed.
    pub fn synthetic(n: usize, seed: u64) -> GpProblem {
        let mut rng = StdRng::seed_from_u64(seed);
        let noise = 0.05;
        let spacing = 4.0 / n as f64;
        let xs: Vec<f64> = (0..n)
            .map(|i| (i as f64 + 0.6 * (rng.random_range(0.0..1.0) - 0.5)) * spacing)
            .collect();
        let ys = xs
            .iter()
            .map(|&x| gp_target(x) + noise * rng.random_range(-1.0..1.0))
            .collect();
        GpProblem {
            xs,
            ys,
            lengthscale: 0.4,
            noise,
        }
    }

    /// The SPD kernel matrix `K + noise^2 I` this problem factors.
    pub fn kernel_matrix(&self) -> Matrix<f64> {
        spd::rbf_kernel(&self.xs, self.lengthscale, self.noise)
    }

    /// Posterior mean at `xstar` given the weights `alpha = K^{-1} y`.
    pub fn predict_mean(&self, alpha: &[f64], xstar: f64) -> f64 {
        self.xs
            .iter()
            .zip(alpha)
            .map(|(&xi, &ai)| {
                let d = (xstar - xi) / self.lengthscale;
                (-0.5 * d * d).exp() * ai
            })
            .sum()
    }

    /// Log marginal likelihood from the fit term and the factor logdet.
    pub fn log_marginal_likelihood(&self, alpha: &[f64], logdet: f64) -> f64 {
        let fit: f64 = self.ys.iter().zip(alpha).map(|(y, a)| y * a).sum();
        -0.5 * fit
            - 0.5 * logdet
            - 0.5 * self.ys.len() as f64 * (2.0 * std::f64::consts::PI).ln()
    }
}

// --------------------------------------------------------------------
// Kalman filter pieces (shared with examples/kalman_filter)
// --------------------------------------------------------------------

/// The 2-D constant-velocity tracking model of the Kalman example:
/// state `[x, y, vx, vy]`, position-only observations.
#[derive(Debug, Clone)]
pub struct CvModel {
    /// State transition `F` (4x4).
    pub f: Matrix<f64>,
    /// Observation matrix `H` (2x4).
    pub h: Matrix<f64>,
    /// Measurement noise covariance `R` (2x2).
    pub r: Matrix<f64>,
    /// Time step.
    pub dt: f64,
    /// Measurement noise standard deviation.
    pub meas_noise: f64,
}

impl CvModel {
    /// The standard model both the example and the service job use.
    pub fn new(dt: f64, meas_noise: f64) -> CvModel {
        let f = Matrix::from_rows(
            4,
            4,
            &[
                1.0, 0.0, dt, 0.0, //
                0.0, 1.0, 0.0, dt, //
                0.0, 0.0, 1.0, 0.0, //
                0.0, 0.0, 0.0, 1.0,
            ],
        );
        let h = Matrix::from_rows(2, 4, &[1.0, 0.0, 0.0, 0.0, 0.0, 1.0, 0.0, 0.0]);
        let r = Matrix::from_rows(
            2,
            2,
            &[meas_noise * meas_noise, 0.0, 0.0, meas_noise * meas_noise],
        );
        CvModel {
            f,
            h,
            r,
            dt,
            meas_noise,
        }
    }
}

/// The SPD innovation covariance `S = H P H^T + R` of a batched
/// multi-sensor Kalman step — `n` position sensors observing a state of
/// dimension `2n` — plus the innovation vector to solve against.  This
/// scales the Kalman example's 2x2 innovation solve to service-sized
/// matrices while keeping its exact structure.
pub fn innovation_covariance(n: usize, seed: u64) -> (Matrix<f64>, Vec<f64>) {
    let mut rng = spd::test_rng(seed);
    let state = 2 * n.max(1);
    // Predicted covariance: random SPD, as after a few predict steps.
    let p = spd::random_spd(state, &mut rng);
    // H selects the first n state components (sensor i reads state i).
    // S = H P H^T + R  is then the leading n x n block of P plus R.
    let meas_noise = 0.5;
    let mut s = p.submatrix(0, 0, n, n);
    for d in 0..n {
        s[(d, d)] += meas_noise * meas_noise;
    }
    let innov = (0..n).map(|_| rng.random_range(-1.0..1.0)).collect();
    (s, innov)
}

#[cfg(test)]
#[allow(clippy::unwrap_used)]
mod tests {
    use super::*;
    use cholcomm_matrix::matrix_digest;

    #[test]
    fn builders_are_pure_functions_of_the_triple() {
        for kind in JobKind::ALL {
            let p1 = build(kind, 42, 20);
            let p2 = build(kind, 42, 20);
            assert_eq!(matrix_digest(&p1.a), matrix_digest(&p2.a), "{kind:?}");
            assert_eq!(p1.rhs, p2.rhs, "{kind:?}");
            let p3 = build(kind, 43, 20);
            assert_ne!(matrix_digest(&p1.a), matrix_digest(&p3.a), "{kind:?}");
        }
    }

    #[test]
    fn every_kind_builds_a_factorable_matrix() {
        for kind in JobKind::ALL {
            let mut p = build(kind, 7, 12);
            assert!(p.a.is_square());
            assert_eq!(p.a.rows(), 12);
            cholcomm_matrix::kernels::potf2(&mut p.a)
                .unwrap_or_else(|e| panic!("{kind:?} not SPD: {e}"));
            if let Some(rhs) = &p.rhs {
                assert_eq!(rhs.len(), 12);
            }
        }
    }

    #[test]
    fn digests_separate_kinds_keys_and_sizes() {
        let d = problem_digest(JobKind::Factor, 1, 16);
        assert_ne!(d, problem_digest(JobKind::Solve, 1, 16));
        assert_ne!(d, problem_digest(JobKind::Factor, 2, 16));
        assert_ne!(d, problem_digest(JobKind::Factor, 1, 24));
    }

    #[test]
    fn gp_problem_matches_the_example_recipe() {
        let gp = GpProblem::synthetic(50, 7);
        assert_eq!(gp.xs.len(), 50);
        let k = gp.kernel_matrix();
        assert!(k.is_symmetric());
        // Mean prediction with zero weights is zero.
        assert_eq!(gp.predict_mean(&vec![0.0; 50], 1.0), 0.0);
    }

    #[test]
    fn cv_model_shapes() {
        let m = CvModel::new(0.1, 0.5);
        assert_eq!((m.f.rows(), m.f.cols()), (4, 4));
        assert_eq!((m.h.rows(), m.h.cols()), (2, 4));
        assert_eq!((m.r.rows(), m.r.cols()), (2, 2));
        assert_eq!(m.r[(0, 0)], 0.25);
    }
}
