//! Durable factor cache: the journaled commit protocol of the ooc
//! checkpoints, applied to a shard's [`FactorCache`].
//!
//! Each shard owns one `cache-<shard>.journal` plus one entry file per
//! committed factor.  An insert commits through the same write-ahead
//! sequence the checkpoints use — **intent record, entry data, barrier,
//! commit record, barrier** — so at no crash point can a commit be
//! durable while its entry bytes are not.  Journal records
//! self-authenticate with a trailing FNV (`rec_fnv=`), so a torn tail
//! parses as a shorter valid prefix rather than garbage.
//!
//! Recovery is *lossy-safe*: a cache may silently forget entries (the
//! cost is a refactorization), but it may never serve wrong bits.  So
//! replay adopts only generations with both an intent and a commit
//! record whose entry file exists, has the recorded length, and hashes
//! to the recorded FNV; everything else — uncommitted intents, torn
//! entries, stray files — is dropped and swept.  Adopted factors still
//! pass through [`FactorCache`]'s ABFT-verified reads afterwards.

use crate::cache::FactorCache;
use cholcomm_faults::Store;
use cholcomm_matrix::Matrix;
use std::collections::BTreeMap;

/// FNV-1a over bytes (journal records and entry payloads).
fn fnv1a(bytes: &[u8]) -> u64 {
    let mut h: u64 = 0xcbf2_9ce4_8422_2325;
    for &b in bytes {
        h ^= u64::from(b);
        h = h.wrapping_mul(0x0000_0100_0000_01b3);
    }
    h
}

/// Append `rec_fnv=` self-authentication to a record body.
fn journal_line(body: &str) -> String {
    format!("{body} rec_fnv={:016x}\n", fnv1a(body.as_bytes()))
}

/// One parsed journal record.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
enum Rec {
    Intent {
        gen: u64,
        key: u64,
        n: usize,
        len: usize,
        fnv: u64,
    },
    Commit {
        gen: u64,
    },
}

/// Parse the longest valid prefix of the journal: stop at the first
/// line that is torn, tampered, or unparseable.
fn parse_journal(text: &str) -> Vec<Rec> {
    let mut out = Vec::new();
    for line in text.lines() {
        let Some((body, fnv_hex)) = line.rsplit_once(" rec_fnv=") else {
            break;
        };
        let Ok(recorded) = u64::from_str_radix(fnv_hex, 16) else {
            break;
        };
        if fnv1a(body.as_bytes()) != recorded {
            break;
        }
        let mut fields = body.split_whitespace();
        let rec = match fields.next() {
            Some("intent") => {
                let mut gen = None;
                let mut key = None;
                let mut n = None;
                let mut len = None;
                let mut fnv = None;
                for field in fields {
                    match field.split_once('=') {
                        Some(("gen", v)) => gen = v.parse().ok(),
                        Some(("key", v)) => key = v.parse().ok(),
                        Some(("n", v)) => n = v.parse().ok(),
                        Some(("len", v)) => len = v.parse().ok(),
                        Some(("fnv", v)) => fnv = u64::from_str_radix(v, 16).ok(),
                        _ => {}
                    }
                }
                match (gen, key, n, len, fnv) {
                    (Some(gen), Some(key), Some(n), Some(len), Some(fnv)) => Rec::Intent {
                        gen,
                        key,
                        n,
                        len,
                        fnv,
                    },
                    _ => break,
                }
            }
            Some("commit") => {
                let gen = fields
                    .find_map(|f| f.strip_prefix("gen=").and_then(|v| v.parse().ok()));
                match gen {
                    Some(gen) => Rec::Commit { gen },
                    None => break,
                }
            }
            _ => break,
        };
        out.push(rec);
    }
    out
}

/// Serialize a factor as little-endian f64 words in storage order.
fn to_bytes(factor: &Matrix<f64>) -> Vec<u8> {
    let mut out = Vec::with_capacity(factor.as_slice().len() * 8);
    for v in factor.as_slice() {
        out.extend_from_slice(&v.to_le_bytes());
    }
    out
}

/// Rebuild an `n x n` factor from its serialized bytes.
fn from_bytes(n: usize, bytes: &[u8]) -> Option<Matrix<f64>> {
    if bytes.len() != n * n * 8 {
        return None;
    }
    let mut m = Matrix::zeros(n, n);
    for (slot, chunk) in m.as_mut_slice().iter_mut().zip(bytes.chunks_exact(8)) {
        let mut word = [0u8; 8];
        word.copy_from_slice(chunk);
        *slot = f64::from_le_bytes(word);
    }
    Some(m)
}

/// What a recovery replay found.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct RecoveryReport {
    /// Committed entries adopted into the cache.
    pub recovered: u64,
    /// Committed entries dropped (missing, truncated, or hash-mismatched
    /// entry file) — safe to lose, loud to count.
    pub dropped: u64,
}

/// A shard's journaled persistence for its factor cache.
pub struct DurableCache {
    store: Box<dyn Store + Send>,
    journal: String,
    prefix: String,
    next_gen: u64,
    /// Latest committed generation per key, for pruning superseded
    /// entry files.
    by_key: BTreeMap<u64, u64>,
}

impl DurableCache {
    /// Open shard `shard`'s durable cache over `store`.  No I/O happens
    /// until [`recover_into`](DurableCache::recover_into) or
    /// [`record`](DurableCache::record).
    pub fn open(shard: usize, store: Box<dyn Store + Send>) -> DurableCache {
        let prefix = format!("cache-{shard}");
        DurableCache {
            store,
            journal: format!("{prefix}.journal"),
            prefix,
            next_gen: 1,
            by_key: BTreeMap::new(),
        }
    }

    /// Name of generation `gen`'s entry file.
    pub fn entry_file(&self, gen: u64) -> String {
        format!("{}.e{}", self.prefix, gen)
    }

    /// Replay the journal, adopting every validated committed entry into
    /// `cache` (ascending generation order, so the newest factor for a
    /// key wins) and sweeping every file the replay did not adopt.
    pub fn recover_into(&mut self, cache: &mut FactorCache) -> RecoveryReport {
        let mut report = RecoveryReport::default();
        let text = if self.store.exists(&self.journal) {
            String::from_utf8_lossy(&self.store.read(&self.journal).unwrap_or_default())
                .into_owned()
        } else {
            String::new()
        };
        let records = parse_journal(&text);

        let mut intents = BTreeMap::new();
        let mut committed = Vec::new();
        let mut max_gen = 0;
        for rec in records {
            match rec {
                Rec::Intent { gen, .. } => {
                    max_gen = max_gen.max(gen);
                    intents.insert(gen, rec);
                }
                Rec::Commit { gen } => {
                    max_gen = max_gen.max(gen);
                    if intents.contains_key(&gen) {
                        committed.push(gen);
                    }
                }
            }
        }
        committed.sort_unstable();

        for gen in committed {
            let Some(Rec::Intent { key, n, len, fnv, .. }) = intents.get(&gen).copied() else {
                continue;
            };
            let name = self.entry_file(gen);
            let adopted = self
                .store
                .read(&name)
                .ok()
                .filter(|bytes| bytes.len() == len && fnv1a(bytes) == fnv)
                .and_then(|bytes| from_bytes(n, &bytes));
            match adopted {
                Some(factor) => {
                    cache.insert(key, factor);
                    self.by_key.insert(key, gen);
                    report.recovered += 1;
                }
                None => report.dropped += 1,
            }
        }
        self.next_gen = max_gen + 1;
        self.sweep();
        report
    }

    /// Remove every entry file that is not some key's latest committed
    /// generation (uncommitted strays, superseded or invalid entries).
    fn sweep(&mut self) {
        let keep: std::collections::BTreeSet<String> =
            self.by_key.values().map(|&g| self.entry_file(g)).collect();
        let listed = self
            .store
            .list_prefix(&format!("{}.e", self.prefix))
            .unwrap_or_default();
        for name in listed {
            if !keep.contains(&name) {
                let _ = self.store.remove(&name);
            }
        }
    }

    /// Journal-commit `factor` for `key`: intent, entry bytes, barrier,
    /// commit, barrier, then prune the key's superseded entry.
    pub fn record(&mut self, key: u64, factor: &Matrix<f64>) -> std::io::Result<()> {
        let gen = self.next_gen;
        self.next_gen += 1;
        let bytes = to_bytes(factor);
        let intent = journal_line(&format!(
            "intent gen={gen} key={key} n={} len={} fnv={:016x}",
            factor.rows(),
            bytes.len(),
            fnv1a(&bytes)
        ));
        self.store.append(&self.journal, intent.as_bytes())?;
        self.store.write_file(&self.entry_file(gen), &bytes)?;
        self.store.barrier()?;
        self.store
            .append(&self.journal, journal_line(&format!("commit gen={gen}")).as_bytes())?;
        self.store.barrier()?;
        if let Some(old) = self.by_key.insert(key, gen) {
            // Superseded entry: removing it is pure hygiene — recovery
            // adopts the highest committed generation per key anyway.
            self.store.remove(&self.entry_file(old))?;
        }
        Ok(())
    }
}

#[cfg(test)]
#[allow(clippy::unwrap_used)]
mod tests {
    use super::*;
    use cholcomm_faults::{SimDisk, SimStore, DEFAULT_SECTOR};
    use cholcomm_matrix::{lower_digest, spd};
    use std::sync::{Arc, Mutex};

    fn sample_factor(seed: u64, n: usize) -> Matrix<f64> {
        let mut a = spd::random_spd(n, &mut spd::test_rng(seed));
        cholcomm_matrix::kernels::potf2(&mut a).unwrap();
        a
    }

    fn sim_pair() -> (Arc<Mutex<SimDisk>>, DurableCache) {
        let disk = Arc::new(Mutex::new(SimDisk::new(DEFAULT_SECTOR)));
        let cache = DurableCache::open(0, Box::new(SimStore::new(Arc::clone(&disk))));
        (disk, cache)
    }

    #[test]
    fn record_then_recover_is_bit_identical() {
        let (disk, mut d) = sim_pair();
        let f1 = sample_factor(1, 8);
        let f2 = sample_factor(2, 16);
        d.record(10, &f1).unwrap();
        d.record(20, &f2).unwrap();

        let mut fresh = DurableCache::open(0, Box::new(SimStore::new(disk)));
        let mut cache = FactorCache::new(8);
        let report = fresh.recover_into(&mut cache);
        assert_eq!(report, RecoveryReport { recovered: 2, dropped: 0 });
        assert_eq!(cache.stored_digest(10), Some(lower_digest(&f1)));
        assert_eq!(cache.stored_digest(20), Some(lower_digest(&f2)));
    }

    #[test]
    fn newer_generation_for_a_key_wins_and_prunes_the_old_entry() {
        let (disk, mut d) = sim_pair();
        let old = sample_factor(3, 8);
        let new = sample_factor(4, 8);
        d.record(5, &old).unwrap();
        d.record(5, &new).unwrap();
        {
            let guard = disk.lock().unwrap();
            assert!(!guard.exists(&d.entry_file(1)), "superseded entry pruned");
            assert!(guard.exists(&d.entry_file(2)));
        }
        let mut fresh = DurableCache::open(0, Box::new(SimStore::new(disk)));
        let mut cache = FactorCache::new(8);
        let report = fresh.recover_into(&mut cache);
        // Gen 1's file is gone (pruned), so it counts as dropped; gen 2
        // supplies the key.
        assert_eq!(report.recovered, 1);
        assert_eq!(cache.stored_digest(5), Some(lower_digest(&new)));
    }

    #[test]
    fn tampered_entry_is_dropped_never_served() {
        let (disk, mut d) = sim_pair();
        let f = sample_factor(6, 8);
        d.record(9, &f).unwrap();
        {
            let mut guard = disk.lock().unwrap();
            let mut bytes = guard.read(&d.entry_file(1)).unwrap();
            bytes[17] ^= 0x01;
            guard.write_file(&d.entry_file(1), &bytes);
            guard.barrier();
        }
        let mut fresh = DurableCache::open(0, Box::new(SimStore::new(disk)));
        let mut cache = FactorCache::new(8);
        let report = fresh.recover_into(&mut cache);
        assert_eq!(report, RecoveryReport { recovered: 0, dropped: 1 });
        assert!(cache.is_empty());
    }

    #[test]
    fn power_cut_mid_record_loses_only_the_uncommitted_entry() {
        let (disk, mut d) = sim_pair();
        let committed = sample_factor(7, 8);
        d.record(1, &committed).unwrap();
        // Start a second record but cut power before any barrier: the
        // intent and entry bytes sit in the volatile window.
        let doomed = sample_factor(8, 8);
        let bytes = to_bytes(&doomed);
        {
            let mut guard = disk.lock().unwrap();
            guard.append(
                "cache-0.journal",
                journal_line(&format!(
                    "intent gen=2 key=2 n=8 len={} fnv={:016x}",
                    bytes.len(),
                    fnv1a(&bytes)
                ))
                .as_bytes(),
            );
            guard.write_file("cache-0.e2", &bytes);
            guard.power_cut();
        }
        let mut fresh = DurableCache::open(0, Box::new(SimStore::new(disk.clone())));
        let mut cache = FactorCache::new(8);
        let report = fresh.recover_into(&mut cache);
        assert_eq!(report, RecoveryReport { recovered: 1, dropped: 0 });
        assert_eq!(cache.stored_digest(1), Some(lower_digest(&committed)));
        assert_eq!(cache.stored_digest(2), None);
        // The uncommitted stray entry was swept.
        assert!(!disk.lock().unwrap().exists("cache-0.e2"));
    }

    #[test]
    fn torn_journal_tail_parses_as_a_valid_prefix() {
        let full = format!(
            "{}{}",
            journal_line("intent gen=1 key=3 n=4 len=128 fnv=0000000000000000"),
            journal_line("commit gen=1")
        );
        let whole = parse_journal(&full);
        assert_eq!(whole.len(), 2);
        for cut in 0..full.len() {
            let recs = parse_journal(&full[..cut]);
            assert!(recs.len() <= whole.len());
            assert_eq!(recs, whole[..recs.len()]);
        }
    }
}
