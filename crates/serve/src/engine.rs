//! The shard's factorization engine: a checkpointable, cancellable,
//! crash-injectable blocked Cholesky that is **bit-identical** to the
//! sequential LAPACK schedule (`cholcomm_seq::lapack::potrf_blocked`).
//!
//! Bit-identity is the service's core correctness claim, and it holds by
//! construction: this engine performs *exactly* the left-looking per-tile
//! kernel sequence of Algorithm 4 — for each panel `jb`, SYRK the
//! diagonal tile against each earlier panel in ascending `kb` order, then
//! POTF2; for each tile below, GEMM against each earlier panel in
//! ascending order, then TRSM against the factored diagonal.  The tiles
//! below the diagonal are mutually independent, so they run on the rayon
//! work-stealing pool — parallelism changes *when* a tile's kernels run,
//! never their operand bits or order, so the factor bits match the
//! sequential schedule exactly.
//!
//! Between panels the engine yields to a control hook, which is where the
//! service hangs its robustness machinery: the hook checkpoints the state
//! (panels `0..jb` final, trailing matrix untouched — the left-looking
//! invariant that makes resumption exact), cancels on an expired deadline
//! budget, or — under a chaos plan — dies mid-flight with a panic the
//! shard supervisor must catch.

use cholcomm_matrix::kernels_fast::batch::{batch_potrf, BatchMode, BatchPack, BATCH_LANES};
use cholcomm_matrix::{KernelImpl, Matrix, MatrixError};
use rayon::prelude::*;

/// Calibration constant for virtual time: modelled kernel throughput.
/// Only ratios matter for admission and deadlines; the absolute scale is
/// chosen so service-sized jobs cost tens to hundreds of virtual µs.
const FLOPS_PER_US: u64 = 4_000;

/// Modelled throughput of the *batched* kernels (virtual flops/µs).
/// One small factorization never reaches BLAS-3 intensity — its words
/// moved are O(n²) against O(n³/3) flops — so the unbatched model runs
/// at [`FLOPS_PER_US`].  Packing a bucket of systems lane-interleaved
/// restores the surface-to-volume ratio exactly the way blocking does
/// within one matrix: the modelled 4x is deliberately conservative
/// against the 7.5–9x BLAS-3 saturation `kernel_bench` measures for the
/// fast kernels, and the serve bench reports measured wall-clock
/// speedups next to the virtual ones so the model stays honest.
pub const BATCH_FLOPS_PER_US: u64 = 16_000;

/// A resumable factorization state: panels `0..next_panel` of `state`
/// are final factor columns; everything at and beyond `next_panel` still
/// holds original input values (the left-looking invariant).
#[derive(Debug, Clone)]
pub struct Checkpoint {
    /// The next panel to process.
    pub next_panel: usize,
    /// The matrix, part factor, part untouched input.
    pub state: Matrix<f64>,
}

impl Checkpoint {
    /// A fresh start: no panel factored yet.
    pub fn fresh(a: Matrix<f64>) -> Checkpoint {
        Checkpoint {
            next_panel: 0,
            state: a,
        }
    }
}

/// What the control hook tells the engine at each panel boundary.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum PanelControl {
    /// Keep going.
    Continue,
    /// Cooperative cancellation (deadline expired): stop cleanly.
    Cancel,
    /// Chaos: die right here with a panic, as a crashing worker would.
    Crash,
}

/// How a (non-panicking) engine run ended.
#[derive(Debug, Clone)]
pub enum FactorOutcome {
    /// All panels processed; the lower triangle of the matrix is the
    /// Cholesky factor (the strict upper triangle retains input values,
    /// exactly as the sequential blocked schedule leaves it).
    Done(Matrix<f64>),
    /// The control hook cancelled at the start of `panel`.
    Canceled {
        /// Panel at which the cancellation landed.
        panel: usize,
    },
}

/// Panic payload of an injected crash, so the supervisor can tell chaos
/// from genuine bugs.
#[derive(Debug, Clone, Copy)]
pub struct PanelCrash {
    /// Panel at which the worker died.
    pub panel: usize,
}

/// Number of panels a blocked factorization of order `n` runs.
pub fn panel_count(n: usize, b: usize) -> usize {
    n.div_ceil(b)
}

/// Flop count of panel `jb`: its SYRK chain, POTF2, GEMM chains, and
/// TRSMs.
fn panel_flops(n: usize, b: usize, jb: usize) -> u64 {
    let nb = panel_count(n, b);
    let bw = (n - jb * b).min(b) as u64;
    let mut flops = bw * bw * bw / 3; // POTF2
    for kb in 0..jb {
        let kw = (n - kb * b).min(b) as u64;
        flops += bw * bw * kw; // SYRK term
    }
    for ib in (jb + 1)..nb {
        let bh = (n - ib * b).min(b) as u64;
        for kb in 0..jb {
            let kw = (n - kb * b).min(b) as u64;
            flops += 2 * bh * bw * kw; // GEMM term
        }
        flops += bh * bw * bw; // TRSM
    }
    flops
}

/// Flop count of a full blocked factorization of order `n`.
fn factor_flops(n: usize, b: usize) -> u64 {
    (0..panel_count(n, b)).map(|jb| panel_flops(n, b, jb)).sum()
}

/// Modelled virtual cost (µs) of panel `jb`.
pub fn panel_cost_us(n: usize, b: usize, jb: usize) -> u64 {
    panel_flops(n, b, jb) / FLOPS_PER_US + 1
}

/// Modelled virtual cost (µs) of a full factorization of order `n`.
pub fn factor_cost_us(n: usize, b: usize) -> u64 {
    (0..panel_count(n, b)).map(|jb| panel_cost_us(n, b, jb)).sum()
}

/// Modelled virtual cost (µs) of factoring one whole bucket of `batch`
/// systems, each padded to order `bucket_n`, as a single batched kernel
/// run: every real lane's flops at batched throughput, plus one
/// dispatch µs per panel — charged once per *batch*, which is the whole
/// point of batching.  Padding lanes ride free (they are SIMD slack),
/// but padding *size* is charged honestly: a 40×40 system in a 64
/// bucket costs 64-sized flops.
pub fn batch_cost_us(bucket_n: usize, batch: usize, b: usize) -> u64 {
    (batch as u64).saturating_mul(factor_flops(bucket_n, b)) / BATCH_FLOPS_PER_US
        + panel_count(bucket_n, b) as u64
        + 1
}

/// The deterministic *amortized* admission cost (µs) of one batchable
/// request: its own padded-lane share of a batch — `flops(bucket)` at
/// batched throughput — with no per-request copy of the batch's
/// dispatch constants.  Admission must decide at submit time, before
/// the batch has formed, so the share cannot depend on how full the
/// bucket ends up; charging the per-lane work (which is exact) and
/// amortizing only the constants (which is what batching amortizes)
/// keeps the gauge honest without making admission nondeterministic.
pub fn batched_request_cost_us(bucket_n: usize, b: usize) -> u64 {
    factor_flops(bucket_n, b) / BATCH_FLOPS_PER_US + 1
}

/// Run (or resume) the blocked factorization from `ckpt`, consulting
/// `ctl` at every panel boundary with the panel index and the current
/// state (which is exactly the checkpoint to resume from).
///
/// # Panics
/// By design, when `ctl` returns [`PanelControl::Crash`] — with a
/// [`PanelCrash`] payload the shard supervisor downcasts.
pub fn factor_resumable(
    ckpt: Checkpoint,
    b: usize,
    kernel: KernelImpl,
    ctl: &mut dyn FnMut(usize, &Checkpoint) -> PanelControl,
) -> Result<FactorOutcome, MatrixError> {
    let mut ckpt = ckpt;
    let n = ckpt.state.rows();
    if !ckpt.state.is_square() {
        return Err(MatrixError::NotSquare {
            rows: n,
            cols: ckpt.state.cols(),
        });
    }
    assert!(b >= 1, "block size must be at least 1");
    let nb = panel_count(n, b);

    while ckpt.next_panel < nb {
        let jb = ckpt.next_panel;
        match ctl(jb, &ckpt) {
            PanelControl::Continue => {}
            PanelControl::Cancel => return Ok(FactorOutcome::Canceled { panel: jb }),
            PanelControl::Crash => std::panic::panic_any(PanelCrash { panel: jb }),
        }

        let state = &mut ckpt.state;
        let c0 = jb * b;
        let bw = (n - c0).min(b);

        // --- Diagonal tile: SYRK chain (ascending kb), then POTF2 ---
        let mut a22 = state.submatrix(c0, c0, bw, bw);
        for kb in 0..jb {
            let k0 = kb * b;
            let kw = (n - k0).min(b);
            let ajk = state.submatrix(c0, k0, bw, kw);
            kernel.syrk_lower(&mut a22, &ajk);
        }
        if let Err(MatrixError::NotSpd { pivot, value }) = kernel.potf2(&mut a22) {
            return Err(MatrixError::NotSpd {
                pivot: c0 + pivot,
                value,
            });
        }
        state.set_submatrix(c0, c0, &a22);

        // --- Panel below: independent tiles on the work-stealing pool.
        // Each tile runs its GEMM chain in ascending kb order and then
        // its TRSM — the sequential schedule's exact kernel sequence per
        // tile, so the bits cannot depend on the parallel interleaving.
        let mut panel: Vec<(usize, Matrix<f64>)> = ((jb + 1)..nb)
            .map(|ib| {
                let r0 = ib * b;
                let bh = (n - r0).min(b);
                (ib, state.submatrix(r0, c0, bh, bw))
            })
            .collect();
        let frozen = &*state;
        panel.par_iter_mut().for_each(|(ib, aij)| {
            let r0 = *ib * b;
            let bh = (n - r0).min(b);
            for kb in 0..jb {
                let k0 = kb * b;
                let kw = (n - k0).min(b);
                let aik = frozen.submatrix(r0, k0, bh, kw);
                let ajk = frozen.submatrix(c0, k0, bw, kw);
                kernel.gemm_nt(aij, -1.0, &aik, &ajk);
            }
            kernel.trsm_right_lower_transpose(aij, &a22);
        });
        for (ib, tile) in &panel {
            state.set_submatrix(ib * b, c0, tile);
        }

        ckpt.next_panel = jb + 1;
    }

    Ok(FactorOutcome::Done(ckpt.state))
}

/// Factor a whole size bucket of systems (each square, of order ≤
/// `bucket_n`) through the batched kernels, returning one result per
/// system in submission order.
///
/// Systems are packed [`BATCH_LANES`] at a time into interleaved
/// [`BatchPack`]s with identity padding and factored by the blocked
/// [`batch_potrf`] at panel width `b` — the exact tile schedule of
/// [`factor_resumable`], lane-swept.  In strict mode (any kernel but
/// [`KernelImpl::Fast`]) every system's factor is therefore
/// **bit-identical** to what the per-request path would have produced,
/// at any batch size; `Fast` gets the FMA-contracted rounding, which is
/// still batch-size invariant because lanes never interact.
///
/// When the shard has opted into kernel parallelism
/// ([`crate::ShardConfig::parallel`]), the lane-chunks — mutually
/// independent by construction — are scattered across the work-stealing
/// pool via [`cholcomm_par::scatter`]; results come back in submission
/// order, so the pool size can change wall-clock time but never any bit
/// of any factor.
pub fn factor_batch(
    problems: &[Matrix<f64>],
    bucket_n: usize,
    b: usize,
    kernel: KernelImpl,
) -> Vec<Result<Matrix<f64>, MatrixError>> {
    let mode = match kernel {
        KernelImpl::Fast => BatchMode::Fused,
        _ => BatchMode::Strict,
    };
    let chunks: Vec<&[Matrix<f64>]> = problems.chunks(BATCH_LANES).collect();
    let run_chunk = |c: usize| -> Vec<Result<Matrix<f64>, MatrixError>> {
        let refs: Vec<&Matrix<f64>> = chunks[c].iter().collect();
        let mut pack = match BatchPack::pack_square(&refs, bucket_n) {
            Ok(p) => p,
            Err(e) => return refs.iter().map(|_| Err(e.clone())).collect(),
        };
        let results = batch_potrf(&mut pack, b, mode);
        results
            .into_iter()
            .enumerate()
            .map(|(s, r)| r.map(|()| pack.extract(s, refs[s].rows(), refs[s].rows())))
            .collect()
    };
    let per_chunk: Vec<Vec<Result<Matrix<f64>, MatrixError>>> =
        if cholcomm_matrix::parallel::kernel_parallelism() && chunks.len() > 1 {
            cholcomm_par::scatter(chunks.len(), &run_chunk)
        } else {
            (0..chunks.len()).map(run_chunk).collect()
        };
    per_chunk.into_iter().flatten().collect()
}

#[cfg(test)]
#[allow(clippy::unwrap_used)]
mod tests {
    use super::*;
    use cholcomm_cachesim::NullTracer;
    use cholcomm_layout::{ColMajor, Laid};
    use cholcomm_matrix::{lower_digest, spd};
    use cholcomm_seq::lapack::potrf_blocked_with;

    fn reference_factor(a: &Matrix<f64>, b: usize, kernel: KernelImpl) -> Matrix<f64> {
        let mut laid = Laid::from_matrix(a, ColMajor::square(a.rows()));
        potrf_blocked_with(&mut laid, &mut NullTracer, b, None, kernel).unwrap();
        laid.to_matrix()
    }

    #[test]
    fn bit_identical_to_the_sequential_blocked_schedule() {
        for (n, b, seed) in [(24usize, 8usize, 1u64), (26, 6, 2), (40, 16, 3), (16, 16, 4)] {
            let a = spd::random_spd(n, &mut spd::test_rng(seed));
            for kernel in [KernelImpl::Reference, KernelImpl::FastStrict] {
                let want = reference_factor(&a, b, kernel);
                let got = match factor_resumable(
                    Checkpoint::fresh(a.clone()),
                    b,
                    kernel,
                    &mut |_, _| PanelControl::Continue,
                )
                .unwrap()
                {
                    FactorOutcome::Done(m) => m,
                    other => panic!("unexpected {other:?}"),
                };
                assert_eq!(
                    lower_digest(&got),
                    lower_digest(&want),
                    "n={n} b={b} {kernel:?}"
                );
            }
        }
    }

    #[test]
    fn resuming_from_any_checkpoint_reproduces_the_same_bits() {
        let n = 32;
        let b = 8;
        let a = spd::random_spd(n, &mut spd::test_rng(9));
        let straight = match factor_resumable(
            Checkpoint::fresh(a.clone()),
            b,
            KernelImpl::Reference,
            &mut |_, _| PanelControl::Continue,
        )
        .unwrap()
        {
            FactorOutcome::Done(m) => lower_digest(&m),
            other => panic!("unexpected {other:?}"),
        };

        for stop_at in 1..panel_count(n, b) {
            // Cancel at `stop_at`, grabbing the checkpoint.
            let mut saved: Option<Checkpoint> = None;
            let out = factor_resumable(
                Checkpoint::fresh(a.clone()),
                b,
                KernelImpl::Reference,
                &mut |jb, ck| {
                    if jb == stop_at {
                        saved = Some(ck.clone());
                        PanelControl::Cancel
                    } else {
                        PanelControl::Continue
                    }
                },
            )
            .unwrap();
            assert!(matches!(out, FactorOutcome::Canceled { panel } if panel == stop_at));

            // Resume from the saved checkpoint.
            let resumed = match factor_resumable(
                saved.unwrap(),
                b,
                KernelImpl::Reference,
                &mut |_, _| PanelControl::Continue,
            )
            .unwrap()
            {
                FactorOutcome::Done(m) => lower_digest(&m),
                other => panic!("unexpected {other:?}"),
            };
            assert_eq!(resumed, straight, "resume at panel {stop_at}");
        }
    }

    #[test]
    fn injected_crash_panics_with_a_typed_payload() {
        let a = spd::random_spd(16, &mut spd::test_rng(5));
        let result = std::panic::catch_unwind(std::panic::AssertUnwindSafe(|| {
            factor_resumable(
                Checkpoint::fresh(a),
                8,
                KernelImpl::Reference,
                &mut |jb, _| {
                    if jb == 1 {
                        PanelControl::Crash
                    } else {
                        PanelControl::Continue
                    }
                },
            )
        }));
        let payload = result.expect_err("should panic");
        let crash = payload.downcast_ref::<PanelCrash>().expect("typed payload");
        assert_eq!(crash.panel, 1);
    }

    #[test]
    fn costs_are_positive_and_sum_consistently() {
        let total = factor_cost_us(64, 16);
        assert!(total > 0);
        let sum: u64 = (0..panel_count(64, 16))
            .map(|jb| panel_cost_us(64, 16, jb))
            .sum();
        assert_eq!(total, sum);
        assert!(factor_cost_us(96, 16) > factor_cost_us(32, 16));
    }
}
