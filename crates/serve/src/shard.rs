//! The shard worker: a panic-isolated factorization loop under a
//! supervisor, with retry/backoff, checkpoint re-drive, a circuit
//! breaker, and an ABFT-verified factor cache.
//!
//! Each shard owns one worker thread, one FIFO job queue, one cache, and
//! one breaker.  All per-shard state is touched only by the shard's own
//! thread and jobs are processed strictly in queue order, so the shard's
//! entire visible behaviour — events, counters, cache evolution, breaker
//! transitions — is a deterministic function of its job sequence and the
//! fault plan.
//!
//! The supervisor structure: each factorization attempt runs inside
//! `catch_unwind`.  The engine's control hook deposits a checkpoint into
//! the shard's checkpoint slot before every panel, so when a chaos plan
//! makes the worker die mid-factorization ([`PanelCrash`]), the
//! supervisor catches the panic, logs the restart, recovers the
//! in-flight job from the slot, and re-drives it from the last completed
//! panel — recomputing bit-identical panels, never restarting from
//! scratch unless the crash landed before panel 0 finished.

use crate::admission::Admission;
use crate::breaker::CircuitBreaker;
use crate::cache::{CacheRead, FactorCache};
use crate::durable::DurableCache;
use crate::engine::{
    batch_cost_us, factor_batch, factor_resumable, panel_cost_us, panel_count, Checkpoint,
    FactorOutcome, PanelControl, PanelCrash,
};
use crate::error::ServeError;
use crate::events::{Event, EventRecord, Source};
use crate::jobs;
use crate::metrics::Metrics;
use crate::service::{Request, Response, ShardConfig};
use cholcomm_faults::{FaultPlan, JobFault};
use cholcomm_matrix::{lower_digest, tri, Matrix};
use crossbeam::channel::{Receiver, Sender};
use std::cell::Cell;
use std::panic::{catch_unwind, AssertUnwindSafe};
use std::time::Instant;

/// Modelled virtual cost (µs) of serving from cache.
const CACHE_SERVE_COST_US: u64 = 1;

/// One queued job, as handed from admission to a shard.
pub(crate) struct ShardJob {
    pub req_id: u64,
    pub request: Request,
    pub digest: u64,
    pub admit: Admission,
    pub next_seq: u32,
    pub submitted_at: Instant,
    pub reply: Sender<Result<Response, ServeError>>,
}

/// What travels on a shard's queue: a single job, or a whole size
/// bucket released by the batcher.  Both come from the single-threaded
/// submitter, so the interleaving — and therefore the shard's entire
/// behaviour — is deterministic.
pub(crate) enum ShardMsg {
    One(Box<ShardJob>),
    Batch {
        bucket_n: usize,
        /// Virtual instant the batcher released the bucket; formation
        /// waits are counted from each member's arrival to here.
        released_us: u64,
        jobs: Vec<ShardJob>,
    },
}

/// What a shard hands back at shutdown.
pub(crate) struct ShardReport {
    pub events: Vec<EventRecord>,
    pub metrics: Metrics,
}

/// Deterministic jittered exponential backoff for `(req, attempt)`.
fn backoff_us(base_us: u64, seed: u64, req: u64, attempt: u32) -> u64 {
    let exp = base_us.saturating_mul(1u64 << (attempt.min(10) - 1).min(20));
    // Jitter in [0, base): a seeded hash, not a shared RNG, so each
    // request's backoff schedule is independent of every other request.
    let mut h = seed ^ req.wrapping_mul(0x9E3779B97F4A7C15) ^ (attempt as u64) << 32;
    h ^= h >> 30;
    h = h.wrapping_mul(0xBF58476D1CE4E5B9);
    h ^= h >> 27;
    exp + (h % base_us.max(1))
}

/// Install (once, process-wide) a panic hook that silences the panics
/// the chaos plans inject on purpose, keeping real panics loud.
fn silence_injected_crashes() {
    use std::sync::Once;
    static ONCE: Once = Once::new();
    ONCE.call_once(|| {
        let prev = std::panic::take_hook();
        std::panic::set_hook(Box::new(move |info| {
            if info.payload().downcast_ref::<PanelCrash>().is_none() {
                prev(info);
            }
        }));
    });
}

/// The shard worker loop: owned state plus the job receiver.
pub(crate) struct Shard {
    shard_id: usize,
    config: ShardConfig,
    plan: FaultPlan,
    cache: FactorCache,
    breaker: CircuitBreaker,
    vclock_us: u64,
    events: Vec<EventRecord>,
    metrics: Metrics,
    checkpoint_slot: Option<Checkpoint>,
    durable: Option<DurableCache>,
}

impl Shard {
    pub(crate) fn spawn(
        shard_id: usize,
        config: ShardConfig,
        plan: FaultPlan,
        rx: Receiver<ShardMsg>,
        durable: Option<DurableCache>,
    ) -> std::thread::JoinHandle<ShardReport> {
        silence_injected_crashes();
        std::thread::spawn(move || {
            // The parallelism flag is thread-local, so setting it here
            // scopes the choice to this shard's kernel calls only.
            cholcomm_matrix::parallel::set_kernel_parallelism(config.parallel);
            let mut shard = Shard {
                shard_id,
                config,
                plan,
                cache: FactorCache::new(config.cache_capacity),
                breaker: CircuitBreaker::new(config.breaker),
                vclock_us: 0,
                events: Vec::new(),
                metrics: Metrics::default(),
                checkpoint_slot: None,
                durable,
            };
            // A durable shard first replays its journal: committed
            // entries from a previous process warm the cache; anything
            // torn by the crash is dropped (and re-factored on demand),
            // never served.
            if let Some(d) = shard.durable.as_mut() {
                let report = d.recover_into(&mut shard.cache);
                shard.metrics.counters.cache_recovered = report.recovered;
            }
            while let Ok(msg) = rx.recv() {
                match msg {
                    ShardMsg::One(job) => shard.process(*job),
                    ShardMsg::Batch {
                        bucket_n,
                        released_us,
                        jobs,
                    } => shard.process_batch(bucket_n, released_us, jobs),
                }
            }
            shard.metrics.cache = shard.cache.stats();
            ShardReport {
                events: shard.events,
                metrics: shard.metrics,
            }
        })
    }

    fn emit(&mut self, req: u64, seq: &mut u32, event: Event) {
        self.events.push(EventRecord {
            req,
            seq: *seq,
            event,
        });
        *seq += 1;
    }

    /// Try to serve `job` from the verified cache.  Returns the factor
    /// when servable.
    fn cache_read(
        &mut self,
        job: &ShardJob,
        seq: &mut u32,
        degraded: bool,
    ) -> (CacheRead, Option<Matrix<f64>>) {
        let n = job.request.n;
        let flips = self.plan.cache_flips(job.req_id, n, n);
        let (read, factor) = self.cache.read(job.digest, &flips);
        if read != CacheRead::Miss || degraded {
            self.emit(job.req_id, seq, Event::CacheRead { read, degraded });
        }
        (read, factor)
    }

    /// Complete `job` with `factor`, solving the RHS when the kind
    /// carries one, and advance the virtual clock by `work_us`.
    fn complete(
        &mut self,
        job: &ShardJob,
        seq: &mut u32,
        factor: Matrix<f64>,
        source: Source,
        vstart_us: u64,
        work_us: u64,
    ) {
        let solution = {
            let problem = jobs::build(job.request.kind, job.request.key, job.request.n);
            problem.rhs.map(|rhs| tri::solve_with_factor(&factor, &rhs))
        };
        let digest = lower_digest(&factor);
        let vend_us = vstart_us + work_us;
        self.vclock_us = vend_us;
        self.emit(
            job.req_id,
            seq,
            Event::Completed {
                source,
                factor_digest: digest,
                vend_us,
            },
        );
        if matches!(source, Source::Fresh | Source::Batched) {
            if let Some(d) = self.durable.as_mut() {
                // Journal-commit the fresh factor.  Persistence is
                // best-effort for a cache — the in-RAM copy is already
                // correct — but the protocol itself never leaves a
                // committed-yet-invalid entry behind.
                let _ = d.record(job.digest, &factor);
            }
            self.cache.insert(job.digest, factor);
        }
        self.metrics.counters.completed += 1;
        if source == Source::DegradedCache {
            self.metrics.counters.degraded_served += 1;
        }
        let virt_latency = vend_us.saturating_sub(job.request.vtime_us);
        self.metrics.virt_latency_us.push(virt_latency);
        self.metrics
            .wall_latency_us
            .push(job.submitted_at.elapsed().as_secs_f64() * 1e6);
        let _ = job.reply.send(Ok(Response {
            req: job.req_id,
            source,
            factor_digest: digest,
            solution,
            virt_latency_us: virt_latency,
        }));
    }

    /// Refuse `job` with `err`.
    fn refuse(&mut self, job: &ShardJob, seq: &mut u32, err: ServeError) {
        self.emit(job.req_id, seq, Event::Failed { tag: err.tag() });
        match &err {
            ServeError::ShedOverload { .. } => self.metrics.counters.shed_overload += 1,
            ServeError::CircuitOpen { .. } => self.metrics.counters.breaker_refused += 1,
            ServeError::DeadlineExceeded { .. } => self.metrics.counters.deadline_canceled += 1,
            _ => self.metrics.counters.failed += 1,
        }
        let _ = job.reply.send(Err(err));
    }

    fn record_breaker(&mut self, req: u64, seq: &mut u32, change: Option<crate::breaker::BreakerState>) {
        if let Some(state) = change {
            self.metrics.counters.breaker_transitions += 1;
            self.emit(
                req,
                seq,
                Event::BreakerChanged {
                    shard: self.shard_id,
                    state,
                },
            );
        }
    }

    fn process(&mut self, job: ShardJob) {
        let mut seq = job.next_seq;
        let vstart_us = self.vclock_us.max(job.request.vtime_us);

        // --- Shed at admission: degrade to cache or refuse loudly. ---
        if let Admission::Shed {
            backlog_us,
            watermark_us,
        } = job.admit
        {
            let (read, factor) = self.cache_read(&job, &mut seq, true);
            if let (CacheRead::Hit | CacheRead::Healed, Some(f)) = (read, factor) {
                self.complete(&job, &mut seq, f, Source::DegradedCache, vstart_us, CACHE_SERVE_COST_US);
            } else {
                self.refuse(
                    &job,
                    &mut seq,
                    ServeError::ShedOverload {
                        class: job.request.class,
                        backlog_us,
                        watermark_us,
                    },
                );
            }
            return;
        }

        // --- Breaker: refuse fresh work on a tripped shard. ---
        if !self.breaker.admits_fresh(job.request.class) {
            self.emit(
                job.req_id,
                &mut seq,
                Event::BreakerRefused {
                    shard: self.shard_id,
                    state: self.breaker.state(),
                },
            );
            let (read, factor) = self.cache_read(&job, &mut seq, true);
            if let (CacheRead::Hit | CacheRead::Healed, Some(f)) = (read, factor) {
                self.complete(&job, &mut seq, f, Source::DegradedCache, vstart_us, CACHE_SERVE_COST_US);
            } else {
                self.refuse(
                    &job,
                    &mut seq,
                    ServeError::CircuitOpen {
                        shard: self.shard_id,
                        consecutive_faults: self.breaker.consecutive_faults(),
                    },
                );
            }
            return;
        }

        // --- Normal path: verified cache first. ---
        let (read, factor) = self.cache_read(&job, &mut seq, false);
        if let (CacheRead::Hit | CacheRead::Healed, Some(f)) = (read, factor) {
            self.complete(&job, &mut seq, f, Source::Cache, vstart_us, CACHE_SERVE_COST_US);
            return;
        }

        // --- Fresh factorization with retry, backoff, supervision. ---
        self.factor_fresh(job, seq, vstart_us);
    }

    /// Execute one released size bucket as a single batched kernel run.
    ///
    /// Per member, in deterministic order: announce batch membership,
    /// try the verified cache (a hit serves at cache cost and drops out
    /// of the kernel run), enforce the deadline against the formation
    /// wait (a member whose budget expired *waiting in the bucket* is
    /// shed with a typed refusal, never silently factored late), then
    /// factor every survivor in one [`factor_batch`] call.  All
    /// survivors complete at the same virtual instant — the batch is one
    /// unit of work — and each factor is bit-identical to what the
    /// per-request path would have produced (strict lanes never
    /// interact).
    ///
    /// The batch path deliberately bypasses the retry/crash supervisor
    /// and the circuit breaker: those guard the resumable per-request
    /// engine, whose panel hook is where the fault plan injects.  Chaos
    /// scenarios therefore run unbatched, and the batched path's
    /// correctness is carried by its bit-identity certificates instead.
    fn process_batch(&mut self, bucket_n: usize, released_us: u64, jobs: Vec<ShardJob>) {
        let batch = jobs.len();
        // The batch starts no earlier than its release instant (which is
        // itself no earlier than any member's arrival), so each member's
        // `vstart - arrival` wait includes its full formation delay.
        let vstart_us = self.vclock_us.max(released_us);
        self.metrics.counters.batches_dispatched += 1;

        let mut seqs: Vec<u32> = jobs.iter().map(|j| j.next_seq).collect();
        for (job, seq) in jobs.iter().zip(seqs.iter_mut()) {
            self.emit(job.req_id, seq, Event::Batched { bucket_n, batch });
        }

        // Cache hits serve immediately; survivors go to the kernels.
        let mut pending: Vec<(ShardJob, u32)> = Vec::with_capacity(batch);
        for (job, mut seq) in jobs.into_iter().zip(seqs) {
            let (read, factor) = self.cache_read(&job, &mut seq, false);
            if let (CacheRead::Hit | CacheRead::Healed, Some(f)) = (read, factor) {
                self.complete(&job, &mut seq, f, Source::Cache, vstart_us, CACHE_SERVE_COST_US);
                continue;
            }
            let wait_us = vstart_us.saturating_sub(job.request.vtime_us);
            if wait_us >= job.request.deadline_us {
                let budget_us = job.request.deadline_us;
                self.emit(
                    job.req_id,
                    &mut seq,
                    Event::DeadlineCanceled {
                        panel: 0,
                        elapsed_us: wait_us,
                        budget_us,
                    },
                );
                self.refuse(
                    &job,
                    &mut seq,
                    ServeError::DeadlineExceeded {
                        elapsed_us: wait_us,
                        budget_us,
                        panel: 0,
                    },
                );
                continue;
            }
            pending.push((job, seq));
        }
        if pending.is_empty() {
            return;
        }

        let problems: Vec<Matrix<f64>> = pending
            .iter()
            .map(|(job, _)| jobs::build(job.request.kind, job.request.key, job.request.n).a)
            .collect();
        let work_us = batch_cost_us(bucket_n, pending.len(), self.config.block);
        let results = factor_batch(&problems, bucket_n, self.config.block, self.config.kernel);
        for ((job, mut seq), result) in pending.into_iter().zip(results) {
            match result {
                Ok(factor) => {
                    self.metrics.counters.batched_factorizations += 1;
                    self.complete(&job, &mut seq, factor, Source::Batched, vstart_us, work_us);
                }
                Err(e) => {
                    self.vclock_us = vstart_us + work_us;
                    self.refuse(&job, &mut seq, ServeError::Matrix(e));
                }
            }
        }
    }

    fn factor_fresh(&mut self, job: ShardJob, mut seq: u32, vstart_us: u64) {
        let n = job.request.n;
        let b = self.config.block;
        let panels = panel_count(n, b);
        let budget_us = job.request.deadline_us;
        let queue_wait_us = vstart_us.saturating_sub(job.request.vtime_us);

        let problem = jobs::build(job.request.kind, job.request.key, n);
        let mut ckpt = Checkpoint::fresh(problem.a);
        let mut attempt: u32 = 1;
        let mut work_us: u64 = 0; // virtual work+backoff consumed by this job
        let mut had_fault = false;

        // Queue wait already counts against the deadline budget.
        if queue_wait_us >= budget_us {
            self.emit(
                job.req_id,
                &mut seq,
                Event::DeadlineCanceled {
                    panel: 0,
                    elapsed_us: queue_wait_us,
                    budget_us,
                },
            );
            self.refuse(
                &job,
                &mut seq,
                ServeError::DeadlineExceeded {
                    elapsed_us: queue_wait_us,
                    budget_us,
                    panel: 0,
                },
            );
            return;
        }

        let outcome = loop {
            if attempt > self.config.retry_limit {
                break Err(ServeError::RetriesExhausted {
                    attempts: attempt - 1,
                });
            }
            let fault = self.plan.job_fault(job.req_id, attempt, panels);
            self.emit(
                job.req_id,
                &mut seq,
                Event::AttemptStarted {
                    attempt,
                    from_panel: ckpt.next_panel,
                },
            );

            // Transient faults strike before any panel work lands.
            if matches!(fault, Some(JobFault::Transient)) {
                let backoff = backoff_us(
                    self.config.backoff_base_us,
                    self.config.seed,
                    job.req_id,
                    attempt,
                );
                self.emit(
                    job.req_id,
                    &mut seq,
                    Event::TransientFault {
                        attempt,
                        backoff_us: backoff,
                    },
                );
                self.metrics.counters.transient_faults += 1;
                had_fault = true;
                work_us += backoff;
                attempt += 1;
                continue;
            }
            let crash_panel = match fault {
                Some(JobFault::Crash { panel }) => Some(panel),
                _ => None,
            };

            // Run the attempt under the supervisor's catch_unwind.  The
            // control hook checkpoints, meters virtual work, enforces
            // the deadline, and injects the crash.
            let consumed = Cell::new(0u64);
            let slot: &mut Option<Checkpoint> = &mut self.checkpoint_slot;
            let base_work = work_us;
            let start_ckpt = ckpt.clone();
            let result = catch_unwind(AssertUnwindSafe(|| {
                factor_resumable(start_ckpt, b, self.config.kernel, &mut |jb, ck| {
                    *slot = Some(ck.clone());
                    let elapsed = queue_wait_us + base_work + consumed.get();
                    if elapsed >= budget_us {
                        return PanelControl::Cancel;
                    }
                    if crash_panel == Some(jb) {
                        return PanelControl::Crash;
                    }
                    consumed.set(consumed.get() + panel_cost_us(n, b, jb));
                    PanelControl::Continue
                })
            }));
            work_us += consumed.get();

            match result {
                Ok(Ok(FactorOutcome::Done(factor))) => break Ok(factor),
                Ok(Ok(FactorOutcome::Canceled { panel })) => {
                    let elapsed_us = queue_wait_us + work_us;
                    self.emit(
                        job.req_id,
                        &mut seq,
                        Event::DeadlineCanceled {
                            panel,
                            elapsed_us,
                            budget_us,
                        },
                    );
                    break Err(ServeError::DeadlineExceeded {
                        elapsed_us,
                        budget_us,
                        panel,
                    });
                }
                Ok(Err(e)) => break Err(ServeError::Matrix(e)),
                Err(payload) => {
                    // The worker died.  Only chaos-injected crashes are
                    // survivable; anything else is a genuine bug.
                    let Some(crash) = payload.downcast_ref::<PanelCrash>() else {
                        std::panic::resume_unwind(payload);
                    };
                    self.emit(
                        job.req_id,
                        &mut seq,
                        Event::WorkerCrashed {
                            attempt,
                            panel: crash.panel,
                        },
                    );
                    self.metrics.counters.worker_crashes += 1;
                    had_fault = true;
                    // Supervisor: restart the worker state and re-drive
                    // from the slot's last checkpoint.
                    let recovered = self
                        .checkpoint_slot
                        .take()
                        .unwrap_or_else(|| Checkpoint {
                            next_panel: ckpt.next_panel,
                            state: ckpt.state.clone(),
                        });
                    self.emit(
                        job.req_id,
                        &mut seq,
                        Event::WorkerRestarted {
                            shard: self.shard_id,
                            from_panel: recovered.next_panel,
                        },
                    );
                    self.metrics.counters.worker_restarts += 1;
                    ckpt = recovered;
                    let backoff = backoff_us(
                        self.config.backoff_base_us,
                        self.config.seed,
                        job.req_id,
                        attempt,
                    );
                    work_us += backoff;
                    attempt += 1;
                    continue;
                }
            }
        };
        self.checkpoint_slot = None;

        // Breaker bookkeeping happens per job, after its outcome.
        let change = if had_fault {
            self.breaker.on_fault()
        } else {
            self.breaker.on_clean()
        };
        self.record_breaker(job.req_id, &mut seq, change);

        match outcome {
            Ok(factor) => {
                self.metrics.counters.fresh_factorizations += 1;
                self.complete(&job, &mut seq, factor, Source::Fresh, vstart_us, work_us);
            }
            Err(e) => {
                // Failed fresh work still consumed virtual time.
                self.vclock_us = vstart_us + work_us;
                self.refuse(&job, &mut seq, e);
            }
        }
    }
}
