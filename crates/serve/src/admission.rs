//! Admission control: bounded virtual-time backlog with priority-class
//! load shedding.
//!
//! The queue bound is enforced in **virtual time**: every request
//! carries a virtual arrival timestamp (from the load generator's seeded
//! arrival process), and each shard's backlog is the modelled work (µs)
//! still queued at that instant — backlog drains at one virtual µs per
//! µs and grows by each admitted job's modelled cost.  Because the
//! backlog is a pure function of the request stream, admission decisions
//! (and therefore the whole service event log) replay byte-identically
//! for a seed, no matter how fast the actual machine drains the real
//! queues.  Wall-clock speed affects measured latency, never *which*
//! requests are shed.
//!
//! Each priority class sheds at its own watermark, lowest first — the
//! degradation ladder: background work sheds early to protect
//! interactive latency, and interactive requests shed only when the
//! backlog exceeds the queue's full bound.

/// Priority class of a request.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub enum Priority {
    /// Latency-sensitive; shed last.
    Interactive,
    /// Normal batch work.
    Batch,
    /// Best-effort; shed first.
    Background,
}

impl Priority {
    /// All classes, highest priority first.
    pub const ALL: [Priority; 3] = [Priority::Interactive, Priority::Batch, Priority::Background];

    /// Stable tag for logs and JSON artifacts.
    pub fn tag(self) -> &'static str {
        match self {
            Priority::Interactive => "interactive",
            Priority::Batch => "batch",
            Priority::Background => "background",
        }
    }
}

/// Per-class backlog watermarks (virtual µs of queued work beyond which
/// the class is shed).
#[derive(Debug, Clone, Copy)]
pub struct Watermarks {
    /// Shed `Background` above this backlog.
    pub background_us: u64,
    /// Shed `Batch` above this backlog.
    pub batch_us: u64,
    /// Shed everything above this backlog — the queue's hard bound.
    pub interactive_us: u64,
}

impl Watermarks {
    /// Defaults tuned for the bench workload: background sheds at a
    /// quarter of the hard bound, batch at half.
    pub fn bounded_by(interactive_us: u64) -> Watermarks {
        Watermarks {
            background_us: interactive_us / 4,
            batch_us: interactive_us / 2,
            interactive_us,
        }
    }

    /// The watermark that applies to `class`.
    pub fn for_class(&self, class: Priority) -> u64 {
        match class {
            Priority::Interactive => self.interactive_us,
            Priority::Batch => self.batch_us,
            Priority::Background => self.background_us,
        }
    }
}

/// The admission decision for one request.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Admission {
    /// Admitted; the shard's backlog grew by the job's cost.
    Admit {
        /// Backlog (µs) ahead of this job — its modelled queue wait.
        queued_ahead_us: u64,
    },
    /// Shed; carries the backlog and the watermark it exceeded.
    Shed {
        /// Backlog (µs) at the arrival instant.
        backlog_us: u64,
        /// The class watermark that was exceeded.
        watermark_us: u64,
    },
}

/// One shard's virtual-time backlog tracker.
#[derive(Debug, Clone)]
pub struct BacklogGauge {
    watermarks: Watermarks,
    backlog_us: u64,
    last_vtime_us: u64,
}

impl BacklogGauge {
    /// Empty backlog with the given watermarks.
    pub fn new(watermarks: Watermarks) -> BacklogGauge {
        BacklogGauge {
            watermarks,
            backlog_us: 0,
            last_vtime_us: 0,
        }
    }

    /// Account a request arriving at virtual time `vtime_us` with
    /// modelled cost `cost_us` and priority `class`.  Arrival times must
    /// be non-decreasing (the load generator emits them sorted).
    pub fn offer(&mut self, vtime_us: u64, cost_us: u64, class: Priority) -> Admission {
        // Drain since the previous arrival.
        let dt = vtime_us.saturating_sub(self.last_vtime_us);
        self.last_vtime_us = self.last_vtime_us.max(vtime_us);
        self.backlog_us = self.backlog_us.saturating_sub(dt);

        let watermark_us = self.watermarks.for_class(class);
        if self.backlog_us > watermark_us {
            return Admission::Shed {
                backlog_us: self.backlog_us,
                watermark_us,
            };
        }
        let queued_ahead_us = self.backlog_us;
        self.backlog_us += cost_us;
        Admission::Admit { queued_ahead_us }
    }

    /// Current backlog (µs) — for events and tests.
    pub fn backlog_us(&self) -> u64 {
        self.backlog_us
    }
}

#[cfg(test)]
#[allow(clippy::unwrap_used)]
mod tests {
    use super::*;

    #[test]
    fn drains_at_virtual_rate_and_sheds_low_classes_first() {
        let mut g = BacklogGauge::new(Watermarks::bounded_by(1000));
        // Fill to 900us of work instantly.
        for _ in 0..9 {
            assert!(matches!(
                g.offer(0, 100, Priority::Interactive),
                Admission::Admit { .. }
            ));
        }
        assert_eq!(g.backlog_us(), 900);
        // Background watermark is 250: shed.
        assert!(matches!(
            g.offer(0, 100, Priority::Background),
            Admission::Shed { watermark_us: 250, .. }
        ));
        // Batch watermark is 500: shed.
        assert!(matches!(
            g.offer(0, 100, Priority::Batch),
            Admission::Shed { watermark_us: 500, .. }
        ));
        // Interactive still fits.
        assert!(matches!(
            g.offer(0, 100, Priority::Interactive),
            Admission::Admit {
                queued_ahead_us: 900
            }
        ));
        // 800us later, backlog has drained to 200: batch admits again.
        assert!(matches!(
            g.offer(800, 100, Priority::Batch),
            Admission::Admit {
                queued_ahead_us: 200
            }
        ));
    }

    #[test]
    fn hard_bound_sheds_even_interactive() {
        let mut g = BacklogGauge::new(Watermarks::bounded_by(300));
        for _ in 0..4 {
            let _ = g.offer(0, 100, Priority::Interactive);
        }
        assert!(matches!(
            g.offer(0, 100, Priority::Interactive),
            Admission::Shed { .. }
        ));
    }

    #[test]
    fn decisions_are_pure_functions_of_the_stream() {
        let stream: Vec<(u64, u64, Priority)> = (0..200)
            .map(|i| (i * 7, 40 + (i % 5) * 10, Priority::ALL[(i % 3) as usize]))
            .collect();
        let run = || {
            let mut g = BacklogGauge::new(Watermarks::bounded_by(500));
            stream
                .iter()
                .map(|&(t, c, p)| g.offer(t, c, p))
                .collect::<Vec<_>>()
        };
        assert_eq!(run(), run());
    }
}
