//! `cholcomm-serve`: an overload-safe, chaos-tested batched
//! factorization service.
//!
//! An in-process, shard-per-core service that accepts streams of SPD
//! factorization jobs (raw factor, factor-and-solve, GP posterior,
//! Kalman innovation step) and wraps the workspace's bit-exact blocked
//! Cholesky in a full robustness envelope:
//!
//! - **Admission** ([`admission`]): bounded virtual-time backlog per
//!   shard with priority-class watermarks — background work sheds first,
//!   interactive last, and every decision is a pure function of the
//!   request stream.
//! - **Deadlines** ([`engine`]): per-request budgets enforced
//!   cooperatively at panel granularity through the engine's control
//!   hook; no request ever hangs past its budget.
//! - **Supervision** ([`shard`]): panic-isolated shard workers under a
//!   supervisor that catches injected crashes, restarts the worker, and
//!   re-drives in-flight jobs from their last panel checkpoint —
//!   bit-identically, by the left-looking resumability invariant.
//! - **Retry** ([`shard`]): transient faults retried with seeded,
//!   jittered exponential backoff, bounded by a retry limit that turns
//!   into a typed [`ServeError::RetriesExhausted`].
//! - **Breakers** ([`breaker`]): per-shard `Healthy -> Degraded ->
//!   Shedding` circuit breakers widening the refusal surface as faults
//!   accumulate.
//! - **Graceful degradation** ([`cache`]): shed or refused requests are
//!   rescued, when possible, by an ABFT-verified factor cache whose
//!   reads heal single-bit at-rest corruption and evict (never serve)
//!   unrecoverable entries.
//! - **Chaos harness** ([`loadgen`]): a seeded load generator (Zipf
//!   keys, heavy-tailed sizes, bursts) composed with
//!   [`cholcomm_faults::FaultPlan`] job faults; runs replay
//!   byte-identically and every completed response is bit-identical to
//!   an unfaulted direct factorization.
//! - **Durability** ([`durable`]): an optional journaled factor cache
//!   (intent, entry, barrier, commit, barrier — the same commit protocol
//!   as the ooc checkpoints) so a service restarted after a power cut
//!   replays its committed factors instead of refactoring them; torn or
//!   tampered entries are dropped, never served.

#![forbid(unsafe_code)]
#![warn(missing_docs)]
#![deny(clippy::unwrap_used)]

pub mod admission;
pub mod batcher;
pub mod breaker;
pub mod cache;
pub mod durable;
pub mod engine;
pub mod error;
pub mod events;
pub mod jobs;
pub mod loadgen;
pub mod metrics;
pub mod service;
mod shard;

pub use admission::{Admission, BacklogGauge, Priority, Watermarks};
pub use batcher::{bucket_of, BatchConfig};
pub use breaker::{BreakerConfig, BreakerState, CircuitBreaker};
pub use cache::{CacheRead, CacheStats, FactorCache};
pub use durable::{DurableCache, RecoveryReport};
pub use engine::{
    batch_cost_us, batched_request_cost_us, factor_batch, factor_cost_us, factor_resumable,
    panel_cost_us, panel_count, Checkpoint, FactorOutcome, PanelControl, PanelCrash,
    BATCH_FLOPS_PER_US,
};
pub use error::ServeError;
pub use events::{canonicalize, log_digest, Event, EventRecord, Source};
pub use jobs::{build, problem_digest, CvModel, GpProblem, JobKind, Problem};
pub use loadgen::{ChaosScenario, Workload};
pub use metrics::{Counters, Metrics};
pub use service::{
    Request, Response, Service, ServiceConfig, ServiceReport, ShardConfig, Ticket,
};
