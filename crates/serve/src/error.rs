//! Typed refusals and failures of the factorization service.
//!
//! The robustness contract is that the service *never* fails silently:
//! every request either completes with a bit-identical factor or comes
//! back with one of these errors, each naming the mechanism that refused
//! it.  Load shedding in particular is a loud, typed outcome — a shed
//! request is an explicit [`ServeError::ShedOverload`], not a timeout.

use cholcomm_matrix::MatrixError;
use std::fmt;

use crate::admission::Priority;

/// Why a request did not produce a fresh, completed response.
#[derive(Debug, Clone, PartialEq)]
pub enum ServeError {
    /// Admission control shed the request: the shard's virtual backlog
    /// stood above the watermark for this priority class and no
    /// ABFT-verified cached factor could stand in.
    ShedOverload {
        /// The request's priority class.
        class: Priority,
        /// The shard's virtual backlog (µs of queued work) at admission.
        backlog_us: u64,
        /// The watermark (µs) the backlog exceeded for this class.
        watermark_us: u64,
    },
    /// The shard's circuit breaker was open (`Shedding`) after repeated
    /// faults, and no cached factor could stand in.
    CircuitOpen {
        /// The shard whose breaker refused the request.
        shard: usize,
        /// Consecutive faults observed when the breaker opened.
        consecutive_faults: u32,
    },
    /// The request's deadline budget expired; the factorization was
    /// cooperatively cancelled at a panel boundary (or refused before
    /// starting when queue wait alone exhausted the budget).
    DeadlineExceeded {
        /// Virtual time (µs) the job had consumed when cancelled.
        elapsed_us: u64,
        /// The request's deadline budget (µs).
        budget_us: u64,
        /// Panel index at which the cancellation landed (0 = before any
        /// panel work).
        panel: usize,
    },
    /// Every retry attempt hit a fault; the per-request retry budget is
    /// spent.  With seeded plans this is unreachable below the plan's
    /// `max_fault_attempts` liveness bound — its presence here is what
    /// makes the retry loop visibly finite.
    RetriesExhausted {
        /// Attempts made (each ended in a transient fault or crash).
        attempts: u32,
    },
    /// The matrix itself is at fault (not SPD, wrong shape); retrying
    /// cannot help, so this is returned immediately without backoff.
    Matrix(MatrixError),
    /// The service is shutting down and no longer accepts work.
    Stopped,
}

impl fmt::Display for ServeError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            ServeError::ShedOverload {
                class,
                backlog_us,
                watermark_us,
            } => write!(
                f,
                "shed: {class:?} backlog {backlog_us}us above watermark {watermark_us}us"
            ),
            ServeError::CircuitOpen {
                shard,
                consecutive_faults,
            } => write!(
                f,
                "circuit open on shard {shard} after {consecutive_faults} consecutive faults"
            ),
            ServeError::DeadlineExceeded {
                elapsed_us,
                budget_us,
                panel,
            } => write!(
                f,
                "deadline exceeded at panel {panel}: {elapsed_us}us of {budget_us}us budget"
            ),
            ServeError::RetriesExhausted { attempts } => {
                write!(f, "retries exhausted after {attempts} attempts")
            }
            ServeError::Matrix(e) => write!(f, "matrix error: {e}"),
            ServeError::Stopped => write!(f, "service stopped"),
        }
    }
}

impl std::error::Error for ServeError {}

impl From<MatrixError> for ServeError {
    fn from(e: MatrixError) -> Self {
        ServeError::Matrix(e)
    }
}

impl ServeError {
    /// True for refusals that are a deliberate service decision (shed,
    /// breaker, deadline) rather than a workload or infrastructure fault.
    pub fn is_refusal(&self) -> bool {
        matches!(
            self,
            ServeError::ShedOverload { .. }
                | ServeError::CircuitOpen { .. }
                | ServeError::DeadlineExceeded { .. }
        )
    }

    /// Short stable tag for event logs and bench counters.
    pub fn tag(&self) -> &'static str {
        match self {
            ServeError::ShedOverload { .. } => "shed_overload",
            ServeError::CircuitOpen { .. } => "circuit_open",
            ServeError::DeadlineExceeded { .. } => "deadline",
            ServeError::RetriesExhausted { .. } => "retries_exhausted",
            ServeError::Matrix(_) => "matrix",
            ServeError::Stopped => "stopped",
        }
    }
}
