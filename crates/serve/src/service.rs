//! The service front end: shard-per-core routing, admission, and the
//! replayable run report.
//!
//! The submitter (whoever holds the [`Service`]) is single-threaded by
//! construction (`submit` takes `&mut self`): it assigns dense request
//! ids, makes every admission decision against per-shard virtual-time
//! backlog gauges, and routes each request to its home shard by problem
//! digest.  Everything nondeterministic about the machine — thread
//! scheduling, wall-clock speed — is therefore kept out of the decision
//! path; the canonical event log and counters in the
//! [`ServiceReport`] are pure functions of `(config, plan, request
//! stream)`, which is exactly what the replay test asserts.

use crate::admission::{Admission, BacklogGauge, Priority, Watermarks};
use crate::batcher::{bucket_of, BatchConfig, Batcher, ReadyBatch};
use crate::breaker::BreakerConfig;
use crate::durable::DurableCache;
use crate::engine::{batched_request_cost_us, factor_cost_us};
use crate::error::ServeError;
use crate::events::{canonicalize, log_digest, Event, EventRecord, Source};
use crate::jobs::{problem_digest, JobKind};
use crate::metrics::Metrics;
use crate::shard::{Shard, ShardJob, ShardMsg, ShardReport};
use cholcomm_faults::FaultPlan;
use cholcomm_matrix::{KernelImpl, Matrix};
use crossbeam::channel::{unbounded, Receiver, Sender};
use std::thread::JoinHandle;
use std::time::Instant;

/// Per-shard knobs, shared by every shard of a service.
#[derive(Debug, Clone, Copy)]
pub struct ShardConfig {
    /// Blocked-factorization panel width.
    pub block: usize,
    /// Arithmetic kernel implementation.
    pub kernel: KernelImpl,
    /// Factor-cache capacity (entries); 0 disables caching.
    pub cache_capacity: usize,
    /// Maximum factorization attempts per job.
    pub retry_limit: u32,
    /// Base of the jittered exponential backoff (virtual µs).
    pub backoff_base_us: u64,
    /// Circuit-breaker thresholds.
    pub breaker: BreakerConfig,
    /// Service seed (jitter derivation).
    pub seed: u64,
    /// Let the shard's kernels fan BLAS-3 work onto the rayon pool.
    /// Off by default: a shard is already one worker of a shard-per-core
    /// service, so intra-kernel parallelism only helps when the service
    /// runs few shards on many cores.  Strict-mode results are
    /// bit-identical either way; `Fast` results are deterministic at a
    /// fixed pool size but may differ between pool sizes.
    pub parallel: bool,
}

/// Full service configuration.
#[derive(Debug, Clone, Copy)]
pub struct ServiceConfig {
    /// Number of shards (worker threads).
    pub shards: usize,
    /// Per-class admission watermarks for each shard's backlog gauge.
    pub watermarks: Watermarks,
    /// Per-shard knobs.
    pub shard: ShardConfig,
    /// Size-bucketed batching knobs (off by default).
    pub batch: BatchConfig,
}

impl Default for ServiceConfig {
    fn default() -> Self {
        ServiceConfig {
            shards: 4,
            watermarks: Watermarks::bounded_by(4_000),
            shard: ShardConfig {
                block: 16,
                kernel: KernelImpl::default(),
                cache_capacity: 32,
                retry_limit: 4,
                backoff_base_us: 8,
                breaker: BreakerConfig::default(),
                seed: 0,
                parallel: false,
            },
            batch: BatchConfig::default(),
        }
    }
}

/// One request to the service.
#[derive(Debug, Clone, Copy)]
pub struct Request {
    /// What to compute.
    pub kind: JobKind,
    /// Problem key (identifies the matrix; popular keys cache-hit).
    pub key: u64,
    /// Matrix order.
    pub n: usize,
    /// Priority class.
    pub class: Priority,
    /// Virtual arrival time (µs, non-decreasing across submissions).
    pub vtime_us: u64,
    /// Deadline budget in virtual µs, counted from arrival.
    pub deadline_us: u64,
}

/// A completed response.
#[derive(Debug, Clone)]
pub struct Response {
    /// Request id this answers.
    pub req: u64,
    /// Where the factor came from.
    pub source: Source,
    /// `lower_digest` of the served factor — the bit-identity
    /// certificate the chaos checker compares against a direct run.
    pub factor_digest: u64,
    /// Solution of the request's right-hand side, when its kind has one.
    pub solution: Option<Vec<f64>>,
    /// Virtual end-to-end latency (µs).
    pub virt_latency_us: u64,
}

/// Handle for one in-flight request.
pub struct Ticket {
    /// Request id.
    pub req: u64,
    rx: Receiver<Result<Response, ServeError>>,
}

impl Ticket {
    /// Block until the request resolves.  A shard that disappeared
    /// without answering (shutdown race) reports [`ServeError::Stopped`].
    pub fn wait(self) -> Result<Response, ServeError> {
        self.rx.recv().unwrap_or(Err(ServeError::Stopped))
    }
}

/// The deterministic artifact of a finished run.
#[derive(Debug, Clone)]
pub struct ServiceReport {
    /// Canonical `(req, seq)`-ordered event log.
    pub records: Vec<EventRecord>,
    /// FNV digest of the canonical log — the replay certificate.
    pub log_digest: u64,
    /// Merged counters, cache stats, and latency samples.
    pub metrics: Metrics,
}

/// The in-process factorization service.
pub struct Service {
    config: ServiceConfig,
    senders: Vec<Sender<ShardMsg>>,
    workers: Vec<JoinHandle<ShardReport>>,
    gauges: Vec<BacklogGauge>,
    batcher: Batcher,
    events: Vec<EventRecord>,
    next_req: u64,
    submitted: u64,
}

impl Service {
    /// Start the shard workers under `plan` (use
    /// [`cholcomm_faults::FaultPlan::none`] for a fault-free service).
    pub fn start(config: ServiceConfig, plan: &FaultPlan) -> Service {
        Service::start_with(config, plan, |_| None)
    }

    /// Start with a durable factor cache: `make_store` supplies each
    /// shard's [`Store`](cholcomm_faults::Store) (over a shared
    /// [`SimDisk`](cholcomm_faults::SimDisk) in the crash harness, or an
    /// [`FsStore`](cholcomm_faults::FsStore) on a real disk).  Each shard
    /// replays its journal at spawn — `cache_recovered` in the run's
    /// counters says how many committed factors survived — and
    /// journal-commits every fresh factor it caches.
    pub fn start_durable(
        config: ServiceConfig,
        plan: &FaultPlan,
        mut make_store: impl FnMut(usize) -> Box<dyn cholcomm_faults::Store + Send>,
    ) -> Service {
        Service::start_with(config, plan, |shard| {
            Some(DurableCache::open(shard, make_store(shard)))
        })
    }

    fn start_with(
        config: ServiceConfig,
        plan: &FaultPlan,
        mut make_durable: impl FnMut(usize) -> Option<DurableCache>,
    ) -> Service {
        assert!(config.shards >= 1, "need at least one shard");
        let mut senders = Vec::with_capacity(config.shards);
        let mut workers = Vec::with_capacity(config.shards);
        for shard_id in 0..config.shards {
            let (tx, rx) = unbounded();
            senders.push(tx);
            workers.push(Shard::spawn(
                shard_id,
                config.shard,
                plan.clone(),
                rx,
                make_durable(shard_id),
            ));
        }
        // Log the effective execution configuration once, under the
        // sentinel request id, so every replay certificate states what
        // kernel/parallelism/batching produced it.  The pool thread
        // count is recorded for operators but excluded from the
        // canonical encoding (machine-dependent, bit-inert).
        let events = vec![EventRecord {
            req: u64::MAX,
            seq: 0,
            event: Event::ServiceStarted {
                shards: config.shards,
                kernel: config.shard.kernel.name(),
                parallel: config.shard.parallel,
                batching: config.batch.enabled,
                pool_threads: rayon::current_num_threads(),
            },
        }];
        Service {
            config,
            senders,
            workers,
            gauges: vec![BacklogGauge::new(config.watermarks); config.shards],
            batcher: Batcher::new(config.batch),
            events,
            next_req: 0,
            submitted: 0,
        }
    }

    /// Home shard of a problem digest.
    fn route(&self, digest: u64) -> usize {
        (digest % self.senders.len() as u64) as usize
    }

    /// Submit one request; returns a [`Ticket`] to wait on.  Admission
    /// (including shedding) happens here, synchronously and
    /// deterministically; shed requests still travel to their shard so
    /// the degraded cache can try to rescue them before the typed
    /// refusal.
    pub fn submit(&mut self, request: Request) -> Ticket {
        let req_id = self.next_req;
        self.next_req += 1;
        self.submitted += 1;

        // Admission step zero: a shape whose storage cannot even be
        // addressed is refused at the front door with a typed error.
        // Such a request must never reach a shard — the allocation would
        // panic the worker — and `factor_cost_us` below would overflow
        // on it before the shard ever saw it.
        if let Err(e) = Matrix::<f64>::checked_len(request.n, request.n) {
            let (reply, rx) = unbounded();
            let _ = reply.send(Err(ServeError::Matrix(e)));
            return Ticket { req: req_id, rx };
        }

        let digest = problem_digest(request.kind, request.key, request.n);
        let shard = self.route(digest);
        // Admission charges batchable jobs their *amortized* cost — the
        // per-lane share of a batch, without the per-batch dispatch
        // constants — so a batched service doesn't over-shed traffic
        // its kernels can absorb.  Unbatchable jobs pay the full
        // per-request model as before.
        let batchable = self.batcher.takes(request.kind, request.n);
        let cost_us = if batchable {
            batched_request_cost_us(bucket_of(request.n), self.config.shard.block)
        } else {
            factor_cost_us(request.n, self.config.shard.block)
        };
        let admit = self.gauges[shard].offer(request.vtime_us, cost_us, request.class);

        let mut next_seq: u32 = 0;
        self.events.push(EventRecord {
            req: req_id,
            seq: next_seq,
            event: Event::Submitted {
                shard,
                vtime_us: request.vtime_us,
                kind: request.kind,
                key: request.key,
                n: request.n,
                class: request.class,
                cost_us,
                deadline_us: request.deadline_us,
            },
        });
        next_seq += 1;
        if let Admission::Shed {
            backlog_us,
            watermark_us,
        } = admit
        {
            self.events.push(EventRecord {
                req: req_id,
                seq: next_seq,
                event: Event::Shed {
                    backlog_us,
                    watermark_us,
                },
            });
            next_seq += 1;
        }

        let (reply, rx) = unbounded();
        let job = ShardJob {
            req_id,
            request,
            digest,
            admit,
            next_seq,
            submitted_at: Instant::now(),
            reply,
        };
        if batchable && matches!(admit, Admission::Admit { .. }) {
            // Admitted batchable work waits in its size bucket; shed
            // requests bypass the batcher so the degraded-cache rescue
            // (or the typed refusal) stays immediate.
            self.batcher.push(shard, job);
        } else {
            let _ = self.senders[shard].send(ShardMsg::One(Box::new(job)));
        }
        // Every submission advances virtual time, so every submission
        // can make a bucket due (full or aged out).
        for ready in self.batcher.due(request.vtime_us) {
            self.dispatch(ready);
        }
        Ticket { req: req_id, rx }
    }

    /// Send one released bucket to its home shard as a single unit.
    fn dispatch(&mut self, ready: ReadyBatch) {
        let _ = self.senders[ready.shard].send(ShardMsg::Batch {
            bucket_n: ready.bucket_n,
            released_us: ready.released_us,
            jobs: ready.jobs,
        });
    }

    /// Release every pending bucket immediately, regardless of fill or
    /// age.  Call this before waiting on outstanding [`Ticket`]s when no
    /// further submissions are coming — a ticket in an unreleased bucket
    /// never resolves on its own, because batch formation is driven by
    /// the (now silent) submission stream.  [`Service::shutdown`]
    /// flushes too, so drop-and-drain never strands a request.
    pub fn flush_batches(&mut self) {
        for ready in self.batcher.flush_all() {
            self.dispatch(ready);
        }
    }

    /// Submit and wait — the synchronous convenience path.  Flushes the
    /// batcher first: a lone synchronous caller must never deadlock
    /// waiting on a bucket that only its own future submissions could
    /// fill.
    pub fn call(&mut self, request: Request) -> Result<Response, ServeError> {
        let ticket = self.submit(request);
        self.flush_batches();
        ticket.wait()
    }

    /// Drain the shards and assemble the run's deterministic report.
    pub fn shutdown(mut self) -> ServiceReport {
        self.flush_batches();
        let Service {
            senders,
            workers,
            mut events,
            submitted,
            ..
        } = self;
        drop(senders); // disconnect: each shard drains its queue and exits
        let mut metrics = Metrics::default();
        for worker in workers {
            match worker.join() {
                Ok(report) => {
                    events.extend(report.events);
                    metrics.merge(&report.metrics);
                }
                Err(payload) => std::panic::resume_unwind(payload),
            }
        }
        metrics.counters.submitted = submitted;
        metrics.canonicalize();
        let records = canonicalize(events);
        let digest = log_digest(&records);
        ServiceReport {
            records,
            log_digest: digest,
            metrics,
        }
    }
}

#[cfg(test)]
#[allow(clippy::unwrap_used)]
mod tests {
    use super::*;
    use crate::cache::CacheRead;
    use cholcomm_faults::{FaultPlan, JobFault};
    use cholcomm_matrix::{lower_digest, tri};

    fn request(kind: JobKind, key: u64, n: usize, vtime_us: u64) -> Request {
        Request {
            kind,
            key,
            n,
            class: Priority::Batch,
            vtime_us,
            deadline_us: u64::MAX / 2,
        }
    }

    /// Factor the request's problem directly (no service, no faults) and
    /// return the reference digest and solution.
    fn direct(kind: JobKind, key: u64, n: usize, block: usize, kernel: KernelImpl) -> (u64, Option<Vec<f64>>) {
        use crate::engine::{factor_resumable, Checkpoint, FactorOutcome, PanelControl};
        let problem = crate::jobs::build(kind, key, n);
        let factor = match factor_resumable(
            Checkpoint::fresh(problem.a),
            block,
            kernel,
            &mut |_, _| PanelControl::Continue,
        )
        .unwrap()
        {
            FactorOutcome::Done(m) => m,
            other => panic!("unexpected {other:?}"),
        };
        let solution = problem.rhs.map(|rhs| tri::solve_with_factor(&factor, &rhs));
        (lower_digest(&factor), solution)
    }

    #[test]
    fn clean_service_matches_direct_factorization_bit_for_bit() {
        let config = ServiceConfig {
            shards: 2,
            ..ServiceConfig::default()
        };
        let plan = FaultPlan::builder(1).build();
        let mut service = Service::start(config, &plan);
        for (i, kind) in JobKind::ALL.iter().enumerate() {
            let req = request(*kind, 10 + i as u64, 24, i as u64 * 50);
            let resp = service.call(req).unwrap();
            let (want_digest, want_solution) =
                direct(*kind, 10 + i as u64, 24, config.shard.block, config.shard.kernel);
            assert_eq!(resp.factor_digest, want_digest, "{kind:?}");
            assert_eq!(resp.solution, want_solution, "{kind:?}");
        }
        let report = service.shutdown();
        assert_eq!(report.metrics.counters.completed, 4);
        assert_eq!(report.metrics.counters.availability(), 1.0);
    }

    #[test]
    fn repeated_keys_hit_the_cache_with_identical_bits() {
        let plan = FaultPlan::builder(2).build();
        let mut service = Service::start(ServiceConfig::default(), &plan);
        let first = service
            .call(request(JobKind::Factor, 77, 32, 0))
            .unwrap();
        assert_eq!(first.source, Source::Fresh);
        let second = service
            .call(request(JobKind::Factor, 77, 32, 10_000))
            .unwrap();
        assert_eq!(second.source, Source::Cache);
        assert_eq!(second.factor_digest, first.factor_digest);
        let report = service.shutdown();
        assert_eq!(report.metrics.cache.hits, 1);
        assert_eq!(report.metrics.counters.fresh_factorizations, 1);
    }

    #[test]
    fn transient_faults_are_retried_to_a_bit_identical_answer() {
        let plan = FaultPlan::builder(3)
            .inject_job_fault(0, 1, JobFault::Transient)
            .inject_job_fault(0, 2, JobFault::Transient)
            .build();
        let mut service = Service::start(ServiceConfig::default(), &plan);
        let resp = service.call(request(JobKind::Solve, 5, 24, 0)).unwrap();
        let (want, _) = direct(JobKind::Solve, 5, 24, 16, KernelImpl::default());
        assert_eq!(resp.factor_digest, want);
        let report = service.shutdown();
        assert_eq!(report.metrics.counters.transient_faults, 2);
        assert_eq!(report.metrics.counters.completed, 1);
    }

    #[test]
    fn worker_crashes_are_supervised_and_resumed_from_checkpoint() {
        let plan = FaultPlan::builder(4)
            .inject_job_fault(0, 1, JobFault::Crash { panel: 1 })
            .build();
        let mut service = Service::start(ServiceConfig::default(), &plan);
        let resp = service.call(request(JobKind::Factor, 9, 48, 0)).unwrap();
        let (want, _) = direct(JobKind::Factor, 9, 48, 16, KernelImpl::default());
        assert_eq!(resp.factor_digest, want, "resumed factor must be bit-identical");
        let report = service.shutdown();
        assert_eq!(report.metrics.counters.worker_crashes, 1);
        assert_eq!(report.metrics.counters.worker_restarts, 1);
        // The restart event records resumption from the crash panel, not
        // from scratch.
        assert!(report.records.iter().any(|r| matches!(
            r.event,
            Event::WorkerRestarted { from_panel: 1, .. }
        )));
    }

    #[test]
    fn retries_exhausted_is_a_typed_refusal() {
        let mut builder = FaultPlan::builder(5);
        for attempt in 1..=8 {
            builder = builder.inject_job_fault(0, attempt, JobFault::Transient);
        }
        let plan = builder.build();
        let mut service = Service::start(ServiceConfig::default(), &plan);
        let err = service.call(request(JobKind::Factor, 1, 16, 0)).unwrap_err();
        assert!(matches!(err, ServeError::RetriesExhausted { attempts: 4 }));
        let report = service.shutdown();
        assert_eq!(report.metrics.counters.completed, 0);
    }

    #[test]
    fn deadline_cancels_at_a_panel_boundary_with_a_typed_error() {
        let plan = FaultPlan::builder(6).build();
        let mut service = Service::start(ServiceConfig::default(), &plan);
        let mut req = request(JobKind::Factor, 2, 64, 0);
        req.deadline_us = 1; // far below the modelled factorization cost
        let err = service.call(req).unwrap_err();
        let ServeError::DeadlineExceeded { elapsed_us, budget_us, .. } = err else {
            panic!("expected deadline error, got {err}");
        };
        assert!(elapsed_us >= budget_us);
        let report = service.shutdown();
        assert_eq!(report.metrics.counters.deadline_canceled, 1);
    }

    #[test]
    fn overload_sheds_with_typed_refusals_or_degraded_cache() {
        let config = ServiceConfig {
            shards: 1,
            watermarks: Watermarks::bounded_by(40),
            ..ServiceConfig::default()
        };
        let plan = FaultPlan::builder(7).build();
        let mut service = Service::start(config, &plan);

        // Warm the cache for one popular key.
        let warm = service.call(request(JobKind::Factor, 1, 64, 0)).unwrap();

        // A burst at one virtual instant: backlog blows past every
        // watermark after the first admit.
        let mut shed_errors = 0;
        let mut degraded = 0;
        let tickets: Vec<Ticket> = (0..6)
            .map(|i| {
                // Alternate the cached key with cold keys.
                let key = if i % 2 == 0 { 1 } else { 100 + i };
                service.submit(request(JobKind::Factor, key, 64, 50_000))
            })
            .collect();
        for ticket in tickets {
            match ticket.wait() {
                Ok(resp) if resp.source == Source::DegradedCache => {
                    degraded += 1;
                    assert_eq!(resp.factor_digest, warm.factor_digest);
                }
                Ok(_) => {}
                Err(e) => {
                    assert!(
                        matches!(e, ServeError::ShedOverload { .. }),
                        "refusals under burst must be typed sheds, got {e}"
                    );
                    shed_errors += 1;
                }
            }
        }
        assert!(shed_errors > 0, "burst must shed loudly");
        assert!(degraded > 0, "popular key must be rescued from cache");
        let report = service.shutdown();
        assert_eq!(report.metrics.counters.shed_overload, shed_errors);
        assert_eq!(report.metrics.counters.degraded_served, degraded);
        assert!(report.metrics.counters.availability() < 1.0);
    }

    #[test]
    fn cache_corruption_is_healed_or_evicted_never_served_wrong() {
        // Request 1 re-reads key 4's cached factor with a single bit flip
        // (healed); request 2 re-reads it with two flips (unrecoverable).
        let plan = FaultPlan::builder(8)
            .inject_cache_flip(1, (2, 1), 1 << 30)
            .inject_cache_flip(2, (0, 0), 1)
            .inject_cache_flip(2, (5, 3), 1 << 60)
            .build();
        let mut service = Service::start(
            ServiceConfig {
                shards: 1,
                ..ServiceConfig::default()
            },
            &plan,
        );
        let fresh = service.call(request(JobKind::Factor, 4, 24, 0)).unwrap();
        let healed = service.call(request(JobKind::Factor, 4, 24, 10_000)).unwrap();
        assert_eq!(healed.source, Source::Cache);
        assert_eq!(healed.factor_digest, fresh.factor_digest, "healed read must be bit-exact");
        // Two flips: the entry is evicted and the job re-factors fresh.
        let refetched = service.call(request(JobKind::Factor, 4, 24, 20_000)).unwrap();
        assert_eq!(refetched.source, Source::Fresh);
        assert_eq!(refetched.factor_digest, fresh.factor_digest);
        let report = service.shutdown();
        assert_eq!(report.metrics.cache.healed, 1);
        assert_eq!(report.metrics.cache.corrupt_evictions, 1);
        assert!(report.records.iter().any(|r| matches!(
            r.event,
            Event::CacheRead { read: CacheRead::Corrupt, .. }
        )));
    }

    #[test]
    fn power_cut_between_processes_recovers_committed_cache_entries() {
        use cholcomm_faults::{SimDisk, SimStore, DEFAULT_SECTOR};
        use std::sync::{Arc, Mutex};

        let disk = Arc::new(Mutex::new(SimDisk::new(DEFAULT_SECTOR)));
        let plan = FaultPlan::builder(12).build();
        let config = ServiceConfig {
            shards: 1,
            ..ServiceConfig::default()
        };

        // Process 1 factors a key fresh and journal-commits it.
        let mut service = Service::start_durable(config, &plan, |_| {
            Box::new(SimStore::new(Arc::clone(&disk)))
        });
        let first = service.call(request(JobKind::Factor, 42, 32, 0)).unwrap();
        assert_eq!(first.source, Source::Fresh);
        let report = service.shutdown();
        assert_eq!(report.metrics.counters.cache_recovered, 0);

        // Power cut: everything un-barriered vanishes.  The commit
        // protocol barriered the entry before its commit record, so the
        // committed factor must survive.
        disk.lock().unwrap().power_cut();

        // Process 2 replays the journal and serves the repeat from the
        // recovered cache, bit-identically — no refactorization.
        let mut service = Service::start_durable(config, &plan, |_| {
            Box::new(SimStore::new(Arc::clone(&disk)))
        });
        let resp = service.call(request(JobKind::Factor, 42, 32, 0)).unwrap();
        assert_eq!(resp.source, Source::Cache);
        assert_eq!(resp.factor_digest, first.factor_digest);
        let report = service.shutdown();
        assert_eq!(report.metrics.counters.cache_recovered, 1);
        assert_eq!(report.metrics.counters.fresh_factorizations, 0);
    }

    #[test]
    fn oversized_shapes_are_shed_at_the_front_door_not_crashed_in_a_shard() {
        let plan = FaultPlan::builder(13).build();
        let mut service = Service::start(ServiceConfig::default(), &plan);

        // A shape whose element count overflows `usize` must come back
        // as a typed refusal without ever reaching a shard.
        let err = service
            .call(request(JobKind::Factor, 1, usize::MAX / 2, 0))
            .unwrap_err();
        assert!(
            matches!(
                err,
                ServeError::Matrix(cholcomm_matrix::MatrixError::TooLarge { .. })
            ),
            "want TooLarge refusal, got {err}"
        );

        // The service stays healthy: a normal request afterwards is
        // served bit-identically to a direct factorization.
        let resp = service.call(request(JobKind::Factor, 2, 24, 100)).unwrap();
        let (want, _) = direct(JobKind::Factor, 2, 24, 16, KernelImpl::default());
        assert_eq!(resp.factor_digest, want);
        let report = service.shutdown();
        assert_eq!(report.metrics.counters.completed, 1);
        assert_eq!(report.metrics.counters.submitted, 2);
    }

    #[test]
    fn parallel_shards_serve_bit_identical_factors() {
        let plan = FaultPlan::builder(14).build();
        let mut config = ServiceConfig::default();
        config.shard.parallel = true;
        let mut service = Service::start(config, &plan);
        for (i, kind) in JobKind::ALL.iter().enumerate() {
            let req = request(*kind, 30 + i as u64, 40, i as u64 * 50);
            let resp = service.call(req).unwrap();
            let (want_digest, want_solution) =
                direct(*kind, 30 + i as u64, 40, config.shard.block, config.shard.kernel);
            assert_eq!(resp.factor_digest, want_digest, "{kind:?}");
            assert_eq!(resp.solution, want_solution, "{kind:?}");
        }
        service.shutdown();
    }

    #[test]
    fn identical_runs_produce_identical_reports() {
        let run = || {
            let plan = FaultPlan::builder(11)
                .job_transient_rate(0.2)
                .worker_crash_rate(0.1)
                .build();
            let mut service = Service::start(ServiceConfig::default(), &plan);
            let tickets: Vec<Ticket> = (0..20)
                .map(|i| {
                    service.submit(request(
                        JobKind::ALL[i % 4],
                        i as u64 % 5,
                        16 + 8 * (i % 3),
                        i as u64 * 100,
                    ))
                })
                .collect();
            for t in tickets {
                let _ = t.wait();
            }
            service.shutdown()
        };
        let one = run();
        let two = run();
        assert_eq!(one.log_digest, two.log_digest);
        assert_eq!(one.metrics.counters, two.metrics.counters);
        assert_eq!(one.metrics.virt_latency_us, two.metrics.virt_latency_us);
    }
}
