//! The seeded load generator, doubling as the chaos harness.
//!
//! [`LoadGen`] turns a seed into a concrete request stream: Zipf-skewed
//! key popularity (hot keys exercise the factor cache), BoundedPareto
//! sizes quantized to panel-friendly multiples, Poisson (exponential
//! inter-arrival) virtual arrivals with periodic burst windows, and a
//! deterministic priority-class mix.  The stream is a pure function of
//! the [`Workload`], so driving a [`crate::Service`] with it — under any
//! [`FaultPlan`] — yields the replayable runs the chaos tests and
//! `serve_bench` assert on.
//!
//! [`ChaosScenario`] names the standard chaos plans the acceptance
//! criteria call out (clean, bit-flip, transient, worker-crash,
//! burst-overload); [`ChaosScenario::plan`] composes the matching
//! [`FaultPlan`], and [`ChaosScenario::workload`] the matching stream
//! shape.

use crate::admission::Priority;
use crate::jobs::JobKind;
use crate::service::Request;
use cholcomm_faults::FaultPlan;
use rand::distributions::{BoundedPareto, Distribution, Exp, Zipf};
use rand::rngs::StdRng;
use rand::{RngExt, SeedableRng};

/// Shape of a generated request stream.
#[derive(Debug, Clone, Copy)]
pub struct Workload {
    /// Stream seed (also seeds the per-request draws).
    pub seed: u64,
    /// Number of requests.
    pub requests: usize,
    /// Distinct problem keys; popularity is Zipf over their ranks.
    pub keys: usize,
    /// Zipf popularity exponent.
    pub zipf_s: f64,
    /// Smallest matrix order (quantized up to a multiple of 8).
    pub n_min: usize,
    /// Largest matrix order.
    pub n_max: usize,
    /// Mean virtual inter-arrival gap (µs) outside bursts.
    pub mean_gap_us: u64,
    /// Every `burst_every`-th request opens a burst window... (0: never)
    pub burst_every: usize,
    /// ...of this many requests arriving at the same virtual instant.
    pub burst_len: usize,
    /// Deadline budget as a multiple of each job's modelled cost.
    pub deadline_factor: u64,
}

impl Default for Workload {
    fn default() -> Self {
        Workload {
            seed: 0,
            requests: 120,
            keys: 12,
            zipf_s: 1.1,
            n_min: 16,
            n_max: 96,
            mean_gap_us: 400,
            burst_every: 40,
            burst_len: 6,
            deadline_factor: 64,
        }
    }
}

impl Workload {
    /// Materialize the stream: requests with non-decreasing virtual
    /// arrival times.  Pure — equal workloads yield equal streams.
    pub fn generate(&self) -> Vec<Request> {
        assert!(self.n_min >= 2 && self.n_max >= self.n_min);
        let mut rng = StdRng::seed_from_u64(self.seed ^ 0x4C4F_4144);
        let zipf = Zipf::new(self.keys.max(1), self.zipf_s);
        let sizes = BoundedPareto::new(1.4, self.n_min as f64, self.n_max as f64);
        let gaps = Exp::new(1.0 / self.mean_gap_us.max(1) as f64);

        let mut vtime_us: u64 = 0;
        let mut burst_left: usize = 0;
        let mut out = Vec::with_capacity(self.requests);
        for i in 0..self.requests {
            if self.burst_every > 0 && i > 0 && i % self.burst_every == 0 {
                burst_left = self.burst_len;
            }
            if burst_left > 0 {
                burst_left -= 1; // burst: no gap, same virtual instant
            } else {
                vtime_us += gaps.sample(&mut rng) as u64;
            }

            let key = zipf.sample(&mut rng) as u64;
            // Quantize sizes to multiples of 8 so panel shapes repeat
            // (and equal (kind, key, n) triples actually recur).
            let n = ((sizes.sample(&mut rng) as usize).max(self.n_min) / 8 * 8).max(8);
            let kind = JobKind::ALL[rng.random_range(0..4u32) as usize];
            let class = match rng.random_range(0..10u32) {
                0..=3 => Priority::Interactive,
                4..=7 => Priority::Batch,
                _ => Priority::Background,
            };
            let cost = crate::engine::factor_cost_us(n, 16);
            out.push(Request {
                kind,
                key,
                n,
                class,
                vtime_us,
                deadline_us: cost.saturating_mul(self.deadline_factor),
            });
        }
        out
    }
}

/// The standard chaos scenarios of the acceptance criteria.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum ChaosScenario {
    /// No faults: the availability and latency baseline.
    Clean,
    /// At-rest single-bit flips strike cached factors (ABFT heals or
    /// evicts; served bits must stay identical).
    BitFlip,
    /// Transient job faults absorbed by retry with backoff.
    TransientEio,
    /// Workers panic mid-factorization; the supervisor re-drives from
    /// checkpoints.
    WorkerCrash,
    /// Arrival bursts drive the backlog past its watermarks; admission
    /// sheds loudly and the cache degrades gracefully.
    BurstOverload,
    /// The process loses power between two halves of the workload; the
    /// second process replays the durable cache journal and must serve
    /// recovered entries bit-identically.  (The fault plan itself is
    /// clean — the cut is simulated by dropping the disk's un-barriered
    /// window, see `SimDisk::power_cut`.)
    PowerCut,
}

impl ChaosScenario {
    /// All scenarios, in bench order.
    pub const ALL: [ChaosScenario; 6] = [
        ChaosScenario::Clean,
        ChaosScenario::BitFlip,
        ChaosScenario::TransientEio,
        ChaosScenario::WorkerCrash,
        ChaosScenario::BurstOverload,
        ChaosScenario::PowerCut,
    ];

    /// Stable tag for logs and JSON artifacts.
    pub fn tag(self) -> &'static str {
        match self {
            ChaosScenario::Clean => "clean",
            ChaosScenario::BitFlip => "bit_flip",
            ChaosScenario::TransientEio => "transient_eio",
            ChaosScenario::WorkerCrash => "worker_crash",
            ChaosScenario::BurstOverload => "burst_overload",
            ChaosScenario::PowerCut => "power_cut",
        }
    }

    /// The scenario's fault plan at `seed`.
    pub fn plan(self, seed: u64) -> FaultPlan {
        let builder = FaultPlan::builder(seed);
        match self {
            ChaosScenario::Clean | ChaosScenario::BurstOverload | ChaosScenario::PowerCut => {
                builder.build()
            }
            ChaosScenario::BitFlip => builder.cache_flip_rate(0.3).build(),
            ChaosScenario::TransientEio => builder.job_transient_rate(0.25).build(),
            ChaosScenario::WorkerCrash => builder.worker_crash_rate(0.2).build(),
        }
    }

    /// The scenario's request-stream shape at `seed`.  Overload turns
    /// the burst knobs up and the sizes toward the heavy tail; the fault
    /// scenarios keep the baseline stream so their numbers are
    /// comparable to `Clean`.
    pub fn workload(self, seed: u64) -> Workload {
        let base = Workload { seed, ..Workload::default() };
        match self {
            ChaosScenario::BurstOverload => Workload {
                mean_gap_us: 30,
                burst_every: 10,
                burst_len: 8,
                n_min: 48,
                ..base
            },
            _ => base,
        }
    }

    /// The scenario's service configuration.  Overload runs with tight
    /// admission watermarks (and fewer shards, concentrating backlog) so
    /// the burst actually crosses them; everything else uses defaults.
    pub fn config(self) -> crate::service::ServiceConfig {
        let base = crate::service::ServiceConfig::default();
        match self {
            ChaosScenario::BurstOverload => crate::service::ServiceConfig {
                shards: 2,
                watermarks: crate::admission::Watermarks::bounded_by(600),
                ..base
            },
            // One shard: the durable journal's disk-op schedule is then
            // a deterministic function of the request stream, which the
            // power-cut bench's replay check relies on.
            ChaosScenario::PowerCut => crate::service::ServiceConfig { shards: 1, ..base },
            _ => base,
        }
    }
}

#[cfg(test)]
#[allow(clippy::unwrap_used)]
mod tests {
    use super::*;

    #[test]
    fn streams_replay_for_a_seed_and_differ_across_seeds() {
        let w = Workload { seed: 3, ..Workload::default() };
        let a = w.generate();
        let b = w.generate();
        assert_eq!(a.len(), b.len());
        for (x, y) in a.iter().zip(&b) {
            assert_eq!(
                (x.kind, x.key, x.n, x.class, x.vtime_us, x.deadline_us),
                (y.kind, y.key, y.n, y.class, y.vtime_us, y.deadline_us)
            );
        }
        let c = Workload { seed: 4, ..Workload::default() }.generate();
        assert!(a.iter().zip(&c).any(|(x, y)| x.key != y.key || x.n != y.n));
    }

    #[test]
    fn arrivals_are_sorted_sizes_quantized_keys_skewed() {
        let reqs = Workload::default().generate();
        assert!(reqs.windows(2).all(|w| w[0].vtime_us <= w[1].vtime_us));
        assert!(reqs.iter().all(|r| r.n % 8 == 0 && (8..=96).contains(&r.n)));
        // Zipf skew: the hottest key should clearly dominate the coldest.
        let count = |k: u64| reqs.iter().filter(|r| r.key == k).count();
        assert!(count(1) > count(12));
    }

    #[test]
    fn burst_windows_share_a_virtual_instant() {
        let w = Workload {
            burst_every: 10,
            burst_len: 4,
            ..Workload::default()
        };
        let reqs = w.generate();
        // Requests 10..14 form a burst: 11..14 arrive exactly when 10 did.
        let t = reqs[10].vtime_us;
        assert!(reqs[11..14].iter().all(|r| r.vtime_us == t));
    }

    #[test]
    fn scenarios_have_distinct_tags_and_plans() {
        let mut tags: Vec<&str> = ChaosScenario::ALL.iter().map(|s| s.tag()).collect();
        tags.dedup();
        assert_eq!(tags.len(), 6);
        assert!(ChaosScenario::Clean.plan(1).is_clean());
        assert!(!ChaosScenario::WorkerCrash.plan(1).is_clean());
    }
}
