//! The machine: processors, point-to-point sends, binomial-tree
//! broadcasts, and critical-path extraction.

use crate::cost::{Clock, CostModel, CriticalPath};

/// A simulated `P`-processor distributed-memory machine.
///
/// The simulator is *deterministic and sequential*: an algorithm built on
/// it is written as a straight-line driver that calls [`send`](Self::send)
/// / [`broadcast`](Self::broadcast) / [`compute`](Self::compute); the
/// machine advances per-processor clocks with the synchronous rendezvous
/// rule `t' = max(t_src, t_dst) + alpha + beta * w` and propagates
/// critical-path word/message/flop tuples along the same `max` edges.
#[derive(Debug)]
pub struct Machine {
    clocks: Vec<Clock>,
    model: CostModel,
}

impl Machine {
    /// A machine with `p` processors under the given cost model.
    pub fn new(p: usize, model: CostModel) -> Self {
        assert!(p > 0);
        Machine {
            clocks: vec![Clock::default(); p],
            model,
        }
    }

    /// Number of processors.
    pub fn procs(&self) -> usize {
        self.clocks.len()
    }

    /// Immutable view of a processor's clock.
    pub fn clock(&self, p: usize) -> &Clock {
        &self.clocks[p]
    }

    /// Charge `flops` of local computation to processor `p`.
    pub fn compute(&mut self, p: usize, flops: u64) {
        self.clocks[p].compute(flops, &self.model);
    }

    /// Transfer `words` from `src` to `dst` as one message, advancing both
    /// clocks with the rendezvous rule and extending the critical path of
    /// both endpoints from whichever party was later.
    ///
    /// A self-send is free (local data movement is not communication in
    /// the 2D model).
    pub fn send(&mut self, src: usize, dst: usize, words: usize) {
        if src == dst {
            return;
        }
        let (ts, td) = (self.clocks[src].time, self.clocks[dst].time);
        let inherited: CriticalPath = if ts >= td {
            self.clocks[src].path
        } else {
            self.clocks[dst].path
        };
        let t = ts.max(td) + self.model.message_time(words);
        let path = CriticalPath {
            words: inherited.words + words as u64,
            messages: inherited.messages + 1,
            flops: inherited.flops,
        };
        {
            let c = &mut self.clocks[src];
            c.time = t;
            c.path = path;
            c.words_sent += words as u64;
            c.messages_sent += 1;
        }
        {
            let c = &mut self.clocks[dst];
            c.time = t;
            c.path = path;
            c.words_recv += words as u64;
            c.messages_recv += 1;
        }
    }

    /// Binomial-tree broadcast of `words` from `root` to every processor
    /// in `members` (which must contain `root`).  Takes
    /// `ceil(log2 |members|)` rounds; the critical path through the tree
    /// accrues `O(log |members|)` messages — the paper's broadcast cost.
    ///
    /// Returns the list of `(src, dst)` edges used, so callers can move
    /// the actual payload along the same tree.
    pub fn broadcast(
        &mut self,
        root: usize,
        members: &[usize],
        words: usize,
    ) -> Vec<(usize, usize)> {
        let mut order: Vec<usize> = Vec::with_capacity(members.len());
        order.push(root);
        order.extend(members.iter().copied().filter(|&m| m != root));
        let k = order.len();
        let mut edges = Vec::new();
        // Round r: processors with index < 2^r forward to index + 2^r.
        let mut have = 1usize;
        while have < k {
            let senders = have.min(k - have);
            for s in 0..senders {
                let (src, dst) = (order[s], order[s + have]);
                self.send(src, dst, words);
                edges.push((src, dst));
            }
            have *= 2;
        }
        edges
    }

    /// Ring ("pass it along") broadcast: `k - 1` sequential messages on
    /// the critical path instead of the binomial tree's `ceil(log2 k)`.
    /// Kept as the ablation baseline that shows where Table 2's `log P`
    /// factors come from.
    pub fn ring_broadcast(
        &mut self,
        root: usize,
        members: &[usize],
        words: usize,
    ) -> Vec<(usize, usize)> {
        let mut order: Vec<usize> = Vec::with_capacity(members.len());
        order.push(root);
        order.extend(members.iter().copied().filter(|&m| m != root));
        let mut edges = Vec::new();
        for w in order.windows(2) {
            self.send(w[0], w[1], words);
            edges.push((w[0], w[1]));
        }
        edges
    }

    /// Binomial-tree reduction of `words`-sized contributions from every
    /// member to `root`: the mirror image of [`broadcast`](Self::broadcast),
    /// `ceil(log2 k)` message rounds on the critical path, plus
    /// `combine_flops` of local work per merge.
    pub fn reduce(
        &mut self,
        root: usize,
        members: &[usize],
        words: usize,
        combine_flops: u64,
    ) -> Vec<(usize, usize)> {
        let mut order: Vec<usize> = Vec::with_capacity(members.len());
        order.push(root);
        order.extend(members.iter().copied().filter(|&m| m != root));
        let k = order.len();
        // Invert the broadcast tree: run the rounds backwards.
        let mut rounds = Vec::new();
        let mut have = 1usize;
        while have < k {
            let senders = have.min(k - have);
            rounds.push((have, senders));
            have *= 2;
        }
        let mut edges = Vec::new();
        for &(have, senders) in rounds.iter().rev() {
            for s in 0..senders {
                let (dst, src) = (order[s], order[s + have]);
                self.send(src, dst, words);
                self.compute(dst, combine_flops);
                edges.push((src, dst));
            }
        }
        edges
    }

    /// Binomial scatter: the root starts with one distinct `words`-sized
    /// chunk per member and peels half of its remaining payload off to a
    /// new subtree root each round — `ceil(log2 k)` rounds, total words
    /// on the critical path `O(words * k)` (the first send carries half
    /// of everything).
    pub fn scatter(&mut self, root: usize, members: &[usize], words_each: usize) {
        let mut order: Vec<usize> = Vec::with_capacity(members.len());
        order.push(root);
        order.extend(members.iter().copied().filter(|&m| m != root));
        scatter_rec(self, &order, words_each);
    }

    /// Simulated finishing time: the slowest processor's clock.
    pub fn makespan(&self) -> f64 {
        self.clocks.iter().map(|c| c.time).fold(0.0, f64::max)
    }

    /// The critical path tuple of the processor that finishes last.
    pub fn critical_path(&self) -> CriticalPath {
        self.clocks
            .iter()
            .max_by(|a, b| a.time.partial_cmp(&b.time).expect("finite times"))
            .map(|c| c.path)
            .unwrap_or_default()
    }

    /// Maximum per-processor totals (words sent+received, messages
    /// sent+received) — a coarser "busiest processor" metric.
    pub fn max_proc_totals(&self) -> (u64, u64) {
        let w = self
            .clocks
            .iter()
            .map(|c| c.words_sent + c.words_recv)
            .max()
            .unwrap_or(0);
        let m = self
            .clocks
            .iter()
            .map(|c| c.messages_sent + c.messages_recv)
            .max()
            .unwrap_or(0);
        (w, m)
    }

    /// Aggregate flops over all processors.
    pub fn total_flops(&self) -> u64 {
        self.clocks.iter().map(|c| c.flops).sum()
    }

    /// Maximum flops on any single processor (the parallel flop count of
    /// Table 2).
    pub fn max_proc_flops(&self) -> u64 {
        self.clocks.iter().map(|c| c.flops).max().unwrap_or(0)
    }
}

fn scatter_rec(m: &mut Machine, group: &[usize], words_each: usize) {
    if group.len() <= 1 {
        return;
    }
    let half = group.len().div_ceil(2);
    let (keep, give) = group.split_at(half);
    // The root ships the second half's entire payload to its new root.
    m.send(keep[0], give[0], words_each * give.len());
    scatter_rec(m, keep, words_each);
    scatter_rec(m, give, words_each);
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn send_advances_both_clocks() {
        let mut m = Machine::new(2, CostModel::typical());
        m.send(0, 1, 10);
        assert_eq!(m.clock(0).time, m.clock(1).time);
        assert_eq!(m.clock(0).time, 1000.0 + 100.0);
        assert_eq!(m.clock(1).words_recv, 10);
        assert_eq!(m.clock(0).messages_sent, 1);
    }

    #[test]
    fn self_send_is_free() {
        let mut m = Machine::new(2, CostModel::typical());
        m.send(1, 1, 1000);
        assert_eq!(m.clock(1).time, 0.0);
        assert_eq!(m.clock(1).messages_sent, 0);
    }

    #[test]
    fn rendezvous_waits_for_later_party() {
        let mut m = Machine::new(2, CostModel::typical());
        m.compute(1, 5000); // dst is busy until t = 5000
        m.send(0, 1, 0);
        assert_eq!(m.clock(0).time, 5000.0 + 1000.0);
        // Critical path inherited from the later party (proc 1) includes
        // its flops.
        assert_eq!(m.clock(0).path.flops, 5000);
        assert_eq!(m.clock(0).path.messages, 1);
    }

    #[test]
    fn broadcast_is_logarithmic_on_the_critical_path() {
        for k in [2usize, 4, 8, 16, 32] {
            let mut m = Machine::new(k, CostModel::typical());
            let members: Vec<usize> = (0..k).collect();
            m.broadcast(0, &members, 1);
            let cp = m.critical_path();
            let expect = (k as f64).log2().ceil() as u64;
            assert_eq!(cp.messages, expect, "k = {k}");
        }
    }

    #[test]
    fn broadcast_reaches_everyone_exactly_once() {
        let mut m = Machine::new(8, CostModel::counting());
        let members: Vec<usize> = (0..8).collect();
        let edges = m.broadcast(3, &members, 4);
        assert_eq!(edges.len(), 7, "7 receivers");
        let mut got = [false; 8];
        got[3] = true;
        for (s, d) in edges {
            assert!(got[s], "sender must already have the data");
            assert!(!got[d], "no duplicate delivery");
            got[d] = true;
        }
        assert!(got.iter().all(|&g| g));
    }

    #[test]
    fn ring_broadcast_is_linear_on_the_critical_path() {
        for k in [2usize, 8, 16] {
            let mut m = Machine::new(k, CostModel::typical());
            let members: Vec<usize> = (0..k).collect();
            m.ring_broadcast(0, &members, 1);
            assert_eq!(m.critical_path().messages, (k - 1) as u64, "k = {k}");
        }
        // The whole point: at k = 16 the tree costs 4, the ring 15.
        let members: Vec<usize> = (0..16).collect();
        let mut tree = Machine::new(16, CostModel::typical());
        tree.broadcast(0, &members, 1);
        assert_eq!(tree.critical_path().messages, 4);
    }

    #[test]
    fn reduce_is_logarithmic_and_delivers_to_root() {
        for k in [2usize, 4, 8, 16] {
            let mut m = Machine::new(k, CostModel::typical());
            let members: Vec<usize> = (0..k).collect();
            let edges = m.reduce(0, &members, 3, 10);
            assert_eq!(edges.len(), k - 1, "everyone contributes once");
            let expect = (k as f64).log2().ceil() as u64;
            assert_eq!(m.critical_path().messages, expect, "k = {k}");
            assert_eq!(m.clock(0).words_recv as usize % 3, 0);
        }
    }

    #[test]
    fn scatter_is_logarithmic_rounds_linear_words() {
        let k = 8;
        let mut m = Machine::new(k, CostModel::typical());
        let members: Vec<usize> = (0..k).collect();
        m.scatter(0, &members, 5);
        let cp = m.critical_path();
        assert!(cp.messages <= 3, "log2(8) = 3 rounds, got {}", cp.messages);
        // Total words shipped: every non-root chunk crosses >= 1 edge.
        let total: u64 = (0..k).map(|p| m.clock(p).words_sent).sum();
        assert!(total >= 5 * (k as u64 - 1));
    }

    #[test]
    fn makespan_and_totals() {
        let mut m = Machine::new(3, CostModel::typical());
        m.compute(2, 100);
        m.send(0, 1, 5);
        assert_eq!(m.makespan(), 1050.0);
        let (w, msg) = m.max_proc_totals();
        assert_eq!(w, 5);
        assert_eq!(msg, 1);
        assert_eq!(m.total_flops(), 100);
        assert_eq!(m.max_proc_flops(), 100);
    }
}
