//! The square processor grid of the 2D parallel model (Figure 6: `P`
//! processors arranged `Pr x Pc` with `Pr = Pc = sqrt(P)`).

/// A `pr x pc` processor grid with column-major rank numbering
/// (`rank = prow + pcol * pr`).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct ProcGrid {
    pr: usize,
    pc: usize,
}

impl ProcGrid {
    /// A `pr x pc` grid.
    pub fn new(pr: usize, pc: usize) -> Self {
        assert!(pr > 0 && pc > 0);
        ProcGrid { pr, pc }
    }

    /// The square grid for `p` processors; `p` must be a perfect square.
    pub fn square(p: usize) -> Self {
        let s = (p as f64).sqrt().round() as usize;
        assert_eq!(s * s, p, "P = {p} must be a perfect square for a 2D grid");
        Self::new(s, s)
    }

    /// Total processors.
    pub fn len(&self) -> usize {
        self.pr * self.pc
    }

    /// `true` for the degenerate empty grid (never constructible; kept for
    /// API completeness).
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// Grid rows.
    pub fn rows(&self) -> usize {
        self.pr
    }

    /// Grid columns.
    pub fn cols(&self) -> usize {
        self.pc
    }

    /// Rank of the processor at grid position `(prow, pcol)`.
    pub fn rank(&self, prow: usize, pcol: usize) -> usize {
        debug_assert!(prow < self.pr && pcol < self.pc);
        prow + pcol * self.pr
    }

    /// Grid position of `rank`.
    pub fn coords(&self, rank: usize) -> (usize, usize) {
        debug_assert!(rank < self.len());
        (rank % self.pr, rank / self.pr)
    }

    /// Owner of global block `(bi, bj)` under block-cyclic distribution:
    /// processor `(bi mod Pr, bj mod Pc)`.
    pub fn block_owner(&self, bi: usize, bj: usize) -> usize {
        self.rank(bi % self.pr, bj % self.pc)
    }

    /// Ranks of all processors in grid column `pcol`.
    pub fn col_ranks(&self, pcol: usize) -> Vec<usize> {
        (0..self.pr).map(|r| self.rank(r, pcol)).collect()
    }

    /// Ranks of all processors in grid row `prow`.
    pub fn row_ranks(&self, prow: usize) -> Vec<usize> {
        (0..self.pc).map(|c| self.rank(prow, c)).collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn rank_coords_roundtrip() {
        let g = ProcGrid::new(3, 4);
        for r in 0..12 {
            let (i, j) = g.coords(r);
            assert_eq!(g.rank(i, j), r);
        }
    }

    #[test]
    fn square_grid() {
        let g = ProcGrid::square(9);
        assert_eq!(g.rows(), 3);
        assert_eq!(g.cols(), 3);
    }

    #[test]
    #[should_panic(expected = "perfect square")]
    fn non_square_p_panics() {
        ProcGrid::square(6);
    }

    #[test]
    fn block_cyclic_ownership_matches_figure6() {
        // Figure 6: n=24, b=4 (6x6 blocks), P=9 on a 3x3 grid.
        let g = ProcGrid::square(9);
        assert_eq!(g.block_owner(0, 0), g.block_owner(3, 3));
        assert_eq!(g.block_owner(0, 0), g.block_owner(0, 3));
        assert_ne!(g.block_owner(0, 0), g.block_owner(1, 0));
        // Each processor owns exactly 4 of the 36 blocks.
        let mut counts = [0usize; 9];
        for bi in 0..6 {
            for bj in 0..6 {
                counts[g.block_owner(bi, bj)] += 1;
            }
        }
        assert!(counts.iter().all(|&c| c == 4));
    }

    #[test]
    fn row_and_col_ranks() {
        let g = ProcGrid::new(2, 3);
        assert_eq!(g.col_ranks(1), vec![g.rank(0, 1), g.rank(1, 1)]);
        assert_eq!(g.row_ranks(0).len(), 3);
    }
}
