//! An SPMD execution mode: `P` real OS threads, each running the same
//! per-processor program, exchanging real payloads over channels — the
//! closest this workspace gets to an actual MPI execution.
//!
//! Clocks follow the postal model: a send stamps the sender's current
//! simulated time; the receiver advances to
//! `max(local, send_time + alpha + beta * words)` and inherits the
//! critical-path tuple of whichever side was later, plus the message.
//! Numerical results are deterministic (the dataflow is fixed); the
//! simulated clocks are too, because every receive names its sender.
//!
//! # Reliable transport under injected faults
//!
//! Links are *lossy* when a [`FaultPlan`] says so: transmission attempts
//! can be dropped, duplicated, delayed, or corrupted.  The transport
//! recovers with the classic stop-and-wait machinery — per-link sequence
//! numbers, payload checksums, receiver-side deduplication, and
//! timeout-based retransmission with exponential backoff on the
//! *simulated* clock.  Because fault decisions are pure functions of
//! `(link, sequence, attempt)`, a faulted run is exactly as
//! deterministic as a clean one: same factors bit for bit, same clocks.
//!
//! Traffic is accounted twice: the **clean** counts are the algorithmic
//! words/messages the program asked for (what the paper's tables count),
//! while `words_sent`/`messages_sent` tally everything that crossed the
//! wire, including retransmissions, duplicate copies, and corrupted
//! arrivals.  [`SpmdOutcome::fault_report`] reports both plus the
//! overhead factor.  Acknowledgements are tracked in
//! [`FaultStats::acks`] but kept out of the word/message totals so a
//! clean run's overhead factor is exactly 1.
//!
//! Rank death is *fail-stop*: a rank that dies ([`ProcCtx::die`]) drops
//! its channel endpoints, so peers that need something from it observe a
//! disconnect — surfaced as the typed [`DistError::RankLost`] instead of
//! a panic — once its buffered messages are drained.  Survivor-side
//! recovery (who adopts the dead rank's blocks, and from what state) is
//! policy and lives with the algorithms, e.g. the ABFT driver in
//! `cholcomm-par`.
//!
//! The sequential [`Machine`](crate::Machine) remains the reference for
//! the paper's tables; this mode exists to show the same algorithm and
//! the same counts survive genuine concurrency (and now genuine fault
//! recovery) on the channel-based plumbing a real deployment would use.

use crate::cost::{CostModel, CriticalPath};
use cholcomm_faults::{FaultPlan, FaultStats, MessageFault};
use std::sync::mpsc::{channel, Receiver, Sender};

/// A message between ranks: payload plus transport metadata and the
/// sender's clock state.
struct Msg {
    words: usize,
    send_time: f64,
    /// Extra simulated latency injected by a `Delay` fault.
    extra_latency: f64,
    /// Per-link sequence number (starts at 1).
    seq: u64,
    /// Checksum over the payload; receivers discard on mismatch.
    checksum: u64,
    path: CriticalPath,
    payload: Vec<f64>,
}

fn payload_checksum(payload: &[f64]) -> u64 {
    let mut h: u64 = 0xcbf29ce484222325;
    for v in payload {
        h ^= v.to_bits();
        h = h.wrapping_mul(0x100000001b3);
    }
    h
}

/// Typed failures of the SPMD message path.
///
/// Since PR 2 the transport never panics on a dead peer: every
/// `send`/`recv`/`bcast` returns one of these instead, so a single lost
/// rank degrades gracefully and the caller decides whether to abort,
/// ignore, or recover.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum DistError {
    /// The peer's channel endpoints are gone: it died (fail-stop) and
    /// any messages it had buffered have been drained.
    RankLost {
        /// The rank that is no longer reachable.
        rank: usize,
    },
    /// A protocol invariant was violated — a bug in the SPMD program
    /// (e.g. a broadcast whose member list omits the caller), not an
    /// injected fault.
    Protocol(&'static str),
}

impl std::fmt::Display for DistError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            DistError::RankLost { rank } => write!(f, "rank {rank} is lost (fail-stop)"),
            DistError::Protocol(what) => write!(f, "SPMD protocol violation: {what}"),
        }
    }
}

impl std::error::Error for DistError {}

/// Per-rank context handed to the SPMD program.
pub struct ProcCtx {
    rank: usize,
    procs: usize,
    model: CostModel,
    plan: FaultPlan,
    time: f64,
    path: CriticalPath,
    /// Everything that crossed the wire (retransmits and duplicates
    /// included) — the "faulted" totals.
    words_sent: u64,
    messages_sent: u64,
    /// What the program asked to send — the algorithmic totals.
    clean_words: u64,
    clean_messages: u64,
    flops: u64,
    fstats: FaultStats,
    /// `next_seq[dst]` — next sequence number on my link to `dst`.
    next_seq: Vec<u64>,
    /// `last_seen[src]` — highest sequence accepted from `src`.
    last_seen: Vec<u64>,
    /// `senders[dst]` — my outgoing channel to each destination.
    senders: Vec<Sender<Msg>>,
    /// `receivers[src]` — my inbox from each source.
    receivers: Vec<Receiver<Msg>>,
}

impl ProcCtx {
    /// This rank.
    pub fn rank(&self) -> usize {
        self.rank
    }

    /// Total ranks.
    pub fn procs(&self) -> usize {
        self.procs
    }

    /// Charge local computation.
    pub fn compute(&mut self, flops: u64) {
        self.time += self.model.gamma * flops as f64;
        self.flops += flops;
        self.path.flops += flops;
    }

    /// Retransmission timeout before attempt `attempt + 1`: one message
    /// round trip, doubling per failed attempt.
    fn rto(&self, words: usize, attempt: u32) -> f64 {
        let round_trip = self.model.message_time(words) + self.model.message_time(1);
        round_trip * (1u64 << (attempt - 1).min(16)) as f64
    }

    fn push_to_wire(&mut self, dst: usize, msg: Msg) -> Result<(), DistError> {
        self.words_sent += msg.words as u64;
        self.messages_sent += 1;
        self.senders[dst]
            .send(msg)
            .map_err(|_| DistError::RankLost { rank: dst })
    }

    /// Send `payload` to `dst` (one logical message).  Under a fault
    /// plan this may take several wire attempts; the call returns once
    /// an intact copy is on the wire and is guaranteed to terminate by
    /// the plan's attempt cap.  Errors with
    /// [`DistError::RankLost`] if `dst` has died.
    pub fn send(&mut self, dst: usize, payload: Vec<f64>) -> Result<(), DistError> {
        assert_ne!(dst, self.rank, "no self-sends in the SPMD mode");
        let words = payload.len();
        let seq = self.next_seq[dst];
        self.next_seq[dst] += 1;
        self.clean_words += words as u64;
        self.clean_messages += 1;

        let checksum = payload_checksum(&payload);
        let mut attempt: u32 = 1;
        loop {
            match self.plan.message_fault(self.rank, dst, seq, attempt) {
                Some(MessageFault::Drop) => {
                    // The attempt vanishes: it still cost us wire words
                    // (count it) but never reaches the receiver, so no
                    // physical send.  Wait out the ack timeout, back off,
                    // retransmit.
                    self.words_sent += words as u64;
                    self.messages_sent += 1;
                    self.fstats.drops += 1;
                    self.fstats.retransmits += 1;
                    self.time += self.rto(words, attempt);
                    attempt += 1;
                }
                Some(MessageFault::Corrupt) => {
                    // The attempt arrives, but mangled: flip a payload
                    // bit so the checksum genuinely fails at the far
                    // end, then time out and retransmit.
                    let mut bad = payload.clone();
                    if let Some(first) = bad.first_mut() {
                        *first = f64::from_bits(first.to_bits() ^ 1);
                    }
                    let msg = Msg {
                        words,
                        send_time: self.time,
                        extra_latency: 0.0,
                        seq,
                        checksum,
                        path: self.path,
                        payload: bad,
                    };
                    self.push_to_wire(dst, msg)?;
                    self.fstats.corruptions += 1;
                    self.fstats.retransmits += 1;
                    self.time += self.rto(words, attempt);
                    attempt += 1;
                }
                Some(MessageFault::Delay { extra }) => {
                    let msg = Msg {
                        words,
                        send_time: self.time,
                        extra_latency: extra,
                        seq,
                        checksum,
                        path: self.path,
                        payload,
                    };
                    self.push_to_wire(dst, msg)?;
                    self.fstats.delays += 1;
                    return Ok(());
                }
                Some(MessageFault::Duplicate) => {
                    for copy in 0..2 {
                        let msg = Msg {
                            words,
                            send_time: self.time,
                            extra_latency: 0.0,
                            seq,
                            checksum,
                            path: self.path,
                            payload: payload.clone(),
                        };
                        self.push_to_wire(dst, msg)?;
                        if copy == 1 {
                            self.fstats.duplicates += 1;
                        }
                    }
                    return Ok(());
                }
                None => {
                    let msg = Msg {
                        words,
                        send_time: self.time,
                        extra_latency: 0.0,
                        seq,
                        checksum,
                        path: self.path,
                        payload,
                    };
                    self.push_to_wire(dst, msg)?;
                    return Ok(());
                }
            }
        }
    }

    /// Blocking receive of the next accepted message from `src`:
    /// corrupted arrivals and stale duplicates are discarded here, so
    /// the program only ever sees clean in-order payloads.  Errors with
    /// [`DistError::RankLost`] once `src` has died and its buffered
    /// messages are exhausted.
    pub fn recv(&mut self, src: usize) -> Result<Vec<f64>, DistError> {
        loop {
            let msg = self.receivers[src]
                .recv()
                .map_err(|_| DistError::RankLost { rank: src })?;
            let arrival = msg.send_time + self.model.message_time(msg.words) + msg.extra_latency;
            if payload_checksum(&msg.payload) != msg.checksum {
                // Corrupted on the wire: occupy the link, discard, keep
                // waiting for the retransmit.
                self.time = self.time.max(arrival);
                self.fstats.discarded += 1;
                continue;
            }
            if msg.seq <= self.last_seen[src] {
                // Duplicate of something already delivered.
                self.time = self.time.max(arrival);
                self.fstats.discarded += 1;
                continue;
            }
            self.last_seen[src] = msg.seq;
            // The ack travels back on the simulated wire; tracked as a
            // count only (see module docs).
            self.fstats.acks += 1;
            if arrival >= self.time {
                // The message chain is the critical path into this event.
                self.path = CriticalPath {
                    words: msg.path.words + msg.words as u64,
                    messages: msg.path.messages + 1,
                    flops: msg.path.flops,
                };
            } else {
                // Local work dominates; the message only adds its own cost.
                self.path.words += msg.words as u64;
                self.path.messages += 1;
            }
            self.time = self.time.max(arrival);
            return Ok(msg.payload);
        }
    }

    /// Binomial-tree broadcast among `members` (which must contain both
    /// `root` and this rank).  The root passes `Some(payload)`; everyone
    /// receives the payload back.  A dead peer anywhere along the tree
    /// surfaces as [`DistError::RankLost`].
    pub fn bcast(
        &mut self,
        root: usize,
        members: &[usize],
        payload: Option<Vec<f64>>,
    ) -> Result<Vec<f64>, DistError> {
        let mut order: Vec<usize> = Vec::with_capacity(members.len());
        order.push(root);
        order.extend(members.iter().copied().filter(|&m| m != root));
        let me = order
            .iter()
            .position(|&r| r == self.rank)
            .ok_or(DistError::Protocol("broadcast caller must be a member"))?;
        let k = order.len();
        let mut data = payload;
        let mut have = 1usize;
        while have < k {
            if me < have {
                // I already have the data; maybe I forward this round.
                let peer = me + have;
                if peer < k {
                    let d = data
                        .as_ref()
                        .ok_or(DistError::Protocol("broadcast holder has no data"))?
                        .clone();
                    self.send(order[peer], d)?;
                }
            } else if me < 2 * have {
                // I receive this round.
                let from = order[me - have];
                data = Some(self.recv(from)?);
            }
            have *= 2;
        }
        data.ok_or(DistError::Protocol("broadcast must deliver to every member"))
    }

    /// Fail-stop death of this rank: every channel endpoint is replaced
    /// with a dangling one, so the originals drop here and now.  Peers
    /// that try to reach this rank afterwards observe a disconnect
    /// ([`DistError::RankLost`]) — after draining whatever this rank had
    /// already buffered onto each link, exactly like a crashed MPI
    /// process whose in-flight packets still arrive.
    pub fn die(&mut self) {
        let (dead_tx, _) = channel();
        for s in self.senders.iter_mut() {
            *s = dead_tx.clone();
        }
        self.receivers = (0..self.procs)
            .map(|_| {
                let (_tx, rx) = channel();
                rx
            })
            .collect();
    }

    fn into_clock(self) -> RankClock {
        RankClock {
            time: self.time,
            path: self.path,
            words_sent: self.words_sent,
            messages_sent: self.messages_sent,
            clean_words: self.clean_words,
            clean_messages: self.clean_messages,
            flops: self.flops,
            fault_stats: self.fstats,
        }
    }
}

/// Final clock state of one rank.
#[derive(Debug, Clone, Copy)]
pub struct RankClock {
    /// Simulated completion time.
    pub time: f64,
    /// Critical path into this rank's final event.
    pub path: CriticalPath,
    /// Total words that crossed the wire (retries included).
    pub words_sent: u64,
    /// Total messages that crossed the wire (retries included).
    pub messages_sent: u64,
    /// Algorithmic words (what a perfect network would have carried).
    pub clean_words: u64,
    /// Algorithmic messages.
    pub clean_messages: u64,
    /// Local flops.
    pub flops: u64,
    /// Fault and recovery tallies for this rank.
    pub fault_stats: FaultStats,
}

/// Aggregate clean/faulted traffic for a whole run.
#[derive(Debug, Clone, Copy)]
pub struct FaultReport {
    /// Algorithmic words across all ranks.
    pub clean_words: u64,
    /// Algorithmic messages across all ranks.
    pub clean_messages: u64,
    /// Wire words across all ranks (retries and duplicates included).
    pub faulted_words: u64,
    /// Wire messages across all ranks.
    pub faulted_messages: u64,
    /// `faulted_words / clean_words` (1.0 when nothing was injected).
    pub word_overhead: f64,
    /// `faulted_messages / clean_messages`.
    pub message_overhead: f64,
    /// Merged per-rank fault tallies.
    pub stats: FaultStats,
}

impl std::fmt::Display for FaultReport {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        writeln!(
            f,
            "clean traffic:   {} words, {} messages",
            self.clean_words, self.clean_messages
        )?;
        writeln!(
            f,
            "faulted traffic: {} words, {} messages",
            self.faulted_words, self.faulted_messages
        )?;
        writeln!(
            f,
            "retry overhead:  {:.3}x words, {:.3}x messages",
            self.word_overhead, self.message_overhead
        )?;
        write!(
            f,
            "faults: {} drops, {} duplicates, {} corruptions, {} delays; {} retransmits, {} discarded, {} acks",
            self.stats.drops,
            self.stats.duplicates,
            self.stats.corruptions,
            self.stats.delays,
            self.stats.retransmits,
            self.stats.discarded,
            self.stats.acks
        )
    }
}

/// Outcome of an SPMD run: per-rank results and clocks.
#[derive(Debug)]
pub struct SpmdOutcome<T> {
    /// Whatever each rank's program returned, by rank.
    pub results: Vec<T>,
    /// Final clock per rank.
    pub clocks: Vec<RankClock>,
}

impl<T> SpmdOutcome<T> {
    /// Slowest rank's simulated time.
    pub fn makespan(&self) -> f64 {
        self.clocks.iter().map(|c| c.time).fold(0.0, f64::max)
    }

    /// Critical path of the slowest rank.
    pub fn critical_path(&self) -> CriticalPath {
        self.clocks
            .iter()
            .max_by(|a, b| a.time.partial_cmp(&b.time).expect("finite"))
            .map(|c| c.path)
            .unwrap_or_default()
    }

    /// Clean vs. faulted traffic totals and the retry overhead factor.
    pub fn fault_report(&self) -> FaultReport {
        let mut stats = FaultStats::new();
        let (mut cw, mut cm, mut fw, mut fm) = (0u64, 0u64, 0u64, 0u64);
        for c in &self.clocks {
            stats.merge(&c.fault_stats);
            cw += c.clean_words;
            cm += c.clean_messages;
            fw += c.words_sent;
            fm += c.messages_sent;
        }
        FaultReport {
            clean_words: cw,
            clean_messages: cm,
            faulted_words: fw,
            faulted_messages: fm,
            word_overhead: if cw == 0 { 1.0 } else { fw as f64 / cw as f64 },
            message_overhead: if cm == 0 { 1.0 } else { fm as f64 / cm as f64 },
            stats,
        }
    }
}

/// Run `program` on `p` OS threads under `model` with a perfect network.
pub fn run_spmd<T: Send>(
    p: usize,
    model: CostModel,
    program: impl Fn(&mut ProcCtx) -> T + Sync,
) -> SpmdOutcome<T> {
    run_spmd_faulty(p, model, FaultPlan::none(), program)
}

/// Run `program` on `p` OS threads under `model`, with every link
/// subjected to `plan`.  Each rank gets its own [`ProcCtx`] with a full
/// mesh of channels; the reliable transport guarantees the program sees
/// the same payloads it would on a perfect network.
pub fn run_spmd_faulty<T: Send>(
    p: usize,
    model: CostModel,
    plan: FaultPlan,
    program: impl Fn(&mut ProcCtx) -> T + Sync,
) -> SpmdOutcome<T> {
    assert!(p > 0);
    // Build the P x P channel mesh: mesh[src][dst].
    let mut senders: Vec<Vec<Option<Sender<Msg>>>> = (0..p).map(|_| (0..p).map(|_| None).collect()).collect();
    let mut receivers: Vec<Vec<Option<Receiver<Msg>>>> =
        (0..p).map(|_| (0..p).map(|_| None).collect()).collect();
    for (src, row) in senders.iter_mut().enumerate() {
        for (dst, slot) in row.iter_mut().enumerate() {
            let (tx, rx) = channel();
            *slot = Some(tx);
            receivers[dst][src] = Some(rx);
        }
    }

    let mut ctxs: Vec<ProcCtx> = Vec::with_capacity(p);
    for (rank, rx_row) in receivers.into_iter().enumerate() {
        // Rank's outgoing channels: senders[rank][dst] for every dst.
        let out_row: Vec<Sender<Msg>> = senders[rank]
            .iter()
            .map(|s| s.clone().expect("mesh built"))
            .collect();
        ctxs.push(ProcCtx {
            rank,
            procs: p,
            model,
            plan: plan.clone(),
            time: 0.0,
            path: CriticalPath::default(),
            words_sent: 0,
            messages_sent: 0,
            clean_words: 0,
            clean_messages: 0,
            flops: 0,
            fstats: FaultStats::new(),
            next_seq: vec![1; p],
            last_seen: vec![0; p],
            senders: out_row,
            receivers: rx_row.into_iter().map(|r| r.expect("mesh built")).collect(),
        });
    }
    drop(senders);

    let program = &program;
    let mut slots: Vec<Option<(T, ProcCtx)>> = (0..p).map(|_| None).collect();
    std::thread::scope(|scope| {
        let handles: Vec<_> = ctxs
            .into_iter()
            .map(|mut ctx| {
                scope.spawn(move || {
                    let out = program(&mut ctx);
                    // Return the ctx itself: its receivers must stay
                    // alive until every rank has joined, or a late
                    // duplicate/retransmit to an already-finished rank
                    // would hit a hung-up channel.
                    (out, ctx)
                })
            })
            .collect();
        for (rank, h) in handles.into_iter().enumerate() {
            slots[rank] = Some(h.join().expect("rank panicked"));
        }
    });

    let mut results = Vec::with_capacity(p);
    let mut clocks = Vec::with_capacity(p);
    for s in slots {
        let (r, ctx) = s.expect("all ranks joined");
        results.push(r);
        clocks.push(ctx.into_clock());
    }
    SpmdOutcome { results, clocks }
}

#[cfg(test)]
#[allow(clippy::unwrap_used)]
mod tests {
    use super::*;

    #[test]
    fn ring_of_sends_accumulates_path() {
        let p = 4;
        let out = run_spmd(p, CostModel::typical(), |ctx| {
            let r = ctx.rank();
            if r == 0 {
                ctx.send(1, vec![1.0; 10]).unwrap();
                0.0
            } else {
                let v = ctx.recv(r - 1).unwrap();
                if r + 1 < ctx.procs() {
                    ctx.send(r + 1, v.clone()).unwrap();
                }
                v[0]
            }
        });
        assert_eq!(out.results, vec![0.0, 1.0, 1.0, 1.0]);
        let cp = out.critical_path();
        assert_eq!(cp.messages, 3, "three hops");
        assert_eq!(cp.words, 30);
    }

    #[test]
    fn bcast_delivers_to_everyone_logarithmically() {
        let p = 8;
        let out = run_spmd(p, CostModel::typical(), |ctx| {
            let members: Vec<usize> = (0..ctx.procs()).collect();
            let data = if ctx.rank() == 0 {
                Some(vec![42.0; 5])
            } else {
                None
            };
            ctx.bcast(0, &members, data).unwrap()[0]
        });
        assert!(out.results.iter().all(|&v| v == 42.0));
        let cp = out.critical_path();
        assert!(cp.messages <= 3, "binomial depth log2(8) = 3, got {}", cp.messages);
    }

    #[test]
    fn compute_shows_up_in_the_path() {
        let out = run_spmd(2, CostModel::typical(), |ctx| {
            if ctx.rank() == 0 {
                ctx.compute(5000);
                ctx.send(1, vec![0.0]).unwrap();
            } else {
                ctx.recv(0).unwrap();
            }
            ctx.rank()
        });
        assert_eq!(out.clocks[1].path.flops, 5000, "receiver inherits the sender's work");
    }

    #[test]
    fn deterministic_clocks_across_runs() {
        let run = || {
            let out = run_spmd(4, CostModel::typical(), |ctx| {
                let members: Vec<usize> = (0..4).collect();
                let data = if ctx.rank() == 2 { Some(vec![1.0; 7]) } else { None };
                ctx.bcast(2, &members, data).unwrap();
                ctx.compute(10 * (ctx.rank() as u64 + 1));
            });
            (out.makespan(), out.critical_path())
        };
        let (m1, c1) = run();
        let (m2, c2) = run();
        assert_eq!(m1, m2);
        assert_eq!(c1, c2);
    }

    #[test]
    fn clean_plan_has_unit_overhead() {
        let out = run_spmd(2, CostModel::typical(), |ctx| {
            if ctx.rank() == 0 {
                ctx.send(1, vec![1.0; 8]).unwrap();
            } else {
                ctx.recv(0).unwrap();
            }
        });
        let rep = out.fault_report();
        assert_eq!(rep.clean_words, 8);
        assert_eq!(rep.faulted_words, 8);
        assert_eq!(rep.word_overhead, 1.0);
        assert_eq!(rep.message_overhead, 1.0);
        assert_eq!(rep.stats.acks, 1);
        assert_eq!(rep.stats.message_faults(), 0);
    }

    #[test]
    fn payload_survives_heavy_loss() {
        // 40% of attempts dropped, plus duplication and corruption: the
        // program must still observe exactly the sent payloads, in order.
        let plan = FaultPlan::builder(11)
            .drop_rate(0.4)
            .duplicate_rate(0.1)
            .corrupt_rate(0.1)
            .build();
        let rounds = 50usize;
        let out = run_spmd_faulty(2, CostModel::typical(), plan, |ctx| {
            let mut sum = 0.0;
            for i in 0..rounds {
                if ctx.rank() == 0 {
                    ctx.send(1, vec![i as f64; 3]).unwrap();
                } else {
                    let v = ctx.recv(0).unwrap();
                    assert_eq!(v, vec![i as f64; 3], "round {i} payload intact and in order");
                    sum += v[0];
                }
            }
            sum
        });
        let want: f64 = (0..rounds).map(|i| i as f64).sum();
        assert_eq!(out.results[1], want);
        let rep = out.fault_report();
        assert!(rep.stats.drops > 0, "plan should have dropped something");
        assert!(rep.word_overhead > 1.0, "retries must show up as overhead");
        assert_eq!(rep.clean_messages, rounds as u64);
        assert!(rep.faulted_messages > rep.clean_messages);
    }

    #[test]
    fn faulted_run_is_deterministic() {
        let mk = || {
            let plan = FaultPlan::builder(21)
                .drop_rate(0.3)
                .duplicate_rate(0.1)
                .delay(0.2, 500.0)
                .build();
            run_spmd_faulty(4, CostModel::typical(), plan, |ctx| {
                let members: Vec<usize> = (0..4).collect();
                let data = if ctx.rank() == 1 {
                    Some(vec![3.25; 9])
                } else {
                    None
                };
                let got = ctx.bcast(1, &members, data).unwrap();
                got[0]
            })
        };
        let (a, b) = (mk(), mk());
        assert_eq!(a.results, b.results);
        assert_eq!(a.makespan(), b.makespan());
        assert_eq!(a.fault_report().faulted_words, b.fault_report().faulted_words);
        assert_eq!(a.fault_report().stats, b.fault_report().stats);
    }

    #[test]
    fn drops_slow_the_simulated_clock() {
        let clean = run_spmd(2, CostModel::typical(), |ctx| {
            if ctx.rank() == 0 {
                ctx.send(1, vec![1.0; 4]).unwrap();
            } else {
                ctx.recv(0).unwrap();
            }
        })
        .makespan();
        let plan = FaultPlan::builder(0)
            .inject_message_fault(0, 1, 1, 1, MessageFault::Drop)
            .build();
        let lossy = run_spmd_faulty(2, CostModel::typical(), plan, |ctx| {
            if ctx.rank() == 0 {
                ctx.send(1, vec![1.0; 4]).unwrap();
            } else {
                ctx.recv(0).unwrap();
            }
        })
        .makespan();
        assert!(
            lossy > clean,
            "a retransmission timeout must cost simulated time: {lossy} vs {clean}"
        );
    }

    #[test]
    fn explicit_duplicate_is_discarded_by_seq() {
        let plan = FaultPlan::builder(0)
            .inject_message_fault(0, 1, 1, 1, MessageFault::Duplicate)
            .build();
        let out = run_spmd_faulty(2, CostModel::typical(), plan, |ctx| {
            if ctx.rank() == 0 {
                ctx.send(1, vec![5.0]).unwrap();
                ctx.send(1, vec![6.0]).unwrap();
                0.0
            } else {
                let a = ctx.recv(0).unwrap()[0];
                let b = ctx.recv(0).unwrap()[0];
                a * 10.0 + b
            }
        });
        assert_eq!(out.results[1], 56.0, "duplicate must not displace the next message");
        let rep = out.fault_report();
        assert_eq!(rep.stats.duplicates, 1);
        assert_eq!(rep.stats.discarded, 1);
    }

    #[test]
    fn dead_rank_surfaces_as_rank_lost_not_a_panic() {
        let out = run_spmd(2, CostModel::typical(), |ctx| {
            if ctx.rank() == 1 {
                ctx.die();
                Ok(vec![])
            } else {
                // Rank 1 died without sending: the recv must fail with a
                // typed error instead of poisoning the mesh.
                ctx.recv(1)
            }
        });
        assert_eq!(out.results[0], Err(DistError::RankLost { rank: 1 }));
        assert_eq!(out.results[1], Ok(vec![]));
    }

    #[test]
    fn send_to_dead_rank_fails_typed() {
        let out = run_spmd(2, CostModel::typical(), |ctx| {
            if ctx.rank() == 1 {
                // Handshake so rank 0 only sends after rank 1 is dead.
                ctx.send(0, vec![1.0]).unwrap();
                ctx.die();
                Ok(())
            } else {
                ctx.recv(1).unwrap();
                // The endpoint may linger until the thread drops it;
                // retry until the disconnect is observed.
                loop {
                    match ctx.send(1, vec![2.0]) {
                        Err(e) => break Err(e),
                        Ok(()) => std::thread::yield_now(),
                    }
                }
            }
        });
        assert_eq!(out.results[0], Err(DistError::RankLost { rank: 1 }));
    }

    #[test]
    fn buffered_messages_drain_before_rank_lost() {
        // A rank that sends useful data *then* dies: peers still receive
        // everything it buffered, and only then observe the loss.
        let out = run_spmd(2, CostModel::typical(), |ctx| {
            if ctx.rank() == 1 {
                ctx.send(0, vec![7.0; 3]).unwrap();
                ctx.die();
                (vec![], None)
            } else {
                let got = ctx.recv(1).unwrap();
                let lost = ctx.recv(1).unwrap_err();
                (got, Some(lost))
            }
        });
        assert_eq!(out.results[0].0, vec![7.0; 3]);
        assert_eq!(out.results[0].1, Some(DistError::RankLost { rank: 1 }));
    }

    #[test]
    fn bcast_member_violation_is_a_protocol_error() {
        let out = run_spmd(2, CostModel::typical(), |ctx| {
            if ctx.rank() == 0 {
                // Member list without the caller.
                ctx.bcast(1, &[1], None).unwrap_err()
            } else {
                DistError::Protocol("unused")
            }
        });
        assert!(matches!(out.results[0], DistError::Protocol(_)));
    }
}
