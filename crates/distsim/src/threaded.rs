//! An SPMD execution mode: `P` real OS threads, each running the same
//! per-processor program, exchanging real payloads over channels — the
//! closest this workspace gets to an actual MPI execution.
//!
//! Clocks follow the postal model: a send stamps the sender's current
//! simulated time; the receiver advances to
//! `max(local, send_time + alpha + beta * words)` and inherits the
//! critical-path tuple of whichever side was later, plus the message.
//! Numerical results are deterministic (the dataflow is fixed); the
//! simulated clocks are too, because every receive names its sender.
//!
//! The sequential [`Machine`](crate::Machine) remains the reference for
//! the paper's tables; this mode exists to show the same algorithm and
//! the same counts survive genuine concurrency (and to exercise the
//! channel-based plumbing a real deployment would use).

use crate::cost::{CostModel, CriticalPath};
use std::sync::mpsc::{channel, Receiver, Sender};

/// A message between ranks: payload plus the sender's clock state.
struct Msg {
    words: usize,
    send_time: f64,
    path: CriticalPath,
    payload: Vec<f64>,
}

/// Per-rank context handed to the SPMD program.
pub struct ProcCtx {
    rank: usize,
    procs: usize,
    model: CostModel,
    time: f64,
    path: CriticalPath,
    words_sent: u64,
    messages_sent: u64,
    flops: u64,
    /// `senders[dst]` — my outgoing channel to each destination.
    senders: Vec<Sender<Msg>>,
    /// `receivers[src]` — my inbox from each source.
    receivers: Vec<Receiver<Msg>>,
}

impl ProcCtx {
    /// This rank.
    pub fn rank(&self) -> usize {
        self.rank
    }

    /// Total ranks.
    pub fn procs(&self) -> usize {
        self.procs
    }

    /// Charge local computation.
    pub fn compute(&mut self, flops: u64) {
        self.time += self.model.gamma * flops as f64;
        self.flops += flops;
        self.path.flops += flops;
    }

    /// Send `payload` to `dst` (one message).
    pub fn send(&mut self, dst: usize, payload: Vec<f64>) {
        assert_ne!(dst, self.rank, "no self-sends in the SPMD mode");
        let words = payload.len();
        let msg = Msg {
            words,
            send_time: self.time,
            path: self.path,
            payload,
        };
        self.words_sent += words as u64;
        self.messages_sent += 1;
        self.senders[dst].send(msg).expect("receiver alive");
    }

    /// Blocking receive of the next message from `src`.
    pub fn recv(&mut self, src: usize) -> Vec<f64> {
        let msg = self.receivers[src].recv().expect("sender alive");
        let arrival = msg.send_time + self.model.message_time(msg.words);
        if arrival >= self.time {
            // The message chain is the critical path into this event.
            self.path = CriticalPath {
                words: msg.path.words + msg.words as u64,
                messages: msg.path.messages + 1,
                flops: msg.path.flops,
            };
        } else {
            // Local work dominates; the message only adds its own cost.
            self.path.words += msg.words as u64;
            self.path.messages += 1;
        }
        self.time = self.time.max(arrival);
        msg.payload
    }

    /// Binomial-tree broadcast among `members` (which must contain both
    /// `root` and this rank).  The root passes `Some(payload)`; everyone
    /// receives the payload back.
    pub fn bcast(&mut self, root: usize, members: &[usize], payload: Option<Vec<f64>>) -> Vec<f64> {
        let mut order: Vec<usize> = Vec::with_capacity(members.len());
        order.push(root);
        order.extend(members.iter().copied().filter(|&m| m != root));
        let me = order
            .iter()
            .position(|&r| r == self.rank)
            .expect("caller must be a member");
        let k = order.len();
        let mut data = payload;
        let mut have = 1usize;
        while have < k {
            if me < have {
                // I already have the data; maybe I forward this round.
                let peer = me + have;
                if peer < k {
                    let d = data.as_ref().expect("holder has data").clone();
                    self.send(order[peer], d);
                }
            } else if me < 2 * have {
                // I receive this round.
                let from = order[me - have];
                data = Some(self.recv(from));
            }
            have *= 2;
        }
        data.expect("broadcast delivers to every member")
    }

    fn into_clock(self) -> RankClock {
        RankClock {
            time: self.time,
            path: self.path,
            words_sent: self.words_sent,
            messages_sent: self.messages_sent,
            flops: self.flops,
        }
    }
}

/// Final clock state of one rank.
#[derive(Debug, Clone, Copy)]
pub struct RankClock {
    /// Simulated completion time.
    pub time: f64,
    /// Critical path into this rank's final event.
    pub path: CriticalPath,
    /// Total words sent.
    pub words_sent: u64,
    /// Total messages sent.
    pub messages_sent: u64,
    /// Local flops.
    pub flops: u64,
}

/// Outcome of an SPMD run: per-rank results and clocks.
#[derive(Debug)]
pub struct SpmdOutcome<T> {
    /// Whatever each rank's program returned, by rank.
    pub results: Vec<T>,
    /// Final clock per rank.
    pub clocks: Vec<RankClock>,
}

impl<T> SpmdOutcome<T> {
    /// Slowest rank's simulated time.
    pub fn makespan(&self) -> f64 {
        self.clocks.iter().map(|c| c.time).fold(0.0, f64::max)
    }

    /// Critical path of the slowest rank.
    pub fn critical_path(&self) -> CriticalPath {
        self.clocks
            .iter()
            .max_by(|a, b| a.time.partial_cmp(&b.time).expect("finite"))
            .map(|c| c.path)
            .unwrap_or_default()
    }
}

/// Run `program` on `p` OS threads under `model`; each rank gets its own
/// [`ProcCtx`] with a full mesh of channels.
pub fn run_spmd<T: Send>(
    p: usize,
    model: CostModel,
    program: impl Fn(&mut ProcCtx) -> T + Sync,
) -> SpmdOutcome<T> {
    assert!(p > 0);
    // Build the P x P channel mesh: mesh[src][dst].
    let mut senders: Vec<Vec<Option<Sender<Msg>>>> = (0..p).map(|_| (0..p).map(|_| None).collect()).collect();
    let mut receivers: Vec<Vec<Option<Receiver<Msg>>>> =
        (0..p).map(|_| (0..p).map(|_| None).collect()).collect();
    for (src, row) in senders.iter_mut().enumerate() {
        for (dst, slot) in row.iter_mut().enumerate() {
            let (tx, rx) = channel();
            *slot = Some(tx);
            receivers[dst][src] = Some(rx);
        }
    }

    let mut ctxs: Vec<ProcCtx> = Vec::with_capacity(p);
    for (rank, rx_row) in receivers.into_iter().enumerate() {
        // Rank's outgoing channels: senders[rank][dst] for every dst.
        let out_row: Vec<Sender<Msg>> = senders[rank]
            .iter()
            .map(|s| s.clone().expect("mesh built"))
            .collect();
        ctxs.push(ProcCtx {
            rank,
            procs: p,
            model,
            time: 0.0,
            path: CriticalPath::default(),
            words_sent: 0,
            messages_sent: 0,
            flops: 0,
            senders: out_row,
            receivers: rx_row.into_iter().map(|r| r.expect("mesh built")).collect(),
        });
    }
    drop(senders);

    let program = &program;
    let mut slots: Vec<Option<(T, RankClock)>> = (0..p).map(|_| None).collect();
    std::thread::scope(|scope| {
        let handles: Vec<_> = ctxs
            .into_iter()
            .map(|mut ctx| {
                scope.spawn(move || {
                    let out = program(&mut ctx);
                    (out, ctx.into_clock())
                })
            })
            .collect();
        for (rank, h) in handles.into_iter().enumerate() {
            slots[rank] = Some(h.join().expect("rank panicked"));
        }
    });

    let mut results = Vec::with_capacity(p);
    let mut clocks = Vec::with_capacity(p);
    for s in slots {
        let (r, c) = s.expect("all ranks joined");
        results.push(r);
        clocks.push(c);
    }
    SpmdOutcome { results, clocks }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn ring_of_sends_accumulates_path() {
        let p = 4;
        let out = run_spmd(p, CostModel::typical(), |ctx| {
            let r = ctx.rank();
            if r == 0 {
                ctx.send(1, vec![1.0; 10]);
                0.0
            } else {
                let v = ctx.recv(r - 1);
                if r + 1 < ctx.procs() {
                    ctx.send(r + 1, v.clone());
                }
                v[0]
            }
        });
        assert_eq!(out.results, vec![0.0, 1.0, 1.0, 1.0]);
        let cp = out.critical_path();
        assert_eq!(cp.messages, 3, "three hops");
        assert_eq!(cp.words, 30);
    }

    #[test]
    fn bcast_delivers_to_everyone_logarithmically() {
        let p = 8;
        let out = run_spmd(p, CostModel::typical(), |ctx| {
            let members: Vec<usize> = (0..ctx.procs()).collect();
            let data = if ctx.rank() == 0 {
                Some(vec![42.0; 5])
            } else {
                None
            };
            ctx.bcast(0, &members, data)[0]
        });
        assert!(out.results.iter().all(|&v| v == 42.0));
        let cp = out.critical_path();
        assert!(cp.messages <= 3, "binomial depth log2(8) = 3, got {}", cp.messages);
    }

    #[test]
    fn compute_shows_up_in_the_path() {
        let out = run_spmd(2, CostModel::typical(), |ctx| {
            if ctx.rank() == 0 {
                ctx.compute(5000);
                ctx.send(1, vec![0.0]);
            } else {
                ctx.recv(0);
            }
            ctx.rank()
        });
        assert_eq!(out.clocks[1].path.flops, 5000, "receiver inherits the sender's work");
    }

    #[test]
    fn deterministic_clocks_across_runs() {
        let run = || {
            let out = run_spmd(4, CostModel::typical(), |ctx| {
                let members: Vec<usize> = (0..4).collect();
                let data = if ctx.rank() == 2 { Some(vec![1.0; 7]) } else { None };
                ctx.bcast(2, &members, data);
                ctx.compute(10 * (ctx.rank() as u64 + 1));
            });
            (out.makespan(), out.critical_path())
        };
        let (m1, c1) = run();
        let (m2, c2) = run();
        assert_eq!(m1, m2);
        assert_eq!(c1, c2);
    }
}
