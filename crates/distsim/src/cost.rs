//! Cost model and per-processor clocks.

/// The alpha–beta–gamma cost model: a `w`-word message takes
/// `alpha + beta * w` seconds; a flop takes `gamma` seconds.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct CostModel {
    /// Per-message latency (seconds).
    pub alpha: f64,
    /// Per-word inverse bandwidth (seconds/word).
    pub beta: f64,
    /// Per-flop compute cost (seconds/flop).
    pub gamma: f64,
}

impl CostModel {
    /// A model with typical "network much slower than flops" ratios
    /// (alpha : beta : gamma = 1000 : 10 : 1 in arbitrary units), used by
    /// experiments that want a modelled wall-clock.
    pub fn typical() -> Self {
        CostModel {
            alpha: 1000.0,
            beta: 10.0,
            gamma: 1.0,
        }
    }

    /// Pure counting (all costs zero) — when only words/messages matter.
    pub fn counting() -> Self {
        CostModel {
            alpha: 0.0,
            beta: 0.0,
            gamma: 0.0,
        }
    }

    /// Time for one `w`-word message.
    pub fn message_time(&self, w: usize) -> f64 {
        self.alpha + self.beta * w as f64
    }
}

/// Communication/computation totals along one dependency path.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub struct CriticalPath {
    /// Words transferred along the path.
    pub words: u64,
    /// Messages along the path.
    pub messages: u64,
    /// Flops along the path.
    pub flops: u64,
}

/// Per-processor simulated clock and counters.
#[derive(Debug, Clone, Default)]
pub struct Clock {
    /// Simulated local time under the [`CostModel`].
    pub time: f64,
    /// Critical-path tuple ending at this processor's current time.
    pub path: CriticalPath,
    /// Total words this processor sent.
    pub words_sent: u64,
    /// Total words this processor received.
    pub words_recv: u64,
    /// Total messages this processor sent.
    pub messages_sent: u64,
    /// Total messages this processor received.
    pub messages_recv: u64,
    /// Total flops this processor executed.
    pub flops: u64,
}

impl Clock {
    /// Advance for a local computation of `flops` floating point ops.
    pub fn compute(&mut self, flops: u64, model: &CostModel) {
        self.time += model.gamma * flops as f64;
        self.flops += flops;
        self.path.flops += flops;
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn message_time_formula() {
        let m = CostModel {
            alpha: 5.0,
            beta: 2.0,
            gamma: 0.0,
        };
        assert_eq!(m.message_time(10), 25.0);
    }

    #[test]
    fn compute_advances_clock_and_path() {
        let mut c = Clock::default();
        c.compute(100, &CostModel::typical());
        assert_eq!(c.flops, 100);
        assert_eq!(c.path.flops, 100);
        assert_eq!(c.time, 100.0);
    }
}
