#![warn(missing_docs)]
#![deny(clippy::unwrap_used)]
//! # cholcomm-distsim
//!
//! A deterministic distributed-memory machine simulator for the paper's
//! parallel model (Section 3.3): `P` processors, each with local memory of
//! size `M = O(n^2 / P)`, exchanging messages that cost `alpha + beta * w`
//! for `w` words.  Collectives are binomial trees, so a broadcast to `k`
//! processors costs `ceil(log2 k)` messages on the critical path — the
//! source of every `log P` factor in Table 2.
//!
//! The simulator executes *real data movement* (payloads are actual matrix
//! blocks), so algorithms built on it — ScaLAPACK's `PxPOTRF` in
//! `cholcomm-par` — produce numerically verifiable results while their
//! communication is being metered.
//!
//! Costs are tracked two ways:
//!
//! * **per-processor totals** (words/messages sent and received, flops);
//! * **critical-path tuples** propagated with the same `max` rule as the
//!   simulated clock, giving the paper's "words and messages communicated
//!   along the critical path".
//!
//! The SPMD mode additionally implements a *reliable transport* over
//! lossy links ([`threaded`]): sequence numbers, checksums, receiver
//! dedup, and timeout/backoff retransmission driven by a deterministic
//! [`cholcomm_faults::FaultPlan`], with recovery traffic accounted
//! separately from algorithmic traffic.

pub mod cost;
pub mod grid;
pub mod machine;
pub mod threaded;

pub use cost::{Clock, CostModel, CriticalPath};
pub use grid::ProcGrid;
pub use machine::Machine;
pub use threaded::{run_spmd, run_spmd_faulty, DistError, FaultReport, ProcCtx, RankClock, SpmdOutcome};
