//! A square matrix stored in a file, tile by tile (block-contiguous
//! layout), with honest I/O accounting.

use cholcomm_matrix::Matrix;
use std::fs::{File, OpenOptions};
use std::io::{Read, Seek, SeekFrom, Write};
use std::path::{Path, PathBuf};

/// Bytes and seeks actually issued against the backing file.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct IoStats {
    /// Bytes read from the file.
    pub bytes_read: u64,
    /// Bytes written to the file.
    pub bytes_written: u64,
    /// Read operations (each tile read is one contiguous transfer).
    pub reads: u64,
    /// Write operations.
    pub writes: u64,
    /// Seeks that actually moved the file cursor (sequential access is
    /// free, as on a disk).
    pub seeks: u64,
    /// Total distance the cursor jumped across all seeks, in bytes —
    /// how *far* the head travelled, not just how often.  A pipeline
    /// that sequentializes its reads shows up here even when the seek
    /// *count* barely moves.
    pub seek_distance: u64,
}

/// An `n x n` `f64` matrix stored in a file as `b x b` tiles, tiles
/// ordered column-major by tile index, elements column-major within a
/// tile — the file-system realisation of the `Blocked` layout.
#[derive(Debug)]
pub struct FileMatrix {
    file: File,
    path: PathBuf,
    n: usize,
    b: usize,
    nb: usize,
    cursor: u64,
    stats: IoStats,
    persist: bool,
    latency: crate::backend::LatencyModel,
}

impl FileMatrix {
    /// Create (or truncate) the backing file at `path` and write `a` into
    /// it tile by tile.  `b` must divide nothing in particular — edge
    /// tiles are stored at full `b x b` stride with zero padding, keeping
    /// every tile the same length on disk.
    pub fn create(path: &Path, a: &Matrix<f64>, b: usize) -> std::io::Result<Self> {
        assert!(a.is_square(), "square matrices only");
        assert!(b > 0);
        let n = a.rows();
        let nb = n.div_ceil(b);
        let file = OpenOptions::new()
            .read(true)
            .write(true)
            .create(true)
            .truncate(true)
            .open(path)?;
        let mut fm = FileMatrix {
            file,
            path: path.to_path_buf(),
            n,
            b,
            nb,
            cursor: 0,
            stats: IoStats::default(),
            persist: false,
            latency: crate::backend::LatencyModel::none(),
        };
        // Initial population is not charged (the paper assumes the input
        // starts in slow memory).
        for bj in 0..nb {
            for bi in 0..nb {
                let tile = Matrix::from_fn(b, b, |i, j| {
                    let (gi, gj) = (bi * b + i, bj * b + j);
                    if gi < n && gj < n {
                        a[(gi, gj)]
                    } else {
                        0.0
                    }
                });
                fm.write_tile_uncounted(bi, bj, &tile)?;
            }
        }
        fm.stats = IoStats::default();
        Ok(fm)
    }

    /// Reopen an existing backing file written by [`create`](Self::create)
    /// with the same `n` and `b` — the crash-recovery path: the process
    /// that created the file died, a new one picks the data back up.
    /// The file length must match the expected tile layout.  Unlike
    /// [`create`](Self::create), the handle persists the file on drop
    /// (call [`set_persist(false)`](Self::set_persist) for scratch
    /// semantics).
    pub fn open(path: &Path, n: usize, b: usize) -> std::io::Result<Self> {
        assert!(b > 0);
        let nb = n.div_ceil(b);
        let file = OpenOptions::new().read(true).write(true).open(path)?;
        let expect = ((nb * nb * b * b) as u64) * 8;
        let actual = file.metadata()?.len();
        if actual != expect {
            return Err(std::io::Error::new(
                std::io::ErrorKind::InvalidData,
                format!(
                    "backing file {} has {actual} bytes, expected {expect} for n={n} b={b}",
                    path.display()
                ),
            ));
        }
        Ok(FileMatrix {
            file,
            path: path.to_path_buf(),
            n,
            b,
            nb,
            // Force a real seek before the first transfer.
            cursor: u64::MAX,
            stats: IoStats::default(),
            // A file we merely opened belongs to whoever created it; a
            // recovery handle must never unlink the data it was trying
            // to recover (even if it fails and drops early).
            persist: true,
            latency: crate::backend::LatencyModel::none(),
        })
    }

    /// Keep (or stop keeping) the backing file when this handle drops.
    /// Crash/restart tests need the file to outlive the "dead" process's
    /// handle.
    pub fn set_persist(&mut self, persist: bool) {
        self.persist = persist;
    }

    /// Declare the per-operation latency this storage charges.  The
    /// model is *advertised*, not enforced here: consumers (the OOC
    /// pipeline, [`SleepBackend`](crate::backend::SleepBackend)) decide
    /// whether to sleep it or to price it symbolically.
    pub fn set_latency_model(&mut self, model: crate::backend::LatencyModel) {
        self.latency = model;
    }

    pub(crate) fn latency(&self) -> crate::backend::LatencyModel {
        self.latency
    }

    /// The file cursor can no longer be trusted (someone rewrote the
    /// file behind our back, e.g. a checkpoint restore); force a seek
    /// before the next transfer.
    pub(crate) fn invalidate_cursor(&mut self) {
        self.cursor = u64::MAX;
    }

    /// Matrix order.
    pub fn n(&self) -> usize {
        self.n
    }

    /// Tile size.
    pub fn b(&self) -> usize {
        self.b
    }

    /// Tile-grid dimension.
    pub fn nb(&self) -> usize {
        self.nb
    }

    /// Accumulated I/O counters.
    pub fn stats(&self) -> IoStats {
        self.stats
    }

    /// Path of the backing file.
    pub fn path(&self) -> &Path {
        &self.path
    }

    /// Flush buffered tile data to stable storage (`fdatasync`).  The
    /// checkpoint commit protocol calls this before recording a commit:
    /// a snapshot must never claim data the disk has not yet kept.
    pub fn barrier(&mut self) -> std::io::Result<()> {
        self.file.sync_data()
    }

    fn tile_offset(&self, bi: usize, bj: usize) -> u64 {
        debug_assert!(bi < self.nb && bj < self.nb);
        let per_tile = (self.b * self.b * 8) as u64;
        ((bj * self.nb + bi) as u64) * per_tile
    }

    fn seek_to(&mut self, off: u64) -> std::io::Result<()> {
        if self.cursor != off {
            self.file.seek(SeekFrom::Start(off))?;
            self.stats.seeks += 1;
            // An invalidated cursor (fresh open, checkpoint restore) has
            // no meaningful position; charge the mandatory repositioning
            // seek but no travel distance.
            if self.cursor != u64::MAX {
                self.stats.seek_distance += self.cursor.abs_diff(off);
            }
            self.cursor = off;
        }
        Ok(())
    }

    /// Read tile `(bi, bj)` from disk (one contiguous transfer).
    pub fn read_tile(&mut self, bi: usize, bj: usize) -> std::io::Result<Matrix<f64>> {
        let off = self.tile_offset(bi, bj);
        self.seek_to(off)?;
        let bytes = self.b * self.b * 8;
        let mut buf = vec![0u8; bytes];
        self.file.read_exact(&mut buf)?;
        self.cursor += bytes as u64;
        self.stats.bytes_read += bytes as u64;
        self.stats.reads += 1;
        let vals: Vec<f64> = buf
            .chunks_exact(8)
            .map(|c| f64::from_le_bytes(c.try_into().expect("8-byte chunk")))
            .collect();
        let b = self.b;
        Ok(Matrix::from_fn(b, b, |i, j| vals[i + j * b]))
    }

    /// Write tile `(bi, bj)` to disk (one contiguous transfer).
    pub fn write_tile(&mut self, bi: usize, bj: usize, tile: &Matrix<f64>) -> std::io::Result<()> {
        self.write_tile_uncounted(bi, bj, tile)?;
        let bytes = (self.b * self.b * 8) as u64;
        self.stats.bytes_written += bytes;
        self.stats.writes += 1;
        Ok(())
    }

    fn write_tile_uncounted(
        &mut self,
        bi: usize,
        bj: usize,
        tile: &Matrix<f64>,
    ) -> std::io::Result<()> {
        assert_eq!(tile.rows(), self.b);
        assert_eq!(tile.cols(), self.b);
        let off = self.tile_offset(bi, bj);
        self.seek_to(off)?;
        let mut buf = Vec::with_capacity(self.b * self.b * 8);
        for j in 0..self.b {
            for i in 0..self.b {
                buf.extend_from_slice(&tile[(i, j)].to_le_bytes());
            }
        }
        self.file.write_all(&buf)?;
        self.cursor += buf.len() as u64;
        Ok(())
    }

    /// Read the whole matrix back into RAM (not charged; used to verify).
    pub fn to_matrix(&mut self) -> std::io::Result<Matrix<f64>> {
        let saved = self.stats;
        let mut out = Matrix::zeros(self.n, self.n);
        for bj in 0..self.nb {
            for bi in 0..self.nb {
                let t = self.read_tile(bi, bj)?;
                for j in 0..self.b {
                    for i in 0..self.b {
                        let (gi, gj) = (bi * self.b + i, bj * self.b + j);
                        if gi < self.n && gj < self.n {
                            out[(gi, gj)] = t[(i, j)];
                        }
                    }
                }
            }
        }
        self.stats = saved;
        Ok(out)
    }
}

impl Drop for FileMatrix {
    fn drop(&mut self) {
        if !self.persist {
            let _ = std::fs::remove_file(&self.path);
        }
    }
}

/// A unique scratch path in the system temp directory.
pub fn scratch_path(tag: &str) -> PathBuf {
    use std::sync::atomic::{AtomicU64, Ordering};
    static COUNTER: AtomicU64 = AtomicU64::new(0);
    let c = COUNTER.fetch_add(1, Ordering::Relaxed);
    std::env::temp_dir().join(format!(
        "cholcomm-ooc-{}-{}-{}.bin",
        std::process::id(),
        tag,
        c
    ))
}

#[cfg(test)]
#[allow(clippy::unwrap_used)]
mod tests {
    use super::*;
    use cholcomm_matrix::spd;

    #[test]
    fn roundtrip_through_the_file() {
        let mut rng = spd::test_rng(190);
        let a = spd::random_spd(20, &mut rng);
        let path = scratch_path("roundtrip");
        let mut fm = FileMatrix::create(&path, &a, 8).unwrap();
        let back = fm.to_matrix().unwrap();
        assert_eq!(back, a);
    }

    #[test]
    fn io_is_counted_per_tile() {
        let mut rng = spd::test_rng(191);
        let a = spd::random_spd(16, &mut rng);
        let path = scratch_path("counted");
        let mut fm = FileMatrix::create(&path, &a, 8).unwrap();
        assert_eq!(fm.stats(), IoStats::default(), "population not charged");
        let t = fm.read_tile(1, 0).unwrap();
        assert_eq!(t[(0, 0)], a[(8, 0)]);
        assert_eq!(fm.stats().reads, 1);
        assert_eq!(fm.stats().bytes_read, 8 * 8 * 8);
        fm.write_tile(1, 0, &t).unwrap();
        assert_eq!(fm.stats().writes, 1);
    }

    #[test]
    fn sequential_access_does_not_seek() {
        let mut rng = spd::test_rng(192);
        let a = spd::random_spd(16, &mut rng);
        let path = scratch_path("seeks");
        let mut fm = FileMatrix::create(&path, &a, 8).unwrap();
        // Tiles are stored column-major by tile: (0,0),(1,0),(0,1),(1,1).
        fm.read_tile(0, 0).unwrap();
        fm.read_tile(1, 0).unwrap(); // adjacent on disk: no seek
        fm.read_tile(0, 1).unwrap(); // adjacent: no seek
        let after_streaming = fm.stats().seeks;
        let dist_streaming = fm.stats().seek_distance;
        fm.read_tile(0, 0).unwrap(); // jump back: seek
        assert_eq!(fm.stats().seeks, after_streaming + 1);
        // The jump back travels exactly the three tiles already read.
        let tile_bytes = 8 * 8 * 8u64;
        assert_eq!(fm.stats().seek_distance, dist_streaming + 3 * tile_bytes);
        // The initial positioning after create counts as at most one.
        assert!(after_streaming <= 1, "streaming reads must not seek");
    }

    #[test]
    fn backing_file_is_removed_on_drop() {
        let path = scratch_path("drop");
        {
            let a = Matrix::identity(4);
            let _fm = FileMatrix::create(&path, &a, 2).unwrap();
            assert!(path.exists());
        }
        assert!(!path.exists());
    }
}
