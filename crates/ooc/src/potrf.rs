//! Out-of-core blocked Cholesky: Algorithm 4 against the file, through a
//! bounded tile cache.

use crate::filemat::FileMatrix;
use cholcomm_matrix::kernels::{gemm_nt, potf2, trsm_right_lower_transpose};
use cholcomm_matrix::{Matrix, MatrixError};
use std::collections::HashMap;

/// An LRU cache of tiles standing in for fast memory: at most
/// `capacity_tiles` tiles resident; dirty tiles are written back on
/// eviction and at the end.
#[derive(Debug)]
pub struct TileCache {
    capacity_tiles: usize,
    tiles: HashMap<(usize, usize), (Matrix<f64>, bool, u64)>, // (tile, dirty, last use)
    tick: u64,
}

impl TileCache {
    /// Cache holding at most `capacity_tiles` tiles.
    pub fn new(capacity_tiles: usize) -> Self {
        assert!(capacity_tiles >= 3, "Algorithm 4 needs three tiles resident");
        TileCache {
            capacity_tiles,
            tiles: HashMap::new(),
            tick: 0,
        }
    }

    fn evict_if_full(&mut self, fm: &mut FileMatrix) -> std::io::Result<()> {
        while self.tiles.len() >= self.capacity_tiles {
            let (&key, _) = self
                .tiles
                .iter()
                .min_by_key(|(_, (_, _, t))| *t)
                .expect("cache non-empty");
            let (tile, dirty, _) = self.tiles.remove(&key).expect("just found");
            if dirty {
                fm.write_tile(key.0, key.1, &tile)?;
            }
        }
        Ok(())
    }

    /// Fetch a tile (from cache or disk).
    pub fn get(&mut self, fm: &mut FileMatrix, bi: usize, bj: usize) -> std::io::Result<Matrix<f64>> {
        self.tick += 1;
        if let Some((t, _, last)) = self.tiles.get_mut(&(bi, bj)) {
            *last = self.tick;
            return Ok(t.clone());
        }
        self.evict_if_full(fm)?;
        let t = fm.read_tile(bi, bj)?;
        self.tiles.insert((bi, bj), (t.clone(), false, self.tick));
        Ok(t)
    }

    /// Install an updated tile (marks it dirty).
    pub fn put(&mut self, fm: &mut FileMatrix, bi: usize, bj: usize, tile: Matrix<f64>) -> std::io::Result<()> {
        self.tick += 1;
        if let Some(slot) = self.tiles.get_mut(&(bi, bj)) {
            *slot = (tile, true, self.tick);
            return Ok(());
        }
        self.evict_if_full(fm)?;
        self.tiles.insert((bi, bj), (tile, true, self.tick));
        Ok(())
    }

    /// Write every dirty tile back.
    pub fn flush(&mut self, fm: &mut FileMatrix) -> std::io::Result<()> {
        let mut keys: Vec<(usize, usize)> = self.tiles.keys().copied().collect();
        keys.sort_unstable();
        for key in keys {
            if let Some((tile, dirty, _)) = self.tiles.get(&key) {
                if *dirty {
                    fm.write_tile(key.0, key.1, tile)?;
                }
            }
            if let Some(slot) = self.tiles.get_mut(&key) {
                slot.1 = false;
            }
        }
        Ok(())
    }

    /// Currently resident tiles.
    pub fn resident(&self) -> usize {
        self.tiles.len()
    }
}

/// Out-of-core blocked right-looking Cholesky on the file, with a cache
/// of `capacity_tiles` tiles.  Returns the I/O-visible error or the
/// factorization error.
pub fn ooc_potrf(fm: &mut FileMatrix, capacity_tiles: usize) -> Result<(), OocError> {
    let nb = fm.nb();
    let b = fm.b();
    let n = fm.n();
    let mut cache = TileCache::new(capacity_tiles);

    for k in 0..nb {
        // Factor the diagonal tile (edge tiles are zero-padded on disk;
        // factor only the live part).
        let mut diag = cache.get(fm, k, k)?;
        let live = (n - k * b).min(b);
        let mut live_part = diag.submatrix(0, 0, live, live);
        if let Err(MatrixError::NotPositiveDefinite { pivot }) = potf2(&mut live_part) {
            return Err(OocError::NotPositiveDefinite { pivot: k * b + pivot });
        }
        diag.set_submatrix(0, 0, &live_part);
        cache.put(fm, k, k, diag.clone())?;

        // Panel solve.
        for i in (k + 1)..nb {
            let mut t = cache.get(fm, i, k)?;
            // Solve against the live part of the diagonal tile; padded
            // columns of the tile are zero and stay zero.
            let mut x = t.submatrix(0, 0, b, live);
            let l = diag.submatrix(0, 0, live, live);
            trsm_right_lower_transpose(&mut x, &l);
            t.set_submatrix(0, 0, &x);
            cache.put(fm, i, k, t)?;
        }

        // Trailing update.
        for j in (k + 1)..nb {
            let lj = cache.get(fm, j, k)?;
            for i in j..nb {
                let li = cache.get(fm, i, k)?;
                let mut t = cache.get(fm, i, j)?;
                gemm_nt(&mut t, -1.0, &li, &lj);
                cache.put(fm, i, j, t)?;
            }
        }
    }
    cache.flush(fm)?;
    Ok(())
}

/// Errors from the out-of-core factorization.
#[derive(Debug)]
pub enum OocError {
    /// Not positive definite at the given global pivot.
    NotPositiveDefinite {
        /// 0-based failing pivot.
        pivot: usize,
    },
    /// Underlying file I/O failed.
    Io(std::io::Error),
}

impl From<std::io::Error> for OocError {
    fn from(e: std::io::Error) -> Self {
        OocError::Io(e)
    }
}

impl std::fmt::Display for OocError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            OocError::NotPositiveDefinite { pivot } => {
                write!(f, "not positive definite at pivot {pivot}")
            }
            OocError::Io(e) => write!(f, "I/O error: {e}"),
        }
    }
}

impl std::error::Error for OocError {}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::filemat::scratch_path;
    use cholcomm_matrix::{kernels, norms, spd};

    #[test]
    fn ooc_factors_match_in_memory() {
        let mut rng = spd::test_rng(195);
        for (n, b, cap) in [(32usize, 8usize, 4usize), (24, 8, 3), (40, 8, 6)] {
            let a = spd::random_spd(n, &mut rng);
            let path = scratch_path("factor");
            let mut fm = FileMatrix::create(&path, &a, b).unwrap();
            ooc_potrf(&mut fm, cap).unwrap();
            let got = fm.to_matrix().unwrap().lower_triangle().unwrap();
            let mut want = a.clone();
            kernels::potf2(&mut want).unwrap();
            let want = want.lower_triangle().unwrap();
            let diff = norms::max_abs_diff(&got, &want);
            assert!(diff < 1e-9, "n={n} b={b} cap={cap}: {diff}");
        }
    }

    #[test]
    fn smaller_cache_means_more_real_io() {
        let mut rng = spd::test_rng(196);
        let n = 64;
        let b = 8;
        let a = spd::random_spd(n, &mut rng);

        let mut io = Vec::new();
        for cap in [3usize, 8, 40] {
            let path = scratch_path(&format!("cap{cap}"));
            let mut fm = FileMatrix::create(&path, &a, b).unwrap();
            ooc_potrf(&mut fm, cap).unwrap();
            io.push(fm.stats().bytes_read);
        }
        assert!(io[0] > io[1], "cap 3 reads {} > cap 8 reads {}", io[0], io[1]);
        assert!(io[1] > io[2], "cap 8 reads {} > cap 40 reads {}", io[1], io[2]);
        // With the whole matrix cached, reads are compulsory only.
        let tiles = (n / b) * (n / b);
        assert!(io[2] <= (tiles * b * b * 8) as u64);
    }

    #[test]
    fn seeks_follow_the_latency_story() {
        // Block-contiguous on disk: tile moves are one seek + one stream,
        // so seeks track the simulator's message counts.
        let mut rng = spd::test_rng(197);
        let n = 48;
        let a = spd::random_spd(n, &mut rng);
        let path = scratch_path("seeks");
        let mut fm = FileMatrix::create(&path, &a, 8).unwrap();
        ooc_potrf(&mut fm, 4).unwrap();
        let s = fm.stats();
        assert!(
            s.seeks <= s.reads + s.writes + 1,
            "each transfer is at most one seek: {s:?}"
        );
        assert!(s.reads > 0 && s.writes > 0);
    }

    #[test]
    fn indefinite_detected_through_the_file() {
        let mut m = cholcomm_matrix::Matrix::<f64>::identity(16);
        m[(9, 9)] = -4.0;
        let path = scratch_path("indef");
        let mut fm = FileMatrix::create(&path, &m, 4).unwrap();
        match ooc_potrf(&mut fm, 4) {
            Err(OocError::NotPositiveDefinite { pivot }) => assert_eq!(pivot, 9),
            other => panic!("expected pivot failure, got {other:?}"),
        }
    }

    #[test]
    fn ragged_sizes_work() {
        let mut rng = spd::test_rng(198);
        let a = spd::random_spd(21, &mut rng);
        let path = scratch_path("ragged");
        let mut fm = FileMatrix::create(&path, &a, 8).unwrap();
        ooc_potrf(&mut fm, 5).unwrap();
        let got = fm.to_matrix().unwrap();
        let r = norms::cholesky_residual(&a, &got);
        assert!(r < norms::residual_tolerance(21), "residual {r}");
    }
}
