//! Out-of-core blocked Cholesky: Algorithm 4 against the backing store,
//! through a bounded tile cache.

use crate::backend::IoBackend;
use cholcomm_matrix::{KernelImpl, Matrix, MatrixError};
use std::collections::HashMap;

const NIL: usize = usize::MAX;

#[derive(Debug)]
struct LruSlot {
    key: (usize, usize),
    prev: usize,
    next: usize,
}

/// Recency order over tile keys: a doubly-linked list threaded through
/// a slot arena with a key → slot map, so *touch* and *evict-oldest*
/// are both O(1).  Same intrusive-list pattern as the cachesim crate's
/// LRU tracer; replaces the old per-eviction O(resident) min-tick scan.
/// Pure bookkeeping — which tile is least recent is exactly what the
/// tick ordering said, so resident-set behavior is unchanged (the
/// regression test below drives both models side by side).
#[derive(Debug)]
pub(crate) struct LruIndex {
    map: HashMap<(usize, usize), usize>,
    slots: Vec<LruSlot>,
    /// Most recently used.
    head: usize,
    /// Least recently used — the eviction candidate.
    tail: usize,
    free: Vec<usize>,
}

impl LruIndex {
    pub(crate) fn new() -> Self {
        LruIndex {
            map: HashMap::new(),
            slots: Vec::new(),
            head: NIL,
            tail: NIL,
            free: Vec::new(),
        }
    }

    fn unlink(&mut self, s: usize) {
        let (prev, next) = (self.slots[s].prev, self.slots[s].next);
        if prev == NIL {
            self.head = next;
        } else {
            self.slots[prev].next = next;
        }
        if next == NIL {
            self.tail = prev;
        } else {
            self.slots[next].prev = prev;
        }
    }

    fn push_front(&mut self, s: usize) {
        self.slots[s].prev = NIL;
        self.slots[s].next = self.head;
        if self.head != NIL {
            self.slots[self.head].prev = s;
        }
        self.head = s;
        if self.tail == NIL {
            self.tail = s;
        }
    }

    /// Mark `key` as just used (inserting it if new).
    pub(crate) fn touch(&mut self, key: (usize, usize)) {
        if let Some(&s) = self.map.get(&key) {
            if self.head != s {
                self.unlink(s);
                self.push_front(s);
            }
            return;
        }
        let s = match self.free.pop() {
            Some(s) => {
                self.slots[s].key = key;
                s
            }
            None => {
                self.slots.push(LruSlot {
                    key,
                    prev: NIL,
                    next: NIL,
                });
                self.slots.len() - 1
            }
        };
        self.map.insert(key, s);
        self.push_front(s);
    }

    /// Forget `key` (no-op if absent).
    pub(crate) fn remove(&mut self, key: (usize, usize)) {
        if let Some(s) = self.map.remove(&key) {
            self.unlink(s);
            self.free.push(s);
        }
    }

    /// The least recently used key, if any.
    pub(crate) fn lru(&self) -> Option<(usize, usize)> {
        (self.tail != NIL).then(|| self.slots[self.tail].key)
    }

    pub(crate) fn len(&self) -> usize {
        self.map.len()
    }

    pub(crate) fn clear(&mut self) {
        self.map.clear();
        self.slots.clear();
        self.free.clear();
        self.head = NIL;
        self.tail = NIL;
    }
}

/// An LRU cache of tiles standing in for fast memory: at most
/// `capacity_tiles` tiles resident; dirty tiles are written back on
/// eviction and at the end.
///
/// # Error guarantee
///
/// If a write-back fails (eviction or [`flush`](Self::flush)), the
/// cache **poisons itself**: the failed tile and every other dirty tile
/// stay marked dirty, and all further operations return
/// [`OocError::CachePoisoned`].  Nothing is silently dropped — the
/// caller knows the file no longer matches the computation and must
/// discard or re-create it.  Errors in the *computation* (a
/// [`NotSpd`](OocError::NotSpd) pivot) do not
/// poison the cache; [`ooc_potrf`] flushes before reporting them, so
/// the file then holds every update completed before the bad pivot.
#[derive(Debug)]
pub struct TileCache {
    capacity_tiles: usize,
    tiles: HashMap<(usize, usize), (Matrix<f64>, bool)>, // (tile, dirty)
    order: LruIndex,
    poisoned: bool,
}

impl TileCache {
    /// Cache holding at most `capacity_tiles` tiles.
    pub fn new(capacity_tiles: usize) -> Self {
        assert!(capacity_tiles >= 3, "Algorithm 4 needs three tiles resident");
        TileCache {
            capacity_tiles,
            tiles: HashMap::new(),
            order: LruIndex::new(),
            poisoned: false,
        }
    }

    fn check_poison(&self) -> Result<(), OocError> {
        if self.poisoned {
            Err(OocError::CachePoisoned)
        } else {
            Ok(())
        }
    }

    fn evict_if_full<B: IoBackend>(&mut self, fm: &mut B) -> Result<(), OocError> {
        while self.tiles.len() >= self.capacity_tiles {
            let key = self.order.lru().ok_or(OocError::CachePoisoned)?;
            // Write back *before* removing: if the write fails the tile
            // stays resident and dirty, and the cache is poisoned.
            if let Some((tile, dirty)) = self.tiles.get(&key) {
                if *dirty {
                    if let Err(e) = fm.write_tile(key.0, key.1, tile) {
                        self.poisoned = true;
                        return Err(OocError::Io(e));
                    }
                }
            }
            self.tiles.remove(&key);
            self.order.remove(key);
        }
        Ok(())
    }

    /// Fetch a tile (from cache or the backing store).
    pub fn get<B: IoBackend>(
        &mut self,
        fm: &mut B,
        bi: usize,
        bj: usize,
    ) -> Result<Matrix<f64>, OocError> {
        self.check_poison()?;
        if let Some((t, _)) = self.tiles.get(&(bi, bj)) {
            let t = t.clone();
            self.order.touch((bi, bj));
            return Ok(t);
        }
        self.evict_if_full(fm)?;
        let t = fm.read_tile(bi, bj)?;
        self.tiles.insert((bi, bj), (t.clone(), false));
        self.order.touch((bi, bj));
        Ok(t)
    }

    /// Install an updated tile (marks it dirty).
    pub fn put<B: IoBackend>(
        &mut self,
        fm: &mut B,
        bi: usize,
        bj: usize,
        tile: Matrix<f64>,
    ) -> Result<(), OocError> {
        self.check_poison()?;
        if let Some(slot) = self.tiles.get_mut(&(bi, bj)) {
            *slot = (tile, true);
            self.order.touch((bi, bj));
            return Ok(());
        }
        self.evict_if_full(fm)?;
        self.tiles.insert((bi, bj), (tile, true));
        self.order.touch((bi, bj));
        Ok(())
    }

    /// Write every dirty tile back.  On failure the cache is poisoned
    /// and every not-yet-written tile remains dirty.
    pub fn flush<B: IoBackend>(&mut self, fm: &mut B) -> Result<(), OocError> {
        self.check_poison()?;
        let mut keys: Vec<(usize, usize)> = self.tiles.keys().copied().collect();
        keys.sort_unstable();
        for key in keys {
            if let Some((tile, dirty)) = self.tiles.get(&key) {
                if *dirty {
                    if let Err(e) = fm.write_tile(key.0, key.1, tile) {
                        self.poisoned = true;
                        return Err(OocError::Io(e));
                    }
                }
            }
            if let Some(slot) = self.tiles.get_mut(&key) {
                slot.1 = false;
            }
        }
        Ok(())
    }

    /// Currently resident tiles.
    pub fn resident(&self) -> usize {
        self.tiles.len()
    }

    /// Currently resident *dirty* (not yet written back) tiles.
    pub fn dirty(&self) -> usize {
        self.tiles.values().filter(|(_, d)| *d).count()
    }

    /// Has a failed write-back poisoned this cache?
    pub fn is_poisoned(&self) -> bool {
        self.poisoned
    }

    /// Drop all cached state — but refuse if doing so would silently
    /// lose un-flushed updates: a poisoned cache, or any dirty tile,
    /// makes this an error ([`OocError::WouldDiscardDirty`]).  Callers
    /// who *mean* to throw dirty state away (checkpoint restore, where
    /// everything in RAM is stale by definition) must say so with
    /// [`clear_discarding`](Self::clear_discarding).
    pub fn clear(&mut self) -> Result<(), OocError> {
        let dirty = self.dirty();
        if self.poisoned || dirty > 0 {
            return Err(OocError::WouldDiscardDirty { dirty });
        }
        self.clear_discarding();
        Ok(())
    }

    /// Drop all cached state unconditionally, discarding dirty tiles
    /// and un-poisoning the cache.  The recovery path: correct only
    /// when the backing store is about to be (or was just) rewritten
    /// from an authoritative copy.
    pub fn clear_discarding(&mut self) {
        self.tiles.clear();
        self.order.clear();
        self.poisoned = false;
    }
}

/// Where a panel step gets and puts its tiles.
///
/// Algorithm 4's arithmetic is written once, in [`factor_panel_src`],
/// against this trait; how tiles actually move — synchronously through
/// a [`TileCache`], or prefetched ahead of the compute front by the
/// [`pipeline`](crate::pipeline) — is the implementor's business.
/// Because every front sees the *same* logical get/put sequence and the
/// schedule is data-oblivious, any two implementations that deliver the
/// stored tile values produce bit-identical factors by construction.
pub(crate) trait TileSource {
    /// Matrix order.
    fn n(&self) -> usize;
    /// Tile size.
    fn b(&self) -> usize;
    /// Tile-grid dimension.
    fn nb(&self) -> usize;
    /// Panel step `k` is about to run (integrity layers hook this).
    fn begin_panel(&mut self, k: usize);
    /// Fetch tile `(bi, bj)`.
    fn get(&mut self, bi: usize, bj: usize) -> Result<Matrix<f64>, OocError>;
    /// Install an updated tile.
    fn put(&mut self, bi: usize, bj: usize, tile: Matrix<f64>) -> Result<(), OocError>;
}

/// The synchronous front: a backend behind a [`TileCache`], tile moves
/// blocking the compute thread — the baseline the paper's sequential
/// I/O counts describe.
pub(crate) struct CachedFront<'a, B: IoBackend> {
    pub(crate) fm: &'a mut B,
    pub(crate) cache: &'a mut TileCache,
}

impl<B: IoBackend> TileSource for CachedFront<'_, B> {
    fn n(&self) -> usize {
        self.fm.n()
    }
    fn b(&self) -> usize {
        self.fm.b()
    }
    fn nb(&self) -> usize {
        self.fm.nb()
    }
    fn begin_panel(&mut self, k: usize) {
        self.fm.begin_panel(k);
    }
    fn get(&mut self, bi: usize, bj: usize) -> Result<Matrix<f64>, OocError> {
        self.cache.get(self.fm, bi, bj)
    }
    fn put(&mut self, bi: usize, bj: usize, tile: Matrix<f64>) -> Result<(), OocError> {
        self.cache.put(self.fm, bi, bj, tile)
    }
}

/// One panel step `k` of the right-looking blocked Cholesky: factor the
/// diagonal tile, solve the panel below it, update the trailing
/// submatrix.  Shared by [`ooc_potrf`], the checkpointed driver, and
/// the prefetching pipeline, parameterised by the kernel engine.  Tile
/// gets and puts (the I/O the out-of-core analysis counts) are
/// identical under every engine and every front; only the in-memory
/// tile arithmetic changes with the engine, and only the tile
/// *transport* changes with the front.
pub(crate) fn factor_panel_src<S: TileSource>(
    src: &mut S,
    k: usize,
    kernel: KernelImpl,
) -> Result<(), OocError> {
    let nb = src.nb();
    let b = src.b();
    let n = src.n();
    src.begin_panel(k);

    // Factor the diagonal tile (edge tiles are zero-padded on disk;
    // factor only the live part).
    let mut diag = src.get(k, k)?;
    let live = (n - k * b).min(b);
    let mut live_part = diag.submatrix(0, 0, live, live);
    if let Err(MatrixError::NotSpd { pivot, value }) = kernel.potf2(&mut live_part) {
        return Err(OocError::NotSpd {
            pivot: k * b + pivot,
            value,
        });
    }
    diag.set_submatrix(0, 0, &live_part);
    src.put(k, k, diag.clone())?;

    // Panel solve.
    for i in (k + 1)..nb {
        let mut t = src.get(i, k)?;
        // Solve against the live part of the diagonal tile; padded
        // columns of the tile are zero and stay zero.
        let mut x = t.submatrix(0, 0, b, live);
        let l = diag.submatrix(0, 0, live, live);
        kernel.trsm_right_lower_transpose(&mut x, &l);
        t.set_submatrix(0, 0, &x);
        src.put(i, k, t)?;
    }

    // Trailing update.
    for j in (k + 1)..nb {
        let lj = src.get(j, k)?;
        for i in j..nb {
            let li = src.get(i, k)?;
            let mut t = src.get(i, j)?;
            kernel.gemm_nt(&mut t, -1.0, &li, &lj);
            src.put(i, j, t)?;
        }
    }
    Ok(())
}

/// [`factor_panel_src`] through the synchronous [`CachedFront`] — the
/// signature the checkpointed driver has always used.
pub(crate) fn factor_panel_with<B: IoBackend>(
    fm: &mut B,
    cache: &mut TileCache,
    k: usize,
    kernel: KernelImpl,
) -> Result<(), OocError> {
    factor_panel_src(&mut CachedFront { fm, cache }, k, kernel)
}

/// Out-of-core blocked right-looking Cholesky on the backing store,
/// with a cache of `capacity_tiles` tiles.  Returns the I/O-visible
/// error or the factorization error.
///
/// On [`OocError::NotSpd`] the cache is flushed before the
/// error is returned, so the file holds every update that completed
/// before the failing pivot (a partially factored matrix, documented —
/// not a torn one).
pub fn ooc_potrf<B: IoBackend>(fm: &mut B, capacity_tiles: usize) -> Result<(), OocError> {
    ooc_potrf_with(fm, capacity_tiles, KernelImpl::Reference)
}

/// [`ooc_potrf`] with an explicit kernel engine (same tile I/O, same
/// bits; see [`cholcomm_matrix::kernels_fast`]).
pub fn ooc_potrf_with<B: IoBackend>(
    fm: &mut B,
    capacity_tiles: usize,
    kernel: KernelImpl,
) -> Result<(), OocError> {
    let nb = fm.nb();
    let mut cache = TileCache::new(capacity_tiles);
    for k in 0..nb {
        match factor_panel_with(fm, &mut cache, k, kernel) {
            Ok(()) => {}
            Err(e @ OocError::NotSpd { .. }) => {
                // Leave the file in a well-defined state: everything up
                // to the bad pivot is written back.  A flush failure
                // outranks the pivot failure.
                cache.flush(fm)?;
                return Err(e);
            }
            Err(e) => return Err(e),
        }
    }
    cache.flush(fm)?;
    // Integrity scrub: a checksumming backend re-verifies every stored
    // tile, so a corruption landing after a tile's last algorithmic
    // read still cannot escape into the output.  Unhealable corruption
    // surfaces as an I/O error here; recovering from *that* needs the
    // checkpointed driver.
    fm.scrub()?;
    Ok(())
}

/// Errors from the out-of-core factorization.
#[derive(Debug)]
pub enum OocError {
    /// Not positive definite at the given global pivot.
    NotSpd {
        /// 0-based failing pivot.
        pivot: usize,
        /// The non-positive pivot value.
        value: f64,
    },
    /// Underlying file I/O failed.
    Io(std::io::Error),
    /// A numerical kernel failed for a reason other than definiteness.
    Matrix(MatrixError),
    /// A previous dirty write-back failed; cached state no longer
    /// matches the file and all further cache operations are refused.
    CachePoisoned,
    /// [`TileCache::clear`] was asked to drop un-flushed updates; the
    /// caller must flush first or opt in with
    /// [`TileCache::clear_discarding`].
    WouldDiscardDirty {
        /// Dirty tiles that would have been lost.
        dirty: usize,
    },
}

impl From<std::io::Error> for OocError {
    fn from(e: std::io::Error) -> Self {
        OocError::Io(e)
    }
}

impl From<MatrixError> for OocError {
    fn from(e: MatrixError) -> Self {
        match e {
            MatrixError::NotSpd { pivot, value } => OocError::NotSpd { pivot, value },
            other => OocError::Matrix(other),
        }
    }
}

impl std::fmt::Display for OocError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            OocError::NotSpd { pivot, value } => {
                write!(f, "not positive definite at pivot {pivot} (value {value})")
            }
            OocError::Io(e) => write!(f, "I/O error: {e}"),
            OocError::Matrix(e) => write!(f, "matrix error: {e}"),
            OocError::CachePoisoned => {
                write!(f, "tile cache poisoned by an earlier failed write-back")
            }
            OocError::WouldDiscardDirty { dirty } => {
                write!(
                    f,
                    "refusing to clear a cache holding {dirty} dirty tile(s); \
                     flush first or use clear_discarding()"
                )
            }
        }
    }
}

impl std::error::Error for OocError {
    fn source(&self) -> Option<&(dyn std::error::Error + 'static)> {
        match self {
            OocError::Io(e) => Some(e),
            OocError::Matrix(e) => Some(e),
            _ => None,
        }
    }
}

#[cfg(test)]
#[allow(clippy::unwrap_used)]
mod tests {
    use super::*;
    use crate::filemat::{scratch_path, FileMatrix};
    use cholcomm_matrix::{kernels, norms, spd};

    #[test]
    fn ooc_factors_match_in_memory() {
        let mut rng = spd::test_rng(195);
        for (n, b, cap) in [(32usize, 8usize, 4usize), (24, 8, 3), (40, 8, 6)] {
            let a = spd::random_spd(n, &mut rng);
            let path = scratch_path("factor");
            let mut fm = FileMatrix::create(&path, &a, b).unwrap();
            ooc_potrf(&mut fm, cap).unwrap();
            let got = fm.to_matrix().unwrap().lower_triangle().unwrap();
            let mut want = a.clone();
            kernels::potf2(&mut want).unwrap();
            let want = want.lower_triangle().unwrap();
            let diff = norms::max_abs_diff(&got, &want);
            assert!(diff < 1e-9, "n={n} b={b} cap={cap}: {diff}");
        }
    }

    #[test]
    fn smaller_cache_means_more_real_io() {
        let mut rng = spd::test_rng(196);
        let n = 64;
        let b = 8;
        let a = spd::random_spd(n, &mut rng);

        let mut io = Vec::new();
        for cap in [3usize, 8, 40] {
            let path = scratch_path(&format!("cap{cap}"));
            let mut fm = FileMatrix::create(&path, &a, b).unwrap();
            ooc_potrf(&mut fm, cap).unwrap();
            io.push(fm.stats().bytes_read);
        }
        assert!(io[0] > io[1], "cap 3 reads {} > cap 8 reads {}", io[0], io[1]);
        assert!(io[1] > io[2], "cap 8 reads {} > cap 40 reads {}", io[1], io[2]);
        // With the whole matrix cached, reads are compulsory only.
        let tiles = (n / b) * (n / b);
        assert!(io[2] <= (tiles * b * b * 8) as u64);
    }

    #[test]
    fn seeks_follow_the_latency_story() {
        // Block-contiguous on disk: tile moves are one seek + one stream,
        // so seeks track the simulator's message counts.
        let mut rng = spd::test_rng(197);
        let n = 48;
        let a = spd::random_spd(n, &mut rng);
        let path = scratch_path("seeks");
        let mut fm = FileMatrix::create(&path, &a, 8).unwrap();
        ooc_potrf(&mut fm, 4).unwrap();
        let s = fm.stats();
        assert!(
            s.seeks <= s.reads + s.writes + 1,
            "each transfer is at most one seek: {s:?}"
        );
        assert!(s.reads > 0 && s.writes > 0);
    }

    #[test]
    fn indefinite_detected_through_the_file() {
        let mut m = cholcomm_matrix::Matrix::<f64>::identity(16);
        m[(9, 9)] = -4.0;
        let path = scratch_path("indef");
        let mut fm = FileMatrix::create(&path, &m, 4).unwrap();
        match ooc_potrf(&mut fm, 4) {
            Err(OocError::NotSpd { pivot, value }) => {
                assert_eq!(pivot, 9);
                assert!(value < 0.0);
            }
            other => panic!("expected pivot failure, got {other:?}"),
        }
    }

    #[test]
    fn indefinite_leaves_completed_updates_on_disk() {
        // The documented guarantee: on a pivot failure the cache is
        // flushed, so the first panels (factored before the bad pivot)
        // are on disk, not lost in RAM.
        let n = 16;
        let mut m = cholcomm_matrix::Matrix::<f64>::identity(n);
        for i in 0..n {
            m[(i, i)] = 4.0;
        }
        m[(12, 12)] = -1.0; // tile (3,3) with b=4 goes bad
        let path = scratch_path("indef-flush");
        let mut fm = FileMatrix::create(&path, &m, 4).unwrap();
        match ooc_potrf(&mut fm, 3) {
            Err(OocError::NotSpd { pivot, .. }) => assert_eq!(pivot, 12),
            other => panic!("expected pivot failure, got {other:?}"),
        }
        let back = fm.to_matrix().unwrap();
        assert_eq!(back[(0, 0)], 2.0, "first diagonal tile was factored and flushed");
    }

    #[test]
    fn ragged_sizes_work() {
        let mut rng = spd::test_rng(198);
        let a = spd::random_spd(21, &mut rng);
        let path = scratch_path("ragged");
        let mut fm = FileMatrix::create(&path, &a, 8).unwrap();
        ooc_potrf(&mut fm, 5).unwrap();
        let got = fm.to_matrix().unwrap();
        let r = norms::cholesky_residual(&a, &got);
        assert!(r < norms::residual_tolerance(21), "residual {r}");
    }

    #[test]
    fn poisoned_cache_refuses_everything() {
        use crate::backend::FaultyBackend;
        use cholcomm_faults::{DiskFault, FaultPlan};

        let mut rng = spd::test_rng(199);
        let a = spd::random_spd(16, &mut rng);
        let path = scratch_path("poison");
        let fm = FileMatrix::create(&path, &a, 8).unwrap();
        // Ops 0..=2 are the three cache-fill reads; op 3 is the first
        // flush write-back.  Fail it on every attempt up to the cap so
        // the flush error is permanent.
        let mut builder = FaultPlan::builder(0).max_fault_attempts(3);
        for attempt in 1..=4 {
            builder = builder.inject_disk_fault(3, attempt, DiskFault::TransientEio);
        }
        let mut fb = FaultyBackend::new(fm, builder.build());
        let mut cache = TileCache::new(3);
        for (bi, bj) in [(0, 0), (1, 0), (0, 1)] {
            let t = cache.get(&mut fb, bi, bj).unwrap();
            cache.put(&mut fb, bi, bj, t).unwrap();
        }
        assert!(matches!(cache.flush(&mut fb), Err(OocError::Io(_))));
        assert!(cache.is_poisoned());
        assert!(matches!(
            cache.get(&mut fb, 0, 0),
            Err(OocError::CachePoisoned)
        ));
        assert!(matches!(
            cache.flush(&mut fb),
            Err(OocError::CachePoisoned)
        ));
        assert!(
            matches!(cache.clear(), Err(OocError::WouldDiscardDirty { .. })),
            "a poisoned cache still holds dirty tiles; clear() must refuse"
        );
        cache.clear_discarding();
        assert!(!cache.is_poisoned(), "clear_discarding() is the recovery path");
    }

    #[test]
    fn clear_refuses_dirty_tiles_but_not_clean_ones() {
        let mut rng = spd::test_rng(200);
        let a = spd::random_spd(16, &mut rng);
        let path = scratch_path("clear");
        let mut fm = FileMatrix::create(&path, &a, 8).unwrap();
        let mut cache = TileCache::new(3);
        let t = cache.get(&mut fm, 0, 0).unwrap();
        cache.clear().unwrap(); // clean resident tiles may be dropped
        assert_eq!(cache.resident(), 0);
        cache.put(&mut fm, 0, 0, t).unwrap();
        match cache.clear() {
            Err(OocError::WouldDiscardDirty { dirty }) => assert_eq!(dirty, 1),
            other => panic!("expected WouldDiscardDirty, got {other:?}"),
        }
        assert_eq!(cache.resident(), 1, "refused clear must not drop anything");
        cache.flush(&mut fm).unwrap();
        cache.clear().unwrap(); // flushed tiles are clean again
    }

    /// A backend over RAM that records the order of its tile writes, for
    /// observing eviction / write-back behavior precisely.
    struct LoggingMem {
        n: usize,
        b: usize,
        nb: usize,
        tiles: HashMap<(usize, usize), Matrix<f64>>,
        reads: Vec<(usize, usize)>,
        writes: Vec<(usize, usize)>,
    }

    impl LoggingMem {
        fn new(a: &Matrix<f64>, b: usize) -> Self {
            let n = a.rows();
            let nb = n.div_ceil(b);
            let mut tiles = HashMap::new();
            for bj in 0..nb {
                for bi in 0..nb {
                    tiles.insert(
                        (bi, bj),
                        Matrix::from_fn(b, b, |i, j| {
                            let (gi, gj) = (bi * b + i, bj * b + j);
                            if gi < n && gj < n {
                                a[(gi, gj)]
                            } else {
                                0.0
                            }
                        }),
                    );
                }
            }
            LoggingMem {
                n,
                b,
                nb,
                tiles,
                reads: Vec::new(),
                writes: Vec::new(),
            }
        }
    }

    impl IoBackend for LoggingMem {
        fn n(&self) -> usize {
            self.n
        }
        fn b(&self) -> usize {
            self.b
        }
        fn nb(&self) -> usize {
            self.nb
        }
        fn read_tile(&mut self, bi: usize, bj: usize) -> std::io::Result<Matrix<f64>> {
            self.reads.push((bi, bj));
            Ok(self.tiles[&(bi, bj)].clone())
        }
        fn write_tile(&mut self, bi: usize, bj: usize, t: &Matrix<f64>) -> std::io::Result<()> {
            self.writes.push((bi, bj));
            self.tiles.insert((bi, bj), t.clone());
            Ok(())
        }
        fn stats(&self) -> crate::IoStats {
            crate::IoStats::default()
        }
        fn path(&self) -> Option<&std::path::Path> {
            None
        }
    }

    /// The pre-LRU-index model: per-tile last-use ticks, evict the
    /// minimum.  The intrusive list must reproduce its behavior exactly.
    struct TickModel {
        capacity: usize,
        tiles: HashMap<(usize, usize), (bool, u64)>, // (dirty, last use)
        tick: u64,
        evict_writes: Vec<(usize, usize)>,
        misses: Vec<(usize, usize)>,
    }

    impl TickModel {
        fn new(capacity: usize) -> Self {
            TickModel {
                capacity,
                tiles: HashMap::new(),
                tick: 0,
                evict_writes: Vec::new(),
                misses: Vec::new(),
            }
        }
        fn evict_if_full(&mut self) {
            while self.tiles.len() >= self.capacity {
                let key = self
                    .tiles
                    .iter()
                    .min_by_key(|(_, (_, t))| *t)
                    .map(|(&k, _)| k)
                    .expect("non-empty");
                if self.tiles[&key].0 {
                    self.evict_writes.push(key);
                }
                self.tiles.remove(&key);
            }
        }
        fn get(&mut self, key: (usize, usize)) {
            self.tick += 1;
            if let Some(slot) = self.tiles.get_mut(&key) {
                slot.1 = self.tick;
                return;
            }
            self.evict_if_full();
            self.misses.push(key);
            self.tiles.insert(key, (false, self.tick));
        }
        fn put(&mut self, key: (usize, usize)) {
            self.tick += 1;
            if let Some(slot) = self.tiles.get_mut(&key) {
                *slot = (true, self.tick);
                return;
            }
            self.evict_if_full();
            self.tiles.insert(key, (true, self.tick));
        }
    }

    #[test]
    fn lru_index_reproduces_the_tick_model_exactly() {
        // Drive the real cache and the old tick model through the same
        // access stream (a seeded mix of gets and puts, plus the real
        // Algorithm 4 stream) and require identical miss sequences,
        // eviction write-back order, and final resident sets.
        let mut rng = spd::test_rng(201);
        let a = spd::random_spd(40, &mut rng);
        let b = 8;
        let nb = a.rows().div_ceil(b);
        for cap in [3usize, 4, 6] {
            let mut mem = LoggingMem::new(&a, b);
            let mut cache = TileCache::new(cap);
            let mut model = TickModel::new(cap);
            // Seeded pseudo-random access stream over the lower triangle.
            let mut state = 0x5EEDu64 ^ (cap as u64);
            let mut next = || {
                state = state
                    .wrapping_mul(6364136223846793005)
                    .wrapping_add(1442695040888963407);
                state >> 33
            };
            for _ in 0..400 {
                let bj = (next() as usize) % nb;
                let bi = bj + (next() as usize) % (nb - bj);
                if next().is_multiple_of(3) {
                    let t = cache.get(&mut mem, bi, bj).unwrap();
                    cache.put(&mut mem, bi, bj, t).unwrap();
                    model.get((bi, bj));
                    model.put((bi, bj));
                } else {
                    cache.get(&mut mem, bi, bj).unwrap();
                    model.get((bi, bj));
                }
            }
            assert_eq!(mem.reads, model.misses, "cap {cap}: miss sequence");
            assert_eq!(mem.writes, model.evict_writes, "cap {cap}: write-back order");
            let mut resident: Vec<_> = cache.tiles.keys().copied().collect();
            resident.sort_unstable();
            let mut model_resident: Vec<_> = model.tiles.keys().copied().collect();
            model_resident.sort_unstable();
            assert_eq!(resident, model_resident, "cap {cap}: resident set");
        }
        // And the real factorization stream, where eviction order shapes
        // the on-disk write pattern end to end.
        for cap in [3usize, 5] {
            let mut mem = LoggingMem::new(&a, b);
            let mut cache = TileCache::new(cap);
            let mut model = TickModel::new(cap);
            for k in 0..nb {
                factor_panel_with(&mut mem, &mut cache, k, KernelImpl::Reference).unwrap();
            }
            // Replay the same logical schedule into the model.
            for k in 0..nb {
                model.get((k, k));
                model.put((k, k));
                for i in (k + 1)..nb {
                    model.get((i, k));
                    model.put((i, k));
                }
                for j in (k + 1)..nb {
                    model.get((j, k));
                    for i in j..nb {
                        model.get((i, k));
                        model.get((i, j));
                        model.put((i, j));
                    }
                }
            }
            assert_eq!(mem.reads, model.misses, "cap {cap}: factor miss sequence");
            assert_eq!(
                mem.writes, model.evict_writes,
                "cap {cap}: factor write-back order"
            );
        }
    }
}
