//! Out-of-core blocked Cholesky: Algorithm 4 against the backing store,
//! through a bounded tile cache.

use crate::backend::IoBackend;
use cholcomm_matrix::{KernelImpl, Matrix, MatrixError};
use std::collections::HashMap;

/// An LRU cache of tiles standing in for fast memory: at most
/// `capacity_tiles` tiles resident; dirty tiles are written back on
/// eviction and at the end.
///
/// # Error guarantee
///
/// If a write-back fails (eviction or [`flush`](Self::flush)), the
/// cache **poisons itself**: the failed tile and every other dirty tile
/// stay marked dirty, and all further operations return
/// [`OocError::CachePoisoned`].  Nothing is silently dropped — the
/// caller knows the file no longer matches the computation and must
/// discard or re-create it.  Errors in the *computation* (a
/// [`NotSpd`](OocError::NotSpd) pivot) do not
/// poison the cache; [`ooc_potrf`] flushes before reporting them, so
/// the file then holds every update completed before the bad pivot.
#[derive(Debug)]
pub struct TileCache {
    capacity_tiles: usize,
    tiles: HashMap<(usize, usize), (Matrix<f64>, bool, u64)>, // (tile, dirty, last use)
    tick: u64,
    poisoned: bool,
}

impl TileCache {
    /// Cache holding at most `capacity_tiles` tiles.
    pub fn new(capacity_tiles: usize) -> Self {
        assert!(capacity_tiles >= 3, "Algorithm 4 needs three tiles resident");
        TileCache {
            capacity_tiles,
            tiles: HashMap::new(),
            tick: 0,
            poisoned: false,
        }
    }

    fn check_poison(&self) -> Result<(), OocError> {
        if self.poisoned {
            Err(OocError::CachePoisoned)
        } else {
            Ok(())
        }
    }

    fn evict_if_full<B: IoBackend>(&mut self, fm: &mut B) -> Result<(), OocError> {
        while self.tiles.len() >= self.capacity_tiles {
            let key = self
                .tiles
                .iter()
                .min_by_key(|(_, (_, _, t))| *t)
                .map(|(&key, _)| key)
                .ok_or(OocError::CachePoisoned)?;
            // Write back *before* removing: if the write fails the tile
            // stays resident and dirty, and the cache is poisoned.
            if let Some((tile, dirty, _)) = self.tiles.get(&key) {
                if *dirty {
                    if let Err(e) = fm.write_tile(key.0, key.1, tile) {
                        self.poisoned = true;
                        return Err(OocError::Io(e));
                    }
                }
            }
            self.tiles.remove(&key);
        }
        Ok(())
    }

    /// Fetch a tile (from cache or the backing store).
    pub fn get<B: IoBackend>(
        &mut self,
        fm: &mut B,
        bi: usize,
        bj: usize,
    ) -> Result<Matrix<f64>, OocError> {
        self.check_poison()?;
        self.tick += 1;
        if let Some((t, _, last)) = self.tiles.get_mut(&(bi, bj)) {
            *last = self.tick;
            return Ok(t.clone());
        }
        self.evict_if_full(fm)?;
        let t = fm.read_tile(bi, bj)?;
        self.tiles.insert((bi, bj), (t.clone(), false, self.tick));
        Ok(t)
    }

    /// Install an updated tile (marks it dirty).
    pub fn put<B: IoBackend>(
        &mut self,
        fm: &mut B,
        bi: usize,
        bj: usize,
        tile: Matrix<f64>,
    ) -> Result<(), OocError> {
        self.check_poison()?;
        self.tick += 1;
        if let Some(slot) = self.tiles.get_mut(&(bi, bj)) {
            *slot = (tile, true, self.tick);
            return Ok(());
        }
        self.evict_if_full(fm)?;
        self.tiles.insert((bi, bj), (tile, true, self.tick));
        Ok(())
    }

    /// Write every dirty tile back.  On failure the cache is poisoned
    /// and every not-yet-written tile remains dirty.
    pub fn flush<B: IoBackend>(&mut self, fm: &mut B) -> Result<(), OocError> {
        self.check_poison()?;
        let mut keys: Vec<(usize, usize)> = self.tiles.keys().copied().collect();
        keys.sort_unstable();
        for key in keys {
            if let Some((tile, dirty, _)) = self.tiles.get(&key) {
                if *dirty {
                    if let Err(e) = fm.write_tile(key.0, key.1, tile) {
                        self.poisoned = true;
                        return Err(OocError::Io(e));
                    }
                }
            }
            if let Some(slot) = self.tiles.get_mut(&key) {
                slot.1 = false;
            }
        }
        Ok(())
    }

    /// Currently resident tiles.
    pub fn resident(&self) -> usize {
        self.tiles.len()
    }

    /// Has a failed write-back poisoned this cache?
    pub fn is_poisoned(&self) -> bool {
        self.poisoned
    }

    /// Drop all cached state (used when restarting from a checkpoint:
    /// everything in RAM is stale by definition).
    pub fn clear(&mut self) {
        self.tiles.clear();
        self.poisoned = false;
    }
}

/// One panel step `k` of the right-looking blocked Cholesky: factor the
/// diagonal tile, solve the panel below it, update the trailing
/// submatrix.  Shared by [`ooc_potrf`] and the checkpointed driver,
/// parameterised by the kernel engine.  Tile loads and
/// write-backs (the I/O the out-of-core analysis counts) are identical
/// under every engine; only the in-memory tile arithmetic changes.
pub(crate) fn factor_panel_with<B: IoBackend>(
    fm: &mut B,
    cache: &mut TileCache,
    k: usize,
    kernel: KernelImpl,
) -> Result<(), OocError> {
    let nb = fm.nb();
    let b = fm.b();
    let n = fm.n();
    fm.begin_panel(k);

    // Factor the diagonal tile (edge tiles are zero-padded on disk;
    // factor only the live part).
    let mut diag = cache.get(fm, k, k)?;
    let live = (n - k * b).min(b);
    let mut live_part = diag.submatrix(0, 0, live, live);
    if let Err(MatrixError::NotSpd { pivot, value }) = kernel.potf2(&mut live_part) {
        return Err(OocError::NotSpd {
            pivot: k * b + pivot,
            value,
        });
    }
    diag.set_submatrix(0, 0, &live_part);
    cache.put(fm, k, k, diag.clone())?;

    // Panel solve.
    for i in (k + 1)..nb {
        let mut t = cache.get(fm, i, k)?;
        // Solve against the live part of the diagonal tile; padded
        // columns of the tile are zero and stay zero.
        let mut x = t.submatrix(0, 0, b, live);
        let l = diag.submatrix(0, 0, live, live);
        kernel.trsm_right_lower_transpose(&mut x, &l);
        t.set_submatrix(0, 0, &x);
        cache.put(fm, i, k, t)?;
    }

    // Trailing update.
    for j in (k + 1)..nb {
        let lj = cache.get(fm, j, k)?;
        for i in j..nb {
            let li = cache.get(fm, i, k)?;
            let mut t = cache.get(fm, i, j)?;
            kernel.gemm_nt(&mut t, -1.0, &li, &lj);
            cache.put(fm, i, j, t)?;
        }
    }
    Ok(())
}

/// Out-of-core blocked right-looking Cholesky on the backing store,
/// with a cache of `capacity_tiles` tiles.  Returns the I/O-visible
/// error or the factorization error.
///
/// On [`OocError::NotSpd`] the cache is flushed before the
/// error is returned, so the file holds every update that completed
/// before the failing pivot (a partially factored matrix, documented —
/// not a torn one).
pub fn ooc_potrf<B: IoBackend>(fm: &mut B, capacity_tiles: usize) -> Result<(), OocError> {
    ooc_potrf_with(fm, capacity_tiles, KernelImpl::Reference)
}

/// [`ooc_potrf`] with an explicit kernel engine (same tile I/O, same
/// bits; see [`cholcomm_matrix::kernels_fast`]).
pub fn ooc_potrf_with<B: IoBackend>(
    fm: &mut B,
    capacity_tiles: usize,
    kernel: KernelImpl,
) -> Result<(), OocError> {
    let nb = fm.nb();
    let mut cache = TileCache::new(capacity_tiles);
    for k in 0..nb {
        match factor_panel_with(fm, &mut cache, k, kernel) {
            Ok(()) => {}
            Err(e @ OocError::NotSpd { .. }) => {
                // Leave the file in a well-defined state: everything up
                // to the bad pivot is written back.  A flush failure
                // outranks the pivot failure.
                cache.flush(fm)?;
                return Err(e);
            }
            Err(e) => return Err(e),
        }
    }
    cache.flush(fm)?;
    // Integrity scrub: a checksumming backend re-verifies every stored
    // tile, so a corruption landing after a tile's last algorithmic
    // read still cannot escape into the output.  Unhealable corruption
    // surfaces as an I/O error here; recovering from *that* needs the
    // checkpointed driver.
    fm.scrub()?;
    Ok(())
}

/// Errors from the out-of-core factorization.
#[derive(Debug)]
pub enum OocError {
    /// Not positive definite at the given global pivot.
    NotSpd {
        /// 0-based failing pivot.
        pivot: usize,
        /// The non-positive pivot value.
        value: f64,
    },
    /// Underlying file I/O failed.
    Io(std::io::Error),
    /// A numerical kernel failed for a reason other than definiteness.
    Matrix(MatrixError),
    /// A previous dirty write-back failed; cached state no longer
    /// matches the file and all further cache operations are refused.
    CachePoisoned,
}

impl From<std::io::Error> for OocError {
    fn from(e: std::io::Error) -> Self {
        OocError::Io(e)
    }
}

impl From<MatrixError> for OocError {
    fn from(e: MatrixError) -> Self {
        match e {
            MatrixError::NotSpd { pivot, value } => OocError::NotSpd { pivot, value },
            other => OocError::Matrix(other),
        }
    }
}

impl std::fmt::Display for OocError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            OocError::NotSpd { pivot, value } => {
                write!(f, "not positive definite at pivot {pivot} (value {value})")
            }
            OocError::Io(e) => write!(f, "I/O error: {e}"),
            OocError::Matrix(e) => write!(f, "matrix error: {e}"),
            OocError::CachePoisoned => {
                write!(f, "tile cache poisoned by an earlier failed write-back")
            }
        }
    }
}

impl std::error::Error for OocError {
    fn source(&self) -> Option<&(dyn std::error::Error + 'static)> {
        match self {
            OocError::Io(e) => Some(e),
            OocError::Matrix(e) => Some(e),
            _ => None,
        }
    }
}

#[cfg(test)]
#[allow(clippy::unwrap_used)]
mod tests {
    use super::*;
    use crate::filemat::{scratch_path, FileMatrix};
    use cholcomm_matrix::{kernels, norms, spd};

    #[test]
    fn ooc_factors_match_in_memory() {
        let mut rng = spd::test_rng(195);
        for (n, b, cap) in [(32usize, 8usize, 4usize), (24, 8, 3), (40, 8, 6)] {
            let a = spd::random_spd(n, &mut rng);
            let path = scratch_path("factor");
            let mut fm = FileMatrix::create(&path, &a, b).unwrap();
            ooc_potrf(&mut fm, cap).unwrap();
            let got = fm.to_matrix().unwrap().lower_triangle().unwrap();
            let mut want = a.clone();
            kernels::potf2(&mut want).unwrap();
            let want = want.lower_triangle().unwrap();
            let diff = norms::max_abs_diff(&got, &want);
            assert!(diff < 1e-9, "n={n} b={b} cap={cap}: {diff}");
        }
    }

    #[test]
    fn smaller_cache_means_more_real_io() {
        let mut rng = spd::test_rng(196);
        let n = 64;
        let b = 8;
        let a = spd::random_spd(n, &mut rng);

        let mut io = Vec::new();
        for cap in [3usize, 8, 40] {
            let path = scratch_path(&format!("cap{cap}"));
            let mut fm = FileMatrix::create(&path, &a, b).unwrap();
            ooc_potrf(&mut fm, cap).unwrap();
            io.push(fm.stats().bytes_read);
        }
        assert!(io[0] > io[1], "cap 3 reads {} > cap 8 reads {}", io[0], io[1]);
        assert!(io[1] > io[2], "cap 8 reads {} > cap 40 reads {}", io[1], io[2]);
        // With the whole matrix cached, reads are compulsory only.
        let tiles = (n / b) * (n / b);
        assert!(io[2] <= (tiles * b * b * 8) as u64);
    }

    #[test]
    fn seeks_follow_the_latency_story() {
        // Block-contiguous on disk: tile moves are one seek + one stream,
        // so seeks track the simulator's message counts.
        let mut rng = spd::test_rng(197);
        let n = 48;
        let a = spd::random_spd(n, &mut rng);
        let path = scratch_path("seeks");
        let mut fm = FileMatrix::create(&path, &a, 8).unwrap();
        ooc_potrf(&mut fm, 4).unwrap();
        let s = fm.stats();
        assert!(
            s.seeks <= s.reads + s.writes + 1,
            "each transfer is at most one seek: {s:?}"
        );
        assert!(s.reads > 0 && s.writes > 0);
    }

    #[test]
    fn indefinite_detected_through_the_file() {
        let mut m = cholcomm_matrix::Matrix::<f64>::identity(16);
        m[(9, 9)] = -4.0;
        let path = scratch_path("indef");
        let mut fm = FileMatrix::create(&path, &m, 4).unwrap();
        match ooc_potrf(&mut fm, 4) {
            Err(OocError::NotSpd { pivot, value }) => {
                assert_eq!(pivot, 9);
                assert!(value < 0.0);
            }
            other => panic!("expected pivot failure, got {other:?}"),
        }
    }

    #[test]
    fn indefinite_leaves_completed_updates_on_disk() {
        // The documented guarantee: on a pivot failure the cache is
        // flushed, so the first panels (factored before the bad pivot)
        // are on disk, not lost in RAM.
        let n = 16;
        let mut m = cholcomm_matrix::Matrix::<f64>::identity(n);
        for i in 0..n {
            m[(i, i)] = 4.0;
        }
        m[(12, 12)] = -1.0; // tile (3,3) with b=4 goes bad
        let path = scratch_path("indef-flush");
        let mut fm = FileMatrix::create(&path, &m, 4).unwrap();
        match ooc_potrf(&mut fm, 3) {
            Err(OocError::NotSpd { pivot, .. }) => assert_eq!(pivot, 12),
            other => panic!("expected pivot failure, got {other:?}"),
        }
        let back = fm.to_matrix().unwrap();
        assert_eq!(back[(0, 0)], 2.0, "first diagonal tile was factored and flushed");
    }

    #[test]
    fn ragged_sizes_work() {
        let mut rng = spd::test_rng(198);
        let a = spd::random_spd(21, &mut rng);
        let path = scratch_path("ragged");
        let mut fm = FileMatrix::create(&path, &a, 8).unwrap();
        ooc_potrf(&mut fm, 5).unwrap();
        let got = fm.to_matrix().unwrap();
        let r = norms::cholesky_residual(&a, &got);
        assert!(r < norms::residual_tolerance(21), "residual {r}");
    }

    #[test]
    fn poisoned_cache_refuses_everything() {
        use crate::backend::FaultyBackend;
        use cholcomm_faults::{DiskFault, FaultPlan};

        let mut rng = spd::test_rng(199);
        let a = spd::random_spd(16, &mut rng);
        let path = scratch_path("poison");
        let fm = FileMatrix::create(&path, &a, 8).unwrap();
        // Ops 0..=2 are the three cache-fill reads; op 3 is the first
        // flush write-back.  Fail it on every attempt up to the cap so
        // the flush error is permanent.
        let mut builder = FaultPlan::builder(0).max_fault_attempts(3);
        for attempt in 1..=4 {
            builder = builder.inject_disk_fault(3, attempt, DiskFault::TransientEio);
        }
        let mut fb = FaultyBackend::new(fm, builder.build());
        let mut cache = TileCache::new(3);
        for (bi, bj) in [(0, 0), (1, 0), (0, 1)] {
            let t = cache.get(&mut fb, bi, bj).unwrap();
            cache.put(&mut fb, bi, bj, t).unwrap();
        }
        assert!(matches!(cache.flush(&mut fb), Err(OocError::Io(_))));
        assert!(cache.is_poisoned());
        assert!(matches!(
            cache.get(&mut fb, 0, 0),
            Err(OocError::CachePoisoned)
        ));
        assert!(matches!(
            cache.flush(&mut fb),
            Err(OocError::CachePoisoned)
        ));
        cache.clear();
        assert!(!cache.is_poisoned(), "clear() is the recovery path");
    }
}
