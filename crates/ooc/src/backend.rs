//! Tile-storage abstraction and the flaky-disk wrapper.
//!
//! [`IoBackend`] is what the out-of-core factorization actually talks
//! to: a tile store with honest I/O accounting.  [`FileMatrix`] is the
//! real implementation; [`FaultyBackend`] wraps any backend and injects
//! transient `EIO`s, short reads, and crash points from a deterministic
//! [`FaultPlan`], recovering transient failures itself with bounded
//! retry and exponential backoff — so callers above see a disk that is
//! slow and flaky but, within the plan's attempt cap, never actually
//! loses data.

use crate::filemat::{FileMatrix, IoStats};
use cholcomm_faults::{CrashPoint, DiskFault, DiskOp, FaultPlan, FaultStats};
use cholcomm_matrix::Matrix;
use std::path::Path;
use std::time::Duration;

/// A deterministic per-operation disk-latency model, advertised by an
/// [`IoBackend`] through [`IoBackend::latency_model`].
///
/// The model is *descriptive*: backends do not sleep it themselves.
/// Consumers decide what to do with it — the OOC pipeline prices it in
/// its modeled-time simulator (and optionally sleeps it on the I/O
/// workers), and [`SleepBackend`] turns any backend into one that
/// really pays the cost inline, for honest synchronous baselines.
/// Keeping the charge out of the backend keeps every existing test and
/// recorded schedule byte-identical: latency changes *when* results
/// arrive, never *what* they are.
///
/// Per-op cost is `base + jitter`, where base is `read_us`/`write_us`
/// by operation kind and jitter is drawn uniformly from `0..=jitter_us`
/// by hashing `(seed, kind, op_index)` — the same seeded-decision
/// discipline every fault-plan choice uses, so a given op index costs
/// the same on every run.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct LatencyModel {
    /// Base cost of one tile read, µs.
    pub read_us: u64,
    /// Base cost of one tile write, µs.
    pub write_us: u64,
    /// Upper bound of the uniform per-op jitter, µs.
    pub jitter_us: u64,
    /// Seed for the jitter draws.
    pub seed: u64,
}

impl Default for LatencyModel {
    fn default() -> Self {
        Self::none()
    }
}

impl LatencyModel {
    /// The free disk: every operation costs nothing.
    pub fn none() -> Self {
        LatencyModel {
            read_us: 0,
            write_us: 0,
            jitter_us: 0,
            seed: 0,
        }
    }

    /// Every read and write costs exactly `us` microseconds.
    pub fn uniform(us: u64) -> Self {
        LatencyModel {
            read_us: us,
            write_us: us,
            jitter_us: 0,
            seed: 0,
        }
    }

    /// Add seeded uniform jitter in `0..=jitter_us` to every operation.
    pub fn with_jitter(mut self, jitter_us: u64, seed: u64) -> Self {
        self.jitter_us = jitter_us;
        self.seed = seed;
        self
    }

    /// Does this model ever charge anything?
    pub fn is_zero(&self) -> bool {
        self.read_us == 0 && self.write_us == 0 && self.jitter_us == 0
    }

    /// The cost of the `op_index`-th operation of kind `op`, µs.  Pure
    /// function of the model and the op site.
    pub fn sample(&self, op: DiskOp, op_index: u64) -> u64 {
        let (base, tag) = match op {
            DiskOp::Read => (self.read_us, 0x4C52u64),
            DiskOp::Write => (self.write_us, 0x4C57u64),
        };
        if self.jitter_us == 0 {
            return base;
        }
        // SplitMix64 over (seed, kind, index): the workspace's stable,
        // dependency-free mixer.
        let mut state = self.seed ^ tag.rotate_left(32) ^ op_index;
        let mut z = || {
            state = state.wrapping_add(0x9E3779B97F4A7C15);
            let mut v = state;
            v = (v ^ (v >> 30)).wrapping_mul(0xBF58476D1CE4E5B9);
            v = (v ^ (v >> 27)).wrapping_mul(0x94D049BB133111EB);
            v ^ (v >> 31)
        };
        let h = z() ^ z();
        base + h % (self.jitter_us + 1)
    }
}

/// A store of `b x b` matrix tiles with I/O accounting — the "slow
/// memory" the blocked algorithm moves tiles in and out of.
pub trait IoBackend {
    /// Matrix order.
    fn n(&self) -> usize;
    /// Tile size.
    fn b(&self) -> usize;
    /// Tile-grid dimension.
    fn nb(&self) -> usize;
    /// Read tile `(bi, bj)`.
    fn read_tile(&mut self, bi: usize, bj: usize) -> std::io::Result<Matrix<f64>>;
    /// Write tile `(bi, bj)`.
    fn write_tile(&mut self, bi: usize, bj: usize, tile: &Matrix<f64>) -> std::io::Result<()>;
    /// Accumulated I/O counters for *successful* transfers.
    fn stats(&self) -> IoStats;
    /// Path of the backing storage, when there is one (checkpointing
    /// needs it to snapshot the data file).
    fn path(&self) -> Option<&Path>;
    /// Whether the fault plan kills the process after panel `k`
    /// completes.  The perfect disk never crashes.
    fn crash_after_panel(&self, _k: usize) -> bool {
        false
    }
    /// The backing storage was rewritten externally (checkpoint
    /// restore); drop any cursor or position state.
    fn storage_restored(&mut self) {}
    /// Fault/recovery tallies, all zero for a perfect disk.
    fn fault_stats(&self) -> FaultStats {
        FaultStats::new()
    }
    /// Panel step `k` is about to run.  Integrity layers use this to
    /// schedule at-rest corruptions and to timestamp verification work;
    /// plain storage ignores it.
    fn begin_panel(&mut self, _k: usize) {}
    /// Durability barrier: on success, every tile written so far has
    /// reached stable storage and will survive a power cut.  The commit
    /// protocol relies on this ordering; storage with no volatile buffer
    /// (the in-memory test doubles) has nothing to flush.
    fn barrier(&mut self) -> std::io::Result<()> {
        Ok(())
    }
    /// Verify the integrity of every stored tile, healing what the
    /// encoding can correct.  Storage without integrity metadata has
    /// nothing to check.  An unhealable tile surfaces as
    /// [`std::io::ErrorKind::InvalidData`].
    fn scrub(&mut self) -> std::io::Result<()> {
        Ok(())
    }
    /// The per-operation latency this storage charges.  Advertised, not
    /// enforced — see [`LatencyModel`].  The free default keeps every
    /// existing backend and test unchanged.
    fn latency_model(&self) -> LatencyModel {
        LatencyModel::none()
    }
}

impl IoBackend for FileMatrix {
    fn n(&self) -> usize {
        FileMatrix::n(self)
    }
    fn b(&self) -> usize {
        FileMatrix::b(self)
    }
    fn nb(&self) -> usize {
        FileMatrix::nb(self)
    }
    fn read_tile(&mut self, bi: usize, bj: usize) -> std::io::Result<Matrix<f64>> {
        FileMatrix::read_tile(self, bi, bj)
    }
    fn write_tile(&mut self, bi: usize, bj: usize, tile: &Matrix<f64>) -> std::io::Result<()> {
        FileMatrix::write_tile(self, bi, bj, tile)
    }
    fn stats(&self) -> IoStats {
        FileMatrix::stats(self)
    }
    fn path(&self) -> Option<&Path> {
        Some(FileMatrix::path(self))
    }
    fn storage_restored(&mut self) {
        self.invalidate_cursor();
    }
    fn barrier(&mut self) -> std::io::Result<()> {
        FileMatrix::barrier(self)
    }
    fn latency_model(&self) -> LatencyModel {
        self.latency()
    }
}

/// A flaky disk: wraps a backend and injects the plan's disk faults,
/// recovering transients with bounded retry and exponential backoff.
///
/// Operations are numbered globally (reads and writes share the
/// counter), so a plan's schedule is a pure function of the access
/// sequence — deterministic for a deterministic algorithm.  Once the
/// plan's crash point is reached, every subsequent operation fails
/// permanently with [`std::io::ErrorKind::Other`] (the process is
/// "dead"); recovery from that is the checkpoint layer's job, not ours.
#[derive(Debug)]
pub struct FaultyBackend<B: IoBackend> {
    inner: B,
    plan: FaultPlan,
    /// Global operation index (successful or not, reads and writes).
    ops: u64,
    crashed: bool,
    stats: FaultStats,
    /// Base backoff before the second attempt; doubles per retry.
    backoff_base: Duration,
}

impl<B: IoBackend> FaultyBackend<B> {
    /// Wrap `inner` under `plan`.
    pub fn new(inner: B, plan: FaultPlan) -> Self {
        FaultyBackend {
            inner,
            plan,
            ops: 0,
            crashed: false,
            stats: FaultStats::new(),
            backoff_base: Duration::from_micros(50),
        }
    }

    /// The wrapped backend.
    pub fn inner(&self) -> &B {
        &self.inner
    }

    /// The wrapped backend, mutably (e.g. to flush or snapshot it).
    pub fn inner_mut(&mut self) -> &mut B {
        &mut self.inner
    }

    /// Unwrap.
    pub fn into_inner(self) -> B {
        self.inner
    }

    /// Disk operations attempted so far (including faulted attempts).
    pub fn ops(&self) -> u64 {
        self.ops
    }

    /// Has the plan's crash point fired?
    pub fn crashed(&self) -> bool {
        self.crashed
    }

    fn crash_error() -> std::io::Error {
        std::io::Error::other("simulated crash: process killed by fault plan")
    }

    /// Run one logical tile operation with retry.  `op_index` is
    /// consumed per *logical* operation: retries of the same operation
    /// share it, so the plan's per-op schedule is stable.
    fn with_retry<T>(
        &mut self,
        op: DiskOp,
        mut f: impl FnMut(&mut B) -> std::io::Result<T>,
    ) -> std::io::Result<T> {
        if self.crashed {
            return Err(Self::crash_error());
        }
        if let Some(CrashPoint::AfterDiskOps(k)) = self.plan.crash_point() {
            if self.ops >= k {
                self.crashed = true;
                return Err(Self::crash_error());
            }
        }
        let op_index = self.ops;
        self.ops += 1;
        let max_attempts = self.plan.max_fault_attempts() + 1;
        let mut attempt: u32 = 1;
        loop {
            if attempt > 1 {
                self.stats.disk_retries += 1;
                // Exponential backoff: 50us, 100us, ... capped so a
                // heavily faulted test run stays fast.
                let exp = (attempt - 2).min(6);
                std::thread::sleep(self.backoff_base * (1 << exp));
            }
            match self.plan.disk_fault(op, op_index, attempt) {
                Some(DiskFault::TransientEio) => {
                    self.stats.disk_transients += 1;
                    if attempt >= max_attempts {
                        return Err(std::io::Error::other(
                            "injected EIO persisted past the retry budget",
                        ));
                    }
                }
                Some(DiskFault::ShortRead) => {
                    self.stats.disk_short_reads += 1;
                    if attempt >= max_attempts {
                        return Err(std::io::Error::new(
                            std::io::ErrorKind::UnexpectedEof,
                            "injected short read persisted past the retry budget",
                        ));
                    }
                }
                None => return f(&mut self.inner),
            }
            attempt += 1;
        }
    }
}

impl<B: IoBackend> IoBackend for FaultyBackend<B> {
    fn n(&self) -> usize {
        self.inner.n()
    }
    fn b(&self) -> usize {
        self.inner.b()
    }
    fn nb(&self) -> usize {
        self.inner.nb()
    }
    fn read_tile(&mut self, bi: usize, bj: usize) -> std::io::Result<Matrix<f64>> {
        self.with_retry(DiskOp::Read, |b| b.read_tile(bi, bj))
    }
    fn write_tile(&mut self, bi: usize, bj: usize, tile: &Matrix<f64>) -> std::io::Result<()> {
        self.with_retry(DiskOp::Write, |b| b.write_tile(bi, bj, tile))
    }
    fn stats(&self) -> IoStats {
        self.inner.stats()
    }
    fn path(&self) -> Option<&Path> {
        self.inner.path()
    }
    fn crash_after_panel(&self, k: usize) -> bool {
        !self.crashed && self.plan.crash_point() == Some(CrashPoint::AfterPanel(k))
    }
    fn storage_restored(&mut self) {
        self.inner.storage_restored();
    }
    fn fault_stats(&self) -> FaultStats {
        let mut s = self.stats;
        s.merge(&self.inner.fault_stats());
        s
    }
    fn begin_panel(&mut self, k: usize) {
        self.inner.begin_panel(k);
    }
    fn scrub(&mut self) -> std::io::Result<()> {
        self.inner.scrub()
    }
    fn barrier(&mut self) -> std::io::Result<()> {
        // A dead process cannot fsync, but a live one always can: the
        // barrier is not a tile transfer, so it does not consume an
        // operation index (keeping `AfterDiskOps` schedules stable).
        if self.crashed {
            return Err(Self::crash_error());
        }
        self.inner.barrier()
    }
    fn latency_model(&self) -> LatencyModel {
        // A latency schedule on the fault plan overrides whatever the
        // wrapped storage advertises; the plan's seed drives the jitter
        // so latency is deterministic like every other plan decision.
        match self.plan.disk_latency() {
            Some(l) => LatencyModel {
                read_us: l.read_us,
                write_us: l.write_us,
                jitter_us: l.jitter_us,
                seed: self.plan.seed(),
            },
            None => self.inner.latency_model(),
        }
    }
}

/// A backend that really *pays* its advertised latency: every read and
/// write sleeps the wrapped backend's [`LatencyModel`] cost inline,
/// then reports a free model so nobody charges the same microseconds
/// twice.
///
/// This is the honest synchronous baseline for the overlap benches: the
/// sequential OOC driver on a `SleepBackend` experiences disk latency
/// exactly where the model says it occurs, on the one compute thread.
/// The pipeline must *not* be wrapped in one — it pays the model on its
/// I/O workers itself, which is the entire point.
#[derive(Debug)]
pub struct SleepBackend<B: IoBackend> {
    inner: B,
    model: LatencyModel,
    /// Global op index for jitter sampling, shared by reads and writes
    /// (mirrors [`FaultyBackend`]'s numbering).
    ops: u64,
}

impl<B: IoBackend> SleepBackend<B> {
    /// Wrap `inner`, sleeping its advertised model on every operation.
    pub fn new(inner: B) -> Self {
        let model = inner.latency_model();
        SleepBackend {
            inner,
            model,
            ops: 0,
        }
    }

    /// Unwrap.
    pub fn into_inner(self) -> B {
        self.inner
    }

    fn pay(&mut self, op: DiskOp) {
        let us = self.model.sample(op, self.ops);
        self.ops += 1;
        if us > 0 {
            std::thread::sleep(Duration::from_micros(us));
        }
    }
}

impl<B: IoBackend> IoBackend for SleepBackend<B> {
    fn n(&self) -> usize {
        self.inner.n()
    }
    fn b(&self) -> usize {
        self.inner.b()
    }
    fn nb(&self) -> usize {
        self.inner.nb()
    }
    fn read_tile(&mut self, bi: usize, bj: usize) -> std::io::Result<Matrix<f64>> {
        self.pay(DiskOp::Read);
        self.inner.read_tile(bi, bj)
    }
    fn write_tile(&mut self, bi: usize, bj: usize, tile: &Matrix<f64>) -> std::io::Result<()> {
        self.pay(DiskOp::Write);
        self.inner.write_tile(bi, bj, tile)
    }
    fn stats(&self) -> IoStats {
        self.inner.stats()
    }
    fn path(&self) -> Option<&Path> {
        self.inner.path()
    }
    fn crash_after_panel(&self, k: usize) -> bool {
        self.inner.crash_after_panel(k)
    }
    fn storage_restored(&mut self) {
        self.inner.storage_restored();
    }
    fn fault_stats(&self) -> FaultStats {
        self.inner.fault_stats()
    }
    fn begin_panel(&mut self, k: usize) {
        self.inner.begin_panel(k);
    }
    fn scrub(&mut self) -> std::io::Result<()> {
        self.inner.scrub()
    }
    fn barrier(&mut self) -> std::io::Result<()> {
        self.inner.barrier()
    }
    fn latency_model(&self) -> LatencyModel {
        // Already paid inline; advertising it again would double-charge.
        LatencyModel::none()
    }
}

#[cfg(test)]
#[allow(clippy::unwrap_used)]
mod tests {
    use super::*;
    use crate::filemat::scratch_path;
    use cholcomm_matrix::spd;

    fn small_fm(tag: &str, n: usize, b: usize) -> FileMatrix {
        let mut rng = spd::test_rng(210);
        let a = spd::random_spd(n, &mut rng);
        FileMatrix::create(&scratch_path(tag), &a, b).unwrap()
    }

    #[test]
    fn transients_are_retried_transparently() {
        let fm = small_fm("retry", 16, 8);
        let plan = FaultPlan::builder(5)
            .inject_disk_fault(0, 1, DiskFault::TransientEio)
            .inject_disk_fault(0, 2, DiskFault::TransientEio)
            .inject_disk_fault(2, 1, DiskFault::ShortRead)
            .build();
        let mut fb = FaultyBackend::new(fm, plan);
        let t0 = fb.read_tile(0, 0).unwrap(); // op 0: two EIOs, then fine
        let t1 = fb.read_tile(0, 0).unwrap(); // op 1: clean
        assert_eq!(t0, t1);
        fb.write_tile(0, 0, &t0).unwrap(); // op 2: one short read... on a write? no: injected directly
        let s = fb.fault_stats();
        assert_eq!(s.disk_transients, 2);
        assert_eq!(s.disk_short_reads, 1);
        assert_eq!(s.disk_retries, 3);
    }

    #[test]
    fn rate_based_faults_never_leak_to_the_caller() {
        let fm = small_fm("rates", 32, 8);
        let plan = FaultPlan::builder(6)
            .disk_transient_rate(0.3)
            .disk_short_read_rate(0.1)
            .build();
        let mut fb = FaultyBackend::new(fm, plan);
        for bj in 0..4 {
            for bi in 0..4 {
                let t = fb.read_tile(bi, bj).unwrap();
                fb.write_tile(bi, bj, &t).unwrap();
            }
        }
        assert!(fb.fault_stats().disk_faults() > 0, "plan should have bitten");
        assert_eq!(fb.stats().reads, 16, "only successful transfers counted");
        assert_eq!(fb.stats().writes, 16);
    }

    #[test]
    fn crash_point_kills_every_subsequent_op() {
        let fm = small_fm("crash", 16, 8);
        let plan = FaultPlan::builder(7)
            .crash_at(CrashPoint::AfterDiskOps(3))
            .build();
        let mut fb = FaultyBackend::new(fm, plan);
        for _ in 0..3 {
            fb.read_tile(0, 0).unwrap();
        }
        assert!(fb.read_tile(0, 0).is_err(), "op 3 hits the crash point");
        assert!(fb.crashed());
        assert!(fb.read_tile(1, 1).is_err(), "dead processes stay dead");
    }

    #[test]
    fn latency_model_is_deterministic_and_bounded() {
        let m = LatencyModel::uniform(100).with_jitter(40, 9);
        for i in 0..200 {
            let r = m.sample(DiskOp::Read, i);
            assert!((100..=140).contains(&r), "{r}");
            assert_eq!(r, m.sample(DiskOp::Read, i), "same site, same cost");
        }
        // Reads and writes draw independent jitter at the same index.
        assert!((0..50).any(|i| m.sample(DiskOp::Read, i) != m.sample(DiskOp::Write, i)));
        assert_eq!(LatencyModel::none().sample(DiskOp::Write, 3), 0);
        assert!(LatencyModel::none().is_zero());
        assert!(!m.is_zero());
    }

    #[test]
    fn plan_latency_overrides_the_wrapped_storage() {
        let fm = small_fm("lat", 16, 8);
        let plan = FaultPlan::builder(11).disk_latency(100, 30, 5).build();
        assert!(plan.is_clean(), "latency-only plans stay clean");
        let fb = FaultyBackend::new(fm, plan);
        let m = fb.latency_model();
        assert_eq!((m.read_us, m.write_us, m.jitter_us), (100, 30, 5));
        assert_eq!(m.seed, 11);
        // Without a plan schedule, the inner backend's model shines through.
        let mut fm2 = small_fm("lat2", 16, 8);
        fm2.set_latency_model(LatencyModel::uniform(7));
        let fb2 = FaultyBackend::new(fm2, FaultPlan::builder(12).build());
        assert_eq!(fb2.latency_model(), LatencyModel::uniform(7));
    }

    #[test]
    fn sleep_backend_pays_and_then_reports_free() {
        let mut fm = small_fm("sleep", 16, 8);
        fm.set_latency_model(LatencyModel::uniform(200));
        let mut sb = SleepBackend::new(fm);
        assert!(sb.latency_model().is_zero(), "cost must not be charged twice");
        let t0 = std::time::Instant::now();
        let t = sb.read_tile(0, 0).unwrap();
        sb.write_tile(0, 0, &t).unwrap();
        assert!(
            t0.elapsed() >= Duration::from_micros(400),
            "two ops at 200us each must take >= 400us"
        );
    }

    #[test]
    fn fault_schedule_is_deterministic() {
        let run = || {
            let fm = small_fm("det", 32, 8);
            let plan = FaultPlan::builder(8).disk_transient_rate(0.25).build();
            let mut fb = FaultyBackend::new(fm, plan);
            for bj in 0..4 {
                for bi in 0..4 {
                    fb.read_tile(bi, bj).unwrap();
                }
            }
            fb.fault_stats()
        };
        assert_eq!(run(), run());
    }
}
