//! Checksum-verified tile storage: every tile read through the
//! [`IoBackend`] is checked against a Huang–Abraham checksum kept
//! beside the store, so silent at-rest corruption (the fault plan's
//! [`BitFlip`]s) is detected the moment the data re-enters fast memory.
//!
//! A single corrupted element is located and XOR-corrected bit-exactly
//! before the caller ever sees the tile.  A multi-element corruption is
//! unhealable from one checksum pair and surfaces as
//! [`std::io::ErrorKind::InvalidData`]; the checkpointed driver
//! ([`crate::checkpoint::ooc_potrf_checkpointed`]) answers it by
//! restoring the last panel checkpoint and retrying the panel — the
//! recompute-from-checkpoint fallback.  Because a flip strikes exactly
//! once (the plan is deterministic and applied flips are remembered
//! across restores), the retried panel runs clean and the final factor
//! is **bit-identical** to a fault-free run's.
//!
//! Corruption timing follows the paper's out-of-core framing: at the
//! start of panel `k` ([`IoBackend::begin_panel`]) the plan's step-`k`
//! flips are scheduled against the *at-rest* copy of their target tile,
//! and land on the next read of that tile from slow memory — a cached
//! in-RAM copy is not affected by disk rot, exactly like DRAM vs. a
//! flaky SSD.  A final [`IoBackend::scrub`] pass re-reads every tile so
//! a flip on a tile the algorithm had already finished with still
//! cannot escape into the output.
//!
//! All verification work is tallied in [`AbftStats`], separate from the
//! byte/seek counts of the underlying storage ([`crate::IoStats`]) —
//! scrub and heal traffic is real I/O and is *also* visible there, but
//! the checksum words/flops that the clean algorithm never moves are
//! only here.

use crate::backend::IoBackend;
use crate::filemat::IoStats;
use cholcomm_faults::{BitFlip, FaultPlan, FaultStats};
use cholcomm_matrix::abft::{verify_and_heal, AbftStats, TileChecksum, TileHealth};
use cholcomm_matrix::Matrix;
use std::collections::{HashMap, HashSet};
use std::path::Path;

type FlipKey = (usize, (usize, usize), (usize, usize), u64);

fn flip_key(f: &BitFlip) -> FlipKey {
    (f.step, f.tile, f.elem, f.mask)
}

/// A tile store whose every read is checksum-verified (and healed where
/// the encoding allows), wrapping any [`IoBackend`].
#[derive(Debug)]
pub struct AbftBackend<B: IoBackend> {
    inner: B,
    plan: FaultPlan,
    cks: HashMap<(usize, usize), TileChecksum>,
    /// Flips scheduled but not yet landed, per target tile.
    pending: HashMap<(usize, usize), Vec<BitFlip>>,
    /// Every flip ever queued — a flip strikes exactly once, even
    /// across checkpoint restores.
    queued: HashSet<FlipKey>,
    stats: AbftStats,
}

impl<B: IoBackend> AbftBackend<B> {
    /// Wrap `inner`, drawing silent-corruption events from `plan`.
    pub fn new(inner: B, plan: FaultPlan) -> Self {
        AbftBackend {
            inner,
            plan,
            cks: HashMap::new(),
            pending: HashMap::new(),
            queued: HashSet::new(),
            stats: AbftStats::new(),
        }
    }

    /// The wrapped backend.
    pub fn inner(&self) -> &B {
        &self.inner
    }

    /// The wrapped backend, mutably.
    pub fn inner_mut(&mut self) -> &mut B {
        &mut self.inner
    }

    /// Unwrap.
    pub fn into_inner(self) -> B {
        self.inner
    }

    /// ABFT work tallies accumulated so far.
    pub fn abft_stats(&self) -> AbftStats {
        self.stats
    }

    fn encode_if_missing(&mut self, key: (usize, usize), tile: &Matrix<f64>) {
        if !self.cks.contains_key(&key) {
            let ck = TileChecksum::of(tile);
            self.stats.encodes += 1;
            self.stats.checksum_words += ck.words();
            self.stats.checksum_flops += (tile.rows() * tile.cols()) as u64;
            self.cks.insert(key, ck);
        }
    }

    /// Read tile `key` from slow memory, land any scheduled corruption,
    /// and verify/heal before handing the tile to the caller.  *Every*
    /// read with a pre-existing checksum is verified, not just struck
    /// ones — the backend cannot know which reads are corrupted; that
    /// is the whole point.
    fn read_verified(&mut self, bi: usize, bj: usize) -> std::io::Result<Matrix<f64>> {
        let mut t = self.inner.read_tile(bi, bj)?;
        // Encode from the (clean, at-rest) data *before* corruption
        // lands — the checksum deliberately goes stale under a flip.
        let fresh = !self.cks.contains_key(&(bi, bj));
        self.encode_if_missing((bi, bj), &t);
        let flips = self.pending.remove(&(bi, bj)).unwrap_or_default();
        for f in &flips {
            let (i, j) = f.elem;
            t[(i, j)] = f64::from_bits(t[(i, j)].to_bits() ^ f.mask);
        }
        if fresh && flips.is_empty() {
            // The checksum was just computed from this very data;
            // verifying it against itself proves nothing.
            return Ok(t);
        }
        self.stats.verifications += 1;
        self.stats.checksum_flops += (t.rows() * t.cols()) as u64;
        let ck = self.cks.get(&(bi, bj)).expect("encoded above");
        match verify_and_heal(&mut t, ck) {
            TileHealth::Clean => Ok(t),
            TileHealth::Corrected { .. } => {
                self.stats.corrections += 1;
                Ok(t)
            }
            TileHealth::Unrecoverable { .. } => {
                self.stats.unrecoverable += 1;
                Err(std::io::Error::new(
                    std::io::ErrorKind::InvalidData,
                    format!("abft: unhealable multi-element corruption in tile ({bi}, {bj})"),
                ))
            }
        }
    }
}

impl<B: IoBackend> IoBackend for AbftBackend<B> {
    fn n(&self) -> usize {
        self.inner.n()
    }
    fn b(&self) -> usize {
        self.inner.b()
    }
    fn nb(&self) -> usize {
        self.inner.nb()
    }
    fn read_tile(&mut self, bi: usize, bj: usize) -> std::io::Result<Matrix<f64>> {
        self.read_verified(bi, bj)
    }
    fn write_tile(&mut self, bi: usize, bj: usize, tile: &Matrix<f64>) -> std::io::Result<()> {
        let ck = TileChecksum::of(tile);
        self.stats.checksum_updates += 1;
        self.stats.checksum_words += ck.words();
        self.stats.checksum_flops += (tile.rows() * tile.cols()) as u64;
        self.cks.insert((bi, bj), ck);
        self.inner.write_tile(bi, bj, tile)
    }
    fn stats(&self) -> IoStats {
        self.inner.stats()
    }
    fn path(&self) -> Option<&Path> {
        self.inner.path()
    }
    fn crash_after_panel(&self, k: usize) -> bool {
        self.inner.crash_after_panel(k)
    }
    fn storage_restored(&mut self) {
        // The file under us was rewritten (checkpoint restore): every
        // checksum is stale, re-encode lazily from the restored data.
        // `queued` survives — an already-landed flip must not strike the
        // restored copy a second time, or retries would loop forever.
        self.cks.clear();
        self.stats.restores += 1;
        self.inner.storage_restored();
    }
    fn fault_stats(&self) -> FaultStats {
        self.inner.fault_stats()
    }
    fn barrier(&mut self) -> std::io::Result<()> {
        // Checksums live in RAM; only the tile data needs flushing.
        self.inner.barrier()
    }
    fn begin_panel(&mut self, k: usize) {
        let (nb, b) = (self.nb(), self.b());
        for bj in 0..nb {
            for bi in bj..nb {
                let mut flips = self.plan.bit_flips_at(k, (bi, bj));
                // Tiles are stored zero-padded to b x b, so the whole
                // padded extent is a valid strike zone.
                if let Some(f) = self.plan.random_bit_flip(k, (bi, bj), b, b) {
                    flips.push(f);
                }
                for f in flips {
                    if f.elem.0 < b && f.elem.1 < b && self.queued.insert(flip_key(&f)) {
                        self.pending.entry((bi, bj)).or_default().push(f);
                    }
                }
            }
        }
        self.inner.begin_panel(k);
    }
    fn scrub(&mut self) -> std::io::Result<()> {
        let nb = self.nb();
        for bj in 0..nb {
            for bi in bj..nb {
                self.read_verified(bi, bj)?;
            }
        }
        self.inner.scrub()
    }
    fn latency_model(&self) -> crate::backend::LatencyModel {
        self.inner.latency_model()
    }
}

#[cfg(test)]
#[allow(clippy::unwrap_used)]
mod tests {
    use super::*;
    use crate::filemat::{scratch_path, FileMatrix};
    use crate::potrf::{ooc_potrf, OocError};
    use cholcomm_matrix::{norms, spd};

    fn reference_factor(a: &Matrix<f64>, b: usize, cap: usize, tag: &str) -> Matrix<f64> {
        let mut fm = FileMatrix::create(&scratch_path(tag), a, b).unwrap();
        ooc_potrf(&mut fm, cap).unwrap();
        fm.to_matrix().unwrap()
    }

    #[test]
    fn clean_run_through_abft_backend_is_bit_identical() {
        let mut rng = spd::test_rng(230);
        let a = spd::random_spd(32, &mut rng);
        let want = reference_factor(&a, 8, 4, "abft-clean-ref");
        let fm = FileMatrix::create(&scratch_path("abft-clean"), &a, 8).unwrap();
        let mut ab = AbftBackend::new(fm, FaultPlan::none());
        ooc_potrf(&mut ab, 4).unwrap();
        let got = ab.inner_mut().to_matrix().unwrap();
        assert_eq!(norms::max_abs_diff(&got, &want), 0.0);
        let s = ab.abft_stats();
        assert!(s.verifications > 0, "every re-read is verified");
        assert_eq!(s.corrections, 0, "nothing to heal on a clean disk");
        assert!(s.checksum_updates > 0, "every write re-encoded");
    }

    #[test]
    fn single_bit_flips_on_disk_are_healed_on_read() {
        let mut rng = spd::test_rng(231);
        let a = spd::random_spd(32, &mut rng);
        let want = reference_factor(&a, 8, 4, "abft-flip-ref");
        let plan = FaultPlan::builder(30)
            .inject_bit_flip(1, (2, 1), (3, 4), 1 << 52)
            .inject_bit_flip(2, (3, 2), (0, 0), 1 << 63)
            .build();
        let fm = FileMatrix::create(&scratch_path("abft-flip"), &a, 8).unwrap();
        let mut ab = AbftBackend::new(fm, plan);
        ooc_potrf(&mut ab, 3).unwrap();
        let got = ab.inner_mut().to_matrix().unwrap();
        assert_eq!(
            norms::max_abs_diff(&got, &want),
            0.0,
            "healed factor must be bit-identical"
        );
        assert_eq!(ab.abft_stats().corrections, 2);
        assert_eq!(ab.abft_stats().unrecoverable, 0);
    }

    #[test]
    fn multi_element_corruption_surfaces_as_invalid_data() {
        let mut rng = spd::test_rng(232);
        let a = spd::random_spd(24, &mut rng);
        let plan = FaultPlan::builder(31)
            .inject_bit_flip(1, (2, 1), (0, 0), 1 << 40)
            .inject_bit_flip(1, (2, 1), (5, 5), 1 << 41)
            .build();
        let fm = FileMatrix::create(&scratch_path("abft-multi"), &a, 8).unwrap();
        let mut ab = AbftBackend::new(fm, plan);
        match ooc_potrf(&mut ab, 3) {
            Err(OocError::Io(e)) => {
                assert_eq!(e.kind(), std::io::ErrorKind::InvalidData);
            }
            other => panic!("expected unrecoverable-corruption error, got {other:?}"),
        }
        assert_eq!(ab.abft_stats().unrecoverable, 1);
    }

    #[test]
    fn seeded_upsets_are_deterministic_and_absorbed() {
        let mut rng = spd::test_rng(233);
        let a = spd::random_spd(32, &mut rng);
        let want = reference_factor(&a, 8, 4, "abft-rate-ref");
        let run = |tag: &str| {
            let plan = FaultPlan::builder(32).bit_flip_rate(0.2).build();
            let fm = FileMatrix::create(&scratch_path(tag), &a, 8).unwrap();
            let mut ab = AbftBackend::new(fm, plan);
            ooc_potrf(&mut ab, 3).unwrap();
            (ab.inner_mut().to_matrix().unwrap(), ab.abft_stats())
        };
        let (m1, s1) = run("abft-rate-1");
        let (m2, s2) = run("abft-rate-2");
        assert!(s1.corrections > 0, "a 20% rate must strike somewhere");
        assert_eq!(s1, s2, "fault schedule is a pure function of the seed");
        assert_eq!(norms::max_abs_diff(&m1, &want), 0.0);
        assert_eq!(m1, m2);
    }
}
