#![warn(missing_docs)]
#![deny(clippy::unwrap_used)]
//! # cholcomm-ooc
//!
//! Out-of-core Cholesky with a *real* slow memory: the matrix lives in a
//! file, tiles move through a bounded in-RAM cache, and actual I/O —
//! bytes transferred and seeks issued — is counted by the storage layer
//! itself.
//!
//! This is the two-level model of the paper made concrete: "slow memory"
//! is the filesystem, "fast memory" is a tile cache holding at most
//! `capacity_tiles` blocks, a "message" is a contiguous file read/write
//! (block-contiguous tile layout, so one tile = one seek + one stream),
//! and the factorization is the LAPACK blocked schedule of Algorithm 4.
//! The measured seek counts land on the same `Theta(n^3 / M^{3/2})`
//! curve as the simulator's message counts — see the paper's [B08]
//! citation for the out-of-core framing.
//!
//! The disk can also be made *flaky* on purpose: [`FaultyBackend`]
//! injects transient `EIO`s, short reads, and crash points from a
//! deterministic `cholcomm_faults::FaultPlan`, recovering transients
//! with bounded retry, while [`checkpoint`] adds panel-granularity
//! checkpoint/restart so a killed factorization resumes from its last
//! completed panel with a bit-identical result.
//!
//! Silent *data* corruption is covered too: [`AbftBackend`] keeps a
//! Huang–Abraham checksum beside every tile and verifies each read,
//! healing single-element bit flips in place; unhealable multi-element
//! corruption rolls the run back to the last panel checkpoint.
//! Checkpoints themselves carry FNV integrity hashes, so truncated or
//! bit-rotted snapshots are rejected instead of resumed from.
//!
//! Durability is *tested*, not assumed: checkpoints commit through a
//! write-ahead journal (intent, data, barrier, commit, barrier — see
//! [`checkpoint`]), the [`IoBackend`] contract carries an explicit
//! `barrier()`, and [`crashsim`] runs whole checkpointed factorizations
//! on a simulated crash disk ([`SimMatrix`] over
//! `cholcomm_faults::SimDisk`), re-driving recovery at every crash
//! prefix of the recorded op schedule — including torn and reordered
//! un-barriered writes — and asserting bit-identical completion.

pub mod abft;
pub mod backend;
pub mod checkpoint;
pub mod crashsim;
pub mod filemat;
pub mod pipeline;
pub mod potrf;
pub mod simmat;

pub use abft::AbftBackend;
pub use backend::{FaultyBackend, IoBackend, LatencyModel, SleepBackend};
pub use checkpoint::{
    ooc_potrf_checkpointed, ooc_potrf_checkpointed_in, ooc_potrf_checkpointed_with, Checkpoint,
    CheckpointReport, CheckpointState, CommitDiscipline,
};
pub use crashsim::{
    explore_crash_sites, record_run, record_run_pipelined, CrashExploration, DriverKind,
    RecordedRun,
};
pub use filemat::{FileMatrix, IoStats};
pub use pipeline::{
    io_workers_from_env, model_overlap, ooc_potrf_checkpointed_pipelined,
    ooc_potrf_checkpointed_pipelined_in, ooc_potrf_pipelined, ooc_potrf_pipelined_with,
    ModelConfig, ModelReport, PipelineConfig, PipelineStats, DEFAULT_FLOPS_PER_US, WORKING_SET,
};
pub use potrf::{ooc_potrf, ooc_potrf_with, OocError, TileCache};
pub use simmat::SimMatrix;
