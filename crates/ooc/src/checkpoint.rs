//! Panel-granularity checkpoint/restart for the out-of-core Cholesky.
//!
//! After each completed panel the driver flushes the tile cache and
//! snapshots the backing file next to a small manifest recording the
//! next panel to run (and `n`, `b` for validation).  Both are written
//! atomically (temp file + rename), so a crash at any instant leaves
//! either the previous checkpoint or the new one — never a torn one.
//!
//! A *full* snapshot per checkpoint is deliberate: the factorization is
//! right-looking, so panel `k` mutates the whole trailing submatrix.
//! Restarting mid-panel from the live data file would double-apply
//! updates from tiles that were flushed before the crash; restoring the
//! last panel-boundary snapshot is the only state that is both cheap to
//! reason about and bitwise reproducible.  Checkpoint I/O is charged to
//! its own counters ([`CheckpointReport`]), not to the algorithm's
//! [`IoStats`](crate::IoStats), and is not subject to tile-level fault
//! injection — the fault model targets the data path, recovery targets
//! the recovery path.

use crate::backend::IoBackend;
use crate::potrf::{factor_panel_with, OocError, TileCache};
use cholcomm_matrix::KernelImpl;
use std::io::{Read, Write};
use std::path::{Path, PathBuf};

const MANIFEST_MAGIC: &str = "cholcomm-ooc-checkpoint v2";

/// FNV-1a over a byte string: the checkpoint integrity hash.  Not
/// cryptographic — it guards against truncation and bit rot, the same
/// threat model as the tile checksums.
fn fnv1a(bytes: &[u8]) -> u64 {
    let mut h: u64 = 0xcbf2_9ce4_8422_2325;
    for &b in bytes {
        h ^= u64::from(b);
        h = h.wrapping_mul(0x0000_0100_0000_01b3);
    }
    h
}

/// A checkpoint location: `<prefix>.data` holds the matrix snapshot,
/// `<prefix>.manifest` the restart metadata.
#[derive(Debug, Clone)]
pub struct Checkpoint {
    data_path: PathBuf,
    manifest_path: PathBuf,
}

/// Parsed manifest contents.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct CheckpointState {
    /// First panel that still needs to run.
    pub next_panel: usize,
    /// Matrix order the snapshot belongs to.
    pub n: usize,
    /// Tile size the snapshot belongs to.
    pub b: usize,
}

/// What a checkpointed run did.
#[derive(Debug, Clone, Copy, Default)]
pub struct CheckpointReport {
    /// Panel the run started at (0 for a fresh start).
    pub start_panel: usize,
    /// Panels completed by this run.
    pub panels_done: usize,
    /// Checkpoints written.
    pub checkpoints_written: usize,
    /// Bytes of checkpoint snapshot traffic (separate from the
    /// algorithm's tile I/O).
    pub checkpoint_bytes: u64,
    /// In-run rollbacks to the last checkpoint (unhealable tile
    /// corruption answered by restore-and-retry).
    pub restores: usize,
}

impl Checkpoint {
    /// Checkpoint files rooted at `prefix` (two siblings are created:
    /// `<prefix>.data` and `<prefix>.manifest`).
    pub fn at(prefix: &Path) -> Self {
        let mut data = prefix.as_os_str().to_owned();
        data.push(".data");
        let mut manifest = prefix.as_os_str().to_owned();
        manifest.push(".manifest");
        Checkpoint {
            data_path: PathBuf::from(data),
            manifest_path: PathBuf::from(manifest),
        }
    }

    /// Read and *validate* the manifest, if a complete checkpoint
    /// exists.  Validation covers the manifest itself (its trailing
    /// `manifest_fnv` must hash the preceding lines) and the data
    /// snapshot (recorded length and FNV must match the file on disk),
    /// so a truncated or bit-rotted checkpoint is rejected with
    /// [`std::io::ErrorKind::InvalidData`] instead of silently feeding
    /// a resumed run corrupt state.
    pub fn load(&self) -> std::io::Result<Option<CheckpointState>> {
        if !self.manifest_path.exists() || !self.data_path.exists() {
            return Ok(None);
        }
        let mut text = String::new();
        std::fs::File::open(&self.manifest_path)?.read_to_string(&mut text)?;
        let bad = |msg: String| std::io::Error::new(std::io::ErrorKind::InvalidData, msg);

        // The manifest's last line authenticates everything before it.
        let body_end = text
            .rfind("manifest_fnv=")
            .ok_or_else(|| bad("checkpoint manifest has no integrity line".into()))?;
        let (body, fnv_line) = text.split_at(body_end);
        let recorded: u64 = fnv_line
            .trim()
            .strip_prefix("manifest_fnv=")
            .and_then(|v| u64::from_str_radix(v, 16).ok())
            .ok_or_else(|| bad("bad manifest integrity line".into()))?;
        if fnv1a(body.as_bytes()) != recorded {
            return Err(bad("checkpoint manifest failed its integrity check".into()));
        }

        let mut lines = body.lines();
        if lines.next() != Some(MANIFEST_MAGIC) {
            return Err(bad("unrecognised checkpoint manifest".into()));
        }
        let mut next_panel = None;
        let mut n = None;
        let mut b = None;
        let mut data_len = None;
        let mut data_fnv = None;
        for line in lines {
            let Some((key, val)) = line.split_once('=') else {
                continue;
            };
            if key == "data_fnv" {
                data_fnv = Some(
                    u64::from_str_radix(val, 16)
                        .map_err(|_| bad(format!("bad manifest value: {line}")))?,
                );
                continue;
            }
            let val: usize = val
                .parse()
                .map_err(|_| bad(format!("bad manifest value: {line}")))?;
            match key {
                "next_panel" => next_panel = Some(val),
                "n" => n = Some(val),
                "b" => b = Some(val),
                "data_len" => data_len = Some(val as u64),
                _ => {}
            }
        }
        let (Some(next_panel), Some(n), Some(b), Some(data_len), Some(data_fnv)) =
            (next_panel, n, b, data_len, data_fnv)
        else {
            return Err(bad("incomplete checkpoint manifest".into()));
        };

        // Validate the data snapshot against the manifest's record.
        let data = std::fs::read(&self.data_path)?;
        if data.len() as u64 != data_len {
            return Err(bad(format!(
                "checkpoint data is {} bytes, manifest records {data_len} (truncated?)",
                data.len()
            )));
        }
        if fnv1a(&data) != data_fnv {
            return Err(bad("checkpoint data failed its integrity check".into()));
        }
        Ok(Some(CheckpointState { next_panel, n, b }))
    }

    /// Snapshot the backing file and record that panels `0..next_panel`
    /// are done.  The data snapshot lands before the manifest, and both
    /// are renamed into place, so [`load`](Self::load) never observes a
    /// manifest without its data.  The manifest records the snapshot's
    /// length and FNV-1a hash (and hashes itself), so `load` can reject
    /// truncation or bit rot in either file.
    pub fn save<B: IoBackend>(&self, fm: &B, next_panel: usize) -> std::io::Result<u64> {
        let src = fm.path().ok_or_else(|| {
            std::io::Error::new(
                std::io::ErrorKind::Unsupported,
                "backend has no backing file to snapshot",
            )
        })?;
        let data = std::fs::read(src)?;
        let data_fnv = fnv1a(&data);
        let tmp_data = self.data_path.with_extension("data.tmp");
        std::fs::write(&tmp_data, &data)?;
        std::fs::rename(&tmp_data, &self.data_path)?;

        let mut body = String::new();
        use std::fmt::Write as _;
        let _ = writeln!(body, "{MANIFEST_MAGIC}");
        let _ = writeln!(body, "next_panel={next_panel}");
        let _ = writeln!(body, "n={}", fm.n());
        let _ = writeln!(body, "b={}", fm.b());
        let _ = writeln!(body, "data_len={}", data.len());
        let _ = writeln!(body, "data_fnv={data_fnv:016x}");
        let manifest_fnv = fnv1a(body.as_bytes());
        let tmp_manifest = self.manifest_path.with_extension("manifest.tmp");
        {
            let mut f = std::fs::File::create(&tmp_manifest)?;
            f.write_all(body.as_bytes())?;
            writeln!(f, "manifest_fnv={manifest_fnv:016x}")?;
        }
        std::fs::rename(&tmp_manifest, &self.manifest_path)?;
        Ok(data.len() as u64)
    }

    /// Copy the snapshot back over the backing file (discarding whatever
    /// a crashed run left there) and tell the backend its storage moved
    /// under it.
    pub fn restore<B: IoBackend>(&self, fm: &mut B) -> std::io::Result<u64> {
        let dst = fm
            .path()
            .ok_or_else(|| {
                std::io::Error::new(
                    std::io::ErrorKind::Unsupported,
                    "backend has no backing file to restore into",
                )
            })?
            .to_path_buf();
        let bytes = std::fs::copy(&self.data_path, dst)?;
        fm.storage_restored();
        Ok(bytes)
    }

    /// Delete the checkpoint files (after a completed run).
    pub fn remove(&self) -> std::io::Result<()> {
        for p in [&self.data_path, &self.manifest_path] {
            match std::fs::remove_file(p) {
                Ok(()) => {}
                Err(e) if e.kind() == std::io::ErrorKind::NotFound => {}
                Err(e) => return Err(e),
            }
        }
        Ok(())
    }
}

/// Out-of-core Cholesky with a checkpoint after every panel.  If `ckpt`
/// already holds a (validated) checkpoint for this matrix, the data file
/// is restored from the snapshot and the run resumes at the recorded
/// panel; otherwise it starts from scratch.  On success the checkpoint
/// files are removed.
///
/// A crash injected by the backend surfaces as [`OocError::Io`]; the
/// caller "restarts the process" by reopening the file
/// ([`FileMatrix::open`](crate::FileMatrix::open)) and calling this
/// again with the same `ckpt`.  The resumed run recomputes only the
/// panels after the last checkpoint, and — because the schedule is
/// deterministic — produces a factor bit-identical to an uninterrupted
/// run's.
pub fn ooc_potrf_checkpointed<B: IoBackend>(
    fm: &mut B,
    capacity_tiles: usize,
    ckpt: &Checkpoint,
) -> Result<CheckpointReport, OocError> {
    ooc_potrf_checkpointed_with(fm, capacity_tiles, ckpt, KernelImpl::Reference)
}

/// [`ooc_potrf_checkpointed`] with an explicit kernel engine.  The
/// checkpoint/restore protocol and all tile I/O are engine-independent.
/// `FastStrict` is bit-identical to `Reference`, so a run may even
/// crash under one of those engines and resume under the other; `Fast`
/// contracts multiply-adds through FMA, so mixing it with the others
/// across a restart yields a factor that differs by the (tiny)
/// contraction residual — restart under the engine you crashed with if
/// bit-reproducibility matters.
pub fn ooc_potrf_checkpointed_with<B: IoBackend>(
    fm: &mut B,
    capacity_tiles: usize,
    ckpt: &Checkpoint,
    kernel: KernelImpl,
) -> Result<CheckpointReport, OocError> {
    let nb = fm.nb();
    let mut report = CheckpointReport::default();
    let start = match ckpt.load()? {
        Some(state) => {
            if state.n != fm.n() || state.b != fm.b() {
                return Err(OocError::Io(std::io::Error::new(
                    std::io::ErrorKind::InvalidData,
                    format!(
                        "checkpoint is for n={} b={}, matrix has n={} b={}",
                        state.n,
                        state.b,
                        fm.n(),
                        fm.b()
                    ),
                )));
            }
            report.checkpoint_bytes += ckpt.restore(fm)?;
            state.next_panel
        }
        None => {
            // Snapshot the pristine input before any tile is mutated:
            // a crash inside panel 0 leaves partially-updated tiles on
            // disk, and without this baseline the resume would factor
            // corrupted input.
            report.checkpoint_bytes += ckpt.save(fm, 0)?;
            report.checkpoints_written += 1;
            0
        }
    };
    report.start_panel = start;

    // Unhealable multi-element corruption (a checksumming backend's
    // `InvalidData`) is answered in-run: roll the file back to the last
    // panel checkpoint and retry the panel.  A corruption strikes only
    // once (the backend remembers landed faults across restores), so
    // each retry makes progress; the cap is a safety net, not a policy.
    const MAX_RESTORE_RETRIES: usize = 4;
    let unhealable = |e: &OocError| {
        matches!(e, OocError::Io(io) if io.kind() == std::io::ErrorKind::InvalidData)
    };

    let mut cache = TileCache::new(capacity_tiles);
    for k in start..nb {
        let mut retries = 0;
        loop {
            match factor_panel_with(fm, &mut cache, k, kernel) {
                Ok(()) => break,
                Err(e @ OocError::NotSpd { .. }) => {
                    cache.flush(fm)?;
                    return Err(e);
                }
                Err(e) if unhealable(&e) && retries < MAX_RESTORE_RETRIES => {
                    retries += 1;
                    report.restores += 1;
                    // Everything in RAM reflects the poisoned panel run;
                    // the snapshot on disk is the last trustworthy state.
                    cache.clear();
                    report.checkpoint_bytes += ckpt.restore(fm)?;
                }
                Err(e) => return Err(e),
            }
        }
        if fm.crash_after_panel(k) {
            // The plan kills us after the panel but before its
            // checkpoint: dirty cached tiles die with the process.
            return Err(OocError::Io(std::io::Error::other(
                "simulated crash: process killed after panel",
            )));
        }
        cache.flush(fm)?;
        report.checkpoint_bytes += ckpt.save(fm, k + 1)?;
        report.checkpoints_written += 1;
        report.panels_done += 1;
    }

    // Final integrity scrub, with the same restore-retry answer: the
    // last checkpoint (written after the final panel) holds the
    // finished factor, so rolling back and re-scrubbing converges.
    let mut retries = 0;
    loop {
        match fm.scrub() {
            Ok(()) => break,
            Err(e) if e.kind() == std::io::ErrorKind::InvalidData
                && retries < MAX_RESTORE_RETRIES =>
            {
                retries += 1;
                report.restores += 1;
                report.checkpoint_bytes += ckpt.restore(fm)?;
            }
            Err(e) => return Err(e.into()),
        }
    }

    ckpt.remove()?;
    Ok(report)
}

#[cfg(test)]
#[allow(clippy::unwrap_used)]
mod tests {
    use super::*;
    use crate::backend::FaultyBackend;
    use crate::filemat::{scratch_path, FileMatrix};
    use crate::potrf::ooc_potrf;
    use cholcomm_faults::{CrashPoint, FaultPlan};
    use cholcomm_matrix::{norms, spd};

    fn ckpt_prefix(tag: &str) -> PathBuf {
        scratch_path(tag).with_extension("ckpt")
    }

    #[test]
    fn uninterrupted_checkpointed_run_matches_plain() {
        let mut rng = spd::test_rng(220);
        let a = spd::random_spd(32, &mut rng);
        let p1 = scratch_path("ckpt-plain");
        let mut plain = FileMatrix::create(&p1, &a, 8).unwrap();
        ooc_potrf(&mut plain, 4).unwrap();
        let want = plain.to_matrix().unwrap();

        let p2 = scratch_path("ckpt-run");
        let mut fm = FileMatrix::create(&p2, &a, 8).unwrap();
        let ckpt = Checkpoint::at(&ckpt_prefix("uninterrupted"));
        let rep = ooc_potrf_checkpointed(&mut fm, 4, &ckpt).unwrap();
        let got = fm.to_matrix().unwrap();
        assert_eq!(norms::max_abs_diff(&got, &want), 0.0, "bit-identical");
        assert_eq!(rep.start_panel, 0);
        assert_eq!(rep.panels_done, 4);
        // One baseline snapshot of the input plus one per panel.
        assert_eq!(rep.checkpoints_written, 5);
        assert!(rep.checkpoint_bytes > 0);
        assert!(ckpt.load().unwrap().is_none(), "checkpoint cleaned up");
    }

    #[test]
    fn crash_mid_factorization_then_resume_is_bit_identical() {
        let mut rng = spd::test_rng(221);
        let a = spd::random_spd(40, &mut rng);

        // Reference: uninterrupted factorization.
        let pref = scratch_path("ckpt-ref");
        let mut reference = FileMatrix::create(&pref, &a, 8).unwrap();
        ooc_potrf(&mut reference, 4).unwrap();
        let want = reference.to_matrix().unwrap();

        // Crashing run: die somewhere in the middle of the tile traffic.
        let data_path = scratch_path("ckpt-crash");
        let ckpt = Checkpoint::at(&ckpt_prefix("crash"));
        let n = a.rows();
        {
            let mut fm = FileMatrix::create(&data_path, &a, 8).unwrap();
            fm.set_persist(true);
            let plan = FaultPlan::builder(42)
                .crash_at(CrashPoint::AfterDiskOps(60))
                .build();
            let mut fb = FaultyBackend::new(fm, plan);
            let err = ooc_potrf_checkpointed(&mut fb, 4, &ckpt).unwrap_err();
            assert!(matches!(err, OocError::Io(_)), "crash surfaces as I/O death");
            assert!(fb.crashed());
        }

        // "New process": reopen the file, resume from the checkpoint.
        let state = ckpt.load().unwrap().expect("a checkpoint was written");
        assert!(state.next_panel > 0, "at least one panel completed pre-crash");
        assert!(state.next_panel < 5, "crash happened before the end");
        let mut fm = FileMatrix::open(&data_path, n, 8).unwrap();
        fm.set_persist(false); // test scratch: clean up on drop
        let rep = ooc_potrf_checkpointed(&mut fm, 4, &ckpt).unwrap();
        assert_eq!(rep.start_panel, state.next_panel, "resumed, not restarted");

        let got = fm.to_matrix().unwrap();
        assert_eq!(
            norms::max_abs_diff(&got, &want),
            0.0,
            "resumed factor must be bit-identical to the uninterrupted one"
        );
        let r = norms::cholesky_residual(&a, &got.lower_triangle().unwrap());
        assert!(r < norms::residual_tolerance(n), "residual {r}");
    }

    #[test]
    fn crash_inside_first_panel_restores_the_pristine_input() {
        // The nastiest case: the process dies before the first panel
        // checkpoint ever lands, with partially-updated tiles already on
        // disk.  The baseline checkpoint written at startup must roll
        // the file back to the untouched input, or the resume factors
        // corrupted data.
        let mut rng = spd::test_rng(224);
        let a = spd::random_spd(32, &mut rng);
        let pref = scratch_path("ckpt-p0-ref");
        let mut reference = FileMatrix::create(&pref, &a, 8).unwrap();
        ooc_potrf(&mut reference, 4).unwrap();
        let want = reference.to_matrix().unwrap();

        let data_path = scratch_path("ckpt-p0");
        let ckpt = Checkpoint::at(&ckpt_prefix("panel0"));
        {
            let mut fm = FileMatrix::create(&data_path, &a, 8).unwrap();
            fm.set_persist(true);
            // With the minimum cache capacity the panel-0 trailing
            // update evicts (and writes back) tiles long before the
            // panel completes; a few ops in, the file is neither A nor
            // a finished panel.
            let plan = FaultPlan::builder(5)
                .crash_at(CrashPoint::AfterDiskOps(10))
                .build();
            let mut fb = FaultyBackend::new(fm, plan);
            ooc_potrf_checkpointed(&mut fb, 3, &ckpt).unwrap_err();
        }
        let state = ckpt.load().unwrap().expect("baseline checkpoint exists");
        assert_eq!(state.next_panel, 0, "no panel completed before the crash");

        let mut fm = FileMatrix::open(&data_path, 32, 8).unwrap();
        fm.set_persist(false); // test scratch: clean up on drop
        let rep = ooc_potrf_checkpointed(&mut fm, 3, &ckpt).unwrap();
        assert_eq!(rep.start_panel, 0);
        let got = fm.to_matrix().unwrap();
        assert_eq!(
            norms::max_abs_diff(&got, &want),
            0.0,
            "resume after a panel-0 crash must factor the original input"
        );
    }

    #[test]
    fn crash_after_panel_loses_dirty_tiles_but_resume_recovers() {
        let mut rng = spd::test_rng(222);
        let a = spd::random_spd(32, &mut rng);
        let pref = scratch_path("ckpt-ap-ref");
        let mut reference = FileMatrix::create(&pref, &a, 8).unwrap();
        ooc_potrf(&mut reference, 4).unwrap();
        let want = reference.to_matrix().unwrap();

        let data_path = scratch_path("ckpt-ap");
        let ckpt = Checkpoint::at(&ckpt_prefix("after-panel"));
        {
            let mut fm = FileMatrix::create(&data_path, &a, 8).unwrap();
            fm.set_persist(true);
            let plan = FaultPlan::builder(1)
                .crash_at(CrashPoint::AfterPanel(2))
                .build();
            let mut fb = FaultyBackend::new(fm, plan);
            ooc_potrf_checkpointed(&mut fb, 4, &ckpt).unwrap_err();
        }
        let state = ckpt.load().unwrap().expect("checkpoints up to panel 2");
        assert_eq!(state.next_panel, 2, "panel 2's checkpoint never landed");

        let mut fm = FileMatrix::open(&data_path, 32, 8).unwrap();
        fm.set_persist(false); // test scratch: clean up on drop
        let rep = ooc_potrf_checkpointed(&mut fm, 4, &ckpt).unwrap();
        assert_eq!(rep.start_panel, 2);
        assert_eq!(rep.panels_done, 2);
        let got = fm.to_matrix().unwrap();
        assert_eq!(norms::max_abs_diff(&got, &want), 0.0);
    }

    #[test]
    fn flaky_disk_plus_crash_still_converges() {
        // The acceptance-style scenario: transient disk faults on top of
        // a mid-run crash; resume under a (different) flaky plan.
        let mut rng = spd::test_rng(223);
        let a = spd::random_spd(40, &mut rng);
        let pref = scratch_path("ckpt-flaky-ref");
        let mut reference = FileMatrix::create(&pref, &a, 8).unwrap();
        ooc_potrf(&mut reference, 4).unwrap();
        let want = reference.to_matrix().unwrap();

        let data_path = scratch_path("ckpt-flaky");
        let ckpt = Checkpoint::at(&ckpt_prefix("flaky"));
        let transients;
        {
            let mut fm = FileMatrix::create(&data_path, &a, 8).unwrap();
            fm.set_persist(true);
            let plan = FaultPlan::builder(9)
                .disk_transient_rate(0.1)
                .disk_short_read_rate(0.05)
                .crash_at(CrashPoint::AfterDiskOps(70))
                .build();
            let mut fb = FaultyBackend::new(fm, plan);
            ooc_potrf_checkpointed(&mut fb, 4, &ckpt).unwrap_err();
            transients = fb.fault_stats();
            assert!(transients.disk_faults() >= 3, "flaky disk must have bitten: {transients:?}");
        }

        let mut fm = FileMatrix::open(&data_path, 40, 8).unwrap();
        fm.set_persist(false); // test scratch: clean up on drop
        let plan = FaultPlan::builder(10).disk_transient_rate(0.1).build();
        let mut fb = FaultyBackend::new(fm, plan);
        ooc_potrf_checkpointed(&mut fb, 4, &ckpt).unwrap();
        let got = fb.inner_mut().to_matrix().unwrap();
        assert_eq!(
            norms::max_abs_diff(&got, &want),
            0.0,
            "flaky disk + crash + resume must not change a single bit"
        );
    }

    #[test]
    fn unhealable_corruption_mid_run_restores_and_retries() {
        use crate::abft::AbftBackend;

        let mut rng = spd::test_rng(226);
        let a = spd::random_spd(32, &mut rng);
        let pref = scratch_path("ckpt-abft-ref");
        let mut reference = FileMatrix::create(&pref, &a, 8).unwrap();
        ooc_potrf(&mut reference, 4).unwrap();
        let want = reference.to_matrix().unwrap();

        // Two elements of one tile struck in the same panel: beyond the
        // checksums, so the driver must roll back to the panel
        // checkpoint and retry.  A second, healable flip rides along.
        let plan = FaultPlan::builder(50)
            .inject_bit_flip(1, (2, 1), (0, 0), 1 << 44)
            .inject_bit_flip(1, (2, 1), (6, 3), 1 << 45)
            .inject_bit_flip(2, (3, 2), (1, 1), 1 << 63)
            .build();
        let fm = FileMatrix::create(&scratch_path("ckpt-abft"), &a, 8).unwrap();
        let mut ab = AbftBackend::new(fm, plan);
        let ckpt = Checkpoint::at(&ckpt_prefix("abft"));
        let rep = ooc_potrf_checkpointed(&mut ab, 3, &ckpt).unwrap();
        assert!(rep.restores >= 1, "multi-element corruption forced a rollback");
        assert_eq!(ab.abft_stats().unrecoverable, 1);
        assert_eq!(ab.abft_stats().corrections, 1);
        let got = ab.inner_mut().to_matrix().unwrap();
        assert_eq!(
            norms::max_abs_diff(&got, &want),
            0.0,
            "restored-and-retried factor must be bit-identical"
        );
    }

    #[test]
    fn corruption_after_a_tiles_last_read_is_caught_by_the_scrub() {
        use crate::abft::AbftBackend;

        let mut rng = spd::test_rng(227);
        let a = spd::random_spd(32, &mut rng);
        let pref = scratch_path("ckpt-scrub-ref");
        let mut reference = FileMatrix::create(&pref, &a, 8).unwrap();
        ooc_potrf(&mut reference, 4).unwrap();
        let want = reference.to_matrix().unwrap();

        // Strike a long-finished panel tile at the final step: no kernel
        // ever reads it again, so only the end-of-run scrub can see it.
        let plan = FaultPlan::builder(51)
            .inject_bit_flip(3, (1, 0), (2, 2), 1 << 40)
            .inject_bit_flip(3, (2, 0), (0, 0), 1 << 41)
            .inject_bit_flip(3, (2, 0), (5, 5), 1 << 42)
            .build();
        let fm = FileMatrix::create(&scratch_path("ckpt-scrub"), &a, 8).unwrap();
        let mut ab = AbftBackend::new(fm, plan);
        let ckpt = Checkpoint::at(&ckpt_prefix("scrub"));
        let rep = ooc_potrf_checkpointed(&mut ab, 3, &ckpt).unwrap();
        assert!(
            ab.abft_stats().corrections >= 1,
            "the single-element flip heals in the scrub"
        );
        assert!(
            rep.restores >= 1,
            "the multi-element flip forces a scrub rollback"
        );
        let got = ab.inner_mut().to_matrix().unwrap();
        assert_eq!(norms::max_abs_diff(&got, &want), 0.0);
    }

    #[test]
    fn truncated_checkpoint_data_is_rejected() {
        let mut rng = spd::test_rng(228);
        let a = spd::random_spd(16, &mut rng);
        let p = scratch_path("ckpt-trunc");
        let fm = FileMatrix::create(&p, &a, 8).unwrap();
        let prefix = ckpt_prefix("trunc");
        let ckpt = Checkpoint::at(&prefix);
        ckpt.save(&fm, 1).unwrap();
        assert!(ckpt.load().unwrap().is_some(), "intact checkpoint loads");

        // Lop bytes off the snapshot, as a torn copy or dying disk would.
        let data_path = prefix.with_extension("ckpt.data");
        let bytes = std::fs::read(&data_path).unwrap();
        std::fs::write(&data_path, &bytes[..bytes.len() / 2]).unwrap();
        let err = ckpt.load().unwrap_err();
        assert_eq!(err.kind(), std::io::ErrorKind::InvalidData);
        assert!(err.to_string().contains("truncated"), "{err}");
        ckpt.remove().unwrap();
    }

    #[test]
    fn bit_rotted_checkpoint_data_is_rejected() {
        let mut rng = spd::test_rng(229);
        let a = spd::random_spd(16, &mut rng);
        let p = scratch_path("ckpt-rot");
        let fm = FileMatrix::create(&p, &a, 8).unwrap();
        let prefix = ckpt_prefix("rot");
        let ckpt = Checkpoint::at(&prefix);
        ckpt.save(&fm, 1).unwrap();

        // Same length, one bit flipped.
        let data_path = prefix.with_extension("ckpt.data");
        let mut bytes = std::fs::read(&data_path).unwrap();
        let mid = bytes.len() / 2;
        bytes[mid] ^= 0x10;
        std::fs::write(&data_path, &bytes).unwrap();
        let err = ckpt.load().unwrap_err();
        assert_eq!(err.kind(), std::io::ErrorKind::InvalidData);
        ckpt.remove().unwrap();
    }

    #[test]
    fn corrupted_manifest_is_rejected() {
        let mut rng = spd::test_rng(230);
        let a = spd::random_spd(16, &mut rng);
        let p = scratch_path("ckpt-badman");
        let fm = FileMatrix::create(&p, &a, 8).unwrap();
        let prefix = ckpt_prefix("badman");
        let ckpt = Checkpoint::at(&prefix);
        ckpt.save(&fm, 2).unwrap();

        // Tamper with the recorded panel: the manifest hash must catch it.
        let man_path = prefix.with_extension("ckpt.manifest");
        let text = std::fs::read_to_string(&man_path).unwrap();
        std::fs::write(&man_path, text.replace("next_panel=2", "next_panel=4")).unwrap();
        let err = ckpt.load().unwrap_err();
        assert_eq!(err.kind(), std::io::ErrorKind::InvalidData);
        ckpt.remove().unwrap();
    }

    #[test]
    fn crash_during_save_leaves_the_previous_checkpoint_loadable() {
        let mut rng = spd::test_rng(231);
        let a = spd::random_spd(16, &mut rng);
        let p = scratch_path("ckpt-torn");
        let fm = FileMatrix::create(&p, &a, 8).unwrap();
        let prefix = ckpt_prefix("torn");
        let ckpt = Checkpoint::at(&prefix);
        ckpt.save(&fm, 1).unwrap();

        // A crash mid-save leaves only temp files behind — the rename
        // never happened.  The previous checkpoint must stay valid.
        let data_path = prefix.with_extension("ckpt.data");
        let bytes = std::fs::read(&data_path).unwrap();
        std::fs::write(
            prefix.with_extension("ckpt.data.tmp"),
            &bytes[..bytes.len() / 3],
        )
        .unwrap();
        std::fs::write(prefix.with_extension("ckpt.manifest.tmp"), b"garbage").unwrap();

        let state = ckpt.load().unwrap().expect("previous checkpoint intact");
        assert_eq!(state.next_panel, 1);
        ckpt.remove().unwrap();
        std::fs::remove_file(prefix.with_extension("ckpt.data.tmp")).unwrap();
        std::fs::remove_file(prefix.with_extension("ckpt.manifest.tmp")).unwrap();
    }

    #[test]
    fn mismatched_checkpoint_is_rejected() {
        let mut rng = spd::test_rng(224);
        let a = spd::random_spd(16, &mut rng);
        let p = scratch_path("ckpt-mismatch");
        let mut fm = FileMatrix::create(&p, &a, 8).unwrap();
        let ckpt = Checkpoint::at(&ckpt_prefix("mismatch"));
        ckpt.save(&fm, 1).unwrap();
        // Same files, wrong geometry.
        let a2 = spd::random_spd(24, &mut rng);
        let p2 = scratch_path("ckpt-mismatch2");
        let mut fm2 = FileMatrix::create(&p2, &a2, 8).unwrap();
        let err = ooc_potrf_checkpointed(&mut fm2, 4, &ckpt).unwrap_err();
        assert!(matches!(err, OocError::Io(_)));
        ckpt.remove().unwrap();
        // The original still factors fine from scratch after cleanup.
        ooc_potrf(&mut fm, 4).unwrap();
    }
}
