//! Panel-granularity checkpoint/restart for the out-of-core Cholesky,
//! on a journaled commit protocol.
//!
//! After each completed panel the driver flushes the tile cache and
//! writes a *generation*: a snapshot of the backing file plus a small
//! manifest recording the next panel to run (and `n`, `b`, the
//! snapshot's length and FNV-1a hash).  Generations are made durable by
//! a write-ahead journal, not by rename:
//!
//! ```text
//! append INTENT(gen, next_panel, n, b, len, fnv)   to <prefix>.journal
//! write   <prefix>.g<gen>.data                     (the snapshot)
//! write   <prefix>.g<gen>.manifest                 (self-hashed metadata)
//! ------- barrier -------   everything above is durable
//! append COMMIT(gen)                               to <prefix>.journal
//! ------- barrier -------   the commit is durable
//! remove  older generations                        (prune, crash-safe)
//! ```
//!
//! Every journal record authenticates itself (a trailing `rec_fnv` over
//! the record text), so a torn append is indistinguishable from no
//! append: recovery parses the longest valid prefix and ignores the
//! rest.  [`Checkpoint::load`] resumes from the **highest committed**
//! generation, sweeps uncommitted or stale generation files and `.tmp`
//! strays left by a crashed save, and validates everything the commit
//! vouches for — manifest self-hash, generation agreement, geometry
//! (`data_len` must equal the tile layout implied by `n`/`b`), snapshot
//! length and hash, intent/manifest cross-check.  A committed
//! generation that fails validation is a **protocol violation or
//! storage corruption** and fails loudly with
//! [`std::io::ErrorKind::InvalidData`] — never a silent fall-back to an
//! older state — because "commit implies durable" is exactly the
//! invariant the barrier before the commit record buys.  The
//! crash-point explorer (`crates/faults`, `tests/crash_consistency.rs`)
//! leans on that loudness: [`CommitDiscipline::UnbarrieredCommit`]
//! deliberately skips the pre-commit barrier, and the explorer catches
//! the resulting torn-data-behind-a-commit states.
//!
//! A *full* snapshot per checkpoint is deliberate: the factorization is
//! right-looking, so panel `k` mutates the whole trailing submatrix.
//! Restarting mid-panel from the live data file would double-apply
//! updates from tiles that were flushed before the crash; restoring the
//! last panel-boundary snapshot is the only state that is both cheap to
//! reason about and bitwise reproducible.  Checkpoint I/O is charged to
//! its own counters ([`CheckpointReport`]), not to the algorithm's
//! [`IoStats`](crate::IoStats), and is not subject to tile-level fault
//! injection — the fault model targets the data path, recovery targets
//! the recovery path.
//!
//! All storage goes through [`Store`], so the same protocol bytes run
//! over the real filesystem ([`FsStore`]) in production and over the
//! simulated crash disk (`SimStore`) under the explorer.

use crate::backend::IoBackend;
use crate::potrf::{factor_panel_with, OocError, TileCache};
use cholcomm_faults::{FsStore, Store};
use cholcomm_matrix::KernelImpl;
use std::path::Path;

const MANIFEST_MAGIC: &str = "cholcomm-ooc-checkpoint v3";

/// FNV-1a over a byte string: the checkpoint integrity hash.  Not
/// cryptographic — it guards against truncation and bit rot, the same
/// threat model as the tile checksums.
fn fnv1a(bytes: &[u8]) -> u64 {
    let mut h: u64 = 0xcbf2_9ce4_8422_2325;
    for &b in bytes {
        h ^= u64::from(b);
        h = h.wrapping_mul(0x0000_0100_0000_01b3);
    }
    h
}

fn bad(msg: String) -> std::io::Error {
    std::io::Error::new(std::io::ErrorKind::InvalidData, msg)
}

/// How strictly [`Checkpoint::save`] orders its commit record.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum CommitDiscipline {
    /// The correct protocol: a barrier *before* the commit record, so a
    /// durable commit implies durable data.
    #[default]
    Barriered,
    /// Deliberately broken: the commit record is appended in the same
    /// un-barriered window as the data it vouches for.  Exists so the
    /// crash-point explorer can prove it catches real protocol bugs —
    /// never use it for actual checkpoints.
    UnbarrieredCommit,
}

/// A checkpoint location rooted at a path prefix.  On disk it owns
/// `<prefix>.journal` plus one `<prefix>.g<gen>.data` /
/// `<prefix>.g<gen>.manifest` pair per live generation.
#[derive(Debug, Clone)]
pub struct Checkpoint {
    prefix: String,
    discipline: CommitDiscipline,
}

/// Parsed state of the highest committed generation.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct CheckpointState {
    /// First panel that still needs to run.
    pub next_panel: usize,
    /// Matrix order the snapshot belongs to.
    pub n: usize,
    /// Tile size the snapshot belongs to.
    pub b: usize,
    /// Committed generation the state was read from.
    pub gen: u64,
}

/// What a checkpointed run did.
#[derive(Debug, Clone, Copy, Default)]
pub struct CheckpointReport {
    /// Panel the run started at (0 for a fresh start).
    pub start_panel: usize,
    /// Panels completed by this run.
    pub panels_done: usize,
    /// Checkpoints written.
    pub checkpoints_written: usize,
    /// Bytes of checkpoint snapshot traffic (separate from the
    /// algorithm's tile I/O).
    pub checkpoint_bytes: u64,
    /// In-run rollbacks to the last checkpoint (unhealable tile
    /// corruption answered by restore-and-retry).
    pub restores: usize,
}

/// One validated journal record.
#[derive(Debug, Clone, PartialEq, Eq)]
enum JournalRec {
    Intent {
        gen: u64,
        next_panel: usize,
        n: usize,
        b: usize,
        data_len: u64,
        data_fnv: u64,
    },
    Commit {
        gen: u64,
    },
}

/// Parse the longest valid prefix of a journal: records stop at the
/// first line whose structure or trailing `rec_fnv` does not check out
/// (a torn append), and everything after is ignored.
fn parse_journal(text: &str) -> Vec<JournalRec> {
    let mut out = Vec::new();
    for line in text.lines() {
        let Some((body, fnv_hex)) = line.rsplit_once(" rec_fnv=") else {
            break;
        };
        let Ok(recorded) = u64::from_str_radix(fnv_hex, 16) else {
            break;
        };
        if fnv1a(body.as_bytes()) != recorded {
            break;
        }
        let mut fields = body.split(' ');
        let kind = fields.next();
        let mut gen = None;
        let mut next_panel = None;
        let mut n = None;
        let mut b = None;
        let mut data_len = None;
        let mut data_fnv = None;
        for field in fields {
            let Some((key, val)) = field.split_once('=') else {
                continue;
            };
            match key {
                "gen" => gen = val.parse().ok(),
                "next_panel" => next_panel = val.parse().ok(),
                "n" => n = val.parse().ok(),
                "b" => b = val.parse().ok(),
                "data_len" => data_len = val.parse().ok(),
                "data_fnv" => data_fnv = u64::from_str_radix(val, 16).ok(),
                _ => {}
            }
        }
        let rec = match (kind, gen) {
            (Some("intent"), Some(gen)) => {
                let (Some(next_panel), Some(n), Some(b), Some(data_len), Some(data_fnv)) =
                    (next_panel, n, b, data_len, data_fnv)
                else {
                    break;
                };
                JournalRec::Intent {
                    gen,
                    next_panel,
                    n,
                    b,
                    data_len,
                    data_fnv,
                }
            }
            (Some("commit"), Some(gen)) => JournalRec::Commit { gen },
            _ => break,
        };
        out.push(rec);
    }
    out
}

fn journal_line(body: &str) -> String {
    format!("{body} rec_fnv={:016x}\n", fnv1a(body.as_bytes()))
}

impl Checkpoint {
    /// Checkpoint files rooted at `prefix`.
    pub fn at(prefix: &Path) -> Self {
        Checkpoint {
            prefix: prefix.to_string_lossy().into_owned(),
            discipline: CommitDiscipline::Barriered,
        }
    }

    /// Override the commit discipline (explorer self-test only).
    pub fn with_discipline(mut self, discipline: CommitDiscipline) -> Self {
        self.discipline = discipline;
        self
    }

    /// Name of the write-ahead journal.
    pub fn journal_file(&self) -> String {
        format!("{}.journal", self.prefix)
    }

    /// Name of generation `gen`'s data snapshot.
    pub fn data_file(&self, gen: u64) -> String {
        format!("{}.g{}.data", self.prefix, gen)
    }

    /// Name of generation `gen`'s manifest.
    pub fn manifest_file(&self, gen: u64) -> String {
        format!("{}.g{}.manifest", self.prefix, gen)
    }

    fn read_journal(&self, store: &impl Store) -> std::io::Result<Vec<JournalRec>> {
        if !store.exists(&self.journal_file()) {
            return Ok(Vec::new());
        }
        let bytes = store.read(&self.journal_file())?;
        Ok(parse_journal(&String::from_utf8_lossy(&bytes)))
    }

    /// Highest gen with both an intent and a commit record, plus its
    /// intent — and the highest gen mentioned at all (for numbering).
    fn committed(records: &[JournalRec]) -> (Option<(u64, JournalRec)>, u64) {
        let mut max_gen = 0;
        let mut best: Option<(u64, JournalRec)> = None;
        for rec in records {
            match rec {
                JournalRec::Intent { gen, .. } => max_gen = max_gen.max(*gen),
                JournalRec::Commit { gen } => {
                    max_gen = max_gen.max(*gen);
                    let intent = records.iter().find(
                        |r| matches!(r, JournalRec::Intent { gen: g, .. } if g == gen),
                    );
                    if let Some(intent) = intent {
                        if best.as_ref().is_none_or(|(g, _)| gen > g) {
                            best = Some((*gen, intent.clone()));
                        }
                    }
                }
            }
        }
        (best, max_gen)
    }

    /// Delete every generation file except `keep`'s, and any `.tmp`
    /// strays under the prefix (a crashed legacy save's leftovers).
    fn sweep(&self, store: &mut impl Store, keep: Option<u64>) -> std::io::Result<()> {
        let keep_data = keep.map(|g| self.data_file(g));
        let keep_manifest = keep.map(|g| self.manifest_file(g));
        for name in store.list_prefix(&format!("{}.g", self.prefix))? {
            if Some(&name) != keep_data.as_ref() && Some(&name) != keep_manifest.as_ref() {
                store.remove(&name)?;
            }
        }
        for name in store.list_prefix(&self.prefix)? {
            if name.ends_with(".tmp") {
                store.remove(&name)?;
            }
        }
        Ok(())
    }

    fn parse_manifest(&self, text: &str, gen: u64) -> std::io::Result<CheckpointState> {
        // A torn tail can shear off any suffix; the newline terminating
        // the integrity line is the cheapest completeness witness, so a
        // manifest that does not end with one is rejected outright.
        if !text.ends_with('\n') {
            return Err(bad(
                "checkpoint manifest is not newline-terminated (torn write?)".into(),
            ));
        }
        // The manifest's last line authenticates everything before it.
        let body_end = text
            .rfind("manifest_fnv=")
            .ok_or_else(|| bad("checkpoint manifest has no integrity line".into()))?;
        let (body, fnv_line) = text.split_at(body_end);
        let recorded: u64 = fnv_line
            .trim()
            .strip_prefix("manifest_fnv=")
            .and_then(|v| u64::from_str_radix(v, 16).ok())
            .ok_or_else(|| bad("bad manifest integrity line".into()))?;
        if fnv1a(body.as_bytes()) != recorded {
            return Err(bad("checkpoint manifest failed its integrity check".into()));
        }
        let mut lines = body.lines();
        if lines.next() != Some(MANIFEST_MAGIC) {
            return Err(bad("unrecognised checkpoint manifest".into()));
        }
        let mut mgen = None;
        let mut next_panel = None;
        let mut n: Option<usize> = None;
        let mut b: Option<usize> = None;
        let mut data_len = None;
        let mut data_fnv = None;
        for line in lines {
            let Some((key, val)) = line.split_once('=') else {
                continue;
            };
            match key {
                "gen" => mgen = val.parse::<u64>().ok(),
                "next_panel" => next_panel = val.parse().ok(),
                "n" => n = val.parse().ok(),
                "b" => b = val.parse().ok(),
                "data_len" => data_len = val.parse::<u64>().ok(),
                "data_fnv" => data_fnv = u64::from_str_radix(val, 16).ok(),
                _ => {}
            }
        }
        // data_fnv is required present (an incomplete manifest is
        // rejected) but the authoritative hash check is against the
        // journal intent's copy in `load_in`.
        let (Some(mgen), Some(next_panel), Some(n), Some(b), Some(data_len), Some(_)) =
            (mgen, next_panel, n, b, data_len, data_fnv)
        else {
            return Err(bad("incomplete checkpoint manifest".into()));
        };
        if mgen != gen {
            return Err(bad(format!(
                "manifest records generation {mgen}, journal committed {gen} — \
                 mixed-generation checkpoint"
            )));
        }
        // Geometry must be self-consistent: a manifest whose hash checks
        // out but whose n/b disagree with its own data length was
        // assembled from mismatched pieces.
        let nb = n.div_ceil(b);
        let expect = (nb * nb * b * b * 8) as u64;
        if data_len != expect {
            return Err(bad(format!(
                "manifest geometry n={n} b={b} implies {expect} data bytes, records {data_len}"
            )));
        }
        Ok(CheckpointState {
            next_panel,
            n,
            b,
            gen,
        })
    }

    /// Recover from the journal on `store`: find the highest committed
    /// generation, validate everything its commit vouches for, and sweep
    /// uncommitted/stale generation files and `.tmp` strays.
    ///
    /// Returns `Ok(None)` when no generation ever committed (fresh
    /// start).  Returns an [`std::io::ErrorKind::InvalidData`] error —
    /// loudly, with no silent fall-back — when a *committed* generation
    /// fails validation: under the barriered commit discipline that can
    /// only mean a commit-protocol violation or storage corruption.
    pub fn load_in(&self, store: &mut impl Store) -> std::io::Result<Option<CheckpointState>> {
        let records = self.read_journal(store)?;
        let (committed, _) = Self::committed(&records);
        let Some((gen, intent)) = committed else {
            // Nothing committed: any generation files or temp strays are
            // garbage from a crashed save — roll them back.
            self.sweep(store, None)?;
            return Ok(None);
        };
        let violation = |msg: String| {
            bad(format!(
                "{msg} — commit-protocol violation or storage corruption \
                 (gen {gen} is committed but not durable)"
            ))
        };
        if !store.exists(&self.manifest_file(gen)) {
            return Err(violation("committed manifest is missing".into()));
        }
        let manifest = store.read(&self.manifest_file(gen))?;
        let state = self
            .parse_manifest(&String::from_utf8_lossy(&manifest), gen)
            .map_err(|e| violation(e.to_string()))?;
        let JournalRec::Intent {
            next_panel,
            n,
            b,
            data_len,
            data_fnv,
            ..
        } = intent
        else {
            return Err(violation("commit without an intent record".into()));
        };
        if state.next_panel != next_panel || state.n != n || state.b != b {
            return Err(violation(format!(
                "manifest (next_panel={} n={} b={}) disagrees with the journal intent \
                 (next_panel={next_panel} n={n} b={b})",
                state.next_panel, state.n, state.b
            )));
        }
        if !store.exists(&self.data_file(gen)) {
            return Err(violation("committed data snapshot is missing".into()));
        }
        let data = store.read(&self.data_file(gen))?;
        if data.len() as u64 != data_len {
            return Err(violation(format!(
                "checkpoint data is {} bytes, manifest records {data_len} (truncated?)",
                data.len()
            )));
        }
        if fnv1a(&data) != data_fnv {
            return Err(violation(
                "checkpoint data failed its integrity check".into(),
            ));
        }
        self.sweep(store, Some(gen))?;
        Ok(Some(state))
    }

    /// Snapshot the backing file as a new generation and commit it
    /// through the journal (see the module docs for the op order).
    /// Under [`CommitDiscipline::Barriered`] a crash at any instant —
    /// including torn or reordered un-barriered writes — leaves either
    /// this generation committed-and-valid or the previous one; the
    /// in-between states are uncommitted and swept by
    /// [`load_in`](Self::load_in).
    pub fn save_in<B: IoBackend>(
        &self,
        store: &mut impl Store,
        fm: &B,
        next_panel: usize,
    ) -> std::io::Result<u64> {
        let src = backend_data_name(fm)?;
        let data = store.read(&src)?;
        let data_fnv = fnv1a(&data);
        let records = self.read_journal(store)?;
        let (committed, max_gen) = Self::committed(&records);
        let gen = max_gen + 1;

        let intent = format!(
            "intent gen={gen} next_panel={next_panel} n={} b={} data_len={} data_fnv={data_fnv:016x}",
            fm.n(),
            fm.b(),
            data.len()
        );
        store.append(&self.journal_file(), journal_line(&intent).as_bytes())?;
        store.write_file(&self.data_file(gen), &data)?;

        let mut body = String::new();
        use std::fmt::Write as _;
        let _ = writeln!(body, "{MANIFEST_MAGIC}");
        let _ = writeln!(body, "gen={gen}");
        let _ = writeln!(body, "next_panel={next_panel}");
        let _ = writeln!(body, "n={}", fm.n());
        let _ = writeln!(body, "b={}", fm.b());
        let _ = writeln!(body, "data_len={}", data.len());
        let _ = writeln!(body, "data_fnv={data_fnv:016x}");
        let manifest_fnv = fnv1a(body.as_bytes());
        let _ = writeln!(body, "manifest_fnv={manifest_fnv:016x}");
        store.write_file(&self.manifest_file(gen), body.as_bytes())?;

        if self.discipline == CommitDiscipline::Barriered {
            // The barrier that makes "committed" mean "durable".
            store.barrier()?;
        }
        store.append(
            &self.journal_file(),
            journal_line(&format!("commit gen={gen}")).as_bytes(),
        )?;
        store.barrier()?;

        // Prune the superseded generation; a crash in here leaves a
        // stray pair that the next load sweeps.
        if let Some((old, _)) = committed {
            store.remove(&self.data_file(old))?;
            store.remove(&self.manifest_file(old))?;
        }
        Ok(data.len() as u64)
    }

    /// Copy the committed snapshot back over the backing file
    /// (discarding whatever a crashed run left there) and tell the
    /// backend its storage moved under it.
    pub fn restore_in<B: IoBackend>(
        &self,
        store: &mut impl Store,
        fm: &mut B,
    ) -> std::io::Result<u64> {
        let records = self.read_journal(store)?;
        let (committed, _) = Self::committed(&records);
        let Some((gen, _)) = committed else {
            return Err(bad("no committed checkpoint to restore from".into()));
        };
        let data = store.read(&self.data_file(gen))?;
        let dst = backend_data_name(fm)?;
        store.write_file(&dst, &data)?;
        fm.storage_restored();
        Ok(data.len() as u64)
    }

    /// Delete the checkpoint (after a completed run).  The journal goes
    /// first, behind a barrier, *then* the generation files: recovery
    /// must never observe a journal whose committed generation's files
    /// were already unlinked.
    pub fn remove_in(&self, store: &mut impl Store) -> std::io::Result<()> {
        store.remove(&self.journal_file())?;
        store.barrier()?;
        self.sweep(store, None)?;
        store.barrier()?;
        Ok(())
    }

    /// [`load_in`](Self::load_in) on the real filesystem.
    pub fn load(&self) -> std::io::Result<Option<CheckpointState>> {
        self.load_in(&mut FsStore::new())
    }

    /// [`save_in`](Self::save_in) on the real filesystem.
    pub fn save<B: IoBackend>(&self, fm: &B, next_panel: usize) -> std::io::Result<u64> {
        self.save_in(&mut FsStore::new(), fm, next_panel)
    }

    /// [`restore_in`](Self::restore_in) on the real filesystem.
    pub fn restore<B: IoBackend>(&self, fm: &mut B) -> std::io::Result<u64> {
        self.restore_in(&mut FsStore::new(), fm)
    }

    /// [`remove_in`](Self::remove_in) on the real filesystem.
    pub fn remove(&self) -> std::io::Result<()> {
        self.remove_in(&mut FsStore::new())
    }
}

/// The backend's data file as a store name.
fn backend_data_name<B: IoBackend>(fm: &B) -> std::io::Result<String> {
    fm.path()
        .map(|p| p.to_string_lossy().into_owned())
        .ok_or_else(|| {
            std::io::Error::new(
                std::io::ErrorKind::Unsupported,
                "backend has no backing file to snapshot",
            )
        })
}

/// Out-of-core Cholesky with a checkpoint after every panel.  If `ckpt`
/// already holds a (validated) committed generation for this matrix,
/// the data file is restored from the snapshot and the run resumes at
/// the recorded panel; otherwise it starts from scratch.  On success
/// the factor is barriered to stable storage and the checkpoint files
/// are removed.
///
/// A crash injected by the backend surfaces as [`OocError::Io`]; the
/// caller "restarts the process" by reopening the file
/// ([`FileMatrix::open`](crate::FileMatrix::open)) and calling this
/// again with the same `ckpt`.  The resumed run recomputes only the
/// panels after the last checkpoint, and — because the schedule is
/// deterministic — produces a factor bit-identical to an uninterrupted
/// run's.
pub fn ooc_potrf_checkpointed<B: IoBackend>(
    fm: &mut B,
    capacity_tiles: usize,
    ckpt: &Checkpoint,
) -> Result<CheckpointReport, OocError> {
    ooc_potrf_checkpointed_with(fm, capacity_tiles, ckpt, KernelImpl::Reference)
}

/// [`ooc_potrf_checkpointed`] with an explicit kernel engine.  The
/// checkpoint/restore protocol and all tile I/O are engine-independent.
/// `FastStrict` is bit-identical to `Reference`, so a run may even
/// crash under one of those engines and resume under the other; `Fast`
/// contracts multiply-adds through FMA, so mixing it with the others
/// across a restart yields a factor that differs by the (tiny)
/// contraction residual — restart under the engine you crashed with if
/// bit-reproducibility matters.
pub fn ooc_potrf_checkpointed_with<B: IoBackend>(
    fm: &mut B,
    capacity_tiles: usize,
    ckpt: &Checkpoint,
    kernel: KernelImpl,
) -> Result<CheckpointReport, OocError> {
    ooc_potrf_checkpointed_in(fm, capacity_tiles, ckpt, &mut FsStore::new(), kernel)
}

/// [`ooc_potrf_checkpointed_with`] over an explicit [`Store`] — the
/// entry point the crash-point explorer drives with a `SimStore`, so
/// checkpoint traffic and tile traffic land on the same recorded
/// schedule.
pub fn ooc_potrf_checkpointed_in<B: IoBackend>(
    fm: &mut B,
    capacity_tiles: usize,
    ckpt: &Checkpoint,
    store: &mut impl Store,
    kernel: KernelImpl,
) -> Result<CheckpointReport, OocError> {
    let nb = fm.nb();
    let mut report = CheckpointReport::default();
    let start = match ckpt.load_in(store)? {
        Some(state) => {
            if state.n != fm.n() || state.b != fm.b() {
                return Err(OocError::Io(bad(format!(
                    "checkpoint is for n={} b={}, matrix has n={} b={}",
                    state.n,
                    state.b,
                    fm.n(),
                    fm.b()
                ))));
            }
            report.checkpoint_bytes += ckpt.restore_in(store, fm)?;
            state.next_panel
        }
        None => {
            // Snapshot the pristine input before any tile is mutated:
            // a crash inside panel 0 leaves partially-updated tiles on
            // disk, and without this baseline the resume would factor
            // corrupted input.
            report.checkpoint_bytes += ckpt.save_in(store, fm, 0)?;
            report.checkpoints_written += 1;
            0
        }
    };
    report.start_panel = start;

    // Unhealable multi-element corruption (a checksumming backend's
    // `InvalidData`) is answered in-run: roll the file back to the last
    // panel checkpoint and retry the panel.  A corruption strikes only
    // once (the backend remembers landed faults across restores), so
    // each retry makes progress; the cap is a safety net, not a policy.
    const MAX_RESTORE_RETRIES: usize = 4;
    let unhealable = |e: &OocError| {
        matches!(e, OocError::Io(io) if io.kind() == std::io::ErrorKind::InvalidData)
    };

    let mut cache = TileCache::new(capacity_tiles);
    for k in start..nb {
        let mut retries = 0;
        loop {
            match factor_panel_with(fm, &mut cache, k, kernel) {
                Ok(()) => break,
                Err(e @ OocError::NotSpd { .. }) => {
                    cache.flush(fm)?;
                    return Err(e);
                }
                Err(e) if unhealable(&e) && retries < MAX_RESTORE_RETRIES => {
                    retries += 1;
                    report.restores += 1;
                    // Everything in RAM reflects the poisoned panel run;
                    // the snapshot on disk is the last trustworthy state.
                    // Discarding dirty tiles is deliberate here — they
                    // are exactly what the restore is rolling back.
                    cache.clear_discarding();
                    report.checkpoint_bytes += ckpt.restore_in(store, fm)?;
                }
                Err(e) => return Err(e),
            }
        }
        if fm.crash_after_panel(k) {
            // The plan kills us after the panel but before its
            // checkpoint: dirty cached tiles die with the process.
            return Err(OocError::Io(std::io::Error::other(
                "simulated crash: process killed after panel",
            )));
        }
        cache.flush(fm)?;
        report.checkpoint_bytes += ckpt.save_in(store, fm, k + 1)?;
        report.checkpoints_written += 1;
        report.panels_done += 1;
    }

    // Final integrity scrub, with the same restore-retry answer: the
    // last checkpoint (written after the final panel) holds the
    // finished factor, so rolling back and re-scrubbing converges.
    let mut retries = 0;
    loop {
        match fm.scrub() {
            Ok(()) => break,
            Err(e) if e.kind() == std::io::ErrorKind::InvalidData
                && retries < MAX_RESTORE_RETRIES =>
            {
                retries += 1;
                report.restores += 1;
                report.checkpoint_bytes += ckpt.restore_in(store, fm)?;
            }
            Err(e) => return Err(e.into()),
        }
    }

    // The factor must be durable in the data file *before* the
    // checkpoint that could rebuild it is deleted.
    fm.barrier()?;
    ckpt.remove_in(store)?;
    Ok(report)
}

#[cfg(test)]
#[allow(clippy::unwrap_used)]
mod tests {
    use super::*;
    use crate::backend::FaultyBackend;
    use crate::filemat::{scratch_path, FileMatrix};
    use crate::potrf::ooc_potrf;
    use cholcomm_faults::{CrashPoint, FaultPlan};
    use cholcomm_matrix::{norms, spd};
    use std::path::PathBuf;

    fn ckpt_prefix(tag: &str) -> PathBuf {
        scratch_path(tag).with_extension("ckpt")
    }

    #[test]
    fn uninterrupted_checkpointed_run_matches_plain() {
        let mut rng = spd::test_rng(220);
        let a = spd::random_spd(32, &mut rng);
        let p1 = scratch_path("ckpt-plain");
        let mut plain = FileMatrix::create(&p1, &a, 8).unwrap();
        ooc_potrf(&mut plain, 4).unwrap();
        let want = plain.to_matrix().unwrap();

        let p2 = scratch_path("ckpt-run");
        let mut fm = FileMatrix::create(&p2, &a, 8).unwrap();
        let ckpt = Checkpoint::at(&ckpt_prefix("uninterrupted"));
        let rep = ooc_potrf_checkpointed(&mut fm, 4, &ckpt).unwrap();
        let got = fm.to_matrix().unwrap();
        assert_eq!(norms::max_abs_diff(&got, &want), 0.0, "bit-identical");
        assert_eq!(rep.start_panel, 0);
        assert_eq!(rep.panels_done, 4);
        // One baseline snapshot of the input plus one per panel.
        assert_eq!(rep.checkpoints_written, 5);
        assert!(rep.checkpoint_bytes > 0);
        assert!(ckpt.load().unwrap().is_none(), "checkpoint cleaned up");
        assert!(
            !std::path::Path::new(&ckpt.journal_file()).exists(),
            "journal removed on success"
        );
    }

    #[test]
    fn crash_mid_factorization_then_resume_is_bit_identical() {
        let mut rng = spd::test_rng(221);
        let a = spd::random_spd(40, &mut rng);

        // Reference: uninterrupted factorization.
        let pref = scratch_path("ckpt-ref");
        let mut reference = FileMatrix::create(&pref, &a, 8).unwrap();
        ooc_potrf(&mut reference, 4).unwrap();
        let want = reference.to_matrix().unwrap();

        // Crashing run: die somewhere in the middle of the tile traffic.
        let data_path = scratch_path("ckpt-crash");
        let ckpt = Checkpoint::at(&ckpt_prefix("crash"));
        let n = a.rows();
        {
            let mut fm = FileMatrix::create(&data_path, &a, 8).unwrap();
            fm.set_persist(true);
            let plan = FaultPlan::builder(42)
                .crash_at(CrashPoint::AfterDiskOps(60))
                .build();
            let mut fb = FaultyBackend::new(fm, plan);
            let err = ooc_potrf_checkpointed(&mut fb, 4, &ckpt).unwrap_err();
            assert!(matches!(err, OocError::Io(_)), "crash surfaces as I/O death");
            assert!(fb.crashed());
        }

        // "New process": reopen the file, resume from the checkpoint.
        let state = ckpt.load().unwrap().expect("a checkpoint was written");
        assert!(state.next_panel > 0, "at least one panel completed pre-crash");
        assert!(state.next_panel < 5, "crash happened before the end");
        let mut fm = FileMatrix::open(&data_path, n, 8).unwrap();
        fm.set_persist(false); // test scratch: clean up on drop
        let rep = ooc_potrf_checkpointed(&mut fm, 4, &ckpt).unwrap();
        assert_eq!(rep.start_panel, state.next_panel, "resumed, not restarted");

        let got = fm.to_matrix().unwrap();
        assert_eq!(
            norms::max_abs_diff(&got, &want),
            0.0,
            "resumed factor must be bit-identical to the uninterrupted one"
        );
        let r = norms::cholesky_residual(&a, &got.lower_triangle().unwrap());
        assert!(r < norms::residual_tolerance(n), "residual {r}");
    }

    #[test]
    fn crash_inside_first_panel_restores_the_pristine_input() {
        // The nastiest case: the process dies before the first panel
        // checkpoint ever lands, with partially-updated tiles already on
        // disk.  The baseline checkpoint written at startup must roll
        // the file back to the untouched input, or the resume factors
        // corrupted data.
        let mut rng = spd::test_rng(224);
        let a = spd::random_spd(32, &mut rng);
        let pref = scratch_path("ckpt-p0-ref");
        let mut reference = FileMatrix::create(&pref, &a, 8).unwrap();
        ooc_potrf(&mut reference, 4).unwrap();
        let want = reference.to_matrix().unwrap();

        let data_path = scratch_path("ckpt-p0");
        let ckpt = Checkpoint::at(&ckpt_prefix("panel0"));
        {
            let mut fm = FileMatrix::create(&data_path, &a, 8).unwrap();
            fm.set_persist(true);
            // With the minimum cache capacity the panel-0 trailing
            // update evicts (and writes back) tiles long before the
            // panel completes; a few ops in, the file is neither A nor
            // a finished panel.
            let plan = FaultPlan::builder(5)
                .crash_at(CrashPoint::AfterDiskOps(10))
                .build();
            let mut fb = FaultyBackend::new(fm, plan);
            ooc_potrf_checkpointed(&mut fb, 3, &ckpt).unwrap_err();
        }
        let state = ckpt.load().unwrap().expect("baseline checkpoint exists");
        assert_eq!(state.next_panel, 0, "no panel completed before the crash");

        let mut fm = FileMatrix::open(&data_path, 32, 8).unwrap();
        fm.set_persist(false); // test scratch: clean up on drop
        let rep = ooc_potrf_checkpointed(&mut fm, 3, &ckpt).unwrap();
        assert_eq!(rep.start_panel, 0);
        let got = fm.to_matrix().unwrap();
        assert_eq!(
            norms::max_abs_diff(&got, &want),
            0.0,
            "resume after a panel-0 crash must factor the original input"
        );
    }

    #[test]
    fn crash_after_panel_loses_dirty_tiles_but_resume_recovers() {
        let mut rng = spd::test_rng(222);
        let a = spd::random_spd(32, &mut rng);
        let pref = scratch_path("ckpt-ap-ref");
        let mut reference = FileMatrix::create(&pref, &a, 8).unwrap();
        ooc_potrf(&mut reference, 4).unwrap();
        let want = reference.to_matrix().unwrap();

        let data_path = scratch_path("ckpt-ap");
        let ckpt = Checkpoint::at(&ckpt_prefix("after-panel"));
        {
            let mut fm = FileMatrix::create(&data_path, &a, 8).unwrap();
            fm.set_persist(true);
            let plan = FaultPlan::builder(1)
                .crash_at(CrashPoint::AfterPanel(2))
                .build();
            let mut fb = FaultyBackend::new(fm, plan);
            ooc_potrf_checkpointed(&mut fb, 4, &ckpt).unwrap_err();
        }
        let state = ckpt.load().unwrap().expect("checkpoints up to panel 2");
        assert_eq!(state.next_panel, 2, "panel 2's checkpoint never landed");

        let mut fm = FileMatrix::open(&data_path, 32, 8).unwrap();
        fm.set_persist(false); // test scratch: clean up on drop
        let rep = ooc_potrf_checkpointed(&mut fm, 4, &ckpt).unwrap();
        assert_eq!(rep.start_panel, 2);
        assert_eq!(rep.panels_done, 2);
        let got = fm.to_matrix().unwrap();
        assert_eq!(norms::max_abs_diff(&got, &want), 0.0);
    }

    #[test]
    fn flaky_disk_plus_crash_still_converges() {
        // The acceptance-style scenario: transient disk faults on top of
        // a mid-run crash; resume under a (different) flaky plan.
        let mut rng = spd::test_rng(223);
        let a = spd::random_spd(40, &mut rng);
        let pref = scratch_path("ckpt-flaky-ref");
        let mut reference = FileMatrix::create(&pref, &a, 8).unwrap();
        ooc_potrf(&mut reference, 4).unwrap();
        let want = reference.to_matrix().unwrap();

        let data_path = scratch_path("ckpt-flaky");
        let ckpt = Checkpoint::at(&ckpt_prefix("flaky"));
        let transients;
        {
            let mut fm = FileMatrix::create(&data_path, &a, 8).unwrap();
            fm.set_persist(true);
            let plan = FaultPlan::builder(9)
                .disk_transient_rate(0.1)
                .disk_short_read_rate(0.05)
                .crash_at(CrashPoint::AfterDiskOps(70))
                .build();
            let mut fb = FaultyBackend::new(fm, plan);
            ooc_potrf_checkpointed(&mut fb, 4, &ckpt).unwrap_err();
            transients = fb.fault_stats();
            assert!(transients.disk_faults() >= 3, "flaky disk must have bitten: {transients:?}");
        }

        let mut fm = FileMatrix::open(&data_path, 40, 8).unwrap();
        fm.set_persist(false); // test scratch: clean up on drop
        let plan = FaultPlan::builder(10).disk_transient_rate(0.1).build();
        let mut fb = FaultyBackend::new(fm, plan);
        ooc_potrf_checkpointed(&mut fb, 4, &ckpt).unwrap();
        let got = fb.inner_mut().to_matrix().unwrap();
        assert_eq!(
            norms::max_abs_diff(&got, &want),
            0.0,
            "flaky disk + crash + resume must not change a single bit"
        );
    }

    #[test]
    fn unhealable_corruption_mid_run_restores_and_retries() {
        use crate::abft::AbftBackend;

        let mut rng = spd::test_rng(226);
        let a = spd::random_spd(32, &mut rng);
        let pref = scratch_path("ckpt-abft-ref");
        let mut reference = FileMatrix::create(&pref, &a, 8).unwrap();
        ooc_potrf(&mut reference, 4).unwrap();
        let want = reference.to_matrix().unwrap();

        // Two elements of one tile struck in the same panel: beyond the
        // checksums, so the driver must roll back to the panel
        // checkpoint and retry.  A second, healable flip rides along.
        let plan = FaultPlan::builder(50)
            .inject_bit_flip(1, (2, 1), (0, 0), 1 << 44)
            .inject_bit_flip(1, (2, 1), (6, 3), 1 << 45)
            .inject_bit_flip(2, (3, 2), (1, 1), 1 << 63)
            .build();
        let fm = FileMatrix::create(&scratch_path("ckpt-abft"), &a, 8).unwrap();
        let mut ab = AbftBackend::new(fm, plan);
        let ckpt = Checkpoint::at(&ckpt_prefix("abft"));
        let rep = ooc_potrf_checkpointed(&mut ab, 3, &ckpt).unwrap();
        assert!(rep.restores >= 1, "multi-element corruption forced a rollback");
        assert_eq!(ab.abft_stats().unrecoverable, 1);
        assert_eq!(ab.abft_stats().corrections, 1);
        let got = ab.inner_mut().to_matrix().unwrap();
        assert_eq!(
            norms::max_abs_diff(&got, &want),
            0.0,
            "restored-and-retried factor must be bit-identical"
        );
    }

    #[test]
    fn corruption_after_a_tiles_last_read_is_caught_by_the_scrub() {
        use crate::abft::AbftBackend;

        let mut rng = spd::test_rng(227);
        let a = spd::random_spd(32, &mut rng);
        let pref = scratch_path("ckpt-scrub-ref");
        let mut reference = FileMatrix::create(&pref, &a, 8).unwrap();
        ooc_potrf(&mut reference, 4).unwrap();
        let want = reference.to_matrix().unwrap();

        // Strike a long-finished panel tile at the final step: no kernel
        // ever reads it again, so only the end-of-run scrub can see it.
        let plan = FaultPlan::builder(51)
            .inject_bit_flip(3, (1, 0), (2, 2), 1 << 40)
            .inject_bit_flip(3, (2, 0), (0, 0), 1 << 41)
            .inject_bit_flip(3, (2, 0), (5, 5), 1 << 42)
            .build();
        let fm = FileMatrix::create(&scratch_path("ckpt-scrub"), &a, 8).unwrap();
        let mut ab = AbftBackend::new(fm, plan);
        let ckpt = Checkpoint::at(&ckpt_prefix("scrub"));
        let rep = ooc_potrf_checkpointed(&mut ab, 3, &ckpt).unwrap();
        assert!(
            ab.abft_stats().corrections >= 1,
            "the single-element flip heals in the scrub"
        );
        assert!(
            rep.restores >= 1,
            "the multi-element flip forces a scrub rollback"
        );
        let got = ab.inner_mut().to_matrix().unwrap();
        assert_eq!(norms::max_abs_diff(&got, &want), 0.0);
    }

    #[test]
    fn truncated_checkpoint_data_is_rejected() {
        let mut rng = spd::test_rng(228);
        let a = spd::random_spd(16, &mut rng);
        let p = scratch_path("ckpt-trunc");
        let fm = FileMatrix::create(&p, &a, 8).unwrap();
        let ckpt = Checkpoint::at(&ckpt_prefix("trunc"));
        ckpt.save(&fm, 1).unwrap();
        let state = ckpt.load().unwrap().expect("intact checkpoint loads");

        // Lop bytes off the snapshot, as a torn copy or dying disk would.
        let data_path = ckpt.data_file(state.gen);
        let bytes = std::fs::read(&data_path).unwrap();
        std::fs::write(&data_path, &bytes[..bytes.len() / 2]).unwrap();
        let err = ckpt.load().unwrap_err();
        assert_eq!(err.kind(), std::io::ErrorKind::InvalidData);
        assert!(err.to_string().contains("truncated"), "{err}");
        assert!(
            err.to_string().contains("commit-protocol violation"),
            "a committed-but-invalid generation must fail loudly: {err}"
        );
        ckpt.remove().unwrap();
    }

    #[test]
    fn bit_rotted_checkpoint_data_is_rejected() {
        let mut rng = spd::test_rng(229);
        let a = spd::random_spd(16, &mut rng);
        let p = scratch_path("ckpt-rot");
        let fm = FileMatrix::create(&p, &a, 8).unwrap();
        let ckpt = Checkpoint::at(&ckpt_prefix("rot"));
        ckpt.save(&fm, 1).unwrap();
        let state = ckpt.load().unwrap().expect("intact checkpoint loads");

        // Same length, one bit flipped.
        let data_path = ckpt.data_file(state.gen);
        let mut bytes = std::fs::read(&data_path).unwrap();
        let mid = bytes.len() / 2;
        bytes[mid] ^= 0x10;
        std::fs::write(&data_path, &bytes).unwrap();
        let err = ckpt.load().unwrap_err();
        assert_eq!(err.kind(), std::io::ErrorKind::InvalidData);
        ckpt.remove().unwrap();
    }

    #[test]
    fn corrupted_manifest_is_rejected() {
        let mut rng = spd::test_rng(230);
        let a = spd::random_spd(16, &mut rng);
        let p = scratch_path("ckpt-badman");
        let fm = FileMatrix::create(&p, &a, 8).unwrap();
        let ckpt = Checkpoint::at(&ckpt_prefix("badman"));
        ckpt.save(&fm, 2).unwrap();
        let state = ckpt.load().unwrap().expect("intact checkpoint loads");

        // Tamper with the recorded panel: the manifest hash must catch it.
        let man_path = ckpt.manifest_file(state.gen);
        let text = std::fs::read_to_string(&man_path).unwrap();
        std::fs::write(&man_path, text.replace("next_panel=2", "next_panel=4")).unwrap();
        let err = ckpt.load().unwrap_err();
        assert_eq!(err.kind(), std::io::ErrorKind::InvalidData);
        ckpt.remove().unwrap();
    }

    #[test]
    fn crash_during_save_leaves_the_previous_generation_loadable() {
        // A save that died after its intent (and a partial data write)
        // but before its commit: the journal's last record is the
        // uncommitted intent, a torn snapshot sits on disk.  Recovery
        // must return the previous generation and sweep the strays.
        let mut rng = spd::test_rng(231);
        let a = spd::random_spd(16, &mut rng);
        let p = scratch_path("ckpt-torn");
        let fm = FileMatrix::create(&p, &a, 8).unwrap();
        let ckpt = Checkpoint::at(&ckpt_prefix("torn"));
        ckpt.save(&fm, 1).unwrap();
        let gen1 = ckpt.load().unwrap().expect("gen 1 committed").gen;

        let mut store = FsStore::new();
        let intent = format!(
            "intent gen={} next_panel=2 n=16 b=8 data_len=2048 data_fnv={:016x}",
            gen1 + 1,
            0u64
        );
        store
            .append(&ckpt.journal_file(), journal_line(&intent).as_bytes())
            .unwrap();
        store
            .write_file(&ckpt.data_file(gen1 + 1), &[0u8; 100])
            .unwrap();
        // Legacy stray from a pre-journal save, too.
        store
            .write_file(&format!("{}.data.tmp", ckpt.journal_file()), b"junk")
            .unwrap();

        let state = ckpt.load().unwrap().expect("previous generation intact");
        assert_eq!(state.next_panel, 1);
        assert_eq!(state.gen, gen1);
        assert!(
            !std::path::Path::new(&ckpt.data_file(gen1 + 1)).exists(),
            "uncommitted generation swept"
        );
        assert!(
            !std::path::Path::new(&format!("{}.data.tmp", ckpt.journal_file())).exists(),
            ".tmp stray swept"
        );
        ckpt.remove().unwrap();
    }

    #[test]
    fn torn_journal_tail_is_ignored() {
        let mut rng = spd::test_rng(232);
        let a = spd::random_spd(16, &mut rng);
        let p = scratch_path("ckpt-tornj");
        let fm = FileMatrix::create(&p, &a, 8).unwrap();
        let ckpt = Checkpoint::at(&ckpt_prefix("tornj"));
        ckpt.save(&fm, 1).unwrap();

        // A torn append: half a record, no valid rec_fnv.
        let mut store = FsStore::new();
        store
            .append(&ckpt.journal_file(), b"commit gen=2 rec_fnv=dead")
            .unwrap();
        let state = ckpt.load().unwrap().expect("valid prefix still loads");
        assert_eq!(state.next_panel, 1);
        ckpt.remove().unwrap();
    }

    #[test]
    fn commit_without_intent_fails_loudly() {
        let mut rng = spd::test_rng(233);
        let a = spd::random_spd(16, &mut rng);
        let p = scratch_path("ckpt-orphan");
        let fm = FileMatrix::create(&p, &a, 8).unwrap();
        let ckpt = Checkpoint::at(&ckpt_prefix("orphan"));
        ckpt.save(&fm, 1).unwrap();

        // A (validly hashed) commit for a generation nobody intended:
        // only a protocol bug can produce it, so it must not be quietly
        // preferred *or* ignored in a way that hides the bug — the
        // highest committed-with-intent gen still wins, orphans don't.
        let mut store = FsStore::new();
        store
            .append(
                &ckpt.journal_file(),
                journal_line("commit gen=7").as_bytes(),
            )
            .unwrap();
        let state = ckpt.load().unwrap().expect("orphan commit is not adopted");
        assert_eq!(state.gen, 1);
        ckpt.remove().unwrap();
    }

    #[test]
    fn mismatched_checkpoint_is_rejected() {
        let mut rng = spd::test_rng(224);
        let a = spd::random_spd(16, &mut rng);
        let p = scratch_path("ckpt-mismatch");
        let mut fm = FileMatrix::create(&p, &a, 8).unwrap();
        let ckpt = Checkpoint::at(&ckpt_prefix("mismatch"));
        ckpt.save(&fm, 1).unwrap();
        // Same files, wrong geometry.
        let a2 = spd::random_spd(24, &mut rng);
        let p2 = scratch_path("ckpt-mismatch2");
        let mut fm2 = FileMatrix::create(&p2, &a2, 8).unwrap();
        let err = ooc_potrf_checkpointed(&mut fm2, 4, &ckpt).unwrap_err();
        assert!(matches!(err, OocError::Io(_)));
        ckpt.remove().unwrap();
        // The original still factors fine from scratch after cleanup.
        ooc_potrf(&mut fm, 4).unwrap();
    }
}
