//! Panel-granularity checkpoint/restart for the out-of-core Cholesky.
//!
//! After each completed panel the driver flushes the tile cache and
//! snapshots the backing file next to a small manifest recording the
//! next panel to run (and `n`, `b` for validation).  Both are written
//! atomically (temp file + rename), so a crash at any instant leaves
//! either the previous checkpoint or the new one — never a torn one.
//!
//! A *full* snapshot per checkpoint is deliberate: the factorization is
//! right-looking, so panel `k` mutates the whole trailing submatrix.
//! Restarting mid-panel from the live data file would double-apply
//! updates from tiles that were flushed before the crash; restoring the
//! last panel-boundary snapshot is the only state that is both cheap to
//! reason about and bitwise reproducible.  Checkpoint I/O is charged to
//! its own counters ([`CheckpointReport`]), not to the algorithm's
//! [`IoStats`](crate::IoStats), and is not subject to tile-level fault
//! injection — the fault model targets the data path, recovery targets
//! the recovery path.

use crate::backend::IoBackend;
use crate::potrf::{factor_panel, OocError, TileCache};
use std::io::{Read, Write};
use std::path::{Path, PathBuf};

const MANIFEST_MAGIC: &str = "cholcomm-ooc-checkpoint v1";

/// A checkpoint location: `<prefix>.data` holds the matrix snapshot,
/// `<prefix>.manifest` the restart metadata.
#[derive(Debug, Clone)]
pub struct Checkpoint {
    data_path: PathBuf,
    manifest_path: PathBuf,
}

/// Parsed manifest contents.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct CheckpointState {
    /// First panel that still needs to run.
    pub next_panel: usize,
    /// Matrix order the snapshot belongs to.
    pub n: usize,
    /// Tile size the snapshot belongs to.
    pub b: usize,
}

/// What a checkpointed run did.
#[derive(Debug, Clone, Copy, Default)]
pub struct CheckpointReport {
    /// Panel the run started at (0 for a fresh start).
    pub start_panel: usize,
    /// Panels completed by this run.
    pub panels_done: usize,
    /// Checkpoints written.
    pub checkpoints_written: usize,
    /// Bytes of checkpoint snapshot traffic (separate from the
    /// algorithm's tile I/O).
    pub checkpoint_bytes: u64,
}

impl Checkpoint {
    /// Checkpoint files rooted at `prefix` (two siblings are created:
    /// `<prefix>.data` and `<prefix>.manifest`).
    pub fn at(prefix: &Path) -> Self {
        let mut data = prefix.as_os_str().to_owned();
        data.push(".data");
        let mut manifest = prefix.as_os_str().to_owned();
        manifest.push(".manifest");
        Checkpoint {
            data_path: PathBuf::from(data),
            manifest_path: PathBuf::from(manifest),
        }
    }

    /// Read the manifest, if a complete checkpoint exists.
    pub fn load(&self) -> std::io::Result<Option<CheckpointState>> {
        if !self.manifest_path.exists() || !self.data_path.exists() {
            return Ok(None);
        }
        let mut text = String::new();
        std::fs::File::open(&self.manifest_path)?.read_to_string(&mut text)?;
        let mut lines = text.lines();
        if lines.next() != Some(MANIFEST_MAGIC) {
            return Err(std::io::Error::new(
                std::io::ErrorKind::InvalidData,
                "unrecognised checkpoint manifest",
            ));
        }
        let mut next_panel = None;
        let mut n = None;
        let mut b = None;
        for line in lines {
            let Some((key, val)) = line.split_once('=') else {
                continue;
            };
            let val: usize = val.parse().map_err(|_| {
                std::io::Error::new(
                    std::io::ErrorKind::InvalidData,
                    format!("bad manifest value: {line}"),
                )
            })?;
            match key {
                "next_panel" => next_panel = Some(val),
                "n" => n = Some(val),
                "b" => b = Some(val),
                _ => {}
            }
        }
        match (next_panel, n, b) {
            (Some(next_panel), Some(n), Some(b)) => Ok(Some(CheckpointState { next_panel, n, b })),
            _ => Err(std::io::Error::new(
                std::io::ErrorKind::InvalidData,
                "incomplete checkpoint manifest",
            )),
        }
    }

    /// Snapshot the backing file and record that panels `0..next_panel`
    /// are done.  The data snapshot lands before the manifest, and both
    /// are renamed into place, so [`load`](Self::load) never observes a
    /// manifest without its data.
    pub fn save<B: IoBackend>(&self, fm: &B, next_panel: usize) -> std::io::Result<u64> {
        let src = fm.path().ok_or_else(|| {
            std::io::Error::new(
                std::io::ErrorKind::Unsupported,
                "backend has no backing file to snapshot",
            )
        })?;
        let tmp_data = self.data_path.with_extension("data.tmp");
        let bytes = std::fs::copy(src, &tmp_data)?;
        std::fs::rename(&tmp_data, &self.data_path)?;

        let tmp_manifest = self.manifest_path.with_extension("manifest.tmp");
        {
            let mut f = std::fs::File::create(&tmp_manifest)?;
            writeln!(f, "{MANIFEST_MAGIC}")?;
            writeln!(f, "next_panel={next_panel}")?;
            writeln!(f, "n={}", fm.n())?;
            writeln!(f, "b={}", fm.b())?;
        }
        std::fs::rename(&tmp_manifest, &self.manifest_path)?;
        Ok(bytes)
    }

    /// Copy the snapshot back over the backing file (discarding whatever
    /// a crashed run left there) and tell the backend its storage moved
    /// under it.
    pub fn restore<B: IoBackend>(&self, fm: &mut B) -> std::io::Result<u64> {
        let dst = fm
            .path()
            .ok_or_else(|| {
                std::io::Error::new(
                    std::io::ErrorKind::Unsupported,
                    "backend has no backing file to restore into",
                )
            })?
            .to_path_buf();
        let bytes = std::fs::copy(&self.data_path, dst)?;
        fm.storage_restored();
        Ok(bytes)
    }

    /// Delete the checkpoint files (after a completed run).
    pub fn remove(&self) -> std::io::Result<()> {
        for p in [&self.data_path, &self.manifest_path] {
            match std::fs::remove_file(p) {
                Ok(()) => {}
                Err(e) if e.kind() == std::io::ErrorKind::NotFound => {}
                Err(e) => return Err(e),
            }
        }
        Ok(())
    }
}

/// Out-of-core Cholesky with a checkpoint after every panel.  If `ckpt`
/// already holds a (validated) checkpoint for this matrix, the data file
/// is restored from the snapshot and the run resumes at the recorded
/// panel; otherwise it starts from scratch.  On success the checkpoint
/// files are removed.
///
/// A crash injected by the backend surfaces as [`OocError::Io`]; the
/// caller "restarts the process" by reopening the file
/// ([`FileMatrix::open`](crate::FileMatrix::open)) and calling this
/// again with the same `ckpt`.  The resumed run recomputes only the
/// panels after the last checkpoint, and — because the schedule is
/// deterministic — produces a factor bit-identical to an uninterrupted
/// run's.
pub fn ooc_potrf_checkpointed<B: IoBackend>(
    fm: &mut B,
    capacity_tiles: usize,
    ckpt: &Checkpoint,
) -> Result<CheckpointReport, OocError> {
    let nb = fm.nb();
    let mut report = CheckpointReport::default();
    let start = match ckpt.load()? {
        Some(state) => {
            if state.n != fm.n() || state.b != fm.b() {
                return Err(OocError::Io(std::io::Error::new(
                    std::io::ErrorKind::InvalidData,
                    format!(
                        "checkpoint is for n={} b={}, matrix has n={} b={}",
                        state.n,
                        state.b,
                        fm.n(),
                        fm.b()
                    ),
                )));
            }
            report.checkpoint_bytes += ckpt.restore(fm)?;
            state.next_panel
        }
        None => {
            // Snapshot the pristine input before any tile is mutated:
            // a crash inside panel 0 leaves partially-updated tiles on
            // disk, and without this baseline the resume would factor
            // corrupted input.
            report.checkpoint_bytes += ckpt.save(fm, 0)?;
            report.checkpoints_written += 1;
            0
        }
    };
    report.start_panel = start;

    let mut cache = TileCache::new(capacity_tiles);
    for k in start..nb {
        match factor_panel(fm, &mut cache, k) {
            Ok(()) => {}
            Err(e @ OocError::NotPositiveDefinite { .. }) => {
                cache.flush(fm)?;
                return Err(e);
            }
            Err(e) => return Err(e),
        }
        if fm.crash_after_panel(k) {
            // The plan kills us after the panel but before its
            // checkpoint: dirty cached tiles die with the process.
            return Err(OocError::Io(std::io::Error::other(
                "simulated crash: process killed after panel",
            )));
        }
        cache.flush(fm)?;
        report.checkpoint_bytes += ckpt.save(fm, k + 1)?;
        report.checkpoints_written += 1;
        report.panels_done += 1;
    }
    ckpt.remove()?;
    Ok(report)
}

#[cfg(test)]
#[allow(clippy::unwrap_used)]
mod tests {
    use super::*;
    use crate::backend::FaultyBackend;
    use crate::filemat::{scratch_path, FileMatrix};
    use crate::potrf::ooc_potrf;
    use cholcomm_faults::{CrashPoint, FaultPlan};
    use cholcomm_matrix::{norms, spd};

    fn ckpt_prefix(tag: &str) -> PathBuf {
        scratch_path(tag).with_extension("ckpt")
    }

    #[test]
    fn uninterrupted_checkpointed_run_matches_plain() {
        let mut rng = spd::test_rng(220);
        let a = spd::random_spd(32, &mut rng);
        let p1 = scratch_path("ckpt-plain");
        let mut plain = FileMatrix::create(&p1, &a, 8).unwrap();
        ooc_potrf(&mut plain, 4).unwrap();
        let want = plain.to_matrix().unwrap();

        let p2 = scratch_path("ckpt-run");
        let mut fm = FileMatrix::create(&p2, &a, 8).unwrap();
        let ckpt = Checkpoint::at(&ckpt_prefix("uninterrupted"));
        let rep = ooc_potrf_checkpointed(&mut fm, 4, &ckpt).unwrap();
        let got = fm.to_matrix().unwrap();
        assert_eq!(norms::max_abs_diff(&got, &want), 0.0, "bit-identical");
        assert_eq!(rep.start_panel, 0);
        assert_eq!(rep.panels_done, 4);
        // One baseline snapshot of the input plus one per panel.
        assert_eq!(rep.checkpoints_written, 5);
        assert!(rep.checkpoint_bytes > 0);
        assert!(ckpt.load().unwrap().is_none(), "checkpoint cleaned up");
    }

    #[test]
    fn crash_mid_factorization_then_resume_is_bit_identical() {
        let mut rng = spd::test_rng(221);
        let a = spd::random_spd(40, &mut rng);

        // Reference: uninterrupted factorization.
        let pref = scratch_path("ckpt-ref");
        let mut reference = FileMatrix::create(&pref, &a, 8).unwrap();
        ooc_potrf(&mut reference, 4).unwrap();
        let want = reference.to_matrix().unwrap();

        // Crashing run: die somewhere in the middle of the tile traffic.
        let data_path = scratch_path("ckpt-crash");
        let ckpt = Checkpoint::at(&ckpt_prefix("crash"));
        let n = a.rows();
        {
            let mut fm = FileMatrix::create(&data_path, &a, 8).unwrap();
            fm.set_persist(true);
            let plan = FaultPlan::builder(42)
                .crash_at(CrashPoint::AfterDiskOps(60))
                .build();
            let mut fb = FaultyBackend::new(fm, plan);
            let err = ooc_potrf_checkpointed(&mut fb, 4, &ckpt).unwrap_err();
            assert!(matches!(err, OocError::Io(_)), "crash surfaces as I/O death");
            assert!(fb.crashed());
        }

        // "New process": reopen the file, resume from the checkpoint.
        let state = ckpt.load().unwrap().expect("a checkpoint was written");
        assert!(state.next_panel > 0, "at least one panel completed pre-crash");
        assert!(state.next_panel < 5, "crash happened before the end");
        let mut fm = FileMatrix::open(&data_path, n, 8).unwrap();
        fm.set_persist(false); // test scratch: clean up on drop
        let rep = ooc_potrf_checkpointed(&mut fm, 4, &ckpt).unwrap();
        assert_eq!(rep.start_panel, state.next_panel, "resumed, not restarted");

        let got = fm.to_matrix().unwrap();
        assert_eq!(
            norms::max_abs_diff(&got, &want),
            0.0,
            "resumed factor must be bit-identical to the uninterrupted one"
        );
        let r = norms::cholesky_residual(&a, &got.lower_triangle().unwrap());
        assert!(r < norms::residual_tolerance(n), "residual {r}");
    }

    #[test]
    fn crash_inside_first_panel_restores_the_pristine_input() {
        // The nastiest case: the process dies before the first panel
        // checkpoint ever lands, with partially-updated tiles already on
        // disk.  The baseline checkpoint written at startup must roll
        // the file back to the untouched input, or the resume factors
        // corrupted data.
        let mut rng = spd::test_rng(224);
        let a = spd::random_spd(32, &mut rng);
        let pref = scratch_path("ckpt-p0-ref");
        let mut reference = FileMatrix::create(&pref, &a, 8).unwrap();
        ooc_potrf(&mut reference, 4).unwrap();
        let want = reference.to_matrix().unwrap();

        let data_path = scratch_path("ckpt-p0");
        let ckpt = Checkpoint::at(&ckpt_prefix("panel0"));
        {
            let mut fm = FileMatrix::create(&data_path, &a, 8).unwrap();
            fm.set_persist(true);
            // With the minimum cache capacity the panel-0 trailing
            // update evicts (and writes back) tiles long before the
            // panel completes; a few ops in, the file is neither A nor
            // a finished panel.
            let plan = FaultPlan::builder(5)
                .crash_at(CrashPoint::AfterDiskOps(10))
                .build();
            let mut fb = FaultyBackend::new(fm, plan);
            ooc_potrf_checkpointed(&mut fb, 3, &ckpt).unwrap_err();
        }
        let state = ckpt.load().unwrap().expect("baseline checkpoint exists");
        assert_eq!(state.next_panel, 0, "no panel completed before the crash");

        let mut fm = FileMatrix::open(&data_path, 32, 8).unwrap();
        fm.set_persist(false); // test scratch: clean up on drop
        let rep = ooc_potrf_checkpointed(&mut fm, 3, &ckpt).unwrap();
        assert_eq!(rep.start_panel, 0);
        let got = fm.to_matrix().unwrap();
        assert_eq!(
            norms::max_abs_diff(&got, &want),
            0.0,
            "resume after a panel-0 crash must factor the original input"
        );
    }

    #[test]
    fn crash_after_panel_loses_dirty_tiles_but_resume_recovers() {
        let mut rng = spd::test_rng(222);
        let a = spd::random_spd(32, &mut rng);
        let pref = scratch_path("ckpt-ap-ref");
        let mut reference = FileMatrix::create(&pref, &a, 8).unwrap();
        ooc_potrf(&mut reference, 4).unwrap();
        let want = reference.to_matrix().unwrap();

        let data_path = scratch_path("ckpt-ap");
        let ckpt = Checkpoint::at(&ckpt_prefix("after-panel"));
        {
            let mut fm = FileMatrix::create(&data_path, &a, 8).unwrap();
            fm.set_persist(true);
            let plan = FaultPlan::builder(1)
                .crash_at(CrashPoint::AfterPanel(2))
                .build();
            let mut fb = FaultyBackend::new(fm, plan);
            ooc_potrf_checkpointed(&mut fb, 4, &ckpt).unwrap_err();
        }
        let state = ckpt.load().unwrap().expect("checkpoints up to panel 2");
        assert_eq!(state.next_panel, 2, "panel 2's checkpoint never landed");

        let mut fm = FileMatrix::open(&data_path, 32, 8).unwrap();
        fm.set_persist(false); // test scratch: clean up on drop
        let rep = ooc_potrf_checkpointed(&mut fm, 4, &ckpt).unwrap();
        assert_eq!(rep.start_panel, 2);
        assert_eq!(rep.panels_done, 2);
        let got = fm.to_matrix().unwrap();
        assert_eq!(norms::max_abs_diff(&got, &want), 0.0);
    }

    #[test]
    fn flaky_disk_plus_crash_still_converges() {
        // The acceptance-style scenario: transient disk faults on top of
        // a mid-run crash; resume under a (different) flaky plan.
        let mut rng = spd::test_rng(223);
        let a = spd::random_spd(40, &mut rng);
        let pref = scratch_path("ckpt-flaky-ref");
        let mut reference = FileMatrix::create(&pref, &a, 8).unwrap();
        ooc_potrf(&mut reference, 4).unwrap();
        let want = reference.to_matrix().unwrap();

        let data_path = scratch_path("ckpt-flaky");
        let ckpt = Checkpoint::at(&ckpt_prefix("flaky"));
        let transients;
        {
            let mut fm = FileMatrix::create(&data_path, &a, 8).unwrap();
            fm.set_persist(true);
            let plan = FaultPlan::builder(9)
                .disk_transient_rate(0.1)
                .disk_short_read_rate(0.05)
                .crash_at(CrashPoint::AfterDiskOps(70))
                .build();
            let mut fb = FaultyBackend::new(fm, plan);
            ooc_potrf_checkpointed(&mut fb, 4, &ckpt).unwrap_err();
            transients = fb.fault_stats();
            assert!(transients.disk_faults() >= 3, "flaky disk must have bitten: {transients:?}");
        }

        let mut fm = FileMatrix::open(&data_path, 40, 8).unwrap();
        fm.set_persist(false); // test scratch: clean up on drop
        let plan = FaultPlan::builder(10).disk_transient_rate(0.1).build();
        let mut fb = FaultyBackend::new(fm, plan);
        ooc_potrf_checkpointed(&mut fb, 4, &ckpt).unwrap();
        let got = fb.inner_mut().to_matrix().unwrap();
        assert_eq!(
            norms::max_abs_diff(&got, &want),
            0.0,
            "flaky disk + crash + resume must not change a single bit"
        );
    }

    #[test]
    fn mismatched_checkpoint_is_rejected() {
        let mut rng = spd::test_rng(224);
        let a = spd::random_spd(16, &mut rng);
        let p = scratch_path("ckpt-mismatch");
        let mut fm = FileMatrix::create(&p, &a, 8).unwrap();
        let ckpt = Checkpoint::at(&ckpt_prefix("mismatch"));
        ckpt.save(&fm, 1).unwrap();
        // Same files, wrong geometry.
        let a2 = spd::random_spd(24, &mut rng);
        let p2 = scratch_path("ckpt-mismatch2");
        let mut fm2 = FileMatrix::create(&p2, &a2, 8).unwrap();
        let err = ooc_potrf_checkpointed(&mut fm2, 4, &ckpt).unwrap_err();
        assert!(matches!(err, OocError::Io(_)));
        ckpt.remove().unwrap();
        // The original still factors fine from scratch after cleanup.
        ooc_potrf(&mut fm, 4).unwrap();
    }
}
