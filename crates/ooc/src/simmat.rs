//! A tile store on the simulated crash disk — the [`IoBackend`] the
//! crash-point explorer drives.
//!
//! [`SimMatrix`] mirrors [`FileMatrix`](crate::FileMatrix)'s on-disk
//! layout (tiles column-major by tile index, elements column-major
//! within a tile, edge tiles zero-padded to full `b x b` stride) but
//! stores the bytes on a shared [`SimDisk`], so every tile write lands
//! in the recorded op schedule and every barrier is explicit.  The
//! checkpoint layer snapshots/restores it through a
//! [`SimStore`](cholcomm_faults::SimStore) on the same disk, which is
//! what lets one recorded schedule interleave data-file and
//! journal/manifest operations — exactly the interleaving a crash tears
//! apart.

use crate::backend::IoBackend;
use crate::filemat::IoStats;
use cholcomm_faults::SimDisk;
use cholcomm_matrix::Matrix;
use std::path::{Path, PathBuf};
use std::sync::{Arc, Mutex, MutexGuard};

/// An `n x n` matrix stored as `b x b` tiles on a [`SimDisk`].
#[derive(Debug)]
pub struct SimMatrix {
    disk: Arc<Mutex<SimDisk>>,
    name: String,
    path: PathBuf,
    n: usize,
    b: usize,
    nb: usize,
    stats: IoStats,
    /// Virtual head position, for seek accounting that mirrors
    /// [`FileMatrix`](crate::FileMatrix): sequential transfers are free,
    /// jumps charge one seek plus the distance travelled.  `u64::MAX`
    /// means "position unknown" (fresh handle, post-restore).
    cursor: u64,
    latency: crate::backend::LatencyModel,
}

fn lock(disk: &Arc<Mutex<SimDisk>>) -> MutexGuard<'_, SimDisk> {
    disk.lock()
        .unwrap_or_else(std::sync::PoisonError::into_inner)
}

impl SimMatrix {
    /// Create (or overwrite) file `name` on `disk` holding `a` tiled at
    /// `b`, written as one operation.  Like `FileMatrix::create`, the
    /// initial population is not charged to the I/O counters (the paper
    /// assumes the input starts in slow memory) — and it is *not*
    /// barriered: making the input durable is the caller's decision.
    pub fn create(
        disk: Arc<Mutex<SimDisk>>,
        name: &str,
        a: &Matrix<f64>,
        b: usize,
    ) -> std::io::Result<SimMatrix> {
        assert!(a.is_square(), "square matrices only");
        assert!(b > 0);
        let n = a.rows();
        let nb = n.div_ceil(b);
        let mut bytes = Vec::with_capacity(nb * nb * b * b * 8);
        for bj in 0..nb {
            for bi in 0..nb {
                for j in 0..b {
                    for i in 0..b {
                        let (gi, gj) = (bi * b + i, bj * b + j);
                        let v = if gi < n && gj < n { a[(gi, gj)] } else { 0.0 };
                        bytes.extend_from_slice(&v.to_le_bytes());
                    }
                }
            }
        }
        lock(&disk).write_file(name, &bytes);
        Ok(SimMatrix {
            disk,
            name: name.to_string(),
            path: PathBuf::from(name),
            n,
            b,
            nb,
            stats: IoStats::default(),
            cursor: u64::MAX,
            latency: crate::backend::LatencyModel::none(),
        })
    }

    /// Reopen an existing simulated data file with the same geometry —
    /// the recovery path.  A file whose length does not match the tile
    /// layout (e.g. a torn un-barriered create) is rejected with
    /// `InvalidData`, mirroring `FileMatrix::open`.
    pub fn open(
        disk: Arc<Mutex<SimDisk>>,
        name: &str,
        n: usize,
        b: usize,
    ) -> std::io::Result<SimMatrix> {
        assert!(b > 0);
        let nb = n.div_ceil(b);
        let expect = (nb * nb * b * b * 8) as u64;
        let actual = lock(&disk).len_of(name).ok_or_else(|| {
            std::io::Error::new(
                std::io::ErrorKind::NotFound,
                format!("simdisk: no data file {name}"),
            )
        })?;
        if actual != expect {
            return Err(std::io::Error::new(
                std::io::ErrorKind::InvalidData,
                format!("data file {name} has {actual} bytes, expected {expect} for n={n} b={b}"),
            ));
        }
        Ok(SimMatrix {
            disk,
            name: name.to_string(),
            path: PathBuf::from(name),
            n,
            b,
            nb,
            stats: IoStats::default(),
            cursor: u64::MAX,
            latency: crate::backend::LatencyModel::none(),
        })
    }

    /// Declare the per-operation latency this storage charges (see
    /// [`FileMatrix::set_latency_model`](crate::FileMatrix::set_latency_model)).
    pub fn set_latency_model(&mut self, model: crate::backend::LatencyModel) {
        self.latency = model;
    }

    /// Account a transfer touching `[off, off + len)` against the
    /// virtual head, exactly as `FileMatrix::seek_to` does for the real
    /// file cursor.
    fn track_head(&mut self, off: u64, len: u64) {
        if self.cursor != off {
            self.stats.seeks += 1;
            if self.cursor != u64::MAX {
                self.stats.seek_distance += self.cursor.abs_diff(off);
            }
        }
        self.cursor = off + len;
    }

    /// The shared disk handle.
    pub fn disk(&self) -> Arc<Mutex<SimDisk>> {
        Arc::clone(&self.disk)
    }

    /// The file name on the simulated disk.
    pub fn name(&self) -> &str {
        &self.name
    }

    fn tile_offset(&self, bi: usize, bj: usize) -> u64 {
        debug_assert!(bi < self.nb && bj < self.nb);
        let per_tile = (self.b * self.b * 8) as u64;
        ((bj * self.nb + bi) as u64) * per_tile
    }

    /// Read the whole matrix back into RAM (not charged; used to verify).
    pub fn to_matrix(&mut self) -> std::io::Result<Matrix<f64>> {
        let saved = self.stats;
        let mut out = Matrix::zeros(self.n, self.n);
        for bj in 0..self.nb {
            for bi in 0..self.nb {
                let t = self.read_tile(bi, bj)?;
                for j in 0..self.b {
                    for i in 0..self.b {
                        let (gi, gj) = (bi * self.b + i, bj * self.b + j);
                        if gi < self.n && gj < self.n {
                            out[(gi, gj)] = t[(i, j)];
                        }
                    }
                }
            }
        }
        self.stats = saved;
        Ok(out)
    }
}

impl IoBackend for SimMatrix {
    fn n(&self) -> usize {
        self.n
    }
    fn b(&self) -> usize {
        self.b
    }
    fn nb(&self) -> usize {
        self.nb
    }
    fn read_tile(&mut self, bi: usize, bj: usize) -> std::io::Result<Matrix<f64>> {
        let bytes = self.b * self.b * 8;
        let off = self.tile_offset(bi, bj);
        let buf = lock(&self.disk).read_at(&self.name, off, bytes)?;
        self.track_head(off, bytes as u64);
        self.stats.bytes_read += bytes as u64;
        self.stats.reads += 1;
        let vals: Vec<f64> = buf
            .chunks_exact(8)
            .map(|c| f64::from_le_bytes(c.try_into().expect("8-byte chunk")))
            .collect();
        let b = self.b;
        Ok(Matrix::from_fn(b, b, |i, j| vals[i + j * b]))
    }
    fn write_tile(&mut self, bi: usize, bj: usize, tile: &Matrix<f64>) -> std::io::Result<()> {
        assert_eq!(tile.rows(), self.b);
        assert_eq!(tile.cols(), self.b);
        let mut buf = Vec::with_capacity(self.b * self.b * 8);
        for j in 0..self.b {
            for i in 0..self.b {
                buf.extend_from_slice(&tile[(i, j)].to_le_bytes());
            }
        }
        let off = self.tile_offset(bi, bj);
        lock(&self.disk).write_at(&self.name, off, &buf);
        self.track_head(off, buf.len() as u64);
        self.stats.bytes_written += buf.len() as u64;
        self.stats.writes += 1;
        Ok(())
    }
    fn stats(&self) -> IoStats {
        self.stats
    }
    fn path(&self) -> Option<&Path> {
        Some(&self.path)
    }
    fn storage_restored(&mut self) {
        // A checkpoint restore rewrote the data file behind this handle;
        // the virtual head position is meaningless now.
        self.cursor = u64::MAX;
    }
    fn barrier(&mut self) -> std::io::Result<()> {
        lock(&self.disk).barrier();
        Ok(())
    }
    fn latency_model(&self) -> crate::backend::LatencyModel {
        self.latency
    }
}

#[cfg(test)]
#[allow(clippy::unwrap_used)]
mod tests {
    use super::*;
    use cholcomm_faults::DEFAULT_SECTOR;
    use cholcomm_matrix::spd;

    fn fresh_disk() -> Arc<Mutex<SimDisk>> {
        Arc::new(Mutex::new(SimDisk::new(DEFAULT_SECTOR)))
    }

    #[test]
    fn roundtrip_through_the_sim_disk() {
        let mut rng = spd::test_rng(300);
        let a = spd::random_spd(20, &mut rng);
        let mut sm = SimMatrix::create(fresh_disk(), "m.data", &a, 8).unwrap();
        assert_eq!(sm.to_matrix().unwrap(), a);
        let t = sm.read_tile(1, 0).unwrap();
        assert_eq!(t[(0, 0)], a[(8, 0)]);
        sm.write_tile(1, 0, &t).unwrap();
        assert_eq!(sm.stats().writes, 1, "population not charged");
    }

    #[test]
    fn tile_writes_land_in_the_schedule_and_die_without_a_barrier() {
        let mut rng = spd::test_rng(301);
        let a = spd::random_spd(8, &mut rng);
        let disk = fresh_disk();
        let mut sm = SimMatrix::create(Arc::clone(&disk), "m.data", &a, 4).unwrap();
        sm.barrier().unwrap();
        let mut t = sm.read_tile(0, 0).unwrap();
        t[(0, 0)] = 42.0;
        sm.write_tile(0, 0, &t).unwrap();
        assert_eq!(sm.read_tile(0, 0).unwrap()[(0, 0)], 42.0, "live view");
        lock(&disk).power_cut();
        assert_eq!(
            sm.read_tile(0, 0).unwrap()[(0, 0)],
            a[(0, 0)],
            "un-barriered tile write lost to the power cut"
        );
    }

    #[test]
    fn open_rejects_torn_data_files() {
        let disk = fresh_disk();
        lock(&disk).write_file("m.data", &[0u8; 100]);
        let err = SimMatrix::open(Arc::clone(&disk), "m.data", 8, 4).unwrap_err();
        assert_eq!(err.kind(), std::io::ErrorKind::InvalidData);
        assert!(SimMatrix::open(disk, "missing", 8, 4).is_err());
    }
}
