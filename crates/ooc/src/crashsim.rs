//! The crash-point explorer: record a checkpointed out-of-core
//! factorization once on the simulated crash disk, then re-drive
//! recovery from the durable state at *every* crash site and assert the
//! run still completes bit-identical to the clean factor.
//!
//! This is the durability analogue of the trace-once/replay-many
//! simulation engine: [`record_run`] executes one checkpointed POTRF
//! against a [`SimDisk`](cholcomm_faults::SimDisk) (tile traffic via
//! [`SimMatrix`], checkpoint traffic via `SimStore` on the same disk)
//! and keeps the recorded op schedule; [`explore_crash_sites`]
//! materializes each [`CrashSite`]'s durable image with
//! `cholcomm_faults::crash_state` — a pure function, no re-execution —
//! boots a "new process" on it, and runs recovery to completion.
//! Enumerate sites exhaustively (`crash_sites_exhaustive`) at small `n`
//! or sample them (`crash_sites_sampled`) at large `n`.
//!
//! Recovery is exactly what a restarted production process would do:
//! re-create the data-file container from the original input (the file
//! on disk may be torn to a length no `open` accepts), then run
//! [`ooc_potrf_checkpointed_in`] — which restores the last committed
//! checkpoint over it, or legitimately starts from scratch when nothing
//! ever committed.  A site **fails** when recovery errors out or
//! completes with a factor that differs from the clean run's in any
//! bit; failing sites are shrunk (`shrink_site`) to a 1-minimal fault
//! plan whose `Display` string reproduces the violation.

use crate::backend::IoBackend;
use crate::checkpoint::{ooc_potrf_checkpointed_in, Checkpoint, CommitDiscipline};
use crate::pipeline::{ooc_potrf_checkpointed_pipelined_in, PipelineConfig};
use crate::potrf::OocError;
use crate::simmat::SimMatrix;
use cholcomm_faults::{crash_state, shrink_site, CrashSite, SimDisk, SimOp, SimState, SimStore};
use cholcomm_matrix::{KernelImpl, Matrix};
use std::sync::{Arc, Mutex};

/// Which checkpointed driver a recorded run (and its recoveries) use.
///
/// The pipelined driver defers write-backs onto I/O workers, but its
/// epoch barrier drains them before every checkpoint commit — so the
/// crash-point explorer must find *zero* additional violations under
/// it.  With one I/O worker the pipelined driver's disk-op order is
/// identical to the synchronous driver's (jobs complete in submission
/// order), making the recorded schedule deterministic.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum DriverKind {
    /// [`ooc_potrf_checkpointed_in`]: every tile move blocks compute.
    Sync,
    /// [`ooc_potrf_checkpointed_pipelined_in`] with this worker count
    /// and prefetch depth.
    Pipelined {
        /// Dedicated I/O workers.
        io_workers: usize,
        /// Maximum outstanding prefetches.
        lookahead: usize,
    },
}

/// One recorded checkpointed factorization on the simulated disk.
#[derive(Debug)]
pub struct RecordedRun {
    /// The SPD input.
    pub input: Matrix<f64>,
    /// Tile size.
    pub b: usize,
    /// Tile-cache capacity the run used.
    pub capacity: usize,
    /// Sector size of the simulated disk.
    pub sector: usize,
    /// Commit discipline the recorded run's checkpoints used.
    pub discipline: CommitDiscipline,
    /// The full mutating-op schedule (barriers included).
    pub schedule: Vec<SimOp>,
    /// The factor the clean (uncrashed) run produced.
    pub clean_factor: Matrix<f64>,
    /// Panels in the factorization.
    pub total_panels: usize,
    /// Driver the run was recorded with; recovery uses the same one.
    pub driver: DriverKind,
    data_name: String,
    ckpt_prefix: String,
}

const DATA_NAME: &str = "a.data";
const CKPT_PREFIX: &str = "ckpt";

/// Run one checkpointed factorization of `a` on a fresh simulated disk
/// and record its op schedule.  The run itself is uncrashed; its
/// schedule is the map every crash site is carved out of.
pub fn record_run(
    a: &Matrix<f64>,
    b: usize,
    capacity: usize,
    sector: usize,
    discipline: CommitDiscipline,
) -> Result<RecordedRun, OocError> {
    record_run_with(a, b, capacity, sector, discipline, DriverKind::Sync)
}

/// [`record_run`] under the pipelined driver: same protocol, but tile
/// traffic flows through prefetching I/O workers with deferred
/// write-backs.  Record with `io_workers = 1` when the schedule itself
/// must be deterministic (the exhaustive explorer); any worker count is
/// fine when only recovery outcomes are asserted.
pub fn record_run_pipelined(
    a: &Matrix<f64>,
    b: usize,
    capacity: usize,
    sector: usize,
    discipline: CommitDiscipline,
    io_workers: usize,
    lookahead: usize,
) -> Result<RecordedRun, OocError> {
    record_run_with(
        a,
        b,
        capacity,
        sector,
        discipline,
        DriverKind::Pipelined {
            io_workers,
            lookahead,
        },
    )
}

fn record_run_with(
    a: &Matrix<f64>,
    b: usize,
    capacity: usize,
    sector: usize,
    discipline: CommitDiscipline,
    driver: DriverKind,
) -> Result<RecordedRun, OocError> {
    let disk = Arc::new(Mutex::new(SimDisk::new(sector)));
    let mut sm = SimMatrix::create(Arc::clone(&disk), DATA_NAME, a, b)?;
    let mut store = SimStore::new(Arc::clone(&disk));
    let ckpt = Checkpoint::at(std::path::Path::new(CKPT_PREFIX)).with_discipline(discipline);
    drive(&mut sm, capacity, &ckpt, &mut store, driver)?;
    let clean_factor = sm.to_matrix()?;
    let total_panels = sm.nb();
    let schedule = disk
        .lock()
        .unwrap_or_else(std::sync::PoisonError::into_inner)
        .schedule()
        .to_vec();
    Ok(RecordedRun {
        input: a.clone(),
        b,
        capacity,
        sector,
        discipline,
        schedule,
        clean_factor,
        total_panels,
        driver,
        data_name: DATA_NAME.to_string(),
        ckpt_prefix: CKPT_PREFIX.to_string(),
    })
}

/// Run the checkpointed factorization `driver` names; returns the panel
/// the run started at.
fn drive(
    sm: &mut SimMatrix,
    capacity: usize,
    ckpt: &Checkpoint,
    store: &mut SimStore,
    driver: DriverKind,
) -> Result<usize, OocError> {
    match driver {
        DriverKind::Sync => {
            let report = ooc_potrf_checkpointed_in(sm, capacity, ckpt, store, KernelImpl::Reference)?;
            Ok(report.start_panel)
        }
        DriverKind::Pipelined {
            io_workers,
            lookahead,
        } => {
            let cfg = PipelineConfig::new(capacity)
                .with_io_workers(io_workers)
                .with_lookahead(lookahead);
            let (report, _) = ooc_potrf_checkpointed_pipelined_in(sm, ckpt, store, &cfg)?;
            Ok(report.start_panel)
        }
    }
}

impl RecordedRun {
    /// Boot a "new process" on the durable image at `site` and run
    /// recovery to completion.  Returns the recovered factor and the
    /// panel the resumed factorization started at.
    pub fn recover_at(&self, site: &CrashSite) -> Result<(Matrix<f64>, usize), OocError> {
        let state = crash_state(&self.schedule, site, self.sector);
        self.recover_from(state)
    }

    /// Recovery from an explicit durable image (see [`recover_at`]).
    ///
    /// [`recover_at`]: Self::recover_at
    pub fn recover_from(&self, state: SimState) -> Result<(Matrix<f64>, usize), OocError> {
        let disk = Arc::new(Mutex::new(SimDisk::from_state(state, self.sector)));
        // The data file on disk may be torn to a length no `open`
        // accepts; a restarted driver always re-materializes the
        // container from its input source, and the committed checkpoint
        // (when one exists) is restored over it.
        let mut sm = SimMatrix::create(Arc::clone(&disk), &self.data_name, &self.input, self.b)?;
        let mut store = SimStore::new(disk);
        // Recovery always runs the *correct* protocol: the discipline
        // under test only shapes the recorded schedule being explored.
        // It does run the same *driver* as the recording, though — a
        // pipelined run is recovered by a pipelined process.
        let ckpt = Checkpoint::at(std::path::Path::new(&self.ckpt_prefix));
        let start_panel = drive(&mut sm, self.capacity, &ckpt, &mut store, self.driver)?;
        Ok((sm.to_matrix()?, start_panel))
    }

    /// Why `site` violates crash consistency, or `None` if recovery
    /// completes bit-identically.
    pub fn violation_at(&self, site: &CrashSite) -> Option<String> {
        match self.recover_at(site) {
            Err(e) => Some(format!("recovery failed: {e}")),
            Ok((factor, _)) if factor != self.clean_factor => {
                Some("recovered factor differs from the clean run".to_string())
            }
            Ok(_) => None,
        }
    }

    /// Panels of progress the original run had *issued* checkpoints for
    /// by `crash_index` — the recovery re-work baseline.
    fn issued_next_panel(&self, crash_index: usize) -> usize {
        let journal = format!("{}.journal", self.ckpt_prefix);
        let mut issued = 0;
        for op in self.schedule.iter().take(crash_index) {
            let SimOp::Append { name, bytes } = op else {
                continue;
            };
            if *name != journal {
                continue;
            }
            let text = String::from_utf8_lossy(bytes);
            if !text.starts_with("intent ") {
                continue;
            }
            for field in text.split(' ') {
                if let Some(v) = field.strip_prefix("next_panel=") {
                    if let Ok(v) = v.trim().parse::<usize>() {
                        issued = issued.max(v);
                    }
                }
            }
        }
        issued
    }
}

/// A crash site at which recovery did not reproduce the clean factor,
/// with its shrunk 1-minimal reproduction.
#[derive(Debug, Clone)]
pub struct CrashViolation {
    /// The site as originally enumerated.
    pub site: CrashSite,
    /// The shrunk minimal fault plan that still fails.
    pub minimal: CrashSite,
    /// What went wrong at the minimal site.
    pub reason: String,
}

impl std::fmt::Display for CrashViolation {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(
            f,
            "{} (minimal repro: {}; found at: {})",
            self.reason, self.minimal, self.site
        )
    }
}

/// What exploring a set of crash sites established.
#[derive(Debug)]
pub struct CrashExploration {
    /// Ops in the recorded schedule (barriers included).
    pub schedule_ops: usize,
    /// Distinct crash indices covered by the explored sites.
    pub crash_points: usize,
    /// Crash states materialized and recovered from.
    pub states_explored: usize,
    /// Sites where recovery failed or diverged, each with a shrunk
    /// minimal repro.  Empty = the protocol is crash-consistent over
    /// this site set.
    pub violations: Vec<CrashViolation>,
    /// Total panels re-executed by recovery across all explored states
    /// (work the crash threw away).
    pub rework_panels: u64,
    /// Panels in one full factorization.
    pub total_panels: usize,
}

impl CrashExploration {
    /// Mean fraction of a full factorization re-done per crash state.
    pub fn rework_fraction(&self) -> f64 {
        if self.states_explored == 0 || self.total_panels == 0 {
            return 0.0;
        }
        self.rework_panels as f64 / (self.states_explored as f64 * self.total_panels as f64)
    }
}

/// Re-drive recovery at every site, shrinking each failure to a minimal
/// fault plan.  Violations stop nothing: the full site set is always
/// explored, so one bug does not mask another.
pub fn explore_crash_sites(run: &RecordedRun, sites: &[CrashSite]) -> CrashExploration {
    let mut crash_indices: Vec<usize> = sites.iter().map(|s| s.crash_index).collect();
    crash_indices.sort_unstable();
    crash_indices.dedup();
    let mut violations = Vec::new();
    let mut rework_panels = 0u64;
    for site in sites {
        match run.recover_at(site) {
            Ok((factor, start_panel)) if factor == run.clean_factor => {
                let issued = run.issued_next_panel(site.crash_index);
                rework_panels += issued.saturating_sub(start_panel) as u64;
            }
            outcome => {
                let reason = match outcome {
                    Err(e) => format!("recovery failed: {e}"),
                    Ok(_) => "recovered factor differs from the clean run".to_string(),
                };
                let minimal = shrink_site(site, |cand| run.violation_at(cand).is_some());
                let reason = run.violation_at(&minimal).unwrap_or(reason);
                violations.push(CrashViolation {
                    site: site.clone(),
                    minimal,
                    reason,
                });
            }
        }
    }
    CrashExploration {
        schedule_ops: run.schedule.len(),
        crash_points: crash_indices.len(),
        states_explored: sites.len(),
        violations,
        rework_panels,
        total_panels: run.total_panels,
    }
}

#[cfg(test)]
#[allow(clippy::unwrap_used)]
mod tests {
    use super::*;
    use cholcomm_faults::{crash_sites_sampled, DEFAULT_SECTOR};
    use cholcomm_matrix::spd;

    #[test]
    fn recorded_run_reproduces_the_direct_factor_and_cleans_up() {
        let mut rng = spd::test_rng(400);
        let a = spd::random_spd(8, &mut rng);
        let run = record_run(&a, 4, 3, DEFAULT_SECTOR, CommitDiscipline::Barriered).unwrap();
        assert_eq!(run.total_panels, 2);
        assert!(run.schedule.len() > 10, "schedule: {}", run.schedule.len());
        // The clean factor matches a plain (uncheckpointed) OOC run.
        let disk = Arc::new(Mutex::new(SimDisk::new(DEFAULT_SECTOR)));
        let mut plain = SimMatrix::create(disk, "plain.data", &a, 4).unwrap();
        crate::potrf::ooc_potrf(&mut plain, 3).unwrap();
        assert_eq!(run.clean_factor, plain.to_matrix().unwrap());
    }

    #[test]
    fn clean_crash_sites_all_recover_bit_identically() {
        let mut rng = spd::test_rng(401);
        let a = spd::random_spd(8, &mut rng);
        let run = record_run(&a, 4, 3, DEFAULT_SECTOR, CommitDiscipline::Barriered).unwrap();
        // Every whole-buffer crash prefix (no drops, no tears): cheap
        // smoke for the exhaustive sweep in tests/crash_consistency.rs.
        let sites: Vec<CrashSite> = (0..=run.schedule.len()).map(CrashSite::clean).collect();
        let report = explore_crash_sites(&run, &sites);
        assert_eq!(report.states_explored, sites.len());
        assert!(
            report.violations.is_empty(),
            "violations: {:?}",
            report.violations
        );
        assert!(report.rework_fraction() <= 1.0);
    }

    #[test]
    fn pipelined_recording_matches_sync_schedule_with_one_worker() {
        let mut rng = spd::test_rng(403);
        let a = spd::random_spd(8, &mut rng);
        let sync = record_run(&a, 4, 3, DEFAULT_SECTOR, CommitDiscipline::Barriered).unwrap();
        let pipe =
            record_run_pipelined(&a, 4, 3, DEFAULT_SECTOR, CommitDiscipline::Barriered, 1, 2)
                .unwrap();
        assert_eq!(pipe.clean_factor, sync.clean_factor);
        // One worker completes jobs in submission order, and the epoch
        // barrier drains before every checkpoint: the two drivers leave
        // the *same* durable op schedule behind.
        assert_eq!(pipe.schedule, sync.schedule);
    }

    #[test]
    fn pipelined_crash_sites_all_recover_bit_identically() {
        let mut rng = spd::test_rng(404);
        let a = spd::random_spd(8, &mut rng);
        let run =
            record_run_pipelined(&a, 4, 3, DEFAULT_SECTOR, CommitDiscipline::Barriered, 2, 2)
                .unwrap();
        let sites: Vec<CrashSite> = (0..=run.schedule.len()).map(CrashSite::clean).collect();
        let report = explore_crash_sites(&run, &sites);
        assert!(
            report.violations.is_empty(),
            "violations: {:?}",
            report.violations
        );
    }

    #[test]
    fn sampled_sites_recover_on_a_larger_matrix() {
        let mut rng = spd::test_rng(402);
        let a = spd::random_spd(16, &mut rng);
        let run = record_run(&a, 4, 4, DEFAULT_SECTOR, CommitDiscipline::Barriered).unwrap();
        let sites = crash_sites_sampled(&run.schedule, run.sector, 0xC0FFEE, 40);
        let report = explore_crash_sites(&run, &sites);
        assert!(
            report.violations.is_empty(),
            "violations: {:?}",
            report.violations
        );
    }
}
