//! Double-buffered, prefetching out-of-core POTRF: tile I/O overlapped
//! with compute.
//!
//! The synchronous driver ([`ooc_potrf`](crate::ooc_potrf)) blocks the
//! compute thread on every tile move, so its wall time is
//! `compute + I/O`.  But Algorithm 4's tile schedule is *data-oblivious*
//! — the sequence of gets and puts is a pure function of `(nb,
//! capacity)` — which means the entire miss stream, every eviction
//! victim, and every write-back is known before the factorization
//! starts.  This module exploits that:
//!
//! 1. A deterministic **lookahead planner** ([`Plan`]) replays the exact
//!    LRU discipline of [`TileCache`](crate::TileCache) over the op
//!    schedule and emits one [`PlannedFetch`] per miss: the tile to
//!    read, the victims to evict (with their dirtiness), and `ready_at`
//!    — the earliest compute position at which issuing the fetch is
//!    safe (one past the last compute access of every victim).
//! 2. A **prefetching front** ([`PipelineFront`]) walks the plan ahead
//!    of the compute loop, issuing up to `lookahead` outstanding reads
//!    on dedicated I/O workers ([`cholcomm_par::io_scope`]) and
//!    deferring dirty write-backs onto the same workers.  Compute only
//!    stalls when it reaches a miss whose read has not landed yet.
//! 3. An **epoch barrier** at each panel boundary
//!    ([`PipelineFront::flush_boundary`]) drains every deferred
//!    write-back before the checkpoint layer snapshots the data file,
//!    so the journaled commit protocol of
//!    [`checkpoint`](crate::checkpoint) is preserved unchanged.
//!
//! # Why the factor is bit-identical
//!
//! The pipeline reorders *transport*, never *arithmetic*: the compute
//! loop is the same [`factor_panel_src`] the synchronous driver runs,
//! and every get returns the same stored bytes it would have returned
//! synchronously.  Three hazards could break that, and each is closed
//! structurally:
//!
//! * **Evict-before-last-use** — a victim may not leave the in-RAM set
//!   while compute still needs it.  Closed by `ready_at`: the planner
//!   knows each victim's final access position, and the front never
//!   issues a fetch (hence never evicts) before compute has passed it.
//! * **Read-after-write** — a prefetch of a tile with a pending
//!   deferred write-back must observe the write.  Closed in
//!   [`PipeIo`]: a read job blocks until no write of its tile is
//!   queued or in flight (the conflicting write is always *submitted*
//!   earlier, so this never deadlocks, even with one worker).
//! * **Write-after-write** — two write-backs of one tile must not
//!   race.  Closed by ordering: a second eviction of tile `X` can only
//!   be issued after compute re-fetched and re-dirtied `X`, and that
//!   re-fetch read already waited out the first write.  The front
//!   asserts this invariant at enqueue.
//!
//! With one I/O worker the submitted job order *is* the synchronous
//! backend-op order, so even per-op fault plans
//! ([`FaultyBackend`](crate::FaultyBackend)) fire at identical op
//! indices.  With more workers only the completion order changes;
//! the bytes never do.
//!
//! # What is charged where
//!
//! Latency is *modeled*, not measured: the backend advertises a
//! [`LatencyModel`] and the front samples it per enqueued op into
//! [`PipelineStats::modeled_io_us`].  [`model_overlap`] runs the same
//! plan through a deterministic event simulator — a synchronous leg
//! (every op serialized on one timeline) against a pipelined leg
//! (reads/writes on `io_workers` timelines, stalls only at unready
//! misses) — which is what `ooc_bench` gates the overlap claim on.
//! Set [`PipelineConfig::sleep_latency`] to make the I/O workers
//! really sleep the sampled cost (the measured leg); do **not** wrap
//! the pipeline's backend in [`SleepBackend`](crate::SleepBackend) —
//! that serializes the sleeps under the backend lock and charges the
//! latency to the wrong place.

use crate::backend::{IoBackend, LatencyModel};
use crate::checkpoint::{Checkpoint, CheckpointReport};
use crate::potrf::{factor_panel_src, LruIndex, OocError, TileSource};
use cholcomm_faults::{DiskOp, FsStore, Store};
use cholcomm_matrix::{KernelImpl, Matrix};
use cholcomm_par::io::{io_scope, IoScope};
use std::collections::{HashMap, HashSet};
use std::sync::{Condvar, Mutex, MutexGuard};

fn lock<T>(m: &Mutex<T>) -> MutexGuard<'_, T> {
    m.lock().unwrap_or_else(std::sync::PoisonError::into_inner)
}

/// Tiles Algorithm 4 holds live at once inside one trailing-update
/// step (`lj`, `li`, and the updated tile) — the floor under the
/// default lookahead so prefetch depth never cannibalizes the working
/// set.
pub const WORKING_SET: usize = 3;

/// I/O workers from `CHOLCOMM_IO_WORKERS`, clamped to `1..=8`;
/// defaults to 2 (one read stream, one write-back stream).
pub fn io_workers_from_env() -> usize {
    std::env::var("CHOLCOMM_IO_WORKERS")
        .ok()
        .and_then(|v| v.trim().parse::<usize>().ok())
        .map_or(2, |w| w.clamp(1, 8))
}

/// Configuration for the pipelined drivers.
#[derive(Debug, Clone)]
pub struct PipelineConfig {
    /// In-RAM tile budget of the (planned) LRU cache — same meaning as
    /// the synchronous drivers' `capacity_tiles`.
    pub capacity_tiles: usize,
    /// Dedicated I/O worker threads (see [`io_workers_from_env`]).
    pub io_workers: usize,
    /// Maximum outstanding (issued but unconsumed) prefetches.  Peak
    /// RAM is `capacity_tiles + lookahead` tiles plus pending
    /// write-backs.
    pub lookahead: usize,
    /// Kernel engine for the tile arithmetic.
    pub kernel: KernelImpl,
    /// Make the I/O workers really sleep each op's sampled latency
    /// (for measured overlap benches).  Off, latency is only tallied.
    pub sleep_latency: bool,
    /// Enable data-parallel kernels on the compute thread while the
    /// pipeline runs (thread-local; restored afterwards).
    pub parallel_kernels: bool,
}

impl PipelineConfig {
    /// Defaults: workers from the environment, lookahead =
    /// `capacity_tiles - WORKING_SET` (at least 1), reference kernels,
    /// latency tallied but not slept.
    pub fn new(capacity_tiles: usize) -> Self {
        assert!(capacity_tiles >= 3, "Algorithm 4 needs three tiles resident");
        PipelineConfig {
            capacity_tiles,
            io_workers: io_workers_from_env(),
            lookahead: capacity_tiles.saturating_sub(WORKING_SET).max(1),
            kernel: KernelImpl::Reference,
            sleep_latency: false,
            parallel_kernels: false,
        }
    }

    /// Set the I/O worker count.
    pub fn with_io_workers(mut self, workers: usize) -> Self {
        self.io_workers = workers.max(1);
        self
    }

    /// Set the prefetch depth.
    pub fn with_lookahead(mut self, lookahead: usize) -> Self {
        self.lookahead = lookahead.max(1);
        self
    }

    /// Set the kernel engine.
    pub fn with_kernel(mut self, kernel: KernelImpl) -> Self {
        self.kernel = kernel;
        self
    }

    /// Sleep sampled latency on the I/O workers.
    pub fn with_sleep_latency(mut self, sleep: bool) -> Self {
        self.sleep_latency = sleep;
        self
    }

    /// Run the tile kernels data-parallel on the compute thread.
    pub fn with_parallel_kernels(mut self, parallel: bool) -> Self {
        self.parallel_kernels = parallel;
        self
    }
}

/// What a pipelined run did (transport-side; the factor itself is
/// bit-identical to the synchronous driver's by construction).
#[derive(Debug, Clone, Copy, Default)]
pub struct PipelineStats {
    /// Tile reads issued (= the plan's misses = the sync driver's reads).
    pub fetches: u64,
    /// Misses whose read had already landed when compute arrived.
    pub prefetch_hits: u64,
    /// Misses compute had to block on.
    pub prefetch_stalls: u64,
    /// Dirty evictions written back by the I/O workers.
    pub evict_writes: u64,
    /// Boundary/final flush writes.
    pub flush_writes: u64,
    /// Total modeled latency of every enqueued op, µs (what a
    /// synchronous run would have blocked on).
    pub modeled_io_us: u64,
}

impl PipelineStats {
    /// Fraction of misses served without a stall.
    pub fn hit_rate(&self) -> f64 {
        if self.fetches == 0 {
            1.0
        } else {
            self.prefetch_hits as f64 / self.fetches as f64
        }
    }
}

/// One logical tile access of Algorithm 4's schedule, plus the panel
/// boundary marker the checkpointed driver flushes at.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
enum Access {
    Get(usize, usize),
    Put(usize, usize),
    /// Panel `k` just finished; checkpointed runs flush here.
    Boundary(usize),
}

/// One planned miss: what to read, what must leave the cache to make
/// room, and when it is safe to do so.
#[derive(Debug, Clone)]
struct PlannedFetch {
    tile: (usize, usize),
    /// Op position of the miss this fetch serves.
    miss_pos: usize,
    /// Earliest op position at which the fetch (and its evictions) may
    /// be issued: one past the last compute access of every victim.
    ready_at: usize,
    /// Victims in eviction order, with planned dirtiness.
    evict: Vec<((usize, usize), bool)>,
}

/// The deterministic lookahead plan: Algorithm 4's op schedule for
/// panels `start..nb` with the LRU cache simulated over it.
#[derive(Debug)]
struct Plan {
    ops: Vec<Access>,
    fetches: Vec<PlannedFetch>,
    /// Per [`Access::Boundary`], the sorted dirty tiles its flush
    /// writes (mirrors `TileCache::flush`'s sorted write order).
    boundary_writes: Vec<Vec<(usize, usize)>>,
    /// Sorted dirty tiles the final flush writes (plain mode).
    final_writes: Vec<(usize, usize)>,
    /// Dirty evictions across all fetches.
    evict_writes: u64,
}

impl Plan {
    fn new(nb: usize, capacity: usize, start: usize, flush_at_boundaries: bool) -> Plan {
        assert!(capacity >= 3, "Algorithm 4 needs three tiles resident");
        let mut ops = Vec::new();
        for k in start..nb {
            ops.push(Access::Get(k, k));
            ops.push(Access::Put(k, k));
            for i in (k + 1)..nb {
                ops.push(Access::Get(i, k));
                ops.push(Access::Put(i, k));
            }
            for j in (k + 1)..nb {
                ops.push(Access::Get(j, k));
                for i in j..nb {
                    ops.push(Access::Get(i, k));
                    ops.push(Access::Get(i, j));
                    ops.push(Access::Put(i, j));
                }
            }
            if flush_at_boundaries {
                ops.push(Access::Boundary(k));
            }
        }

        // Replay TileCache's exact LRU discipline over the schedule.
        let mut order = LruIndex::new();
        let mut resident: HashMap<(usize, usize), bool> = HashMap::new(); // key -> dirty
        let mut last_access: HashMap<(usize, usize), usize> = HashMap::new();
        // Position of the boundary flush that last cleaned each tile
        // (dirty -> clean without an access).  A victim the planner saw
        // *clean* only because a boundary flushed it must not be
        // evicted before that flush runs, or the front would evict it
        // dirty — `ready_at` is clamped past the boundary below.
        let mut cleaned_at: HashMap<(usize, usize), usize> = HashMap::new();
        let mut fetches: Vec<PlannedFetch> = Vec::new();
        let mut boundary_writes = Vec::new();
        let mut evict_writes = 0u64;
        for (pos, op) in ops.iter().enumerate() {
            match *op {
                Access::Get(bi, bj) => {
                    let key = (bi, bj);
                    if resident.contains_key(&key) {
                        order.touch(key);
                    } else {
                        let mut evict = Vec::new();
                        let mut ready_at = 0usize;
                        while order.len() >= capacity {
                            let victim = order.lru().expect("full cache has a victim");
                            let vd = resident.remove(&victim).expect("victim is resident");
                            order.remove(victim);
                            ready_at = ready_at.max(last_access[&victim] + 1);
                            if vd {
                                evict_writes += 1;
                            } else if let Some(&cp) = cleaned_at.get(&victim) {
                                // Clean only by virtue of a boundary
                                // flush after its last access: the
                                // eviction must wait the flush out.
                                if cp > last_access[&victim] {
                                    ready_at = ready_at.max(cp + 1);
                                }
                            }
                            cleaned_at.remove(&victim);
                            evict.push((victim, vd));
                        }
                        fetches.push(PlannedFetch {
                            tile: key,
                            miss_pos: pos,
                            ready_at,
                            evict,
                        });
                        resident.insert(key, false);
                        order.touch(key);
                    }
                    last_access.insert(key, pos);
                }
                Access::Put(bi, bj) => {
                    let key = (bi, bj);
                    // Every put immediately follows a get of the same
                    // tile in Algorithm 4, so puts never miss.
                    debug_assert!(resident.contains_key(&key), "put of a non-resident tile");
                    resident.insert(key, true);
                    order.touch(key);
                    last_access.insert(key, pos);
                }
                Access::Boundary(_) => {
                    let mut keys: Vec<(usize, usize)> = resident
                        .iter()
                        .filter(|&(_, d)| *d)
                        .map(|(&key, _)| key)
                        .collect();
                    keys.sort_unstable();
                    for &key in &keys {
                        resident.insert(key, false);
                        cleaned_at.insert(key, pos);
                    }
                    boundary_writes.push(keys);
                }
            }
        }
        let mut final_writes: Vec<(usize, usize)> = resident
            .iter()
            .filter(|&(_, d)| *d)
            .map(|(&key, _)| key)
            .collect();
        final_writes.sort_unstable();
        if flush_at_boundaries {
            debug_assert!(final_writes.is_empty(), "boundary flushes leave nothing dirty");
        }
        Plan {
            ops,
            fetches,
            boundary_writes,
            final_writes,
            evict_writes,
        }
    }
}

/// Shared state between the compute thread and the I/O workers.
#[derive(Debug)]
struct IoShared {
    /// Completed prefetch reads awaiting consumption.
    fetched: HashMap<(usize, usize), Matrix<f64>>,
    /// Read jobs enqueued or running.
    reads_inflight: usize,
    /// Write-back payloads enqueued but not yet picked up.
    write_data: HashMap<(usize, usize), Matrix<f64>>,
    /// Write jobs currently executing.
    write_inflight: HashSet<(usize, usize)>,
    /// First I/O error observed, surfaced to the compute thread.
    error: Option<std::io::Error>,
    /// The run is dead (crash or unrecoverable failure): jobs must not
    /// touch the disk any more.
    abort: bool,
}

/// The pipeline's I/O hub: the backend behind a mutex, the shared job
/// state, and the condvar everything rendezvouses on.
#[derive(Debug)]
struct PipeIo<'fm, B: IoBackend> {
    backend: Mutex<&'fm mut B>,
    st: Mutex<IoShared>,
    cv: Condvar,
    model: LatencyModel,
    sleep: bool,
}

impl<'fm, B: IoBackend> PipeIo<'fm, B> {
    fn new(fm: &'fm mut B, sleep: bool) -> Self {
        let model = fm.latency_model();
        PipeIo {
            backend: Mutex::new(fm),
            st: Mutex::new(IoShared {
                fetched: HashMap::new(),
                reads_inflight: 0,
                write_data: HashMap::new(),
                write_inflight: HashSet::new(),
                error: None,
                abort: false,
            }),
            cv: Condvar::new(),
            model,
            sleep,
        }
    }

    /// Run `f` holding the backend lock (begin_panel, checkpoint
    /// save/restore, scrub, barrier — everything that must serialize
    /// with the worker jobs).
    fn with_backend<R>(&self, f: impl FnOnce(&mut B) -> R) -> R {
        let mut be = lock(&self.backend);
        f(&mut **be)
    }

    fn pay(&self, us: u64) {
        if self.sleep && us > 0 {
            std::thread::sleep(std::time::Duration::from_micros(us));
        }
    }

    fn wait<'a>(&self, st: MutexGuard<'a, IoShared>) -> MutexGuard<'a, IoShared> {
        self.cv
            .wait(st)
            .unwrap_or_else(std::sync::PoisonError::into_inner)
    }

    /// Body of a prefetch-read job.
    fn read_job(&self, tile: (usize, usize), us: u64) {
        self.pay(us);
        let mut st = lock(&self.st);
        // Read-after-write hazard: a pending deferred write-back of this
        // very tile must land first.  The conflicting write job was
        // always submitted before this read, so it is running or done —
        // never queued behind us — and this wait terminates.
        while !st.abort
            && st.error.is_none()
            && (st.write_data.contains_key(&tile) || st.write_inflight.contains(&tile))
        {
            st = self.wait(st);
        }
        if st.abort || st.error.is_some() {
            st.reads_inflight -= 1;
            self.cv.notify_all();
            return;
        }
        drop(st);
        let result = {
            let mut be = lock(&self.backend);
            std::panic::catch_unwind(std::panic::AssertUnwindSafe(|| {
                be.read_tile(tile.0, tile.1)
            }))
        };
        let mut st = lock(&self.st);
        st.reads_inflight -= 1;
        match result {
            Ok(Ok(t)) => {
                if !st.abort {
                    st.fetched.insert(tile, t);
                }
            }
            Ok(Err(e)) => {
                if st.error.is_none() {
                    st.error = Some(e);
                }
            }
            Err(_) => {
                if st.error.is_none() {
                    st.error = Some(std::io::Error::other("tile read panicked on an I/O worker"));
                }
            }
        }
        self.cv.notify_all();
    }

    /// Body of a deferred write-back job.
    fn write_job(&self, tile: (usize, usize), us: u64) {
        self.pay(us);
        let data = {
            let mut st = lock(&self.st);
            if st.abort {
                // A dead process's queued write-backs never reach disk.
                st.write_data.remove(&tile);
                self.cv.notify_all();
                return;
            }
            let Some(data) = st.write_data.remove(&tile) else {
                self.cv.notify_all();
                return;
            };
            st.write_inflight.insert(tile);
            data
        };
        let result = {
            let mut be = lock(&self.backend);
            std::panic::catch_unwind(std::panic::AssertUnwindSafe(|| {
                be.write_tile(tile.0, tile.1, &data)
            }))
        };
        let mut st = lock(&self.st);
        st.write_inflight.remove(&tile);
        match result {
            Ok(Ok(())) => {}
            Ok(Err(e)) => {
                if st.error.is_none() {
                    st.error = Some(e);
                }
            }
            Err(_) => {
                if st.error.is_none() {
                    st.error = Some(std::io::Error::other("tile write panicked on an I/O worker"));
                }
            }
        }
        self.cv.notify_all();
    }

    /// Kill the run: queued jobs become no-ops (crash semantics — a
    /// dead process's buffered write-backs must not land post-mortem).
    fn fail(&self) {
        let mut st = lock(&self.st);
        st.abort = true;
        self.cv.notify_all();
    }

    /// Wait until every deferred write-back has landed (the epoch
    /// barrier the checkpoint snapshot requires).
    fn drain_writes(&self) -> Result<(), OocError> {
        let mut st = lock(&self.st);
        loop {
            if let Some(e) = st.error.take() {
                return Err(OocError::Io(e));
            }
            if st.write_data.is_empty() && st.write_inflight.is_empty() {
                return Ok(());
            }
            st = self.wait(st);
        }
    }

    /// Wait for *every* in-flight job to finish, ignoring errors — the
    /// restore path, where whatever the jobs were doing is moot.
    fn quiesce(&self) {
        let mut st = lock(&self.st);
        while st.reads_inflight > 0 || !st.write_data.is_empty() || !st.write_inflight.is_empty() {
            st = self.wait(st);
        }
    }
}

/// The prefetching [`TileSource`]: resident tiles in RAM, the plan's
/// fetch stream issued ahead of `pos`, write-backs deferred to the I/O
/// workers.
struct PipelineFront<'s, 'env, 'fm, B: IoBackend> {
    io: &'env PipeIo<'fm, B>,
    scope: &'s IoScope<'s, 'env>,
    plan: Plan,
    capacity: usize,
    lookahead: usize,
    /// key -> (tile, dirty); mirrors the planned cache exactly, except
    /// victims leave at fetch-*issue* time (provably past their last
    /// use) instead of miss time.
    resident: HashMap<(usize, usize), (Matrix<f64>, bool)>,
    /// Compute position in `plan.ops`.
    pos: usize,
    /// Next fetch to issue.
    next_fetch: usize,
    /// Fetches consumed by compute.
    fetch_consumed: usize,
    /// Boundary flushes performed.
    boundaries_done: usize,
    /// Backend op sequence number for latency sampling (same numbering
    /// a synchronous run would use: evictions before their read, in
    /// fetch order).
    op_seq: u64,
    stats: PipelineStats,
    n: usize,
    b: usize,
    nb: usize,
}

impl<'s, 'env, 'fm: 'env, B: IoBackend + Send> PipelineFront<'s, 'env, 'fm, B> {
    fn new(
        io: &'env PipeIo<'fm, B>,
        scope: &'s IoScope<'s, 'env>,
        plan: Plan,
        cfg: &PipelineConfig,
        n: usize,
        b: usize,
        nb: usize,
    ) -> Self {
        PipelineFront {
            io,
            scope,
            plan,
            capacity: cfg.capacity_tiles,
            lookahead: cfg.lookahead.max(1),
            resident: HashMap::new(),
            pos: 0,
            next_fetch: 0,
            fetch_consumed: 0,
            boundaries_done: 0,
            op_seq: 0,
            stats: PipelineStats::default(),
            n,
            b,
            nb,
        }
    }

    fn enqueue_read(&mut self, tile: (usize, usize)) {
        let us = self.io.model.sample(DiskOp::Read, self.op_seq);
        self.op_seq += 1;
        self.stats.modeled_io_us += us;
        lock(&self.io.st).reads_inflight += 1;
        let io = self.io;
        self.scope.submit(move || io.read_job(tile, us));
    }

    fn enqueue_write(&mut self, tile: (usize, usize), data: Matrix<f64>) {
        let us = self.io.model.sample(DiskOp::Write, self.op_seq);
        self.op_seq += 1;
        self.stats.modeled_io_us += us;
        {
            let mut st = lock(&self.io.st);
            let prev = st.write_data.insert(tile, data);
            assert!(
                prev.is_none(),
                "write-write hazard: tile {tile:?} enqueued twice"
            );
        }
        let io = self.io;
        self.scope.submit(move || io.write_job(tile, us));
    }

    /// Issue every fetch that is within the lookahead window and whose
    /// `ready_at` the compute front has passed.
    fn pump(&mut self) {
        while self.next_fetch < self.plan.fetches.len()
            && self.next_fetch - self.fetch_consumed < self.lookahead
            && self.plan.fetches[self.next_fetch].ready_at <= self.pos
        {
            let f = &self.plan.fetches[self.next_fetch];
            let tile = f.tile;
            let evict = f.evict.clone();
            for (victim, planned_dirty) in evict {
                let (data, dirty) = self
                    .resident
                    .remove(&victim)
                    .expect("planned victim is resident at issue time");
                debug_assert_eq!(dirty, planned_dirty, "planned dirtiness of {victim:?}");
                if dirty {
                    self.enqueue_write(victim, data);
                    self.stats.evict_writes += 1;
                }
            }
            self.enqueue_read(tile);
            self.stats.fetches += 1;
            self.next_fetch += 1;
        }
    }

    /// Block until the prefetch of `tile` lands (or the run errors).
    fn wait_fetched(&mut self, tile: (usize, usize)) -> Result<Matrix<f64>, OocError> {
        let mut st = lock(&self.io.st);
        let mut stalled = false;
        loop {
            if let Some(e) = st.error.take() {
                return Err(OocError::Io(e));
            }
            if let Some(t) = st.fetched.remove(&tile) {
                if stalled {
                    self.stats.prefetch_stalls += 1;
                } else {
                    self.stats.prefetch_hits += 1;
                }
                return Ok(t);
            }
            stalled = true;
            st = self.io.wait(st);
        }
    }

    /// The epoch barrier at a panel boundary: enqueue every dirty
    /// resident tile (sorted, mirroring `TileCache::flush`), mark them
    /// clean, and drain the write queue so the checkpoint snapshot sees
    /// the complete panel.
    fn flush_boundary(&mut self) -> Result<(), OocError> {
        debug_assert!(
            matches!(self.plan.ops.get(self.pos), Some(Access::Boundary(_))),
            "flush_boundary off the planned boundary"
        );
        let mut keys: Vec<(usize, usize)> = self
            .resident
            .iter()
            .filter(|&(_, (_, d))| *d)
            .map(|(&key, _)| key)
            .collect();
        keys.sort_unstable();
        debug_assert_eq!(
            keys, self.plan.boundary_writes[self.boundaries_done],
            "boundary flush diverged from the plan"
        );
        for &key in &keys {
            let tile = match self.resident.get_mut(&key) {
                Some((t, d)) => {
                    *d = false;
                    t.clone()
                }
                None => continue,
            };
            self.enqueue_write(key, tile);
            self.stats.flush_writes += 1;
        }
        self.boundaries_done += 1;
        self.pos += 1; // consume the Boundary op
        self.io.drain_writes()?;
        self.pump();
        Ok(())
    }

    /// Final flush (plain mode, and the NotSpd leave-a-well-defined-file
    /// path): write every dirty resident tile sorted and drain.
    fn flush_final(&mut self) -> Result<(), OocError> {
        let mut keys: Vec<(usize, usize)> = self
            .resident
            .iter()
            .filter(|&(_, (_, d))| *d)
            .map(|(&key, _)| key)
            .collect();
        keys.sort_unstable();
        for &key in &keys {
            let tile = match self.resident.get_mut(&key) {
                Some((t, d)) => {
                    *d = false;
                    t.clone()
                }
                None => continue,
            };
            self.enqueue_write(key, tile);
            self.stats.flush_writes += 1;
        }
        self.io.drain_writes()
    }

    /// Roll the front back for a restore-and-retry of panel `k`: wait
    /// out every in-flight job (nothing stale may land after the
    /// restore), drop all transport state, and re-plan from `k`.
    fn reset(&mut self, k: usize, flush_at_boundaries: bool) {
        self.io.quiesce();
        {
            let mut st = lock(&self.io.st);
            st.fetched.clear();
            st.error = None;
            debug_assert!(
                st.reads_inflight == 0
                    && st.write_data.is_empty()
                    && st.write_inflight.is_empty(),
                "quiesce left jobs in flight"
            );
        }
        self.plan = Plan::new(self.nb, self.capacity, k, flush_at_boundaries);
        self.pos = 0;
        self.next_fetch = 0;
        self.fetch_consumed = 0;
        self.boundaries_done = 0;
        self.resident.clear();
        // op_seq keeps counting: latency is a cost model, not a replay.
    }
}

impl<'fm: 'env, 'env, B: IoBackend + Send> TileSource for PipelineFront<'_, 'env, 'fm, B> {
    fn n(&self) -> usize {
        self.n
    }
    fn b(&self) -> usize {
        self.b
    }
    fn nb(&self) -> usize {
        self.nb
    }
    fn begin_panel(&mut self, k: usize) {
        self.io.with_backend(|be| be.begin_panel(k));
    }
    fn get(&mut self, bi: usize, bj: usize) -> Result<Matrix<f64>, OocError> {
        let key = (bi, bj);
        if let Some((t, _)) = self.resident.get(&key) {
            let out = t.clone();
            self.pos += 1;
            self.pump();
            return Ok(out);
        }
        debug_assert_eq!(
            self.plan.fetches.get(self.fetch_consumed).map(|f| f.tile),
            Some(key),
            "miss stream diverged from the plan"
        );
        self.pump(); // the needed fetch is issuable now (ready_at <= miss pos)
        let tile = self.wait_fetched(key)?;
        self.fetch_consumed += 1;
        self.resident.insert(key, (tile.clone(), false));
        self.pos += 1;
        self.pump();
        Ok(tile)
    }
    fn put(&mut self, bi: usize, bj: usize, tile: Matrix<f64>) -> Result<(), OocError> {
        let slot = self
            .resident
            .get_mut(&(bi, bj))
            .expect("Algorithm 4 puts only resident tiles");
        *slot = (tile, true);
        self.pos += 1;
        self.pump();
        Ok(())
    }
}

/// Pipelined out-of-core Cholesky with default configuration — the
/// drop-in overlap counterpart of [`ooc_potrf`](crate::ooc_potrf),
/// bit-identical factor included.
pub fn ooc_potrf_pipelined<B: IoBackend + Send>(
    fm: &mut B,
    capacity_tiles: usize,
) -> Result<PipelineStats, OocError> {
    ooc_potrf_pipelined_with(fm, &PipelineConfig::new(capacity_tiles))
}

/// Pipelined out-of-core Cholesky: prefetching tile reads and deferred
/// write-backs on dedicated I/O workers, overlapped with Algorithm 4's
/// compute.  Produces a factor **bit-identical** to
/// [`ooc_potrf_with`](crate::ooc_potrf_with) at the same capacity, for
/// every kernel engine, worker count, and lookahead (see the module
/// docs for why), and the same on-disk state on a
/// [`NotSpd`](OocError::NotSpd) abort.
pub fn ooc_potrf_pipelined_with<B: IoBackend + Send>(
    fm: &mut B,
    cfg: &PipelineConfig,
) -> Result<PipelineStats, OocError> {
    let (n, b, nb) = (fm.n(), fm.b(), fm.nb());
    let plan = Plan::new(nb, cfg.capacity_tiles, 0, false);
    let io = PipeIo::new(fm, cfg.sleep_latency);
    io_scope(cfg.io_workers, |scope| {
        let mut front = PipelineFront::new(&io, scope, plan, cfg, n, b, nb);
        let prev = cfg
            .parallel_kernels
            .then(|| cholcomm_matrix::parallel::set_kernel_parallelism(true));
        let run = run_plain(&mut front, cfg, nb);
        if let Some(p) = prev {
            cholcomm_matrix::parallel::set_kernel_parallelism(p);
        }
        match run {
            Ok(()) => Ok(front.stats),
            Err(e) => {
                io.fail();
                Err(e)
            }
        }
    })
}

fn run_plain<B: IoBackend + Send>(
    front: &mut PipelineFront<'_, '_, '_, B>,
    cfg: &PipelineConfig,
    nb: usize,
) -> Result<(), OocError> {
    for k in 0..nb {
        match factor_panel_src(front, k, cfg.kernel) {
            Ok(()) => {}
            Err(e @ OocError::NotSpd { .. }) => {
                // Same contract as the sync driver: every completed
                // update reaches the file before the error surfaces (a
                // flush failure outranks the pivot failure).
                front.io.drain_writes()?;
                front.flush_final()?;
                return Err(e);
            }
            Err(e) => return Err(e),
        }
    }
    front.flush_final()?;
    front.io.with_backend(|be| be.scrub())?;
    Ok(())
}

/// [`ooc_potrf_checkpointed_pipelined_in`] on the real filesystem.
pub fn ooc_potrf_checkpointed_pipelined<B: IoBackend + Send>(
    fm: &mut B,
    ckpt: &Checkpoint,
    cfg: &PipelineConfig,
) -> Result<(CheckpointReport, PipelineStats), OocError> {
    ooc_potrf_checkpointed_pipelined_in(fm, ckpt, &mut FsStore::new(), cfg)
}

/// Pipelined out-of-core Cholesky with the panel-granularity journaled
/// checkpoint protocol of
/// [`ooc_potrf_checkpointed_in`](crate::ooc_potrf_checkpointed_in),
/// unchanged: the epoch barrier at each panel boundary drains every
/// deferred write-back *before* the snapshot, so intent → data →
/// barrier → commit sees exactly the states the synchronous driver
/// commits.  Crash/resume therefore yields the same bit-identical
/// factor, and unhealable ABFT corruption is answered by the same
/// quiesce-restore-retry rollback.
///
/// One ABFT nuance: a cross-panel prefetch may read a tile *before*
/// `begin_panel` schedules that panel's corruption against it, so a
/// given flip can land on a later read — or only on the final scrub —
/// instead of the read the synchronous driver would have caught it on.
/// Detection and healing guarantees are unchanged (every read is
/// verified and the scrub closes the gap); only the step at which a
/// given flip is *observed* may shift.
pub fn ooc_potrf_checkpointed_pipelined_in<B: IoBackend + Send>(
    fm: &mut B,
    ckpt: &Checkpoint,
    store: &mut impl Store,
    cfg: &PipelineConfig,
) -> Result<(CheckpointReport, PipelineStats), OocError> {
    let (n, b, nb) = (fm.n(), fm.b(), fm.nb());
    let mut report = CheckpointReport::default();
    let start = match ckpt.load_in(store)? {
        Some(state) => {
            if state.n != n || state.b != b {
                return Err(OocError::Io(std::io::Error::new(
                    std::io::ErrorKind::InvalidData,
                    format!(
                        "checkpoint is for n={} b={}, matrix has n={n} b={b}",
                        state.n, state.b
                    ),
                )));
            }
            report.checkpoint_bytes += ckpt.restore_in(store, fm)?;
            state.next_panel
        }
        None => {
            // Baseline snapshot of the pristine input (see the sync
            // driver: a crash inside panel 0 must not resume from
            // partially-updated tiles).
            report.checkpoint_bytes += ckpt.save_in(store, fm, 0)?;
            report.checkpoints_written += 1;
            0
        }
    };
    report.start_panel = start;

    let plan = Plan::new(nb, cfg.capacity_tiles, start, true);
    let io = PipeIo::new(fm, cfg.sleep_latency);
    let stats = io_scope(cfg.io_workers, |scope| {
        let mut front = PipelineFront::new(&io, scope, plan, cfg, n, b, nb);
        let prev = cfg
            .parallel_kernels
            .then(|| cholcomm_matrix::parallel::set_kernel_parallelism(true));
        let run = run_checkpointed(&mut front, cfg, ckpt, store, &mut report, start, nb);
        if let Some(p) = prev {
            cholcomm_matrix::parallel::set_kernel_parallelism(p);
        }
        match run {
            Ok(()) => Ok(front.stats),
            Err(e) => {
                io.fail();
                Err(e)
            }
        }
    })?;
    Ok((report, stats))
}

fn run_checkpointed<B: IoBackend + Send>(
    front: &mut PipelineFront<'_, '_, '_, B>,
    cfg: &PipelineConfig,
    ckpt: &Checkpoint,
    store: &mut impl Store,
    report: &mut CheckpointReport,
    start: usize,
    nb: usize,
) -> Result<(), OocError> {
    const MAX_RESTORE_RETRIES: usize = 4;
    let unhealable = |e: &OocError| {
        matches!(e, OocError::Io(io) if io.kind() == std::io::ErrorKind::InvalidData)
    };
    for k in start..nb {
        let mut retries = 0;
        loop {
            match factor_panel_src(front, k, cfg.kernel) {
                Ok(()) => break,
                Err(e @ OocError::NotSpd { .. }) => {
                    front.io.drain_writes()?;
                    front.flush_final()?;
                    return Err(e);
                }
                Err(e) if unhealable(&e) && retries < MAX_RESTORE_RETRIES => {
                    retries += 1;
                    report.restores += 1;
                    // Quiesce *before* the restore: no stale read may be
                    // consumed and no stale write-back may land on the
                    // freshly restored file.
                    front.reset(k, true);
                    report.checkpoint_bytes +=
                        front.io.with_backend(|be| ckpt.restore_in(store, be))?;
                }
                Err(e) => return Err(e),
            }
        }
        if front.io.with_backend(|be| be.crash_after_panel(k)) {
            // The plan kills us after the panel but before its
            // checkpoint: queued write-backs die with the process (the
            // driver's Err return aborts the I/O hub).
            return Err(OocError::Io(std::io::Error::other(
                "simulated crash: process killed after panel",
            )));
        }
        front.flush_boundary()?;
        report.checkpoint_bytes += front.io.with_backend(|be| ckpt.save_in(store, be, k + 1))?;
        report.checkpoints_written += 1;
        report.panels_done += 1;
    }

    // Final scrub with the same restore-retry answer as the sync
    // driver.  No front reset is needed here: the plan is exhausted, so
    // nothing is in flight after the last boundary drain.
    let mut retries = 0;
    loop {
        match front.io.with_backend(|be| be.scrub()) {
            Ok(()) => break,
            Err(e)
                if e.kind() == std::io::ErrorKind::InvalidData && retries < MAX_RESTORE_RETRIES =>
            {
                retries += 1;
                report.restores += 1;
                report.checkpoint_bytes += front.io.with_backend(|be| ckpt.restore_in(store, be))?;
            }
            Err(e) => return Err(e.into()),
        }
    }
    front.io.with_backend(|be| be.barrier())?;
    ckpt.remove_in(store)?;
    Ok(())
}

/// Default compute throughput of the modeled-time simulator: tile
/// flops per microsecond (≈ 4 GFLOP/s, a modest scalar core — the
/// point is the *ratio* against the latency model, not absolute time).
pub const DEFAULT_FLOPS_PER_US: f64 = 4096.0;

/// Inputs to [`model_overlap`].
#[derive(Debug, Clone)]
pub struct ModelConfig {
    /// Matrix order.
    pub n: usize,
    /// Tile size.
    pub b: usize,
    /// Tile-cache capacity.
    pub capacity_tiles: usize,
    /// I/O worker timelines.
    pub io_workers: usize,
    /// Prefetch depth.
    pub lookahead: usize,
    /// Per-op disk latency.
    pub latency: LatencyModel,
    /// Compute throughput (see [`DEFAULT_FLOPS_PER_US`]).
    pub flops_per_us: f64,
}

/// What the modeled-time simulator found.
#[derive(Debug, Clone, Copy)]
pub struct ModelReport {
    /// Synchronous makespan, µs (every op on one timeline).
    pub sync_us: u64,
    /// Pipelined makespan, µs.
    pub pipelined_us: u64,
    /// `sync_us / pipelined_us`.
    pub speedup: f64,
    /// Modeled prefetch hit rate.
    pub hit_rate: f64,
    /// Tile reads (the plan's misses).
    pub reads: u64,
    /// Tile writes (dirty evictions + final flush).
    pub writes: u64,
    /// Total compute, µs.
    pub compute_us: u64,
    /// Total disk latency, µs (identical for both legs: same ops, same
    /// sample sites).
    pub io_us: u64,
}

fn argmin(v: &[u64]) -> usize {
    let mut best = 0;
    for (i, &x) in v.iter().enumerate() {
        if x < v[best] {
            best = i;
        }
    }
    best
}

/// Deterministic event-level model of the overlap: the same [`Plan`]
/// walked twice — once serialized (the synchronous baseline), once with
/// reads and write-backs on `io_workers` parallel timelines, compute
/// stalling only at misses whose read has not completed.  Compute is
/// charged at puts (`potf2` = `b³/3`, `trsm` = `b³`, `gemm` = `2b³`
/// flops; edge tiles charged full — it is a model).  Pure function of
/// its config: this is what `ooc_bench` gates the ≥2x overlap claim on,
/// exactly reproducible in CI.
pub fn model_overlap(cfg: &ModelConfig) -> ModelReport {
    let nb = cfg.n.div_ceil(cfg.b);
    let plan = Plan::new(nb, cfg.capacity_tiles, 0, false);

    // Per-op compute cost, mirroring the op generator's structure.
    let fb = cfg.b as f64;
    let potf2_us = ((fb * fb * fb / 3.0) / cfg.flops_per_us).round() as u64;
    let trsm_us = ((fb * fb * fb) / cfg.flops_per_us).round() as u64;
    let gemm_us = ((2.0 * fb * fb * fb) / cfg.flops_per_us).round() as u64;
    let mut compute_cost = Vec::with_capacity(plan.ops.len());
    for k in 0..nb {
        compute_cost.push(0); // Get(k,k)
        compute_cost.push(potf2_us); // Put(k,k)
        for _ in (k + 1)..nb {
            compute_cost.push(0); // Get(i,k)
            compute_cost.push(trsm_us); // Put(i,k)
        }
        for j in (k + 1)..nb {
            compute_cost.push(0); // Get(j,k)
            for _ in j..nb {
                compute_cost.push(0); // Get(i,k)
                compute_cost.push(0); // Get(i,j)
                compute_cost.push(gemm_us); // Put(i,j)
            }
        }
    }
    debug_assert_eq!(compute_cost.len(), plan.ops.len());

    // Synchronous leg: one timeline, ops in execution order (evictions,
    // then the miss read — the order the front also samples in, so both
    // legs draw identical latencies).
    let mut sync_us = 0u64;
    let mut compute_total = 0u64;
    let mut io_total = 0u64;
    let mut writes = 0u64;
    {
        let mut seq = 0u64;
        let mut fp = 0usize;
        for (pos, &cost) in compute_cost.iter().enumerate() {
            if fp < plan.fetches.len() && plan.fetches[fp].miss_pos == pos {
                for &(_, dirty) in &plan.fetches[fp].evict {
                    if dirty {
                        let us = cfg.latency.sample(DiskOp::Write, seq);
                        seq += 1;
                        sync_us += us;
                        io_total += us;
                        writes += 1;
                    }
                }
                let us = cfg.latency.sample(DiskOp::Read, seq);
                seq += 1;
                sync_us += us;
                io_total += us;
                fp += 1;
            }
            sync_us += cost;
            compute_total += cost;
        }
        for _ in &plan.final_writes {
            let us = cfg.latency.sample(DiskOp::Write, seq);
            seq += 1;
            sync_us += us;
            io_total += us;
            writes += 1;
        }
        debug_assert_eq!(
            writes,
            plan.evict_writes + plan.final_writes.len() as u64,
            "sync walk visited every planned write"
        );
    }

    // Pipelined leg: the front's pump/stall discipline as an event sim.
    let workers = cfg.io_workers.max(1);
    let lookahead = cfg.lookahead.max(1);
    let mut clock = 0u64;
    let mut worker_free = vec![0u64; workers];
    let mut fetch_done = vec![0u64; plan.fetches.len()];
    let mut write_done: HashMap<(usize, usize), u64> = HashMap::new();
    let mut next_fetch = 0usize;
    let mut consumed = 0usize;
    let mut hits = 0u64;
    {
        let mut seq = 0u64;
        for (pos, &cost) in compute_cost.iter().enumerate() {
            while next_fetch < plan.fetches.len()
                && next_fetch - consumed < lookahead
                && plan.fetches[next_fetch].ready_at <= pos
            {
                let f = &plan.fetches[next_fetch];
                for &(victim, dirty) in &f.evict {
                    if dirty {
                        let us = cfg.latency.sample(DiskOp::Write, seq);
                        seq += 1;
                        let w = argmin(&worker_free);
                        let done = clock.max(worker_free[w]) + us;
                        worker_free[w] = done;
                        write_done.insert(victim, done);
                    }
                }
                let us = cfg.latency.sample(DiskOp::Read, seq);
                seq += 1;
                let w = argmin(&worker_free);
                // A read of a tile with a pending write-back waits it
                // out on its worker (read-after-write hazard).
                let hazard = write_done.get(&f.tile).copied().unwrap_or(0);
                let done = clock.max(worker_free[w]).max(hazard) + us;
                worker_free[w] = done;
                fetch_done[next_fetch] = done;
                next_fetch += 1;
            }
            if consumed < plan.fetches.len() && plan.fetches[consumed].miss_pos == pos {
                let ready = fetch_done[consumed];
                if ready <= clock {
                    hits += 1;
                } else {
                    clock = ready;
                }
                consumed += 1;
            }
            clock += cost;
        }
        for _ in &plan.final_writes {
            let us = cfg.latency.sample(DiskOp::Write, seq);
            seq += 1;
            let w = argmin(&worker_free);
            worker_free[w] = clock.max(worker_free[w]) + us;
        }
    }
    let pipelined_us = clock.max(worker_free.iter().copied().max().unwrap_or(0));

    let reads = plan.fetches.len() as u64;
    ModelReport {
        sync_us,
        pipelined_us,
        speedup: if pipelined_us == 0 {
            1.0
        } else {
            sync_us as f64 / pipelined_us as f64
        },
        hit_rate: if reads == 0 {
            1.0
        } else {
            hits as f64 / reads as f64
        },
        reads,
        writes,
        compute_us: compute_total,
        io_us: io_total,
    }
}

#[cfg(test)]
#[allow(clippy::unwrap_used)]
mod tests {
    use super::*;
    use crate::backend::FaultyBackend;
    use crate::filemat::{scratch_path, FileMatrix};
    use crate::potrf::{ooc_potrf, ooc_potrf_with};
    use cholcomm_faults::{CrashPoint, DiskFault, FaultPlan};
    use cholcomm_matrix::spd;

    #[test]
    fn plan_counts_match_the_synchronous_cache() {
        let mut rng = spd::test_rng(230);
        let a = spd::random_spd(40, &mut rng);
        let b = 8;
        let nb = a.rows().div_ceil(b);
        for cap in [3usize, 5, 12] {
            let mut fm = FileMatrix::create(&scratch_path(&format!("plan{cap}")), &a, b).unwrap();
            ooc_potrf(&mut fm, cap).unwrap();
            let s = fm.stats();
            let plan = Plan::new(nb, cap, 0, false);
            assert_eq!(s.reads, plan.fetches.len() as u64, "cap {cap}: reads");
            assert_eq!(
                s.writes,
                plan.evict_writes + plan.final_writes.len() as u64,
                "cap {cap}: writes"
            );
            // Fetches are issuable by their miss, and in miss order.
            for (i, f) in plan.fetches.iter().enumerate() {
                assert!(f.ready_at <= f.miss_pos, "fetch {i} unissuable");
                if i > 0 {
                    assert!(f.miss_pos > plan.fetches[i - 1].miss_pos);
                }
            }
        }
        // Checkpointed-shaped plan: boundary flushes account for every
        // write the per-panel sync driver issues.
        let cap = 4;
        let mut fm = FileMatrix::create(&scratch_path("planck"), &a, b).unwrap();
        let ckpt = Checkpoint::at(&scratch_path("planck").with_extension("ckpt"));
        crate::checkpoint::ooc_potrf_checkpointed(&mut fm, cap, &ckpt).unwrap();
        let s = fm.stats();
        let plan = Plan::new(nb, cap, 0, true);
        assert_eq!(s.reads, plan.fetches.len() as u64);
        let flushes: u64 = plan.boundary_writes.iter().map(|v| v.len() as u64).sum();
        assert_eq!(s.writes, plan.evict_writes + flushes);
        assert!(plan.final_writes.is_empty());
    }

    #[test]
    fn pipelined_factor_is_bit_identical_to_sync() {
        let mut rng = spd::test_rng(231);
        let a = spd::random_spd(40, &mut rng);
        let b = 8;
        for kernel in [KernelImpl::Reference, KernelImpl::Fast] {
            for cap in [3usize, 5, 12] {
                let mut sync = FileMatrix::create(
                    &scratch_path(&format!("bits-sync-{kernel:?}-{cap}")),
                    &a,
                    b,
                )
                .unwrap();
                ooc_potrf_with(&mut sync, cap, kernel).unwrap();
                let want = sync.to_matrix().unwrap();
                for workers in [1usize, 2] {
                    for lookahead in [1usize, 4] {
                        let tag = format!("bits-pipe-{kernel:?}-{cap}-{workers}-{lookahead}");
                        let mut fm = FileMatrix::create(&scratch_path(&tag), &a, b).unwrap();
                        let cfg = PipelineConfig::new(cap)
                            .with_kernel(kernel)
                            .with_io_workers(workers)
                            .with_lookahead(lookahead);
                        let stats = ooc_potrf_pipelined_with(&mut fm, &cfg).unwrap();
                        let got = fm.to_matrix().unwrap();
                        assert_eq!(got, want, "{tag}: factor must be bit-identical");
                        assert_eq!(
                            stats.prefetch_hits + stats.prefetch_stalls,
                            stats.fetches,
                            "{tag}: every fetch consumed"
                        );
                        assert_eq!(
                            stats.fetches,
                            sync.stats().reads,
                            "{tag}: same compulsory+capacity misses as sync"
                        );
                        assert_eq!(
                            stats.evict_writes + stats.flush_writes,
                            sync.stats().writes,
                            "{tag}: same write-backs as sync"
                        );
                    }
                }
            }
        }
    }

    #[test]
    fn pipelined_not_spd_leaves_the_same_file_state() {
        let n = 16;
        let mut m = cholcomm_matrix::Matrix::<f64>::identity(n);
        for i in 0..n {
            m[(i, i)] = 4.0;
        }
        m[(12, 12)] = -1.0; // tile (3,3) with b=4 goes bad
        let mut sync = FileMatrix::create(&scratch_path("nspd-sync"), &m, 4).unwrap();
        let sync_err = ooc_potrf(&mut sync, 3).unwrap_err();
        let want = sync.to_matrix().unwrap();
        let mut fm = FileMatrix::create(&scratch_path("nspd-pipe"), &m, 4).unwrap();
        let err = ooc_potrf_pipelined(&mut fm, 3).unwrap_err();
        match (&sync_err, &err) {
            (
                OocError::NotSpd { pivot: p0, .. },
                OocError::NotSpd { pivot: p1, .. },
            ) => assert_eq!(p0, p1),
            other => panic!("expected matching NotSpd, got {other:?}"),
        }
        let got = fm.to_matrix().unwrap();
        assert_eq!(got, want, "abort must leave the same on-disk state");
    }

    #[test]
    fn pipelined_rides_transient_disk_faults() {
        let mut rng = spd::test_rng(232);
        let a = spd::random_spd(32, &mut rng);
        let mut clean = FileMatrix::create(&scratch_path("flaky-clean"), &a, 8).unwrap();
        ooc_potrf(&mut clean, 4).unwrap();
        let want = clean.to_matrix().unwrap();

        // One worker: the backend op order equals the sync order, so a
        // per-op plan fires at identical indices and the fault tallies
        // must match the sync run's exactly.
        let plan = || {
            FaultPlan::builder(60)
                .inject_disk_fault(2, 1, DiskFault::TransientEio)
                .inject_disk_fault(7, 1, DiskFault::ShortRead)
                .inject_disk_fault(7, 2, DiskFault::TransientEio)
                .build()
        };
        let sync_fm = FileMatrix::create(&scratch_path("flaky-sync"), &a, 8).unwrap();
        let mut sync_fb = FaultyBackend::new(sync_fm, plan());
        ooc_potrf(&mut sync_fb, 4).unwrap();
        let fm = FileMatrix::create(&scratch_path("flaky-w1"), &a, 8).unwrap();
        let mut fb = FaultyBackend::new(fm, plan());
        let cfg = PipelineConfig::new(4).with_io_workers(1);
        ooc_potrf_pipelined_with(&mut fb, &cfg).unwrap();
        assert_eq!(fb.fault_stats(), sync_fb.fault_stats(), "W=1 op order is sync order");
        assert_eq!(fb.inner_mut().to_matrix().unwrap(), want);

        // Two workers: op order may permute, so use rate faults; every
        // transient must still be healed below the factorization.
        let rate_plan = FaultPlan::builder(61).disk_transient_rate(0.2).build();
        let fm = FileMatrix::create(&scratch_path("flaky-w2"), &a, 8).unwrap();
        let mut fb = FaultyBackend::new(fm, rate_plan);
        let cfg = PipelineConfig::new(4).with_io_workers(2);
        ooc_potrf_pipelined_with(&mut fb, &cfg).unwrap();
        assert!(fb.fault_stats().disk_faults() > 0, "plan should have bitten");
        assert_eq!(fb.inner_mut().to_matrix().unwrap(), want);
    }

    #[test]
    fn checkpointed_pipeline_resumes_bit_identically_after_a_crash() {
        let mut rng = spd::test_rng(233);
        let a = spd::random_spd(32, &mut rng);
        let mut clean = FileMatrix::create(&scratch_path("pckpt-clean"), &a, 8).unwrap();
        ooc_potrf(&mut clean, 4).unwrap();
        let want = clean.to_matrix().unwrap();

        let path = scratch_path("pckpt");
        let ckpt = Checkpoint::at(&path.with_extension("ckpt"));
        let cfg = PipelineConfig::new(4).with_io_workers(2).with_lookahead(3);
        {
            let mut fm = FileMatrix::create(&path, &a, 8).unwrap();
            fm.set_persist(true); // the "dead process" leaves its file behind
            let plan = FaultPlan::builder(62)
                .crash_at(CrashPoint::AfterPanel(1))
                .build();
            let mut fb = FaultyBackend::new(fm, plan);
            let err = ooc_potrf_checkpointed_pipelined(&mut fb, &ckpt, &cfg).unwrap_err();
            assert!(matches!(err, OocError::Io(_)), "crash surfaces as Io");
        }
        // "Restart the process": reopen and resume with the same ckpt.
        let mut fm = FileMatrix::open(&path, 32, 8).unwrap();
        let (rep, stats) = ooc_potrf_checkpointed_pipelined(&mut fm, &ckpt, &cfg).unwrap();
        // The crash hits after panel 1 completes but *before* its
        // checkpoint commits, so the resume replays panel 1.
        assert_eq!(rep.start_panel, 1, "panel 0's checkpoint was the last committed");
        assert!(stats.fetches > 0);
        assert_eq!(
            fm.to_matrix().unwrap(),
            want,
            "crash + resume must not change a single bit"
        );
        assert!(ckpt.load().unwrap().is_none(), "checkpoint removed after success");
    }

    #[test]
    fn checkpointed_pipeline_matches_sync_without_faults() {
        let mut rng = spd::test_rng(234);
        let a = spd::random_spd(40, &mut rng);
        let mut sync = FileMatrix::create(&scratch_path("pck-sync"), &a, 8).unwrap();
        let sync_ckpt = Checkpoint::at(&scratch_path("pck-sync").with_extension("ckpt"));
        let sync_rep =
            crate::checkpoint::ooc_potrf_checkpointed(&mut sync, 4, &sync_ckpt).unwrap();
        let want = sync.to_matrix().unwrap();

        let mut fm = FileMatrix::create(&scratch_path("pck-pipe"), &a, 8).unwrap();
        let ckpt = Checkpoint::at(&scratch_path("pck-pipe").with_extension("ckpt"));
        let cfg = PipelineConfig::new(4).with_io_workers(2);
        let (rep, _) = ooc_potrf_checkpointed_pipelined(&mut fm, &ckpt, &cfg).unwrap();
        assert_eq!(fm.to_matrix().unwrap(), want);
        assert_eq!(rep.checkpoints_written, sync_rep.checkpoints_written);
        assert_eq!(rep.panels_done, sync_rep.panels_done);
        assert_eq!(rep.checkpoint_bytes, sync_rep.checkpoint_bytes);
    }

    #[test]
    fn unhealable_corruption_restores_and_retries_under_the_pipeline() {
        use crate::abft::AbftBackend;

        let mut rng = spd::test_rng(235);
        let a = spd::random_spd(32, &mut rng);
        let mut reference = FileMatrix::create(&scratch_path("pabft-ref"), &a, 8).unwrap();
        ooc_potrf(&mut reference, 4).unwrap();
        let want = reference.to_matrix().unwrap();

        // Two elements of one tile struck in the same panel: beyond the
        // checksums, so the driver must quiesce, roll back to the panel
        // checkpoint, and retry.
        let plan = FaultPlan::builder(63)
            .inject_bit_flip(1, (2, 1), (0, 0), 1 << 44)
            .inject_bit_flip(1, (2, 1), (6, 3), 1 << 45)
            .build();
        let fm = FileMatrix::create(&scratch_path("pabft"), &a, 8).unwrap();
        let mut ab = AbftBackend::new(fm, plan);
        let ckpt = Checkpoint::at(&scratch_path("pabft").with_extension("ckpt"));
        let cfg = PipelineConfig::new(3).with_io_workers(2).with_lookahead(2);
        let (rep, _) = ooc_potrf_checkpointed_pipelined(&mut ab, &ckpt, &cfg).unwrap();
        assert!(rep.restores >= 1, "multi-element corruption forced a rollback");
        assert_eq!(ab.abft_stats().unrecoverable, 1);
        assert_eq!(
            ab.inner_mut().to_matrix().unwrap(),
            want,
            "restored-and-retried factor must be bit-identical"
        );
    }

    #[test]
    fn model_overlap_is_deterministic_and_reports_overlap() {
        let cfg = ModelConfig {
            n: 512,
            b: 64,
            capacity_tiles: 12,
            io_workers: 2,
            lookahead: 8,
            latency: LatencyModel::uniform(100).with_jitter(10, 42),
            flops_per_us: DEFAULT_FLOPS_PER_US,
        };
        let r1 = model_overlap(&cfg);
        let r2 = model_overlap(&cfg);
        assert_eq!(r1.sync_us, r2.sync_us);
        assert_eq!(r1.pipelined_us, r2.pipelined_us);
        assert!(r1.speedup > 1.0, "overlap must beat sync: {r1:?}");
        assert_eq!(r1.sync_us, r1.compute_us + r1.io_us, "sync = compute + io");
        assert!(
            r1.pipelined_us >= r1.compute_us && r1.pipelined_us >= r1.io_us / 2,
            "pipelined is bounded below by the longer leg per worker: {r1:?}"
        );
        // One worker and zero latency degenerate sensibly.
        let free = ModelConfig {
            latency: LatencyModel::none(),
            ..cfg.clone()
        };
        let rf = model_overlap(&free);
        assert_eq!(rf.sync_us, rf.compute_us);
        assert_eq!(rf.pipelined_us, rf.compute_us);
        assert_eq!(rf.hit_rate, 1.0, "free disk never stalls");
    }

    #[test]
    fn model_overlap_meets_the_issue_gate() {
        // The ISSUE's modeled gate: n=2048, b=64, 100us-latency backend
        // -> >= 2x overlap speedup, and >= 90% hit rate at lookahead 4+.
        let gate = ModelConfig {
            n: 2048,
            b: 64,
            capacity_tiles: 56,
            io_workers: 2,
            lookahead: 8,
            latency: LatencyModel::uniform(100),
            flops_per_us: DEFAULT_FLOPS_PER_US,
        };
        let r = model_overlap(&gate);
        assert!(r.speedup >= 2.0, "modeled overlap gate: {r:?}");
        for la in [4usize, 8, 16] {
            let r = model_overlap(&ModelConfig {
                lookahead: la,
                ..gate.clone()
            });
            assert!(r.hit_rate >= 0.9, "lookahead {la}: hit rate {}", r.hit_rate);
        }
    }
}

