//! A minimal durable-storage interface shared by the journaled commit
//! protocols (ooc checkpoints, serve factor cache) so the same protocol
//! code runs over the real filesystem in production and over
//! [`SimDisk`](crate::SimDisk) under the crash-point explorer.
//!
//! The contract is deliberately narrow — flat names, whole-file and
//! append writes, an idempotent remove, and an explicit [`barrier`]
//! (fsync) — because the commit protocol must only rely on what both a
//! POSIX filesystem and the crash model can honor.  In particular:
//! nothing written is assumed durable until a `barrier` returns, and
//! un-barriered writes may land torn or not at all.
//!
//! [`barrier`]: Store::barrier

use crate::simdisk::SimDisk;
use std::collections::BTreeSet;
use std::io::Write;
use std::path::{Path, PathBuf};
use std::sync::{Arc, Mutex, MutexGuard};

/// Flat-namespace durable storage with explicit durability barriers.
pub trait Store {
    /// Read the whole file `name`.
    fn read(&self, name: &str) -> std::io::Result<Vec<u8>>;
    /// Does `name` exist?
    fn exists(&self, name: &str) -> bool;
    /// Create-or-truncate `name` with `bytes`.
    fn write_file(&mut self, name: &str, bytes: &[u8]) -> std::io::Result<()>;
    /// Append `bytes` to `name`, creating it if missing.
    fn append(&mut self, name: &str, bytes: &[u8]) -> std::io::Result<()>;
    /// Remove `name`; succeeds if it does not exist (idempotent, so
    /// crash-retried sweeps are safe).
    fn remove(&mut self, name: &str) -> std::io::Result<()>;
    /// All existing names starting with `prefix`, sorted.
    fn list_prefix(&self, prefix: &str) -> std::io::Result<Vec<String>>;
    /// Durability barrier: on success, every prior write on this store
    /// has reached stable storage.
    fn barrier(&mut self) -> std::io::Result<()>;
}

/// [`Store`] over the real filesystem.  Names are full paths; `barrier`
/// fsyncs every file touched since the last barrier plus its parent
/// directory (for renames/creates to be findable after a crash).
#[derive(Debug, Default)]
pub struct FsStore {
    touched: BTreeSet<PathBuf>,
}

impl FsStore {
    /// A new filesystem store with an empty dirty set.
    pub fn new() -> FsStore {
        FsStore::default()
    }

    fn mark(&mut self, name: &str) {
        let path = PathBuf::from(name);
        if let Some(parent) = path.parent() {
            self.touched.insert(parent.to_path_buf());
        }
        self.touched.insert(path);
    }
}

impl Store for FsStore {
    fn read(&self, name: &str) -> std::io::Result<Vec<u8>> {
        std::fs::read(name)
    }

    fn exists(&self, name: &str) -> bool {
        Path::new(name).exists()
    }

    fn write_file(&mut self, name: &str, bytes: &[u8]) -> std::io::Result<()> {
        std::fs::write(name, bytes)?;
        self.mark(name);
        Ok(())
    }

    fn append(&mut self, name: &str, bytes: &[u8]) -> std::io::Result<()> {
        let mut f = std::fs::OpenOptions::new()
            .create(true)
            .append(true)
            .open(name)?;
        f.write_all(bytes)?;
        self.mark(name);
        Ok(())
    }

    fn remove(&mut self, name: &str) -> std::io::Result<()> {
        match std::fs::remove_file(name) {
            Ok(()) => {
                self.mark(name);
                Ok(())
            }
            Err(e) if e.kind() == std::io::ErrorKind::NotFound => Ok(()),
            Err(e) => Err(e),
        }
    }

    fn list_prefix(&self, prefix: &str) -> std::io::Result<Vec<String>> {
        let p = Path::new(prefix);
        let dir = p.parent().filter(|d| !d.as_os_str().is_empty());
        let dir = dir.map_or_else(|| PathBuf::from("."), Path::to_path_buf);
        let mut out = Vec::new();
        let entries = match std::fs::read_dir(&dir) {
            Ok(e) => e,
            Err(e) if e.kind() == std::io::ErrorKind::NotFound => return Ok(out),
            Err(e) => return Err(e),
        };
        for entry in entries {
            let path = entry?.path();
            let name = path.to_string_lossy().into_owned();
            if name.starts_with(prefix) {
                out.push(name);
            }
        }
        out.sort();
        Ok(out)
    }

    fn barrier(&mut self) -> std::io::Result<()> {
        for path in std::mem::take(&mut self.touched) {
            // Removed files and (on some platforms) directories cannot be
            // opened for sync; skip what is gone, best-effort the dirs.
            if let Ok(f) = std::fs::File::open(&path) {
                f.sync_all()?;
            }
        }
        Ok(())
    }
}

/// [`Store`] over a shared [`SimDisk`] — the explorer's storage.  Every
/// mutation lands in the disk's recorded schedule; `barrier` maps to the
/// disk barrier.
#[derive(Debug, Clone)]
pub struct SimStore {
    disk: Arc<Mutex<SimDisk>>,
}

impl SimStore {
    /// Wrap a shared simulated disk.
    pub fn new(disk: Arc<Mutex<SimDisk>>) -> SimStore {
        SimStore { disk }
    }

    /// The underlying disk handle.
    pub fn disk(&self) -> Arc<Mutex<SimDisk>> {
        Arc::clone(&self.disk)
    }

    fn lock(&self) -> MutexGuard<'_, SimDisk> {
        self.disk
            .lock()
            .unwrap_or_else(std::sync::PoisonError::into_inner)
    }
}

impl Store for SimStore {
    fn read(&self, name: &str) -> std::io::Result<Vec<u8>> {
        self.lock().read(name)
    }

    fn exists(&self, name: &str) -> bool {
        self.lock().exists(name)
    }

    fn write_file(&mut self, name: &str, bytes: &[u8]) -> std::io::Result<()> {
        self.lock().write_file(name, bytes);
        Ok(())
    }

    fn append(&mut self, name: &str, bytes: &[u8]) -> std::io::Result<()> {
        self.lock().append(name, bytes);
        Ok(())
    }

    fn remove(&mut self, name: &str) -> std::io::Result<()> {
        self.lock().remove(name);
        Ok(())
    }

    fn list_prefix(&self, prefix: &str) -> std::io::Result<Vec<String>> {
        Ok(self.lock().list_prefix(prefix))
    }

    fn barrier(&mut self) -> std::io::Result<()> {
        self.lock().barrier();
        Ok(())
    }
}

#[cfg(test)]
#[allow(clippy::unwrap_used)]
mod tests {
    use super::*;
    use crate::simdisk::DEFAULT_SECTOR;

    fn scratch(tag: &str) -> String {
        let mut p = std::env::temp_dir();
        p.push(format!("cholcomm-store-{tag}-{}", std::process::id()));
        p.to_string_lossy().into_owned()
    }

    #[test]
    fn fs_store_roundtrip_append_remove_list() {
        let base = scratch("rt");
        let mut s = FsStore::new();
        s.write_file(&format!("{base}.a"), b"one").unwrap();
        s.append(&format!("{base}.a"), b"+two").unwrap();
        s.write_file(&format!("{base}.b"), b"x").unwrap();
        s.barrier().unwrap();
        assert_eq!(s.read(&format!("{base}.a")).unwrap(), b"one+two");
        let listed = s.list_prefix(&base).unwrap();
        assert_eq!(listed.len(), 2, "listed: {listed:?}");
        s.remove(&format!("{base}.a")).unwrap();
        s.remove(&format!("{base}.a")).unwrap(); // idempotent
        assert!(!s.exists(&format!("{base}.a")));
        s.remove(&format!("{base}.b")).unwrap();
        s.barrier().unwrap();
    }

    #[test]
    fn sim_store_records_schedule_and_honors_barriers() {
        let disk = Arc::new(Mutex::new(SimDisk::new(DEFAULT_SECTOR)));
        let mut s = SimStore::new(Arc::clone(&disk));
        s.write_file("j", b"intent\n").unwrap();
        s.append("j", b"commit\n").unwrap();
        s.barrier().unwrap();
        assert_eq!(s.read("j").unwrap(), b"intent\ncommit\n");
        assert_eq!(s.list_prefix("j").unwrap(), vec!["j".to_string()]);
        let guard = disk.lock().unwrap();
        assert_eq!(guard.schedule().len(), 3, "two writes + one barrier");
        assert_eq!(guard.pending_ops(), 0);
    }
}
