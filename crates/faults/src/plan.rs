//! The fault plan: a seeded, deterministic schedule of injected faults.

use crate::{coord_hash, unit};
use std::collections::HashMap;
use std::sync::Arc;

/// What happens to one transmission attempt of a message.
#[derive(Debug, Clone, Copy, PartialEq)]
pub enum MessageFault {
    /// The attempt vanishes in the network; the sender must time out and
    /// retransmit.
    Drop,
    /// The attempt is delivered twice; the receiver must deduplicate by
    /// sequence number.
    Duplicate,
    /// The attempt arrives with its payload corrupted; the receiver
    /// detects the bad checksum, discards it, and waits for the
    /// retransmit.
    Corrupt,
    /// The attempt arrives intact but late by `extra` simulated seconds.
    Delay {
        /// Additional simulated latency.
        extra: f64,
    },
}

/// What happens to one attempt of a file I/O operation.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum DiskFault {
    /// The operation fails with a transient `EIO`-style error.
    TransientEio,
    /// A read returns fewer bytes than requested (surfaces as an
    /// `UnexpectedEof` error from the backend).
    ShortRead,
}

/// Kind of disk operation, for keying fault decisions.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum DiskOp {
    /// A tile read.
    Read,
    /// A tile write.
    Write,
}

/// A seeded per-operation disk latency schedule, in microseconds: every
/// read costs `read_us`, every write `write_us`, plus a deterministic
/// per-op jitter drawn uniformly from `0..=jitter_us` off the plan's
/// seed.  Latency is a *performance* injection, not a fault: it never
/// changes any result, only when results arrive — so a latency-only
/// plan still counts as clean.  The out-of-core layer turns this into
/// its latency model (sleeping executors pay it, modeled-time
/// simulators price it).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct DiskLatency {
    /// Base cost of one tile read, µs.
    pub read_us: u64,
    /// Base cost of one tile write, µs.
    pub write_us: u64,
    /// Upper bound of the seeded uniform per-op jitter, µs.
    pub jitter_us: u64,
}

/// Where the process dies.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum CrashPoint {
    /// Crash immediately after the `n`-th counted disk operation
    /// completes (0-based), typically mid-panel.
    AfterDiskOps(u64),
    /// Crash immediately after panel `k` of the factorization completes
    /// but before its checkpoint is written.
    AfterPanel(usize),
}

/// A silent data corruption: at the start of panel step `step`, XOR
/// `mask` into the `f64` bit pattern of element `elem` of tile `tile` —
/// the memory-resident (or at-rest, for the out-of-core path) model of
/// a cosmic-ray upset.  The checksums guarding the tile are *not*
/// updated, which is exactly what makes the corruption silent.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct BitFlip {
    /// Panel step (0-based) at whose start the flip lands.
    pub step: usize,
    /// Target tile as `(block_row, block_col)`.
    pub tile: (usize, usize),
    /// Target element within the tile as `(row, col)`.
    pub elem: (usize, usize),
    /// XOR mask applied to the element's 64-bit pattern (nonzero).
    pub mask: u64,
}

/// What happens to one attempt of a *service job* (a request in the
/// `cholcomm-serve` request stream).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum JobFault {
    /// The attempt fails with a transient, retryable error before any
    /// panel work lands (the request-stream analogue of a transient
    /// `EIO`); the service retries with backoff.
    Transient,
    /// The worker executing the attempt panics at the start of panel
    /// `panel`; the shard supervisor must restart the worker and
    /// re-drive the job from its last checkpoint.
    Crash {
        /// Panel step (0-based) at whose start the worker dies.  Clamped
        /// by the caller to the job's panel count.
        panel: usize,
    },
}

/// A fail-stop rank death: rank `rank` dies at the start of panel step
/// `step`, dropping its channel endpoints so peers observe disconnects
/// instead of hangs.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct RankKill {
    /// The rank that dies.
    pub rank: usize,
    /// Panel step (0-based) at whose start it dies.
    pub step: usize,
}

/// One at-rest corruption of a cached factor: the struck element
/// `(row, col)` and the nonzero XOR mask applied to its bit pattern.
pub type CacheFlip = ((usize, usize), u64);

/// Builder for a [`FaultPlan`].
#[derive(Debug, Clone)]
pub struct FaultPlanBuilder {
    seed: u64,
    drop_rate: f64,
    duplicate_rate: f64,
    corrupt_rate: f64,
    delay_rate: f64,
    delay_extra: f64,
    disk_transient_rate: f64,
    disk_short_read_rate: f64,
    disk_latency: Option<DiskLatency>,
    bit_flip_rate: f64,
    job_transient_rate: f64,
    worker_crash_rate: f64,
    cache_flip_rate: f64,
    max_fault_attempts: u32,
    message_injections: HashMap<(usize, usize, u64, u32), MessageFault>,
    disk_injections: HashMap<(u64, u32), DiskFault>,
    bit_flip_injections: Vec<BitFlip>,
    job_injections: HashMap<(u64, u32), JobFault>,
    cache_flip_injections: HashMap<u64, Vec<CacheFlip>>,
    rank_kill: Option<RankKill>,
    crash: Option<CrashPoint>,
}

impl FaultPlanBuilder {
    fn new(seed: u64) -> Self {
        FaultPlanBuilder {
            seed,
            drop_rate: 0.0,
            duplicate_rate: 0.0,
            corrupt_rate: 0.0,
            delay_rate: 0.0,
            delay_extra: 0.0,
            disk_transient_rate: 0.0,
            disk_short_read_rate: 0.0,
            disk_latency: None,
            bit_flip_rate: 0.0,
            job_transient_rate: 0.0,
            worker_crash_rate: 0.0,
            cache_flip_rate: 0.0,
            max_fault_attempts: 6,
            message_injections: HashMap::new(),
            disk_injections: HashMap::new(),
            bit_flip_injections: Vec::new(),
            job_injections: HashMap::new(),
            cache_flip_injections: HashMap::new(),
            rank_kill: None,
            crash: None,
        }
    }

    /// Fraction of message attempts that are dropped.
    pub fn drop_rate(mut self, rate: f64) -> Self {
        assert!((0.0..=1.0).contains(&rate));
        self.drop_rate = rate;
        self
    }

    /// Fraction of messages delivered twice.
    pub fn duplicate_rate(mut self, rate: f64) -> Self {
        assert!((0.0..=1.0).contains(&rate));
        self.duplicate_rate = rate;
        self
    }

    /// Fraction of message attempts that arrive corrupted.
    pub fn corrupt_rate(mut self, rate: f64) -> Self {
        assert!((0.0..=1.0).contains(&rate));
        self.corrupt_rate = rate;
        self
    }

    /// Fraction of messages delayed, and the extra simulated latency
    /// each delayed message suffers.
    pub fn delay(mut self, rate: f64, extra: f64) -> Self {
        assert!((0.0..=1.0).contains(&rate));
        assert!(extra >= 0.0);
        self.delay_rate = rate;
        self.delay_extra = extra;
        self
    }

    /// Fraction of disk operations that fail with a transient error.
    pub fn disk_transient_rate(mut self, rate: f64) -> Self {
        assert!((0.0..=1.0).contains(&rate));
        self.disk_transient_rate = rate;
        self
    }

    /// Fraction of disk reads that come up short.
    pub fn disk_short_read_rate(mut self, rate: f64) -> Self {
        assert!((0.0..=1.0).contains(&rate));
        self.disk_short_read_rate = rate;
        self
    }

    /// Charge every disk operation a seeded deterministic latency:
    /// `read_us`/`write_us` base cost plus uniform jitter in
    /// `0..=jitter_us`, all in microseconds.  See [`DiskLatency`]; query
    /// with [`FaultPlan::disk_latency`].
    pub fn disk_latency(mut self, read_us: u64, write_us: u64, jitter_us: u64) -> Self {
        self.disk_latency = Some(DiskLatency {
            read_us,
            write_us,
            jitter_us,
        });
        self
    }

    /// Never fault the same message or disk operation more than `n`
    /// consecutive attempts (liveness bound for bounded retry).
    /// Clamped to at least 1.
    pub fn max_fault_attempts(mut self, n: u32) -> Self {
        self.max_fault_attempts = n.max(1);
        self
    }

    /// Explicitly fault attempt `attempt` (1-based) of the message with
    /// per-link sequence number `seq` on the link `src -> dst`.
    pub fn inject_message_fault(
        mut self,
        src: usize,
        dst: usize,
        seq: u64,
        attempt: u32,
        fault: MessageFault,
    ) -> Self {
        self.message_injections.insert((src, dst, seq, attempt), fault);
        self
    }

    /// Explicitly fault attempt `attempt` (1-based) of the `op_index`-th
    /// counted disk operation (0-based).
    pub fn inject_disk_fault(mut self, op_index: u64, attempt: u32, fault: DiskFault) -> Self {
        self.disk_injections.insert((op_index, attempt), fault);
        self
    }

    /// Kill the process at the given point.
    pub fn crash_at(mut self, point: CrashPoint) -> Self {
        self.crash = Some(point);
        self
    }

    /// Fraction of `(step, tile)` sites struck by a seeded single-bit
    /// flip (element and bit derived deterministically from the seed;
    /// query with [`FaultPlan::random_bit_flip`]).
    pub fn bit_flip_rate(mut self, rate: f64) -> Self {
        assert!((0.0..=1.0).contains(&rate));
        self.bit_flip_rate = rate;
        self
    }

    /// Explicitly corrupt element `elem` of tile `tile` at the start of
    /// panel step `step`, XORing `mask` into its bit pattern.
    pub fn inject_bit_flip(
        mut self,
        step: usize,
        tile: (usize, usize),
        elem: (usize, usize),
        mask: u64,
    ) -> Self {
        assert!(mask != 0, "a zero mask flips nothing");
        self.bit_flip_injections.push(BitFlip {
            step,
            tile,
            elem,
            mask,
        });
        self
    }

    /// Kill rank `rank` at the start of panel step `step` (fail-stop).
    pub fn inject_rank_kill(mut self, rank: usize, step: usize) -> Self {
        self.rank_kill = Some(RankKill { rank, step });
        self
    }

    /// Fraction of service-job attempts that fail with a transient,
    /// retryable error.
    pub fn job_transient_rate(mut self, rate: f64) -> Self {
        assert!((0.0..=1.0).contains(&rate));
        self.job_transient_rate = rate;
        self
    }

    /// Fraction of service-job attempts whose worker panics mid-job (the
    /// crash panel is derived deterministically from the seed).
    pub fn worker_crash_rate(mut self, rate: f64) -> Self {
        assert!((0.0..=1.0).contains(&rate));
        self.worker_crash_rate = rate;
        self
    }

    /// Explicitly fault attempt `attempt` (1-based) of service job `job`.
    pub fn inject_job_fault(mut self, job: u64, attempt: u32, fault: JobFault) -> Self {
        self.job_injections.insert((job, attempt), fault);
        self
    }

    /// Fraction of cache reads struck by a seeded single-bit flip in the
    /// at-rest cached factor (element and bit derived from the seed;
    /// query with [`FaultPlan::cache_flips`]).
    pub fn cache_flip_rate(mut self, rate: f64) -> Self {
        assert!((0.0..=1.0).contains(&rate));
        self.cache_flip_rate = rate;
        self
    }

    /// Explicitly corrupt element `elem` of the cached factor read by
    /// service job `job`, XORing `mask` into its bit pattern.  Injecting
    /// two flips for one job models multi-element (unhealable) rot.
    pub fn inject_cache_flip(mut self, job: u64, elem: (usize, usize), mask: u64) -> Self {
        assert!(mask != 0, "a zero mask flips nothing");
        self.cache_flip_injections.entry(job).or_default().push((elem, mask));
        self
    }

    /// Finish the plan.
    pub fn build(self) -> FaultPlan {
        let total = self.drop_rate + self.duplicate_rate + self.corrupt_rate + self.delay_rate;
        assert!(
            total <= 1.0,
            "message fault rates sum to {total} > 1"
        );
        let disk_total = self.disk_transient_rate + self.disk_short_read_rate;
        assert!(disk_total <= 1.0, "disk fault rates sum to {disk_total} > 1");
        let job_total = self.job_transient_rate + self.worker_crash_rate;
        assert!(job_total <= 1.0, "job fault rates sum to {job_total} > 1");
        FaultPlan {
            inner: Arc::new(self),
        }
    }
}

/// A seeded, deterministic fault schedule.  Cheap to clone (the plan is
/// shared behind an `Arc`), and safe to consult concurrently from every
/// rank: decisions are pure functions of the seed and the fault site.
#[derive(Debug, Clone)]
pub struct FaultPlan {
    inner: Arc<FaultPlanBuilder>,
}

impl FaultPlan {
    /// Start building a plan with the given seed.
    pub fn builder(seed: u64) -> FaultPlanBuilder {
        FaultPlanBuilder::new(seed)
    }

    /// The empty plan: no faults ever.
    pub fn none() -> FaultPlan {
        FaultPlanBuilder::new(0).build()
    }

    /// The plan's seed.
    pub fn seed(&self) -> u64 {
        self.inner.seed
    }

    /// `true` when this plan can never inject anything.
    pub fn is_clean(&self) -> bool {
        let p = &*self.inner;
        p.drop_rate == 0.0
            && p.duplicate_rate == 0.0
            && p.corrupt_rate == 0.0
            && p.delay_rate == 0.0
            && p.disk_transient_rate == 0.0
            && p.disk_short_read_rate == 0.0
            && p.bit_flip_rate == 0.0
            && p.job_transient_rate == 0.0
            && p.worker_crash_rate == 0.0
            && p.cache_flip_rate == 0.0
            && p.message_injections.is_empty()
            && p.disk_injections.is_empty()
            && p.bit_flip_injections.is_empty()
            && p.job_injections.is_empty()
            && p.cache_flip_injections.is_empty()
            && p.rank_kill.is_none()
            && p.crash.is_none()
    }

    /// Liveness bound: no site is faulted more than this many attempts.
    pub fn max_fault_attempts(&self) -> u32 {
        self.inner.max_fault_attempts
    }

    /// The fate of transmission attempt `attempt` (1-based) of the
    /// message with per-link sequence `seq` on the link `src -> dst`.
    ///
    /// Returns `None` for a clean delivery.  Attempts beyond
    /// [`max_fault_attempts`](Self::max_fault_attempts) are always clean.
    pub fn message_fault(
        &self,
        src: usize,
        dst: usize,
        seq: u64,
        attempt: u32,
    ) -> Option<MessageFault> {
        let p = &*self.inner;
        if let Some(&f) = p.message_injections.get(&(src, dst, seq, attempt)) {
            return Some(f);
        }
        if attempt > p.max_fault_attempts {
            return None;
        }
        let h = coord_hash(
            p.seed,
            &[0x4D53u64, src as u64, dst as u64, seq, attempt as u64],
        );
        let u = unit(h);
        let mut edge = p.drop_rate;
        if u < edge {
            return Some(MessageFault::Drop);
        }
        edge += p.duplicate_rate;
        if u < edge {
            // Duplicating a retransmission adds nothing new; only first
            // attempts are duplicated.
            if attempt == 1 {
                return Some(MessageFault::Duplicate);
            }
            return None;
        }
        edge += p.corrupt_rate;
        if u < edge {
            return Some(MessageFault::Corrupt);
        }
        edge += p.delay_rate;
        if u < edge {
            return Some(MessageFault::Delay {
                extra: p.delay_extra,
            });
        }
        None
    }

    /// The fate of attempt `attempt` (1-based) of the `op_index`-th
    /// counted disk operation.  Attempts beyond
    /// [`max_fault_attempts`](Self::max_fault_attempts) are always clean.
    pub fn disk_fault(&self, op: DiskOp, op_index: u64, attempt: u32) -> Option<DiskFault> {
        let p = &*self.inner;
        if let Some(&f) = p.disk_injections.get(&(op_index, attempt)) {
            return Some(f);
        }
        if attempt > p.max_fault_attempts {
            return None;
        }
        let tag = match op {
            DiskOp::Read => 0x5244u64,
            DiskOp::Write => 0x5752u64,
        };
        let h = coord_hash(p.seed, &[tag, op_index, attempt as u64]);
        let u = unit(h);
        let mut edge = p.disk_transient_rate;
        if u < edge {
            return Some(DiskFault::TransientEio);
        }
        if op == DiskOp::Read {
            edge += p.disk_short_read_rate;
            if u < edge {
                return Some(DiskFault::ShortRead);
            }
        }
        None
    }

    /// Where (if anywhere) the process crashes.
    pub fn crash_point(&self) -> Option<CrashPoint> {
        self.inner.crash
    }

    /// The plan's disk-latency schedule, when one was injected.
    /// Latency never alters results (see [`DiskLatency`]), so it is not
    /// consulted by [`is_clean`](Self::is_clean).  Sampling the actual
    /// per-op cost is the consumer's job (the OOC layer's
    /// `LatencyModel` turns this plus the plan's seed into a
    /// deterministic per-operation charge).
    pub fn disk_latency(&self) -> Option<DiskLatency> {
        self.inner.disk_latency
    }

    /// Explicitly injected bit flips landing at the start of `step`, in
    /// injection order.
    pub fn bit_flips(&self, step: usize) -> Vec<BitFlip> {
        self.inner
            .bit_flip_injections
            .iter()
            .filter(|f| f.step == step)
            .copied()
            .collect()
    }

    /// Explicitly injected bit flips for one `(step, tile)` site.
    pub fn bit_flips_at(&self, step: usize, tile: (usize, usize)) -> Vec<BitFlip> {
        self.inner
            .bit_flip_injections
            .iter()
            .filter(|f| f.step == step && f.tile == tile)
            .copied()
            .collect()
    }

    /// The seeded random flip (if any) striking tile `tile` (of shape
    /// `rows x cols`) at the start of `step`.  A pure function of the
    /// seed and the site, like every other decision in the plan; the
    /// flipped element and bit are derived from the same hash.
    pub fn random_bit_flip(
        &self,
        step: usize,
        tile: (usize, usize),
        rows: usize,
        cols: usize,
    ) -> Option<BitFlip> {
        let p = &*self.inner;
        if p.bit_flip_rate == 0.0 || rows == 0 || cols == 0 {
            return None;
        }
        let h = coord_hash(
            p.seed,
            &[0x4246u64, step as u64, tile.0 as u64, tile.1 as u64],
        );
        if unit(h) >= p.bit_flip_rate {
            return None;
        }
        let sel = coord_hash(
            p.seed,
            &[0x4247u64, step as u64, tile.0 as u64, tile.1 as u64],
        );
        let i = (sel as usize) % rows;
        let j = ((sel >> 20) as usize) % cols;
        let bit = (sel >> 40) % 64;
        Some(BitFlip {
            step,
            tile,
            elem: (i, j),
            mask: 1u64 << bit,
        })
    }

    /// The rank death (if any) scheduled by this plan.
    pub fn rank_kill(&self) -> Option<RankKill> {
        self.inner.rank_kill
    }

    /// The fate of attempt `attempt` (1-based) of service job `job`
    /// whose factorization has `panels` panel steps.  Attempts beyond
    /// [`max_fault_attempts`](Self::max_fault_attempts) are always clean
    /// (the liveness bound that makes bounded retry sufficient).
    pub fn job_fault(&self, job: u64, attempt: u32, panels: usize) -> Option<JobFault> {
        let p = &*self.inner;
        if let Some(&f) = p.job_injections.get(&(job, attempt)) {
            return Some(match f {
                JobFault::Crash { panel } => JobFault::Crash {
                    panel: panel.min(panels.saturating_sub(1)),
                },
                t => t,
            });
        }
        if attempt > p.max_fault_attempts {
            return None;
        }
        let h = coord_hash(p.seed, &[0x4A42u64, job, attempt as u64]);
        let u = unit(h);
        let mut edge = p.job_transient_rate;
        if u < edge {
            return Some(JobFault::Transient);
        }
        edge += p.worker_crash_rate;
        if u < edge && panels > 0 {
            let sel = coord_hash(p.seed, &[0x4A43u64, job, attempt as u64]);
            return Some(JobFault::Crash {
                panel: (sel as usize) % panels,
            });
        }
        None
    }

    /// The at-rest corruptions (element, XOR mask) striking the cached
    /// `rows x cols` factor as it is read by service job `job`: explicit
    /// injections first, then (if the seeded rate fires) one derived
    /// single-bit flip.  Pure function of the seed and the job id, like
    /// every other decision in the plan.
    pub fn cache_flips(&self, job: u64, rows: usize, cols: usize) -> Vec<CacheFlip> {
        let p = &*self.inner;
        let mut flips: Vec<CacheFlip> = p
            .cache_flip_injections
            .get(&job)
            .cloned()
            .unwrap_or_default();
        if p.cache_flip_rate > 0.0 && rows > 0 && cols > 0 {
            let h = coord_hash(p.seed, &[0x4346u64, job]);
            if unit(h) < p.cache_flip_rate {
                let sel = coord_hash(p.seed, &[0x4347u64, job]);
                let i = (sel as usize) % rows;
                let j = ((sel >> 20) as usize) % cols;
                let bit = (sel >> 40) % 64;
                flips.push(((i, j), 1u64 << bit));
            }
        }
        flips
    }
}

#[cfg(test)]
#[allow(clippy::unwrap_used)]
mod tests {
    use super::*;

    #[test]
    fn same_seed_same_schedule() {
        let mk = || {
            FaultPlan::builder(99)
                .drop_rate(0.2)
                .duplicate_rate(0.1)
                .corrupt_rate(0.05)
                .delay(0.1, 123.0)
                .disk_transient_rate(0.1)
                .build()
        };
        let (a, b) = (mk(), mk());
        for src in 0..4 {
            for dst in 0..4 {
                for seq in 0..200u64 {
                    for attempt in 1..=4u32 {
                        assert_eq!(
                            a.message_fault(src, dst, seq, attempt),
                            b.message_fault(src, dst, seq, attempt)
                        );
                    }
                }
            }
        }
        for i in 0..500u64 {
            assert_eq!(
                a.disk_fault(DiskOp::Read, i, 1),
                b.disk_fault(DiskOp::Read, i, 1)
            );
        }
    }

    #[test]
    fn different_seeds_differ() {
        let a = FaultPlan::builder(1).drop_rate(0.3).build();
        let b = FaultPlan::builder(2).drop_rate(0.3).build();
        let differs = (0..500u64)
            .any(|seq| a.message_fault(0, 1, seq, 1) != b.message_fault(0, 1, seq, 1));
        assert!(differs, "seeds 1 and 2 produced identical schedules");
    }

    #[test]
    fn rates_are_roughly_respected() {
        let plan = FaultPlan::builder(7).drop_rate(0.25).build();
        let n = 10_000u64;
        let drops = (0..n)
            .filter(|&seq| plan.message_fault(2, 3, seq, 1) == Some(MessageFault::Drop))
            .count();
        let frac = drops as f64 / n as f64;
        assert!((frac - 0.25).abs() < 0.02, "drop fraction {frac}");
    }

    #[test]
    fn liveness_no_faults_past_the_attempt_cap() {
        let plan = FaultPlan::builder(5)
            .drop_rate(0.9)
            .corrupt_rate(0.1)
            .max_fault_attempts(3)
            .build();
        for seq in 0..200u64 {
            assert_eq!(plan.message_fault(0, 1, seq, 4), None);
            assert_eq!(plan.disk_fault(DiskOp::Write, seq, 4), None);
        }
    }

    #[test]
    fn explicit_injections_fire_exactly_where_placed() {
        let plan = FaultPlan::builder(0)
            .inject_message_fault(1, 2, 7, 1, MessageFault::Drop)
            .inject_disk_fault(42, 1, DiskFault::ShortRead)
            .inject_disk_fault(42, 2, DiskFault::TransientEio)
            .build();
        assert_eq!(plan.message_fault(1, 2, 7, 1), Some(MessageFault::Drop));
        assert_eq!(plan.message_fault(1, 2, 8, 1), None);
        assert_eq!(plan.message_fault(2, 1, 7, 1), None);
        assert_eq!(
            plan.disk_fault(DiskOp::Read, 42, 1),
            Some(DiskFault::ShortRead)
        );
        assert_eq!(
            plan.disk_fault(DiskOp::Read, 42, 2),
            Some(DiskFault::TransientEio)
        );
        assert_eq!(plan.disk_fault(DiskOp::Read, 42, 3), None);
    }

    #[test]
    fn clean_plan_is_clean() {
        assert!(FaultPlan::none().is_clean());
        let plan = FaultPlan::none();
        for seq in 0..100 {
            assert_eq!(plan.message_fault(0, 1, seq, 1), None);
            assert_eq!(plan.disk_fault(DiskOp::Read, seq, 1), None);
        }
        assert!(!FaultPlan::builder(0).drop_rate(0.1).build().is_clean());
    }

    #[test]
    fn bit_flips_and_rank_kills_are_plan_kinds() {
        let plan = FaultPlan::builder(11)
            .inject_bit_flip(2, (1, 0), (3, 3), 1 << 52)
            .inject_bit_flip(2, (1, 0), (0, 1), 0b1)
            .inject_bit_flip(4, (0, 0), (0, 0), 1 << 63)
            .inject_rank_kill(3, 1)
            .build();
        assert!(!plan.is_clean());
        assert_eq!(plan.bit_flips(2).len(), 2);
        assert_eq!(plan.bit_flips_at(2, (1, 0)).len(), 2);
        assert_eq!(plan.bit_flips_at(2, (0, 0)).len(), 0);
        assert_eq!(plan.bit_flips(0).len(), 0);
        assert_eq!(plan.rank_kill(), Some(RankKill { rank: 3, step: 1 }));
        assert_eq!(FaultPlan::none().rank_kill(), None);
    }

    #[test]
    fn random_bit_flips_are_seeded_and_in_range() {
        let mk = |seed| FaultPlan::builder(seed).bit_flip_rate(0.3).build();
        let (a, b) = (mk(4), mk(4));
        let mut hits = 0;
        for step in 0..8 {
            for bi in 0..6 {
                for bj in 0..6 {
                    let fa = a.random_bit_flip(step, (bi, bj), 5, 7);
                    assert_eq!(fa, b.random_bit_flip(step, (bi, bj), 5, 7));
                    if let Some(f) = fa {
                        hits += 1;
                        assert!(f.elem.0 < 5 && f.elem.1 < 7);
                        assert_eq!(f.mask.count_ones(), 1, "single-bit upset");
                    }
                }
            }
        }
        assert!(hits > 30, "rate 0.3 over 288 sites should strike often: {hits}");
        assert!(mk(5).random_bit_flip(0, (0, 0), 5, 7) != a.random_bit_flip(0, (0, 0), 5, 7)
            || mk(5).random_bit_flip(1, (2, 1), 5, 7) != a.random_bit_flip(1, (2, 1), 5, 7));
        assert_eq!(FaultPlan::none().random_bit_flip(0, (0, 0), 4, 4), None);
    }

    #[test]
    fn job_faults_are_seeded_deterministic_and_bounded() {
        let mk = || {
            FaultPlan::builder(21)
                .job_transient_rate(0.2)
                .worker_crash_rate(0.1)
                .max_fault_attempts(3)
                .build()
        };
        let (a, b) = (mk(), mk());
        let mut transients = 0usize;
        let mut crashes = 0usize;
        for job in 0..2000u64 {
            for attempt in 1..=3u32 {
                let fa = a.job_fault(job, attempt, 8);
                assert_eq!(fa, b.job_fault(job, attempt, 8));
                match fa {
                    Some(JobFault::Transient) => transients += 1,
                    Some(JobFault::Crash { panel }) => {
                        crashes += 1;
                        assert!(panel < 8);
                    }
                    None => {}
                }
            }
            // Liveness: past the attempt cap, always clean.
            assert_eq!(a.job_fault(job, 4, 8), None);
        }
        let n = 2000.0 * 3.0;
        assert!((transients as f64 / n - 0.2).abs() < 0.03, "{transients}");
        assert!((crashes as f64 / n - 0.1).abs() < 0.03, "{crashes}");
        assert!(!mk().is_clean());
    }

    #[test]
    fn explicit_job_faults_fire_exactly_where_placed() {
        let plan = FaultPlan::builder(0)
            .inject_job_fault(5, 1, JobFault::Transient)
            .inject_job_fault(5, 2, JobFault::Crash { panel: 99 })
            .build();
        assert_eq!(plan.job_fault(5, 1, 4), Some(JobFault::Transient));
        // Crash panel is clamped to the job's panel count.
        assert_eq!(plan.job_fault(5, 2, 4), Some(JobFault::Crash { panel: 3 }));
        assert_eq!(plan.job_fault(5, 3, 4), None);
        assert_eq!(plan.job_fault(6, 1, 4), None);
        // Explicit injections fire even past the attempt cap — tests can
        // script pathological streams; the *random* draws stay bounded.
        let deep = FaultPlan::builder(0)
            .inject_job_fault(1, 9, JobFault::Transient)
            .build();
        assert_eq!(deep.job_fault(1, 9, 4), Some(JobFault::Transient));
    }

    #[test]
    fn cache_flips_are_seeded_and_in_bounds() {
        let mk = || FaultPlan::builder(13).cache_flip_rate(0.5).build();
        let (a, b) = (mk(), mk());
        let mut hits = 0usize;
        for job in 0..400u64 {
            let fa = a.cache_flips(job, 6, 6);
            assert_eq!(fa, b.cache_flips(job, 6, 6));
            for &((i, j), mask) in &fa {
                assert!(i < 6 && j < 6);
                assert_eq!(mask.count_ones(), 1, "single-bit upset");
            }
            hits += fa.len();
        }
        assert!(hits > 100, "rate 0.5 over 400 jobs: {hits}");

        let explicit = FaultPlan::builder(0)
            .inject_cache_flip(7, (2, 3), 1 << 52)
            .inject_cache_flip(7, (0, 0), 0b10)
            .build();
        assert_eq!(
            explicit.cache_flips(7, 8, 8),
            vec![((2, 3), 1 << 52), ((0, 0), 0b10)]
        );
        assert!(explicit.cache_flips(8, 8, 8).is_empty());
        assert!(FaultPlan::none().cache_flips(7, 8, 8).is_empty());
    }

    #[test]
    fn short_reads_never_hit_writes() {
        let plan = FaultPlan::builder(3).disk_short_read_rate(1.0).build();
        for i in 0..100u64 {
            assert_eq!(plan.disk_fault(DiskOp::Read, i, 1), Some(DiskFault::ShortRead));
            assert_eq!(plan.disk_fault(DiskOp::Write, i, 1), None);
        }
    }
}
