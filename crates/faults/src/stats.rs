//! Counters separating algorithmic traffic from recovery traffic.

/// Tallies of injected faults and the recovery work they triggered.
///
/// "Clean" counts are what the algorithm would have communicated on a
/// perfect machine; everything else is protocol overhead.  Consumers
/// (the SPMD transport, the faulty I/O backend) fill one of these per
/// rank or per backend and merge with [`merge`](Self::merge).
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct FaultStats {
    /// Message attempts dropped by the plan.
    pub drops: u64,
    /// Messages delivered twice.
    pub duplicates: u64,
    /// Attempts that arrived corrupted and were discarded.
    pub corruptions: u64,
    /// Messages that arrived late.
    pub delays: u64,
    /// Retransmissions performed (excludes the first attempt).
    pub retransmits: u64,
    /// Duplicate or corrupt arrivals the receiver discarded.
    pub discarded: u64,
    /// Acknowledgements accounted.
    pub acks: u64,
    /// Transient disk errors observed.
    pub disk_transients: u64,
    /// Short reads observed.
    pub disk_short_reads: u64,
    /// Disk operations retried (excludes the first attempt).
    pub disk_retries: u64,
}

impl FaultStats {
    /// Fresh, all-zero counters.
    pub fn new() -> Self {
        Self::default()
    }

    /// Accumulate `other` into `self`.
    pub fn merge(&mut self, other: &FaultStats) {
        self.drops += other.drops;
        self.duplicates += other.duplicates;
        self.corruptions += other.corruptions;
        self.delays += other.delays;
        self.retransmits += other.retransmits;
        self.discarded += other.discarded;
        self.acks += other.acks;
        self.disk_transients += other.disk_transients;
        self.disk_short_reads += other.disk_short_reads;
        self.disk_retries += other.disk_retries;
    }

    /// Total injected message-level faults.
    pub fn message_faults(&self) -> u64 {
        self.drops + self.duplicates + self.corruptions + self.delays
    }

    /// Total injected disk-level faults.
    pub fn disk_faults(&self) -> u64 {
        self.disk_transients + self.disk_short_reads
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn merge_adds_fieldwise() {
        let mut a = FaultStats {
            drops: 1,
            retransmits: 2,
            acks: 3,
            ..Default::default()
        };
        let b = FaultStats {
            drops: 10,
            disk_retries: 5,
            ..Default::default()
        };
        a.merge(&b);
        assert_eq!(a.drops, 11);
        assert_eq!(a.retransmits, 2);
        assert_eq!(a.disk_retries, 5);
        assert_eq!(a.message_faults(), 11);
        assert_eq!(a.disk_faults(), 0);
    }
}
