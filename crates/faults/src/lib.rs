#![warn(missing_docs)]
#![deny(clippy::unwrap_used)]
//! # cholcomm-faults
//!
//! Deterministic fault injection for the workspace's two "real machine"
//! substrates: the threaded SPMD simulator (`cholcomm-distsim`) and the
//! file-backed out-of-core path (`cholcomm-ooc`).
//!
//! The paper's analyses (Tables 1–2) count only *algorithmic* traffic:
//! every message arrives, every disk transfer succeeds.  A [`FaultPlan`]
//! breaks that assumption on purpose — messages are dropped, duplicated,
//! delayed, or corrupted; file reads and writes fail transiently or come
//! up short; the process dies at a chosen I/O operation — so the
//! recovery machinery (ack/retransmit in the simulator, retry and
//! checkpoint/restart out of core) can be exercised and its *overhead
//! factor* over the clean counts measured.
//!
//! Every decision is a pure function of the plan's seed and the fault
//! site's stable coordinates (link and per-link sequence number for
//! messages, global operation index for disk I/O, panel step and tile
//! coordinates for silent bit flips).  Concurrent ranks
//! therefore observe the *same* fault schedule on every run, regardless
//! of thread interleaving — which is what makes "bit-identical factor
//! under any plan" a testable property rather than a hope.
//!
//! Liveness is guaranteed by construction: a message or disk operation
//! is never faulted more than [`FaultPlanBuilder::max_fault_attempts`]
//! times, so bounded retry always succeeds eventually.

mod plan;
mod simdisk;
mod stats;
mod store;

pub use plan::{
    BitFlip, CacheFlip, CrashPoint, DiskFault, DiskLatency, DiskOp, FaultPlan, FaultPlanBuilder,
    JobFault, MessageFault, RankKill,
};
pub use simdisk::{
    crash_sites_exhaustive, crash_sites_sampled, crash_state, shrink_site, CrashSite, SimDisk,
    SimOp, SimState, DEFAULT_SECTOR, EXHAUSTIVE_PENDING_CAP,
};
pub use stats::FaultStats;
pub use store::{FsStore, SimStore, Store};

/// One step of SplitMix64: the workspace's stable, dependency-free mixer.
#[inline]
pub(crate) fn splitmix64(state: &mut u64) -> u64 {
    *state = state.wrapping_add(0x9E3779B97F4A7C15);
    let mut z = *state;
    z = (z ^ (z >> 30)).wrapping_mul(0xBF58476D1CE4E5B9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94D049BB133111EB);
    z ^ (z >> 31)
}

/// Hash an arbitrary list of coordinate words into one uniform `u64`.
#[inline]
pub(crate) fn coord_hash(seed: u64, words: &[u64]) -> u64 {
    let mut state = seed ^ 0xA076_1D64_78BD_642F;
    let mut out = splitmix64(&mut state);
    for &w in words {
        state ^= w;
        out ^= splitmix64(&mut state).rotate_left(17);
    }
    // Final avalanche so nearby coordinate vectors (small src/dst/seq
    // integers) land far apart in [0, 2^64).
    splitmix64(&mut out)
}

/// Map a hash to a uniform draw in `[0, 1)`.
#[inline]
pub(crate) fn unit(h: u64) -> f64 {
    (h >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
}
