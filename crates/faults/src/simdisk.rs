//! A deterministic simulated block device with a volatile write-back
//! buffer — the storage half of the crash-consistency engine.
//!
//! [`SimDisk`] models the part of a real disk stack that checkpoint code
//! has to survive: mutating operations land in a *volatile* buffer and
//! become durable only at an explicit [`barrier`](SimDisk::barrier)
//! (fsync).  A power cut discards everything not yet flushed, and the
//! un-barriered window is where the adversary lives — any *subset* of
//! the buffered operations may have reached the platter (applied in
//! program order, which subsumes reordering of independent writes), and
//! a data-carrying write may additionally be **torn** at sector
//! granularity, leaving only a prefix of its sectors durable.
//!
//! Every mutating operation is recorded in an *op schedule*, so crash
//! exploration is record-once/replay-many (the durability analogue of
//! the trace/replay simulation engine): run the workload once against
//! the live disk, then materialize the durable state at every
//! [`CrashSite`] with [`crash_state`] — a pure function of the schedule
//! — and re-drive recovery from it.  [`crash_sites_exhaustive`]
//! enumerates every crash prefix times every adversarial choice (small
//! runs), [`crash_sites_sampled`] draws seeded samples (large runs), and
//! [`shrink_site`] greedily minimizes a failing site to the smallest
//! fault plan that still breaks the protocol under test.

use crate::coord_hash;
use std::collections::BTreeMap;

/// Default sector size (bytes) for torn-write granularity.  Small on
/// purpose: test matrices are small, and tearing must be able to split
/// their files into many pieces.
pub const DEFAULT_SECTOR: usize = 64;

/// Exhaustive exploration refuses un-barriered windows larger than this
/// (2^cap subsets per crash point).  A sane commit protocol keeps its
/// windows far smaller; hitting the cap usually means a missing barrier.
pub const EXHAUSTIVE_PENDING_CAP: usize = 16;

/// One recorded mutating operation against the simulated disk.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum SimOp {
    /// Create (or truncate) `name` with exactly `bytes` as content.
    WriteFile {
        /// File name.
        name: String,
        /// Full new content.
        bytes: Vec<u8>,
    },
    /// Write `bytes` at `offset` into `name` (zero-fill any gap).
    WriteAt {
        /// File name.
        name: String,
        /// Byte offset of the write.
        offset: u64,
        /// Bytes written.
        bytes: Vec<u8>,
    },
    /// Append `bytes` to `name` (creating it if missing).
    Append {
        /// File name.
        name: String,
        /// Bytes appended.
        bytes: Vec<u8>,
    },
    /// Rename `from` to `to` (atomic as a metadata operation: it either
    /// survives a crash entirely or not at all).
    Rename {
        /// Source name.
        from: String,
        /// Destination name.
        to: String,
    },
    /// Remove `name` (atomic metadata operation).
    Remove {
        /// File name.
        name: String,
    },
    /// Flush: everything buffered before this point is durable.
    Barrier,
}

impl SimOp {
    /// Bytes of payload this operation carries (0 for metadata ops).
    pub fn payload_len(&self) -> usize {
        match self {
            SimOp::WriteFile { bytes, .. }
            | SimOp::WriteAt { bytes, .. }
            | SimOp::Append { bytes, .. } => bytes.len(),
            _ => 0,
        }
    }

    /// Number of whole-or-partial sectors the payload spans.
    pub fn sectors(&self, sector: usize) -> usize {
        self.payload_len().div_ceil(sector.max(1))
    }
}

/// A complete durable filesystem image (file name to content).
pub type SimState = BTreeMap<String, Vec<u8>>;

/// Apply one operation to a state image.  `torn_keep` limits a
/// data-carrying op to its first `k` sectors (a torn write); metadata
/// ops ignore it.
fn apply_op(state: &mut SimState, op: &SimOp, sector: usize, torn_keep: Option<usize>) {
    let clip = |bytes: &[u8]| -> Vec<u8> {
        match torn_keep {
            Some(k) => bytes[..(k * sector.max(1)).min(bytes.len())].to_vec(),
            None => bytes.to_vec(),
        }
    };
    match op {
        SimOp::WriteFile { name, bytes } => {
            state.insert(name.clone(), clip(bytes));
        }
        SimOp::WriteAt {
            name,
            offset,
            bytes,
        } => {
            let file = state.entry(name.clone()).or_default();
            let bytes = clip(bytes);
            let off = *offset as usize;
            if file.len() < off + bytes.len() {
                file.resize(off + bytes.len(), 0);
            }
            file[off..off + bytes.len()].copy_from_slice(&bytes);
        }
        SimOp::Append { name, bytes } => {
            state
                .entry(name.clone())
                .or_default()
                .extend_from_slice(&clip(bytes));
        }
        SimOp::Rename { from, to } => {
            if let Some(content) = state.remove(from) {
                state.insert(to.clone(), content);
            }
        }
        SimOp::Remove { name } => {
            state.remove(name);
        }
        SimOp::Barrier => {}
    }
}

/// The simulated device: a live (page-cache) view, a durable image, and
/// the recorded op schedule.  Reads observe the live view — buffered
/// writes are visible to the process that issued them, exactly as a real
/// page cache behaves; only a power cut reveals the difference.
#[derive(Debug)]
pub struct SimDisk {
    sector: usize,
    view: SimState,
    durable: SimState,
    /// Schedule indices of operations buffered since the last barrier.
    pending: Vec<usize>,
    schedule: Vec<SimOp>,
}

impl SimDisk {
    /// A fresh, empty disk with the given sector size.
    pub fn new(sector: usize) -> SimDisk {
        assert!(sector >= 1);
        SimDisk {
            sector,
            view: SimState::new(),
            durable: SimState::new(),
            pending: Vec::new(),
            schedule: Vec::new(),
        }
    }

    /// A disk powered back on over a durable image (e.g. one produced by
    /// [`crash_state`]).  The schedule starts empty: recovery runs are
    /// themselves recordable.
    pub fn from_state(state: SimState, sector: usize) -> SimDisk {
        assert!(sector >= 1);
        SimDisk {
            sector,
            view: state.clone(),
            durable: state,
            pending: Vec::new(),
            schedule: Vec::new(),
        }
    }

    /// Sector size in bytes.
    pub fn sector(&self) -> usize {
        self.sector
    }

    /// The recorded mutating-op schedule so far (barriers included).
    pub fn schedule(&self) -> &[SimOp] {
        &self.schedule
    }

    /// Number of buffered (un-barriered) operations.
    pub fn pending_ops(&self) -> usize {
        self.pending.len()
    }

    /// The current durable image (what a power cut right now preserves).
    pub fn durable_state(&self) -> SimState {
        self.durable.clone()
    }

    fn record(&mut self, op: SimOp) {
        apply_op(&mut self.view, &op, self.sector, None);
        let idx = self.schedule.len();
        self.schedule.push(op);
        self.pending.push(idx);
    }

    // --- reads (live view) ---

    /// Whole-file read.
    pub fn read(&self, name: &str) -> std::io::Result<Vec<u8>> {
        self.view.get(name).cloned().ok_or_else(|| {
            std::io::Error::new(std::io::ErrorKind::NotFound, format!("simdisk: no file {name}"))
        })
    }

    /// Read exactly `len` bytes at `offset`.
    pub fn read_at(&self, name: &str, offset: u64, len: usize) -> std::io::Result<Vec<u8>> {
        let file = self.view.get(name).ok_or_else(|| {
            std::io::Error::new(std::io::ErrorKind::NotFound, format!("simdisk: no file {name}"))
        })?;
        let off = offset as usize;
        if off + len > file.len() {
            return Err(std::io::Error::new(
                std::io::ErrorKind::UnexpectedEof,
                format!(
                    "simdisk: read {len}@{off} past end of {name} ({} bytes)",
                    file.len()
                ),
            ));
        }
        Ok(file[off..off + len].to_vec())
    }

    /// Does `name` exist (in the live view)?
    pub fn exists(&self, name: &str) -> bool {
        self.view.contains_key(name)
    }

    /// Length of `name`, if it exists.
    pub fn len_of(&self, name: &str) -> Option<u64> {
        self.view.get(name).map(|f| f.len() as u64)
    }

    /// All live file names starting with `prefix`, sorted.
    pub fn list_prefix(&self, prefix: &str) -> Vec<String> {
        self.view
            .keys()
            .filter(|k| k.starts_with(prefix))
            .cloned()
            .collect()
    }

    // --- recorded mutations ---

    /// Create-or-truncate `name` with `bytes`.
    pub fn write_file(&mut self, name: &str, bytes: &[u8]) {
        self.record(SimOp::WriteFile {
            name: name.to_string(),
            bytes: bytes.to_vec(),
        });
    }

    /// Write `bytes` at `offset` into `name`.
    pub fn write_at(&mut self, name: &str, offset: u64, bytes: &[u8]) {
        self.record(SimOp::WriteAt {
            name: name.to_string(),
            offset,
            bytes: bytes.to_vec(),
        });
    }

    /// Append `bytes` to `name`.
    pub fn append(&mut self, name: &str, bytes: &[u8]) {
        self.record(SimOp::Append {
            name: name.to_string(),
            bytes: bytes.to_vec(),
        });
    }

    /// Rename `from` to `to`.
    pub fn rename(&mut self, from: &str, to: &str) {
        self.record(SimOp::Rename {
            from: from.to_string(),
            to: to.to_string(),
        });
    }

    /// Remove `name` (no error if missing, matching checkpoint sweeps).
    pub fn remove(&mut self, name: &str) {
        self.record(SimOp::Remove {
            name: name.to_string(),
        });
    }

    /// Flush the write-back buffer: everything issued so far is durable.
    pub fn barrier(&mut self) {
        self.schedule.push(SimOp::Barrier);
        self.durable = self.view.clone();
        self.pending.clear();
    }

    /// Power cut *now*: the live view collapses to the durable image and
    /// all buffered operations are lost.  (For adversarial subsets and
    /// torn writes, materialize a [`CrashSite`] with [`crash_state`]
    /// instead.)
    pub fn power_cut(&mut self) {
        self.view = self.durable.clone();
        self.pending.clear();
    }
}

/// One crash scenario against a recorded schedule: the process dies
/// just before issuing op `crash_index`; of the operations still in the
/// volatile buffer at that instant, those in `dropped` never reached the
/// platter, and each `(op, keep)` in `torn` reached it torn — only its
/// first `keep` sectors are durable.
///
/// The `Display` form is the reproducible fault plan the explorer prints
/// for a failing schedule.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct CrashSite {
    /// Ops `0..crash_index` were issued; the crash lands before the next.
    pub crash_index: usize,
    /// Buffered op indices that are entirely lost.
    pub dropped: Vec<usize>,
    /// Buffered op indices torn to a sector-prefix: `(index, sectors kept)`.
    pub torn: Vec<(usize, usize)>,
}

impl std::fmt::Display for CrashSite {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(
            f,
            "crash@{} drop={:?} torn={:?}",
            self.crash_index, self.dropped, self.torn
        )
    }
}

impl CrashSite {
    /// A clean crash at `crash_index`: every buffered op survives whole.
    pub fn clean(crash_index: usize) -> CrashSite {
        CrashSite {
            crash_index,
            dropped: Vec::new(),
            torn: Vec::new(),
        }
    }

    /// Number of adversarial perturbations (drops plus tears).
    pub fn perturbations(&self) -> usize {
        self.dropped.len() + self.torn.len()
    }
}

/// Materialize the durable filesystem image at `site` — a pure function
/// of the recorded schedule, so every crash state is replayable.
///
/// Semantics: walking ops `0..crash_index`, a [`SimOp::Barrier`] makes
/// everything before it durable in program order.  Of the final
/// un-barriered window, ops in `site.dropped` are discarded and ops in
/// `site.torn` keep only a sector prefix; the survivors apply in program
/// order.  Applying an arbitrary *subset* in program order is exactly as
/// expressive as applying a reordering: any prefix-closed reordering of
/// independent writes produces a state some subset also produces.
pub fn crash_state(schedule: &[SimOp], site: &CrashSite, sector: usize) -> SimState {
    let end = site.crash_index.min(schedule.len());
    let mut durable = SimState::new();
    let mut window: Vec<usize> = Vec::new();
    for (i, op) in schedule.iter().take(end).enumerate() {
        if matches!(op, SimOp::Barrier) {
            for &j in &window {
                apply_op(&mut durable, &schedule[j], sector, None);
            }
            window.clear();
        } else {
            window.push(i);
        }
    }
    for &j in &window {
        if site.dropped.contains(&j) {
            continue;
        }
        let torn_keep = site.torn.iter().find(|&&(i, _)| i == j).map(|&(_, k)| k);
        apply_op(&mut durable, &schedule[j], sector, torn_keep);
    }
    durable
}

/// Indices of the un-barriered (buffered) ops at the instant just before
/// op `crash_index` is issued.
fn window_before(schedule: &[SimOp], crash_index: usize) -> Vec<usize> {
    let end = crash_index.min(schedule.len());
    let mut window = Vec::new();
    for (i, op) in schedule.iter().take(end).enumerate() {
        if matches!(op, SimOp::Barrier) {
            window.clear();
        } else {
            window.push(i);
        }
    }
    window
}

/// Every crash prefix of `schedule` times every adversarial choice:
/// all `2^w` survive/drop subsets of each crash point's un-barriered
/// window, plus every strict sector-prefix tear of each buffered
/// data-carrying op (with the rest of the window intact — a tear
/// combined with drops of *other* ops is dominated by one of the subset
/// states for detection purposes, and the combination space would be
/// exponential twice over).
///
/// # Panics
/// If any un-barriered window exceeds [`EXHAUSTIVE_PENDING_CAP`]: that
/// many buffered ops means the protocol under test barely barriers, and
/// exhaustive enumeration would be astronomically large.
pub fn crash_sites_exhaustive(schedule: &[SimOp], sector: usize) -> Vec<CrashSite> {
    let mut sites = Vec::new();
    for k in 0..=schedule.len() {
        let window = window_before(schedule, k);
        assert!(
            window.len() <= EXHAUSTIVE_PENDING_CAP,
            "un-barriered window of {} ops at crash point {k} exceeds the exhaustive cap {} — \
             is the protocol missing barriers?",
            window.len(),
            EXHAUSTIVE_PENDING_CAP
        );
        for mask in 0u32..(1u32 << window.len()) {
            let dropped: Vec<usize> = window
                .iter()
                .enumerate()
                .filter(|&(bit, _)| mask & (1 << bit) != 0)
                .map(|(_, &idx)| idx)
                .collect();
            sites.push(CrashSite {
                crash_index: k,
                dropped,
                torn: Vec::new(),
            });
        }
        for &w in &window {
            let sectors = schedule[w].sectors(sector);
            for keep in 1..sectors {
                sites.push(CrashSite {
                    crash_index: k,
                    dropped: Vec::new(),
                    torn: vec![(w, keep)],
                });
            }
        }
    }
    sites
}

/// `count` seeded crash sites: crash index, survive/drop subset, and an
/// optional tear, all pure functions of `(seed, sample index)` — the
/// large-`n` sampling mode.  Printing a failing sample's `CrashSite`
/// (or just `(seed, index)`) reproduces it exactly.
pub fn crash_sites_sampled(
    schedule: &[SimOp],
    sector: usize,
    seed: u64,
    count: usize,
) -> Vec<CrashSite> {
    let mut sites = Vec::with_capacity(count);
    for s in 0..count {
        let s64 = s as u64;
        let k = (coord_hash(seed, &[s64, 0]) % (schedule.len() as u64 + 1)) as usize;
        let window = window_before(schedule, k);
        let mut dropped = Vec::new();
        if !window.is_empty() {
            let bits = coord_hash(seed, &[s64, 1]);
            for (bit, &idx) in window.iter().enumerate() {
                if bits & (1 << (bit % 64)) != 0 {
                    dropped.push(idx);
                }
            }
        }
        let mut torn = Vec::new();
        if !window.is_empty() && coord_hash(seed, &[s64, 2]).is_multiple_of(2) {
            let w = window[(coord_hash(seed, &[s64, 3]) % window.len() as u64) as usize];
            let sectors = schedule[w].sectors(sector);
            if sectors > 1 {
                let keep = 1 + (coord_hash(seed, &[s64, 4]) % (sectors as u64 - 1)) as usize;
                dropped.retain(|&d| d != w);
                torn.push((w, keep));
            }
        }
        sites.push(CrashSite {
            crash_index: k,
            dropped,
            torn,
        });
    }
    sites
}

/// Greedily shrink a failing crash site to a minimal one: remove drops,
/// un-tear writes, and pull the crash point earlier, keeping each step
/// only while `fails` still reports the failure.  The result is
/// 1-minimal — removing any single remaining perturbation makes the
/// failure disappear — and its `Display` form is the reproducible
/// minimal fault plan.
pub fn shrink_site(site: &CrashSite, mut fails: impl FnMut(&CrashSite) -> bool) -> CrashSite {
    let mut cur = site.clone();
    loop {
        let mut progressed = false;
        for i in (0..cur.dropped.len()).rev() {
            let mut cand = cur.clone();
            cand.dropped.remove(i);
            if fails(&cand) {
                cur = cand;
                progressed = true;
            }
        }
        for i in (0..cur.torn.len()).rev() {
            let mut cand = cur.clone();
            cand.torn.remove(i);
            if fails(&cand) {
                cur = cand;
                progressed = true;
            }
        }
        // The crash point cannot move below the highest op it perturbs.
        let floor = cur
            .dropped
            .iter()
            .copied()
            .chain(cur.torn.iter().map(|&(i, _)| i))
            .max()
            .map_or(0, |m| m + 1);
        while cur.crash_index > floor {
            let mut cand = cur.clone();
            cand.crash_index -= 1;
            if fails(&cand) {
                cur = cand;
                progressed = true;
            } else {
                break;
            }
        }
        if !progressed {
            return cur;
        }
    }
}

#[cfg(test)]
#[allow(clippy::unwrap_used)]
mod tests {
    use super::*;

    #[test]
    fn reads_observe_buffered_writes_but_power_cut_discards_them() {
        let mut d = SimDisk::new(4);
        d.write_file("a", b"hello");
        assert_eq!(d.read("a").unwrap(), b"hello");
        d.power_cut();
        assert!(!d.exists("a"), "un-barriered write dies with the power");

        d.write_file("a", b"hello");
        d.barrier();
        d.append("a", b" world");
        assert_eq!(d.read("a").unwrap(), b"hello world");
        d.power_cut();
        assert_eq!(d.read("a").unwrap(), b"hello", "barriered prefix survives");
    }

    #[test]
    fn write_at_zero_fills_and_roundtrips() {
        let mut d = SimDisk::new(4);
        d.write_at("f", 8, b"xy");
        assert_eq!(d.read("f").unwrap(), vec![0, 0, 0, 0, 0, 0, 0, 0, b'x', b'y']);
        assert_eq!(d.read_at("f", 8, 2).unwrap(), b"xy");
        assert!(d.read_at("f", 9, 2).is_err(), "read past end");
    }

    #[test]
    fn crash_state_applies_subsets_in_program_order() {
        let mut d = SimDisk::new(4);
        d.write_file("f", b"AAAA"); // op 0
        d.barrier(); // op 1
        d.write_file("f", b"BBBB"); // op 2
        d.write_file("f", b"CCCC"); // op 3
        let sched = d.schedule().to_vec();

        // Crash before op 2: only the barriered content.
        let s = crash_state(&sched, &CrashSite::clean(2), 4);
        assert_eq!(s["f"], b"AAAA");
        // All buffered ops survive: last writer wins.
        let s = crash_state(&sched, &CrashSite::clean(4), 4);
        assert_eq!(s["f"], b"CCCC");
        // Drop the later write: the earlier buffered one shows through —
        // this is exactly "reordered past a missing barrier".
        let s = crash_state(
            &sched,
            &CrashSite {
                crash_index: 4,
                dropped: vec![3],
                torn: vec![],
            },
            4,
        );
        assert_eq!(s["f"], b"BBBB");
    }

    #[test]
    fn torn_writes_keep_a_sector_prefix() {
        let mut d = SimDisk::new(2);
        d.write_file("f", b"abcdef"); // 3 sectors of 2 bytes
        let sched = d.schedule().to_vec();
        let s = crash_state(
            &sched,
            &CrashSite {
                crash_index: 1,
                dropped: vec![],
                torn: vec![(0, 2)],
            },
            2,
        );
        assert_eq!(s["f"], b"abcd", "two of three sectors survive");
    }

    #[test]
    fn metadata_ops_are_atomic_but_individually_losable() {
        let mut d = SimDisk::new(4);
        d.write_file("a", b"data"); // 0
        d.barrier(); // 1
        d.rename("a", "b"); // 2
        let sched = d.schedule().to_vec();
        let s = crash_state(&sched, &CrashSite::clean(3), 4);
        assert!(s.contains_key("b") && !s.contains_key("a"));
        let s = crash_state(
            &sched,
            &CrashSite {
                crash_index: 3,
                dropped: vec![2],
                torn: vec![],
            },
            4,
        );
        assert!(s.contains_key("a") && !s.contains_key("b"));
    }

    #[test]
    fn exhaustive_sites_cover_every_prefix_and_subset() {
        let mut d = SimDisk::new(4);
        d.write_file("a", b"12345678"); // 2 sectors
        d.write_file("b", b"1234"); // 1 sector
        d.barrier();
        d.write_file("c", b"1234");
        let sched = d.schedule().to_vec();
        let sites = crash_sites_exhaustive(&sched, 4);
        // Crash points 0..=4; window sizes 0,1,2,0,1 -> subsets 1+2+4+1+2;
        // tears: op 0 has 2 sectors -> 1 tear site, visible at k=1 and k=2.
        let subsets = 1 + 2 + 4 + 1 + 2;
        let tears = 2;
        assert_eq!(sites.len(), subsets + tears);
        // Every materialization is well-formed (no panics, pure).
        for site in &sites {
            let a = crash_state(&sched, site, 4);
            let b = crash_state(&sched, site, 4);
            assert_eq!(a, b);
        }
    }

    #[test]
    fn sampled_sites_are_deterministic_per_seed() {
        let mut d = SimDisk::new(4);
        for i in 0..10 {
            d.write_file(&format!("f{i}"), b"0123456789abcdef");
            if i % 3 == 0 {
                d.barrier();
            }
        }
        let sched = d.schedule().to_vec();
        let a = crash_sites_sampled(&sched, 4, 7, 50);
        let b = crash_sites_sampled(&sched, 4, 7, 50);
        assert_eq!(a, b);
        let c = crash_sites_sampled(&sched, 4, 8, 50);
        assert_ne!(a, c, "different seed, different sites");
    }

    #[test]
    fn shrinker_reaches_a_one_minimal_site() {
        // Failure model: the site fails iff op 5 is dropped (the "data
        // write the broken protocol forgot to barrier").
        let noisy = CrashSite {
            crash_index: 9,
            dropped: vec![3, 5, 7],
            torn: vec![(6, 1)],
        };
        let fails = |s: &CrashSite| s.dropped.contains(&5);
        let min = shrink_site(&noisy, fails);
        assert_eq!(min.dropped, vec![5]);
        assert!(min.torn.is_empty());
        assert_eq!(min.crash_index, 6, "crash point pulled to just past op 5");
        assert_eq!(min.perturbations(), 1);
    }
}
