//! Error types for matrix construction and factorization.

use std::fmt;

/// Errors surfaced by matrix operations and factorizations.
#[derive(Debug, Clone, PartialEq)]
pub enum MatrixError {
    /// An operation requiring a square matrix received an `rows x cols` one.
    NotSquare {
        /// Number of rows of the offending matrix.
        rows: usize,
        /// Number of columns of the offending matrix.
        cols: usize,
    },
    /// Operand shapes are incompatible for the requested operation.
    DimensionMismatch {
        /// Human-readable description of the violated constraint.
        context: &'static str,
    },
    /// The requested shape cannot be allocated: `rows * cols` (or its
    /// byte size) overflows `usize`/`isize`.  Surfaced as a typed error
    /// so admission layers (the serve front door) can shed adversarial
    /// job sizes instead of letting a capacity panic kill a shard.
    TooLarge {
        /// Requested row count.
        rows: usize,
        /// Requested column count.
        cols: usize,
    },
    /// A Cholesky factorization encountered a non-positive pivot, so the
    /// input was not (numerically) symmetric positive definite.  Carries
    /// the offending pivot value so callers can pick a diagonal shift
    /// (e.g. `shift > -value`) and retry.
    NotSpd {
        /// Index of the failing pivot (0-based, in the coordinates of the
        /// full matrix the caller handed in).
        pivot: usize,
        /// The non-positive pivot value (`A(j,j) - sum L(j,k)^2` at the
        /// failing step).
        value: f64,
    },
}

impl fmt::Display for MatrixError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            MatrixError::NotSquare { rows, cols } => {
                write!(f, "matrix must be square, got {rows}x{cols}")
            }
            MatrixError::DimensionMismatch { context } => {
                write!(f, "dimension mismatch: {context}")
            }
            MatrixError::TooLarge { rows, cols } => {
                write!(f, "matrix shape {rows}x{cols} overflows addressable memory")
            }
            MatrixError::NotSpd { pivot, value } => {
                write!(
                    f,
                    "matrix is not positive definite (pivot {pivot} = {value} <= 0)"
                )
            }
        }
    }
}

impl std::error::Error for MatrixError {}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn display_messages() {
        assert_eq!(
            MatrixError::NotSquare { rows: 2, cols: 3 }.to_string(),
            "matrix must be square, got 2x3"
        );
        assert_eq!(
            MatrixError::NotSpd {
                pivot: 4,
                value: -0.5
            }
            .to_string(),
            "matrix is not positive definite (pivot 4 = -0.5 <= 0)"
        );
        assert!(MatrixError::DimensionMismatch { context: "gemm" }
            .to_string()
            .contains("gemm"));
        assert!(MatrixError::TooLarge { rows: usize::MAX, cols: 2 }
            .to_string()
            .contains("overflows"));
    }

    #[test]
    fn is_std_error() {
        fn takes_err<E: std::error::Error>(_e: E) {}
        takes_err(MatrixError::NotSquare { rows: 1, cols: 2 });
    }
}
