//! Symmetric positive definite workload generators.
//!
//! The paper's algorithms assume an SPD input ("no pivoting is performed"),
//! so every experiment in the workspace draws from these generators.  They
//! cover random well-conditioned Gram matrices, tunable-conditioning
//! variants, classic structured SPD families, and the RBF kernel matrices
//! used by the Gaussian-process example application.

use crate::dense::Matrix;
use rand::rngs::StdRng;
use rand::{Rng, RngExt, SeedableRng};

/// Deterministic RNG for reproducible workloads and tests.
pub fn test_rng(seed: u64) -> StdRng {
    StdRng::seed_from_u64(seed)
}

/// Random well-conditioned SPD matrix: `A = G * G^T + n * I` with `G`
/// uniform in `[-1, 1]`.  The diagonal shift keeps the condition number
/// modest so that all algorithm variants agree to tight tolerances.
pub fn random_spd(n: usize, rng: &mut impl Rng) -> Matrix<f64> {
    let g = Matrix::from_fn(n, n, |_, _| rng.random_range(-1.0..1.0));
    let mut a = Matrix::zeros(n, n);
    for j in 0..n {
        for i in j..n {
            let mut s = 0.0;
            for k in 0..n {
                s += g[(i, k)] * g[(j, k)];
            }
            a[(i, j)] = s;
        }
        a[(j, j)] += n as f64;
    }
    a.mirror_lower();
    a
}

/// SPD matrix with approximately the requested 2-norm condition number,
/// built as `Q D Q^T` with log-spaced eigenvalues and a random orthogonal
/// `Q` (from Gram–Schmidt on a random matrix).
pub fn random_spd_with_cond(n: usize, cond: f64, rng: &mut impl Rng) -> Matrix<f64> {
    assert!(cond >= 1.0, "condition number must be >= 1");
    let q = random_orthogonal(n, rng);
    // Eigenvalues log-spaced in [1/cond, 1].
    let eig: Vec<f64> = (0..n)
        .map(|i| {
            if n == 1 {
                1.0
            } else {
                (-(i as f64) / (n as f64 - 1.0) * cond.ln()).exp()
            }
        })
        .collect();
    Matrix::from_fn(n, n, |i, j| {
        let mut s = 0.0;
        for k in 0..n {
            s += q[(i, k)] * eig[k] * q[(j, k)];
        }
        s
    })
}

/// Random orthogonal matrix via modified Gram–Schmidt on a random matrix.
pub fn random_orthogonal(n: usize, rng: &mut impl Rng) -> Matrix<f64> {
    let mut q = Matrix::from_fn(n, n, |_, _| rng.random_range(-1.0..1.0));
    for j in 0..n {
        for k in 0..j {
            let mut dot = 0.0;
            for i in 0..n {
                dot += q[(i, j)] * q[(i, k)];
            }
            for i in 0..n {
                let v = q[(i, k)];
                q[(i, j)] -= dot * v;
            }
        }
        let mut nrm = 0.0f64;
        for i in 0..n {
            nrm += q[(i, j)] * q[(i, j)];
        }
        let nrm = nrm.sqrt().max(1e-300);
        for i in 0..n {
            q[(i, j)] /= nrm;
        }
    }
    q
}

/// The classic SPD second-difference (discrete Laplacian) matrix:
/// tridiagonal with 2 on the diagonal and -1 off it.
pub fn laplacian_1d(n: usize) -> Matrix<f64> {
    Matrix::from_fn(n, n, |i, j| {
        if i == j {
            2.0
        } else if i.abs_diff(j) == 1 {
            -1.0
        } else {
            0.0
        }
    })
}

/// The Lehmer matrix `A[i,j] = min(i+1, j+1) / max(i+1, j+1)` — a classic
/// dense SPD test matrix with slowly decaying spectrum.
pub fn lehmer(n: usize) -> Matrix<f64> {
    Matrix::from_fn(n, n, |i, j| {
        let (a, b) = ((i + 1) as f64, (j + 1) as f64);
        a.min(b) / a.max(b)
    })
}

/// The "min" matrix `A[i,j] = min(i, j) + 1`, SPD with Cholesky factor
/// equal to the all-ones lower triangle — handy for exact-value tests.
pub fn min_matrix(n: usize) -> Matrix<f64> {
    Matrix::from_fn(n, n, |i, j| (i.min(j) + 1) as f64)
}

/// The Hilbert matrix `A[i,j] = 1/(i+j+1)` — SPD but catastrophically
/// ill-conditioned; used by the conditioning stress tests.
pub fn hilbert(n: usize) -> Matrix<f64> {
    Matrix::from_fn(n, n, |i, j| 1.0 / (i + j + 1) as f64)
}

/// Random banded SPD matrix with the given (half-)bandwidth: a banded
/// Gram matrix `G G^T + n I` where `G` is banded — the structure of
/// discretized 1-D operators.
pub fn random_banded_spd(n: usize, bandwidth: usize, rng: &mut impl Rng) -> Matrix<f64> {
    let g = Matrix::from_fn(n, n, |i, j| {
        if i.abs_diff(j) <= bandwidth {
            rng.random_range(-1.0..1.0)
        } else {
            0.0
        }
    });
    let mut a = Matrix::zeros(n, n);
    for j in 0..n {
        for i in j..n {
            if i.abs_diff(j) <= 2 * bandwidth {
                let mut s = 0.0;
                for k in i.saturating_sub(bandwidth)..(j + bandwidth + 1).min(n) {
                    s += g[(i, k)] * g[(j, k)];
                }
                a[(i, j)] = s;
            }
        }
        a[(j, j)] += n as f64;
    }
    a.mirror_lower();
    a
}

/// Squared-exponential (RBF) kernel Gram matrix over the given 1-D sample
/// points, plus `noise^2` on the diagonal.  This is the SPD matrix at the
/// heart of Gaussian-process regression — the motivating dense-Cholesky
/// workload of the example applications.
pub fn rbf_kernel(points: &[f64], lengthscale: f64, noise: f64) -> Matrix<f64> {
    let n = points.len();
    Matrix::from_fn(n, n, |i, j| {
        let d = (points[i] - points[j]) / lengthscale;
        let k = (-0.5 * d * d).exp();
        if i == j {
            k + noise * noise
        } else {
            k
        }
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::kernels::potf2;
    use crate::norms::max_abs_diff;

    #[test]
    fn random_spd_is_symmetric_and_factors() {
        let mut rng = test_rng(1);
        let a = random_spd(24, &mut rng);
        assert!(a.is_symmetric());
        let mut f = a.clone();
        potf2(&mut f).expect("SPD");
    }

    #[test]
    fn conditioned_spd_factors_and_is_symmetric() {
        let mut rng = test_rng(2);
        let a = random_spd_with_cond(16, 1e6, &mut rng);
        for i in 0..16 {
            for j in 0..16 {
                assert!((a[(i, j)] - a[(j, i)]).abs() < 1e-12);
            }
        }
        let mut f = a.clone();
        // Symmetrize exactly before factoring (floating-point Q D Q^T is
        // symmetric only to rounding).
        for j in 0..16 {
            for i in j + 1..16 {
                let v = 0.5 * (f[(i, j)] + f[(j, i)]);
                f[(i, j)] = v;
                f[(j, i)] = v;
            }
        }
        potf2(&mut f).expect("SPD");
    }

    #[test]
    fn orthogonal_has_orthonormal_columns() {
        let mut rng = test_rng(3);
        let q = random_orthogonal(10, &mut rng);
        let qtq = crate::kernels::matmul(&q.transpose(), &q);
        let id = Matrix::<f64>::identity(10);
        assert!(max_abs_diff(&qtq, &id) < 1e-10);
    }

    #[test]
    fn laplacian_and_lehmer_factor() {
        let mut l1 = laplacian_1d(32);
        potf2(&mut l1).expect("laplacian SPD");
        let mut l2 = lehmer(32);
        potf2(&mut l2).expect("lehmer SPD");
    }

    #[test]
    fn min_matrix_has_ones_factor() {
        let mut a = min_matrix(8);
        potf2(&mut a).unwrap();
        for j in 0..8 {
            for i in j..8 {
                assert!((a[(i, j)] - 1.0).abs() < 1e-12, "L[{i},{j}] = {}", a[(i, j)]);
            }
        }
    }

    #[test]
    fn hilbert_small_orders_factor() {
        // Hilbert is SPD in exact arithmetic; in f64 it survives only
        // small orders — which is exactly what it is for.
        let mut h = hilbert(8);
        potf2(&mut h).expect("small Hilbert is numerically SPD");
        let mut h_big = hilbert(60);
        assert!(potf2(&mut h_big).is_err(), "n=60 Hilbert breaks f64");
    }

    #[test]
    fn banded_spd_is_banded_symmetric_and_factors() {
        let mut rng = test_rng(4);
        let a = random_banded_spd(32, 3, &mut rng);
        assert!(a.is_symmetric());
        assert_eq!(a[(0, 20)], 0.0, "outside the band");
        let mut f = a.clone();
        potf2(&mut f).expect("SPD");
        // Cholesky preserves the (lower) bandwidth.
        for j in 0..32 {
            for i in j..32 {
                if i - j > 6 {
                    assert_eq!(f[(i, j)], 0.0, "fill-in outside band at ({i},{j})");
                }
            }
        }
    }

    #[test]
    fn rbf_kernel_is_spd() {
        let pts: Vec<f64> = (0..40).map(|i| i as f64 * 0.1).collect();
        let mut k = rbf_kernel(&pts, 0.5, 1e-2);
        assert!(k.is_symmetric());
        potf2(&mut k).expect("kernel SPD");
    }
}
