//! Triangular solves and SPD linear-system solution through the Cholesky
//! factor — the downstream consumer of every factorization in this
//! workspace ("used for solving dense symmetric positive definite linear
//! systems", paper abstract).

use crate::dense::Matrix;
use crate::error::MatrixError;
use crate::kernels::potf2;
use crate::scalar::Scalar;

/// Forward substitution: solve `L y = b` with `L` the lower triangle of
/// `factor` (diagonal included).
pub fn forward_sub<S: Scalar>(factor: &Matrix<S>, b: &[S]) -> Vec<S> {
    let n = factor.rows();
    assert_eq!(b.len(), n, "rhs length");
    let mut y = vec![S::zero(); n];
    for i in 0..n {
        let mut v = b[i];
        for k in 0..i {
            v = v - factor[(i, k)] * y[k];
        }
        y[i] = v / factor[(i, i)];
    }
    y
}

/// Backward substitution: solve `L^T x = y` with `L` the lower triangle of
/// `factor`.
pub fn backward_sub<S: Scalar>(factor: &Matrix<S>, y: &[S]) -> Vec<S> {
    let n = factor.rows();
    assert_eq!(y.len(), n, "rhs length");
    let mut x = vec![S::zero(); n];
    for i in (0..n).rev() {
        let mut v = y[i];
        for k in (i + 1)..n {
            // (L^T)[i,k] = L[k,i]
            v = v - factor[(k, i)] * x[k];
        }
        x[i] = v / factor[(i, i)];
    }
    x
}

/// Solve `A x = b` given the in-place Cholesky `factor` of `A`
/// (two triangular solves).
pub fn solve_with_factor<S: Scalar>(factor: &Matrix<S>, b: &[S]) -> Vec<S> {
    let y = forward_sub(factor, b);
    backward_sub(factor, &y)
}

/// Factor-and-solve convenience: Cholesky-factor a copy of `a`, then solve
/// `A x = b`.
pub fn solve_spd(a: &Matrix<f64>, b: &[f64]) -> Result<Vec<f64>, MatrixError> {
    let mut f = a.clone();
    potf2(&mut f)?;
    Ok(solve_with_factor(&f, b))
}

/// Inverse of an SPD matrix through its Cholesky factor: column `j` of
/// `A^{-1}` solves `A x = e_j`.  (Quadratic solves on top of the cubic
/// factorization — the textbook route the example applications use.)
pub fn invert_spd(a: &Matrix<f64>) -> Result<Matrix<f64>, MatrixError> {
    let n = a.rows();
    let mut f = a.clone();
    potf2(&mut f)?;
    let mut inv = Matrix::zeros(n, n);
    let mut e = vec![0.0f64; n];
    for j in 0..n {
        e[j] = 1.0;
        let col = solve_with_factor(&f, &e);
        for i in 0..n {
            inv[(i, j)] = col[i];
        }
        e[j] = 0.0;
    }
    Ok(inv)
}

/// Log-determinant of an SPD matrix from its Cholesky factor:
/// `log det A = 2 * sum_i log L(i,i)`.
pub fn logdet_from_factor(factor: &Matrix<f64>) -> f64 {
    (0..factor.rows()).map(|i| factor[(i, i)].ln()).sum::<f64>() * 2.0
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::spd;

    #[test]
    fn solve_recovers_known_solution() {
        let mut rng = spd::test_rng(21);
        let a = spd::random_spd(15, &mut rng);
        let x_true: Vec<f64> = (0..15).map(|i| (i as f64) - 7.0).collect();
        // b = A x
        let b: Vec<f64> = (0..15)
            .map(|i| (0..15).map(|j| a[(i, j)] * x_true[j]).sum())
            .collect();
        let x = solve_spd(&a, &b).unwrap();
        for (xs, xt) in x.iter().zip(&x_true) {
            assert!((xs - xt).abs() < 1e-8, "{xs} vs {xt}");
        }
    }

    #[test]
    fn forward_backward_consistency() {
        let l = Matrix::from_rows(3, 3, &[2.0, 0.0, 0.0, 1.0, 3.0, 0.0, 0.5, -1.0, 4.0]);
        let b = vec![2.0, 7.0, 3.5];
        let y = forward_sub(&l, &b);
        // L y should equal b.
        for i in 0..3 {
            let mut v = 0.0f64;
            for k in 0..=i {
                v += l[(i, k)] * y[k];
            }
            assert!((v - b[i]).abs() < 1e-12);
        }
        let x = backward_sub(&l, &y);
        // L^T x should equal y.
        for i in 0..3 {
            let mut v = 0.0f64;
            for k in i..3 {
                v += l[(k, i)] * x[k];
            }
            assert!((v - y[i]).abs() < 1e-12);
        }
    }

    #[test]
    fn logdet_of_identity_is_zero() {
        let id = Matrix::<f64>::identity(6);
        let mut f = id.clone();
        potf2(&mut f).unwrap();
        assert!(logdet_from_factor(&f).abs() < 1e-14);
    }

    #[test]
    fn logdet_of_diagonal() {
        let a = Matrix::from_rows(2, 2, &[4.0, 0.0, 0.0, 9.0]);
        let mut f = a.clone();
        potf2(&mut f).unwrap();
        assert!((logdet_from_factor(&f) - (36.0f64).ln()).abs() < 1e-12);
    }

    #[test]
    fn invert_spd_gives_a_two_sided_inverse() {
        let mut rng = spd::test_rng(22);
        let a = spd::random_spd(12, &mut rng);
        let inv = invert_spd(&a).unwrap();
        let prod = crate::kernels::matmul(&a, &inv);
        let id = Matrix::<f64>::identity(12);
        let mut worst = 0.0f64;
        for i in 0..12 {
            for j in 0..12 {
                worst = worst.max((prod[(i, j)] - id[(i, j)]).abs());
            }
        }
        assert!(worst < 1e-9, "||A A^-1 - I||_max = {worst}");
    }

    #[test]
    fn solve_rejects_indefinite() {
        let a = Matrix::from_rows(2, 2, &[0.0, 1.0, 1.0, 0.0]);
        assert!(solve_spd(&a, &[1.0, 1.0]).is_err());
    }
}
