//! Bit-exact digests of matrices — the cache keys and identity checks of
//! the serving layer.
//!
//! The workspace's correctness contract is *bit-identity*: a healed
//! factor, a replayed schedule, or a cache-served factor must match a
//! clean computation to the last bit.  An order-sensitive FNV-1a hash
//! over the `f64` bit patterns (dimensions mixed in first) is the cheap
//! certificate of that property: equal digests ⇔ equal bits, up to hash
//! collisions that 64 bits make irrelevant for test- and cache-sized
//! working sets.

use crate::dense::Matrix;

const FNV_OFFSET: u64 = 0xcbf2_9ce4_8422_2325;
const FNV_PRIME: u64 = 0x0000_0100_0000_01b3;

/// FNV-1a over a stream of `u64` words.
fn fnv1a_words(mut h: u64, words: impl Iterator<Item = u64>) -> u64 {
    for w in words {
        for byte in w.to_le_bytes() {
            h ^= byte as u64;
            h = h.wrapping_mul(FNV_PRIME);
        }
    }
    h
}

/// Order-sensitive digest of the full matrix: dimensions, then every
/// element's bit pattern in column-major order.  Two matrices share a
/// digest exactly when they are bit-identical (same shape, same bits —
/// `-0.0` differs from `0.0`, NaN payloads are distinguished).
pub fn matrix_digest(m: &Matrix<f64>) -> u64 {
    let h = fnv1a_words(
        FNV_OFFSET,
        [m.rows() as u64, m.cols() as u64].into_iter(),
    );
    fnv1a_words(h, m.as_slice().iter().map(|x| x.to_bits()))
}

/// Digest of the lower triangle (diagonal included) of a square matrix:
/// the identity of a Cholesky *factor*, insensitive to whatever garbage
/// the strict upper triangle may hold after an in-place factorization.
pub fn lower_digest(m: &Matrix<f64>) -> u64 {
    debug_assert!(m.is_square(), "lower_digest expects a square matrix");
    let n = m.rows();
    let h = fnv1a_words(FNV_OFFSET, [n as u64, n as u64, 0x4c54].into_iter());
    let words = (0..n).flat_map(|j| (j..n).map(move |i| (i, j)));
    fnv1a_words(h, words.map(|(i, j)| m[(i, j)].to_bits()))
}

/// Digest of an `f64` slice (bit patterns, order-sensitive) — used for
/// solution vectors and right-hand sides.
pub fn slice_digest(xs: &[f64]) -> u64 {
    let h = fnv1a_words(FNV_OFFSET, [xs.len() as u64].into_iter());
    fnv1a_words(h, xs.iter().map(|x| x.to_bits()))
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn digest_distinguishes_bits_not_values() {
        let mut a = Matrix::zeros(3, 3);
        let b = a.clone();
        assert_eq!(matrix_digest(&a), matrix_digest(&b));
        a[(1, 2)] = -0.0; // same value as 0.0, different bits
        assert_ne!(matrix_digest(&a), matrix_digest(&b));
    }

    #[test]
    fn digest_is_shape_sensitive() {
        let a = Matrix::<f64>::zeros(2, 3);
        let b = Matrix::<f64>::zeros(3, 2);
        assert_ne!(matrix_digest(&a), matrix_digest(&b));
    }

    #[test]
    fn lower_digest_ignores_the_strict_upper_triangle() {
        let mut a = Matrix::from_fn(4, 4, |i, j| (i * 4 + j) as f64);
        let d0 = lower_digest(&a);
        a[(0, 3)] = 99.0; // upper triangle only
        assert_eq!(lower_digest(&a), d0);
        a[(3, 0)] = 99.0; // lower triangle
        assert_ne!(lower_digest(&a), d0);
    }

    #[test]
    fn slice_digest_is_order_sensitive() {
        assert_ne!(slice_digest(&[1.0, 2.0]), slice_digest(&[2.0, 1.0]));
        assert_ne!(slice_digest(&[]), slice_digest(&[0.0]));
        assert_eq!(slice_digest(&[1.5, -2.5]), slice_digest(&[1.5, -2.5]));
    }
}
