//! Batched microkernels over an interleaved [`BatchPack`] layout.
//!
//! The serve layer's real traffic is Zipf-dominated by *small* systems
//! (n ≤ 64), where one factorization never reaches BLAS-3 intensity: the
//! words moved per system are O(n²) against only O(n³/3) flops, and the
//! per-call dispatch/packing constants dominate.  The paper's
//! surface-to-volume argument applies across *many* problems exactly as
//! it does across blocks: pack `B` same-shape systems side by side and
//! one kernel invocation amortizes its dispatch, packing, and cache
//! traffic over `B·n³/3` flops.
//!
//! **Layout.**  A [`BatchPack`] stores element `(i, j)` of system `s` at
//! `data[((j * rows) + i) * stride + s]` — column-major per system with
//! the *system index innermost*.  Every per-element operation of the
//! factorization therefore becomes a contiguous sweep across `stride`
//! lanes, which is the shape the compiler vectorizes: the inner loop of
//! each microkernel runs across systems, not within one.  `stride` is
//! `batch` rounded up to [`BATCH_LANES`]; padding lanes hold identity
//! systems, whose Cholesky factor is the identity, so they are
//! arithmetically inert and never NaN.
//!
//! **Bit-identity.**  In [`BatchMode::Strict`], every lane performs the
//! *identical per-element operation sequence* as the sequential
//! reference path (`crate::kernels::potf2` and the blocked left-looking
//! schedule built from `syrk`/`gemm_nt`/`trsm`): updates accumulate in
//! ascending `k` with one individually-rounded multiply and subtract per
//! step, then one square root or division.  Lanes never interact, so a
//! system's bits are independent of the batch it rides in — a batch of
//! 32 gives each system the same bits as a batch of 1, which equals the
//! sequential factorization.  [`BatchMode::Fused`] contracts each
//! update into one `mul_add`; still lane-local (batch-size invariant),
//! but rounded like the fused fast kernels rather than the reference.
//!
//! **Padding.**  Embedding an `m × m` system at the leading principal
//! block of a larger `n × n` pack, with identity on the trailing
//! diagonal and zeros off it, leaves the leading `m × m` factor
//! bit-identical to factoring the small system alone: element `(i, j)`
//! with `i, j < m` only ever reads columns `k < j < m`, rows `≥ m`
//! start zero and stay zero, and the trailing diagonal factors to ones.
//! This is what lets one power-of-two bucket serve every size below it.

use crate::dense::Matrix;
use crate::error::MatrixError;

/// Lane granularity of a pack: `stride` is rounded up to a multiple of
/// this so the innermost system sweep is a whole number of SIMD-friendly
/// chunks regardless of the real batch size.
pub const BATCH_LANES: usize = 8;

/// Rounding discipline of the batched kernels.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum BatchMode {
    /// One individually-rounded multiply and add/subtract per update —
    /// bit-identical per system to the sequential reference path.
    Strict,
    /// Contract each update into `mul_add`.  Lane-local (batch-size
    /// invariant) but not reference-rounded.
    Fused,
}

/// `B` same-shape systems interleaved system-innermost.
#[derive(Debug, Clone)]
pub struct BatchPack {
    rows: usize,
    cols: usize,
    batch: usize,
    stride: usize,
    data: Vec<f64>,
}

impl BatchPack {
    /// Pack `systems` (each square, of order ≤ `n`) into one `n × n`
    /// batch, each embedded at the leading principal block with identity
    /// padding on the trailing diagonal (see the module docs for why
    /// that padding is exact).  Lanes beyond `systems.len()` are full
    /// identity systems.
    pub fn pack_square(systems: &[&Matrix<f64>], n: usize) -> Result<BatchPack, MatrixError> {
        let batch = systems.len();
        let stride = batch.div_ceil(BATCH_LANES).max(1) * BATCH_LANES;
        let len = Matrix::<f64>::checked_len(n, n)?
            .checked_mul(stride)
            .ok_or(MatrixError::TooLarge { rows: n, cols: n })?;
        for sys in systems {
            if !sys.is_square() {
                return Err(MatrixError::NotSquare {
                    rows: sys.rows(),
                    cols: sys.cols(),
                });
            }
            assert!(sys.rows() <= n, "system of order {} exceeds bucket {n}", sys.rows());
        }
        let mut data = vec![0.0f64; len];
        // Identity everywhere first — padding lanes and the trailing
        // diagonal of every short system.  Each real system's copy then
        // overwrites its leading principal block (diagonal included);
        // below and to the right of it the zeros/ones stay, which is
        // exactly the inert identity embedding.
        for j in 0..n {
            data[((j * n) + j) * stride..][..stride].fill(1.0);
        }
        for (s, sys) in systems.iter().enumerate() {
            let m = sys.rows();
            for j in 0..m {
                for (i, &v) in sys.col(j).iter().enumerate() {
                    data[((j * n) + i) * stride + s] = v;
                }
            }
        }
        Ok(BatchPack {
            rows: n,
            cols: n,
            batch,
            stride,
            data,
        })
    }

    /// An empty rectangular pack (zeros), for kernel outputs in tests.
    pub fn zeros(rows: usize, cols: usize, batch: usize) -> BatchPack {
        let stride = batch.div_ceil(BATCH_LANES).max(1) * BATCH_LANES;
        BatchPack {
            rows,
            cols,
            batch,
            stride,
            data: vec![0.0; rows * cols * stride],
        }
    }

    /// Per-system row count.
    pub fn rows(&self) -> usize {
        self.rows
    }

    /// Per-system column count.
    pub fn cols(&self) -> usize {
        self.cols
    }

    /// Real systems packed (excluding padding lanes).
    pub fn batch(&self) -> usize {
        self.batch
    }

    /// Lane stride (`batch` rounded up to [`BATCH_LANES`]).
    pub fn stride(&self) -> usize {
        self.stride
    }

    /// Element `(i, j)` of system `s`.
    pub fn get(&self, i: usize, j: usize, s: usize) -> f64 {
        self.data[((j * self.rows) + i) * self.stride + s]
    }

    /// Overwrite element `(i, j)` of system `s` (test hook).
    pub fn set(&mut self, i: usize, j: usize, s: usize, v: f64) {
        self.data[((j * self.rows) + i) * self.stride + s] = v;
    }

    /// Extract the leading `h × w` block of system `s` as a matrix.
    pub fn extract(&self, s: usize, h: usize, w: usize) -> Matrix<f64> {
        assert!(s < self.batch && h <= self.rows && w <= self.cols);
        Matrix::from_fn(h, w, |i, j| self.get(i, j, s))
    }

    /// Copy of the `h × w` sub-block at `(r0, c0)`, all lanes.
    fn sub(&self, r0: usize, c0: usize, h: usize, w: usize) -> BatchPack {
        debug_assert!(r0 + h <= self.rows && c0 + w <= self.cols);
        let mut data = Vec::with_capacity(h * w * self.stride);
        for j in 0..w {
            for i in 0..h {
                let at = (((c0 + j) * self.rows) + r0 + i) * self.stride;
                data.extend_from_slice(&self.data[at..at + self.stride]);
            }
        }
        BatchPack {
            rows: h,
            cols: w,
            batch: self.batch,
            stride: self.stride,
            data,
        }
    }

    /// Write `block` back at `(r0, c0)`, all lanes.
    fn set_sub(&mut self, r0: usize, c0: usize, block: &BatchPack) {
        debug_assert_eq!(block.stride, self.stride);
        for j in 0..block.cols {
            for i in 0..block.rows {
                let src = ((j * block.rows) + i) * block.stride;
                let dst = (((c0 + j) * self.rows) + r0 + i) * self.stride;
                self.data[dst..dst + self.stride]
                    .copy_from_slice(&block.data[src..src + block.stride]);
            }
        }
    }
}

/// One lane-sweep update: `c ← c + a * b` per lane, strict (separate
/// multiply and add, each rounded) or fused (`mul_add`).
#[inline(always)]
fn lane_axpy(c: &mut [f64], a: &[f64], b: &[f64], mode: BatchMode) {
    match mode {
        BatchMode::Strict => {
            for ((x, &u), &v) in c.iter_mut().zip(a).zip(b) {
                *x += u * v;
            }
        }
        BatchMode::Fused => {
            for ((x, &u), &v) in c.iter_mut().zip(a).zip(b) {
                *x = u.mul_add(v, *x);
            }
        }
    }
}

/// As [`lane_axpy`] but subtracting: `c ← c - a * b` per lane.  The
/// strict form is one multiply and one subtract per step, exactly the
/// reference kernels' rounding.
#[inline(always)]
fn lane_axmy(c: &mut [f64], a: &[f64], b: &[f64], mode: BatchMode) {
    match mode {
        BatchMode::Strict => {
            for ((x, &u), &v) in c.iter_mut().zip(a).zip(b) {
                *x -= u * v;
            }
        }
        BatchMode::Fused => {
            for ((x, &u), &v) in c.iter_mut().zip(a).zip(b) {
                *x = (-u).mul_add(v, *x);
            }
        }
    }
}

/// Batched `C ← C + alpha · A · Bᵀ` — the GEMM shape of the blocked
/// Cholesky panel update (Algorithm 4 line 5), per system.
///
/// Per element this is the reference `gemm_nt` operation sequence:
/// `j` outer, `k` middle (ascending), lane-sweep inner, each update
/// `c + a * (alpha * b)` with `alpha * b` folded first — for
/// `alpha = -1` the fold is an exact negation, so strict mode is
/// bit-identical to the reference per system.
pub fn batch_gemm(c: &mut BatchPack, alpha: f64, a: &BatchPack, b: &BatchPack, mode: BatchMode) {
    assert_eq!(a.cols, b.cols, "batch_gemm: inner dimensions");
    assert_eq!(c.rows, a.rows, "batch_gemm: C rows");
    assert_eq!(c.cols, b.rows, "batch_gemm: C cols");
    assert_eq!(a.stride, c.stride, "batch_gemm: A stride");
    assert_eq!(b.stride, c.stride, "batch_gemm: B stride");
    let stride = c.stride;
    let mut bjk = vec![0.0f64; stride];
    for j in 0..c.cols {
        for k in 0..a.cols {
            let bsrc = &b.data[((k * b.rows) + j) * stride..][..stride];
            for (t, &v) in bjk.iter_mut().zip(bsrc) {
                *t = alpha * v;
            }
            for i in 0..c.rows {
                let cij = &mut c.data[((j * c.rows) + i) * stride..][..stride];
                let aik = &a.data[((k * a.rows) + i) * stride..][..stride];
                lane_axpy(cij, aik, &bjk, mode);
            }
        }
    }
}

/// Batched symmetric rank-k update on the lower triangle:
/// `C ← C - A · Aᵀ` restricted to `i ≥ j`, per system — the reference
/// `syrk_lower` operation sequence (one multiply, one subtract per
/// update, ascending `k` per element).
pub fn batch_syrk_lower(c: &mut BatchPack, a: &BatchPack, mode: BatchMode) {
    assert_eq!(c.rows, c.cols, "batch_syrk: C square");
    assert_eq!(c.rows, a.rows, "batch_syrk: dimensions");
    assert_eq!(a.stride, c.stride, "batch_syrk: stride");
    let stride = c.stride;
    let n = c.rows;
    for j in 0..n {
        for k in 0..a.cols {
            let ajk = &a.data[((k * a.rows) + j) * stride..][..stride];
            for i in j..n {
                let cij = &mut c.data[((j * n) + i) * stride..][..stride];
                let aik = &a.data[((k * a.rows) + i) * stride..][..stride];
                lane_axmy(cij, aik, ajk, mode);
            }
        }
    }
}

/// Batched triangular solve `X ← X · L⁻ᵀ` with `L` lower triangular —
/// the TRSM of the Cholesky panel step, per system, in the reference
/// operation order (columns ascending, each update one multiply and one
/// subtract, then one division per element).
pub fn batch_trsm(x: &mut BatchPack, l: &BatchPack, mode: BatchMode) {
    assert_eq!(l.rows, l.cols, "batch_trsm: L square");
    assert_eq!(x.cols, l.rows, "batch_trsm: dimensions");
    assert_eq!(l.stride, x.stride, "batch_trsm: stride");
    let stride = x.stride;
    let m = x.rows;
    for j in 0..l.rows {
        // Columns k < j of X are finished; column j is being solved.
        let (done, rest) = x.data.split_at_mut(j * m * stride);
        for k in 0..j {
            let ljk = &l.data[((k * l.rows) + j) * stride..][..stride];
            for i in 0..m {
                // x[i, j] -= x[i, k] * l[j, k], lanewise.
                let xij = &mut rest[i * stride..][..stride];
                let xik = &done[((k * m) + i) * stride..][..stride];
                lane_axmy(xij, xik, ljk, mode);
            }
        }
        let ljj = &l.data[((j * l.rows) + j) * stride..][..stride];
        for i in 0..m {
            let xij = &mut rest[i * stride..][..stride];
            for (v, &d) in xij.iter_mut().zip(ljj) {
                *v /= d;
            }
        }
    }
}

/// Batched unblocked Cholesky (`POTF2`) of every system's lower
/// triangle, in the exact reference per-element order: for each column
/// `j`, subtract the finished columns `k < j` in ascending order, check
/// the pivot, square-root, scale.
///
/// Returns one result per real system.  A non-SPD system is reported
/// with its (global) failing pivot, its pivot lane is replaced by `1.0`
/// so the lane stays numerically inert, and **all other systems are
/// unaffected** — lanes never interact.  Padding lanes are identity and
/// cannot fail.
pub fn batch_potf2(a: &mut BatchPack, mode: BatchMode) -> Vec<Result<(), MatrixError>> {
    batch_potf2_offset(a, mode, 0)
}

/// [`batch_potf2`] with pivot indices offset by `p0` (for blocked
/// callers reporting global pivots).
fn batch_potf2_offset(
    a: &mut BatchPack,
    mode: BatchMode,
    p0: usize,
) -> Vec<Result<(), MatrixError>> {
    assert_eq!(a.rows, a.cols, "batch_potf2: square systems");
    let n = a.rows;
    let stride = a.stride;
    let mut results: Vec<Result<(), MatrixError>> = vec![Ok(()); a.batch];
    for j in 0..n {
        let (done, rest) = a.data.split_at_mut(j * n * stride);
        // Column j of every system: (i, j) at rest[i * stride..].
        for k in 0..j {
            let ajk = &done[((k * n) + j) * stride..][..stride];
            // Ascending k per element, diagonal included — the
            // reference potf2 column update, lane-swept.
            for i in j..n {
                let aij = &mut rest[i * stride..][..stride];
                let aik = &done[((k * n) + i) * stride..][..stride];
                lane_axmy(aij, aik, ajk, mode);
            }
        }
        // Pivot: check, substitute failed lanes, square-root, scale.
        {
            let d = &mut rest[j * stride..][..stride];
            for (s, res) in results.iter_mut().enumerate() {
                let v = d[s];
                if v.is_finite() && v <= 0.0 {
                    if res.is_ok() {
                        *res = Err(MatrixError::NotSpd {
                            pivot: p0 + j,
                            value: v,
                        });
                    }
                    // Keep the failed lane inert (finite) without
                    // disturbing any other lane.
                    d[s] = 1.0;
                }
            }
            for v in d.iter_mut() {
                *v = v.sqrt();
            }
        }
        let (diag, below) = rest[j * stride..].split_at_mut(stride);
        for i in 0..(n - j - 1) {
            let aij = &mut below[i * stride..][..stride];
            for (v, &ljj) in aij.iter_mut().zip(diag.iter()) {
                *v /= ljj;
            }
        }
    }
    results
}

/// Batched blocked Cholesky: the left-looking LAPACK schedule over
/// `pb`-wide panels, composed from [`batch_syrk_lower`],
/// [`batch_gemm`], [`batch_trsm`] and the [`batch_potf2`] base — the
/// exact tile sequence of the serve engine's `factor_resumable`, so in
/// strict mode every system's factor is bit-identical to the sequential
/// path at any panel width and any batch size.
pub fn batch_potrf(a: &mut BatchPack, pb: usize, mode: BatchMode) -> Vec<Result<(), MatrixError>> {
    assert_eq!(a.rows, a.cols, "batch_potrf: square systems");
    assert!(pb >= 1, "panel width must be at least 1");
    let n = a.rows;
    let nb = n.div_ceil(pb);
    let mut results: Vec<Result<(), MatrixError>> = vec![Ok(()); a.batch];
    for jb in 0..nb {
        let c0 = jb * pb;
        let bw = (n - c0).min(pb);

        // Diagonal tile: SYRK chain (ascending kb), then POTF2.
        let mut a22 = a.sub(c0, c0, bw, bw);
        for kb in 0..jb {
            let k0 = kb * pb;
            let kw = (n - k0).min(pb);
            let ajk = a.sub(c0, k0, bw, kw);
            batch_syrk_lower(&mut a22, &ajk, mode);
        }
        for (res, tile_res) in results.iter_mut().zip(batch_potf2_offset(&mut a22, mode, c0)) {
            if res.is_ok() {
                *res = tile_res;
            }
        }
        a.set_sub(c0, c0, &a22);

        // Panel below: GEMM chains (ascending kb), then TRSM, tile by
        // tile in the sequential schedule's order.
        for ib in (jb + 1)..nb {
            let r0 = ib * pb;
            let bh = (n - r0).min(pb);
            let mut aij = a.sub(r0, c0, bh, bw);
            for kb in 0..jb {
                let k0 = kb * pb;
                let kw = (n - k0).min(pb);
                let aik = a.sub(r0, k0, bh, kw);
                let ajk = a.sub(c0, k0, bw, kw);
                batch_gemm(&mut aij, -1.0, &aik, &ajk, mode);
            }
            batch_trsm(&mut aij, &a22, mode);
            a.set_sub(r0, c0, &aij);
        }
    }
    results
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::digest::lower_digest;
    use crate::kernels;
    use crate::spd;

    fn sample(n: usize, seed: u64) -> Matrix<f64> {
        spd::random_spd(n, &mut spd::test_rng(seed))
    }

    /// Reference bits: the sequential unblocked factorization.
    fn reference_bits(a: &Matrix<f64>) -> u64 {
        let mut f = a.clone();
        kernels::potf2(&mut f).expect("spd");
        lower_digest(&f)
    }

    #[test]
    fn pack_extract_roundtrip_with_identity_padding() {
        let systems: Vec<Matrix<f64>> = vec![sample(5, 1), sample(3, 2), sample(5, 3)];
        let refs: Vec<&Matrix<f64>> = systems.iter().collect();
        let pack = BatchPack::pack_square(&refs, 8).expect("pack");
        assert_eq!(pack.batch(), 3);
        assert_eq!(pack.stride(), 8);
        for (s, sys) in systems.iter().enumerate() {
            let got = pack.extract(s, sys.rows(), sys.rows());
            assert_eq!(&got, sys, "system {s}");
        }
        // Trailing diagonal of a short system is identity; off-diagonal
        // padding is zero.
        assert_eq!(pack.get(4, 4, 1), 1.0);
        assert_eq!(pack.get(4, 1, 1), 0.0);
        assert_eq!(pack.get(1, 6, 0), 0.0);
    }

    #[test]
    fn strict_batch_potrf_is_bit_identical_per_system_to_sequential() {
        // Mixed sizes in one bucket, batch sizes crossing the lane width.
        for &batch in &[1usize, 2, 8, 32] {
            let systems: Vec<Matrix<f64>> = (0..batch)
                .map(|s| sample(8 + 8 * (s % 4), 100 + s as u64))
                .collect();
            let refs: Vec<&Matrix<f64>> = systems.iter().collect();
            let mut pack = BatchPack::pack_square(&refs, 32).expect("pack");
            let results = batch_potrf(&mut pack, 16, BatchMode::Strict);
            for (s, sys) in systems.iter().enumerate() {
                assert!(results[s].is_ok(), "system {s}");
                let got = pack.extract(s, sys.rows(), sys.rows());
                assert_eq!(
                    lower_digest(&got),
                    reference_bits(sys),
                    "batch={batch} system={s} n={}",
                    sys.rows()
                );
            }
        }
    }

    #[test]
    fn blocked_and_unblocked_batches_agree_bitwise() {
        let systems: Vec<Matrix<f64>> = (0..5).map(|s| sample(24, 200 + s)).collect();
        let refs: Vec<&Matrix<f64>> = systems.iter().collect();
        let mut blocked = BatchPack::pack_square(&refs, 24).expect("pack");
        let mut unblocked = blocked.clone();
        assert!(batch_potrf(&mut blocked, 8, BatchMode::Strict).iter().all(Result::is_ok));
        assert!(batch_potf2(&mut unblocked, BatchMode::Strict).iter().all(Result::is_ok));
        for s in 0..systems.len() {
            assert_eq!(
                lower_digest(&blocked.extract(s, 24, 24)),
                lower_digest(&unblocked.extract(s, 24, 24)),
                "system {s}"
            );
        }
    }

    #[test]
    fn non_spd_system_fails_alone_with_its_pivot() {
        let good0 = sample(6, 7);
        // Poison one diagonal entry so the pivot at column 3 (or an
        // earlier one its updates touch) goes non-positive.
        let mut bad = sample(6, 8);
        bad.set_submatrix(3, 3, &Matrix::from_fn(1, 1, |_, _| -100.0));
        let good1 = sample(6, 9);
        let refs: Vec<&Matrix<f64>> = vec![&good0, &bad, &good1];
        let mut pack = BatchPack::pack_square(&refs, 8).expect("pack");
        let results = batch_potrf(&mut pack, 4, BatchMode::Strict);
        assert!(results[0].is_ok());
        assert!(
            matches!(results[1], Err(MatrixError::NotSpd { pivot, .. }) if pivot <= 3),
            "got {:?}",
            results[1]
        );
        assert!(results[2].is_ok());
        // The good systems' bits are untouched by the failure next lane.
        assert_eq!(lower_digest(&pack.extract(0, 6, 6)), reference_bits(&good0));
        assert_eq!(lower_digest(&pack.extract(2, 6, 6)), reference_bits(&good1));
    }

    #[test]
    fn batch_gemm_and_trsm_match_reference_kernels_bitwise() {
        let m = 5;
        let nn = 4;
        let kdim = 3;
        let mk = |rows: usize, cols: usize, seed: u64| {
            let mut rng = spd::test_rng(seed);
            let g = spd::random_spd(rows.max(cols), &mut rng);
            Matrix::from_fn(rows, cols, |i, j| g[(i, j)] - 0.3)
        };
        let (c0, a0, b0) = (mk(m, nn, 1), mk(m, kdim, 2), mk(nn, kdim, 3));
        // Reference.
        let mut want = c0.clone();
        kernels::gemm_nt(&mut want, -1.0, &a0, &b0);
        // Batched: two lanes carrying the same operands must both match.
        let mut c = BatchPack::zeros(m, nn, 2);
        let mut a = BatchPack::zeros(m, kdim, 2);
        let mut b = BatchPack::zeros(nn, kdim, 2);
        for s in 0..2 {
            for j in 0..nn {
                for i in 0..m {
                    c.set(i, j, s, c0[(i, j)]);
                }
            }
            for j in 0..kdim {
                for i in 0..m {
                    a.set(i, j, s, a0[(i, j)]);
                }
                for i in 0..nn {
                    b.set(i, j, s, b0[(i, j)]);
                }
            }
        }
        batch_gemm(&mut c, -1.0, &a, &b, BatchMode::Strict);
        for s in 0..2 {
            assert_eq!(c.extract(s, m, nn), want, "gemm lane {s}");
        }

        // TRSM against a factored diagonal block.
        let mut l = sample(nn, 4);
        kernels::potf2(&mut l).expect("spd");
        let mut want_x = c0.clone();
        kernels::trsm_right_lower_transpose(&mut want_x, &l);
        let mut x = BatchPack::zeros(m, nn, 2);
        let mut lp = BatchPack::zeros(nn, nn, 2);
        for s in 0..2 {
            for j in 0..nn {
                for i in 0..m {
                    x.set(i, j, s, c0[(i, j)]);
                }
                for i in 0..nn {
                    lp.set(i, j, s, l[(i, j)]);
                }
            }
        }
        batch_trsm(&mut x, &lp, BatchMode::Strict);
        for s in 0..2 {
            assert_eq!(x.extract(s, m, nn), want_x, "trsm lane {s}");
        }
    }

    #[test]
    fn fused_mode_is_batch_size_invariant_per_system() {
        let sys = sample(16, 42);
        let one = {
            let refs: Vec<&Matrix<f64>> = vec![&sys];
            let mut p = BatchPack::pack_square(&refs, 16).expect("pack");
            assert!(batch_potrf(&mut p, 8, BatchMode::Fused)[0].is_ok());
            lower_digest(&p.extract(0, 16, 16))
        };
        let companions: Vec<Matrix<f64>> = (0..15).map(|s| sample(16, 300 + s)).collect();
        let mut refs: Vec<&Matrix<f64>> = vec![&sys];
        refs.extend(companions.iter());
        let mut p = BatchPack::pack_square(&refs, 16).expect("pack");
        assert!(batch_potrf(&mut p, 8, BatchMode::Fused).iter().all(Result::is_ok));
        assert_eq!(lower_digest(&p.extract(0, 16, 16)), one);
    }

    #[test]
    fn n_equals_one_systems_batch() {
        let sys: Vec<Matrix<f64>> = (1..=4)
            .map(|s| Matrix::from_fn(1, 1, |_, _| (s * s) as f64))
            .collect();
        let refs: Vec<&Matrix<f64>> = sys.iter().collect();
        let mut p = BatchPack::pack_square(&refs, 1).expect("pack");
        let results = batch_potrf(&mut p, 16, BatchMode::Strict);
        assert!(results.iter().all(Result::is_ok));
        // sqrt((s+1)²) == s+1 exactly.
        for s in 0..4 {
            assert_eq!(p.extract(s, 1, 1)[(0, 0)], (s + 1) as f64);
        }
    }
}
