//! Reference BLAS-3-like kernels, written directly from the paper.
//!
//! These are the building blocks the blocked and recursive Cholesky
//! algorithms call (Algorithm 4 lines 3–6, Algorithm 6 lines 5–6), and the
//! oracle every optimized/instrumented variant is tested against.  They are
//! deliberately straightforward triple loops: the paper's claims concern
//! *communication schedules*, which live in `cholcomm-seq`; arithmetic
//! fidelity is what matters here.

use crate::dense::Matrix;
use crate::error::MatrixError;
use crate::scalar::Scalar;

/// `C <- C + alpha * A * B` (general matrix multiply, no transpose).
///
/// The inner loop runs over column slices (`Matrix::col`), not the
/// bounds-checked `Index` path, but performs the identical sequence of
/// floating-point operations per element: `j` outer, `k` middle, `i`
/// inner, each update `c + a * (alpha * b)`.
pub fn gemm_nn<S: Scalar>(c: &mut Matrix<S>, alpha: S, a: &Matrix<S>, b: &Matrix<S>) {
    assert_eq!(a.cols(), b.rows(), "gemm_nn: inner dimensions");
    assert_eq!(c.rows(), a.rows(), "gemm_nn: C rows");
    assert_eq!(c.cols(), b.cols(), "gemm_nn: C cols");
    for j in 0..c.cols() {
        let cj = c.col_mut(j);
        for k in 0..a.cols() {
            let bkj = alpha * b[(k, j)];
            for (ci, &aik) in cj.iter_mut().zip(a.col(k)) {
                *ci = *ci + aik * bkj;
            }
        }
    }
}

/// `C <- C + alpha * A * B^T`, the update shape of the LAPACK panel step
/// (Algorithm 4 line 5: `A32 <- A32 - A31 * A21^T`).
pub fn gemm_nt<S: Scalar>(c: &mut Matrix<S>, alpha: S, a: &Matrix<S>, b: &Matrix<S>) {
    assert_eq!(a.cols(), b.cols(), "gemm_nt: inner dimensions");
    assert_eq!(c.rows(), a.rows(), "gemm_nt: C rows");
    assert_eq!(c.cols(), b.rows(), "gemm_nt: C cols");
    for j in 0..c.cols() {
        let cj = c.col_mut(j);
        for k in 0..a.cols() {
            let bjk = alpha * b[(j, k)];
            for (ci, &aik) in cj.iter_mut().zip(a.col(k)) {
                *ci = *ci + aik * bjk;
            }
        }
    }
}

/// Symmetric rank-k update on the lower triangle:
/// `C <- C - A * A^T` restricted to `i >= j` (Algorithm 4 line 3, SYRK).
pub fn syrk_lower<S: Scalar>(c: &mut Matrix<S>, a: &Matrix<S>) {
    assert!(c.is_square(), "syrk_lower: C square");
    assert_eq!(c.rows(), a.rows(), "syrk_lower: dimensions");
    for j in 0..c.cols() {
        let cj = &mut c.col_mut(j)[j..];
        for k in 0..a.cols() {
            let ak = &a.col(k)[j..];
            let ajk = ak[0];
            for (ci, &aik) in cj.iter_mut().zip(ak) {
                *ci = *ci - aik * ajk;
            }
        }
    }
}

/// Triangular solve `X <- B * L^{-T}` with `L` lower triangular, i.e. solve
/// `X * L^T = B` for `X` (Algorithm 4 line 6, TRSM with the Cholesky
/// diagonal block).  Overwrites `b` with the solution.
pub fn trsm_right_lower_transpose<S: Scalar>(b: &mut Matrix<S>, l: &Matrix<S>) {
    assert!(l.is_square(), "trsm: L square");
    assert_eq!(b.cols(), l.rows(), "trsm: dimensions");
    let n = l.rows();
    let rows = b.rows();
    for j in 0..n {
        // X[:, j] = (B[:, j] - sum_{k<j} X[:, k] * L[j, k]) / L[j, j]
        let (done, rest) = b.split_cols_mut(j);
        let bj = &mut rest[..rows];
        for (k, bk) in done.chunks_exact(rows.max(1)).take(j).enumerate() {
            let ljk = l[(j, k)];
            for (x, &xik) in bj.iter_mut().zip(bk) {
                *x = *x - xik * ljk;
            }
        }
        let ljj = l[(j, j)];
        for x in bj.iter_mut() {
            *x = *x / ljj;
        }
    }
}

/// Triangular solve `X <- L^{-1} * B` with `L` lower triangular (forward
/// substitution with multiple right-hand sides).  Overwrites `b`.
pub fn trsm_left_lower<S: Scalar>(b: &mut Matrix<S>, l: &Matrix<S>) {
    assert!(l.is_square(), "trsm: L square");
    assert_eq!(b.rows(), l.rows(), "trsm: dimensions");
    let n = l.rows();
    for j in 0..b.cols() {
        let bj = b.col_mut(j);
        for i in 0..n {
            let mut v = bj[i];
            for (k, &bkj) in bj[..i].iter().enumerate() {
                v = v - l[(i, k)] * bkj;
            }
            bj[i] = v / l[(i, i)];
        }
    }
}

/// Unblocked Cholesky of the lower triangle (LAPACK's `POTF2`), computing
/// Equations (5) and (6) of the paper.  On success the lower triangle of
/// `a` holds `L`; the strict upper triangle is left untouched.
///
/// The loops run left-looking over column slices: for each column `j`,
/// the contributions of the finished columns `k < j` are subtracted in
/// ascending `k`, then the pivot is checked and the column scaled.  Per
/// element this is the identical sequence of floating-point operations
/// as the verbatim dot-product form of Equations (5)–(6) — the sums of
/// both equations accumulate in ascending `k` either way — so the factor
/// is bit-identical; only redundant bounds checks are gone.
pub fn potf2<S: Scalar>(a: &mut Matrix<S>) -> Result<(), MatrixError> {
    if !a.is_square() {
        return Err(MatrixError::NotSquare {
            rows: a.rows(),
            cols: a.cols(),
        });
    }
    let n = a.rows();
    for j in 0..n {
        let (done, rest) = a.split_cols_mut(j);
        // Column j, from the diagonal down: aj[0] is A(j,j).
        let aj = &mut rest[j..n];
        for k in 0..j {
            let ak = &done[k * n + j..(k + 1) * n];
            let ajk = ak[0];
            // Equations (5)/(6) partial sums: A(i,j) -= L(i,k) * L(j,k),
            // in ascending k, diagonal included.
            for (v, &aik) in aj.iter_mut().zip(ak) {
                *v = *v - aik * ajk;
            }
        }
        // Equation (5): L(j,j) = sqrt(A(j,j) - sum_{k<j} L(j,k)^2).
        let d = aj[0];
        // For real scalars, reject non-positive pivots.  For starred
        // scalars `is_finite_real` is false and the value passes through
        // (Table 3: sqrt(1*) = 1*).
        if d.is_finite_real() && real_is_nonpositive(d) {
            // `d <= 0`, so its real embedding is `-|d|` — exact for the
            // real scalar types this branch is reachable for.
            return Err(MatrixError::NotSpd {
                pivot: j,
                value: -d.magnitude(),
            });
        }
        let ljj = d.sqrt();
        aj[0] = ljj;
        // Equation (6): L(i,j) = (A(i,j) - sum_{k<j} L(i,k) L(j,k)) / L(j,j)
        for v in aj[1..].iter_mut() {
            *v = *v / ljj;
        }
    }
    Ok(())
}

/// `true` when a real scalar is `<= 0` (detected via the sign of its
/// embedding: `x <= 0` iff `|x - |x|| > 0` or `x == 0`).
fn real_is_nonpositive<S: Scalar>(x: S) -> bool {
    let m = x.magnitude();
    if m == 0.0 {
        return true;
    }
    // x - |x| is zero exactly when x > 0.
    (x - S::from_f64(m)).magnitude() > 0.0
}

/// Reference matrix product `A * B` into a fresh matrix.
pub fn matmul<S: Scalar>(a: &Matrix<S>, b: &Matrix<S>) -> Matrix<S> {
    let mut c = Matrix::zeros(a.rows(), b.cols());
    gemm_nn(&mut c, S::one(), a, b);
    c
}

/// Reference `L * L^T` for checking factorizations.
pub fn llt<S: Scalar>(l: &Matrix<S>) -> Matrix<S> {
    assert!(l.is_square());
    let n = l.rows();
    Matrix::from_fn(n, n, |i, j| {
        let mut s = S::zero();
        for k in 0..=i.min(j) {
            s = s + l[(i, k)] * l[(j, k)];
        }
        s
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::norms::max_abs_diff;
    use crate::spd;

    #[test]
    fn gemm_nn_small() {
        let a = Matrix::from_rows(2, 2, &[1.0, 2.0, 3.0, 4.0]);
        let b = Matrix::from_rows(2, 2, &[5.0, 6.0, 7.0, 8.0]);
        let c = matmul(&a, &b);
        assert_eq!(c, Matrix::from_rows(2, 2, &[19.0, 22.0, 43.0, 50.0]));
    }

    #[test]
    fn gemm_nt_matches_explicit_transpose() {
        let a = Matrix::<f64>::from_fn(3, 2, |i, j| (i + j) as f64);
        let b = Matrix::<f64>::from_fn(4, 2, |i, j| (2 * i + 3 * j) as f64);
        let mut c1 = Matrix::zeros(3, 4);
        gemm_nt(&mut c1, 1.0, &a, &b);
        let c2 = matmul(&a, &b.transpose());
        assert!(max_abs_diff(&c1, &c2) == 0.0);
    }

    #[test]
    fn syrk_matches_gemm_on_lower() {
        let a = Matrix::<f64>::from_fn(4, 3, |i, j| (i * 3 + j) as f64 * 0.5);
        let mut c1 = Matrix::<f64>::zeros(4, 4);
        syrk_lower(&mut c1, &a);
        let mut c2 = Matrix::<f64>::zeros(4, 4);
        gemm_nt(&mut c2, -1.0, &a, &a);
        for j in 0..4 {
            for i in j..4 {
                assert_eq!(c1[(i, j)], c2[(i, j)]);
            }
            for i in 0..j {
                assert_eq!(c1[(i, j)], 0.0, "upper triangle untouched");
            }
        }
    }

    #[test]
    fn trsm_right_solves() {
        let l = Matrix::from_rows(2, 2, &[2.0, 0.0, 1.0, 3.0]);
        let x_true = Matrix::from_rows(3, 2, &[1.0, 2.0, 3.0, 4.0, 5.0, 6.0]);
        // B = X * L^T
        let mut b = matmul(&x_true, &l.transpose());
        trsm_right_lower_transpose(&mut b, &l);
        assert!(max_abs_diff(&b, &x_true) < 1e-12);
    }

    #[test]
    fn trsm_left_solves() {
        let l = Matrix::from_rows(3, 3, &[2.0, 0.0, 0.0, 1.0, 3.0, 0.0, -1.0, 2.0, 4.0]);
        let x_true = Matrix::<f64>::from_fn(3, 2, |i, j| (i + 2 * j + 1) as f64);
        let mut b = matmul(&l, &x_true);
        trsm_left_lower(&mut b, &l);
        assert!(max_abs_diff(&b, &x_true) < 1e-12);
    }

    #[test]
    fn potf2_factors_spd() {
        let mut rng = spd::test_rng(7);
        let a = spd::random_spd(16, &mut rng);
        let mut f = a.clone();
        potf2(&mut f).unwrap();
        let l = f.lower_triangle().unwrap();
        let rebuilt = llt(&l);
        assert!(max_abs_diff(&rebuilt, &a) < 1e-9);
    }

    #[test]
    fn potf2_known_factor() {
        // A = [[4, 2],[2, 5]] => L = [[2, 0],[1, 2]]
        let mut a = Matrix::from_rows(2, 2, &[4.0, 2.0, 2.0, 5.0]);
        potf2(&mut a).unwrap();
        assert_eq!(a[(0, 0)], 2.0);
        assert_eq!(a[(1, 0)], 1.0);
        assert_eq!(a[(1, 1)], 2.0);
    }

    #[test]
    fn potf2_rejects_indefinite() {
        let mut a = Matrix::from_rows(2, 2, &[1.0, 2.0, 2.0, 1.0]);
        // Pivot 1 is 1 - 2^2 = -3, reported with its value for
        // diagonal-shift retries.
        assert_eq!(
            potf2(&mut a).unwrap_err(),
            MatrixError::NotSpd {
                pivot: 1,
                value: -3.0
            }
        );
    }

    #[test]
    fn potf2_rejects_nonsquare() {
        let mut a = Matrix::<f64>::zeros(2, 3);
        assert!(matches!(potf2(&mut a), Err(MatrixError::NotSquare { .. })));
    }
}

/// Unblocked LU decomposition without pivoting (Doolittle): on success
/// the strict lower triangle of `a` holds the unit-lower `L` and the
/// upper triangle holds `U`.  Errors on a (numerically) zero pivot.
///
/// Used by the Equation (1) reduction of the paper: matrix
/// multiplication embeds into the LU of a `3n x 3n` block matrix whose
/// pivots are all exactly 1, so no pivoting is ever needed there.
pub fn getrf_nopiv<S: Scalar>(a: &mut Matrix<S>) -> Result<(), MatrixError> {
    if !a.is_square() {
        return Err(MatrixError::NotSquare {
            rows: a.rows(),
            cols: a.cols(),
        });
    }
    let n = a.rows();
    for k in 0..n {
        let pivot = a[(k, k)];
        if pivot.is_finite_real() && pivot.magnitude() == 0.0 {
            return Err(MatrixError::NotSpd {
                pivot: k,
                value: 0.0,
            });
        }
        for i in (k + 1)..n {
            let lik = a[(i, k)] / pivot;
            a[(i, k)] = lik;
            for j in (k + 1)..n {
                let akj = a[(k, j)];
                a[(i, j)] = a[(i, j)].mul_sub(lik, akj);
            }
        }
    }
    Ok(())
}

/// Split an in-place LU factor into `(L, U)` with unit diagonal on `L`.
pub fn split_lu<S: Scalar>(a: &Matrix<S>) -> (Matrix<S>, Matrix<S>) {
    let n = a.rows();
    let l = Matrix::from_fn(n, n, |i, j| {
        if i == j {
            S::one()
        } else if i > j {
            a[(i, j)]
        } else {
            S::zero()
        }
    });
    let u = Matrix::from_fn(n, n, |i, j| if i <= j { a[(i, j)] } else { S::zero() });
    (l, u)
}

#[cfg(test)]
mod lu_tests {
    use super::*;
    use crate::norms::max_abs_diff;
    use crate::spd;

    #[test]
    fn lu_factors_a_diagonally_dominant_matrix() {
        let mut rng = spd::test_rng(8);
        // SPD matrices are LU-factorable without pivoting.
        let a = spd::random_spd(12, &mut rng);
        let mut f = a.clone();
        getrf_nopiv(&mut f).unwrap();
        let (l, u) = split_lu(&f);
        let rebuilt = matmul(&l, &u);
        assert!(max_abs_diff(&rebuilt, &a) < 1e-9);
    }

    #[test]
    fn lu_known_small_case() {
        // A = [[2, 3], [4, 7]] => L = [[1,0],[2,1]], U = [[2,3],[0,1]].
        let mut a = Matrix::from_rows(2, 2, &[2.0, 3.0, 4.0, 7.0]);
        getrf_nopiv(&mut a).unwrap();
        assert_eq!(a[(1, 0)], 2.0);
        assert_eq!(a[(0, 1)], 3.0);
        assert_eq!(a[(1, 1)], 1.0);
    }

    #[test]
    fn lu_rejects_zero_pivot() {
        let mut a = Matrix::from_rows(2, 2, &[0.0, 1.0, 1.0, 0.0]);
        assert!(getrf_nopiv(&mut a).is_err());
    }
}
