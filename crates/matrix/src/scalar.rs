//! The scalar abstraction shared by real floating-point numbers and the
//! paper's "starred" values.
//!
//! Section 2 of the paper extends the reals with two new quantities, `0*`
//! and `1*`, whose arithmetic is given in Table 3, and observes that any
//! classical Cholesky algorithm can be run unmodified over the extended
//! value set ("attach an extra bit to every numerical value ... and modify
//! every arithmetic operation to first check this bit").  Making the whole
//! algorithm zoo generic over this trait is the Rust realisation of that
//! observation: `f64` instantiates the ordinary algorithms, while the
//! `Star` type in `cholcomm-starred` instantiates the reduction of
//! Algorithm 1.

use std::fmt::Debug;
use std::ops::{Add, Div, Mul, Neg, Sub};

/// Arithmetic required by every Cholesky kernel in the workspace.
///
/// The operation set is exactly what Equations (5) and (6) of the paper
/// consume: `+`, `-`, `*`, `/`, square root, and the constants zero and
/// one.  No comparison or ordering is required by the classical algorithm
/// (there is no pivoting), which is what makes the starred extension work.
pub trait Scalar:
    Copy
    + Clone
    + PartialEq
    + Debug
    + Send
    + Sync
    + 'static
    + Add<Output = Self>
    + Sub<Output = Self>
    + Mul<Output = Self>
    + Div<Output = Self>
    + Neg<Output = Self>
{
    /// Additive identity.
    fn zero() -> Self;

    /// Multiplicative identity.
    fn one() -> Self;

    /// Embed a real number into the scalar set.
    fn from_f64(x: f64) -> Self;

    /// Square root, as used on the diagonal in Equation (5).
    fn sqrt(self) -> Self;

    /// Magnitude used by norm computations.  Starred values, which carry no
    /// real payload, report `0.0` so that norms measure only the real part
    /// of a mixed matrix.
    fn magnitude(self) -> f64;

    /// `true` when the value is an ordinary finite real (used by
    /// positive-definiteness checks, which only make sense for reals).
    fn is_finite_real(self) -> bool;

    /// Fused multiply-subtract accumulation `self - a * b`, the inner-loop
    /// operation of both Equations (5) and (6).  Provided so exotic scalars
    /// can keep the same operation count as the reals.
    #[inline]
    fn mul_sub(self, a: Self, b: Self) -> Self {
        self - a * b
    }
}

impl Scalar for f64 {
    #[inline]
    fn zero() -> Self {
        0.0
    }
    #[inline]
    fn one() -> Self {
        1.0
    }
    #[inline]
    fn from_f64(x: f64) -> Self {
        x
    }
    #[inline]
    fn sqrt(self) -> Self {
        f64::sqrt(self)
    }
    #[inline]
    fn magnitude(self) -> f64 {
        self.abs()
    }
    #[inline]
    fn is_finite_real(self) -> bool {
        self.is_finite()
    }
}

impl Scalar for f32 {
    #[inline]
    fn zero() -> Self {
        0.0
    }
    #[inline]
    fn one() -> Self {
        1.0
    }
    #[inline]
    fn from_f64(x: f64) -> Self {
        x as f32
    }
    #[inline]
    fn sqrt(self) -> Self {
        f32::sqrt(self)
    }
    #[inline]
    fn magnitude(self) -> f64 {
        f64::from(self.abs())
    }
    #[inline]
    fn is_finite_real(self) -> bool {
        self.is_finite()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn generic_axioms<S: Scalar>() {
        let two = S::from_f64(2.0);
        let four = S::from_f64(4.0);
        assert_eq!(S::zero() + two, two);
        assert_eq!(two * S::one(), two);
        assert_eq!(four.sqrt(), two);
        assert_eq!(four / two, two);
        assert_eq!(-(-two), two);
        assert_eq!(four.mul_sub(two, S::one()), two);
        assert!(two.is_finite_real());
    }

    #[test]
    fn f64_axioms() {
        generic_axioms::<f64>();
    }

    #[test]
    fn f32_axioms() {
        generic_axioms::<f32>();
    }

    #[test]
    fn magnitude_is_abs() {
        assert_eq!((-3.5f64).magnitude(), 3.5);
        assert_eq!((-3.5f32).magnitude(), 3.5);
    }

    #[test]
    fn non_finite_reals_detected() {
        assert!(!f64::NAN.is_finite_real());
        assert!(!f64::INFINITY.is_finite_real());
    }
}
