//! Pool-backed parallelism gating for the fast kernels.
//!
//! The packed BLAS-3 kernels in [`crate::kernels_fast`] fan their
//! macro-tile grids onto the vendored-rayon work-stealing pool when —
//! and only when — three conditions hold:
//!
//! 1. the calling thread's pool has more than one worker
//!    ([`effective_threads`] respects `ThreadPool::install`, so the
//!    scaling bench can pin any worker count);
//! 2. the operation is large enough that fork-join overhead is noise
//!    (the callers gate on a flop threshold — see
//!    [`crate::kernels_fast`]);
//! 3. parallelism was not explicitly disabled for this thread via
//!    [`set_kernel_parallelism`] (the serve shards default to
//!    sequential kernels so their per-shard latency model stays
//!    unchanged unless the `parallel` config knob is set).
//!
//! **Determinism contract.**  Parallel execution never changes *what*
//! is computed, only *where*: tasks own disjoint output tiles, every
//! reduction (the `k` dimension) stays sequential inside one task, and
//! per-element operation order is identical to the sequential path.
//! Strict-mode results are therefore bit-identical at every thread
//! count and under every steal order; fused-mode results are
//! bit-deterministic for any fixed partition, and the partition is a
//! pure function of the operand shape and worker count.

use std::cell::Cell;

thread_local! {
    /// Per-thread enable flag for kernel-level parallelism.  Defaults
    /// to enabled; serve shards (and anyone wanting the PR-3 sequential
    /// behaviour) turn it off for their worker thread.
    static KERNEL_PARALLEL: Cell<bool> = const { Cell::new(true) };
}

/// Enable or disable kernel-level parallelism for the *calling thread*.
/// Returns the previous setting so callers can restore it.
pub fn set_kernel_parallelism(enabled: bool) -> bool {
    KERNEL_PARALLEL.with(|f| f.replace(enabled))
}

/// Whether kernel-level parallelism is enabled for the calling thread.
pub fn kernel_parallelism() -> bool {
    KERNEL_PARALLEL.with(Cell::get)
}

/// The worker count a kernel invoked on this thread may fan out to:
/// the current pool's size, or `1` when parallelism is disabled for
/// this thread.
pub fn effective_threads() -> usize {
    if kernel_parallelism() {
        rayon::current_num_threads()
    } else {
        1
    }
}

/// Run `f(0), f(1), ..., f(tasks - 1)`, potentially in parallel, via
/// binary [`rayon::join`] splitting — each index is one coarse task
/// (a macro-tile, a row chunk), so there is no grain logic here.
///
/// All invocations have completed when this returns.  `f` must not
/// assume any ordering between indices.
pub fn par_for(tasks: usize, f: &(impl Fn(usize) + Sync)) {
    match tasks {
        0 => {}
        1 => f(0),
        _ => par_for_range(0, tasks, f),
    }
}

fn par_for_range(lo: usize, hi: usize, f: &(impl Fn(usize) + Sync)) {
    if hi - lo == 1 {
        f(lo);
        return;
    }
    let mid = lo + (hi - lo) / 2;
    rayon::join(|| par_for_range(lo, mid, f), || par_for_range(mid, hi, f));
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::atomic::{AtomicUsize, Ordering};

    #[test]
    fn par_for_visits_every_index_once() {
        let hits: Vec<AtomicUsize> = (0..37).map(|_| AtomicUsize::new(0)).collect();
        par_for(hits.len(), &|i| {
            hits[i].fetch_add(1, Ordering::SeqCst);
        });
        assert!(hits.iter().all(|h| h.load(Ordering::SeqCst) == 1));
        par_for(0, &|_| panic!("no tasks"));
    }

    #[test]
    fn parallelism_flag_is_per_thread_and_restorable() {
        assert!(kernel_parallelism());
        let prev = set_kernel_parallelism(false);
        assert!(prev);
        assert_eq!(effective_threads(), 1);
        // The flag is thread-local: a fresh thread sees the default.
        let other = std::thread::spawn(kernel_parallelism).join().expect("thread");
        assert!(other);
        set_kernel_parallelism(prev);
        assert!(kernel_parallelism());
        assert!(effective_threads() >= 1);
    }
}
