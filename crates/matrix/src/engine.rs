//! Kernel engine selection: reference oracle vs. the packed fast engine.
//!
//! Every substrate (sequential LAPACK schedule, recursive AP00, shared-
//! memory tiles, SPMD ranks, out-of-core tiles) does its arithmetic
//! through a [`KernelImpl`] value.  The selector dispatches per call:
//! [`KernelImpl::Fast`] and [`KernelImpl::FastStrict`] route `f64`
//! operands to [`crate::kernels_fast`] (FMA-contracted and
//! order-and-rounding-preserving respectively); every other scalar (and
//! [`KernelImpl::Reference`]) runs the verbatim oracle in
//! [`crate::kernels`].
//!
//! Two invariants, tested in `tests/cross_algorithm.rs` and
//! `tests/kernel_engine.rs`:
//!
//! * **counts**: the instrumented word/message counts are charged by the
//!   *schedules* (explicit `touch`/`bcast`/tile calls), so they are
//!   byte-identical under every engine;
//! * **bits**: [`KernelImpl::FastStrict`] is bit-identical to
//!   [`KernelImpl::Reference`] on every operation.  [`KernelImpl::Fast`]
//!   additionally lets hardware FMA contract multiply-add pairs — same
//!   per-element operation order, one rounding fewer per product — so
//!   it agrees to a contraction residual instead of exactly.

use std::any::TypeId;

use crate::dense::Matrix;
use crate::error::MatrixError;
use crate::kernels;
use crate::kernels_fast;
use crate::scalar::Scalar;

/// Which arithmetic engine runs under a schedule.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub enum KernelImpl {
    /// The verbatim triple-loop oracle ([`crate::kernels`]).  Works for
    /// every [`Scalar`]; the baseline every optimisation is tested
    /// against.
    #[default]
    Reference,
    /// The packed, cache-blocked microkernels with FMA contraction
    /// ([`crate::kernels_fast::fused`]).  `f64` only — other scalars
    /// silently fall back to the reference oracle.
    Fast,
    /// The packed microkernels with reference rounding
    /// ([`crate::kernels_fast`]'s strict mode): bit-identical results,
    /// most of the speed.  `f64` only, like [`KernelImpl::Fast`].
    FastStrict,
}

impl KernelImpl {
    /// Read the engine from the `CHOLCOMM_KERNELS` environment variable
    /// (`fast` selects [`KernelImpl::Fast`], `fast-strict` selects
    /// [`KernelImpl::FastStrict`]; anything else, including an unset
    /// variable, selects [`KernelImpl::Reference`]).
    pub fn from_env() -> Self {
        match std::env::var("CHOLCOMM_KERNELS") {
            Ok(v) if v.eq_ignore_ascii_case("fast") => KernelImpl::Fast,
            Ok(v) if v.eq_ignore_ascii_case("fast-strict") => KernelImpl::FastStrict,
            _ => KernelImpl::Reference,
        }
    }

    /// `true` when this engine actually dispatches scalar type `S` to the
    /// fast path.  Recursive schedules use this to decide whether a
    /// gather-to-tile detour at a base case buys anything: for
    /// non-`f64` scalars (or the reference engine) it never does.
    pub fn accelerates<S: Scalar>(self) -> bool {
        self != KernelImpl::Reference && TypeId::of::<S>() == TypeId::of::<f64>()
    }

    /// Stable lowercase name (used in bench JSON and logs).
    pub fn name(self) -> &'static str {
        match self {
            KernelImpl::Reference => "reference",
            KernelImpl::Fast => "fast",
            KernelImpl::FastStrict => "fast-strict",
        }
    }

    /// `C <- C + alpha * A * B` (see [`kernels::gemm_nn`]).
    pub fn gemm_nn<S: Scalar>(self, c: &mut Matrix<S>, alpha: S, a: &Matrix<S>, b: &Matrix<S>) {
        if self != KernelImpl::Reference {
            if let (Some(cf), Some(af), Some(bf)) = (as_f64_mut(c), as_f64(a), as_f64(b)) {
                match self {
                    KernelImpl::Fast => kernels_fast::fused::gemm_nn(cf, scalar_to_f64(alpha), af, bf),
                    _ => kernels_fast::gemm_nn(cf, scalar_to_f64(alpha), af, bf),
                }
                return;
            }
        }
        kernels::gemm_nn(c, alpha, a, b);
    }

    /// `C <- C + alpha * A * B^T` (see [`kernels::gemm_nt`]).
    pub fn gemm_nt<S: Scalar>(self, c: &mut Matrix<S>, alpha: S, a: &Matrix<S>, b: &Matrix<S>) {
        if self != KernelImpl::Reference {
            if let (Some(cf), Some(af), Some(bf)) = (as_f64_mut(c), as_f64(a), as_f64(b)) {
                match self {
                    KernelImpl::Fast => kernels_fast::fused::gemm_nt(cf, scalar_to_f64(alpha), af, bf),
                    _ => kernels_fast::gemm_nt(cf, scalar_to_f64(alpha), af, bf),
                }
                return;
            }
        }
        kernels::gemm_nt(c, alpha, a, b);
    }

    /// Lower-triangle `C <- C - A * A^T` (see [`kernels::syrk_lower`]).
    pub fn syrk_lower<S: Scalar>(self, c: &mut Matrix<S>, a: &Matrix<S>) {
        if self != KernelImpl::Reference {
            if let (Some(cf), Some(af)) = (as_f64_mut(c), as_f64(a)) {
                match self {
                    KernelImpl::Fast => kernels_fast::fused::syrk_lower(cf, af),
                    _ => kernels_fast::syrk_lower(cf, af),
                }
                return;
            }
        }
        kernels::syrk_lower(c, a);
    }

    /// `X <- B * L^{-T}` (see [`kernels::trsm_right_lower_transpose`]).
    pub fn trsm_right_lower_transpose<S: Scalar>(self, b: &mut Matrix<S>, l: &Matrix<S>) {
        if self != KernelImpl::Reference {
            if let (Some(bf), Some(lf)) = (as_f64_mut(b), as_f64(l)) {
                match self {
                    KernelImpl::Fast => kernels_fast::fused::trsm_right_lower_transpose(bf, lf),
                    _ => kernels_fast::trsm_right_lower_transpose(bf, lf),
                }
                return;
            }
        }
        kernels::trsm_right_lower_transpose(b, l);
    }

    /// In-place Cholesky of the lower triangle (see [`kernels::potf2`]).
    pub fn potf2<S: Scalar>(self, a: &mut Matrix<S>) -> Result<(), MatrixError> {
        if self != KernelImpl::Reference {
            if let Some(af) = as_f64_mut(a) {
                return match self {
                    KernelImpl::Fast => kernels_fast::fused::potf2(af),
                    _ => kernels_fast::potf2(af),
                };
            }
        }
        kernels::potf2(a)
    }
}

#[inline]
fn as_f64<S: Scalar>(m: &Matrix<S>) -> Option<&Matrix<f64>> {
    if TypeId::of::<S>() == TypeId::of::<f64>() {
        // SAFETY: TypeId equality proves S == f64, so Matrix<S> and
        // Matrix<f64> are the same type.
        Some(unsafe { &*(m as *const Matrix<S> as *const Matrix<f64>) })
    } else {
        None
    }
}

#[inline]
fn as_f64_mut<S: Scalar>(m: &mut Matrix<S>) -> Option<&mut Matrix<f64>> {
    if TypeId::of::<S>() == TypeId::of::<f64>() {
        // SAFETY: TypeId equality proves S == f64.
        Some(unsafe { &mut *(m as *mut Matrix<S> as *mut Matrix<f64>) })
    } else {
        None
    }
}

#[inline]
fn scalar_to_f64<S: Scalar>(s: S) -> f64 {
    debug_assert_eq!(TypeId::of::<S>(), TypeId::of::<f64>());
    // SAFETY: only reached behind a TypeId::of::<S>() == TypeId::of::<f64>()
    // guard, so `s` is an f64.
    unsafe { *(&s as *const S as *const f64) }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::norms;
    use crate::spd;

    #[test]
    fn env_selector_defaults_to_reference() {
        // The test environment does not set CHOLCOMM_KERNELS.
        if std::env::var("CHOLCOMM_KERNELS").is_err() {
            assert_eq!(KernelImpl::from_env(), KernelImpl::Reference);
        }
        assert_eq!(KernelImpl::Reference.name(), "reference");
        assert_eq!(KernelImpl::Fast.name(), "fast");
        assert_eq!(KernelImpl::FastStrict.name(), "fast-strict");
    }

    #[test]
    fn strict_engine_agrees_bitwise_on_f64_potf2() {
        let mut rng = spd::test_rng(42);
        let a = spd::random_spd(33, &mut rng);
        let mut r = a.clone();
        let mut f = a.clone();
        KernelImpl::Reference.potf2(&mut r).unwrap();
        KernelImpl::FastStrict.potf2(&mut f).unwrap();
        assert_eq!(r, f);
    }

    #[test]
    fn fused_engine_agrees_to_contraction_residual_on_f64_potf2() {
        let mut rng = spd::test_rng(43);
        let a = spd::random_spd(65, &mut rng);
        let mut r = a.clone();
        let mut f = a.clone();
        KernelImpl::Reference.potf2(&mut r).unwrap();
        KernelImpl::Fast.potf2(&mut f).unwrap();
        assert!(norms::max_abs_diff(&r, &f) <= 1e-11);
    }

    #[test]
    fn fast_engine_falls_back_for_f32() {
        let a = Matrix::<f32>::from_fn(5, 5, |i, j| if i == j { 6.0 } else { 1.0 });
        let mut r = a.clone();
        let mut f = a.clone();
        KernelImpl::Reference.potf2(&mut r).unwrap();
        KernelImpl::Fast.potf2(&mut f).unwrap();
        assert_eq!(r, f);
    }
}
