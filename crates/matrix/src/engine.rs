//! Kernel engine selection: reference oracle vs. the packed fast engine.
//!
//! Every substrate (sequential LAPACK schedule, recursive AP00, shared-
//! memory tiles, SPMD ranks, out-of-core tiles) does its arithmetic
//! through a [`KernelImpl`] value.  The selector dispatches per call:
//! [`KernelImpl::Fast`] and [`KernelImpl::FastStrict`] route `f64`
//! operands to [`crate::kernels_fast`] (FMA-contracted and
//! order-and-rounding-preserving respectively); every other scalar (and
//! [`KernelImpl::Reference`]) runs the verbatim oracle in
//! [`crate::kernels`].
//!
//! Two invariants, tested in `tests/cross_algorithm.rs` and
//! `tests/kernel_engine.rs`:
//!
//! * **counts**: the instrumented word/message counts are charged by the
//!   *schedules* (explicit `touch`/`bcast`/tile calls), so they are
//!   byte-identical under every engine;
//! * **bits**: [`KernelImpl::FastStrict`] is bit-identical to
//!   [`KernelImpl::Reference`] on every operation.  [`KernelImpl::Fast`]
//!   additionally lets hardware FMA contract multiply-add pairs — same
//!   per-element operation order, one rounding fewer per product — so
//!   it agrees to a contraction residual instead of exactly.

use std::any::TypeId;
use std::sync::OnceLock;

use crate::dense::Matrix;
use crate::error::MatrixError;
use crate::kernels;
use crate::kernels_fast;
use crate::scalar::Scalar;

/// Which arithmetic engine runs under a schedule.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub enum KernelImpl {
    /// The verbatim triple-loop oracle ([`crate::kernels`]).  Works for
    /// every [`Scalar`]; the baseline every optimisation is tested
    /// against.
    #[default]
    Reference,
    /// The packed, cache-blocked microkernels with FMA contraction
    /// ([`crate::kernels_fast::fused`]).  `f64` only — other scalars
    /// silently fall back to the reference oracle.
    Fast,
    /// The packed microkernels with reference rounding
    /// ([`crate::kernels_fast`]'s strict mode): bit-identical results,
    /// most of the speed.  `f64` only, like [`KernelImpl::Fast`].
    FastStrict,
}

impl KernelImpl {
    /// Read the engine from the `CHOLCOMM_KERNELS` environment variable
    /// (`fast` selects [`KernelImpl::Fast`], `fast-strict` selects
    /// [`KernelImpl::FastStrict`]; anything else, including an unset
    /// variable, selects [`KernelImpl::Reference`]).
    ///
    /// The variable is resolved **once per process** and cached: this
    /// sits on the dispatch path of every kernel call, and with the
    /// BLAS-3 level fanned across the work-stealing pool a mid-run
    /// `setenv` must not let concurrent workers observe *different*
    /// engines for one factorization (a bitwise-determinism hazard).
    /// Flipping `CHOLCOMM_KERNELS` after the first call is inert
    /// (asserted in `tests/env_kernel.rs`).
    pub fn from_env() -> Self {
        static ENV_ENGINE: OnceLock<KernelImpl> = OnceLock::new();
        *ENV_ENGINE.get_or_init(|| match std::env::var("CHOLCOMM_KERNELS") {
            Ok(v) if v.eq_ignore_ascii_case("fast") => KernelImpl::Fast,
            Ok(v) if v.eq_ignore_ascii_case("fast-strict") => KernelImpl::FastStrict,
            _ => KernelImpl::Reference,
        })
    }

    /// `true` when this engine actually dispatches scalar type `S` to the
    /// fast path.  Recursive schedules use this to decide whether a
    /// gather-to-tile detour at a base case buys anything: for
    /// non-`f64` scalars (or the reference engine) it never does.
    pub fn accelerates<S: Scalar>(self) -> bool {
        self != KernelImpl::Reference && TypeId::of::<S>() == TypeId::of::<f64>()
    }

    /// Stable lowercase name (used in bench JSON and logs).
    pub fn name(self) -> &'static str {
        match self {
            KernelImpl::Reference => "reference",
            KernelImpl::Fast => "fast",
            KernelImpl::FastStrict => "fast-strict",
        }
    }

    /// `C <- C + alpha * A * B` (see [`kernels::gemm_nn`]).
    pub fn gemm_nn<S: Scalar>(self, c: &mut Matrix<S>, alpha: S, a: &Matrix<S>, b: &Matrix<S>) {
        if self != KernelImpl::Reference {
            if let (Some(cf), Some(af), Some(bf), Some(alf)) =
                (as_f64_mut(c), as_f64(a), as_f64(b), scalar_to_f64(&alpha))
            {
                match self {
                    KernelImpl::Fast => kernels_fast::fused::gemm_nn(cf, alf, af, bf),
                    _ => kernels_fast::gemm_nn(cf, alf, af, bf),
                }
                return;
            }
        }
        kernels::gemm_nn(c, alpha, a, b);
    }

    /// `C <- C + alpha * A * B^T` (see [`kernels::gemm_nt`]).
    pub fn gemm_nt<S: Scalar>(self, c: &mut Matrix<S>, alpha: S, a: &Matrix<S>, b: &Matrix<S>) {
        if self != KernelImpl::Reference {
            if let (Some(cf), Some(af), Some(bf), Some(alf)) =
                (as_f64_mut(c), as_f64(a), as_f64(b), scalar_to_f64(&alpha))
            {
                match self {
                    KernelImpl::Fast => kernels_fast::fused::gemm_nt(cf, alf, af, bf),
                    _ => kernels_fast::gemm_nt(cf, alf, af, bf),
                }
                return;
            }
        }
        kernels::gemm_nt(c, alpha, a, b);
    }

    /// Lower-triangle `C <- C - A * A^T` (see [`kernels::syrk_lower`]).
    pub fn syrk_lower<S: Scalar>(self, c: &mut Matrix<S>, a: &Matrix<S>) {
        if self != KernelImpl::Reference {
            if let (Some(cf), Some(af)) = (as_f64_mut(c), as_f64(a)) {
                match self {
                    KernelImpl::Fast => kernels_fast::fused::syrk_lower(cf, af),
                    _ => kernels_fast::syrk_lower(cf, af),
                }
                return;
            }
        }
        kernels::syrk_lower(c, a);
    }

    /// `X <- B * L^{-T}` (see [`kernels::trsm_right_lower_transpose`]).
    pub fn trsm_right_lower_transpose<S: Scalar>(self, b: &mut Matrix<S>, l: &Matrix<S>) {
        if self != KernelImpl::Reference {
            if let (Some(bf), Some(lf)) = (as_f64_mut(b), as_f64(l)) {
                match self {
                    KernelImpl::Fast => kernels_fast::fused::trsm_right_lower_transpose(bf, lf),
                    _ => kernels_fast::trsm_right_lower_transpose(bf, lf),
                }
                return;
            }
        }
        kernels::trsm_right_lower_transpose(b, l);
    }

    /// In-place Cholesky of the lower triangle (see [`kernels::potf2`]).
    pub fn potf2<S: Scalar>(self, a: &mut Matrix<S>) -> Result<(), MatrixError> {
        if self != KernelImpl::Reference {
            if let Some(af) = as_f64_mut(a) {
                return match self {
                    KernelImpl::Fast => kernels_fast::fused::potf2(af),
                    _ => kernels_fast::potf2(af),
                };
            }
        }
        kernels::potf2(a)
    }
}

// The downcasts below reinterpret `Matrix<S>`/`S` as `Matrix<f64>`/`f64`
// behind a `TypeId` proof.  Pin `f64`'s layout at compile time so a
// hypothetical platform where the assumption breaks fails the build,
// not the cast.
const _: () = {
    assert!(std::mem::size_of::<f64>() == 8);
    assert!(std::mem::align_of::<f64>() == 8);
};

/// `&T` as `&U` iff `T` *is* `U` (same `TypeId`).  The identity check
/// makes the pointer cast trivially sound; layout equality is
/// re-asserted in debug builds as a belt-and-suspenders on the proof.
#[inline]
fn downcast_ref<T: 'static, U: 'static>(v: &T) -> Option<&U> {
    if TypeId::of::<T>() == TypeId::of::<U>() {
        debug_assert_eq!(std::mem::size_of::<T>(), std::mem::size_of::<U>());
        debug_assert_eq!(std::mem::align_of::<T>(), std::mem::align_of::<U>());
        // SAFETY: equal TypeIds of 'static types prove T == U, so this
        // is a no-op reference cast.
        Some(unsafe { &*(v as *const T as *const U) })
    } else {
        None
    }
}

/// `&mut T` as `&mut U` iff `T` *is* `U` (same `TypeId`).
#[inline]
fn downcast_mut<T: 'static, U: 'static>(v: &mut T) -> Option<&mut U> {
    if TypeId::of::<T>() == TypeId::of::<U>() {
        debug_assert_eq!(std::mem::size_of::<T>(), std::mem::size_of::<U>());
        debug_assert_eq!(std::mem::align_of::<T>(), std::mem::align_of::<U>());
        // SAFETY: equal TypeIds of 'static types prove T == U.
        Some(unsafe { &mut *(v as *mut T as *mut U) })
    } else {
        None
    }
}

#[inline]
fn as_f64<S: Scalar>(m: &Matrix<S>) -> Option<&Matrix<f64>> {
    downcast_ref::<Matrix<S>, Matrix<f64>>(m)
}

#[inline]
fn as_f64_mut<S: Scalar>(m: &mut Matrix<S>) -> Option<&mut Matrix<f64>> {
    downcast_mut::<Matrix<S>, Matrix<f64>>(m)
}

/// The scalar counterpart: `alpha` as `f64`, by value, `None` for any
/// other scalar — so the dispatchers below bail to the reference path
/// on *one* `if let` instead of a checked matrix cast plus an
/// unchecked scalar cast (the old shape of this code, where a buggy
/// caller could reach the scalar transmute without the `TypeId` proof).
#[inline]
fn scalar_to_f64<S: Scalar>(s: &S) -> Option<f64> {
    downcast_ref::<S, f64>(s).copied()
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::norms;
    use crate::spd;

    #[test]
    fn env_selector_defaults_to_reference() {
        // The test environment does not set CHOLCOMM_KERNELS.
        if std::env::var("CHOLCOMM_KERNELS").is_err() {
            assert_eq!(KernelImpl::from_env(), KernelImpl::Reference);
        }
        assert_eq!(KernelImpl::Reference.name(), "reference");
        assert_eq!(KernelImpl::Fast.name(), "fast");
        assert_eq!(KernelImpl::FastStrict.name(), "fast-strict");
    }

    #[test]
    fn strict_engine_agrees_bitwise_on_f64_potf2() {
        let mut rng = spd::test_rng(42);
        let a = spd::random_spd(33, &mut rng);
        let mut r = a.clone();
        let mut f = a.clone();
        KernelImpl::Reference.potf2(&mut r).unwrap();
        KernelImpl::FastStrict.potf2(&mut f).unwrap();
        assert_eq!(r, f);
    }

    #[test]
    fn fused_engine_agrees_to_contraction_residual_on_f64_potf2() {
        let mut rng = spd::test_rng(43);
        let a = spd::random_spd(65, &mut rng);
        let mut r = a.clone();
        let mut f = a.clone();
        KernelImpl::Reference.potf2(&mut r).unwrap();
        KernelImpl::Fast.potf2(&mut f).unwrap();
        assert!(norms::max_abs_diff(&r, &f) <= 1e-11);
    }

    #[test]
    fn fast_engine_falls_back_for_f32() {
        let a = Matrix::<f32>::from_fn(5, 5, |i, j| if i == j { 6.0 } else { 1.0 });
        let mut r = a.clone();
        let mut f = a.clone();
        KernelImpl::Reference.potf2(&mut r).unwrap();
        KernelImpl::Fast.potf2(&mut f).unwrap();
        assert_eq!(r, f);
    }

    #[test]
    fn non_f64_fallback_is_bit_identical_on_every_op() {
        // For f32 operands every engine must take the reference path,
        // so all three engines agree *bitwise* on all five ops.
        let a = Matrix::<f32>::from_fn(9, 7, |i, j| (i as f32 - 0.5) * (j as f32 + 0.25));
        let b = Matrix::<f32>::from_fn(7, 6, |i, j| 1.0 / (1.0 + i as f32 + j as f32));
        let bt = Matrix::<f32>::from_fn(6, 7, |i, j| (i * 7 + j) as f32 * 0.125 - 1.0);
        let mut l = Matrix::<f32>::from_fn(6, 6, |i, j| if i == j { 9.0 } else { 1.0 });
        KernelImpl::Reference.potf2(&mut l).unwrap();
        for engine in [KernelImpl::Fast, KernelImpl::FastStrict] {
            assert!(!engine.accelerates::<f32>());

            let mut c_ref = Matrix::<f32>::zeros(9, 6);
            let mut c_eng = c_ref.clone();
            KernelImpl::Reference.gemm_nn(&mut c_ref, 0.5f32, &a, &b);
            engine.gemm_nn(&mut c_eng, 0.5f32, &a, &b);
            assert_eq!(c_ref, c_eng, "{} gemm_nn", engine.name());

            let mut c_ref = Matrix::<f32>::zeros(9, 6);
            let mut c_eng = c_ref.clone();
            KernelImpl::Reference.gemm_nt(&mut c_ref, -1.0f32, &a, &bt);
            engine.gemm_nt(&mut c_eng, -1.0f32, &a, &bt);
            assert_eq!(c_ref, c_eng, "{} gemm_nt", engine.name());

            let mut s_ref = Matrix::<f32>::from_fn(9, 9, |i, j| (i + j) as f32);
            let mut s_eng = s_ref.clone();
            KernelImpl::Reference.syrk_lower(&mut s_ref, &a);
            engine.syrk_lower(&mut s_eng, &a);
            assert_eq!(s_ref, s_eng, "{} syrk_lower", engine.name());

            let mut x_ref = Matrix::<f32>::from_fn(4, 6, |i, j| (i + 2 * j) as f32);
            let mut x_eng = x_ref.clone();
            KernelImpl::Reference.trsm_right_lower_transpose(&mut x_ref, &l);
            engine.trsm_right_lower_transpose(&mut x_eng, &l);
            assert_eq!(x_ref, x_eng, "{} trsm", engine.name());
        }
    }

    #[test]
    fn downcast_helpers_respect_type_identity() {
        let m64 = Matrix::<f64>::identity(3);
        let m32 = Matrix::<f32>::identity(3);
        assert!(as_f64(&m64).is_some());
        assert!(as_f64(&m32).is_none());
        assert_eq!(scalar_to_f64(&2.5f64), Some(2.5));
        assert_eq!(scalar_to_f64(&2.5f32), None);
        let mut m64m = m64.clone();
        assert!(as_f64_mut(&mut m64m).is_some());
        let mut m32m = m32.clone();
        assert!(as_f64_mut(&mut m32m).is_none());
    }
}
