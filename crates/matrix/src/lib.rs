#![warn(missing_docs)]
//! # cholcomm-matrix
//!
//! Dense-matrix substrate for the `cholcomm` reproduction of
//! *Communication-Optimal Parallel and Sequential Cholesky Decomposition*
//! (Ballard, Demmel, Holtz, Schwartz — SPAA 2009).
//!
//! This crate provides everything the algorithm zoo sits on:
//!
//! * [`Scalar`] — the arithmetic abstraction shared by `f64`, `f32` and the
//!   paper's "starred" values (`0*`/`1*`, implemented in `cholcomm-starred`).
//!   The paper's Algorithm 1 runs an *unmodified* Cholesky routine over the
//!   extended value set, so every kernel here is generic over [`Scalar`].
//! * [`Matrix`] — a plain column-major dense matrix (the reference storage
//!   against which the exotic layouts of `cholcomm-layout` are validated).
//! * [`spd`] — generators for symmetric positive definite test and workload
//!   matrices (random Gram matrices, RBF kernel matrices, classic examples).
//! * [`kernels`] — reference BLAS-3-like kernels (`gemm`, `syrk`, `trsm`,
//!   unblocked `potf2`) written exactly from Equations (5)–(6) of the paper.
//! * [`kernels_fast`] — packed, cache-blocked, register-tiled `f64`
//!   microkernels, bit-identical to the reference kernels but running at
//!   hardware speed; selected through [`engine::KernelImpl`].
//! * [`parallel`] — per-thread gating and fan-out helpers that let the
//!   fast kernels drive the vendored-rayon work-stealing pool while
//!   keeping strict-mode results bit-identical at every thread count.
//! * [`tri`] — triangular solves and SPD system solution via the factor.
//! * [`norms`] — Frobenius norms and factorization residuals used by every
//!   correctness test in the workspace.

pub mod abft;
pub mod dense;
pub mod digest;
pub mod engine;
pub mod error;
pub mod kernels;
pub mod kernels_fast;
pub mod norms;
pub mod parallel;
pub mod scalar;
pub mod spd;
pub mod tri;

pub use abft::{verify_and_heal, AbftMatrix, AbftStats, TileChecksum, TileHealth};
pub use dense::Matrix;
pub use digest::{lower_digest, matrix_digest, slice_digest};
pub use engine::KernelImpl;
pub use error::MatrixError;
pub use kernels_fast::batch::{BatchMode, BatchPack};
pub use scalar::Scalar;
