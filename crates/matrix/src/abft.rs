//! Algorithm-based fault tolerance (ABFT) for tiled Cholesky, à la
//! Huang–Abraham: every tile carries a checksum row and a checksum
//! column, and a verification pass can *detect*, *locate*, and
//! *correct* a single corrupted element — or report that the tile needs
//! to be recomputed from a checkpoint when more than one element went
//! bad.
//!
//! # Why GF(2) checksums
//!
//! The classic Huang–Abraham encoding sums real values, which detects
//! and locates an error but cannot restore the original *bits*: the
//! correction `x - (colsum' - colsum)` re-rounds.  This workspace's
//! fault-tolerance contract is **bit-identical recovery** (the same
//! contract the reliable transport and checkpoint/restart layers honour),
//! so the checksum row/column here is taken over GF(2): each entry is
//! the XOR of the `f64` bit patterns along its column (respectively
//! row).  A single corrupted element `(i, j)` then shows up as exactly
//! one mismatched column parity `j` and one mismatched row parity `i`,
//! both equal to the *flip mask* — XORing the mask back into the element
//! restores the original word exactly.  The communication/storage cost
//! is identical to the real-valued encoding: one extra row plus one
//! extra column of words per tile, `r + c` words for an `r x c` tile.
//!
//! Detection is sound for any corruption of a single element (any set of
//! flipped bits within one word).  Corruption of several elements is
//! detected (some parity mismatches) but not correctable from one
//! checksum pair; [`verify_and_heal`] reports
//! [`TileHealth::Unrecoverable`] and the caller falls back to its
//! checkpoint.  The one blind spot, as with any linear code, is a
//! *coordinated* multi-element corruption whose masks cancel in both
//! projections — vanishingly unlikely for independent soft errors.

use crate::dense::Matrix;
use std::collections::HashMap;

/// GF(2) checksum row and column of one tile: `col[j]` is the XOR of the
/// bit patterns of column `j`, `row[i]` the XOR along row `i`.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct TileChecksum {
    col: Vec<u64>,
    row: Vec<u64>,
}

impl TileChecksum {
    /// Encode `tile`.
    pub fn of(tile: &Matrix<f64>) -> TileChecksum {
        let (r, c) = (tile.rows(), tile.cols());
        let mut col = vec![0u64; c];
        let mut row = vec![0u64; r];
        for j in 0..c {
            for i in 0..r {
                let bits = tile[(i, j)].to_bits();
                col[j] ^= bits;
                row[i] ^= bits;
            }
        }
        TileChecksum { col, row }
    }

    /// Words of checksum state this encoding adds (`rows + cols`), i.e.
    /// the size of the Huang–Abraham checksum row plus checksum column.
    pub fn words(&self) -> u64 {
        (self.col.len() + self.row.len()) as u64
    }
}

/// Verdict of one tile verification.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum TileHealth {
    /// Every parity matched.
    Clean,
    /// Exactly one element was corrupted; it has been located and
    /// corrected in place, restoring the original bits.
    Corrected {
        /// Row of the corrupted element within the tile.
        row: usize,
        /// Column of the corrupted element within the tile.
        col: usize,
    },
    /// More than one element is corrupted (or the corruption pattern is
    /// inconsistent); the tile must be recomputed from a checkpoint.
    Unrecoverable {
        /// Number of row parities that mismatched.
        bad_rows: usize,
        /// Number of column parities that mismatched.
        bad_cols: usize,
    },
}

/// Verify `tile` against `expected` and correct a single-element
/// corruption in place.
///
/// Returns [`TileHealth::Corrected`] with the element's location when
/// exactly one row parity and one column parity mismatch *and* their
/// mismatch masks agree (the signature of a single corrupted word);
/// the element is repaired to its original bit pattern.  Any other
/// nonempty mismatch pattern is [`TileHealth::Unrecoverable`].
pub fn verify_and_heal(tile: &mut Matrix<f64>, expected: &TileChecksum) -> TileHealth {
    let current = TileChecksum::of(tile);
    let bad_cols: Vec<usize> = (0..current.col.len())
        .filter(|&j| current.col[j] != expected.col[j])
        .collect();
    let bad_rows: Vec<usize> = (0..current.row.len())
        .filter(|&i| current.row[i] != expected.row[i])
        .collect();
    match (bad_rows.as_slice(), bad_cols.as_slice()) {
        ([], []) => TileHealth::Clean,
        (&[i], &[j]) => {
            let col_mask = current.col[j] ^ expected.col[j];
            let row_mask = current.row[i] ^ expected.row[i];
            if col_mask != row_mask {
                return TileHealth::Unrecoverable {
                    bad_rows: 1,
                    bad_cols: 1,
                };
            }
            tile[(i, j)] = f64::from_bits(tile[(i, j)].to_bits() ^ col_mask);
            TileHealth::Corrected { row: i, col: j }
        }
        (r, c) => TileHealth::Unrecoverable {
            bad_rows: r.len(),
            bad_cols: c.len(),
        },
    }
}

/// Tallies of ABFT work, kept strictly apart from the algorithm's own
/// (clean) word/message/flop counts so the *cost of resilience* can be
/// reported against the paper's lower bounds.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct AbftStats {
    /// Tiles encoded from scratch.
    pub encodes: u64,
    /// Checksum recomputations after a tile mutation.
    pub checksum_updates: u64,
    /// Tile verifications performed.
    pub verifications: u64,
    /// Single-element corruptions located and corrected.
    pub corrections: u64,
    /// Multi-element corruptions that could not be corrected in place.
    pub unrecoverable: u64,
    /// Tiles restored from a checkpoint/snapshot (the fallback path).
    pub restores: u64,
    /// Words of checksum state produced (the extra "checksum row/column"
    /// traffic the clean algorithm never carries).
    pub checksum_words: u64,
    /// Words of checkpoint traffic attributable to ABFT recovery
    /// (snapshot writes and restores of tile payloads).
    pub checkpoint_words: u64,
    /// Word-operations spent computing or verifying checksums (the flop
    /// overhead of the encoding; one XOR per element per pass).
    pub checksum_flops: u64,
}

impl AbftStats {
    /// Fresh, all-zero counters.
    pub fn new() -> Self {
        Self::default()
    }

    /// Accumulate `other` into `self`.
    pub fn merge(&mut self, other: &AbftStats) {
        self.encodes += other.encodes;
        self.checksum_updates += other.checksum_updates;
        self.verifications += other.verifications;
        self.corrections += other.corrections;
        self.unrecoverable += other.unrecoverable;
        self.restores += other.restores;
        self.checksum_words += other.checksum_words;
        self.checkpoint_words += other.checkpoint_words;
        self.checksum_flops += other.checksum_flops;
    }

    /// Word overhead factor of ABFT relative to `clean_words` of
    /// algorithmic traffic: `1 + (checksum + checkpoint words) / clean`.
    pub fn word_overhead(&self, clean_words: u64) -> f64 {
        if clean_words == 0 {
            return 1.0;
        }
        1.0 + (self.checksum_words + self.checkpoint_words) as f64 / clean_words as f64
    }
}

impl std::fmt::Display for AbftStats {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(
            f,
            "abft: {} encodes, {} updates, {} verifications, {} corrected, {} unrecoverable, \
             {} restores; {} checksum words, {} checkpoint words, {} checksum flops",
            self.encodes,
            self.checksum_updates,
            self.verifications,
            self.corrections,
            self.unrecoverable,
            self.restores,
            self.checksum_words,
            self.checkpoint_words,
            self.checksum_flops
        )
    }
}

/// A dense matrix augmented with per-tile Huang–Abraham checksums: the
/// in-memory substrate of the ABFT factorization paths.
///
/// Tiles are `b x b` (ragged at the right/bottom edges) over the full
/// matrix.  Mutations go through [`update_tile`](Self::update_tile),
/// which re-encodes the tile's checksums; [`verify_tile`](Self::verify_tile)
/// checks a tile against its stored checksums and corrects a
/// single-element corruption in place.  [`flip_bits`](Self::flip_bits)
/// injects a silent data corruption *without* touching the checksums —
/// exactly what a cosmic-ray bit flip does to DRAM.
#[derive(Debug, Clone)]
pub struct AbftMatrix {
    m: Matrix<f64>,
    b: usize,
    nb: usize,
    cks: HashMap<(usize, usize), TileChecksum>,
    stats: AbftStats,
}

impl AbftMatrix {
    /// Encode `a` with tile size `b`.
    pub fn encode(a: &Matrix<f64>, b: usize) -> AbftMatrix {
        assert!(b > 0, "tile size must be positive");
        assert!(a.is_square(), "ABFT path factors square matrices");
        let n = a.rows();
        let nb = n.div_ceil(b);
        let mut am = AbftMatrix {
            m: a.clone(),
            b,
            nb,
            cks: HashMap::new(),
            stats: AbftStats::new(),
        };
        for bi in 0..nb {
            for bj in 0..nb {
                let t = am.tile(bi, bj);
                let ck = TileChecksum::of(&t);
                am.stats.encodes += 1;
                am.stats.checksum_words += ck.words();
                am.stats.checksum_flops += (t.rows() * t.cols()) as u64;
                am.cks.insert((bi, bj), ck);
            }
        }
        am
    }

    /// Matrix order.
    pub fn n(&self) -> usize {
        self.m.rows()
    }

    /// Tile size.
    pub fn b(&self) -> usize {
        self.b
    }

    /// Tile-grid dimension.
    pub fn nb(&self) -> usize {
        self.nb
    }

    /// Height/width of tile `(bi, bj)` (ragged at the edges).
    pub fn tile_dims(&self, bi: usize, bj: usize) -> (usize, usize) {
        let n = self.n();
        ((n - bi * self.b).min(self.b), (n - bj * self.b).min(self.b))
    }

    /// Copy of tile `(bi, bj)`.
    pub fn tile(&self, bi: usize, bj: usize) -> Matrix<f64> {
        let (h, w) = self.tile_dims(bi, bj);
        self.m.submatrix(bi * self.b, bj * self.b, h, w)
    }

    /// Overwrite tile `(bi, bj)` and re-encode its checksums.
    pub fn update_tile(&mut self, bi: usize, bj: usize, tile: &Matrix<f64>) {
        let (h, w) = self.tile_dims(bi, bj);
        assert_eq!((tile.rows(), tile.cols()), (h, w), "tile shape mismatch");
        self.m.set_submatrix(bi * self.b, bj * self.b, tile);
        let ck = TileChecksum::of(tile);
        self.stats.checksum_updates += 1;
        self.stats.checksum_words += ck.words();
        self.stats.checksum_flops += (h * w) as u64;
        self.cks.insert((bi, bj), ck);
    }

    /// Verify tile `(bi, bj)` against its stored checksums, correcting a
    /// single corrupted element in place.
    pub fn verify_tile(&mut self, bi: usize, bj: usize) -> TileHealth {
        let mut t = self.tile(bi, bj);
        let ck = self.cks.get(&(bi, bj)).expect("tile grid fully encoded");
        self.stats.verifications += 1;
        self.stats.checksum_flops += (t.rows() * t.cols()) as u64;
        let health = verify_and_heal(&mut t, ck);
        match health {
            TileHealth::Clean => {}
            TileHealth::Corrected { .. } => {
                self.stats.corrections += 1;
                self.m.set_submatrix(bi * self.b, bj * self.b, &t);
            }
            TileHealth::Unrecoverable { .. } => {
                self.stats.unrecoverable += 1;
            }
        }
        health
    }

    /// Restore tile `(bi, bj)` (data and checksum) from `snapshot` — the
    /// recompute-from-checkpoint fallback for multi-element corruption.
    /// Checkpoint traffic (the tile payload) is charged to
    /// [`AbftStats::checkpoint_words`].
    pub fn restore_tile_from(&mut self, snapshot: &AbftMatrix, bi: usize, bj: usize) {
        let t = snapshot.tile(bi, bj);
        self.stats.checkpoint_words += (t.rows() * t.cols()) as u64;
        self.m.set_submatrix(bi * self.b, bj * self.b, &t);
        let ck = snapshot.cks.get(&(bi, bj)).expect("snapshot fully encoded").clone();
        self.cks.insert((bi, bj), ck);
        self.stats.restores += 1;
    }

    /// Inject a silent corruption: XOR `mask` into the bits of element
    /// `(i, j)` of tile `(bi, bj)` *without* updating the checksums.
    pub fn flip_bits(&mut self, bi: usize, bj: usize, elem: (usize, usize), mask: u64) {
        let (h, w) = self.tile_dims(bi, bj);
        assert!(elem.0 < h && elem.1 < w, "flip target outside the tile");
        let (gi, gj) = (bi * self.b + elem.0, bj * self.b + elem.1);
        self.m[(gi, gj)] = f64::from_bits(self.m[(gi, gj)].to_bits() ^ mask);
    }

    /// The underlying matrix (upper triangle included, as stored).
    pub fn matrix(&self) -> &Matrix<f64> {
        &self.m
    }

    /// Consume into the underlying matrix.
    pub fn into_matrix(self) -> Matrix<f64> {
        self.m
    }

    /// ABFT work tallies accumulated so far.
    pub fn stats(&self) -> AbftStats {
        self.stats
    }

    /// Merge external ABFT tallies (e.g. from a snapshot clone) into
    /// this matrix's counters.
    pub fn add_stats(&mut self, other: &AbftStats) {
        self.stats.merge(other);
    }
}

#[cfg(test)]
#[allow(clippy::unwrap_used)]
mod tests {
    use super::*;
    use crate::spd;

    fn sample_tile(r: usize, c: usize) -> Matrix<f64> {
        Matrix::from_fn(r, c, |i, j| ((i * 7 + j * 3) as f64).sin() + 0.25)
    }

    #[test]
    fn clean_tile_verifies_clean() {
        let t = sample_tile(6, 6);
        let ck = TileChecksum::of(&t);
        let mut t2 = t.clone();
        assert_eq!(verify_and_heal(&mut t2, &ck), TileHealth::Clean);
        assert_eq!(t, t2);
        assert_eq!(ck.words(), 12);
    }

    #[test]
    fn single_flip_is_located_and_corrected_bit_exactly() {
        let t = sample_tile(5, 7);
        let ck = TileChecksum::of(&t);
        for &(i, j, mask) in &[
            (0usize, 0usize, 1u64),
            (4, 6, 1u64 << 63),
            (2, 3, 0x0008_0000_0010_0001),
            (3, 1, u64::MAX),
        ] {
            let mut bad = t.clone();
            bad[(i, j)] = f64::from_bits(bad[(i, j)].to_bits() ^ mask);
            let health = verify_and_heal(&mut bad, &ck);
            assert_eq!(health, TileHealth::Corrected { row: i, col: j });
            // Bit-identical restoration, even through NaN patterns.
            for jj in 0..t.cols() {
                for ii in 0..t.rows() {
                    assert_eq!(bad[(ii, jj)].to_bits(), t[(ii, jj)].to_bits());
                }
            }
        }
    }

    #[test]
    fn multi_element_corruption_is_flagged_not_mended() {
        let t = sample_tile(6, 6);
        let ck = TileChecksum::of(&t);
        // Two distinct elements, different rows and columns.
        let mut bad = t.clone();
        bad[(1, 2)] = f64::from_bits(bad[(1, 2)].to_bits() ^ 0b100);
        bad[(4, 5)] = f64::from_bits(bad[(4, 5)].to_bits() ^ 0b1000);
        assert!(matches!(
            verify_and_heal(&mut bad, &ck),
            TileHealth::Unrecoverable { bad_rows: 2, bad_cols: 2 }
        ));
        // Same row, two columns.
        let mut bad = t.clone();
        bad[(2, 0)] = f64::from_bits(bad[(2, 0)].to_bits() ^ 0b1);
        bad[(2, 3)] = f64::from_bits(bad[(2, 3)].to_bits() ^ 0b10);
        assert!(matches!(
            verify_and_heal(&mut bad, &ck),
            TileHealth::Unrecoverable { .. }
        ));
        // Same row and column masks but different elements of one
        // column: row parities disagree.
        let mut bad = t.clone();
        bad[(0, 4)] = f64::from_bits(bad[(0, 4)].to_bits() ^ 0b1);
        bad[(3, 4)] = f64::from_bits(bad[(3, 4)].to_bits() ^ 0b1);
        assert!(matches!(
            verify_and_heal(&mut bad, &ck),
            TileHealth::Unrecoverable { .. }
        ));
    }

    #[test]
    fn abft_matrix_roundtrip_and_heal() {
        let mut rng = spd::test_rng(33);
        let a = spd::random_spd(20, &mut rng); // ragged: 20 with b=6
        let mut am = AbftMatrix::encode(&a, 6);
        assert_eq!(am.nb(), 4);
        assert_eq!(am.tile_dims(3, 3), (2, 2));

        // Corrupt one element of a ragged edge tile; verify heals it.
        am.flip_bits(3, 1, (1, 4), 1 << 40);
        assert!(matches!(
            am.verify_tile(3, 1),
            TileHealth::Corrected { row: 1, col: 4 }
        ));
        assert_eq!(crate::norms::max_abs_diff(am.matrix(), &a), 0.0);

        // Update a tile; stats track the checksum row/column words.
        let t = am.tile(0, 0);
        am.update_tile(0, 0, &t);
        let s = am.stats();
        assert_eq!(s.encodes, 16);
        assert_eq!(s.checksum_updates, 1);
        assert_eq!(s.corrections, 1);
        assert!(s.checksum_words > 0 && s.checksum_flops > 0);
    }

    #[test]
    fn restore_from_snapshot_is_the_multi_error_fallback() {
        let mut rng = spd::test_rng(34);
        let a = spd::random_spd(12, &mut rng);
        let mut am = AbftMatrix::encode(&a, 4);
        let snapshot = am.clone();
        am.flip_bits(1, 1, (0, 0), 0b1);
        am.flip_bits(1, 1, (2, 3), 0b1);
        assert!(matches!(am.verify_tile(1, 1), TileHealth::Unrecoverable { .. }));
        am.restore_tile_from(&snapshot, 1, 1);
        assert!(matches!(am.verify_tile(1, 1), TileHealth::Clean));
        assert_eq!(crate::norms::max_abs_diff(am.matrix(), &a), 0.0);
        assert_eq!(am.stats().restores, 1);
        assert!(am.stats().checkpoint_words >= 16);
    }

    #[test]
    fn stats_merge_and_overhead() {
        let mut s = AbftStats {
            checksum_words: 100,
            ..Default::default()
        };
        s.merge(&AbftStats {
            checkpoint_words: 100,
            corrections: 2,
            ..Default::default()
        });
        assert_eq!(s.word_overhead(1000), 1.2);
        assert_eq!(s.word_overhead(0), 1.0);
        assert_eq!(s.corrections, 2);
    }
}
