//! Column-major dense matrix.
//!
//! This is the *reference* storage format of the workspace ("Full" in
//! Figure 2 of the paper).  The communication-exotic formats (blocked,
//! Morton-recursive, packed, ...) live in `cholcomm-layout`; everything is
//! validated against this type.

use crate::error::MatrixError;
use crate::scalar::Scalar;
use std::fmt;
use std::ops::{Index, IndexMut};

/// Column-major dense matrix over a [`Scalar`] type.
///
/// Element `(i, j)` (row `i`, column `j`, both 0-based) lives at linear
/// index `i + j * rows`, i.e. columns are contiguous — the layout assumed
/// by the paper's "column-major" algorithm analyses.
#[derive(Clone, PartialEq)]
pub struct Matrix<S> {
    data: Vec<S>,
    rows: usize,
    cols: usize,
}

impl<S: Scalar> Matrix<S> {
    /// Validate that an `rows x cols` matrix of `S` is addressable,
    /// returning its element count.  Rejects shapes whose element count
    /// overflows `usize` or whose byte size overflows `isize` (the
    /// allocator's hard limit) with a typed [`MatrixError::TooLarge`]
    /// instead of the capacity panic `vec![]` would raise — admission
    /// layers shed these, they must not crash a worker.
    pub fn checked_len(rows: usize, cols: usize) -> Result<usize, MatrixError> {
        let too_large = MatrixError::TooLarge { rows, cols };
        let len = rows.checked_mul(cols).ok_or_else(|| too_large.clone())?;
        let bytes = len.checked_mul(std::mem::size_of::<S>()).ok_or(too_large.clone())?;
        if isize::try_from(bytes).is_err() {
            return Err(too_large);
        }
        Ok(len)
    }

    /// An `rows x cols` matrix of zeros, or [`MatrixError::TooLarge`]
    /// when the shape is not addressable.
    pub fn try_zeros(rows: usize, cols: usize) -> Result<Self, MatrixError> {
        let len = Self::checked_len(rows, cols)?;
        Ok(Matrix {
            data: vec![S::zero(); len],
            rows,
            cols,
        })
    }

    /// An `rows x cols` matrix of zeros.
    pub fn zeros(rows: usize, cols: usize) -> Self {
        match Self::try_zeros(rows, cols) {
            Ok(m) => m,
            Err(e) => panic!("Matrix::zeros: {e}"),
        }
    }

    /// The `n x n` identity matrix.
    pub fn identity(n: usize) -> Self {
        let mut m = Self::zeros(n, n);
        for i in 0..n {
            m[(i, i)] = S::one();
        }
        m
    }

    /// Build a matrix from a function of `(row, col)`.
    pub fn from_fn(rows: usize, cols: usize, mut f: impl FnMut(usize, usize) -> S) -> Self {
        let len = match Self::checked_len(rows, cols) {
            Ok(len) => len,
            Err(e) => panic!("Matrix::from_fn: {e}"),
        };
        let mut data = Vec::with_capacity(len);
        for j in 0..cols {
            for i in 0..rows {
                data.push(f(i, j));
            }
        }
        Matrix { data, rows, cols }
    }

    /// Build from a row-major slice of length `rows * cols` (convenient for
    /// literal test matrices).
    pub fn from_rows(rows: usize, cols: usize, entries: &[S]) -> Self {
        assert_eq!(entries.len(), rows * cols, "entry count mismatch");
        Self::from_fn(rows, cols, |i, j| entries[i * cols + j])
    }

    /// Number of rows.
    #[inline]
    pub fn rows(&self) -> usize {
        self.rows
    }

    /// Number of columns.
    #[inline]
    pub fn cols(&self) -> usize {
        self.cols
    }

    /// `true` for a square matrix.
    #[inline]
    pub fn is_square(&self) -> bool {
        self.rows == self.cols
    }

    /// Borrow the underlying column-major storage.
    #[inline]
    pub fn as_slice(&self) -> &[S] {
        &self.data
    }

    /// Mutably borrow the underlying column-major storage.
    #[inline]
    pub fn as_mut_slice(&mut self) -> &mut [S] {
        &mut self.data
    }

    /// Linear (column-major) index of `(i, j)`.
    #[inline]
    pub fn lin(&self, i: usize, j: usize) -> usize {
        debug_assert!(i < self.rows && j < self.cols);
        i + j * self.rows
    }

    /// Column `j` as a contiguous slice (columns are contiguous in
    /// column-major storage).  The hot-path alternative to per-element
    /// `Index`, which pays a bounds check on every access.
    #[inline]
    pub fn col(&self, j: usize) -> &[S] {
        let r = self.rows;
        &self.data[j * r..(j + 1) * r]
    }

    /// Column `j` as a mutable contiguous slice.
    #[inline]
    pub fn col_mut(&mut self, j: usize) -> &mut [S] {
        let r = self.rows;
        &mut self.data[j * r..(j + 1) * r]
    }

    /// Split the storage at column `j`: the first slice holds columns
    /// `0..j`, the second columns `j..cols`, both contiguous column-major.
    /// Lets a kernel hold column `j` mutably while reading the already
    /// finished columns to its left (the shape of every left-looking
    /// update in the paper).
    #[inline]
    pub fn split_cols_mut(&mut self, j: usize) -> (&mut [S], &mut [S]) {
        let r = self.rows;
        self.data.split_at_mut(j * r)
    }

    /// Transpose into a new matrix.
    pub fn transpose(&self) -> Self {
        Self::from_fn(self.cols, self.rows, |i, j| self[(j, i)])
    }

    /// Copy of the `h x w` submatrix whose top-left corner is `(i0, j0)`.
    pub fn submatrix(&self, i0: usize, j0: usize, h: usize, w: usize) -> Self {
        assert!(i0 + h <= self.rows && j0 + w <= self.cols, "submatrix out of range");
        Self::from_fn(h, w, |i, j| self[(i0 + i, j0 + j)])
    }

    /// Overwrite the `h x w` region at `(i0, j0)` with `block`.
    pub fn set_submatrix(&mut self, i0: usize, j0: usize, block: &Matrix<S>) {
        assert!(
            i0 + block.rows <= self.rows && j0 + block.cols <= self.cols,
            "set_submatrix out of range"
        );
        for j in 0..block.cols {
            for i in 0..block.rows {
                self[(i0 + i, j0 + j)] = block[(i, j)];
            }
        }
    }

    /// Zero the strictly upper triangle, producing the lower-triangular
    /// matrix that Cholesky routines leave in place ("only half of the
    /// matrix is referenced or overwritten").
    pub fn lower_triangle(&self) -> Result<Self, MatrixError> {
        if !self.is_square() {
            return Err(MatrixError::NotSquare {
                rows: self.rows,
                cols: self.cols,
            });
        }
        Ok(Self::from_fn(self.rows, self.cols, |i, j| {
            if i >= j {
                self[(i, j)]
            } else {
                S::zero()
            }
        }))
    }

    /// Symmetrize the lower triangle into the upper: `A[i,j] = A[j,i]` for
    /// `i < j`.  Used by generators that fill only one half.
    pub fn mirror_lower(&mut self) {
        assert!(self.is_square());
        for j in 0..self.cols {
            for i in 0..j {
                self[(i, j)] = self[(j, i)];
            }
        }
    }

    /// `true` if the matrix equals its transpose exactly.
    pub fn is_symmetric(&self) -> bool {
        if !self.is_square() {
            return false;
        }
        for j in 0..self.cols {
            for i in 0..j {
                if self[(i, j)] != self[(j, i)] {
                    return false;
                }
            }
        }
        true
    }

    /// Apply `f` to every element in place.
    pub fn map_inplace(&mut self, mut f: impl FnMut(S) -> S) {
        for v in &mut self.data {
            *v = f(*v);
        }
    }
}

impl<S: Scalar> Index<(usize, usize)> for Matrix<S> {
    type Output = S;
    #[inline]
    fn index(&self, (i, j): (usize, usize)) -> &S {
        &self.data[i + j * self.rows]
    }
}

impl<S: Scalar> IndexMut<(usize, usize)> for Matrix<S> {
    #[inline]
    fn index_mut(&mut self, (i, j): (usize, usize)) -> &mut S {
        &mut self.data[i + j * self.rows]
    }
}

impl<S: Scalar> fmt::Debug for Matrix<S> {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        writeln!(f, "Matrix {}x{} [", self.rows, self.cols)?;
        for i in 0..self.rows.min(8) {
            write!(f, "  ")?;
            for j in 0..self.cols.min(8) {
                write!(f, "{:?} ", self[(i, j)])?;
            }
            if self.cols > 8 {
                write!(f, "...")?;
            }
            writeln!(f)?;
        }
        if self.rows > 8 {
            writeln!(f, "  ...")?;
        }
        write!(f, "]")
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn zeros_and_identity() {
        let z = Matrix::<f64>::zeros(3, 4);
        assert_eq!(z.rows(), 3);
        assert_eq!(z.cols(), 4);
        assert!(z.as_slice().iter().all(|&v| v == 0.0));
        let id = Matrix::<f64>::identity(3);
        for i in 0..3 {
            for j in 0..3 {
                assert_eq!(id[(i, j)], if i == j { 1.0 } else { 0.0 });
            }
        }
    }

    #[test]
    fn oversized_shapes_are_typed_errors_not_panics() {
        // Element count itself overflows usize.
        assert_eq!(
            Matrix::<f64>::try_zeros(usize::MAX, 2).unwrap_err(),
            MatrixError::TooLarge { rows: usize::MAX, cols: 2 }
        );
        // Element count fits but the byte size cannot: usize::MAX / 16
        // squared elements of 8 bytes each.
        let side = 1usize << (usize::BITS / 2 - 1);
        assert_eq!(
            Matrix::<f64>::try_zeros(side, side).unwrap_err(),
            MatrixError::TooLarge { rows: side, cols: side }
        );
        assert_eq!(Matrix::<f64>::checked_len(3, 4), Ok(12));
        assert_eq!(Matrix::<f64>::checked_len(0, usize::MAX), Ok(0));
    }

    #[test]
    fn column_major_linearization() {
        let m = Matrix::<f64>::from_fn(3, 2, |i, j| (i * 10 + j) as f64);
        // Column 0 then column 1, each column contiguous.
        assert_eq!(m.as_slice(), &[0.0, 10.0, 20.0, 1.0, 11.0, 21.0]);
        assert_eq!(m.lin(2, 1), 5);
    }

    #[test]
    fn from_rows_matches_index() {
        let m = Matrix::from_rows(2, 3, &[1.0, 2.0, 3.0, 4.0, 5.0, 6.0]);
        assert_eq!(m[(0, 0)], 1.0);
        assert_eq!(m[(0, 2)], 3.0);
        assert_eq!(m[(1, 0)], 4.0);
        assert_eq!(m[(1, 2)], 6.0);
    }

    #[test]
    fn transpose_roundtrip() {
        let m = Matrix::<f64>::from_fn(4, 3, |i, j| (i + 7 * j) as f64);
        let t = m.transpose();
        assert_eq!(t.rows(), 3);
        assert_eq!(t.cols(), 4);
        assert_eq!(t.transpose(), m);
    }

    #[test]
    fn submatrix_and_set_submatrix() {
        let mut m = Matrix::<f64>::from_fn(4, 4, |i, j| (10 * i + j) as f64);
        let b = m.submatrix(1, 2, 2, 2);
        assert_eq!(b[(0, 0)], 12.0);
        assert_eq!(b[(1, 1)], 23.0);
        let patch = Matrix::<f64>::from_fn(2, 2, |_, _| -1.0);
        m.set_submatrix(2, 0, &patch);
        assert_eq!(m[(2, 0)], -1.0);
        assert_eq!(m[(3, 1)], -1.0);
        assert_eq!(m[(1, 0)], 10.0);
    }

    #[test]
    fn lower_triangle_zeroes_upper() {
        let m = Matrix::<f64>::from_fn(3, 3, |_, _| 5.0);
        let l = m.lower_triangle().unwrap();
        assert_eq!(l[(0, 1)], 0.0);
        assert_eq!(l[(0, 2)], 0.0);
        assert_eq!(l[(1, 2)], 0.0);
        assert_eq!(l[(2, 0)], 5.0);
    }

    #[test]
    fn lower_triangle_requires_square() {
        let m = Matrix::<f64>::zeros(2, 3);
        assert_eq!(
            m.lower_triangle().unwrap_err(),
            MatrixError::NotSquare { rows: 2, cols: 3 }
        );
    }

    #[test]
    fn mirror_and_symmetry() {
        let mut m = Matrix::<f64>::from_fn(3, 3, |i, j| if i >= j { (i + j) as f64 } else { 99.0 });
        assert!(!m.is_symmetric());
        m.mirror_lower();
        assert!(m.is_symmetric());
        assert_eq!(m[(0, 2)], 2.0);
    }

    #[test]
    fn map_inplace_applies_everywhere() {
        let mut m = Matrix::<f64>::from_fn(2, 2, |i, j| (i + j) as f64);
        m.map_inplace(|v| v * 2.0);
        assert_eq!(m[(1, 1)], 4.0);
    }
}
