//! Packed, cache-blocked, register-tiled `f64` BLAS-3 kernels — the
//! "fast engine" behind [`crate::engine::KernelImpl::Fast`] and
//! [`crate::engine::KernelImpl::FastStrict`].
//!
//! The reference kernels in [`crate::kernels`] are deliberately verbatim
//! triple loops; these are the same *operations in the same per-element
//! order* restructured the way a Goto/BLIS-style GEMM restructures them:
//!
//! * operands are **packed** into contiguous buffers sized to the block
//!   parameters ([`MC`]`x`[`KC`] panels of `A` in strips of [`MR`] rows,
//!   [`KC`]`x`[`NC`] panels of `B` in strips of [`NR`] columns), so the
//!   innermost loop streams two linear arrays with no strides and no
//!   per-element bounds checks;
//! * the innermost loop computes an [`MR`]`x`[`NR`] **register tile** of
//!   `C`: hand-written AVX-512 intrinsics keep all accumulators in
//!   vector registers (LLVM spills the generic tile body to memory),
//!   with a portable generic fallback; the variant is selected by
//!   runtime feature detection.
//!
//! The engine has two numeric modes sharing all of this machinery:
//!
//! * **strict** (the module-level functions, [`KernelImpl::FastStrict`]):
//!   every multiply and add is an individually rounded IEEE-754
//!   operation (vectors widen the loop, FMA contraction is never
//!   enabled), and each `C` element accumulates its `k`-contributions in
//!   ascending order with the identical `c + a * (alpha * b)` sequence
//!   of the reference kernel — so every result is **bit-identical** to
//!   its reference counterpart (property-tested in
//!   `tests/kernel_engine.rs`).
//! * **fused** (the [`fused`] submodule, [`KernelImpl::Fast`]): the same
//!   loops with `mul_add`, letting hardware FMA contract `a*b + c` into
//!   one rounding.  The per-element operation *order* is unchanged —
//!   only the intermediate product's rounding is skipped — so the result
//!   differs from the reference by a normwise-tiny contraction residual
//!   (and is, if anything, more accurate).  On hardware without FMA the
//!   fused mode falls back to the strict kernels and is then exactly
//!   bit-identical too.
//!
//! **Parallelism.**  Large operations fan their macro-tile grids onto
//! the vendored-rayon work-stealing pool (see [`crate::parallel`] for
//! the gating): the `k` (depth) loop stays sequential and ascending
//! while the disjoint `(MC row-block, column-chunk)` tiles of `C` run
//! as stolen tasks, each packing its own operands into its *worker's*
//! thread-local scratch.  Because every `C` element still accumulates
//! its `k`-contributions in exactly the sequential order inside exactly
//! one task per depth step, the strict mode stays bit-identical to the
//! reference at **every** thread count and under **every** steal order;
//! the fused mode is equally partition-independent (its only deviation
//! from strict is per-operation FMA contraction, which does not care
//! which worker runs the tile).  The in-panel TRSM substitutions
//! parallelise over row chunks — rows of a right-solve are mutually
//! independent — with the same per-element order argument.
//!
//! Only `f64` is provided: the starred scalars of the paper's reduction
//! run through the reference kernels (their arithmetic is branchy and
//! never the wall-clock bottleneck).
//!
//! [`KernelImpl::Fast`]: crate::engine::KernelImpl::Fast
//! [`KernelImpl::FastStrict`]: crate::engine::KernelImpl::FastStrict

use crate::dense::Matrix;
use crate::error::MatrixError;

/// Register-tile rows (`C` micro-tile height; two AVX-512 vectors).
pub const MR: usize = 16;
/// Register-tile columns (`C` micro-tile width).
pub const NR: usize = 8;
/// Rows of the packed `A` block (`A` panel cache-resident in L2).
pub const MC: usize = 128;
/// Depth of the packed `A`/`B` blocks (the `k` extent per pass).
pub const KC: usize = 256;
/// Columns of the packed `B` block.
pub const NC: usize = 512;
/// Panel width of the blocked TRSM/POTRF drivers.  Kept narrow: the
/// in-panel substitution runs at memory-bound axpy speed, so its flop
/// share (proportional to `PB`) is minimized in favour of the packed
/// micro-kernel doing the bulk.
pub const PB: usize = 32;

/// Numeric mode: strict keeps reference rounding, fused lets FMA
/// contract multiply-add pairs.
#[derive(Clone, Copy, PartialEq, Eq)]
enum Mode {
    Strict,
    Fused,
}

/// Which `B` element feeds `C(i, j)` at depth `k`.
#[derive(Clone, Copy, PartialEq, Eq)]
enum BOp {
    /// `B(k, j)` — plain `C += A * B`.
    N,
    /// `B(j, k)` — `C += A * B^T` (the Cholesky update shape).
    T,
}

/// A read-only column-major region: element `(i, j)` is `data[i + j * ld]`.
#[derive(Clone, Copy)]
struct V<'a> {
    data: &'a [f64],
    ld: usize,
}

impl<'a> V<'a> {
    #[inline]
    fn at(&self, i: usize, j: usize) -> f64 {
        self.data[i + j * self.ld]
    }
}

/// Scratch buffers for the packed panels, reused across blocks of one
/// kernel invocation — and across invocations via [`with_pack`], so
/// recursive drivers issuing many small GEMMs do not pay a fresh
/// 1.3 MB zero-initialised allocation per call.
struct Pack {
    pa: Vec<f64>,
    pb: Vec<f64>,
}

impl Pack {
    fn new() -> Self {
        Pack {
            pa: vec![0.0; MC * KC],
            pb: vec![0.0; KC * NC],
        }
    }
}

std::thread_local! {
    static PACK: std::cell::RefCell<Pack> = std::cell::RefCell::new(Pack::new());
}

/// Run `f` with this thread's packing scratch.  The pack routines fully
/// overwrite (and zero-pad) every strip a macro-tile reads, so stale
/// contents from a previous invocation are never observed.
///
/// Under pool execution the scratch is *per worker*, sized for the
/// largest macro-tile ([`MC`]`x`[`KC`] + [`KC`]`x`[`NC`], the maximum
/// any single task packs), and owned exclusively for the duration of
/// `f`: a leaf task packs and consumes its tiles entirely inside one
/// `with_pack`, and never forks while holding it — if a stolen
/// continuation ever re-entered the scratch mid-use, the `RefCell`
/// would already be borrowed and this assertion fires instead of
/// silently corrupting packed panels.
fn with_pack<R>(f: impl FnOnce(&mut Pack) -> R) -> R {
    PACK.with(|p| {
        let mut pack = p.try_borrow_mut().expect(
            "packing scratch aliased: with_pack re-entered on one worker \
             (a task must not fork while holding the pack buffers)",
        );
        f(&mut pack)
    })
}

/// Pack the `mc x kc` block of `A` at `(row0 + ic, pc)` into `MR`-row
/// strips: strip `ir` holds `pa[ir*kc*MR + k*MR + ii] = A(ic + ir*MR + ii,
/// pc + k)`, zero-padded past `mc`.
#[allow(clippy::too_many_arguments)]
fn pack_a(pa: &mut [f64], a: V<'_>, row0: usize, ic: usize, mc: usize, pc: usize, kc: usize) {
    let strips = mc.div_ceil(MR);
    // The worker-local scratch is sized for the largest concurrent
    // macro-tile; a block that would not fit means the planner handed
    // this task more than one task's share.
    debug_assert!(
        mc <= MC && kc <= KC && strips * kc * MR <= pa.len(),
        "packed A block {mc}x{kc} exceeds per-worker scratch"
    );
    for ir in 0..strips {
        let base = ir * kc * MR;
        let i0 = ic + ir * MR;
        let mr = (mc - ir * MR).min(MR);
        for k in 0..kc {
            let dst = &mut pa[base + k * MR..base + k * MR + MR];
            let col = &a.data[row0 + (pc + k) * a.ld..];
            for (ii, d) in dst.iter_mut().enumerate() {
                *d = if ii < mr { col[i0 + ii] } else { 0.0 };
            }
        }
    }
}

/// Pack the `kc x nc` block of `op(B)` feeding `C` columns `jc..jc+nc`
/// at depths `pc..pc+kc` into `NR`-column strips, scaled by `alpha`:
/// `pb[jr*kc*NR + k*NR + jj] = alpha * op(B)(pc + k, jc + jr*NR + jj)`.
/// The `alpha` multiply happens here, once per element, exactly as the
/// reference kernels hoist `alpha * b` out of their inner loop.
#[allow(clippy::too_many_arguments)]
fn pack_b(
    pb: &mut [f64],
    b: V<'_>,
    op: BOp,
    row0: usize,
    alpha: f64,
    jc: usize,
    nc: usize,
    pc: usize,
    kc: usize,
) {
    let strips = nc.div_ceil(NR);
    debug_assert!(
        nc <= NC && kc <= KC && strips * kc * NR <= pb.len(),
        "packed B block {kc}x{nc} exceeds per-worker scratch"
    );
    for jr in 0..strips {
        let base = jr * kc * NR;
        let j0 = jc + jr * NR;
        let nr = (nc - jr * NR).min(NR);
        for k in 0..kc {
            let dst = &mut pb[base + k * NR..base + k * NR + NR];
            for (jj, d) in dst.iter_mut().enumerate() {
                *d = if jj < nr {
                    match op {
                        BOp::N => alpha * b.at(pc + k, j0 + jj),
                        BOp::T => alpha * b.at(row0 + j0 + jj, pc + k),
                    }
                } else {
                    0.0
                };
            }
        }
    }
}

/// The register-tiled micro-kernel: `acc += pa_strip * pb_strip` over
/// `kc` depth steps.  `pa` strides by [`MR`], `pb` by [`NR`]; both are
/// contiguous, so `chunks_exact` compiles to unchecked loads.  The
/// accumulator tile is column-major (`acc[jj][ii]`), matching `C`'s
/// layout, so the `ii` loop vectorizes over one contiguous register per
/// column with `pb`'s element broadcast.
#[inline(always)]
fn micro_kernel_body<const FUSED: bool>(
    kc: usize,
    pa: &[f64],
    pb: &[f64],
    acc: &mut [[f64; MR]; NR],
) {
    for (av, bv) in pa.chunks_exact(MR).zip(pb.chunks_exact(NR)).take(kc) {
        for (accj, &bkj) in acc.iter_mut().zip(bv) {
            for (acc_e, &aik) in accj.iter_mut().zip(av) {
                if FUSED {
                    *acc_e = aik.mul_add(bkj, *acc_e);
                } else {
                    *acc_e += aik * bkj;
                }
            }
        }
    }
}

/// Hand-vectorized AVX-512 micro-kernels (LLVM keeps the generic body's
/// accumulators in memory instead of registers, costing ~10x, so the
/// hot variants are written with explicit intrinsics: the `C` tile is
/// 16 accumulator `zmm` registers — two per column — with one broadcast
/// of `pb` per column per depth step).  The strict variant multiplies
/// and adds in two individually rounded instructions; the fused variant
/// contracts them into one FMA.  Narrower machines fall back to the
/// autovectorized generic body.
///
/// # Safety
/// Caller must have verified the named features via
/// `is_x86_feature_detected!`, and `pa`/`pb` must hold at least
/// `kc * MR` / `kc * NR` elements.
#[cfg(target_arch = "x86_64")]
mod mk_x86 {
    use super::{micro_kernel_body, MR, NR};
    use std::arch::x86_64::*;

    #[target_feature(enable = "avx512f,fma")]
    pub unsafe fn fused_avx512(kc: usize, pa: &[f64], pb: &[f64], acc: &mut [[f64; MR]; NR]) {
        debug_assert!(pa.len() >= kc * MR && pb.len() >= kc * NR);
        let mut lo = [_mm512_setzero_pd(); NR];
        let mut hi = [_mm512_setzero_pd(); NR];
        for (j, (l, h)) in lo.iter_mut().zip(hi.iter_mut()).enumerate() {
            *l = _mm512_loadu_pd(acc[j].as_ptr());
            *h = _mm512_loadu_pd(acc[j].as_ptr().add(8));
        }
        let mut pap = pa.as_ptr();
        let mut pbp = pb.as_ptr();
        for _ in 0..kc {
            let va = _mm512_loadu_pd(pap);
            let vb = _mm512_loadu_pd(pap.add(8));
            for (j, (l, h)) in lo.iter_mut().zip(hi.iter_mut()).enumerate() {
                let s = _mm512_set1_pd(*pbp.add(j));
                *l = _mm512_fmadd_pd(va, s, *l);
                *h = _mm512_fmadd_pd(vb, s, *h);
            }
            pap = pap.add(MR);
            pbp = pbp.add(NR);
        }
        for (j, (l, h)) in lo.iter().zip(hi.iter()).enumerate() {
            _mm512_storeu_pd(acc[j].as_mut_ptr(), *l);
            _mm512_storeu_pd(acc[j].as_mut_ptr().add(8), *h);
        }
    }

    #[target_feature(enable = "avx512f")]
    pub unsafe fn strict_avx512(kc: usize, pa: &[f64], pb: &[f64], acc: &mut [[f64; MR]; NR]) {
        debug_assert!(pa.len() >= kc * MR && pb.len() >= kc * NR);
        let mut lo = [_mm512_setzero_pd(); NR];
        let mut hi = [_mm512_setzero_pd(); NR];
        for (j, (l, h)) in lo.iter_mut().zip(hi.iter_mut()).enumerate() {
            *l = _mm512_loadu_pd(acc[j].as_ptr());
            *h = _mm512_loadu_pd(acc[j].as_ptr().add(8));
        }
        let mut pap = pa.as_ptr();
        let mut pbp = pb.as_ptr();
        for _ in 0..kc {
            let va = _mm512_loadu_pd(pap);
            let vb = _mm512_loadu_pd(pap.add(8));
            for (j, (l, h)) in lo.iter_mut().zip(hi.iter_mut()).enumerate() {
                let s = _mm512_set1_pd(*pbp.add(j));
                // Separate multiply and add: each rounds individually,
                // exactly like the reference kernel's `c + a * b`.
                *l = _mm512_add_pd(*l, _mm512_mul_pd(va, s));
                *h = _mm512_add_pd(*h, _mm512_mul_pd(vb, s));
            }
            pap = pap.add(MR);
            pbp = pbp.add(NR);
        }
        for (j, (l, h)) in lo.iter().zip(hi.iter()).enumerate() {
            _mm512_storeu_pd(acc[j].as_mut_ptr(), *l);
            _mm512_storeu_pd(acc[j].as_mut_ptr().add(8), *h);
        }
    }

    #[target_feature(enable = "avx")]
    pub unsafe fn strict_avx(kc: usize, pa: &[f64], pb: &[f64], acc: &mut [[f64; MR]; NR]) {
        micro_kernel_body::<false>(kc, pa, pb, acc);
    }

    #[target_feature(enable = "avx2,fma")]
    pub unsafe fn fused_avx2(kc: usize, pa: &[f64], pb: &[f64], acc: &mut [[f64; MR]; NR]) {
        micro_kernel_body::<true>(kc, pa, pb, acc);
    }
}

#[inline]
fn run_micro_kernel(mode: Mode, kc: usize, pa: &[f64], pb: &[f64], acc: &mut [[f64; MR]; NR]) {
    #[cfg(target_arch = "x86_64")]
    {
        use std::arch::is_x86_feature_detected as det;
        // SAFETY: each variant is called only after detecting its features.
        unsafe {
            if mode == Mode::Fused && det!("fma") {
                if det!("avx512f") {
                    return mk_x86::fused_avx512(kc, pa, pb, acc);
                }
                if det!("avx2") {
                    return mk_x86::fused_avx2(kc, pa, pb, acc);
                }
            }
            if det!("avx512f") {
                return mk_x86::strict_avx512(kc, pa, pb, acc);
            }
            if det!("avx") {
                return mk_x86::strict_avx(kc, pa, pb, acc);
            }
        }
    }
    micro_kernel_body::<false>(kc, pa, pb, acc);
}

/// Shared mutable view of an output region for pool execution.
///
/// Tasks of one parallel phase write *disjoint* element ranges (each
/// owns its `(row-block, column-chunk)` tile, or its row chunk of an
/// in-panel solve), so handing every task access to the region is the
/// 2-D strided analogue of `split_at_mut` — just not expressible
/// through slice splitting.  The pointer is only ever materialized into
/// `&mut` column *segments* of the calling task's own range, so no two
/// live `&mut` slices overlap.
#[derive(Clone, Copy)]
struct COut {
    ptr: *mut f64,
    len: usize,
}

// SAFETY: the planners guarantee concurrently running tasks touch
// disjoint element ranges (documented per call site).
unsafe impl Send for COut {}
unsafe impl Sync for COut {}

impl COut {
    fn new(c: &mut [f64]) -> Self {
        COut { ptr: c.as_mut_ptr(), len: c.len() }
    }

    /// The `mr`-long segment of column `j` (leading dimension `ld`)
    /// starting at row `i0`, as a mutable slice.
    ///
    /// # Safety
    /// The segment must lie inside the calling task's owned range: no
    /// concurrently running task may read or write any of its elements,
    /// and the caller must not hold another overlapping segment.
    #[inline]
    #[allow(clippy::mut_from_ref)]
    unsafe fn col_segment(&self, ld: usize, i0: usize, j: usize, mr: usize) -> &mut [f64] {
        debug_assert!(j * ld + i0 + mr <= self.len);
        unsafe { std::slice::from_raw_parts_mut(self.ptr.add(j * ld + i0), mr) }
    }

    /// Read element `idx` of the underlying storage.
    ///
    /// # Safety
    /// No concurrently running task may be writing `idx` (the in-panel
    /// solves read only finished `L` rows that no task writes).
    #[inline]
    unsafe fn read(&self, idx: usize) -> f64 {
        debug_assert!(idx < self.len);
        unsafe { *self.ptr.add(idx) }
    }
}

/// Minimum `m * n * k` product before a GEMM fans onto the pool: below
/// this (~a 256³ multiply) fork-join overhead beats the win.
const PAR_MIN_PRODUCTS: usize = 1 << 23;

/// Minimum rows per in-panel TRSM row chunk: keeps the axpy inner loops
/// long enough to stay at vector throughput.
const PAR_ROW_CHUNK: usize = 128;

/// Row-chunk count for the in-panel substitutions (1 = sequential).
fn row_chunks(rows: usize, cols: usize, threads: usize) -> usize {
    if threads <= 1 || cols == 0 || rows < 2 * PAR_ROW_CHUNK {
        1
    } else {
        (rows / PAR_ROW_CHUNK).min(2 * threads).max(1)
    }
}

/// Column-chunk width of the parallel task grid.  Starts at the full
/// [`NC`] cache block (widest chunks duplicate the least `A`-packing)
/// and halves, staying `NR`-aligned, until the `(row-block, chunk)`
/// grid carries ~3 tasks per worker so stealing can balance ragged
/// edges and diagonal-masked no-op tiles.  A pure function of the
/// shape and worker count — never of the steal order — so the
/// partition (and with it the fused mode's bits) is reproducible.
fn par_col_chunk(n: usize, row_blocks: usize, threads: usize) -> usize {
    let target = 3 * threads;
    let mut cw = NC;
    while cw > 4 * NR && row_blocks * n.div_ceil(cw) < target {
        cw /= 2;
    }
    cw
}

/// Blocked `C(m x n) += A * op(B)` over column-major regions.
///
/// * `c` starts at its region's `(0, 0)` with leading dimension `ldc`;
/// * `a` is read at rows `a_row0..a_row0+m`, depth columns `pc` ranging
///   over `0..kdim`;
/// * `b` is read per [`BOp`] (`b_row0` offsets the `T` orientation's row);
/// * `diag` masks the update to the lower triangle: cell `(i, j)` is
///   skipped when `i + diag < j` (global row < global column).  `None`
///   updates the full rectangle.
///
/// Accumulation order per `C` element is ascending `k` throughout —
/// `pc` blocks ascend and the micro-kernel walks its depth forward — so
/// the strict mode is bit-identical to the reference triple loop.  This
/// holds on the parallel path too: the `pc` loop stays sequential and
/// each element belongs to exactly one task per depth step, so neither
/// the thread count nor the steal order can reorder any element's
/// accumulation.
#[allow(clippy::too_many_arguments)]
fn gemm_blocked(
    c: &mut [f64],
    ldc: usize,
    m: usize,
    n: usize,
    kdim: usize,
    alpha: f64,
    a: V<'_>,
    a_row0: usize,
    b: V<'_>,
    b_op: BOp,
    b_row0: usize,
    diag: Option<i64>,
    mode: Mode,
) {
    if m == 0 || n == 0 || kdim == 0 {
        return;
    }
    let threads = crate::parallel::effective_threads();
    if threads > 1 && m.saturating_mul(n).saturating_mul(kdim) >= PAR_MIN_PRODUCTS {
        let row_blocks = m.div_ceil(MC);
        let cw = par_col_chunk(n, row_blocks, threads);
        let col_chunks = n.div_ceil(cw);
        let out = COut::new(c);
        // Sequential ascending depth loop; parallel disjoint C tiles.
        for pc in (0..kdim).step_by(KC) {
            let kc = (kdim - pc).min(KC);
            crate::parallel::par_for(row_blocks * col_chunks, &|t| {
                let ic = (t / col_chunks) * MC;
                let jc = (t % col_chunks) * cw;
                let mc = (m - ic).min(MC);
                let nc = (n - jc).min(cw);
                // Skip tiles entirely above the diagonal.
                if let Some(d) = diag {
                    if (ic + mc - 1) as i64 + d < jc as i64 {
                        return;
                    }
                }
                // The whole leaf — pack both operands, multiply — runs
                // inside one with_pack: the scratch belongs to whichever
                // worker stole this tile, exclusively, for the duration.
                with_pack(|pack| {
                    pack_b(&mut pack.pb, b, b_op, b_row0, alpha, jc, nc, pc, kc);
                    pack_a(&mut pack.pa, a, a_row0, ic, mc, pc, kc);
                    // SAFETY: task `t` owns rows ic..ic+mc of columns
                    // jc..jc+nc of C exclusively within this par_for.
                    macro_tile(out, ldc, ic, jc, mc, nc, kc, &pack.pa, &pack.pb, diag, mode);
                });
            });
        }
        return;
    }
    let out = COut::new(c);
    with_pack(|pack| {
        for jc in (0..n).step_by(NC) {
            let nc = (n - jc).min(NC);
            for pc in (0..kdim).step_by(KC) {
                let kc = (kdim - pc).min(KC);
                pack_b(&mut pack.pb, b, b_op, b_row0, alpha, jc, nc, pc, kc);
                for ic in (0..m).step_by(MC) {
                    let mc = (m - ic).min(MC);
                    // Skip A-blocks entirely above the diagonal.
                    if let Some(d) = diag {
                        if (ic + mc - 1) as i64 + d < jc as i64 {
                            continue;
                        }
                    }
                    pack_a(&mut pack.pa, a, a_row0, ic, mc, pc, kc);
                    // SAFETY: single task — the whole region is owned.
                    macro_tile(out, ldc, ic, jc, mc, nc, kc, &pack.pa, &pack.pb, diag, mode);
                }
            }
        }
    });
}

/// Multiply one packed `A` block against one packed `B` block, micro-tile
/// by micro-tile: load the `C` tile, accumulate `kc` steps, store it back.
///
/// `c` is the shared output view; the caller owns rows `ic..ic+mc` of
/// columns `jc..jc+nc` exclusively (see [`COut`]), which is exactly the
/// range this touches.
#[allow(clippy::too_many_arguments)]
fn macro_tile(
    c: COut,
    ldc: usize,
    ic: usize,
    jc: usize,
    mc: usize,
    nc: usize,
    kc: usize,
    pa: &[f64],
    pb: &[f64],
    diag: Option<i64>,
    mode: Mode,
) {
    for jr in 0..nc.div_ceil(NR) {
        let j0 = jc + jr * NR;
        let nr = (nc - jr * NR).min(NR);
        let pb_strip = &pb[jr * kc * NR..(jr + 1) * kc * NR];
        for ir in 0..mc.div_ceil(MR) {
            let i0 = ic + ir * MR;
            let mr = (mc - ir * MR).min(MR);
            // Micro-tiles entirely above the diagonal never touch C.
            if let Some(d) = diag {
                if (i0 + mr - 1) as i64 + d < j0 as i64 {
                    continue;
                }
            }
            let pa_strip = &pa[ir * kc * MR..(ir + 1) * kc * MR];
            let mut acc = [[0.0f64; MR]; NR];
            // Load C (the accumulators continue C's running sum, keeping
            // the per-element operation sequence of the reference loop).
            for (jj, accj) in acc.iter_mut().enumerate().take(nr) {
                // SAFETY: inside the caller's owned tile.
                let col = unsafe { c.col_segment(ldc, i0, j0 + jj, mr) };
                accj[..mr].copy_from_slice(col);
            }
            run_micro_kernel(mode, kc, pa_strip, pb_strip, &mut acc);
            // Store back, masking cells above the diagonal.
            for (jj, accj) in acc.iter().enumerate().take(nr) {
                // SAFETY: inside the caller's owned tile.
                let col = unsafe { c.col_segment(ldc, i0, j0 + jj, mr) };
                for (ii, &v) in accj.iter().enumerate().take(mr) {
                    if let Some(d) = diag {
                        if (i0 + ii) as i64 + d < (j0 + jj) as i64 {
                            continue;
                        }
                    }
                    col[ii] = v;
                }
            }
        }
    }
}

/// In-panel column update `dst -= src * s`, vectorized per mode (the
/// strict variant never contracts, the fused variant lets FMA fuse
/// `src * s` into the subtraction).
#[inline(always)]
fn axpy_neg_body<const FUSED: bool>(dst: &mut [f64], src: &[f64], s: f64) {
    for (v, &x) in dst.iter_mut().zip(src) {
        if FUSED {
            *v = x.mul_add(-s, *v);
        } else {
            *v -= x * s;
        }
    }
}

#[cfg(target_arch = "x86_64")]
mod axpy_x86 {
    use super::axpy_neg_body;

    /// # Safety
    /// Caller must have detected `avx512f`.
    #[target_feature(enable = "avx512f")]
    pub unsafe fn strict_avx512(dst: &mut [f64], src: &[f64], s: f64) {
        axpy_neg_body::<false>(dst, src, s);
    }

    /// # Safety
    /// Caller must have detected `avx512f` and `fma`.
    #[target_feature(enable = "avx512f,fma")]
    pub unsafe fn fused_avx512(dst: &mut [f64], src: &[f64], s: f64) {
        axpy_neg_body::<true>(dst, src, s);
    }

    /// # Safety
    /// Caller must have detected `avx2` and `fma`.
    #[target_feature(enable = "avx2,fma")]
    pub unsafe fn fused_avx2(dst: &mut [f64], src: &[f64], s: f64) {
        axpy_neg_body::<true>(dst, src, s);
    }
}

/// `dst -= src * s` with mode-appropriate vectorization.
#[inline]
fn axpy_neg(mode: Mode, dst: &mut [f64], src: &[f64], s: f64) {
    #[cfg(target_arch = "x86_64")]
    {
        use std::arch::is_x86_feature_detected as det;
        // SAFETY: each variant is called only after detecting its features.
        unsafe {
            if mode == Mode::Fused && det!("fma") {
                if det!("avx512f") {
                    return axpy_x86::fused_avx512(dst, src, s);
                }
                if det!("avx2") {
                    return axpy_x86::fused_avx2(dst, src, s);
                }
            }
            if det!("avx512f") {
                return axpy_x86::strict_avx512(dst, src, s);
            }
        }
    }
    axpy_neg_body::<false>(dst, src, s);
}

fn gemm_nn_impl(c: &mut Matrix<f64>, alpha: f64, a: &Matrix<f64>, b: &Matrix<f64>, mode: Mode) {
    assert_eq!(a.cols(), b.rows(), "gemm_nn: inner dimensions");
    assert_eq!(c.rows(), a.rows(), "gemm_nn: C rows");
    assert_eq!(c.cols(), b.cols(), "gemm_nn: C cols");
    let (m, n, kdim) = (c.rows(), c.cols(), a.cols());
    let (lda, ldb, ldc) = (a.rows(), b.rows(), c.rows());
    gemm_blocked(
        c.as_mut_slice(),
        ldc,
        m,
        n,
        kdim,
        alpha,
        V { data: a.as_slice(), ld: lda },
        0,
        V { data: b.as_slice(), ld: ldb },
        BOp::N,
        0,
        None,
        mode,
    );
}

fn gemm_nt_impl(c: &mut Matrix<f64>, alpha: f64, a: &Matrix<f64>, b: &Matrix<f64>, mode: Mode) {
    assert_eq!(a.cols(), b.cols(), "gemm_nt: inner dimensions");
    assert_eq!(c.rows(), a.rows(), "gemm_nt: C rows");
    assert_eq!(c.cols(), b.rows(), "gemm_nt: C cols");
    let (m, n, kdim) = (c.rows(), c.cols(), a.cols());
    let (lda, ldb, ldc) = (a.rows(), b.rows(), c.rows());
    gemm_blocked(
        c.as_mut_slice(),
        ldc,
        m,
        n,
        kdim,
        alpha,
        V { data: a.as_slice(), ld: lda },
        0,
        V { data: b.as_slice(), ld: ldb },
        BOp::T,
        0,
        None,
        mode,
    );
}

fn syrk_lower_impl(c: &mut Matrix<f64>, a: &Matrix<f64>, mode: Mode) {
    assert!(c.is_square(), "syrk_lower: C square");
    assert_eq!(c.rows(), a.rows(), "syrk_lower: dimensions");
    let (n, kdim) = (c.rows(), a.cols());
    let lda = a.rows();
    let ldc = c.rows();
    gemm_blocked(
        c.as_mut_slice(),
        ldc,
        n,
        n,
        kdim,
        -1.0,
        V { data: a.as_slice(), ld: lda },
        0,
        V { data: a.as_slice(), ld: lda },
        BOp::T,
        0,
        Some(0),
        mode,
    );
}

/// Split point for the recursive drivers: the smallest multiple of [`PB`]
/// at or above the midpoint, clamped inside `(0, n)`.  Aligning splits to
/// [`PB`] keeps every base case a full panel except the last.
fn rec_split(n: usize) -> usize {
    ((n / 2).div_ceil(PB) * PB).clamp(1, n - 1)
}

fn trsm_right_lower_transpose_impl(b: &mut Matrix<f64>, l: &Matrix<f64>, mode: Mode) {
    assert!(l.is_square(), "trsm: L square");
    assert_eq!(b.cols(), l.rows(), "trsm: dimensions");
    let n = l.rows();
    trsm_rec(b, l, 0, n, mode);
}

/// Recursive right-solve of `B[:, c0..c0+cn] <- B[:, c0..c0+cn] *
/// L[c0.., c0..]^{-T}`.  Callers must have applied every update with
/// `k < c0` already.  Splitting `L` as `[[L11, 0], [L21, L22]]`, the
/// second column block is `X2 = (B2 - X1 * L21^T) * L22^{-T}`: the
/// correction is one wide, full-depth GEMM instead of a thin per-panel
/// one, so `A`-packing amortizes over many output columns.  Per-element
/// update order stays ascending `k` (recurse left, correct, recurse
/// right), keeping the strict mode bit-identical to the reference.
fn trsm_rec(b: &mut Matrix<f64>, l: &Matrix<f64>, c0: usize, cn: usize, mode: Mode) {
    let rows = b.rows();
    if rows == 0 || cn == 0 {
        return;
    }
    if cn <= PB {
        // In-panel substitution, reference order (k < c0 was handled by
        // the caller's correction GEMM).  `X(r, j)` depends only on
        // `X(r, k < j)` — the *same* row — so row chunks are mutually
        // independent and fan onto the pool; each task walks its rows
        // through the full column order, per-element order unchanged.
        let threads = crate::parallel::effective_threads();
        let chunks = row_chunks(rows, cn, threads);
        let chunk = rows.div_ceil(chunks);
        let (_, rest) = b.split_cols_mut(c0);
        let out = COut::new(&mut rest[..cn * rows]);
        crate::parallel::par_for(chunks, &|t| {
            let r0 = t * chunk;
            let r1 = rows.min(r0 + chunk);
            if r0 >= r1 {
                return;
            }
            for j in 0..cn {
                // SAFETY: task `t` owns rows r0..r1 of every panel
                // column exclusively; columns j and k never alias.
                let bj = unsafe { out.col_segment(rows, r0, j, r1 - r0) };
                for k in 0..j {
                    let ljk = l.at_ref(c0 + j, c0 + k);
                    // SAFETY: same row range, earlier column — written
                    // by this task only, before column j.
                    let bk: &[f64] = unsafe { out.col_segment(rows, r0, k, r1 - r0) };
                    axpy_neg(mode, bj, bk, ljk);
                }
                let ljj = l.at_ref(c0 + j, c0 + j);
                for x in bj.iter_mut() {
                    *x /= ljj;
                }
            }
        });
        return;
    }
    let n1 = rec_split(cn);
    let n2 = cn - n1;
    trsm_rec(b, l, c0, n1, mode);
    // X2 -= X1 * L21^T (L21 = L[c0+n1..c0+cn, c0..c0+n1]).
    {
        let ldl = l.rows();
        let (done, rest) = b.split_cols_mut(c0 + n1);
        gemm_blocked(
            rest,
            rows,
            rows,
            n2,
            n1,
            -1.0,
            V { data: &done[c0 * rows..], ld: rows.max(1) },
            0,
            V { data: &l.as_slice()[c0 * ldl..], ld: ldl },
            BOp::T,
            c0 + n1,
            None,
            mode,
        );
    }
    trsm_rec(b, l, c0 + n1, n2, mode);
}

fn potf2_impl(a: &mut Matrix<f64>, mode: Mode) -> Result<(), MatrixError> {
    if !a.is_square() {
        return Err(MatrixError::NotSquare {
            rows: a.rows(),
            cols: a.cols(),
        });
    }
    let n = a.rows();
    let ld = n.max(1);
    potrf_rec(a.as_mut_slice(), ld, 0, n, mode)
}

/// Recursive blocked Cholesky of the `n x n` block at `(off, off)` of
/// column-major storage with leading dimension `ld`.  Contract: callers
/// have already applied every update with `k < off`, and rows below
/// `off + n` are the caller's responsibility (the standard recursive
/// POTRF splitting).  The trailing update is one wide, full-depth SYRK
/// per level — `A`-packing amortizes over `n2` output columns instead of
/// a [`PB`]-wide panel.  Per-element updates arrive in ascending `k`
/// order at every level (recurse left, solve, update, recurse right), so
/// the strict mode stays bit-identical to the reference triple loop.
fn potrf_rec(
    data: &mut [f64],
    ld: usize,
    off: usize,
    n: usize,
    mode: Mode,
) -> Result<(), MatrixError> {
    if n <= PB {
        return potf2_base(data, ld, off, n, mode);
    }
    let n1 = rec_split(n);
    let n2 = n - n1;
    potrf_rec(data, ld, off, n1, mode)?;
    // L21 <- A21 * L11^{-T} (rows off+n1..off+n, cols off..off+n1).
    trsm_region(data, ld, off + n1, n2, off, n1, mode);
    // A22 <- A22 - L21 * L21^T on the lower triangle.
    {
        let (left, right) = data.split_at_mut((off + n1) * ld);
        let lv = V { data: &left[off * ld..], ld };
        gemm_blocked(
            &mut right[off + n1..],
            ld,
            n2,
            n2,
            n1,
            -1.0,
            lv,
            off + n1,
            lv,
            BOp::T,
            off + n1,
            Some(0),
            mode,
        );
    }
    potrf_rec(data, ld, off + n1, n2, mode)
}

/// Left-looking unblocked factorization of the `n x n` (`n <= PB`)
/// diagonal block at `(off, off)`.  Rows below the block belong to the
/// caller's TRSM; updates with `k < off` were already applied.
fn potf2_base(
    data: &mut [f64],
    ld: usize,
    off: usize,
    n: usize,
    mode: Mode,
) -> Result<(), MatrixError> {
    for j in 0..n {
        let gc = off + j;
        let (done, rest) = data.split_at_mut(gc * ld);
        let col = &mut rest[gc..off + n];
        for k in off..gc {
            let src = &done[k * ld + gc..k * ld + off + n];
            let ajk = src[0];
            axpy_neg(mode, col, src, ajk);
        }
        let d = col[0];
        // Same rejection rule as the reference kernel (non-finite
        // pivots fall through to sqrt, producing NaN like LAPACK).
        if d.is_finite() && d <= 0.0 {
            return Err(MatrixError::NotSpd {
                pivot: gc,
                value: -d.abs(),
            });
        }
        let ljj = d.sqrt();
        col[0] = ljj;
        for v in col[1..].iter_mut() {
            *v /= ljj;
        }
    }
    Ok(())
}

/// Recursive in-place triangular solve `X <- X * L^{-T}` where `X` and
/// `L` live in the same column-major storage: `X` is rows
/// `row0..row0+rows`, columns `l_off..l_off+ln`; `L` is the
/// lower-triangular block at `(l_off, l_off)`.  Requires
/// `row0 >= l_off + ln` (X strictly below L); callers have applied every
/// update with `k < l_off`.
#[allow(clippy::too_many_arguments)]
fn trsm_region(
    data: &mut [f64],
    ld: usize,
    row0: usize,
    rows: usize,
    l_off: usize,
    ln: usize,
    mode: Mode,
) {
    if rows == 0 || ln == 0 {
        return;
    }
    if ln <= PB {
        // In-panel substitution, reference order.  Row chunks of X are
        // mutually independent (same argument as `trsm_rec`); the `L`
        // rows read for the multipliers live strictly above `row0` and
        // are never written during the panel, so tasks share them.
        let threads = crate::parallel::effective_threads();
        let chunks = row_chunks(rows, ln, threads);
        let chunk = rows.div_ceil(chunks);
        let out = COut::new(data);
        crate::parallel::par_for(chunks, &|t| {
            let r0 = row0 + t * chunk;
            let r1 = (row0 + rows).min(r0 + chunk);
            if r0 >= r1 {
                return;
            }
            for j in 0..ln {
                let gc = l_off + j;
                // SAFETY: row gc < row0 — finished L, no task writes it.
                let ljj = unsafe { out.read(gc * ld + gc) };
                // SAFETY: task `t` owns rows r0..r1 exclusively.
                let col = unsafe { out.col_segment(ld, r0, gc, r1 - r0) };
                for k in 0..j {
                    let kc0 = l_off + k;
                    // SAFETY: row gc < row0 — finished L.
                    let ljk = unsafe { out.read(kc0 * ld + gc) };
                    // SAFETY: same rows, earlier column — this task's.
                    let src: &[f64] = unsafe { out.col_segment(ld, r0, kc0, r1 - r0) };
                    axpy_neg(mode, col, src, ljk);
                }
                for x in col.iter_mut() {
                    *x /= ljj;
                }
            }
        });
        return;
    }
    let n1 = rec_split(ln);
    let n2 = ln - n1;
    trsm_region(data, ld, row0, rows, l_off, n1, mode);
    // X2 -= X1 * L21^T.
    {
        let (left, right) = data.split_at_mut((l_off + n1) * ld);
        let lv = V { data: &left[l_off * ld..], ld };
        gemm_blocked(
            &mut right[row0..],
            ld,
            rows,
            n2,
            n1,
            -1.0,
            lv,
            row0,
            lv,
            BOp::T,
            l_off + n1,
            None,
            mode,
        );
    }
    trsm_region(data, ld, row0, rows, l_off + n1, n2, mode);
}

/// `C <- C + alpha * A * B`, bit-identical to [`crate::kernels::gemm_nn`].
pub fn gemm_nn(c: &mut Matrix<f64>, alpha: f64, a: &Matrix<f64>, b: &Matrix<f64>) {
    gemm_nn_impl(c, alpha, a, b, Mode::Strict);
}

/// `C <- C + alpha * A * B^T`, bit-identical to [`crate::kernels::gemm_nt`].
pub fn gemm_nt(c: &mut Matrix<f64>, alpha: f64, a: &Matrix<f64>, b: &Matrix<f64>) {
    gemm_nt_impl(c, alpha, a, b, Mode::Strict);
}

/// Lower-triangle `C <- C - A * A^T`, bit-identical to
/// [`crate::kernels::syrk_lower`] (the strict upper triangle of `C` is
/// neither read for accumulation nor written).
pub fn syrk_lower(c: &mut Matrix<f64>, a: &Matrix<f64>) {
    syrk_lower_impl(c, a, Mode::Strict);
}

/// Triangular solve `X <- B * L^{-T}` (`L` lower triangular), bit-identical
/// to [`crate::kernels::trsm_right_lower_transpose`].
///
/// Blocked over panels of [`PB`] columns: the contribution of the solved
/// columns to the left of a panel is applied through the packed GEMM
/// engine (their `k`-order is ascending either way), then the panel is
/// finished with the reference-order in-panel substitution.
pub fn trsm_right_lower_transpose(b: &mut Matrix<f64>, l: &Matrix<f64>) {
    trsm_right_lower_transpose_impl(b, l, Mode::Strict);
}

/// Blocked Cholesky of the lower triangle, bit-identical to
/// [`crate::kernels::potf2`] — left-looking over panels of [`PB`]
/// columns, bulk panel updates through the packed GEMM engine, in-panel
/// factorization in reference order.  The strict upper triangle is left
/// untouched.
pub fn potf2(a: &mut Matrix<f64>) -> Result<(), MatrixError> {
    potf2_impl(a, Mode::Strict)
}

/// The FMA-contracted mode of the fast engine ([`KernelImpl::Fast`]).
///
/// Identical loop structure and per-element operation *order* as the
/// strict module-level kernels, but multiply-add pairs are fused into
/// single-rounding FMA instructions where the hardware has them —
/// roughly doubling throughput.  Results therefore differ from the
/// reference oracle by a tiny contraction residual (fused products skip
/// one rounding each); on FMA-less hardware this mode degenerates to
/// the strict kernels and is bit-identical.
///
/// [`KernelImpl::Fast`]: crate::engine::KernelImpl::Fast
pub mod fused {
    use super::{
        gemm_nn_impl, gemm_nt_impl, potf2_impl, syrk_lower_impl,
        trsm_right_lower_transpose_impl, Matrix, MatrixError, Mode,
    };

    /// `C <- C + alpha * A * B` (FMA-contracted [`super::gemm_nn`]).
    pub fn gemm_nn(c: &mut Matrix<f64>, alpha: f64, a: &Matrix<f64>, b: &Matrix<f64>) {
        gemm_nn_impl(c, alpha, a, b, Mode::Fused);
    }

    /// `C <- C + alpha * A * B^T` (FMA-contracted [`super::gemm_nt`]).
    pub fn gemm_nt(c: &mut Matrix<f64>, alpha: f64, a: &Matrix<f64>, b: &Matrix<f64>) {
        gemm_nt_impl(c, alpha, a, b, Mode::Fused);
    }

    /// Lower-triangle `C <- C - A * A^T` (FMA-contracted
    /// [`super::syrk_lower`]).
    pub fn syrk_lower(c: &mut Matrix<f64>, a: &Matrix<f64>) {
        syrk_lower_impl(c, a, Mode::Fused);
    }

    /// `X <- B * L^{-T}` (FMA-contracted
    /// [`super::trsm_right_lower_transpose`]).
    pub fn trsm_right_lower_transpose(b: &mut Matrix<f64>, l: &Matrix<f64>) {
        trsm_right_lower_transpose_impl(b, l, Mode::Fused);
    }

    /// Blocked lower Cholesky (FMA-contracted [`super::potf2`]).
    pub fn potf2(a: &mut Matrix<f64>) -> Result<(), MatrixError> {
        potf2_impl(a, Mode::Fused)
    }
}

pub mod batch;

/// Convenience accessor used by the in-panel loops (`l[(i, j)]` without
/// the tuple-index sugar, kept `#[inline]`).
trait At {
    fn at_ref(&self, i: usize, j: usize) -> f64;
}

impl At for Matrix<f64> {
    #[inline]
    fn at_ref(&self, i: usize, j: usize) -> f64 {
        self.col(j)[i]
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::kernels;
    use crate::norms;
    use crate::spd;

    fn random_matrix(m: usize, n: usize, seed: u64) -> Matrix<f64> {
        use rand::RngExt;
        let mut rng = spd::test_rng(seed);
        Matrix::from_fn(m, n, |_, _| rng.random_range(-1.0..1.0))
    }

    #[test]
    fn gemm_nn_bit_identical_to_reference() {
        for (m, k, n) in [(1, 1, 1), (4, 4, 4), (5, 3, 7), (130, 70, 65), (257, 300, 129)] {
            let a = random_matrix(m, k, 1);
            let b = random_matrix(k, n, 2);
            let init = random_matrix(m, n, 3);
            let mut c1 = init.clone();
            let mut c2 = init.clone();
            kernels::gemm_nn(&mut c1, 0.5, &a, &b);
            gemm_nn(&mut c2, 0.5, &a, &b);
            assert_eq!(c1, c2, "{m}x{k}x{n}");
        }
    }

    #[test]
    fn gemm_nt_bit_identical_to_reference() {
        for (m, k, n) in [(3, 5, 2), (64, 64, 64), (129, 257, 66)] {
            let a = random_matrix(m, k, 4);
            let b = random_matrix(n, k, 5);
            let init = random_matrix(m, n, 6);
            let mut c1 = init.clone();
            let mut c2 = init.clone();
            kernels::gemm_nt(&mut c1, -1.0, &a, &b);
            gemm_nt(&mut c2, -1.0, &a, &b);
            assert_eq!(c1, c2, "{m}x{k}x{n}");
        }
    }

    #[test]
    fn syrk_bit_identical_and_upper_untouched() {
        for (n, k) in [(5, 3), (66, 130), (131, 64)] {
            let a = random_matrix(n, k, 7);
            let init = random_matrix(n, n, 8);
            let mut c1 = init.clone();
            let mut c2 = init.clone();
            kernels::syrk_lower(&mut c1, &a);
            syrk_lower(&mut c2, &a);
            assert_eq!(c1, c2, "n={n} k={k}");
            for j in 1..n {
                for i in 0..j {
                    assert_eq!(c2[(i, j)], init[(i, j)], "upper ({i},{j})");
                }
            }
        }
    }

    #[test]
    fn trsm_bit_identical_to_reference() {
        for (m, n) in [(4, 4), (70, 65), (10, 130)] {
            let mut rng = spd::test_rng(9);
            let mut l = spd::random_spd(n, &mut rng);
            kernels::potf2(&mut l).unwrap();
            let init = random_matrix(m, n, 10);
            let mut b1 = init.clone();
            let mut b2 = init.clone();
            kernels::trsm_right_lower_transpose(&mut b1, &l);
            trsm_right_lower_transpose(&mut b2, &l);
            assert_eq!(b1, b2, "{m}x{n}");
        }
    }

    #[test]
    fn potf2_bit_identical_to_reference() {
        for n in [1usize, 2, 7, 64, 65, 129, 200] {
            let mut rng = spd::test_rng(11);
            let a = spd::random_spd(n, &mut rng);
            let mut f1 = a.clone();
            let mut f2 = a.clone();
            kernels::potf2(&mut f1).unwrap();
            potf2(&mut f2).unwrap();
            assert_eq!(f1, f2, "n={n}");
        }
    }

    #[test]
    fn potf2_rejects_indefinite_with_reference_error() {
        let mut a = Matrix::from_rows(2, 2, &[1.0, 2.0, 2.0, 1.0]);
        assert_eq!(
            potf2(&mut a).unwrap_err(),
            MatrixError::NotSpd { pivot: 1, value: -3.0 }
        );
        let mut z = Matrix::<f64>::zeros(0, 0);
        potf2(&mut z).unwrap();
    }

    #[test]
    fn fused_gemm_agrees_with_reference_to_contraction_residual() {
        for (m, k, n) in [(5, 3, 7), (130, 70, 65), (257, 300, 129)] {
            let a = random_matrix(m, k, 21);
            let b = random_matrix(k, n, 22);
            let init = random_matrix(m, n, 23);
            let mut c1 = init.clone();
            let mut c2 = init.clone();
            kernels::gemm_nn(&mut c1, -1.0, &a, &b);
            fused::gemm_nn(&mut c2, -1.0, &a, &b);
            let tol = 1e-13 * k as f64;
            assert!(norms::max_abs_diff(&c1, &c2) <= tol, "{m}x{k}x{n}");
        }
    }

    #[test]
    fn fused_potf2_factors_to_reference_accuracy() {
        for n in [7usize, 64, 129, 200] {
            let mut rng = spd::test_rng(24);
            let a = spd::random_spd(n, &mut rng);
            let mut f = a.clone();
            fused::potf2(&mut f).unwrap();
            // Zero the strict upper triangle (untouched input remains).
            let l = Matrix::from_fn(n, n, |i, j| if i >= j { f[(i, j)] } else { 0.0 });
            let residual = norms::max_abs_diff(&kernels::llt(&l), &a);
            assert!(residual <= 1e-10 * n as f64, "n={n}: residual {residual}");
        }
    }

    #[test]
    fn fused_trsm_recovers_factor_panel() {
        let n = 96;
        let mut rng = spd::test_rng(25);
        let mut l = spd::random_spd(n, &mut rng);
        kernels::potf2(&mut l).unwrap();
        let l = Matrix::from_fn(n, n, |i, j| if i >= j { l[(i, j)] } else { 0.0 });
        // X = B L^{-T} must satisfy X L^T = B.
        let b = random_matrix(40, n, 26);
        let mut x = b.clone();
        fused::trsm_right_lower_transpose(&mut x, &l);
        let mut back = Matrix::zeros(40, n);
        kernels::gemm_nt(&mut back, 1.0, &x, &l);
        // gemm_nt computes X * L^T via B(j,k) reads: back = X L^T.
        assert!(norms::max_abs_diff(&back, &b) <= 1e-9);
    }

    #[test]
    fn fused_potf2_rejects_indefinite_with_matching_pivot() {
        let mut a = Matrix::from_rows(2, 2, &[1.0, 2.0, 2.0, 1.0]);
        match fused::potf2(&mut a).unwrap_err() {
            MatrixError::NotSpd { pivot, value } => {
                assert_eq!(pivot, 1);
                assert!((value - (-3.0)).abs() < 1e-12);
            }
            e => panic!("unexpected error {e:?}"),
        }
    }
}
