//! Norms and residuals used by every correctness check in the workspace.

use crate::dense::Matrix;
use crate::kernels::llt;
use crate::scalar::Scalar;

/// Frobenius norm (starred entries contribute zero via
/// [`Scalar::magnitude`]).
pub fn fro_norm<S: Scalar>(a: &Matrix<S>) -> f64 {
    a.as_slice()
        .iter()
        .map(|v| {
            let m = v.magnitude();
            m * m
        })
        .sum::<f64>()
        .sqrt()
}

/// Largest absolute elementwise difference between two equal-shaped
/// matrices.
pub fn max_abs_diff<S: Scalar>(a: &Matrix<S>, b: &Matrix<S>) -> f64 {
    assert_eq!(a.rows(), b.rows());
    assert_eq!(a.cols(), b.cols());
    let mut m = 0.0f64;
    for (x, y) in a.as_slice().iter().zip(b.as_slice()) {
        m = m.max((*x - *y).magnitude());
    }
    m
}

/// Relative factorization residual `||A - L L^T||_F / ||A||_F` with `L`
/// taken from the lower triangle of `factor` (the in-place output format
/// shared by every Cholesky routine here).
pub fn cholesky_residual(a: &Matrix<f64>, factor: &Matrix<f64>) -> f64 {
    let l = factor.lower_triangle().expect("square factor");
    let rebuilt = llt(&l);
    let mut diff = 0.0f64;
    for j in 0..a.cols() {
        for i in 0..a.rows() {
            let d = a[(i, j)] - rebuilt[(i, j)];
            diff += d * d;
        }
    }
    diff.sqrt() / fro_norm(a).max(f64::MIN_POSITIVE)
}

/// Conventional backward-stability threshold for an `n x n` Cholesky in
/// `f64`: `c * n * eps` with a generous constant (Higham, §10.1.1 — the
/// paper notes the standard analysis applies to *every* summation order).
pub fn residual_tolerance(n: usize) -> f64 {
    32.0 * n as f64 * f64::EPSILON
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::kernels::potf2;
    use crate::spd;

    #[test]
    fn fro_norm_basics() {
        let a = Matrix::from_rows(2, 2, &[3.0, 0.0, 0.0, 4.0]);
        assert!((fro_norm(&a) - 5.0).abs() < 1e-15);
        assert_eq!(fro_norm(&Matrix::<f64>::zeros(3, 3)), 0.0);
    }

    #[test]
    fn max_abs_diff_detects_difference() {
        let a = Matrix::<f64>::identity(3);
        let mut b = a.clone();
        b[(2, 1)] = 0.5;
        assert_eq!(max_abs_diff(&a, &b), 0.5);
        assert_eq!(max_abs_diff(&a, &a), 0.0);
    }

    #[test]
    fn residual_small_for_true_factor() {
        let mut rng = spd::test_rng(11);
        let a = spd::random_spd(20, &mut rng);
        let mut f = a.clone();
        potf2(&mut f).unwrap();
        let r = cholesky_residual(&a, &f);
        assert!(r < residual_tolerance(20), "residual {r}");
    }

    #[test]
    fn residual_large_for_wrong_factor() {
        let mut rng = spd::test_rng(12);
        let a = spd::random_spd(10, &mut rng);
        let wrong = Matrix::<f64>::identity(10);
        assert!(cholesky_residual(&a, &wrong) > 0.1);
    }
}
