//! Real wall-clock of the factorization kernels themselves (no
//! instrumentation): the algorithm zoo run through the NullTracer, the
//! reference potf2, and the rayon parallel variants.

use criterion::{Criterion, criterion_group, criterion_main};
use cholcomm_core::cachesim::NullTracer;
use cholcomm_core::layout::{ColMajor, Morton};
use cholcomm_core::matrix::{kernels, spd};
use cholcomm_core::par::{par_recursive_potrf, par_tiled_potrf, wavefront_potrf};
use cholcomm_core::seq::zoo::{run_alg, Algorithm};
use std::hint::black_box;

fn bench_wallclock(c: &mut Criterion) {
    let n = 256;
    let mut rng = spd::test_rng(9);
    let a = spd::random_spd(n, &mut rng);

    let mut g = c.benchmark_group(format!("wallclock_n{n}"));
    g.sample_size(10);
    g.bench_function("potf2_reference", |bch| {
        bch.iter(|| {
            let mut f = a.clone();
            kernels::potf2(&mut f).unwrap();
            black_box(f)
        })
    });
    for (name, alg) in [
        ("naive_left", Algorithm::NaiveLeft),
        ("lapack_b32", Algorithm::LapackBlocked { b: 32 }),
        ("toledo", Algorithm::Toledo { gemm_leaf: 16 }),
        ("ap00_colmajor", Algorithm::Ap00 { leaf: 16 }),
    ] {
        g.bench_function(name, |bch| {
            bch.iter(|| {
                black_box(run_alg(alg, black_box(&a), ColMajor::square(n), &mut NullTracer).unwrap())
            })
        });
    }
    g.bench_function("ap00_morton", |bch| {
        bch.iter(|| {
            black_box(
                run_alg(
                    Algorithm::Ap00 { leaf: 16 },
                    black_box(&a),
                    Morton::square(n),
                    &mut NullTracer,
                )
                .unwrap(),
            )
        })
    });
    g.bench_function("par_tiled_b32", |bch| {
        bch.iter(|| {
            let mut f = a.clone();
            par_tiled_potrf(&mut f, 32).unwrap();
            black_box(f)
        })
    });
    g.bench_function("par_recursive_c32", |bch| {
        bch.iter(|| {
            let mut f = a.clone();
            par_recursive_potrf(&mut f, 32).unwrap();
            black_box(f)
        })
    });
    let workers = std::thread::available_parallelism().map_or(4, |v| v.get());
    g.bench_function("wavefront_b32", |bch| {
        bch.iter(|| {
            let mut f = a.clone();
            wavefront_potrf(&mut f, 32, workers).unwrap();
            black_box(f)
        })
    });
    g.finish();
}

criterion_group!(benches, bench_wallclock);
criterion_main!(benches);
