//! Real out-of-core factorization bench: wall-clock and real I/O of the
//! file-backed blocked Cholesky across cache capacities, plus an
//! in-memory baseline.

use cholcomm_core::matrix::{kernels, spd};
use cholcomm_core::ooc::{ooc_potrf, ooc_potrf_pipelined_with, FileMatrix, PipelineConfig};
use cholcomm_core::report::TextTable;
use criterion::{criterion_group, criterion_main, Criterion};
use std::hint::black_box;

fn bench_ooc(c: &mut Criterion) {
    let n = 128;
    let b = 16;
    let mut rng = spd::test_rng(17);
    let a = spd::random_spd(n, &mut rng);

    // Print the real-I/O table once.
    let mut t = TextTable::new(
        &format!("Out-of-core real I/O (n = {n}, b = {b})"),
        &[
            "driver",
            "cache tiles",
            "bytes read",
            "bytes written",
            "seeks",
            "seek distance",
        ],
    );
    for cap in [3usize, 8, 32, 256] {
        let path = cholcomm_core::ooc::filemat::scratch_path(&format!("bench{cap}"));
        let mut fm = FileMatrix::create(&path, &a, b).unwrap();
        ooc_potrf(&mut fm, cap).unwrap();
        let s = fm.stats();
        t.row(vec![
            "sync".to_string(),
            cap.to_string(),
            s.bytes_read.to_string(),
            s.bytes_written.to_string(),
            s.seeks.to_string(),
            s.seek_distance.to_string(),
        ]);
        // Same capacity through the prefetching pipeline: identical
        // bytes (the miss stream is the plan's), but the head travels
        // differently because write-backs are deferred and batched.
        let path = cholcomm_core::ooc::filemat::scratch_path(&format!("benchp{cap}"));
        let mut fm = FileMatrix::create(&path, &a, b).unwrap();
        ooc_potrf_pipelined_with(&mut fm, &PipelineConfig::new(cap).with_io_workers(2)).unwrap();
        let s = fm.stats();
        t.row(vec![
            "pipelined".to_string(),
            cap.to_string(),
            s.bytes_read.to_string(),
            s.bytes_written.to_string(),
            s.seeks.to_string(),
            s.seek_distance.to_string(),
        ]);
    }
    println!("{}", t.render());

    let mut g = c.benchmark_group(format!("ooc_n{n}"));
    g.sample_size(10);
    g.bench_function("in_memory_potf2", |bch| {
        bch.iter(|| {
            let mut f = a.clone();
            kernels::potf2(&mut f).unwrap();
            black_box(f)
        })
    });
    for cap in [3usize, 32] {
        g.bench_function(format!("ooc_cache{cap}"), |bch| {
            bch.iter(|| {
                let path =
                    cholcomm_core::ooc::filemat::scratch_path(&format!("iter{cap}"));
                let mut fm = FileMatrix::create(&path, &a, b).unwrap();
                ooc_potrf(&mut fm, cap).unwrap();
                black_box(fm.stats())
            })
        });
        g.bench_function(format!("ooc_pipelined_cache{cap}"), |bch| {
            bch.iter(|| {
                let path =
                    cholcomm_core::ooc::filemat::scratch_path(&format!("piter{cap}"));
                let mut fm = FileMatrix::create(&path, &a, b).unwrap();
                let cfg = PipelineConfig::new(cap).with_io_workers(2);
                ooc_potrf_pipelined_with(&mut fm, &cfg).unwrap();
                black_box(fm.stats())
            })
        });
    }
    g.finish();
}

criterion_group!(benches, bench_ooc);
criterion_main!(benches);
