//! Criterion bench of Algorithm 1 (matrix multiplication by Cholesky)
//! vs a direct multiplication, plus the regenerated Theorem 1 table.

use criterion::{Criterion, criterion_group, criterion_main};
use cholcomm_core::matrix::kernels;
use cholcomm_core::theorem1::{random_inputs, render_reduction, run_reduction};
use cholcomm_core::seq::zoo::{run_alg, Algorithm};
use cholcomm_core::layout::ColMajor;
use cholcomm_core::cachesim::NullTracer;
use cholcomm_core::starred::{build_t_prime, extract_product};
use std::hint::black_box;

fn bench_reduction(c: &mut Criterion) {
    let rows = run_reduction(24, 192, 5);
    println!("{}", render_reduction(24, 192, &rows));

    let n = 24;
    let (a, b) = random_inputs(n, 6);
    let mut g = c.benchmark_group("theorem1");
    g.sample_size(10);
    g.bench_function("matmul_via_cholesky", |bch| {
        bch.iter(|| {
            let t = build_t_prime(black_box(&a), black_box(&b));
            let f = run_alg(
                Algorithm::Ap00 { leaf: 4 },
                &t,
                ColMajor::square(3 * n),
                &mut NullTracer,
            )
            .unwrap();
            black_box(extract_product(&f, n).unwrap())
        })
    });
    g.bench_function("matmul_direct", |bch| {
        bch.iter(|| black_box(kernels::matmul(black_box(&a), black_box(&b))))
    });
    g.finish();
}

criterion_group!(benches, bench_reduction);
criterion_main!(benches);
