//! Ablation benches for the design choices called out in DESIGN.md:
//! message-coalescing streams, recursion leaf size, LAPACK block size,
//! and the ScaLAPACK block-size trade.

use criterion::{Criterion, criterion_group, criterion_main};
use cholcomm_core::cachesim::LruTracer;
use cholcomm_core::distsim::CostModel;
use cholcomm_core::layout::{Laid, Morton};
use cholcomm_core::matrix::spd;
use cholcomm_core::par::pxpotrf::pxpotrf;
use cholcomm_core::report::{fnum, TextTable};
use cholcomm_core::seq::ap00::square_rchol;
use cholcomm_core::seq::zoo::{run_algorithm, Algorithm, LayoutKind, ModelKind};
use std::hint::black_box;

/// Ablation 1: coalescing streams 0 / 1 / 8 on AP00+Morton latency.
fn ablate_streams(n: usize, m: usize) {
    let mut rng = spd::test_rng(12);
    let a = spd::random_spd(n, &mut rng);
    let mut t = TextTable::new(
        &format!("Ablation: message-coalescing streams (AP00, Morton, n={n}, M={m})"),
        &["streams", "words", "messages", "msgs/(n^3/M^1.5)"],
    );
    for streams in [0usize, 1, 2, 8, 32] {
        let mut tr = LruTracer::with_streams(m, true, streams);
        let mut laid = Laid::from_matrix(&a, Morton::square(n));
        square_rchol(&mut laid, &mut tr, 4).unwrap();
        tr.flush();
        let s = tr.total_stats();
        let scale = (n as f64).powi(3) / (m as f64).powf(1.5);
        t.row(vec![
            streams.to_string(),
            s.words.to_string(),
            s.messages.to_string(),
            fnum(s.messages as f64 / scale),
        ]);
    }
    println!("{}", t.render());
}

/// Ablation 2: recursion leaf size (cache-obliviousness must be
/// insensitive; simulator cost is not).
fn ablate_leaf(n: usize, m: usize) {
    let mut rng = spd::test_rng(13);
    let a = spd::random_spd(n, &mut rng);
    let mut t = TextTable::new(
        &format!("Ablation: recursion leaf size (AP00, Morton, n={n}, M={m})"),
        &["leaf", "words", "messages"],
    );
    for leaf in [1usize, 2, 4, 8, 16] {
        let rep = run_algorithm(
            Algorithm::Ap00 { leaf },
            &a,
            LayoutKind::Morton,
            &ModelKind::Lru { m },
        )
        .unwrap();
        t.row(vec![
            leaf.to_string(),
            rep.levels[0].words.to_string(),
            rep.levels[0].messages.to_string(),
        ]);
    }
    println!("{}", t.render());
}

/// Ablation 3: LAPACK block size around sqrt(M/3).
fn ablate_lapack_b(n: usize, m: usize) {
    let mut rng = spd::test_rng(14);
    let a = spd::random_spd(n, &mut rng);
    let b_opt = (((m / 3) as f64).sqrt() as usize).max(1);
    let mut t = TextTable::new(
        &format!("Ablation: LAPACK block size (n={n}, M={m}, sqrt(M/3)={b_opt})"),
        &["b", "words", "messages"],
    );
    for b in [1usize, b_opt / 2, b_opt, 2 * b_opt] {
        if b == 0 || 3 * b * b > 4 * m {
            continue;
        }
        let rep = run_algorithm(
            Algorithm::LapackBlocked { b },
            &a,
            LayoutKind::Blocked(b),
            &ModelKind::Counting { message_cap: Some(m) },
        )
        .unwrap();
        t.row(vec![
            b.to_string(),
            rep.levels[0].words.to_string(),
            rep.levels[0].messages.to_string(),
        ]);
    }
    println!("{}", t.render());
}

/// Ablation 4: ScaLAPACK block-size trade (latency vs bandwidth).
fn ablate_scalapack_b(n: usize, p: usize) {
    let mut rng = spd::test_rng(15);
    let a = spd::random_spd(n, &mut rng);
    let mut t = TextTable::new(
        &format!("Ablation: ScaLAPACK block size (n={n}, P={p})"),
        &["b", "cp words", "cp msgs"],
    );
    let b_opt = n / (p as f64).sqrt() as usize;
    for b in [b_opt / 8, b_opt / 4, b_opt / 2, b_opt] {
        if b == 0 {
            continue;
        }
        let rep = pxpotrf(&a, b, p, CostModel::typical()).unwrap();
        t.row(vec![
            b.to_string(),
            rep.critical.words.to_string(),
            rep.critical.messages.to_string(),
        ]);
    }
    println!("{}", t.render());
}

fn bench_ablations(c: &mut Criterion) {
    ablate_streams(64, 192);
    ablate_leaf(64, 192);
    ablate_lapack_b(128, 768);
    ablate_scalapack_b(128, 16);

    // A timing handle so criterion has something to measure per run.
    let mut rng = spd::test_rng(16);
    let a = spd::random_spd(64, &mut rng);
    let mut g = c.benchmark_group("ablation_leaf_sim_cost");
    g.sample_size(10);
    for leaf in [1usize, 4, 16] {
        g.bench_function(format!("leaf{leaf}"), |bch| {
            bch.iter(|| {
                black_box(
                    run_algorithm(
                        Algorithm::Ap00 { leaf },
                        black_box(&a),
                        LayoutKind::Morton,
                        &ModelKind::Lru { m: 192 },
                    )
                    .unwrap(),
                )
            })
        });
    }
    g.finish();
}

criterion_group!(benches, bench_ablations);
criterion_main!(benches);
