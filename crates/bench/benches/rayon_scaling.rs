//! Strong-scaling of the rayon shared-memory Cholesky: fixed problem,
//! growing thread pool.

use criterion::{Criterion, criterion_group, criterion_main};
use cholcomm_core::matrix::spd;
use cholcomm_core::par::{par_recursive_potrf, par_tiled_potrf, wavefront_potrf};
use std::hint::black_box;

fn bench_scaling(c: &mut Criterion) {
    let n = 384;
    let mut rng = spd::test_rng(10);
    let a = spd::random_spd(n, &mut rng);
    let max_threads = std::thread::available_parallelism().map_or(4, |v| v.get());

    let mut g = c.benchmark_group(format!("rayon_scaling_n{n}"));
    g.sample_size(10);
    let mut threads = 1usize;
    while threads <= max_threads {
        let pool = rayon::ThreadPoolBuilder::new()
            .num_threads(threads)
            .build()
            .unwrap();
        g.bench_function(format!("tiled_t{threads}"), |bch| {
            bch.iter(|| {
                pool.install(|| {
                    let mut f = a.clone();
                    par_tiled_potrf(&mut f, 32).unwrap();
                    black_box(f)
                })
            })
        });
        g.bench_function(format!("recursive_t{threads}"), |bch| {
            bch.iter(|| {
                pool.install(|| {
                    let mut f = a.clone();
                    par_recursive_potrf(&mut f, 32).unwrap();
                    black_box(f)
                })
            })
        });
        g.bench_function(format!("wavefront_t{threads}"), |bch| {
            bch.iter(|| {
                let mut f = a.clone();
                wavefront_potrf(&mut f, 32, threads).unwrap();
                black_box(f)
            })
        });
        threads *= 2;
    }
    g.finish();
}

criterion_group!(benches, bench_scaling);
criterion_main!(benches);
