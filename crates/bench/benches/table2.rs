//! Criterion bench over the Table 2 (PxPOTRF) simulator, plus the
//! regenerated table.

use criterion::{Criterion, criterion_group, criterion_main};
use cholcomm_core::distsim::CostModel;
use cholcomm_core::matrix::spd;
use cholcomm_core::par::pxpotrf::pxpotrf;
use cholcomm_core::table2::{render_table2, run_table2};
use std::hint::black_box;

fn bench_table2(c: &mut Criterion) {
    let pts = run_table2(96, &[1, 4, 16], 3);
    println!("{}", render_table2(96, &pts));

    let n = 96;
    let mut rng = spd::test_rng(4);
    let a = spd::random_spd(n, &mut rng);
    let mut g = c.benchmark_group("pxpotrf_sim");
    g.sample_size(10);
    for (p, b) in [(4usize, 48usize), (16, 24), (16, 8), (64, 12)] {
        g.bench_function(format!("P{p}_b{b}"), |bch| {
            bch.iter(|| {
                let rep = pxpotrf(black_box(&a), b, p, CostModel::typical()).unwrap();
                black_box(rep.critical.words)
            })
        });
    }
    g.finish();
}

criterion_group!(benches, bench_table2);
criterion_main!(benches);
