//! Criterion bench over the Table 1 simulator runs: how expensive is it
//! to *measure* each algorithm's communication, and (printed first) the
//! regenerated table itself.

use criterion::{Criterion, criterion_group, criterion_main};
use cholcomm_core::matrix::spd;
use cholcomm_core::seq::zoo::{all_algorithms, run_algorithm, Algorithm, LayoutKind, ModelKind};
use cholcomm_core::table1::{render_table1, table1_at};
use std::hint::black_box;

fn bench_table1(c: &mut Criterion) {
    // Print the regenerated table once, so `cargo bench` reproduces the
    // paper artifact as a side effect.
    let (cfg, rows) = table1_at(64, 192, 1);
    println!("{}", render_table1(cfg, &rows));

    let n = 64;
    let m = 192;
    let mut rng = spd::test_rng(2);
    let a = spd::random_spd(n, &mut rng);
    let mut g = c.benchmark_group("table1_sim");
    g.sample_size(10);
    for alg in all_algorithms(m) {
        let (layout, model) = match alg {
            Algorithm::NaiveLeft | Algorithm::NaiveRight => (
                LayoutKind::ColMajor,
                ModelKind::Counting { message_cap: Some(m) },
            ),
            Algorithm::LapackBlocked { .. } => (
                LayoutKind::Blocked(8),
                ModelKind::Counting { message_cap: Some(m) },
            ),
            _ => (LayoutKind::Morton, ModelKind::Lru { m }),
        };
        g.bench_function(alg.name(), |bch| {
            bch.iter(|| {
                let rep = run_algorithm(alg, black_box(&a), layout, &model).unwrap();
                black_box(rep.levels[0].words)
            })
        });
    }
    g.finish();
}

criterion_group!(benches, bench_table1);
criterion_main!(benches);
