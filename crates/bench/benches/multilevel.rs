//! Criterion bench of the stack-distance hierarchy simulator, plus the
//! regenerated Corollary 3.2 table.

use criterion::{Criterion, criterion_group, criterion_main};
use cholcomm_core::multilevel::{render_multilevel, run_multilevel};
use cholcomm_core::matrix::spd;
use cholcomm_core::seq::zoo::{run_algorithm, Algorithm, LayoutKind, ModelKind};
use std::hint::black_box;

fn bench_multilevel(c: &mut Criterion) {
    let caps = vec![48usize, 96, 512];
    let rows = run_multilevel(64, &caps, 7);
    println!("{}", render_multilevel(64, &caps, &rows));

    let n = 64;
    let mut rng = spd::test_rng(8);
    let a = spd::random_spd(n, &mut rng);
    let mut g = c.benchmark_group("hierarchy_sim");
    g.sample_size(10);
    for levels in [1usize, 2, 4] {
        let capacities: Vec<usize> = (0..levels).map(|i| 48 << (2 * i)).collect();
        let model = ModelKind::Hierarchy { capacities };
        g.bench_function(format!("ap00_{levels}_levels"), |bch| {
            bch.iter(|| {
                let rep = run_algorithm(
                    Algorithm::Ap00 { leaf: 4 },
                    black_box(&a),
                    LayoutKind::Morton,
                    &model,
                )
                .unwrap();
                black_box(rep.levels.len())
            })
        });
    }
    g.finish();
}

criterion_group!(benches, bench_multilevel);
criterion_main!(benches);
