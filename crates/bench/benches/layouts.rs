//! Figure 2 as a bench: address-map throughput and block-read message
//! counts per storage format, plus layout conversion (footnote 3).

use criterion::{Criterion, criterion_group, criterion_main};
use cholcomm_core::figures::{figure2, sweep_block_reads};
use cholcomm_core::layout::convert::convert_counted;
use cholcomm_core::layout::{Blocked, ColMajor, Laid, Morton, PackedLower, RecursivePacked};
use cholcomm_core::matrix::spd;
use std::hint::black_box;

fn bench_layouts(c: &mut Criterion) {
    println!("{}", figure2(256, 16));
    let n = 256;
    let b = 16;
    let mut g = c.benchmark_group("layout_block_sweep");
    g.sample_size(10);
    g.bench_function("colmajor", |bch| {
        let l = ColMajor::square(n);
        bch.iter(|| black_box(sweep_block_reads(&l, n, b)))
    });
    g.bench_function("blocked", |bch| {
        let l = Blocked::square(n, b);
        bch.iter(|| black_box(sweep_block_reads(&l, n, b)))
    });
    g.bench_function("morton", |bch| {
        let l = Morton::square(n);
        bch.iter(|| black_box(sweep_block_reads(&l, n, b)))
    });
    g.bench_function("packed", |bch| {
        let l = PackedLower::new(n);
        bch.iter(|| black_box(sweep_block_reads(&l, n, b)))
    });
    g.bench_function("recursive_packed", |bch| {
        let l = RecursivePacked::new(n);
        bch.iter(|| black_box(sweep_block_reads(&l, n, b)))
    });
    g.finish();

    let mut rng = spd::test_rng(11);
    let a = spd::random_spd(n, &mut rng);
    let src = Laid::from_matrix(&a, ColMajor::square(n));
    let mut g2 = c.benchmark_group("layout_convert");
    g2.sample_size(10);
    g2.bench_function("colmajor_to_blocked", |bch| {
        bch.iter(|| black_box(convert_counted(&src, Blocked::square(n, b), 1024)))
    });
    g2.bench_function("colmajor_to_morton", |bch| {
        bch.iter(|| black_box(convert_counted(&src, Morton::square(n), 1024)))
    });
    g2.finish();
}

criterion_group!(benches, bench_layouts);
criterion_main!(benches);
