//! Benchmark harness for the cholcomm workspace: table/figure regeneration binaries (src/bin) and criterion benches (benches/).
