//! Regenerate **Figure 6**: the block-cyclic distribution map (the
//! paper's own example: n = 24, b = 4, P = 9).

use cholcomm_core::figures::figure6;

fn main() {
    println!("{}", figure6(24, 4, 9));
    println!("{}", figure6(32, 4, 16));
}
