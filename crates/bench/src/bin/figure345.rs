//! Regenerate **Figures 3-5**: the algorithm families' traffic on one
//! (n, M) point.

use cholcomm_core::figures::{figure345, figure3_profile, figure45_structure};

fn main() {
    println!("{}", figure345(64, 192, 4000));
    println!("{}", figure345(128, 768, 4001));
    println!("{}", figure3_profile(64));
    println!("{}", figure45_structure(16, 2));
}
