//! Regenerate **Table 2** (parallel ScaLAPACK PxPOTRF vs the 2D lower
//! bounds) across processor counts and block sizes.
//!
//! ```text
//! cargo run --release -p cholcomm-bench --bin table2
//! ```

use cholcomm_core::distsim::CostModel;
use cholcomm_core::matrix::{spd, Matrix};
use cholcomm_core::par::matmul_25d;
use cholcomm_core::report::TextTable;
use cholcomm_core::table2::{render_table2, run_table2};
use rand::RngExt;

fn main() {
    for n in [96usize, 192] {
        let pts = run_table2(n, &[1, 4, 16, 64], 2000 + n as u64);
        println!("{}", render_table2(n, &pts));
    }

    // The "General" lower-bound row of Table 2: extra memory buys
    // communication (Theorem 2 at general M), demonstrated with 2.5D
    // replicated matrix multiplication at fixed P = 64.
    let n = 64;
    let mut rng = spd::test_rng(2500);
    let a = Matrix::from_fn(n, n, |_, _| rng.random_range(-1.0..1.0));
    let b = Matrix::from_fn(n, n, |_, _| rng.random_range(-1.0..1.0));
    let mut t = TextTable::new(
        &format!("Table 2 'General' row: 2.5D matmul, n = {n}, P = 64 = c*q^2"),
        &["c", "q", "M/proc", "cp words", "cp msgs", "words/(n^3/(P sqrt(M)))"],
    );
    for (q, c) in [(8usize, 1usize), (4, 4)] {
        let rep = matmul_25d(&a, &b, q, c, CostModel::typical()).unwrap();
        let p = c * q * q;
        let m = rep.words_per_proc as f64;
        let scale = (n as f64).powi(3) / (p as f64 * m.sqrt());
        t.row(vec![
            c.to_string(),
            q.to_string(),
            rep.words_per_proc.to_string(),
            rep.critical.words.to_string(),
            rep.critical.messages.to_string(),
            format!("{:.2}", rep.critical.words as f64 / scale),
        ]);
    }
    println!("{}", t.render());
    println!("replication (c > 1) trades memory for bandwidth exactly as the");
    println!("general-M lower bound n^3/(P sqrt(M)) predicts.");
    println!("Reading guide (Conclusion 6):");
    println!("  at b = n/sqrt(P): words/(n^2/sqrtP) and msgs/sqrtP are O(log P);");
    println!("  smaller b multiplies messages by ~b_opt/b while words stay flat;");
    println!("  flops/(n^3/3P) stays O(1): latency-optimal blocking costs no flops.");
}
