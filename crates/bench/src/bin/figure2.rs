//! Regenerate **Figure 2**: the storage formats, as the message cost of
//! block and column reads under each format.

use cholcomm_core::figures::figure2;

fn main() {
    println!("{}", figure2(64, 8));
    println!("{}", figure2(256, 16));
    println!("column-major class: block reads cost b messages; block-contiguous: 1.");
}
