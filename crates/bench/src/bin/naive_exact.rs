//! Exact closed-form check for the naïve algorithms (Sections
//! 3.1.4–3.1.5): measured words and messages must equal the paper's
//! polynomials to the last word.
//!
//! ```text
//! cargo run --release -p cholcomm-bench --bin naive_exact
//! ```

use cholcomm_core::cachesim::{CountingTracer, Tracer};
use cholcomm_core::layout::{ColMajor, Laid};
use cholcomm_core::matrix::spd;
use cholcomm_core::report::TextTable;
use cholcomm_core::seq::naive;

fn main() {
    let mut t = TextTable::new(
        "Naive algorithms vs the paper's closed forms (exact)",
        &[
            "n",
            "LL words",
            "n^3/6+n^2+5n/6",
            "LL msgs",
            "n^2/2+3n/2",
            "RL words",
            "n^3/3+n^2+2n/3",
            "RL msgs",
            "n^2+n",
        ],
    );
    for n in [8usize, 16, 32, 64, 128, 256] {
        let mut rng = spd::test_rng(n as u64);
        let a = spd::random_spd(n, &mut rng);

        let mut l = Laid::from_matrix(&a, ColMajor::square(n));
        let mut tr = CountingTracer::uncapped();
        naive::left_looking(&mut l, &mut tr).unwrap();
        let ll = tr.stats();

        let mut r = Laid::from_matrix(&a, ColMajor::square(n));
        let mut tr2 = CountingTracer::uncapped();
        naive::right_looking(&mut r, &mut tr2).unwrap();
        let rl = tr2.stats();

        let nn = n as u64;
        assert_eq!(ll.words, naive::left_looking_words(nn));
        assert_eq!(ll.messages, naive::left_looking_messages(nn));
        assert_eq!(rl.words, naive::right_looking_words(nn));
        assert_eq!(rl.messages, naive::right_looking_messages(nn));
        t.row(vec![
            n.to_string(),
            ll.words.to_string(),
            naive::left_looking_words(nn).to_string(),
            ll.messages.to_string(),
            naive::left_looking_messages(nn).to_string(),
            rl.words.to_string(),
            naive::right_looking_words(nn).to_string(),
            rl.messages.to_string(),
            naive::right_looking_messages(nn).to_string(),
        ]);
    }
    println!("{}", t.render());
    println!("every measured count equals the paper's polynomial exactly.");
}
