//! Parameter sweeps: the *series* behind the paper's tables, emitted as
//! CSV (stdout or `results/*.csv` with `--write`) so the curves — words
//! vs `n`, messages vs `M`, critical path vs `P` — can be plotted or
//! regression-checked.
//!
//! ```text
//! cargo run --release -p cholcomm-bench --bin sweeps [--write]
//! ```

use cholcomm_core::distsim::CostModel;
use cholcomm_core::matrix::spd;
use cholcomm_core::par::pxpotrf::pxpotrf;
use cholcomm_core::seq::zoo::{price_trace, Algorithm, LayoutKind, ModelKind};
use cholcomm_core::sweep::{par_map, TraceCache};
use std::fmt::Write as _;

fn seq_sweep_words_vs_n(ms: usize) -> String {
    let mut csv = String::from("n,naive_left,lapack_blocked,toledo_morton,ap00_morton\n");
    let b = (((ms / 3) as f64).sqrt() as usize).max(1);
    let counting = ModelKind::Counting { message_cap: Some(ms) };
    let lru = ModelKind::Lru { m: ms };
    for n in [32usize, 64, 128, 256] {
        if n * n <= ms {
            continue;
        }
        let mut rng = spd::test_rng(7000 + n as u64);
        let a = spd::random_spd(n, &mut rng);
        let cache = TraceCache::new();
        let cases = [
            (Algorithm::NaiveLeft, LayoutKind::ColMajor, &counting),
            (Algorithm::LapackBlocked { b }, LayoutKind::Blocked(b), &counting),
            (Algorithm::Toledo { gemm_leaf: 4 }, LayoutKind::Morton, &lru),
            (Algorithm::Ap00 { leaf: 4 }, LayoutKind::Morton, &lru),
        ];
        let words = par_map(&cases, |&(alg, layout, model)| {
            price_trace(&cache.trace(alg, layout, &a).unwrap(), model)[0].words
        });
        let _ = writeln!(csv, "{n},{},{},{},{}", words[0], words[1], words[2], words[3]);
    }
    csv
}

fn seq_sweep_messages_vs_m(n: usize) -> String {
    let mut csv = String::from("M,lapack_colmajor,lapack_blocked,toledo_morton,ap00_morton\n");
    let mut rng = spd::test_rng(7100 + n as u64);
    let a = spd::random_spd(n, &mut rng);
    // One cache across the whole M ladder: the cache-oblivious rows
    // (Toledo, AP00) record once and replay at every M; only LAPACK,
    // whose block size is a function of M, records per point.
    let cache = TraceCache::new();
    let points: Vec<usize> = [96usize, 192, 384, 768, 1536]
        .into_iter()
        .filter(|&ms| n * n > ms)
        .collect();
    let mut jobs: Vec<(Algorithm, LayoutKind, ModelKind)> = Vec::new();
    for &ms in &points {
        let b = (((ms / 3) as f64).sqrt() as usize).max(1);
        let counting = ModelKind::Counting { message_cap: Some(ms) };
        let lru = ModelKind::Lru { m: ms };
        jobs.push((Algorithm::LapackBlocked { b }, LayoutKind::ColMajor, counting.clone()));
        jobs.push((Algorithm::LapackBlocked { b }, LayoutKind::Blocked(b), counting));
        jobs.push((Algorithm::Toledo { gemm_leaf: 4 }, LayoutKind::Morton, lru.clone()));
        jobs.push((Algorithm::Ap00 { leaf: 4 }, LayoutKind::Morton, lru));
    }
    let msgs = par_map(&jobs, |(alg, layout, model)| {
        price_trace(&cache.trace(*alg, *layout, &a).unwrap(), model)[0].messages
    });
    for (i, &ms) in points.iter().enumerate() {
        let row = &msgs[4 * i..4 * i + 4];
        let _ = writeln!(csv, "{ms},{},{},{},{}", row[0], row[1], row[2], row[3]);
    }
    csv
}

fn par_sweep_vs_p(n: usize) -> String {
    let mut csv = String::from("P,b,cp_words,cp_messages,max_flops\n");
    let mut rng = spd::test_rng(7200 + n as u64);
    let a = spd::random_spd(n, &mut rng);
    for p in [1usize, 4, 16, 64] {
        let b = (n / (p as f64).sqrt() as usize).max(1);
        let rep = pxpotrf(&a, b, p, CostModel::typical()).unwrap();
        let _ = writeln!(
            csv,
            "{p},{b},{},{},{}",
            rep.critical.words, rep.critical.messages, rep.max_proc_flops
        );
    }
    csv
}

fn main() {
    let write = std::env::args().any(|a| a == "--write");
    let outputs = [
        ("seq_words_vs_n_M768.csv", seq_sweep_words_vs_n(768)),
        ("seq_messages_vs_M_n128.csv", seq_sweep_messages_vs_m(128)),
        ("par_critical_path_vs_P_n192.csv", par_sweep_vs_p(192)),
    ];
    for (name, csv) in outputs {
        if write {
            std::fs::create_dir_all("results").expect("results dir");
            std::fs::write(format!("results/{name}"), &csv).expect("write csv");
            println!("wrote results/{name}");
        } else {
            println!("# {name}\n{csv}");
        }
    }
}
