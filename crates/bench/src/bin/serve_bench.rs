//! Availability, latency, and batching benchmark of the
//! `cholcomm-serve` factorization service under the standard chaos
//! scenarios, and the repo's tracked service artifact.
//!
//! ```text
//! cargo run --release -p cholcomm-bench --bin serve_bench             # full run
//! cargo run --release -p cholcomm-bench --bin serve_bench -- --smoke  # CI smoke
//! cargo run --release -p cholcomm-bench --bin serve_bench -- --smoke --baseline BENCH_serve.json
//! cargo run --release -p cholcomm-bench --bin serve_bench -- --sweep 50000
//! ```
//!
//! Three sections beyond the chaos matrix (all in the
//! `cholcomm-serve-bench/v2` artifact):
//!
//! - **`batching`** — the same deterministic small-n Zipf factor/solve
//!   mix driven twice through identical services, once unbatched and
//!   once with size-bucketed batching, cache disabled so every request
//!   does arithmetic.  Reports virtual makespan and throughput for
//!   both, the realized mean batch size, and gates on **>= 3x virtual
//!   throughput** for the batched run — with bit-identity (vs direct
//!   unfaulted factorizations) and replay-identity (two batched runs,
//!   equal log digests) both required, so the speedup can never be
//!   bought with wrong or nondeterministic answers.
//! - **`wall_slo`** — wall-clock latency SLOs on the clean scenario
//!   (p50 <= 50ms, p99 <= 250ms end-to-end).  Wall time is
//!   machine-dependent, so the gate is **enforced only on hosts with
//!   at least 4 cores** (as the kernel bench's scaling section does);
//!   smaller hosts record the measurements with `enforced: false`.
//! - **`sweep`** — a loadgen endurance run of the batched service over
//!   `--sweep N` requests (default one million when built with the
//!   `million-sweep` feature, fifty thousand otherwise — CI uses the
//!   small default under a wall-clock cap).  Driven in windows so the
//!   in-flight ticket set stays bounded; reports virtual and wall
//!   throughput and the batching counters.
//!
//! For every [`ChaosScenario`] (clean, bit-flip, transient-EIO,
//! worker-crash, burst-overload, power-cut) the bench drives a seeded
//! Zipf/Pareto request stream through the service and records
//! availability, deterministic virtual p50/p99, wall-clock p50/p99, and
//! throughput.  Each scenario runs **twice** and the canonical event-log
//! digests must match (the replay contract); every completed response's
//! factor digest must equal an unfaulted direct factorization of the
//! same problem (the bit-identity contract).  Either failing is exit 1.
//!
//! The power-cut scenario is special: each run is **two service
//! processes** over one simulated disk.  The first serves half the
//! stream with a durable (journaled) factor cache, then the disk is
//! crashed at a seeded crash site of its recorded op schedule; the
//! second process recovers the journal and serves the rest.  Recovered
//! entries counted by `cache_recovered` must be > 0 and every served
//! factor still bit-identical.
//!
//! `--baseline <path>` reads a previous artifact and fails if any
//! scenario's *virtual* p99 regressed more than 30% above it or its
//! availability dropped more than 30% below it — the CI regression
//! gates, on the deterministic metrics so the gate itself cannot flake.
//! Results are hand-rolled JSON (offline workspace, no serde) written to
//! `BENCH_serve.json` at the repo root, or `BENCH_serve.smoke.json`
//! under `--smoke`.

use cholcomm_core::matrix::lower_digest;
use cholcomm_core::serve::engine::{factor_resumable, Checkpoint, FactorOutcome, PanelControl};
use cholcomm_core::serve::{
    build, BatchConfig, ChaosScenario, JobKind, Request, Service, ServiceConfig, ShardConfig,
    Ticket, Watermarks, Workload,
};
use std::collections::HashMap;
use std::fmt::Write as _;
use std::time::Instant;

/// Minimum batched-over-unbatched virtual throughput on the small-n mix.
const BATCH_SPEEDUP_GATE: f64 = 3.0;
/// Wall-clock SLO targets (clean scenario, end-to-end per request).
const SLO_WALL_P50_US: f64 = 50_000.0;
const SLO_WALL_P99_US: f64 = 250_000.0;
/// The wall gate only binds on hosts with this many cores (wall time on
/// a starved 1-2 core box measures the scheduler, not the service).
const SLO_MIN_CORES: usize = 4;

struct ScenarioResult {
    name: &'static str,
    requests: usize,
    completed: u64,
    shed_overload: u64,
    breaker_refused: u64,
    deadline_canceled: u64,
    degraded_served: u64,
    worker_restarts: u64,
    cache_healed: u64,
    cache_recovered: u64,
    availability: f64,
    virt_p50_us: u64,
    virt_p99_us: u64,
    wall_p50_us: f64,
    wall_p99_us: f64,
    throughput_rps: f64,
    bit_identical: bool,
    replay_identical: bool,
    log_digest: u64,
}

/// One leg (unbatched or batched) of the batching comparison.
struct BatchLeg {
    batched: bool,
    requests: usize,
    completed: u64,
    batches_dispatched: u64,
    batched_factorizations: u64,
    virt_makespan_us: u64,
    virt_throughput_rps: f64,
    wall_s: f64,
    bit_identical: bool,
    replay_identical: bool,
    log_digest: u64,
}

struct SweepResult {
    requests: usize,
    completed: u64,
    shed_overload: u64,
    deadline_canceled: u64,
    batches_dispatched: u64,
    batched_factorizations: u64,
    virt_makespan_us: u64,
    virt_throughput_rps: f64,
    wall_s: f64,
    wall_rps: f64,
}

/// Direct, unfaulted factorization digest of a `(kind, key, n)` triple —
/// the reference every completed response is checked against.
fn direct_digest(
    memo: &mut HashMap<(JobKind, u64, usize), u64>,
    kind: JobKind,
    key: u64,
    n: usize,
    block: usize,
    kernel: cholcomm_core::matrix::KernelImpl,
) -> u64 {
    *memo.entry((kind, key, n)).or_insert_with(|| {
        let problem = build(kind, key, n);
        match factor_resumable(Checkpoint::fresh(problem.a), block, kernel, &mut |_, _| {
            PanelControl::Continue
        })
        .expect("reference factorization")
        {
            FactorOutcome::Done(m) => lower_digest(&m),
            FactorOutcome::Canceled { .. } => unreachable!("reference run is never cancelled"),
        }
    })
}

/// Per-request outcome: (req id, kind, key, n, completed (digest, virtual
/// latency µs)).
type Outcome = (u64, JobKind, u64, usize, Option<(u64, u64)>);

/// One full drive of a scenario: returns (report, responses, wall seconds).
fn drive(
    scenario_config: ServiceConfig,
    plan: &cholcomm_core::faults::FaultPlan,
    requests: &[Request],
) -> (cholcomm_core::serve::ServiceReport, Vec<Outcome>, f64) {
    let mut service = Service::start(scenario_config, plan);
    let t0 = Instant::now();
    let tickets: Vec<(Ticket, JobKind, u64, usize)> = requests
        .iter()
        .map(|r| (service.submit(*r), r.kind, r.key, r.n))
        .collect();
    // No further submissions are coming: release every pending size
    // bucket before waiting, or a ticket parked in a part-filled bucket
    // would wait forever.
    service.flush_batches();
    let responses: Vec<Outcome> = tickets
        .into_iter()
        .map(|(t, kind, key, n)| {
            let req = t.req;
            let done = t.wait().ok().map(|resp| (resp.factor_digest, resp.virt_latency_us));
            (req, kind, key, n, done)
        })
        .collect();
    let wall_s = t0.elapsed().as_secs_f64();
    (service.shutdown(), responses, wall_s)
}

/// One power-cut drive: process 1 serves the first half of the stream
/// with a durable cache journal on a fresh simulated disk, the disk is
/// crashed at a seeded site of its recorded schedule, and process 2
/// recovers the journal and serves the second half.  Returns the merged
/// report (with a combined log digest), outcomes, and wall seconds.
fn drive_power_cut(
    scenario: ChaosScenario,
    seed: u64,
    requests: &[Request],
) -> (cholcomm_core::serve::ServiceReport, Vec<Outcome>, f64) {
    use cholcomm_core::faults::{crash_sites_sampled, crash_state, SimDisk, SimStore};
    use std::sync::{Arc, Mutex};

    const SECTOR: usize = 64;
    let config = scenario.config();
    let plan = scenario.plan(seed);
    let half = requests.len() / 2;
    let t0 = Instant::now();

    let serve = |disk: &Arc<Mutex<SimDisk>>, slice: &[Request]| {
        let mut service = Service::start_durable(config, &plan, |_| {
            Box::new(SimStore::new(Arc::clone(disk)))
        });
        let tickets: Vec<(Ticket, JobKind, u64, usize)> = slice
            .iter()
            .map(|r| (service.submit(*r), r.kind, r.key, r.n))
            .collect();
        service.flush_batches();
        let responses: Vec<Outcome> = tickets
            .into_iter()
            .map(|(t, kind, key, n)| {
                let req = t.req;
                let done = t.wait().ok().map(|resp| (resp.factor_digest, resp.virt_latency_us));
                (req, kind, key, n, done)
            })
            .collect();
        (service.shutdown(), responses)
    };

    let disk = Arc::new(Mutex::new(SimDisk::new(SECTOR)));
    let (before, mut responses) = serve(&disk, &requests[..half]);

    // Crash the disk at the latest of a handful of seeded crash sites —
    // deep enough into the schedule that committed cache entries exist,
    // still exercising a torn un-barriered window.
    let schedule = disk
        .lock()
        .unwrap_or_else(std::sync::PoisonError::into_inner)
        .schedule()
        .to_vec();
    let site = crash_sites_sampled(&schedule, SECTOR, seed, 8)
        .into_iter()
        .max_by_key(|s| s.crash_index)
        .expect("sampled at least one crash site");
    let crashed = Arc::new(Mutex::new(SimDisk::from_state(
        crash_state(&schedule, &site, SECTOR),
        SECTOR,
    )));

    let (after, rest) = serve(&crashed, &requests[half..]);
    responses.extend(rest);
    let wall_s = t0.elapsed().as_secs_f64();

    let mut metrics = before.metrics.clone();
    metrics.merge(&after.metrics);
    metrics.canonicalize();
    let mut records = before.records;
    records.extend(after.records.clone());
    // The two processes number requests independently; the replay
    // certificate is the pair of per-process digests folded together.
    let log_digest = before
        .log_digest
        .wrapping_mul(0x0000_0100_0000_01b3)
        ^ after.log_digest;
    (
        cholcomm_core::serve::ServiceReport {
            records,
            log_digest,
            metrics,
        },
        responses,
        wall_s,
    )
}

fn run_scenario(scenario: ChaosScenario, seed: u64) -> ScenarioResult {
    // Smoke and full run the SAME deterministic workload: the virtual
    // metrics are machine-independent, so a CI smoke run gates exactly
    // against the committed full artifact.  (--smoke only redirects the
    // output so CI never clobbers the tracked baseline.)
    let workload = scenario.workload(seed);
    let requests = workload.generate();
    let config = ServiceConfig::default();

    let run = |scenario: ChaosScenario, seed, requests: &[Request]| {
        if scenario == ChaosScenario::PowerCut {
            drive_power_cut(scenario, seed, requests)
        } else {
            drive(scenario.config(), &scenario.plan(seed), requests)
        }
    };
    let (report_a, responses, wall_s) = run(scenario, seed, &requests);
    let (report_b, _, _) = run(scenario, seed, &requests);
    let replay_identical = report_a.log_digest == report_b.log_digest
        && report_a.metrics.counters == report_b.metrics.counters;

    // Bit-identity: every completed response vs a direct unfaulted run.
    let mut memo = HashMap::new();
    let bit_identical = responses.iter().all(|&(_, kind, key, n, done)| {
        done.is_none_or(|(d, _)| {
            d == direct_digest(&mut memo, kind, key, n, config.shard.block, config.shard.kernel)
        })
    });

    let c = &report_a.metrics.counters;
    ScenarioResult {
        name: scenario.tag(),
        requests: requests.len(),
        completed: c.completed,
        shed_overload: c.shed_overload,
        breaker_refused: c.breaker_refused,
        deadline_canceled: c.deadline_canceled,
        degraded_served: c.degraded_served,
        worker_restarts: c.worker_restarts,
        cache_healed: report_a.metrics.cache.healed,
        cache_recovered: c.cache_recovered,
        availability: c.availability(),
        virt_p50_us: report_a.metrics.virt_percentile_us(0.50),
        virt_p99_us: report_a.metrics.virt_percentile_us(0.99),
        wall_p50_us: report_a.metrics.wall_percentile_us(0.50),
        wall_p99_us: report_a.metrics.wall_percentile_us(0.99),
        throughput_rps: c.completed as f64 / wall_s.max(1e-9),
        bit_identical,
        replay_identical,
        log_digest: report_a.log_digest,
    }
}

/// The small-n Zipf factor/solve mix of the batching comparison: every
/// request arrives at one virtual instant (so the virtual makespan
/// measures service work, not arrival spread), sizes 8..=32 (the regime
/// where per-request dispatch constants dominate a lone factorization),
/// and only the two batchable kinds.
fn batching_requests(seed: u64, count: usize) -> Vec<Request> {
    let workload = Workload {
        seed,
        requests: count,
        keys: 64,
        zipf_s: 1.1,
        n_min: 8,
        n_max: 32,
        mean_gap_us: 1,
        // burst_every=1 re-opens the burst window at every request:
        // the whole stream lands on one virtual instant.
        burst_every: 1,
        burst_len: 1,
        // Far above any queueing delay in these runs; the deadline /
        // batch interaction is covered by tests/batch_props.rs.
        deadline_factor: 1_000_000,
    };
    let mut requests = workload.generate();
    for (i, r) in requests.iter_mut().enumerate() {
        r.kind = if i % 2 == 0 { JobKind::Factor } else { JobKind::Solve };
    }
    requests
}

/// Service config for the batching comparison: cache off so every
/// completion does arithmetic, watermarks wide open so both legs admit
/// the full one-instant burst, batching per `enabled`.
fn batching_config(enabled: bool) -> ServiceConfig {
    let base = ServiceConfig::default();
    ServiceConfig {
        watermarks: Watermarks::bounded_by(1_000_000_000),
        shard: ShardConfig {
            cache_capacity: 0,
            ..base.shard
        },
        batch: BatchConfig {
            enabled,
            ..BatchConfig::default()
        },
        ..base
    }
}

/// Virtual makespan of a drive: latest completion instant minus earliest
/// arrival, over completed requests.
fn virt_makespan_us(requests: &[Request], outcomes: &[Outcome]) -> u64 {
    let t0 = requests.iter().map(|r| r.vtime_us).min().unwrap_or(0);
    requests
        .iter()
        .zip(outcomes)
        .filter_map(|(r, &(_, _, _, _, done))| done.map(|(_, lat)| r.vtime_us + lat))
        .max()
        .map_or(0, |t1| t1 - t0)
}

fn run_batch_leg(seed: u64, count: usize, batched: bool) -> BatchLeg {
    let requests = batching_requests(seed, count);
    let config = batching_config(batched);
    let plan = cholcomm_core::faults::FaultPlan::builder(seed).build();

    let (report_a, outcomes, wall_s) = drive(config, &plan, &requests);
    let (report_b, _, _) = drive(config, &plan, &requests);
    let replay_identical = report_a.log_digest == report_b.log_digest
        && report_a.metrics.counters == report_b.metrics.counters;

    let mut memo = HashMap::new();
    let bit_identical = outcomes.iter().all(|&(_, kind, key, n, done)| {
        done.is_none_or(|(d, _)| {
            d == direct_digest(&mut memo, kind, key, n, config.shard.block, config.shard.kernel)
        })
    });

    let makespan = virt_makespan_us(&requests, &outcomes);
    let c = &report_a.metrics.counters;
    BatchLeg {
        batched,
        requests: requests.len(),
        completed: c.completed,
        batches_dispatched: c.batches_dispatched,
        batched_factorizations: c.batched_factorizations,
        virt_makespan_us: makespan,
        virt_throughput_rps: c.completed as f64 / (makespan as f64 / 1e6).max(1e-9),
        wall_s,
        bit_identical,
        replay_identical,
        log_digest: report_a.log_digest,
    }
}

/// The loadgen endurance sweep: the batched small-n service under `count`
/// requests with spread arrivals, driven in bounded windows (submit a
/// window, flush its buckets, wait it out) so the in-flight ticket set
/// never grows with the sweep size.  One run, no replay double — this
/// section measures endurance and wall throughput, not determinism (the
/// batching section already certifies that on the same machinery).
fn run_sweep(seed: u64, count: usize) -> SweepResult {
    const WINDOW: usize = 8_192;
    let workload = Workload {
        seed: seed ^ 0x5357_4545,
        requests: count,
        keys: 256,
        zipf_s: 1.1,
        n_min: 8,
        n_max: 32,
        mean_gap_us: 1,
        burst_every: 64,
        burst_len: 16,
        deadline_factor: 1_000_000,
    };
    let mut requests = workload.generate();
    for (i, r) in requests.iter_mut().enumerate() {
        r.kind = if i % 2 == 0 { JobKind::Factor } else { JobKind::Solve };
    }

    let config = batching_config(true);
    let plan = cholcomm_core::faults::FaultPlan::builder(seed).build();
    let mut service = Service::start(config, &plan);
    let t0 = Instant::now();
    let mut completions: Vec<u64> = Vec::with_capacity(requests.len());
    for window in requests.chunks(WINDOW) {
        let tickets: Vec<(Ticket, u64)> = window
            .iter()
            .map(|r| (service.submit(*r), r.vtime_us))
            .collect();
        service.flush_batches();
        for (t, vtime) in tickets {
            if let Ok(resp) = t.wait() {
                completions.push(vtime + resp.virt_latency_us);
            }
        }
    }
    let wall_s = t0.elapsed().as_secs_f64();
    let report = service.shutdown();

    let t0_virt = requests.iter().map(|r| r.vtime_us).min().unwrap_or(0);
    let makespan = completions.iter().max().map_or(0, |&t1| t1 - t0_virt);
    let c = &report.metrics.counters;
    SweepResult {
        requests: requests.len(),
        completed: c.completed,
        shed_overload: c.shed_overload,
        deadline_canceled: c.deadline_canceled,
        batches_dispatched: c.batches_dispatched,
        batched_factorizations: c.batched_factorizations,
        virt_makespan_us: makespan,
        virt_throughput_rps: c.completed as f64 / (makespan as f64 / 1e6).max(1e-9),
        wall_s,
        wall_rps: c.completed as f64 / wall_s.max(1e-9),
    }
}

fn host_cores() -> usize {
    std::thread::available_parallelism().map_or(1, |v| v.get())
}

/// Render as the `cholcomm-serve-bench/v2` JSON document.
fn to_json(
    results: &[ScenarioResult],
    legs: &[BatchLeg; 2],
    speedup: f64,
    sweep: &SweepResult,
    mode: &str,
) -> String {
    let mut s = String::new();
    s.push_str("{\n");
    let _ = writeln!(s, "  \"schema\": \"cholcomm-serve-bench/v2\",");
    let _ = writeln!(s, "  \"mode\": \"{mode}\",");
    let _ = writeln!(s, "  \"threads\": {},", host_cores());
    s.push_str("  \"scenarios\": [\n");
    for (i, r) in results.iter().enumerate() {
        let _ = writeln!(s, "    {{");
        let _ = writeln!(s, "      \"name\": \"{}\",", r.name);
        let _ = writeln!(s, "      \"requests\": {},", r.requests);
        let _ = writeln!(s, "      \"completed\": {},", r.completed);
        let _ = writeln!(s, "      \"shed_overload\": {},", r.shed_overload);
        let _ = writeln!(s, "      \"breaker_refused\": {},", r.breaker_refused);
        let _ = writeln!(s, "      \"deadline_canceled\": {},", r.deadline_canceled);
        let _ = writeln!(s, "      \"degraded_served\": {},", r.degraded_served);
        let _ = writeln!(s, "      \"worker_restarts\": {},", r.worker_restarts);
        let _ = writeln!(s, "      \"cache_healed\": {},", r.cache_healed);
        let _ = writeln!(s, "      \"cache_recovered\": {},", r.cache_recovered);
        let _ = writeln!(s, "      \"availability\": {:.4},", r.availability);
        let _ = writeln!(s, "      \"virt_p50_us\": {},", r.virt_p50_us);
        let _ = writeln!(s, "      \"virt_p99_us\": {},", r.virt_p99_us);
        let _ = writeln!(s, "      \"wall_p50_us\": {:.1},", r.wall_p50_us);
        let _ = writeln!(s, "      \"wall_p99_us\": {:.1},", r.wall_p99_us);
        let _ = writeln!(s, "      \"throughput_rps\": {:.0},", r.throughput_rps);
        let _ = writeln!(s, "      \"bit_identical\": {},", r.bit_identical);
        let _ = writeln!(s, "      \"replay_identical\": {},", r.replay_identical);
        let _ = writeln!(s, "      \"log_digest\": \"{:016x}\"", r.log_digest);
        let _ = writeln!(s, "    }}{}", if i + 1 < results.len() { "," } else { "" });
    }
    s.push_str("  ],\n");

    s.push_str("  \"batching\": {\n");
    let _ = writeln!(s, "    \"virt_speedup\": {speedup:.2},");
    let _ = writeln!(s, "    \"min_virt_speedup\": {BATCH_SPEEDUP_GATE:.1},");
    let _ = writeln!(s, "    \"passed\": {},", speedup >= BATCH_SPEEDUP_GATE);
    s.push_str("    \"legs\": [\n");
    for (i, l) in legs.iter().enumerate() {
        let _ = writeln!(s, "      {{");
        let _ = writeln!(s, "        \"batched\": {},", l.batched);
        let _ = writeln!(s, "        \"requests\": {},", l.requests);
        let _ = writeln!(s, "        \"completed\": {},", l.completed);
        let _ = writeln!(s, "        \"batches_dispatched\": {},", l.batches_dispatched);
        let _ = writeln!(
            s,
            "        \"batched_factorizations\": {},",
            l.batched_factorizations
        );
        let _ = writeln!(s, "        \"virt_makespan_us\": {},", l.virt_makespan_us);
        let _ = writeln!(
            s,
            "        \"virt_throughput_rps\": {:.0},",
            l.virt_throughput_rps
        );
        let _ = writeln!(s, "        \"wall_s\": {:.3},", l.wall_s);
        let _ = writeln!(s, "        \"bit_identical\": {},", l.bit_identical);
        let _ = writeln!(s, "        \"replay_identical\": {},", l.replay_identical);
        let _ = writeln!(s, "        \"log_digest\": \"{:016x}\"", l.log_digest);
        let _ = writeln!(s, "      }}{}", if i + 1 < legs.len() { "," } else { "" });
    }
    s.push_str("    ]\n  },\n");

    let clean = &results[0];
    let enforced = host_cores() >= SLO_MIN_CORES;
    let slo_ok = clean.wall_p50_us <= SLO_WALL_P50_US && clean.wall_p99_us <= SLO_WALL_P99_US;
    s.push_str("  \"wall_slo\": {\n");
    let _ = writeln!(s, "    \"scenario\": \"clean\",");
    let _ = writeln!(s, "    \"host_threads\": {},", host_cores());
    let _ = writeln!(s, "    \"min_cores\": {SLO_MIN_CORES},");
    let _ = writeln!(s, "    \"enforced\": {enforced},");
    let _ = writeln!(s, "    \"slo_wall_p50_us\": {SLO_WALL_P50_US:.0},");
    let _ = writeln!(s, "    \"slo_wall_p99_us\": {SLO_WALL_P99_US:.0},");
    let _ = writeln!(s, "    \"wall_p50_us\": {:.1},", clean.wall_p50_us);
    let _ = writeln!(s, "    \"wall_p99_us\": {:.1},", clean.wall_p99_us);
    let _ = writeln!(s, "    \"passed\": {}", !enforced || slo_ok);
    s.push_str("  },\n");

    s.push_str("  \"sweep\": {\n");
    let _ = writeln!(s, "    \"requests\": {},", sweep.requests);
    let _ = writeln!(s, "    \"completed\": {},", sweep.completed);
    let _ = writeln!(s, "    \"shed_overload\": {},", sweep.shed_overload);
    let _ = writeln!(s, "    \"deadline_canceled\": {},", sweep.deadline_canceled);
    let _ = writeln!(s, "    \"batches_dispatched\": {},", sweep.batches_dispatched);
    let _ = writeln!(
        s,
        "    \"batched_factorizations\": {},",
        sweep.batched_factorizations
    );
    let _ = writeln!(s, "    \"virt_makespan_us\": {},", sweep.virt_makespan_us);
    let _ = writeln!(s, "    \"virt_throughput_rps\": {:.0},", sweep.virt_throughput_rps);
    let _ = writeln!(s, "    \"wall_s\": {:.3},", sweep.wall_s);
    let _ = writeln!(s, "    \"wall_rps\": {:.0}", sweep.wall_rps);
    s.push_str("  }\n}\n");
    s
}

/// Pull a numeric field out of the named scenario's object in a previous
/// artifact.
fn baseline_field(json: &str, scenario: &str, field: &str) -> Option<f64> {
    let at = json.find(&format!("\"name\": \"{scenario}\""))?;
    let obj = &json[at..];
    let end = obj.find('}').unwrap_or(obj.len());
    let obj = &obj[..end];
    let key = format!("\"{field}\":");
    let at = obj.find(&key)? + key.len();
    let rest = obj[at..].trim_start();
    let stop = rest
        .find(|c: char| !(c.is_ascii_digit() || c == '.' || c == '-' || c == 'e' || c == '+'))
        .unwrap_or(rest.len());
    rest[..stop].parse().ok()
}

fn main() {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let smoke = args.iter().any(|a| a == "--smoke");
    let baseline = args
        .iter()
        .position(|a| a == "--baseline")
        .and_then(|i| args.get(i + 1).cloned());
    let out_path = args
        .iter()
        .position(|a| a == "--out")
        .and_then(|i| args.get(i + 1).cloned())
        .unwrap_or_else(|| {
            if smoke {
                "BENCH_serve.smoke.json".to_string()
            } else {
                concat!(env!("CARGO_MANIFEST_DIR"), "/../../BENCH_serve.json").to_string()
            }
        });
    // The loadgen sweep size: explicit `--sweep N`, else one million
    // with the `million-sweep` feature, else the CI-scale fifty
    // thousand.
    let sweep_n: usize = args
        .iter()
        .position(|a| a == "--sweep")
        .and_then(|i| args.get(i + 1))
        .and_then(|v| v.parse().ok())
        .unwrap_or(if cfg!(feature = "million-sweep") {
            1_000_000
        } else {
            50_000
        });

    let mode = if smoke { "smoke" } else { "full" };
    eprintln!("serve_bench: mode={mode}");
    let seed = 0xC0FFEE;

    let results: Vec<ScenarioResult> = ChaosScenario::ALL
        .iter()
        .map(|&s| run_scenario(s, seed))
        .collect();

    let mut failed = false;
    for r in &results {
        println!(
            "{:>14}: {:>3}/{:<3} ok  avail {:.3}  virt p50/p99 {:>6}/{:<6}us  wall p99 {:>8.0}us  \
             {:>6.0} rps  shed {} refused {} deadline {} degraded {} restarts {} healed {} recovered {}",
            r.name,
            r.completed,
            r.requests,
            r.availability,
            r.virt_p50_us,
            r.virt_p99_us,
            r.wall_p99_us,
            r.throughput_rps,
            r.shed_overload,
            r.breaker_refused,
            r.deadline_canceled,
            r.degraded_served,
            r.worker_restarts,
            r.cache_healed,
            r.cache_recovered,
        );
        if r.name == "power_cut" && r.cache_recovered == 0 {
            eprintln!(
                "serve_bench: power_cut recovered no cache entries — the crash protocol \
                 committed nothing durable"
            );
            failed = true;
        }
        if !r.bit_identical {
            eprintln!("serve_bench: {}: a completed response differed from the direct run", r.name);
            failed = true;
        }
        if !r.replay_identical {
            eprintln!("serve_bench: {}: two identical runs produced different event logs", r.name);
            failed = true;
        }
    }

    // The batching comparison: the same deterministic small-n
    // factor/solve mix, unbatched vs batched, and the >= 3x virtual
    // throughput gate.
    const BATCH_MIX_REQUESTS: usize = 4_000;
    let legs = [
        run_batch_leg(seed, BATCH_MIX_REQUESTS, false),
        run_batch_leg(seed, BATCH_MIX_REQUESTS, true),
    ];
    let speedup = legs[1].virt_throughput_rps / legs[0].virt_throughput_rps.max(1e-9);
    for l in &legs {
        let mean_batch = l.batched_factorizations as f64 / (l.batches_dispatched as f64).max(1.0);
        println!(
            "batching[{}]: {}/{} ok  virt makespan {}us  {:>9.0} virt rps  batches {} (mean {:.1})  wall {:.3}s",
            if l.batched { "batched" } else { "unbatched" },
            l.completed,
            l.requests,
            l.virt_makespan_us,
            l.virt_throughput_rps,
            l.batches_dispatched,
            mean_batch,
            l.wall_s,
        );
        if !l.bit_identical {
            eprintln!("serve_bench: batching: a completed response differed from the direct run");
            failed = true;
        }
        if !l.replay_identical {
            eprintln!("serve_bench: batching: two identical runs produced different event logs");
            failed = true;
        }
        if l.completed != l.requests as u64 {
            eprintln!(
                "serve_bench: batching leg completed only {}/{} — the comparison must be \
                 loss-free to mean anything",
                l.completed, l.requests
            );
            failed = true;
        }
    }
    println!(
        "batching: virtual speedup {speedup:.2}x (gate >= {BATCH_SPEEDUP_GATE:.1}x)"
    );
    if speedup < BATCH_SPEEDUP_GATE {
        eprintln!(
            "serve_bench: batching virtual speedup {speedup:.2}x below the {BATCH_SPEEDUP_GATE:.1}x gate"
        );
        failed = true;
    }
    if legs[1].batches_dispatched == 0 {
        eprintln!("serve_bench: batched leg dispatched no batches — batching never engaged");
        failed = true;
    }

    // Wall-clock SLOs on the clean scenario, enforced only where wall
    // time measures the service rather than core starvation.
    let clean = &results[0];
    let enforced = host_cores() >= SLO_MIN_CORES;
    println!(
        "wall_slo: clean p50 {:.0}us (<= {:.0})  p99 {:.0}us (<= {:.0})  enforced={} ({} cores)",
        clean.wall_p50_us,
        SLO_WALL_P50_US,
        clean.wall_p99_us,
        SLO_WALL_P99_US,
        enforced,
        host_cores(),
    );
    if enforced && (clean.wall_p50_us > SLO_WALL_P50_US || clean.wall_p99_us > SLO_WALL_P99_US) {
        eprintln!(
            "serve_bench: clean-scenario wall latency blew its SLO: p50 {:.0}us/{:.0}us, p99 {:.0}us/{:.0}us",
            clean.wall_p50_us, SLO_WALL_P50_US, clean.wall_p99_us, SLO_WALL_P99_US
        );
        failed = true;
    }

    // The loadgen endurance sweep over the batched service.
    eprintln!("serve_bench: sweep of {sweep_n} requests...");
    let sweep = run_sweep(seed, sweep_n);
    println!(
        "sweep: {}/{} ok  shed {} deadline {}  batches {} (mean {:.1})  virt {:>9.0} rps  wall {:.1}s = {:>7.0} rps",
        sweep.completed,
        sweep.requests,
        sweep.shed_overload,
        sweep.deadline_canceled,
        sweep.batches_dispatched,
        sweep.batched_factorizations as f64 / (sweep.batches_dispatched as f64).max(1.0),
        sweep.virt_throughput_rps,
        sweep.wall_s,
        sweep.wall_rps,
    );
    if sweep.completed + sweep.shed_overload + sweep.deadline_canceled != sweep.requests as u64 {
        eprintln!(
            "serve_bench: sweep lost requests: {} completed + {} shed + {} canceled != {}",
            sweep.completed, sweep.shed_overload, sweep.deadline_canceled, sweep.requests
        );
        failed = true;
    }

    if let Some(path) = &baseline {
        match std::fs::read_to_string(path) {
            Ok(base_json) => {
                for r in &results {
                    if let Some(base_p99) = baseline_field(&base_json, r.name, "virt_p99_us") {
                        let ceiling = 1.3 * base_p99;
                        if r.virt_p99_us as f64 > ceiling && base_p99 > 0.0 {
                            eprintln!(
                                "serve_bench: {}: virtual p99 {}us regressed >30% above baseline {}us",
                                r.name, r.virt_p99_us, base_p99
                            );
                            failed = true;
                        }
                    }
                    if let Some(base_avail) = baseline_field(&base_json, r.name, "availability") {
                        let floor = 0.7 * base_avail;
                        if r.availability < floor {
                            eprintln!(
                                "serve_bench: {}: availability {:.3} dropped >30% below baseline {:.3}",
                                r.name, r.availability, base_avail
                            );
                            failed = true;
                        }
                    }
                }
                eprintln!("serve_bench: baseline gates checked against {path}");
            }
            Err(e) => {
                eprintln!("serve_bench: could not read baseline {path}: {e}");
                failed = true;
            }
        }
    }

    if failed {
        std::process::exit(1);
    }

    let json = to_json(&results, &legs, speedup, &sweep, mode);
    std::fs::write(&out_path, &json).expect("write bench artifact");
    eprintln!("serve_bench: wrote {out_path}");
}
