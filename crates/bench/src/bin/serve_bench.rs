//! Availability and latency benchmark of the `cholcomm-serve`
//! factorization service under the standard chaos scenarios, and the
//! repo's tracked service artifact.
//!
//! ```text
//! cargo run --release -p cholcomm-bench --bin serve_bench             # full run
//! cargo run --release -p cholcomm-bench --bin serve_bench -- --smoke  # CI smoke
//! cargo run --release -p cholcomm-bench --bin serve_bench -- --smoke --baseline BENCH_serve.json
//! ```
//!
//! For every [`ChaosScenario`] (clean, bit-flip, transient-EIO,
//! worker-crash, burst-overload, power-cut) the bench drives a seeded
//! Zipf/Pareto request stream through the service and records
//! availability, deterministic virtual p50/p99, wall-clock p50/p99, and
//! throughput.  Each scenario runs **twice** and the canonical event-log
//! digests must match (the replay contract); every completed response's
//! factor digest must equal an unfaulted direct factorization of the
//! same problem (the bit-identity contract).  Either failing is exit 1.
//!
//! The power-cut scenario is special: each run is **two service
//! processes** over one simulated disk.  The first serves half the
//! stream with a durable (journaled) factor cache, then the disk is
//! crashed at a seeded crash site of its recorded op schedule; the
//! second process recovers the journal and serves the rest.  Recovered
//! entries counted by `cache_recovered` must be > 0 and every served
//! factor still bit-identical.
//!
//! `--baseline <path>` reads a previous artifact and fails if any
//! scenario's *virtual* p99 regressed more than 30% above it or its
//! availability dropped more than 30% below it — the CI regression
//! gates, on the deterministic metrics so the gate itself cannot flake.
//! Results are hand-rolled JSON (offline workspace, no serde) written to
//! `BENCH_serve.json` at the repo root, or `BENCH_serve.smoke.json`
//! under `--smoke`.

use cholcomm_core::matrix::lower_digest;
use cholcomm_core::serve::engine::{factor_resumable, Checkpoint, FactorOutcome, PanelControl};
use cholcomm_core::serve::{
    build, ChaosScenario, JobKind, Request, Service, ServiceConfig, Ticket,
};
use std::collections::HashMap;
use std::fmt::Write as _;
use std::time::Instant;

struct ScenarioResult {
    name: &'static str,
    requests: usize,
    completed: u64,
    shed_overload: u64,
    breaker_refused: u64,
    deadline_canceled: u64,
    degraded_served: u64,
    worker_restarts: u64,
    cache_healed: u64,
    cache_recovered: u64,
    availability: f64,
    virt_p50_us: u64,
    virt_p99_us: u64,
    wall_p50_us: f64,
    wall_p99_us: f64,
    throughput_rps: f64,
    bit_identical: bool,
    replay_identical: bool,
    log_digest: u64,
}

/// Direct, unfaulted factorization digest of a `(kind, key, n)` triple —
/// the reference every completed response is checked against.
fn direct_digest(
    memo: &mut HashMap<(JobKind, u64, usize), u64>,
    kind: JobKind,
    key: u64,
    n: usize,
    block: usize,
    kernel: cholcomm_core::matrix::KernelImpl,
) -> u64 {
    *memo.entry((kind, key, n)).or_insert_with(|| {
        let problem = build(kind, key, n);
        match factor_resumable(Checkpoint::fresh(problem.a), block, kernel, &mut |_, _| {
            PanelControl::Continue
        })
        .expect("reference factorization")
        {
            FactorOutcome::Done(m) => lower_digest(&m),
            FactorOutcome::Canceled { .. } => unreachable!("reference run is never cancelled"),
        }
    })
}

/// Per-request outcome: (req id, kind, key, n, completed factor digest).
type Outcome = (u64, JobKind, u64, usize, Option<u64>);

/// One full drive of a scenario: returns (report, responses, wall seconds).
fn drive(
    scenario: ChaosScenario,
    seed: u64,
    requests: &[Request],
) -> (cholcomm_core::serve::ServiceReport, Vec<Outcome>, f64) {
    let config = scenario.config();
    let plan = scenario.plan(seed);
    let mut service = Service::start(config, &plan);
    let t0 = Instant::now();
    let tickets: Vec<(Ticket, JobKind, u64, usize)> = requests
        .iter()
        .map(|r| (service.submit(*r), r.kind, r.key, r.n))
        .collect();
    let responses: Vec<Outcome> = tickets
        .into_iter()
        .map(|(t, kind, key, n)| {
            let req = t.req;
            let digest = t.wait().ok().map(|resp| resp.factor_digest);
            (req, kind, key, n, digest)
        })
        .collect();
    let wall_s = t0.elapsed().as_secs_f64();
    (service.shutdown(), responses, wall_s)
}

/// One power-cut drive: process 1 serves the first half of the stream
/// with a durable cache journal on a fresh simulated disk, the disk is
/// crashed at a seeded site of its recorded schedule, and process 2
/// recovers the journal and serves the second half.  Returns the merged
/// report (with a combined log digest), outcomes, and wall seconds.
fn drive_power_cut(
    scenario: ChaosScenario,
    seed: u64,
    requests: &[Request],
) -> (cholcomm_core::serve::ServiceReport, Vec<Outcome>, f64) {
    use cholcomm_core::faults::{crash_sites_sampled, crash_state, SimDisk, SimStore};
    use std::sync::{Arc, Mutex};

    const SECTOR: usize = 64;
    let config = scenario.config();
    let plan = scenario.plan(seed);
    let half = requests.len() / 2;
    let t0 = Instant::now();

    let serve = |disk: &Arc<Mutex<SimDisk>>, slice: &[Request]| {
        let mut service = Service::start_durable(config, &plan, |_| {
            Box::new(SimStore::new(Arc::clone(disk)))
        });
        let tickets: Vec<(Ticket, JobKind, u64, usize)> = slice
            .iter()
            .map(|r| (service.submit(*r), r.kind, r.key, r.n))
            .collect();
        let responses: Vec<Outcome> = tickets
            .into_iter()
            .map(|(t, kind, key, n)| {
                let req = t.req;
                let digest = t.wait().ok().map(|resp| resp.factor_digest);
                (req, kind, key, n, digest)
            })
            .collect();
        (service.shutdown(), responses)
    };

    let disk = Arc::new(Mutex::new(SimDisk::new(SECTOR)));
    let (before, mut responses) = serve(&disk, &requests[..half]);

    // Crash the disk at the latest of a handful of seeded crash sites —
    // deep enough into the schedule that committed cache entries exist,
    // still exercising a torn un-barriered window.
    let schedule = disk
        .lock()
        .unwrap_or_else(std::sync::PoisonError::into_inner)
        .schedule()
        .to_vec();
    let site = crash_sites_sampled(&schedule, SECTOR, seed, 8)
        .into_iter()
        .max_by_key(|s| s.crash_index)
        .expect("sampled at least one crash site");
    let crashed = Arc::new(Mutex::new(SimDisk::from_state(
        crash_state(&schedule, &site, SECTOR),
        SECTOR,
    )));

    let (after, rest) = serve(&crashed, &requests[half..]);
    responses.extend(rest);
    let wall_s = t0.elapsed().as_secs_f64();

    let mut metrics = before.metrics.clone();
    metrics.merge(&after.metrics);
    metrics.canonicalize();
    let mut records = before.records;
    records.extend(after.records.clone());
    // The two processes number requests independently; the replay
    // certificate is the pair of per-process digests folded together.
    let log_digest = before
        .log_digest
        .wrapping_mul(0x0000_0100_0000_01b3)
        ^ after.log_digest;
    (
        cholcomm_core::serve::ServiceReport {
            records,
            log_digest,
            metrics,
        },
        responses,
        wall_s,
    )
}

fn run_scenario(scenario: ChaosScenario, seed: u64) -> ScenarioResult {
    // Smoke and full run the SAME deterministic workload: the virtual
    // metrics are machine-independent, so a CI smoke run gates exactly
    // against the committed full artifact.  (--smoke only redirects the
    // output so CI never clobbers the tracked baseline.)
    let workload = scenario.workload(seed);
    let requests = workload.generate();
    let config = ServiceConfig::default();

    let run = |scenario, seed, requests: &[Request]| {
        if scenario == ChaosScenario::PowerCut {
            drive_power_cut(scenario, seed, requests)
        } else {
            drive(scenario, seed, requests)
        }
    };
    let (report_a, responses, wall_s) = run(scenario, seed, &requests);
    let (report_b, _, _) = run(scenario, seed, &requests);
    let replay_identical = report_a.log_digest == report_b.log_digest
        && report_a.metrics.counters == report_b.metrics.counters;

    // Bit-identity: every completed response vs a direct unfaulted run.
    let mut memo = HashMap::new();
    let bit_identical = responses.iter().all(|&(_, kind, key, n, digest)| {
        digest.is_none_or(|d| {
            d == direct_digest(&mut memo, kind, key, n, config.shard.block, config.shard.kernel)
        })
    });

    let c = &report_a.metrics.counters;
    ScenarioResult {
        name: scenario.tag(),
        requests: requests.len(),
        completed: c.completed,
        shed_overload: c.shed_overload,
        breaker_refused: c.breaker_refused,
        deadline_canceled: c.deadline_canceled,
        degraded_served: c.degraded_served,
        worker_restarts: c.worker_restarts,
        cache_healed: report_a.metrics.cache.healed,
        cache_recovered: c.cache_recovered,
        availability: c.availability(),
        virt_p50_us: report_a.metrics.virt_percentile_us(0.50),
        virt_p99_us: report_a.metrics.virt_percentile_us(0.99),
        wall_p50_us: report_a.metrics.wall_percentile_us(0.50),
        wall_p99_us: report_a.metrics.wall_percentile_us(0.99),
        throughput_rps: c.completed as f64 / wall_s.max(1e-9),
        bit_identical,
        replay_identical,
        log_digest: report_a.log_digest,
    }
}

/// Render as the `cholcomm-serve-bench/v1` JSON document.
fn to_json(results: &[ScenarioResult], mode: &str) -> String {
    let mut s = String::new();
    s.push_str("{\n");
    let _ = writeln!(s, "  \"schema\": \"cholcomm-serve-bench/v1\",");
    let _ = writeln!(s, "  \"mode\": \"{mode}\",");
    let _ = writeln!(
        s,
        "  \"threads\": {},",
        std::thread::available_parallelism().map_or(1, |v| v.get())
    );
    s.push_str("  \"scenarios\": [\n");
    for (i, r) in results.iter().enumerate() {
        let _ = writeln!(s, "    {{");
        let _ = writeln!(s, "      \"name\": \"{}\",", r.name);
        let _ = writeln!(s, "      \"requests\": {},", r.requests);
        let _ = writeln!(s, "      \"completed\": {},", r.completed);
        let _ = writeln!(s, "      \"shed_overload\": {},", r.shed_overload);
        let _ = writeln!(s, "      \"breaker_refused\": {},", r.breaker_refused);
        let _ = writeln!(s, "      \"deadline_canceled\": {},", r.deadline_canceled);
        let _ = writeln!(s, "      \"degraded_served\": {},", r.degraded_served);
        let _ = writeln!(s, "      \"worker_restarts\": {},", r.worker_restarts);
        let _ = writeln!(s, "      \"cache_healed\": {},", r.cache_healed);
        let _ = writeln!(s, "      \"cache_recovered\": {},", r.cache_recovered);
        let _ = writeln!(s, "      \"availability\": {:.4},", r.availability);
        let _ = writeln!(s, "      \"virt_p50_us\": {},", r.virt_p50_us);
        let _ = writeln!(s, "      \"virt_p99_us\": {},", r.virt_p99_us);
        let _ = writeln!(s, "      \"wall_p50_us\": {:.1},", r.wall_p50_us);
        let _ = writeln!(s, "      \"wall_p99_us\": {:.1},", r.wall_p99_us);
        let _ = writeln!(s, "      \"throughput_rps\": {:.0},", r.throughput_rps);
        let _ = writeln!(s, "      \"bit_identical\": {},", r.bit_identical);
        let _ = writeln!(s, "      \"replay_identical\": {},", r.replay_identical);
        let _ = writeln!(s, "      \"log_digest\": \"{:016x}\"", r.log_digest);
        let _ = writeln!(s, "    }}{}", if i + 1 < results.len() { "," } else { "" });
    }
    s.push_str("  ]\n}\n");
    s
}

/// Pull a numeric field out of the named scenario's object in a previous
/// artifact.
fn baseline_field(json: &str, scenario: &str, field: &str) -> Option<f64> {
    let at = json.find(&format!("\"name\": \"{scenario}\""))?;
    let obj = &json[at..];
    let end = obj.find('}').unwrap_or(obj.len());
    let obj = &obj[..end];
    let key = format!("\"{field}\":");
    let at = obj.find(&key)? + key.len();
    let rest = obj[at..].trim_start();
    let stop = rest
        .find(|c: char| !(c.is_ascii_digit() || c == '.' || c == '-' || c == 'e' || c == '+'))
        .unwrap_or(rest.len());
    rest[..stop].parse().ok()
}

fn main() {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let smoke = args.iter().any(|a| a == "--smoke");
    let baseline = args
        .iter()
        .position(|a| a == "--baseline")
        .and_then(|i| args.get(i + 1).cloned());
    let out_path = args
        .iter()
        .position(|a| a == "--out")
        .and_then(|i| args.get(i + 1).cloned())
        .unwrap_or_else(|| {
            if smoke {
                "BENCH_serve.smoke.json".to_string()
            } else {
                concat!(env!("CARGO_MANIFEST_DIR"), "/../../BENCH_serve.json").to_string()
            }
        });

    let mode = if smoke { "smoke" } else { "full" };
    eprintln!("serve_bench: mode={mode}");
    let seed = 0xC0FFEE;

    let results: Vec<ScenarioResult> = ChaosScenario::ALL
        .iter()
        .map(|&s| run_scenario(s, seed))
        .collect();

    let mut failed = false;
    for r in &results {
        println!(
            "{:>14}: {:>3}/{:<3} ok  avail {:.3}  virt p50/p99 {:>6}/{:<6}us  wall p99 {:>8.0}us  \
             {:>6.0} rps  shed {} refused {} deadline {} degraded {} restarts {} healed {} recovered {}",
            r.name,
            r.completed,
            r.requests,
            r.availability,
            r.virt_p50_us,
            r.virt_p99_us,
            r.wall_p99_us,
            r.throughput_rps,
            r.shed_overload,
            r.breaker_refused,
            r.deadline_canceled,
            r.degraded_served,
            r.worker_restarts,
            r.cache_healed,
            r.cache_recovered,
        );
        if r.name == "power_cut" && r.cache_recovered == 0 {
            eprintln!(
                "serve_bench: power_cut recovered no cache entries — the crash protocol \
                 committed nothing durable"
            );
            failed = true;
        }
        if !r.bit_identical {
            eprintln!("serve_bench: {}: a completed response differed from the direct run", r.name);
            failed = true;
        }
        if !r.replay_identical {
            eprintln!("serve_bench: {}: two identical runs produced different event logs", r.name);
            failed = true;
        }
    }

    if let Some(path) = &baseline {
        match std::fs::read_to_string(path) {
            Ok(base_json) => {
                for r in &results {
                    if let Some(base_p99) = baseline_field(&base_json, r.name, "virt_p99_us") {
                        let ceiling = 1.3 * base_p99;
                        if r.virt_p99_us as f64 > ceiling && base_p99 > 0.0 {
                            eprintln!(
                                "serve_bench: {}: virtual p99 {}us regressed >30% above baseline {}us",
                                r.name, r.virt_p99_us, base_p99
                            );
                            failed = true;
                        }
                    }
                    if let Some(base_avail) = baseline_field(&base_json, r.name, "availability") {
                        let floor = 0.7 * base_avail;
                        if r.availability < floor {
                            eprintln!(
                                "serve_bench: {}: availability {:.3} dropped >30% below baseline {:.3}",
                                r.name, r.availability, base_avail
                            );
                            failed = true;
                        }
                    }
                }
                eprintln!("serve_bench: baseline gates checked against {path}");
            }
            Err(e) => {
                eprintln!("serve_bench: could not read baseline {path}: {e}");
                failed = true;
            }
        }
    }

    if failed {
        std::process::exit(1);
    }

    let json = to_json(&results, mode);
    std::fs::write(&out_path, &json).expect("write bench artifact");
    eprintln!("serve_bench: wrote {out_path}");
}
