//! Crash-point explorer benchmark and the repo's tracked crash artifact.
//!
//! ```text
//! cargo run --release -p cholcomm-bench --bin crash_bench             # full run
//! cargo run --release -p cholcomm-bench --bin crash_bench -- --smoke  # CI smoke
//! cargo run --release -p cholcomm-bench --bin crash_bench -- --smoke --seed 7
//! ```
//!
//! Three sections, written as `cholcomm-crash-bench/v1` JSON:
//!
//! - **exhaustive** — a checkpointed out-of-core factorization is
//!   recorded once on the simulated crash disk, then recovery is
//!   re-driven at *every* crash state of its op schedule (all prefixes,
//!   all survive/drop subsets of each un-barriered window, every
//!   sector-prefix tear).  Violations must be zero.
//! - **sampled** — the same check on a larger matrix over seeded-sampled
//!   crash sites (`--seed` varies the sample, nothing else).
//! - **broken_protocol** — the deliberately broken commit discipline
//!   (commit record without the preceding barrier) must be *caught*,
//!   with a shrunk minimal fault plan in the artifact.
//!
//! Throughput (`states_per_s`) is wall-clock and machine-dependent;
//! every other number is deterministic, so CI can compare a smoke run
//! exactly against the committed `BENCH_crash.json`.

use cholcomm_core::faults::{crash_sites_exhaustive, crash_sites_sampled};
use cholcomm_core::matrix::spd;
use cholcomm_core::ooc::{explore_crash_sites, record_run, CommitDiscipline, CrashExploration};
use std::fmt::Write as _;
use std::time::Instant;

const SECTOR: usize = 64;

struct Section {
    name: &'static str,
    n: usize,
    b: usize,
    schedule_ops: usize,
    crash_points: usize,
    states_explored: usize,
    violations: usize,
    rework_fraction: f64,
    states_per_s: f64,
    caught: bool,
    minimal_repro: String,
}

fn section(
    name: &'static str,
    n: usize,
    b: usize,
    report: &CrashExploration,
    elapsed_s: f64,
) -> Section {
    Section {
        name,
        n,
        b,
        schedule_ops: report.schedule_ops,
        crash_points: report.crash_points,
        states_explored: report.states_explored,
        violations: report.violations.len(),
        rework_fraction: report.rework_fraction(),
        states_per_s: report.states_explored as f64 / elapsed_s.max(1e-9),
        caught: !report.violations.is_empty(),
        minimal_repro: report
            .violations
            .first()
            .map(|v| v.minimal.to_string())
            .unwrap_or_default(),
    }
}

fn to_json(sections: &[Section], mode: &str, seed: u64) -> String {
    let mut s = String::new();
    s.push_str("{\n");
    let _ = writeln!(s, "  \"schema\": \"cholcomm-crash-bench/v1\",");
    let _ = writeln!(s, "  \"mode\": \"{mode}\",");
    let _ = writeln!(s, "  \"seed\": {seed},");
    s.push_str("  \"sections\": [\n");
    for (i, r) in sections.iter().enumerate() {
        let _ = writeln!(s, "    {{");
        let _ = writeln!(s, "      \"name\": \"{}\",", r.name);
        let _ = writeln!(s, "      \"n\": {},", r.n);
        let _ = writeln!(s, "      \"b\": {},", r.b);
        let _ = writeln!(s, "      \"schedule_ops\": {},", r.schedule_ops);
        let _ = writeln!(s, "      \"crash_points\": {},", r.crash_points);
        let _ = writeln!(s, "      \"states_explored\": {},", r.states_explored);
        let _ = writeln!(s, "      \"violations\": {},", r.violations);
        let _ = writeln!(s, "      \"rework_fraction\": {:.4},", r.rework_fraction);
        let _ = writeln!(s, "      \"states_per_s\": {:.0},", r.states_per_s);
        let _ = writeln!(s, "      \"caught\": {},", r.caught);
        let _ = writeln!(s, "      \"minimal_repro\": \"{}\"", r.minimal_repro);
        let _ = writeln!(s, "    }}{}", if i + 1 < sections.len() { "," } else { "" });
    }
    s.push_str("  ]\n}\n");
    s
}

fn main() {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let smoke = args.iter().any(|a| a == "--smoke");
    let seed: u64 = args
        .iter()
        .position(|a| a == "--seed")
        .and_then(|i| args.get(i + 1))
        .and_then(|v| v.parse().ok())
        .unwrap_or(0xC0FFEE);
    let out_path = args
        .iter()
        .position(|a| a == "--out")
        .and_then(|i| args.get(i + 1).cloned())
        .unwrap_or_else(|| {
            if smoke {
                "BENCH_crash.smoke.json".to_string()
            } else {
                concat!(env!("CARGO_MANIFEST_DIR"), "/../../BENCH_crash.json").to_string()
            }
        });
    let mode = if smoke { "smoke" } else { "full" };
    eprintln!("crash_bench: mode={mode} seed={seed:#x}");
    let mut failed = false;
    let mut sections = Vec::new();

    // --- Exhaustive: every crash state of a small recorded run. ---
    {
        let a = spd::random_spd(8, &mut spd::test_rng(500));
        let run = record_run(&a, 4, 3, SECTOR, CommitDiscipline::Barriered)
            .expect("clean recorded run");
        let sites = crash_sites_exhaustive(&run.schedule, SECTOR);
        let t0 = Instant::now();
        let report = explore_crash_sites(&run, &sites);
        let sec = section("exhaustive", 8, 4, &report, t0.elapsed().as_secs_f64());
        if sec.violations != 0 {
            eprintln!(
                "crash_bench: exhaustive exploration found {} violations: {}",
                sec.violations,
                report.violations[0]
            );
            failed = true;
        }
        sections.push(sec);
    }

    // --- Sampled: seeded crash sites on a larger matrix. ---
    {
        let a = spd::random_spd(24, &mut spd::test_rng(502));
        let run = record_run(&a, 8, 4, SECTOR, CommitDiscipline::Barriered)
            .expect("clean recorded run");
        let sites = crash_sites_sampled(&run.schedule, SECTOR, seed, 64);
        let t0 = Instant::now();
        let report = explore_crash_sites(&run, &sites);
        let sec = section("sampled", 24, 8, &report, t0.elapsed().as_secs_f64());
        if sec.violations != 0 {
            eprintln!(
                "crash_bench: sampled exploration (seed {seed:#x}) found {} violations: {}",
                sec.violations,
                report.violations[0]
            );
            failed = true;
        }
        sections.push(sec);
    }

    // --- Broken protocol: the explorer must catch it. ---
    {
        let a = spd::random_spd(8, &mut spd::test_rng(501));
        let run = record_run(&a, 4, 3, SECTOR, CommitDiscipline::UnbarrieredCommit)
            .expect("clean recorded run");
        let sites = crash_sites_exhaustive(&run.schedule, SECTOR);
        let t0 = Instant::now();
        let report = explore_crash_sites(&run, &sites);
        let sec = section("broken_protocol", 8, 4, &report, t0.elapsed().as_secs_f64());
        if !sec.caught {
            eprintln!(
                "crash_bench: the unbarriered-commit protocol was NOT caught over {} states",
                sec.states_explored
            );
            failed = true;
        }
        sections.push(sec);
    }

    for r in &sections {
        println!(
            "{:>16}: n={:<3} ops={:<4} crash points {:<4} states {:<6} violations {:<3} \
             rework {:.3}  {:>8.0} states/s{}",
            r.name,
            r.n,
            r.schedule_ops,
            r.crash_points,
            r.states_explored,
            r.violations,
            r.rework_fraction,
            r.states_per_s,
            if r.caught {
                format!("  minimal repro: {}", r.minimal_repro)
            } else {
                String::new()
            }
        );
    }

    if failed {
        std::process::exit(1);
    }
    let json = to_json(&sections, mode, seed);
    std::fs::write(&out_path, &json).expect("write crash artifact");
    eprintln!("crash_bench: wrote {out_path}");
}
