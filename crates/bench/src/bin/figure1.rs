//! Regenerate **Figure 1**: the dependency sets `S_ij` and DAG statistics.

use cholcomm_core::figures::figure1;

fn main() {
    for n in [6usize, 16, 64] {
        println!("{}", figure1(n));
    }
}
