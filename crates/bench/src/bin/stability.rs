//! Regenerate the Section 3.1.2 stability study: backward error of every
//! summation order (= every algorithm) across condition numbers.
//!
//! ```text
//! cargo run --release -p cholcomm-bench --bin stability
//! ```

use cholcomm_core::stability::{render_stability, run_stability};

fn main() {
    for n in [32usize, 128] {
        let rows = run_stability(n, &[1e2, 1e6, 1e10], 9000 + n as u64);
        println!("{}", render_stability(n, &rows));
    }
}
