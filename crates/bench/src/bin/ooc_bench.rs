//! Out-of-core pipeline benchmark and the repo's tracked OOC artifact.
//!
//! ```text
//! cargo run --release -p cholcomm-bench --bin ooc_bench             # full run
//! cargo run --release -p cholcomm-bench --bin ooc_bench -- --smoke  # CI smoke
//! ```
//!
//! Four sections, written as `cholcomm-ooc-bench/v1` JSON:
//!
//! - **identity** — the pipelined driver's factor is byte-compared
//!   against the synchronous `ooc_potrf_with` over a grid of cache
//!   capacities, I/O worker counts, and lookahead depths (plus a
//!   checkpointed-pipelined run); `mismatches` must be zero.
//! - **model_gate** — the deterministic overlap model at n=2048, b=64
//!   with a 100µs-latency disk: the pipelined makespan must beat the
//!   synchronous one by ≥ 2x.
//! - **lookahead_sweep** — modeled prefetch hit rate across lookahead
//!   depths; ≥ 90% at every lookahead ≥ 4.
//! - **measured** — a real `FileMatrix` run with the I/O workers
//!   actually sleeping the sampled latency, pipelined-vs-sync wall
//!   clock plus the real seek/seek-distance tallies.  Wall numbers are
//!   machine-dependent; the gate here is deliberately loose (≥ 1.2x)
//!   and the section is excluded from CI's exact-match compare.
//!
//! Every number outside **measured** is a pure function of the inputs,
//! so CI compares a smoke run exactly against the committed
//! `BENCH_ooc.json` (deterministic sections only).

use cholcomm_core::matrix::spd;
use cholcomm_core::ooc::{
    filemat::scratch_path, model_overlap, ooc_potrf_checkpointed, ooc_potrf_pipelined_with,
    ooc_potrf_with, Checkpoint, FileMatrix, IoStats, LatencyModel, ModelConfig, PipelineConfig,
    SleepBackend, DEFAULT_FLOPS_PER_US,
};
use cholcomm_core::matrix::KernelImpl;
use std::fmt::Write as _;
use std::time::Instant;

struct Identity {
    configs: usize,
    mismatches: usize,
    reads: u64,
    writes: u64,
    checkpointed_ok: bool,
}

struct Gate {
    n: usize,
    b: usize,
    capacity: usize,
    io_workers: usize,
    lookahead: usize,
    latency_us: u64,
    sync_us: u64,
    pipelined_us: u64,
    speedup: f64,
    hit_rate: f64,
}

struct Measured {
    n: usize,
    b: usize,
    capacity: usize,
    latency_us: u64,
    sync_wall_s: f64,
    pipe_wall_s: [f64; 2], // workers 1, 2
    speedup_w2: f64,
    stats: IoStats,
}

fn run_identity() -> Identity {
    let mut rng = spd::test_rng(600);
    let a = spd::random_spd(40, &mut rng);
    let b = 8;
    let mut configs = 0;
    let mut mismatches = 0;
    let mut reads = 0;
    let mut writes = 0;
    for cap in [3usize, 5, 12] {
        let mut sync = FileMatrix::create(&scratch_path(&format!("ob-sync{cap}")), &a, b)
            .expect("create sync file");
        ooc_potrf_with(&mut sync, cap, KernelImpl::Fast).expect("sync factorization");
        let want = sync.to_matrix().expect("read sync factor");
        for workers in [1usize, 2] {
            for lookahead in [1usize, 4] {
                let mut fm =
                    FileMatrix::create(&scratch_path(&format!("ob-p{cap}-{workers}-{lookahead}")), &a, b)
                        .expect("create pipelined file");
                let cfg = PipelineConfig::new(cap)
                    .with_kernel(KernelImpl::Fast)
                    .with_io_workers(workers)
                    .with_lookahead(lookahead);
                let st = ooc_potrf_pipelined_with(&mut fm, &cfg).expect("pipelined factorization");
                configs += 1;
                reads += st.fetches;
                writes += st.evict_writes + st.flush_writes;
                if fm.to_matrix().expect("read pipelined factor") != want {
                    mismatches += 1;
                    eprintln!(
                        "ooc_bench: factor mismatch at cap={cap} workers={workers} lookahead={lookahead}"
                    );
                }
            }
        }
    }
    // Checkpointed-pipelined against the checkpointed sync driver.
    let cap = 5;
    let mut sync = FileMatrix::create(&scratch_path("ob-cksync"), &a, b).expect("create");
    let ck0 = Checkpoint::at(&scratch_path("ob-cksync").with_extension("ckpt"));
    ooc_potrf_checkpointed(&mut sync, cap, &ck0).expect("sync checkpointed");
    let want = sync.to_matrix().expect("read");
    let mut fm = FileMatrix::create(&scratch_path("ob-ckpipe"), &a, b).expect("create");
    let ck1 = Checkpoint::at(&scratch_path("ob-ckpipe").with_extension("ckpt"));
    let cfg = PipelineConfig::new(cap).with_io_workers(2).with_lookahead(3);
    cholcomm_core::ooc::ooc_potrf_checkpointed_pipelined(&mut fm, &ck1, &cfg)
        .expect("pipelined checkpointed");
    configs += 1;
    let checkpointed_ok = fm.to_matrix().expect("read") == want;
    if !checkpointed_ok {
        mismatches += 1;
    }
    Identity {
        configs,
        mismatches,
        reads,
        writes,
        checkpointed_ok,
    }
}

fn run_model_gate() -> Gate {
    let (n, b, capacity, io_workers, lookahead, latency_us) = (2048, 64, 56, 2, 8, 100);
    let r = model_overlap(&ModelConfig {
        n,
        b,
        capacity_tiles: capacity,
        io_workers,
        lookahead,
        latency: LatencyModel::uniform(latency_us),
        flops_per_us: DEFAULT_FLOPS_PER_US,
    });
    Gate {
        n,
        b,
        capacity,
        io_workers,
        lookahead,
        latency_us,
        sync_us: r.sync_us,
        pipelined_us: r.pipelined_us,
        speedup: r.speedup,
        hit_rate: r.hit_rate,
    }
}

fn run_lookahead_sweep() -> Vec<(usize, f64)> {
    [1usize, 2, 4, 8, 16]
        .into_iter()
        .map(|la| {
            let r = model_overlap(&ModelConfig {
                n: 2048,
                b: 64,
                capacity_tiles: 56,
                io_workers: 2,
                lookahead: la,
                latency: LatencyModel::uniform(100),
                flops_per_us: DEFAULT_FLOPS_PER_US,
            });
            (la, r.hit_rate)
        })
        .collect()
}

fn run_measured(smoke: bool) -> Measured {
    let (n, b, capacity, latency_us) = if smoke { (128, 16, 8, 200) } else { (256, 32, 12, 300) };
    let mut rng = spd::test_rng(601);
    let a = spd::random_spd(n, &mut rng);

    // Synchronous leg: the backend sleeps its advertised latency inline.
    let mut fm = FileMatrix::create(&scratch_path("ob-meas-sync"), &a, b).expect("create");
    fm.set_latency_model(LatencyModel::uniform(latency_us));
    let mut sb = SleepBackend::new(fm);
    let t0 = Instant::now();
    ooc_potrf_with(&mut sb, capacity, KernelImpl::Fast).expect("sync measured");
    let sync_wall_s = t0.elapsed().as_secs_f64();
    let want = sb.into_inner().to_matrix().expect("read");

    // Pipelined legs: the I/O *workers* sleep, compute does not.
    let mut pipe_wall_s = [0.0f64; 2];
    let mut stats = IoStats::default();
    for (i, workers) in [1usize, 2].into_iter().enumerate() {
        let mut fm =
            FileMatrix::create(&scratch_path(&format!("ob-meas-p{workers}")), &a, b).expect("create");
        fm.set_latency_model(LatencyModel::uniform(latency_us));
        let cfg = PipelineConfig::new(capacity)
            .with_kernel(KernelImpl::Fast)
            .with_io_workers(workers)
            .with_sleep_latency(true);
        let t0 = Instant::now();
        ooc_potrf_pipelined_with(&mut fm, &cfg).expect("pipelined measured");
        pipe_wall_s[i] = t0.elapsed().as_secs_f64();
        assert_eq!(
            fm.to_matrix().expect("read"),
            want,
            "measured leg must still be bit-identical"
        );
        stats = fm.stats();
    }
    Measured {
        n,
        b,
        capacity,
        latency_us,
        sync_wall_s,
        pipe_wall_s,
        speedup_w2: sync_wall_s / pipe_wall_s[1].max(1e-9),
        stats,
    }
}

fn to_json(
    id: &Identity,
    gate: &Gate,
    sweep: &[(usize, f64)],
    meas: &Measured,
    mode: &str,
) -> String {
    let mut s = String::new();
    s.push_str("{\n");
    let _ = writeln!(s, "  \"schema\": \"cholcomm-ooc-bench/v1\",");
    let _ = writeln!(s, "  \"mode\": \"{mode}\",");
    s.push_str("  \"identity\": {\n");
    let _ = writeln!(s, "    \"configs\": {},", id.configs);
    let _ = writeln!(s, "    \"mismatches\": {},", id.mismatches);
    let _ = writeln!(s, "    \"reads\": {},", id.reads);
    let _ = writeln!(s, "    \"writes\": {},", id.writes);
    let _ = writeln!(s, "    \"checkpointed_ok\": {}", id.checkpointed_ok);
    s.push_str("  },\n");
    s.push_str("  \"model_gate\": {\n");
    let _ = writeln!(s, "    \"n\": {},", gate.n);
    let _ = writeln!(s, "    \"b\": {},", gate.b);
    let _ = writeln!(s, "    \"capacity_tiles\": {},", gate.capacity);
    let _ = writeln!(s, "    \"io_workers\": {},", gate.io_workers);
    let _ = writeln!(s, "    \"lookahead\": {},", gate.lookahead);
    let _ = writeln!(s, "    \"latency_us\": {},", gate.latency_us);
    let _ = writeln!(s, "    \"sync_us\": {},", gate.sync_us);
    let _ = writeln!(s, "    \"pipelined_us\": {},", gate.pipelined_us);
    let _ = writeln!(s, "    \"speedup\": {:.4},", gate.speedup);
    let _ = writeln!(s, "    \"hit_rate\": {:.4}", gate.hit_rate);
    s.push_str("  },\n");
    s.push_str("  \"lookahead_sweep\": [\n");
    for (i, (la, hr)) in sweep.iter().enumerate() {
        let _ = writeln!(
            s,
            "    {{ \"lookahead\": {la}, \"hit_rate\": {hr:.4} }}{}",
            if i + 1 < sweep.len() { "," } else { "" }
        );
    }
    s.push_str("  ],\n");
    s.push_str("  \"measured\": {\n");
    let _ = writeln!(s, "    \"n\": {},", meas.n);
    let _ = writeln!(s, "    \"b\": {},", meas.b);
    let _ = writeln!(s, "    \"capacity_tiles\": {},", meas.capacity);
    let _ = writeln!(s, "    \"latency_us\": {},", meas.latency_us);
    let _ = writeln!(s, "    \"sync_wall_s\": {:.3},", meas.sync_wall_s);
    let _ = writeln!(s, "    \"pipe_wall_s_w1\": {:.3},", meas.pipe_wall_s[0]);
    let _ = writeln!(s, "    \"pipe_wall_s_w2\": {:.3},", meas.pipe_wall_s[1]);
    let _ = writeln!(s, "    \"speedup_w2\": {:.3},", meas.speedup_w2);
    let _ = writeln!(s, "    \"bytes_read\": {},", meas.stats.bytes_read);
    let _ = writeln!(s, "    \"bytes_written\": {},", meas.stats.bytes_written);
    let _ = writeln!(s, "    \"seeks\": {},", meas.stats.seeks);
    let _ = writeln!(s, "    \"seek_distance\": {}", meas.stats.seek_distance);
    s.push_str("  }\n}\n");
    s
}

fn main() {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let smoke = args.iter().any(|a| a == "--smoke");
    let out_path = args
        .iter()
        .position(|a| a == "--out")
        .and_then(|i| args.get(i + 1).cloned())
        .unwrap_or_else(|| {
            if smoke {
                "BENCH_ooc.smoke.json".to_string()
            } else {
                concat!(env!("CARGO_MANIFEST_DIR"), "/../../BENCH_ooc.json").to_string()
            }
        });
    let mode = if smoke { "smoke" } else { "full" };
    eprintln!("ooc_bench: mode={mode}");
    let mut failed = false;

    let id = run_identity();
    println!(
        "identity: {} configs, {} mismatches, {} reads, {} writes, checkpointed_ok={}",
        id.configs, id.mismatches, id.reads, id.writes, id.checkpointed_ok
    );
    if id.mismatches != 0 {
        eprintln!("ooc_bench: FAILED bit-identity over the config grid");
        failed = true;
    }

    let gate = run_model_gate();
    println!(
        "model_gate: n={} b={} cap={} W={} lookahead={} latency={}us: sync={}us pipelined={}us \
         speedup={:.3} hit_rate={:.3}",
        gate.n,
        gate.b,
        gate.capacity,
        gate.io_workers,
        gate.lookahead,
        gate.latency_us,
        gate.sync_us,
        gate.pipelined_us,
        gate.speedup,
        gate.hit_rate
    );
    if gate.speedup < 2.0 {
        eprintln!("ooc_bench: FAILED modeled overlap gate (speedup {:.3} < 2.0)", gate.speedup);
        failed = true;
    }

    let sweep = run_lookahead_sweep();
    for &(la, hr) in &sweep {
        println!("lookahead_sweep: lookahead={la} hit_rate={hr:.3}");
        if la >= 4 && hr < 0.9 {
            eprintln!("ooc_bench: FAILED hit-rate gate at lookahead {la} ({hr:.3} < 0.9)");
            failed = true;
        }
    }

    let meas = run_measured(smoke);
    println!(
        "measured: n={} b={} cap={} latency={}us: sync {:.3}s, pipelined w1 {:.3}s w2 {:.3}s \
         (speedup {:.2}x), seeks {} distance {}",
        meas.n,
        meas.b,
        meas.capacity,
        meas.latency_us,
        meas.sync_wall_s,
        meas.pipe_wall_s[0],
        meas.pipe_wall_s[1],
        meas.speedup_w2,
        meas.stats.seeks,
        meas.stats.seek_distance
    );
    if meas.speedup_w2 < 1.2 {
        eprintln!(
            "ooc_bench: FAILED measured overlap gate (speedup {:.3} < 1.2)",
            meas.speedup_w2
        );
        failed = true;
    }

    if failed {
        std::process::exit(1);
    }
    let json = to_json(&id, &gate, &sweep, &meas, mode);
    std::fs::write(&out_path, &json).expect("write ooc artifact");
    eprintln!("ooc_bench: wrote {out_path}");
}
