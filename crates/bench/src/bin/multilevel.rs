//! Regenerate the **Section 3.2 / Corollary 3.2** experiment: traffic at
//! every level of a multi-level hierarchy, per algorithm.
//!
//! ```text
//! cargo run --release -p cholcomm-bench --bin multilevel
//! ```

use cholcomm_core::multilevel::{render_multilevel, run_multilevel};

fn main() {
    let configs: [(usize, Vec<usize>); 2] =
        [(64, vec![48, 96, 512]), (128, vec![48, 640, 4096])];
    for (n, caps) in configs {
        let rows = run_multilevel(n, &caps, 5000 + n as u64);
        println!("{}", render_multilevel(n, &caps, &rows));
    }
    println!("Reading guide:");
    println!("  AP00: bw-ratio O(1) at EVERY level, no tuning (Conclusion 5);");
    println!("  LAPACK tuned for M1: fine at M1, bandwidth-suboptimal at the outer levels;");
    println!("  LAPACK tuned for Md: fine at Md, but its big blocks overflow the small level");
    println!("  (marked '!': its 3b^2 working set does not fit, so the level-1 numbers are");
    println!("  unattainable lower bounds);");
    println!("  Toledo: bandwidth fine everywhere, latency pinned at Omega(n^2) (Conclusion 4).");
}
