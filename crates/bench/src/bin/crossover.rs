//! Crossover analysis: price every algorithm/layout pair under several
//! machine models (DRAM, NVMe, disk, network alpha/beta points) and
//! report where the latency-optimal combinations start to win.
//!
//! ```text
//! cargo run --release -p cholcomm-bench --bin crossover
//! ```

use cholcomm_core::crossover::{measure_contenders, render_crossover};

fn main() {
    for (n, m) in [(64usize, 192usize), (128, 768)] {
        let cs = measure_contenders(n, m, 8000 + n as u64);
        println!("{}", render_crossover(n, m, &cs));
    }
}
