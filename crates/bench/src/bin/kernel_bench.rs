//! Wall-clock comparison of the kernel engines and the repo's tracked
//! benchmark artifact.
//!
//! ```text
//! cargo run --release -p cholcomm-bench --bin kernel_bench            # full run
//! cargo run --release -p cholcomm-bench --bin kernel_bench -- --smoke # CI smoke
//! ```
//!
//! Times `gemm_nn`, `gemm_nt`, `syrk_lower`, `trsm_right_lower_transpose`,
//! and `potf2` under all three engines: [`KernelImpl::Reference`] (the
//! triple-loop oracle), [`KernelImpl::Fast`] (packed microkernels with
//! FMA contraction), and [`KernelImpl::FastStrict`] (packed microkernels
//! with reference rounding).  Two correctness gates run alongside the
//! clock:
//!
//! * `fast-strict` must be **bit-identical** to the reference — it keeps
//!   both the per-element operation order and the per-operation rounding,
//!   so any divergence is a bug and the bench exits non-zero;
//! * `fast` must agree to a **contraction residual** — same operation
//!   order, but hardware FMA skips the product's intermediate rounding,
//!   so elementwise error is bounded by a small multiple of `k * eps`
//!   times the data scale.  Exceeding the bound also exits non-zero.
//!
//! Results are written as machine-readable JSON to `BENCH_kernels.json`
//! at the repo root.  The JSON is hand-rolled — the workspace is offline
//! and has no serde.
//!
//! `--smoke` shrinks the sizes and repetitions so CI can validate the
//! binary and the JSON schema in seconds; it writes the same schema but
//! does not overwrite a full run's artifact unless `--out` says so.

use cholcomm_core::matrix::{norms, spd, KernelImpl, Matrix};
use rand::RngExt;
use std::fmt::Write as _;
use std::time::Instant;

/// One timed comparison: an op at a shape, all three engines.
struct Row {
    op: &'static str,
    m: usize,
    n: usize,
    k: usize,
    flops: f64,
    reference_ms: f64,
    fast_ms: f64,
    strict_ms: f64,
    /// `fast-strict` output is bitwise equal to the reference output.
    strict_bit_identical: bool,
    /// Max elementwise |fast - reference| over the op's output region.
    fast_max_abs_diff: f64,
    /// Residual bound the fused engine must stay under.
    fast_tolerance: f64,
}

impl Row {
    fn fast_speedup(&self) -> f64 {
        self.reference_ms / self.fast_ms
    }

    fn strict_speedup(&self) -> f64 {
        self.reference_ms / self.strict_ms
    }

    fn gflops(&self, ms: f64) -> f64 {
        self.flops / (ms * 1e6)
    }

    fn fast_within_tolerance(&self) -> bool {
        self.fast_max_abs_diff <= self.fast_tolerance
    }
}

fn random_matrix(m: usize, n: usize, seed: u64) -> Matrix<f64> {
    let mut rng = spd::test_rng(seed);
    Matrix::from_fn(m, n, |_, _| rng.random_range(-1.0..1.0))
}

/// Best-of-`reps` wall-clock for `f` run against a fresh clone of
/// `input` each repetition; returns (best milliseconds, last output).
fn time_op<F>(input: &Matrix<f64>, reps: usize, f: F) -> (f64, Matrix<f64>)
where
    F: Fn(&mut Matrix<f64>),
{
    let mut best = f64::INFINITY;
    let mut out = input.clone();
    for _ in 0..reps {
        let mut work = input.clone();
        let t0 = Instant::now();
        f(&mut work);
        best = best.min(t0.elapsed().as_secs_f64() * 1e3);
        out = work;
    }
    (best, out)
}

/// Time one op under all three engines and check both correctness gates.
/// `contraction_k` scales the fused engine's residual bound: the number
/// of multiply-add pairs contracted per output element (the inner-product
/// length for one update pass, or `n` for a full factorization).
fn bench_op<F>(input: &Matrix<f64>, reps: usize, contraction_k: usize, f: F) -> BenchTimes
where
    F: Fn(KernelImpl, &mut Matrix<f64>),
{
    let (reference_ms, ref_out) = time_op(input, reps, |w| f(KernelImpl::Reference, w));
    let (fast_ms, fast_out) = time_op(input, reps, |w| f(KernelImpl::Fast, w));
    let (strict_ms, strict_out) = time_op(input, reps, |w| f(KernelImpl::FastStrict, w));
    BenchTimes {
        reference_ms,
        fast_ms,
        strict_ms,
        strict_bit_identical: ref_out == strict_out,
        fast_max_abs_diff: norms::max_abs_diff(&ref_out, &fast_out),
        // One fewer rounding per contracted product; data is O(1) for the
        // update ops and O(sqrt(n)) diagonally dominant for factors, so a
        // generous constant times k*eps covers both.
        fast_tolerance: 1e-12 * (contraction_k.max(1) as f64),
    }
}

struct BenchTimes {
    reference_ms: f64,
    fast_ms: f64,
    strict_ms: f64,
    strict_bit_identical: bool,
    fast_max_abs_diff: f64,
    fast_tolerance: f64,
}

impl BenchTimes {
    fn into_row(self, op: &'static str, m: usize, n: usize, k: usize, flops: f64) -> Row {
        Row {
            op,
            m,
            n,
            k,
            flops,
            reference_ms: self.reference_ms,
            fast_ms: self.fast_ms,
            strict_ms: self.strict_ms,
            strict_bit_identical: self.strict_bit_identical,
            fast_max_abs_diff: self.fast_max_abs_diff,
            fast_tolerance: self.fast_tolerance,
        }
    }
}

fn run(smoke: bool) -> Vec<Row> {
    let (sizes, reps): (&[usize], usize) = if smoke { (&[64], 2) } else { (&[256, 512, 1024], 5) };
    let mut rows = Vec::new();

    for &n in sizes {
        let (m, k) = (n, n);

        // gemm_nn / gemm_nt: C -= A * B(^T), all n x n.
        let a = random_matrix(m, k, 7_000 + n as u64);
        let b = random_matrix(k, n, 8_000 + n as u64);
        let bt = random_matrix(n, k, 8_500 + n as u64);
        let c = random_matrix(m, n, 9_000 + n as u64);
        let gemm_flops = 2.0 * (m * n * k) as f64;

        let t = bench_op(&c, reps, k, |eng, w| eng.gemm_nn(w, -1.0, &a, &b));
        rows.push(t.into_row("gemm_nn", m, n, k, gemm_flops));

        let t = bench_op(&c, reps, k, |eng, w| eng.gemm_nt(w, -1.0, &a, &bt));
        rows.push(t.into_row("gemm_nt", m, n, k, gemm_flops));

        // syrk: C -= A * A^T on the lower triangle.
        let t = bench_op(&c, reps, k, |eng, w| eng.syrk_lower(w, &a));
        rows.push(t.into_row("syrk_lower", m, n, k, (m * m * k) as f64));

        // trsm: X <- X L^-T against a well-conditioned lower factor.
        let l = {
            let mut rng = spd::test_rng(6_000 + n as u64);
            Matrix::from_fn(n, n, |i, j| {
                if i == j {
                    (n as f64) + rng.random_range(0.0..1.0)
                } else if i > j {
                    rng.random_range(-1.0..1.0)
                } else {
                    0.0
                }
            })
        };
        let x = random_matrix(m, n, 9_500 + n as u64);
        let t = bench_op(&x, reps, n, |eng, w| eng.trsm_right_lower_transpose(w, &l));
        rows.push(t.into_row("trsm_right_lower_transpose", m, n, 0, (m * n * n) as f64));

        // potf2: full Cholesky of an SPD matrix.
        let s = {
            let mut rng = spd::test_rng(5_000 + n as u64);
            spd::random_spd(n, &mut rng)
        };
        let t = bench_op(&s, reps, n, |eng, w| {
            eng.potf2(w).expect("bench matrix is SPD");
        });
        rows.push(t.into_row("potf2", n, n, 0, (n * n * n) as f64 / 3.0));
    }
    rows
}

/// Render the results as the `cholcomm-kernel-bench/v2` JSON document.
fn to_json(rows: &[Row], mode: &str) -> String {
    let mut s = String::new();
    s.push_str("{\n");
    let _ = writeln!(s, "  \"schema\": \"cholcomm-kernel-bench/v2\",");
    let _ = writeln!(s, "  \"mode\": \"{mode}\",");
    let _ = writeln!(
        s,
        "  \"threads\": {},",
        std::thread::available_parallelism().map_or(1, |v| v.get())
    );
    s.push_str("  \"engines\": [\"reference\", \"fast\", \"fast-strict\"],\n");
    s.push_str("  \"results\": [\n");
    for (i, r) in rows.iter().enumerate() {
        let comma = if i + 1 == rows.len() { "" } else { "," };
        let _ = writeln!(
            s,
            "    {{\"op\": \"{}\", \"m\": {}, \"n\": {}, \"k\": {}, \
             \"reference_ms\": {:.3}, \"fast_ms\": {:.3}, \"fast_strict_ms\": {:.3}, \
             \"fast_speedup\": {:.2}, \"fast_strict_speedup\": {:.2}, \
             \"reference_gflops\": {:.3}, \"fast_gflops\": {:.3}, \
             \"strict_bit_identical\": {}, \"fast_max_abs_diff\": {:.3e}}}{}",
            r.op,
            r.m,
            r.n,
            r.k,
            r.reference_ms,
            r.fast_ms,
            r.strict_ms,
            r.fast_speedup(),
            r.strict_speedup(),
            r.gflops(r.reference_ms),
            r.gflops(r.fast_ms),
            r.strict_bit_identical,
            r.fast_max_abs_diff,
            comma,
        );
    }
    s.push_str("  ]\n}\n");
    s
}

fn main() {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let smoke = args.iter().any(|a| a == "--smoke");
    let out_path = args
        .iter()
        .position(|a| a == "--out")
        .and_then(|i| args.get(i + 1).cloned())
        .unwrap_or_else(|| {
            if smoke {
                // Smoke numbers are noise; keep them out of the tracked
                // artifact unless explicitly redirected there.
                "BENCH_kernels.smoke.json".to_string()
            } else {
                concat!(env!("CARGO_MANIFEST_DIR"), "/../../BENCH_kernels.json").to_string()
            }
        });

    let mode = if smoke { "smoke" } else { "full" };
    eprintln!("kernel_bench: mode={mode}");
    let rows = run(smoke);

    println!(
        "{:<28} {:>6} {:>10} {:>10} {:>10} {:>8} {:>8} {:>10}",
        "op", "n", "ref_ms", "fast_ms", "strict_ms", "fast", "strict", "checks"
    );
    for r in &rows {
        let checks = match (r.strict_bit_identical, r.fast_within_tolerance()) {
            (true, true) => "ok",
            (false, _) => "STRICT-DIFFER",
            (_, false) => "FAST-DRIFT",
        };
        println!(
            "{:<28} {:>6} {:>10.3} {:>10.3} {:>10.3} {:>7.2}x {:>7.2}x {:>10}",
            r.op,
            r.n,
            r.reference_ms,
            r.fast_ms,
            r.strict_ms,
            r.fast_speedup(),
            r.strict_speedup(),
            checks,
        );
    }

    let mut failed = false;
    for r in &rows {
        if !r.strict_bit_identical {
            eprintln!(
                "kernel_bench: {} n={} fast-strict produced different bits from reference",
                r.op, r.n
            );
            failed = true;
        }
        if !r.fast_within_tolerance() {
            eprintln!(
                "kernel_bench: {} n={} fast drifted {:.3e} > tolerance {:.3e}",
                r.op, r.n, r.fast_max_abs_diff, r.fast_tolerance
            );
            failed = true;
        }
    }
    if failed {
        std::process::exit(1);
    }

    let json = to_json(&rows, mode);
    std::fs::write(&out_path, &json).expect("write bench artifact");
    eprintln!("kernel_bench: wrote {out_path}");
}
