//! Wall-clock comparison of the kernel engines and the repo's tracked
//! benchmark artifact.
//!
//! ```text
//! cargo run --release -p cholcomm-bench --bin kernel_bench            # full run
//! cargo run --release -p cholcomm-bench --bin kernel_bench -- --smoke # CI smoke
//! ```
//!
//! Times `gemm_nn`, `gemm_nt`, `syrk_lower`, `trsm_right_lower_transpose`,
//! and `potf2` under all three engines: [`KernelImpl::Reference`] (the
//! triple-loop oracle), [`KernelImpl::Fast`] (packed microkernels with
//! FMA contraction), and [`KernelImpl::FastStrict`] (packed microkernels
//! with reference rounding).  Two correctness gates run alongside the
//! clock:
//!
//! * `fast-strict` must be **bit-identical** to the reference — it keeps
//!   both the per-element operation order and the per-operation rounding,
//!   so any divergence is a bug and the bench exits non-zero;
//! * `fast` must agree to a **contraction residual** — same operation
//!   order, but hardware FMA skips the product's intermediate rounding,
//!   so elementwise error is bounded by a small multiple of `k * eps`
//!   times the data scale.  Exceeding the bound also exits non-zero.
//!
//! A third gate covers the **thread-scaling** of the parallel engine: the
//! DAG-scheduled POTRF (`cholcomm_core::par::dag`) is run on explicit
//! pools of 1, 2, 4, and 8 workers.  At every pool size `fast-strict`
//! must stay bit-identical to the sequential run, and the deterministic
//! greedy-scheduler *model* of the task DAG (`dag::simulate` — the same
//! dependency graph the executor walks, weighted by flop counts) must
//! show at least `2.5x` on 4 workers for the `n = 1024, b = 64` problem.
//! Wall-clock speedups are measured and reported honestly alongside, but
//! only gated when the host actually has 4 or more cores — a
//! single-core CI box cannot exhibit wall-clock scaling, and pretending
//! otherwise would make the gate vacuous exactly where it matters.
//!
//! Results are written as machine-readable JSON to `BENCH_kernels.json`
//! at the repo root (`cholcomm-kernel-bench/v3`).  The JSON is
//! hand-rolled — the workspace is offline and has no serde.
//!
//! `--smoke` shrinks the sizes and repetitions so CI can validate the
//! binary and the JSON schema in seconds; it writes the same schema but
//! does not overwrite a full run's artifact unless `--out` says so.

use cholcomm_core::matrix::{matrix_digest, norms, parallel, spd, KernelImpl, Matrix};
use cholcomm_core::par::{dag_simulate, potrf_dag_with};
use rand::RngExt;
use rayon::ThreadPoolBuilder;
use std::fmt::Write as _;
use std::time::Instant;

/// One timed comparison: an op at a shape, all three engines.
struct Row {
    op: &'static str,
    m: usize,
    n: usize,
    k: usize,
    flops: f64,
    reference_ms: f64,
    fast_ms: f64,
    strict_ms: f64,
    /// `fast-strict` output is bitwise equal to the reference output.
    strict_bit_identical: bool,
    /// Max elementwise |fast - reference| over the op's output region.
    fast_max_abs_diff: f64,
    /// Residual bound the fused engine must stay under.
    fast_tolerance: f64,
}

impl Row {
    fn fast_speedup(&self) -> f64 {
        self.reference_ms / self.fast_ms
    }

    fn strict_speedup(&self) -> f64 {
        self.reference_ms / self.strict_ms
    }

    fn gflops(&self, ms: f64) -> f64 {
        self.flops / (ms * 1e6)
    }

    fn fast_within_tolerance(&self) -> bool {
        self.fast_max_abs_diff <= self.fast_tolerance
    }
}

fn random_matrix(m: usize, n: usize, seed: u64) -> Matrix<f64> {
    let mut rng = spd::test_rng(seed);
    Matrix::from_fn(m, n, |_, _| rng.random_range(-1.0..1.0))
}

/// Best-of-`reps` wall-clock for `f` run against a fresh clone of
/// `input` each repetition; returns (best milliseconds, last output).
fn time_op<F>(input: &Matrix<f64>, reps: usize, f: F) -> (f64, Matrix<f64>)
where
    F: Fn(&mut Matrix<f64>),
{
    let mut best = f64::INFINITY;
    let mut out = input.clone();
    for _ in 0..reps {
        let mut work = input.clone();
        let t0 = Instant::now();
        f(&mut work);
        best = best.min(t0.elapsed().as_secs_f64() * 1e3);
        out = work;
    }
    (best, out)
}

/// Time one op under all three engines and check both correctness gates.
/// `contraction_k` scales the fused engine's residual bound: the number
/// of multiply-add pairs contracted per output element (the inner-product
/// length for one update pass, or `n` for a full factorization).
fn bench_op<F>(input: &Matrix<f64>, reps: usize, contraction_k: usize, f: F) -> BenchTimes
where
    F: Fn(KernelImpl, &mut Matrix<f64>),
{
    let (reference_ms, ref_out) = time_op(input, reps, |w| f(KernelImpl::Reference, w));
    let (fast_ms, fast_out) = time_op(input, reps, |w| f(KernelImpl::Fast, w));
    let (strict_ms, strict_out) = time_op(input, reps, |w| f(KernelImpl::FastStrict, w));
    BenchTimes {
        reference_ms,
        fast_ms,
        strict_ms,
        strict_bit_identical: ref_out == strict_out,
        fast_max_abs_diff: norms::max_abs_diff(&ref_out, &fast_out),
        // One fewer rounding per contracted product; data is O(1) for the
        // update ops and O(sqrt(n)) diagonally dominant for factors, so a
        // generous constant times k*eps covers both.
        fast_tolerance: 1e-12 * (contraction_k.max(1) as f64),
    }
}

struct BenchTimes {
    reference_ms: f64,
    fast_ms: f64,
    strict_ms: f64,
    strict_bit_identical: bool,
    fast_max_abs_diff: f64,
    fast_tolerance: f64,
}

impl BenchTimes {
    fn into_row(self, op: &'static str, m: usize, n: usize, k: usize, flops: f64) -> Row {
        Row {
            op,
            m,
            n,
            k,
            flops,
            reference_ms: self.reference_ms,
            fast_ms: self.fast_ms,
            strict_ms: self.strict_ms,
            strict_bit_identical: self.strict_bit_identical,
            fast_max_abs_diff: self.fast_max_abs_diff,
            fast_tolerance: self.fast_tolerance,
        }
    }
}

/// One pool size of the thread-scaling curve.
struct ScalingPoint {
    threads: usize,
    /// Measured wall-clock of the DAG POTRF under the `fast` engine.
    wall_ms_fast: f64,
    /// Measured wall speedup over the 1-worker pool (honest numbers:
    /// ~1.0 across the board on a single-core host).
    wall_speedup_fast: f64,
    /// Greedy-scheduler model speedup for this pool size.
    model_speedup: f64,
    /// `fast-strict` factor bits equal the sequential run's.
    strict_bit_identical: bool,
}

/// The thread-scaling section: DAG POTRF across explicit pools.
struct Scaling {
    n: usize,
    b: usize,
    points: Vec<ScalingPoint>,
}

/// Gate parameters: the model must show this speedup on this pool.
const GATE_THREADS: usize = 4;
const GATE_MIN_SPEEDUP: f64 = 2.5;
/// The problem the scaling claim is made for (full-run size).
const GATE_N: usize = 1024;
const GATE_B: usize = 64;

fn run_scaling(smoke: bool) -> Scaling {
    let (n, b, reps) = if smoke { (192, 32, 2) } else { (GATE_N, GATE_B, 3) };
    let a0 = spd::random_spd(n, &mut spd::test_rng(4_000 + n as u64));

    // Sequential baseline bits (pool disabled entirely).
    let baseline_digest = {
        let prev = parallel::set_kernel_parallelism(false);
        let mut a = a0.clone();
        potrf_dag_with(&mut a, b, KernelImpl::FastStrict).expect("bench matrix is SPD");
        parallel::set_kernel_parallelism(prev);
        matrix_digest(&a)
    };

    let mut points = Vec::new();
    for threads in [1usize, 2, 4, 8] {
        let pool = ThreadPoolBuilder::new()
            .num_threads(threads)
            .build()
            .expect("pool build");
        let mut wall = f64::INFINITY;
        for _ in 0..reps {
            let mut a = a0.clone();
            let t0 = Instant::now();
            pool.install(|| potrf_dag_with(&mut a, b, KernelImpl::Fast))
                .expect("bench matrix is SPD");
            wall = wall.min(t0.elapsed().as_secs_f64() * 1e3);
        }
        let strict_digest = pool.install(|| {
            let mut a = a0.clone();
            potrf_dag_with(&mut a, b, KernelImpl::FastStrict).expect("bench matrix is SPD");
            matrix_digest(&a)
        });
        points.push(ScalingPoint {
            threads,
            wall_ms_fast: wall,
            wall_speedup_fast: 1.0, // filled in below, relative to pool 1
            model_speedup: dag_simulate(n, b, threads).speedup,
            strict_bit_identical: strict_digest == baseline_digest,
        });
    }
    let base_ms = points[0].wall_ms_fast;
    for p in &mut points {
        p.wall_speedup_fast = base_ms / p.wall_ms_fast;
    }
    Scaling { n, b, points }
}

fn run(smoke: bool) -> Vec<Row> {
    let (sizes, reps): (&[usize], usize) = if smoke { (&[64], 2) } else { (&[256, 512, 1024], 5) };
    let mut rows = Vec::new();

    for &n in sizes {
        let (m, k) = (n, n);

        // gemm_nn / gemm_nt: C -= A * B(^T), all n x n.
        let a = random_matrix(m, k, 7_000 + n as u64);
        let b = random_matrix(k, n, 8_000 + n as u64);
        let bt = random_matrix(n, k, 8_500 + n as u64);
        let c = random_matrix(m, n, 9_000 + n as u64);
        let gemm_flops = 2.0 * (m * n * k) as f64;

        let t = bench_op(&c, reps, k, |eng, w| eng.gemm_nn(w, -1.0, &a, &b));
        rows.push(t.into_row("gemm_nn", m, n, k, gemm_flops));

        let t = bench_op(&c, reps, k, |eng, w| eng.gemm_nt(w, -1.0, &a, &bt));
        rows.push(t.into_row("gemm_nt", m, n, k, gemm_flops));

        // syrk: C -= A * A^T on the lower triangle.
        let t = bench_op(&c, reps, k, |eng, w| eng.syrk_lower(w, &a));
        rows.push(t.into_row("syrk_lower", m, n, k, (m * m * k) as f64));

        // trsm: X <- X L^-T against a well-conditioned lower factor.
        let l = {
            let mut rng = spd::test_rng(6_000 + n as u64);
            Matrix::from_fn(n, n, |i, j| {
                if i == j {
                    (n as f64) + rng.random_range(0.0..1.0)
                } else if i > j {
                    rng.random_range(-1.0..1.0)
                } else {
                    0.0
                }
            })
        };
        let x = random_matrix(m, n, 9_500 + n as u64);
        let t = bench_op(&x, reps, n, |eng, w| eng.trsm_right_lower_transpose(w, &l));
        rows.push(t.into_row("trsm_right_lower_transpose", m, n, 0, (m * n * n) as f64));

        // potf2: full Cholesky of an SPD matrix.
        let s = {
            let mut rng = spd::test_rng(5_000 + n as u64);
            spd::random_spd(n, &mut rng)
        };
        let t = bench_op(&s, reps, n, |eng, w| {
            eng.potf2(w).expect("bench matrix is SPD");
        });
        rows.push(t.into_row("potf2", n, n, 0, (n * n * n) as f64 / 3.0));
    }
    rows
}

/// Render the results as the `cholcomm-kernel-bench/v3` JSON document.
fn to_json(rows: &[Row], scaling: &Scaling, mode: &str) -> String {
    let host = host_threads();
    let gate_model = dag_simulate(GATE_N, GATE_B, GATE_THREADS).speedup;
    let mut s = String::new();
    s.push_str("{\n");
    let _ = writeln!(s, "  \"schema\": \"cholcomm-kernel-bench/v3\",");
    let _ = writeln!(s, "  \"mode\": \"{mode}\",");
    let _ = writeln!(s, "  \"host_threads\": {host},");
    s.push_str("  \"engines\": [\"reference\", \"fast\", \"fast-strict\"],\n");
    s.push_str("  \"scaling\": {\n");
    let _ = writeln!(s, "    \"op\": \"potrf_dag\",");
    let _ = writeln!(s, "    \"n\": {},", scaling.n);
    let _ = writeln!(s, "    \"b\": {},", scaling.b);
    s.push_str("    \"pools\": [\n");
    for (i, p) in scaling.points.iter().enumerate() {
        let comma = if i + 1 == scaling.points.len() { "" } else { "," };
        let _ = writeln!(
            s,
            "      {{\"threads\": {}, \"wall_ms_fast\": {:.3}, \
             \"wall_speedup_fast\": {:.2}, \"model_speedup\": {:.2}, \
             \"strict_bit_identical\": {}}}{}",
            p.threads,
            p.wall_ms_fast,
            p.wall_speedup_fast,
            p.model_speedup,
            p.strict_bit_identical,
            comma,
        );
    }
    s.push_str("    ],\n");
    let _ = writeln!(
        s,
        "    \"model_gate\": {{\"n\": {GATE_N}, \"b\": {GATE_B}, \
         \"threads\": {GATE_THREADS}, \"min_speedup\": {GATE_MIN_SPEEDUP}, \
         \"model_speedup\": {gate_model:.2}, \
         \"passed\": {}}},",
        gate_model >= GATE_MIN_SPEEDUP
    );
    let _ = writeln!(
        s,
        "    \"wall_gate_enforced\": {}",
        host >= GATE_THREADS
    );
    s.push_str("  },\n");
    s.push_str("  \"results\": [\n");
    for (i, r) in rows.iter().enumerate() {
        let comma = if i + 1 == rows.len() { "" } else { "," };
        let _ = writeln!(
            s,
            "    {{\"op\": \"{}\", \"m\": {}, \"n\": {}, \"k\": {}, \
             \"reference_ms\": {:.3}, \"fast_ms\": {:.3}, \"fast_strict_ms\": {:.3}, \
             \"fast_speedup\": {:.2}, \"fast_strict_speedup\": {:.2}, \
             \"reference_gflops\": {:.3}, \"fast_gflops\": {:.3}, \
             \"strict_bit_identical\": {}, \"fast_max_abs_diff\": {:.3e}}}{}",
            r.op,
            r.m,
            r.n,
            r.k,
            r.reference_ms,
            r.fast_ms,
            r.strict_ms,
            r.fast_speedup(),
            r.strict_speedup(),
            r.gflops(r.reference_ms),
            r.gflops(r.fast_ms),
            r.strict_bit_identical,
            r.fast_max_abs_diff,
            comma,
        );
    }
    s.push_str("  ]\n}\n");
    s
}

/// Physical parallelism of the host (what wall-clock scaling can show).
fn host_threads() -> usize {
    std::thread::available_parallelism().map_or(1, |v| v.get())
}

fn main() {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let smoke = args.iter().any(|a| a == "--smoke");
    let out_path = args
        .iter()
        .position(|a| a == "--out")
        .and_then(|i| args.get(i + 1).cloned())
        .unwrap_or_else(|| {
            if smoke {
                // Smoke numbers are noise; keep them out of the tracked
                // artifact unless explicitly redirected there.
                "BENCH_kernels.smoke.json".to_string()
            } else {
                concat!(env!("CARGO_MANIFEST_DIR"), "/../../BENCH_kernels.json").to_string()
            }
        });

    let mode = if smoke { "smoke" } else { "full" };
    eprintln!("kernel_bench: mode={mode}");

    // Classic per-op rows time the kernels *without* intra-kernel
    // parallelism, so they stay comparable across hosts and to the v2
    // history; the scaling section below is where the pool shows up.
    let rows = {
        let prev = parallel::set_kernel_parallelism(false);
        let rows = run(smoke);
        parallel::set_kernel_parallelism(prev);
        rows
    };
    let scaling = run_scaling(smoke);

    println!(
        "{:<28} {:>6} {:>10} {:>10} {:>10} {:>8} {:>8} {:>10}",
        "op", "n", "ref_ms", "fast_ms", "strict_ms", "fast", "strict", "checks"
    );
    for r in &rows {
        let checks = match (r.strict_bit_identical, r.fast_within_tolerance()) {
            (true, true) => "ok",
            (false, _) => "STRICT-DIFFER",
            (_, false) => "FAST-DRIFT",
        };
        println!(
            "{:<28} {:>6} {:>10.3} {:>10.3} {:>10.3} {:>7.2}x {:>7.2}x {:>10}",
            r.op,
            r.n,
            r.reference_ms,
            r.fast_ms,
            r.strict_ms,
            r.fast_speedup(),
            r.strict_speedup(),
            checks,
        );
    }

    println!();
    println!(
        "{:<12} {:>8} {:>12} {:>12} {:>14} {:>8}",
        "potrf_dag", "threads", "wall_ms", "wall_spdup", "model_spdup", "strict"
    );
    for p in &scaling.points {
        println!(
            "{:<12} {:>8} {:>12.3} {:>11.2}x {:>13.2}x {:>8}",
            format!("n={} b={}", scaling.n, scaling.b),
            p.threads,
            p.wall_ms_fast,
            p.wall_speedup_fast,
            p.model_speedup,
            if p.strict_bit_identical { "ok" } else { "DIFFER" },
        );
    }

    let mut failed = false;
    for r in &rows {
        if !r.strict_bit_identical {
            eprintln!(
                "kernel_bench: {} n={} fast-strict produced different bits from reference",
                r.op, r.n
            );
            failed = true;
        }
        if !r.fast_within_tolerance() {
            eprintln!(
                "kernel_bench: {} n={} fast drifted {:.3e} > tolerance {:.3e}",
                r.op, r.n, r.fast_max_abs_diff, r.fast_tolerance
            );
            failed = true;
        }
    }
    // Scaling gates.  Bit-identity and the scheduler-model speedup are
    // machine-independent, so they are enforced unconditionally; the
    // wall-clock speedup is only enforced where the host can physically
    // exhibit it.
    for p in &scaling.points {
        if !p.strict_bit_identical {
            eprintln!(
                "kernel_bench: potrf_dag fast-strict differs from sequential bits on {} workers",
                p.threads
            );
            failed = true;
        }
    }
    let gate_model = dag_simulate(GATE_N, GATE_B, GATE_THREADS).speedup;
    if gate_model < GATE_MIN_SPEEDUP {
        eprintln!(
            "kernel_bench: DAG schedule models only {gate_model:.2}x on {GATE_THREADS} workers \
             (need {GATE_MIN_SPEEDUP}x for n={GATE_N}, b={GATE_B})"
        );
        failed = true;
    }
    let host = host_threads();
    if host >= GATE_THREADS && !smoke {
        let wall = scaling
            .points
            .iter()
            .find(|p| p.threads == GATE_THREADS)
            .map_or(0.0, |p| p.wall_speedup_fast);
        if wall < GATE_MIN_SPEEDUP {
            eprintln!(
                "kernel_bench: wall speedup {wall:.2}x on {GATE_THREADS} workers \
                 (host has {host} cores; need {GATE_MIN_SPEEDUP}x)"
            );
            failed = true;
        }
    } else {
        eprintln!(
            "kernel_bench: wall-clock scaling gate skipped \
             (host has {host} core(s), mode={mode}); model gate enforced instead"
        );
    }
    if failed {
        std::process::exit(1);
    }

    let json = to_json(&rows, &scaling, mode);
    std::fs::write(&out_path, &json).expect("write bench artifact");
    eprintln!("kernel_bench: wrote {out_path}");
}
