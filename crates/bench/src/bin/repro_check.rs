//! One-command reproduction self-check: runs every executable criterion
//! of EXPERIMENTS.md and exits non-zero if any claim fails to reproduce.
//!
//! ```text
//! cargo run --release -p cholcomm-bench --bin repro_check
//! ```

use cholcomm_core::verify::run_all;

fn main() {
    let report = run_all();
    println!("{}", report.render());
    if report.all_passed() {
        println!("all reproduction criteria PASS");
    } else {
        println!("SOME REPRODUCTION CRITERIA FAILED");
        std::process::exit(1);
    }
}
