//! Wall-clock benchmark of the trace-once / replay-many simulation
//! engine, and the repo's tracked simulation artifact.
//!
//! ```text
//! cargo run --release -p cholcomm-bench --bin sim_bench             # full run
//! cargo run --release -p cholcomm-bench --bin sim_bench -- --smoke  # CI smoke
//! cargo run --release -p cholcomm-bench --bin sim_bench -- --smoke --baseline BENCH_sim.json
//! ```
//!
//! Four measurements:
//!
//! * **record** — trace-record throughput: running the factorization
//!   arithmetic with a `CompactTrace` as the tracer, in events/s.
//! * **replay** — replay throughput of the recorded trace into the LRU,
//!   stack-distance, and counting tracers, in events/s.
//! * **sweep_multi_m** — the headline: a capacity-ladder sweep (the
//!   `multilevel` driver's shape) done the old way (re-run the
//!   arithmetic at every capacity) versus the engine way (record once,
//!   price the whole ladder in ONE stack-distance replay).  The two
//!   stats vectors must match exactly; full mode also requires the
//!   engine to be >= 5x faster end to end.
//! * **sweep_lru_m** — secondary: the same ladder priced per-`M` with
//!   live LRU replays (the `seq_messages_vs_M` shape, which needs LRU
//!   writeback semantics and so cannot share one pass).  Gated on
//!   identical stats only; tracked for wall-clock.
//! * **table1 / table2** — end-to-end regeneration wall-clock of the
//!   shipped drivers, tracked so regressions show up in review.
//!
//! `--baseline <path>` reads a previous artifact and fails (exit 1) if
//! LRU replay throughput dropped more than 30% below it — the CI
//! regression gate.  Results are written as hand-rolled JSON (the
//! workspace is offline, no serde) to `BENCH_sim.json` at the repo root,
//! or `BENCH_sim.smoke.json` under `--smoke`.

use cholcomm_core::matrix::spd;
use cholcomm_core::seq::zoo::{
    price_trace, record_algorithm, run_algorithm, Algorithm, LayoutKind, ModelKind,
};
use cholcomm_core::sweep::TraceCache;
use cholcomm_core::table1::table1_at_with;
use cholcomm_core::table2::run_table2;
use cholcomm_core::cachesim::TransferStats;
use std::fmt::Write as _;
use std::time::Instant;

struct Report {
    record_events: u64,
    record_s: f64,
    record_events_per_s: f64,
    packed_bytes_per_event: f64,
    replay_lru_events_per_s: f64,
    replay_stackdist_events_per_s: f64,
    replay_counting_events_per_s: f64,
    sweep_points: usize,
    sweep_direct_s: f64,
    sweep_engine_s: f64,
    sweep_identical: bool,
    sweep_lru_direct_s: f64,
    sweep_lru_engine_s: f64,
    sweep_lru_identical: bool,
    table1_direct_s: f64,
    table1_engine_s: f64,
    table1_identical: bool,
    table2_s: f64,
}

impl Report {
    fn sweep_speedup(&self) -> f64 {
        self.sweep_direct_s / self.sweep_engine_s
    }

    fn table1_speedup(&self) -> f64 {
        self.table1_direct_s / self.table1_engine_s
    }
}

fn seconds<R>(f: impl FnOnce() -> R) -> (f64, R) {
    let t0 = Instant::now();
    let out = f();
    (t0.elapsed().as_secs_f64(), out)
}

/// Best-of-`reps` timing.
fn best_of<R>(reps: usize, f: impl Fn() -> R) -> (f64, R) {
    let (mut best, mut out) = seconds(&f);
    for _ in 1..reps {
        let (s, o) = seconds(&f);
        if s < best {
            best = s;
            out = o;
        }
    }
    (best, out)
}

/// The `M` ladder for a given `n`, respecting the `n^2 > M` regime.
fn m_ladder(n: usize, full: &[usize]) -> Vec<usize> {
    full.iter().copied().filter(|&m| n * n > m).collect()
}

fn run(smoke: bool) -> Report {
    let (n, ladder_spec, reps): (usize, &[usize], usize) = if smoke {
        (32, &[64, 128, 256], 1)
    } else {
        (128, &[96, 144, 192, 288, 384, 576, 768, 1152, 1536, 3072], 3)
    };
    let ladder = m_ladder(n, ladder_spec);
    let alg = Algorithm::Ap00 { leaf: 4 };
    let layout = LayoutKind::Morton;
    let mut rng = spd::test_rng(4242);
    let a = spd::random_spd(n, &mut rng);

    // --- record throughput ---------------------------------------------
    let (record_s, recorded) = best_of(reps, || record_algorithm(alg, &a, layout).unwrap());
    let trace = recorded.trace;
    let events = trace.len() as u64;
    let packed_bytes_per_event = trace.pack().len() as f64 / events.max(1) as f64;

    // --- replay throughput ---------------------------------------------
    let m_mid = ladder[ladder.len() / 2];
    let (lru_s, _) = best_of(reps, || price_trace(&trace, &ModelKind::Lru { m: m_mid }));
    let (sd_s, _) = best_of(reps, || {
        price_trace(&trace, &ModelKind::Hierarchy { capacities: ladder.clone() })
    });
    let (cnt_s, _) = best_of(reps, || {
        price_trace(&trace, &ModelKind::Counting { message_cap: Some(m_mid) })
    });

    // --- headline: the capacity-ladder sweep, direct vs engine ---------
    // Direct re-runs the factorization arithmetic once per capacity (a
    // single-level hierarchy each time); the engine records once and
    // prices the *entire* ladder in a single stack-distance replay.
    let (sweep_direct_s, direct_stats) = seconds(|| {
        ladder
            .iter()
            .map(|&m| {
                run_algorithm(alg, &a, layout, &ModelKind::Hierarchy { capacities: vec![m] })
                    .unwrap()
                    .levels[0]
            })
            .collect::<Vec<TransferStats>>()
    });
    let (sweep_engine_s, engine_stats) = seconds(|| {
        let rec = record_algorithm(alg, &a, layout).unwrap();
        price_trace(&rec.trace, &ModelKind::Hierarchy { capacities: ladder.clone() })
    });
    let sweep_identical = direct_stats == engine_stats;

    // --- secondary: per-M LRU sweep (needs writebacks, one replay per M)
    let (sweep_lru_direct_s, lru_direct_stats) = seconds(|| {
        ladder
            .iter()
            .map(|&m| run_algorithm(alg, &a, layout, &ModelKind::Lru { m }).unwrap().levels[0])
            .collect::<Vec<TransferStats>>()
    });
    let (sweep_lru_engine_s, lru_engine_stats) = seconds(|| {
        let rec = record_algorithm(alg, &a, layout).unwrap();
        ladder
            .iter()
            .map(|&m| price_trace(&rec.trace, &ModelKind::Lru { m })[0])
            .collect::<Vec<TransferStats>>()
    });
    let sweep_lru_identical = lru_direct_stats == lru_engine_stats;

    // --- end-to-end drivers --------------------------------------------
    // Direct Table 1: the pre-engine shape — every point rebuilds its
    // rows from scratch (fresh cache per point, so nothing is shared).
    let points: &[(usize, usize)] =
        if smoke { &[(32, 96), (32, 128)] } else { &[(64, 192), (128, 768), (128, 192)] };
    let (table1_direct_s, direct_rows) = seconds(|| {
        points
            .iter()
            .enumerate()
            .map(|(i, &(n, m))| table1_at_with(n, m, 2000 + i as u64, &TraceCache::new()).1)
            .collect::<Vec<_>>()
    });
    let (table1_engine_s, engine_rows) = seconds(|| {
        let cache = TraceCache::new();
        points
            .iter()
            .enumerate()
            .map(|(i, &(n, m))| table1_at_with(n, m, 2000 + i as u64, &cache).1)
            .collect::<Vec<_>>()
    });
    let table1_identical = direct_rows
        .iter()
        .flatten()
        .zip(engine_rows.iter().flatten())
        .all(|(d, e)| d.words == e.words && d.messages == e.messages);
    let (table2_s, _) = seconds(|| {
        if smoke {
            run_table2(24, &[1, 4], 77)
        } else {
            run_table2(96, &[1, 4, 16], 77)
        }
    });

    Report {
        record_events: events,
        record_s,
        record_events_per_s: events as f64 / record_s,
        packed_bytes_per_event,
        replay_lru_events_per_s: events as f64 / lru_s,
        replay_stackdist_events_per_s: events as f64 / sd_s,
        replay_counting_events_per_s: events as f64 / cnt_s,
        sweep_points: ladder.len(),
        sweep_direct_s,
        sweep_engine_s,
        sweep_identical,
        sweep_lru_direct_s,
        sweep_lru_engine_s,
        sweep_lru_identical,
        table1_direct_s,
        table1_engine_s,
        table1_identical,
        table2_s,
    }
}

/// Render as the `cholcomm-sim-bench/v1` JSON document.
fn to_json(r: &Report, mode: &str) -> String {
    let mut s = String::new();
    s.push_str("{\n");
    let _ = writeln!(s, "  \"schema\": \"cholcomm-sim-bench/v1\",");
    let _ = writeln!(s, "  \"mode\": \"{mode}\",");
    let _ = writeln!(
        s,
        "  \"threads\": {},",
        std::thread::available_parallelism().map_or(1, |v| v.get())
    );
    let _ = writeln!(
        s,
        "  \"record\": {{\"events\": {}, \"seconds\": {:.4}, \"events_per_s\": {:.0}, \
         \"packed_bytes_per_event\": {:.2}}},",
        r.record_events, r.record_s, r.record_events_per_s, r.packed_bytes_per_event
    );
    let _ = writeln!(
        s,
        "  \"replay\": {{\"lru_events_per_s\": {:.0}, \"stackdist_events_per_s\": {:.0}, \
         \"counting_events_per_s\": {:.0}}},",
        r.replay_lru_events_per_s, r.replay_stackdist_events_per_s, r.replay_counting_events_per_s
    );
    let _ = writeln!(
        s,
        "  \"sweep_multi_m\": {{\"points\": {}, \"direct_s\": {:.4}, \"engine_s\": {:.4}, \
         \"speedup\": {:.2}, \"identical\": {}}},",
        r.sweep_points, r.sweep_direct_s, r.sweep_engine_s, r.sweep_speedup(), r.sweep_identical
    );
    let _ = writeln!(
        s,
        "  \"sweep_lru_m\": {{\"points\": {}, \"direct_s\": {:.4}, \"engine_s\": {:.4}, \
         \"speedup\": {:.2}, \"identical\": {}}},",
        r.sweep_points,
        r.sweep_lru_direct_s,
        r.sweep_lru_engine_s,
        r.sweep_lru_direct_s / r.sweep_lru_engine_s,
        r.sweep_lru_identical
    );
    let _ = writeln!(
        s,
        "  \"table1\": {{\"direct_s\": {:.4}, \"engine_s\": {:.4}, \"speedup\": {:.2}, \
         \"identical\": {}}},",
        r.table1_direct_s, r.table1_engine_s, r.table1_speedup(), r.table1_identical
    );
    let _ = writeln!(s, "  \"table2_s\": {:.4}", r.table2_s);
    s.push_str("}\n");
    s
}

/// Pull `"lru_events_per_s": <number>` out of a previous artifact.
fn baseline_lru_events_per_s(json: &str) -> Option<f64> {
    let key = "\"lru_events_per_s\":";
    let at = json.find(key)? + key.len();
    let rest = json[at..].trim_start();
    let end = rest
        .find(|c: char| !(c.is_ascii_digit() || c == '.' || c == '-' || c == 'e' || c == '+'))
        .unwrap_or(rest.len());
    rest[..end].parse().ok()
}

fn main() {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let smoke = args.iter().any(|a| a == "--smoke");
    let baseline = args
        .iter()
        .position(|a| a == "--baseline")
        .and_then(|i| args.get(i + 1).cloned());
    let out_path = args
        .iter()
        .position(|a| a == "--out")
        .and_then(|i| args.get(i + 1).cloned())
        .unwrap_or_else(|| {
            if smoke {
                "BENCH_sim.smoke.json".to_string()
            } else {
                concat!(env!("CARGO_MANIFEST_DIR"), "/../../BENCH_sim.json").to_string()
            }
        });

    let mode = if smoke { "smoke" } else { "full" };
    eprintln!("sim_bench: mode={mode}");
    let r = run(smoke);

    println!("record : {} events in {:.3}s ({:.2e} events/s, {:.2} B/event packed)",
        r.record_events, r.record_s, r.record_events_per_s, r.packed_bytes_per_event);
    println!("replay : lru {:.2e} | stackdist {:.2e} | counting {:.2e} events/s",
        r.replay_lru_events_per_s, r.replay_stackdist_events_per_s,
        r.replay_counting_events_per_s);
    println!("sweep  : {} capacities, direct {:.3}s vs engine {:.3}s = {:.2}x (identical: {})",
        r.sweep_points, r.sweep_direct_s, r.sweep_engine_s, r.sweep_speedup(), r.sweep_identical);
    println!("lru/M  : {} M-points, direct {:.3}s vs engine {:.3}s = {:.2}x (identical: {})",
        r.sweep_points, r.sweep_lru_direct_s, r.sweep_lru_engine_s,
        r.sweep_lru_direct_s / r.sweep_lru_engine_s, r.sweep_lru_identical);
    println!("table1 : direct {:.3}s vs engine {:.3}s = {:.2}x (identical: {})",
        r.table1_direct_s, r.table1_engine_s, r.table1_speedup(), r.table1_identical);
    println!("table2 : {:.3}s", r.table2_s);

    let mut failed = false;
    if !r.sweep_identical {
        eprintln!("sim_bench: engine ladder sweep stats differ from direct runs");
        failed = true;
    }
    if !r.sweep_lru_identical {
        eprintln!("sim_bench: engine LRU sweep stats differ from direct runs");
        failed = true;
    }
    if !r.table1_identical {
        eprintln!("sim_bench: engine Table 1 rows differ from direct runs");
        failed = true;
    }
    if !smoke && r.sweep_speedup() < 5.0 {
        eprintln!(
            "sim_bench: multi-M sweep speedup {:.2}x is below the 5x target",
            r.sweep_speedup()
        );
        failed = true;
    }
    if let Some(path) = baseline {
        match std::fs::read_to_string(&path)
            .ok()
            .as_deref()
            .and_then(baseline_lru_events_per_s)
        {
            Some(base) => {
                let floor = 0.7 * base;
                if r.replay_lru_events_per_s < floor {
                    eprintln!(
                        "sim_bench: LRU replay {:.2e} events/s dropped >30% below the \
                         baseline {:.2e} in {path}",
                        r.replay_lru_events_per_s, base
                    );
                    failed = true;
                } else {
                    eprintln!(
                        "sim_bench: LRU replay {:.2e} events/s within 30% of baseline {:.2e}",
                        r.replay_lru_events_per_s, base
                    );
                }
            }
            None => {
                eprintln!("sim_bench: could not read lru_events_per_s from {path}");
                failed = true;
            }
        }
    }
    if failed {
        std::process::exit(1);
    }

    let json = to_json(&r, mode);
    std::fs::write(&out_path, &json).expect("write bench artifact");
    eprintln!("sim_bench: wrote {out_path}");
}
