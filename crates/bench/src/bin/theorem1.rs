//! The **Theorem 1 / Algorithm 1** experiment: matrix multiplication via
//! Cholesky over the starred semiring, through every algorithm in the
//! zoo, with the bandwidth-constant check.
//!
//! ```text
//! cargo run --release -p cholcomm-bench --bin theorem1
//! ```

use cholcomm_core::report::TextTable;
use cholcomm_core::starred::analyze_reduction;
use cholcomm_core::theorem1::{render_reduction, run_reduction};

fn main() {
    for (n, m) in [(16usize, 96usize), (32, 96), (32, 384)] {
        let rows = run_reduction(n, m, 3000 + n as u64);
        println!("{}", render_reduction(n, m, &rows));
    }

    // The symbolic Alg' (the paper's third construction): propagate
    // 0*/1* through the DAG, eliminate dead/starred operations, and
    // count what survives.
    let mut t = TextTable::new(
        "Symbolic Alg': flops of Cholesky(T') after starred + DAG elimination",
        &["n", "full (9n^3)", "after simplification", "after DAG pruning", "2n^3 (matmul)"],
    );
    for n in [8usize, 16, 32, 64] {
        let rep = analyze_reduction(n);
        t.row(vec![
            n.to_string(),
            rep.full_flops.to_string(),
            rep.after_simplification.to_string(),
            rep.after_reachability.to_string(),
            rep.matmul_flops.to_string(),
        ]);
    }
    println!("{}", t.render());
    println!("the surviving operation set IS a classical matrix multiplication");
    println!("(2n^3 + O(n^2) flops) — 'Alg' performs a strict subset of the");
    println!("arithmetic and memory operations of the original Cholesky algorithm'.");
    println!("Reading guide:");
    println!("  max |err| ~ 1e-12: Lemma 2.2 holds — no starred value contaminates A*B;");
    println!("  ratio = chol_words(3n) / matmul_words(n) stays a bounded constant across n,");
    println!("  which is exactly the reduction that transfers the matmul lower bound.");
}
