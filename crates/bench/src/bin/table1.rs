//! Regenerate **Table 1** (sequential bandwidth & latency) at several
//! `(n, M)` points.
//!
//! ```text
//! cargo run --release -p cholcomm-bench --bin table1
//! ```

use cholcomm_core::matrix::spd;
use cholcomm_core::sweep::TraceCache;
use cholcomm_core::table1::{
    render_table1, render_table1_extended, run_table1_extended, table1_at_with, Table1Config,
};

fn main() {
    // The paper's regime: n^2 > M.  Power-of-two n keeps the recursive
    // algorithms' blocks aligned with the Morton quadrants.  One trace
    // cache spans every point: n = 128 appears at two values of M, so
    // the M-independent rows (naive, Toledo, AP00) replay their n = 128
    // traces instead of re-running the factorization.
    let cache = TraceCache::new();
    let points = [(64usize, 192usize), (128, 768), (128, 192), (256, 3072)];
    for (i, (n, m)) in points.iter().enumerate() {
        let (cfg, rows) = table1_at_with(*n, *m, 1000 + i as u64, &cache);
        println!("{}", render_table1(cfg, &rows));
    }
    // Extended rows: the additional schedule variants this workspace
    // implements beyond the paper's nine.
    let cfg = Table1Config { n: 128, m: 768, leaf: 4 };
    let mut rng = spd::test_rng(1100);
    let a = spd::random_spd(128, &mut rng);
    let ext = run_table1_extended(cfg, &a);
    println!("{}", render_table1_extended(cfg, &ext));

    println!("Reading guide:");
    println!("  words/(n^3/sqrt(M))  ~ O(1)        => bandwidth-optimal (Conclusion 2)");
    println!("  words/(n^3/sqrt(M))  ~ sqrt(M)     => naive, bandwidth-suboptimal (Conclusion 1)");
    println!("  msgs/(n^3/M^1.5)     ~ O(1)        => latency-optimal (needs block-contiguous storage, Conclusions 3/5)");
    println!("  msgs/(n^3/M^1.5)     ~ sqrt(M)     => column-major latency penalty");
    println!("  Toledo on recursive blocks stays pinned near n^2 messages (Conclusion 4).");
}
